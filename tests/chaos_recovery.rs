//! Fault-injection integration tests: a VMD server crash in the middle of
//! an Agile migration, with and without replication, plus determinism of
//! the chaos reports.

use agile::chaos::{ChaosSchedule, FaultKind};
use agile::cluster::scenario::chaos::{self, ChaosScenarioConfig};
use agile::sim::{SimDuration, SimTime};

/// A crash 200 ms into the migration (which takes ~800 ms at this scale),
/// while most of the VM's memory sits in the portable namespace. The dead
/// server rejoins (empty) later.
fn crash_schedule() -> ChaosSchedule {
    ChaosSchedule::builder()
        .server_outage(0, SimTime::from_millis(10_200), SimDuration::from_secs(10))
        .build()
}

fn cfg(replication: usize) -> ChaosScenarioConfig {
    ChaosScenarioConfig {
        scale: 64,
        replication,
        vmd_servers: 3,
        schedule: crash_schedule(),
        verify_content: replication >= 2,
        warmup_secs: 10,
        deadline_secs: 600,
        seed: 7,
        ..Default::default()
    }
}

/// §IV + failure model: with `k = 2` a VMD server crash mid-migration
/// loses nothing — every page of the migrated VM is recoverable from the
/// surviving replicas, the migration completes with a byte-identical
/// destination image (the in-run content check is armed and would panic
/// otherwise), and the unavailability window is bounded by detection plus
/// paced re-replication.
#[test]
fn vmd_crash_during_agile_migration_k2_loses_nothing() {
    let r = chaos::run(&cfg(2));
    assert!(r.finished, "migration did not complete: {r:?}");
    assert_eq!(r.slots_lost, 0, "replicated slots lost: {r:?}");
    assert_eq!(r.lost_reads, 0, "reads served stale data: {r:?}");
    assert_eq!(r.pages_lost_on_conn_drop, 0, "{r:?}");
    assert_eq!(r.crashes.len(), 1, "{r:?}");
    let crash = &r.crashes[0];
    assert!(crash.detected_at.is_some(), "{r:?}");
    assert!(crash.rejoined_at.is_some(), "{r:?}");
    assert!(crash.slots_evicted > 0, "crash hit no placements: {r:?}");
    assert!(r.slots_repaired > 0, "nothing re-replicated: {r:?}");
    // Bounded unavailability: detection delay + paced repair of a
    // scaled-down VM's slots is far under a minute.
    assert!(
        r.worst_unavailability_secs > 0.0 && r.worst_unavailability_secs < 60.0,
        "unavailability window unbounded: {r:?}"
    );
}

/// With `k = 1` there is no redundancy: the same crash *reports* lost
/// slots (and serves stale reads, counted) but never panics or wedges —
/// the migration still runs to completion.
#[test]
fn vmd_crash_k1_reports_losses_without_panicking() {
    let r = chaos::run(&cfg(1));
    assert!(r.finished, "migration did not complete: {r:?}");
    assert!(r.slots_lost > 0, "unreplicated crash lost nothing? {r:?}");
    assert_eq!(r.slots_repaired, 0, "k=1 has no repair source: {r:?}");
}

/// Replication invariant, property-style: for seeded *random* single-crash
/// interleavings — the crash lands anywhere from before the migration
/// starts, through pre-copy, the suspend window, and post-copy, to after
/// completion — a k=2 run never loses a page. The in-run content check is
/// armed, so "byte-identical destination memory" is asserted page by page
/// inside every run that completes.
#[test]
fn any_single_crash_interleaving_preserves_every_page_with_k2() {
    use agile::chaos::ChaosProfile;
    use agile::sim::SeedSequence;
    let profile = ChaosProfile {
        // The migration occupies roughly [10.0s, 10.8s) at this scale;
        // the window straddles it generously on both sides.
        window_start: SimTime::from_secs(5),
        window_end: SimTime::from_secs(14),
        n_servers: 3,
        server_crashes: 1,
        rejoin: true,
        mean_downtime: SimDuration::from_secs(5),
        ..ChaosProfile::default()
    };
    for seed in 0..8u64 {
        let schedule = ChaosSchedule::generate(&profile, &SeedSequence::new(seed));
        let r = chaos::run(&ChaosScenarioConfig { schedule, ..cfg(2) });
        assert!(r.finished, "seed {seed}: migration did not complete: {r:?}");
        assert_eq!(r.slots_lost, 0, "seed {seed}: slots lost: {r:?}");
        assert_eq!(r.lost_reads, 0, "seed {seed}: stale reads: {r:?}");
        assert_eq!(r.pages_lost_on_conn_drop, 0, "seed {seed}: {r:?}");
    }
}

/// Identical seeds and schedules produce byte-identical chaos reports.
#[test]
fn chaos_runs_are_deterministic() {
    let a = chaos::run(&cfg(2));
    let b = chaos::run(&cfg(2));
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

/// A four-deep heat-driven stack whose tiny DRAM head keeps demotions
/// streaming across tier boundaries for the whole run. The crash lands
/// mid-migration — interrupting in-flight demotions at tier boundaries —
/// and must lose nothing with `k = 2`: the in-run content check is
/// armed, `chaos::run` asserts every server's tier ledger still
/// reconciles after recovery, and the report is deterministic.
#[test]
fn vmd_crash_mid_demotion_on_tiered_stack_loses_nothing() {
    use agile::vmd::{HeatPolicy, TierCapacity, TierSpec, TierStackConfig};
    let mut dram = TierSpec::dram();
    dram.capacity = TierCapacity::Pages(1024);
    let mut zswap = TierSpec::zswap(
        1,
        4,
        SimDuration::from_micros(3),
        SimDuration::from_micros(5),
    );
    zswap.capacity = TierCapacity::Pages(2048);
    let mut ssd = TierSpec::host_ssd();
    ssd.capacity = TierCapacity::Pages(1 << 20);
    let tiers = TierStackConfig::new(&[dram, zswap, ssd], HeatPolicy::heat_driven());

    let tiered = ChaosScenarioConfig { tiers, ..cfg(2) };
    let r = chaos::run(&tiered);
    assert!(r.finished, "migration did not complete: {r:?}");
    assert_eq!(r.slots_lost, 0, "replicated slots lost: {r:?}");
    assert_eq!(r.lost_reads, 0, "reads served stale data: {r:?}");
    assert_eq!(r.pages_lost_on_conn_drop, 0, "{r:?}");
    assert!(r.slots_repaired > 0, "nothing re-replicated: {r:?}");
    let again = chaos::run(&ChaosScenarioConfig { tiers, ..cfg(2) });
    assert_eq!(format!("{r:?}"), format!("{again:?}"));
}

/// A generated schedule is itself deterministic in the seed, and distinct
/// fault streams move independently.
#[test]
fn generated_schedules_are_seed_deterministic() {
    use agile::chaos::ChaosProfile;
    let profile = ChaosProfile {
        n_servers: 3,
        n_hosts: 5,
        server_crashes: 2,
        nic_degradations: 1,
        conn_drops: 1,
        ..ChaosProfile::default()
    };
    let s1 = ChaosSchedule::generate(&profile, &agile::sim::SeedSequence::new(99));
    let s2 = ChaosSchedule::generate(&profile, &agile::sim::SeedSequence::new(99));
    assert_eq!(s1, s2);
    let s3 = ChaosSchedule::generate(&profile, &agile::sim::SeedSequence::new(100));
    assert_ne!(s1, s3);
    assert!(s1
        .events()
        .iter()
        .any(|e| matches!(e.kind, FaultKind::ServerCrash { .. })));
}
