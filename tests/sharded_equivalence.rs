//! Sharded-vs-sequential equivalence: driving scenarios through the
//! conservative epoch harness (`agile_cluster::shard`) must produce
//! byte-identical results to the plain sequential drivers — at every
//! worker count. The `workers` knob maps shards to OS threads and
//! nothing else; these tests are the contract.

use agile_cluster::config::WssEstimatorKind;
use agile_cluster::scenario::datacenter::{self, DatacenterConfig};
use agile_cluster::scenario::diurnal::{self, DiurnalConfig};
use agile_cluster::scenario::estimators::{self, EstimatorsConfig};
use agile_cluster::scenario::multihost::{self, MultihostConfig};
use agile_cluster::scenario::pressure::{self, PressureConfig};

/// Four multihost replicas with different seeds: each shard's report,
/// trace, and metrics must equal its own sequential run, under 1, 2,
/// and 4 workers.
#[test]
fn multihost_sharded_matches_sequential_at_any_worker_count() {
    let cfgs: Vec<MultihostConfig> = [42u64, 7, 1234, 99]
        .into_iter()
        .map(|seed| MultihostConfig {
            scale: 64,
            seed,
            trace: true,
            ..MultihostConfig::default()
        })
        .collect();
    let sequential: Vec<_> = cfgs.iter().map(multihost::run).collect();
    for workers in [1usize, 2, 4] {
        let sharded = multihost::run_replicated(&cfgs, workers);
        assert_eq!(sharded.len(), sequential.len());
        for (i, (sh, sq)) in sharded.iter().zip(&sequential).enumerate() {
            assert_eq!(
                sh.report, sq.report,
                "replica {i} report, workers={workers}"
            );
            assert_eq!(
                sh.trace_jsonl, sq.trace_jsonl,
                "replica {i} trace, workers={workers}"
            );
            assert_eq!(
                sh.metrics_json, sq.metrics_json,
                "replica {i} metrics, workers={workers}"
            );
            assert_eq!(
                sh.events_executed, sq.events_executed,
                "replica {i} event count, workers={workers}"
            );
            assert!(sh.converged, "replica {i} did not converge");
        }
    }
}

/// Same contract for the elastic-pool pressure scenario (reclaim,
/// relocation, and rebalancing all live behind the boundary).
#[test]
fn pressure_sharded_matches_sequential_at_any_worker_count() {
    let cfgs: Vec<PressureConfig> = [42u64, 7, 1234]
        .into_iter()
        .map(|seed| PressureConfig {
            scale: 64,
            seed,
            trace: true,
            ..PressureConfig::default()
        })
        .collect();
    let sequential: Vec<_> = cfgs.iter().map(pressure::run).collect();
    for workers in [1usize, 2, 4] {
        let sharded = pressure::run_replicated(&cfgs, workers);
        for (i, (sh, sq)) in sharded.iter().zip(&sequential).enumerate() {
            assert_eq!(
                sh.report, sq.report,
                "replica {i} report, workers={workers}"
            );
            assert_eq!(
                sh.trace_jsonl, sq.trace_jsonl,
                "replica {i} trace, workers={workers}"
            );
            assert_eq!(sh.metrics_json, sq.metrics_json);
            assert_eq!(sh.events_executed, sq.events_executed);
            assert_eq!(sh.directory_digest, sq.directory_digest);
        }
    }
}

/// The coupled datacenter scenario (racks exchange boundary messages
/// with a live coordinator) stays byte-identical across worker counts
/// and across repeated runs.
#[test]
fn datacenter_report_is_byte_identical_across_worker_counts() {
    let base = datacenter::run(&DatacenterConfig::small());
    assert!(
        base.converged,
        "datacenter did not converge:\n{}",
        base.report
    );
    let rerun = datacenter::run(&DatacenterConfig::small());
    assert_eq!(base.report, rerun.report, "rerun diverged");
    for workers in [2usize, 4, 8] {
        let r = datacenter::run(&DatacenterConfig {
            workers,
            ..DatacenterConfig::small()
        });
        assert_eq!(base.report, r.report, "workers={workers}");
        assert_eq!(base.events_executed, r.events_executed);
        assert_eq!(base.migrations, r.migrations);
    }
}

/// Same contract for the diurnal scenario with the workload driver and
/// cycle predictor armed: signal ticks, trough deferrals, and staggered
/// firings all ride ordinary DES events, so each shard must stay
/// byte-identical to its own sequential run at 1, 2, and 4 workers.
#[test]
fn diurnal_sharded_matches_sequential_at_any_worker_count() {
    let cfgs: Vec<DiurnalConfig> = [42u64, 7]
        .into_iter()
        .map(|seed| DiurnalConfig {
            predict: true,
            scale: 64,
            seed,
            trace: true,
            ..DiurnalConfig::default()
        })
        .collect();
    let sequential: Vec<_> = cfgs.iter().map(diurnal::run).collect();
    for workers in [1usize, 2, 4] {
        let sharded = diurnal::run_replicated(&cfgs, workers);
        assert_eq!(sharded.len(), sequential.len());
        for (i, (sh, sq)) in sharded.iter().zip(&sequential).enumerate() {
            assert_eq!(
                sh.report, sq.report,
                "replica {i} report, workers={workers}"
            );
            assert_eq!(
                sh.trace_jsonl, sq.trace_jsonl,
                "replica {i} trace, workers={workers}"
            );
            assert_eq!(
                sh.metrics_json, sq.metrics_json,
                "replica {i} metrics, workers={workers}"
            );
            assert_eq!(
                sh.events_executed, sq.events_executed,
                "replica {i} event count, workers={workers}"
            );
        }
    }
}

/// Swapping the WSS estimator is a config change, not a determinism
/// hazard: the estimator A/B scenario — one replica per estimator arm,
/// epoch tracking and the ground-truth oracle armed — must be
/// byte-identical run-to-run and across 1, 2, and 4 workers. (The
/// complementary contract, that the *default* estimator leaves every
/// legacy scenario's goldens untouched, is carried by the three tests
/// above plus `tests/golden_trace.rs`: none of them mention estimators
/// and all predate the trait.)
#[test]
fn estimator_arms_sharded_match_sequential_at_any_worker_count() {
    let cfgs: Vec<EstimatorsConfig> = [WssEstimatorKind::SwapIo, WssEstimatorKind::Pml]
        .into_iter()
        .map(|estimator| EstimatorsConfig {
            estimator,
            scale: 64,
            deadline_secs: 60,
            trace: true,
            ..EstimatorsConfig::default()
        })
        .collect();
    let sequential: Vec<_> = cfgs.iter().map(estimators::run).collect();
    assert_ne!(
        sequential[0].trace_jsonl, sequential[1].trace_jsonl,
        "the two arms produced identical traces — the estimator knob is dead"
    );
    for workers in [1usize, 2, 4] {
        let sharded = estimators::run_replicated(&cfgs, workers);
        assert_eq!(sharded.len(), sequential.len());
        for (i, (sh, sq)) in sharded.iter().zip(&sequential).enumerate() {
            assert_eq!(sh.report, sq.report, "arm {i} report, workers={workers}");
            assert_eq!(
                sh.trace_jsonl, sq.trace_jsonl,
                "arm {i} trace, workers={workers}"
            );
            assert_eq!(
                sh.metrics_json, sq.metrics_json,
                "arm {i} metrics, workers={workers}"
            );
            assert_eq!(
                sh.events_executed, sq.events_executed,
                "arm {i} event count, workers={workers}"
            );
            assert_eq!(sh, sq, "arm {i} full result, workers={workers}");
        }
    }
}

/// A different seed must change the datacenter's event stream (the
/// determinism above is not vacuous).
#[test]
fn datacenter_seed_actually_matters() {
    let a = datacenter::run(&DatacenterConfig::small());
    let b = datacenter::run(&DatacenterConfig {
        seed: 43,
        ..DatacenterConfig::small()
    });
    assert_ne!(a.report, b.report);
}
