//! The headline estimator-blindness fix, pinned as a regression test
//! from the *trace export* (not the internals that produced it).
//!
//! A guest whose working set grows while still fitting under its
//! reservation never swaps — so the paper's iostat estimator (§IV-D)
//! reads a flat zero rate the whole time and keeps the reservation
//! shrunk at the operator floor. The simulated-PML estimator watches
//! dirty-page epochs instead and both *sees* the growth (non-zero,
//! rising WSS estimates crossing the detect threshold well inside the
//! no-swap window) and *acts* on it (reservation sized above the floor
//! and the initial grant). Asserted from the exported JSONL event
//! stream of `scenario::estimators`, one arm per estimator on the same
//! seed.

use agile_cluster::config::WssEstimatorKind;
use agile_cluster::scenario::estimators::{self, EstimatorsConfig, EstimatorsResult};

/// Scenario constants at scale 64 (mirrors `estimators::setup`).
const SCALE: u64 = 64;
const MIB: u64 = 1 << 20;
/// Initial per-VM reservation grant.
const RESV_INIT: u64 = 2304 * MIB / SCALE;
/// Operator floor the swap-I/O controller shrinks to on zero rate.
const RESV_FLOOR: u64 = 2048 * MIB / SCALE;
/// Detect threshold (`EstimatorsConfig::detect_bytes` / scale).
const DETECT: u64 = 512 * MIB / SCALE;
/// End of the guaranteed-no-swap phase.
const NO_SWAP_NS: u64 = 90 * 1_000_000_000;
/// The swap-I/O controller's rate threshold τ (KB/s).
const TAU_KBPS: f64 = 4.0;

fn run(estimator: WssEstimatorKind) -> EstimatorsResult {
    estimators::run(&EstimatorsConfig {
        estimator,
        scale: SCALE,
        deadline_secs: 140,
        trace: true,
        seed: 42,
        ..EstimatorsConfig::default()
    })
}

/// Extract `"key":value` from one exported JSONL line (no quotes around
/// the value — numbers and booleans).
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\":");
    let at = line.find(&pat)? + pat.len();
    let rest = &line[at..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    Some(&rest[..end])
}

fn field_u64(line: &str, key: &str) -> u64 {
    field(line, key)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no u64 {key} in {line}"))
}

fn field_f64(line: &str, key: &str) -> f64 {
    field(line, key)
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("no f64 {key} in {line}"))
}

#[test]
fn growth_without_swap_is_invisible_to_swap_io_but_not_pml() {
    let swap = run(WssEstimatorKind::SwapIo);
    let pml = run(WssEstimatorKind::Pml);
    let swap_trace = swap.trace_jsonl.as_deref().expect("tracing enabled");
    let pml_trace = pml.trace_jsonl.as_deref().expect("tracing enabled");

    // --- Swap-I/O arm, inside the no-swap window: every sample reads a
    // zero rate and the sized reservation never exceeds the initial
    // grant (the controller only ever shrank toward the floor).
    let mut samples_in_window = 0u64;
    for line in swap_trace.lines().filter(|l| l.contains("\"wss_sample\"")) {
        if field_u64(line, "t_ns") >= NO_SWAP_NS {
            continue;
        }
        samples_in_window += 1;
        let rate = field_f64(line, "rate_kbps");
        assert!(
            rate == 0.0,
            "swap arm saw a non-zero rate inside the no-swap window: {line}"
        );
        assert!(rate <= TAU_KBPS, "τ crossed inside the no-swap window");
        assert!(
            field_u64(line, "reservation") <= RESV_INIT,
            "swap arm grew the reservation with zero swap traffic: {line}"
        );
    }
    assert!(samples_in_window >= 10, "swap arm barely sampled");

    // --- Meanwhile the ground-truth oracle riding the same arm shows
    // the working set actually grew past the detect threshold: the
    // estimator was blind, not the guest idle.
    let swap_truths: Vec<u64> = swap_trace
        .lines()
        .filter(|l| l.contains("\"wss_estimate\"") && l.contains("\"estimator\":\"swap_io\""))
        .filter(|l| field_u64(l, "t_ns") < NO_SWAP_NS)
        .map(|l| field_u64(l, "truth_bytes"))
        .collect();
    assert!(!swap_truths.is_empty(), "oracle never drained on swap arm");
    let truth_peak = *swap_truths.iter().max().unwrap();
    assert!(
        truth_peak >= DETECT,
        "ground truth never crossed the detect threshold ({truth_peak} < {DETECT}) — \
         the blindness window is vacuous"
    );
    assert!(
        truth_peak >= 2 * swap_truths[0],
        "working set did not grow inside the window"
    );
    // And the arm's detection (first above-τ rate) happened only after
    // the window, if at all.
    assert!(
        swap.detect_ns >= NO_SWAP_NS,
        "swap arm detected at {} ns, inside the no-swap window",
        swap.detect_ns
    );

    // --- PML arm: non-zero, rising estimates cross the detect
    // threshold well inside the window...
    assert!(
        pml.detect_ns < NO_SWAP_NS,
        "PML arm failed to detect inside the no-swap window ({} ns)",
        pml.detect_ns
    );
    let pml_ests: Vec<(u64, u64, u64)> = pml_trace
        .lines()
        .filter(|l| l.contains("\"wss_estimate\"") && l.contains("\"estimator\":\"pml\""))
        .map(|l| {
            (
                field_u64(l, "t_ns"),
                field_u64(l, "est_bytes"),
                field_u64(l, "reservation"),
            )
        })
        .collect();
    assert!(
        pml_ests
            .iter()
            .any(|&(t, est, _)| t < NO_SWAP_NS && est >= DETECT),
        "no in-window PML estimate reached the detect threshold"
    );
    // ... and the reservation sizing *reacted*: sized above both the
    // floor the swap arm is stuck at and the initial grant.
    let resv_peak = pml_ests.iter().map(|&(_, _, r)| r).max().unwrap_or(0);
    assert!(
        resv_peak > RESV_FLOOR,
        "PML reservation never left the floor ({resv_peak} <= {RESV_FLOOR})"
    );
    assert!(
        resv_peak > RESV_INIT,
        "PML reservation never exceeded the initial grant ({resv_peak} <= {RESV_INIT})"
    );

    // The arms ran the same workload: same guests, same ramp — so the
    // oracle truths should peak in the same ballpark (within 2x).
    let pml_truth_peak = pml_trace
        .lines()
        .filter(|l| l.contains("\"wss_estimate\""))
        .filter(|l| field_u64(l, "t_ns") < NO_SWAP_NS)
        .map(|l| field_u64(l, "truth_bytes"))
        .max()
        .expect("pml arm estimates");
    assert!(
        pml_truth_peak * 2 >= truth_peak && truth_peak * 2 >= pml_truth_peak,
        "arms saw wildly different ground truths: {pml_truth_peak} vs {truth_peak}"
    );
}
