//! Replay-driven conformance suite: run the single-VM migration scenario
//! under all three techniques and assert the paper's phase-level claims
//! from the *exported timeline* — not from the internals that produced
//! it. The same invariants must hold with tracing enabled and disabled,
//! and enabling the tracer must not perturb a single metric (observation
//! must not disturb the simulation).

use agile_cluster::scenario::single_vm::{self, SingleVmConfig, SingleVmResult};
use agile_migration::Technique;
use agile_trace::PhaseKind;

/// Bytes of a full-page entry on the wire (page + 16-byte header) at the
/// default 4 KiB page size.
const PAGE_ENTRY: u64 = 4096 + 16;
/// Bytes of a SWAPPED-flag or zero marker entry.
const MARKER: u64 = 16;

fn run(technique: Technique, busy: bool, trace: bool) -> SingleVmResult {
    single_vm::run(&SingleVmConfig {
        technique,
        busy,
        scale: 64,
        trace,
        seed: 42,
        ..SingleVmConfig::default()
    })
}

/// Invariants every technique must satisfy, asserted from the timeline.
fn check_common(r: &SingleVmResult, label: &str) {
    let t = &r.timeline;
    assert_eq!(t.scenario, "single_vm", "{label}");
    assert!(
        t.total_ns.is_some(),
        "{label}: migration did not finish: {t:?}"
    );
    assert!(t.downtime_ns.is_some(), "{label}: VM never resumed");
    assert!(!t.phases.is_empty(), "{label}: empty phase log");
    // Phase entries are time-ordered with monotone cumulative counters.
    for w in t.phases.windows(2) {
        assert!(w[0].at <= w[1].at, "{label}: phase log out of order");
        assert!(
            w[0].migration_bytes <= w[1].migration_bytes
                && w[0].pages_sent_full <= w[1].pages_sent_full
                && w[0].pages_retransmitted <= w[1].pages_retransmitted,
            "{label}: counter snapshot regressed"
        );
    }
    // SWAPPED-flagged pages never traverse the migration TCP connection
    // as content: the channel carries full pages, 16-byte markers, and
    // framing — nothing else. If a swapped page's 4 KiB ever leaked onto
    // the channel outside `pages_sent_full`, this bound would break.
    let entries = t.pages_sent_full + t.pages_sent_as_offsets + t.pages_sent_zero;
    let framing_slack = 64 * (entries + 2) + 1_000_000; // chunk headers + handoff
    let bound =
        t.pages_sent_full * PAGE_ENTRY + (t.pages_sent_as_offsets + t.pages_sent_zero) * MARKER;
    assert!(
        t.migration_bytes <= bound + framing_slack,
        "{label}: {} bytes on the wire exceeds {} + framing — swapped \
         content leaked onto the migration connection",
        t.migration_bytes,
        bound
    );
}

#[test]
fn agile_runs_exactly_one_precopy_round() {
    for trace in [false, true] {
        let r = run(Technique::Agile, false, trace);
        check_common(&r, "agile");
        let t = &r.timeline;
        assert_eq!(t.rounds, 1, "agile must stop after one live round");
        let live: Vec<_> = t
            .phases
            .iter()
            .filter(|p| p.phase == PhaseKind::LiveRound)
            .collect();
        assert_eq!(live.len(), 1, "agile: exactly one live-round entry");
        assert_eq!(live[0].round, 1);
        // The one live round is followed by handoff and the push phase.
        assert!(t.phases.iter().any(|p| p.phase == PhaseKind::AwaitHandoff));
        assert!(t.phases.iter().any(|p| p.phase == PhaseKind::Push));
        // Swapped state travels as offsets; the Migration Manager never
        // drags it back through the swap device to transfer it.
        assert!(t.pages_sent_as_offsets > 0, "agile sends offset markers");
        assert_eq!(
            t.pages_swapped_in_for_transfer, 0,
            "agile never swaps in to transfer"
        );
    }
}

#[test]
fn baselines_send_no_offset_markers() {
    for technique in [Technique::PreCopy, Technique::PostCopy] {
        let r = run(technique, false, false);
        check_common(&r, "baseline");
        assert_eq!(
            r.timeline.pages_sent_as_offsets, 0,
            "{technique}: SWAPPED-flag markers are Agile-only"
        );
    }
}

#[test]
fn postcopy_downtime_beats_precopy_stop_and_copy() {
    let pre = run(Technique::PreCopy, false, false);
    let post = run(Technique::PostCopy, false, false);
    check_common(&pre, "pre-copy");
    check_common(&post, "post-copy");
    // Pre-copy pays a stop-and-copy of the residual dirty set; post-copy
    // suspends immediately and resumes after just the handoff.
    let d_pre = pre.timeline.downtime_ns.unwrap();
    let d_post = post.timeline.downtime_ns.unwrap();
    assert!(
        d_post < d_pre,
        "post-copy downtime {d_post}ns must beat pre-copy {d_pre}ns"
    );
    assert!(
        pre.timeline
            .phases
            .iter()
            .any(|p| p.phase == PhaseKind::StopAndCopy),
        "pre-copy runs a stop-and-copy phase"
    );
    assert!(
        post.timeline
            .phases
            .iter()
            .all(|p| p.phase != PhaseKind::StopAndCopy),
        "post-copy has no stop-and-copy phase"
    );
}

#[test]
fn agile_demand_pages_cold_state_from_the_vmd() {
    // A busy guest keeps touching pages after resume, so post-resume
    // faults exercise the routing: cold (swapped) pages must be served by
    // the per-VM swap device — the VMD — and never demand-paged from the
    // source, which only answers for pages dirtied in the live round.
    let r = run(Technique::Agile, true, true);
    let t = &r.timeline;
    assert!(t.total_ns.is_some(), "busy agile migration did not finish");
    assert!(
        t.dest_pages_faulted_from_swap > 0,
        "busy agile run must fault cold pages in from the VMD: {t:?}"
    );
    assert!(
        t.dest_pages_faulted_from_source <= t.push_set_pages,
        "only live-round-dirtied pages may be demand-paged from the source"
    );
    // The trace agrees: faults routed to the swap path show up as
    // `fault_routed` events with path "from_swap". (The count can sit
    // below the timeline's — a fault whose read is already in flight is
    // resolved by the completion without re-entering the router.)
    let jsonl = r.trace_jsonl.as_ref().expect("tracing was on");
    let from_swap = jsonl.matches("\"path\":\"from_swap\"").count() as u64;
    assert!(
        from_swap > 0,
        "busy agile trace must show from_swap fault routings"
    );
}

#[test]
fn tracing_does_not_perturb_the_simulation() {
    for technique in [Technique::PreCopy, Technique::PostCopy, Technique::Agile] {
        let off = run(technique, false, false);
        let on = run(technique, false, true);
        assert_eq!(
            format!("{:?}", off.metrics),
            format!("{:?}", on.metrics),
            "{technique}: enabling the tracer changed the metrics"
        );
        assert_eq!(
            off.timeline, on.timeline,
            "{technique}: enabling the tracer changed the timeline"
        );
        assert!(off.trace_jsonl.is_none() && on.trace_jsonl.is_some());
        // The traced run actually captured the migration lifecycle.
        let jsonl = on.trace_jsonl.unwrap();
        for ev in ["mig_start", "mig_suspend", "mig_resume", "mig_complete"] {
            assert!(
                jsonl.contains(&format!("\"ev\":\"{ev}\"")),
                "{technique}: missing {ev} in trace"
            );
        }
    }
}
