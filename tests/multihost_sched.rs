//! Cluster-scheduler acceptance tests: the 4 hosts × 8 VMs multihost
//! scenario must rebalance below every high watermark with zero
//! ping-pong, respect the admission cap, and export byte-identical
//! reports and traces across same-seed runs; a 2-host variant pins the
//! end-to-end "one firing selects two VMs that migrate concurrently over
//! a shared NIC" behavior.

use agile_cluster::scenario::multihost::{self, MultihostConfig};

fn cfg(seed: u64) -> MultihostConfig {
    MultihostConfig {
        scale: 64,
        seed,
        trace: true,
        ..MultihostConfig::default()
    }
}

/// Acceptance: 4 hosts × 8 VMs rebalance below all high watermarks with
/// zero ping-pong, under the concurrency cap, byte-identically per seed.
#[test]
fn multihost_rebalances_deterministically_without_pingpong() {
    let a = multihost::run(&cfg(42));
    let b = multihost::run(&cfg(42));

    // Golden: report + TRACE export + metrics byte-identical per seed.
    assert_eq!(a.report, b.report, "report diverged between identical runs");
    assert_eq!(
        a.trace_jsonl, b.trace_jsonl,
        "trace export diverged between identical runs"
    );
    assert_eq!(a.metrics_json, b.metrics_json);
    assert_eq!(a.events_executed, b.events_executed);

    assert!(a.converged, "cluster did not rebalance:\n{}", a.report);
    for (i, (&agg, &high)) in a.final_aggregates.iter().zip(&a.high_bytes).enumerate() {
        assert!(agg <= high, "host{i} still above high: {agg} > {high}");
    }
    // Zero ping-pong: no VM migrated twice.
    assert!(
        a.max_vm_migrations <= 1,
        "ping-pong: a VM migrated {} times\n{}",
        a.max_vm_migrations,
        a.report
    );
    // The admission cap was respected and actually exercised.
    assert!(a.counters.max_in_flight_observed <= 2);
    assert!(
        a.counters.queued >= 1,
        "expected selections to queue behind the cap\n{}",
        a.report
    );
    assert_eq!(a.counters.started, a.counters.completed);
    assert_eq!(a.counters.started as usize, a.migrations.len());
    assert!(a.migrations.iter().all(|m| m.finished));

    // Both packed hosts emptied onto both spare hosts (least-loaded
    // placement spreads rather than piling onto one destination).
    let dests: std::collections::BTreeSet<usize> = a.migrations.iter().map(|m| m.dest).collect();
    assert!(dests.len() >= 2, "all migrations picked one destination");

    // Scheduler decisions made it into the trace and metrics exports.
    let trace = a.trace_jsonl.as_deref().expect("tracing enabled");
    assert!(trace.contains("\"ev\":\"sched_decision\""));
    assert!(trace.contains("\"action\":\"queue\""));
    assert!(a.metrics_json.contains("\"sched.started\""));
}

/// End-to-end watermark firing: with only one spare host, one firing
/// selects two VMs which migrate *concurrently* over the source host's
/// shared NIC; both complete (content check armed in the scheduler), and
/// the report is byte-identical across same-seed runs.
#[test]
fn one_firing_migrates_two_vms_concurrently_over_shared_nic() {
    let two_host = |seed| MultihostConfig {
        hosts: 2,
        vms: 4,
        ..cfg(seed)
    };
    let a = multihost::run(&two_host(7));
    let b = multihost::run(&two_host(7));
    assert_eq!(a.report, b.report, "report diverged between identical runs");
    assert_eq!(a.trace_jsonl, b.trace_jsonl);

    assert!(a.converged, "did not converge:\n{}", a.report);
    assert_eq!(
        a.migrations.len(),
        2,
        "one firing should select exactly two VMs\n{}",
        a.report
    );
    let (m0, m1) = (a.migrations[0], a.migrations[1]);
    assert!(m0.finished && m1.finished);
    // Same source (shared NIC), started in the same firing, and their
    // transfer intervals overlap — truly concurrent.
    assert_eq!(m0.src, m1.src);
    assert_eq!(m0.start_ns, m1.start_ns, "started in different firings");
    assert!(
        m0.start_ns < m1.end_ns && m1.start_ns < m0.end_ns,
        "migrations did not overlap: {m0:?} vs {m1:?}"
    );
    assert!(a.max_vm_migrations <= 1);
    assert!(a.counters.max_in_flight_observed == 2);
}
