//! Golden-trace determinism: the same seed must produce a byte-identical
//! scenario report and the exact same number of executed events, run after
//! run. This is the contract the allocation-free hot paths (slab event
//! queue, incremental rate recomputation, word-level bitmap scans) must
//! not break: they may reorder *work*, never *events*.

use agile_cluster::scenario::ycsb::{self, YcsbScenarioConfig};
use agile_migration::Technique;

fn reduced_cfg(seed: u64) -> YcsbScenarioConfig {
    YcsbScenarioConfig {
        technique: Technique::Agile,
        scale: 256,
        n_vms: 2,
        duration_secs: 90,
        ramp_start_secs: 25,
        ramp_step_secs: 10,
        migrate_at_secs: 40,
        read_ratio: 0.65,
        measure_window_secs: 40,
        seed,
    }
}

/// The report, rendered to a canonical byte string. Debug formatting of
/// f64 is exact (shortest round-trip representation), so two reports are
/// byte-identical iff every field — including every float in the
/// throughput series — is bit-identical.
fn fingerprint(r: &ycsb::YcsbScenarioResult) -> String {
    format!("{r:?}")
}

#[test]
fn ycsb_golden_trace_is_reproducible_per_seed() {
    for seed in [11u64, 47u64] {
        let a = ycsb::run(&reduced_cfg(seed));
        let b = ycsb::run(&reduced_cfg(seed));
        assert_eq!(
            a.events_executed, b.events_executed,
            "seed {seed}: event count diverged between identical runs"
        );
        assert!(
            a.events_executed > 10_000,
            "seed {seed}: scenario too idle to be a meaningful fingerprint ({} events)",
            a.events_executed
        );
        assert_eq!(
            fingerprint(&a),
            fingerprint(&b),
            "seed {seed}: report diverged between identical runs"
        );
        assert!(
            a.metrics.total_time().is_some(),
            "seed {seed}: migration did not finish"
        );
    }
}

/// Chaos runs are part of the deterministic event stream: a scenario with
/// a *generated* fault schedule (server crash + rejoin drawn from a seed)
/// replays to the exact same event count and a byte-identical report.
#[test]
fn chaos_golden_trace_is_reproducible_per_seed() {
    use agile_chaos::{ChaosProfile, ChaosSchedule};
    use agile_cluster::scenario::chaos::{self, ChaosScenarioConfig};
    use agile_sim_core::{SeedSequence, SimTime};

    let run = |seed: u64| {
        let profile = ChaosProfile {
            window_start: SimTime::from_secs(8),
            window_end: SimTime::from_secs(13),
            n_servers: 3,
            server_crashes: 1,
            ..ChaosProfile::default()
        };
        chaos::run(&ChaosScenarioConfig {
            scale: 64,
            replication: 2,
            vmd_servers: 3,
            schedule: ChaosSchedule::generate(&profile, &SeedSequence::new(seed)),
            warmup_secs: 10,
            deadline_secs: 600,
            seed,
            ..Default::default()
        })
    };
    let a = run(23);
    let b = run(23);
    assert_eq!(
        a.events_executed, b.events_executed,
        "chaos event count diverged between identical runs"
    );
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
    assert!(a.finished && a.crashes.len() == 1, "{a:?}");
    let c = run(24);
    assert_ne!(format!("{a:?}"), format!("{c:?}"), "seed is being ignored");
}

#[test]
fn ycsb_golden_trace_differs_across_seeds() {
    let a = ycsb::run(&reduced_cfg(11));
    let b = ycsb::run(&reduced_cfg(47));
    // Different seeds drive different workload samples; if the reports
    // collide the scenario is ignoring its seed.
    assert_ne!(fingerprint(&a), fingerprint(&b), "seed is being ignored");
}

/// Chaos fault windows must appear as spans in the event trace: every
/// injected fault records a `chaos_fault` event, window-opening faults
/// with `start:true` and the matching rejoin/restore with `start:false`.
#[test]
fn chaos_fault_windows_appear_as_trace_spans() {
    use agile_chaos::ChaosSchedule;
    use agile_cluster::scenario::chaos::{self, ChaosScenarioConfig};
    use agile_sim_core::{SimDuration, SimTime};

    let schedule = ChaosSchedule::builder()
        .server_outage(
            0,
            SimTime::from_secs(10) + SimDuration::from_millis(200),
            SimDuration::from_secs(10),
        )
        .build();
    let r = chaos::run(&ChaosScenarioConfig {
        scale: 64,
        replication: 2,
        vmd_servers: 3,
        schedule,
        warmup_secs: 10,
        deadline_secs: 600,
        seed: 7,
        trace: true,
        ..Default::default()
    });
    assert!(r.finished, "{r:?}");
    let jsonl = r.trace_jsonl.as_ref().expect("tracing was on");
    let crash = "\"ev\":\"chaos_fault\",\"kind\":\"server_crash\",\"target\":0,\"start\":true";
    let rejoin = "\"ev\":\"chaos_fault\",\"kind\":\"server_rejoin\",\"target\":0,\"start\":false";
    assert!(jsonl.contains(crash), "missing crash span open");
    assert!(jsonl.contains(rejoin), "missing crash span close");
    assert!(
        jsonl.find(crash).unwrap() < jsonl.find(rejoin).unwrap(),
        "span closed before it opened"
    );
    // The recovery machinery shows up between the spans too: the clients
    // kept talking to the VMD while the window was open.
    assert!(jsonl.contains("\"ev\":\"vmd\""), "no VMD activity traced");
}

/// A chaos-free run's trace export is part of the determinism contract:
/// two same-seed invocations must produce byte-identical JSONL.
#[test]
fn trace_export_is_byte_identical_across_same_seed_runs() {
    use agile_cluster::scenario::single_vm::{self, SingleVmConfig};

    let run = || {
        single_vm::run(&SingleVmConfig {
            technique: Technique::Agile,
            scale: 64,
            trace: true,
            seed: 42,
            ..SingleVmConfig::default()
        })
    };
    let a = run();
    let b = run();
    let ja = a.trace_jsonl.expect("tracing was on");
    let jb = b.trace_jsonl.expect("tracing was on");
    assert!(!ja.is_empty());
    assert_eq!(ja, jb, "trace export diverged between identical runs");
    assert_eq!(
        a.timeline.to_json(),
        b.timeline.to_json(),
        "timeline export diverged between identical runs"
    );
}
