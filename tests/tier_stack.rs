//! Tier-stack invariants at the scenario level.
//!
//! * **Tier-collapse metamorphic suite**: splitting a spill tier into two
//!   adjacent equal-cost halves must be behaviorally invisible — the
//!   placement policy promotes to the *cheapest strictly cheaper* tier
//!   and spills to the *cheapest strictly costlier* tier, so an
//!   equal-cost split changes bookkeeping shape but not one guest-visible
//!   nanosecond. The fault-latency histograms must be byte-identical.
//! * **Sharded equivalence**: `scenario::tiers` under the conservative
//!   epoch harness must match its sequential driver at every worker
//!   count.

use agile::cluster::scenario::tiers::{self, TierArm, TiersConfig};

fn point(arm: TierArm, dram_pct: u64, split_spill: bool) -> TiersConfig {
    TiersConfig {
        arm,
        dram_pct,
        split_spill,
        scale: 64,
        seed: 42,
        ..TiersConfig::default()
    }
}

/// Splitting the SSD spill tier in half (two adjacent `HostSsd` tiers
/// with identical cost) must not move a single fault by a nanosecond:
/// identical histograms, downtime, migration time, bytes, and event
/// count — only the per-tier page breakdown is allowed to differ in
/// shape (its spill *sum* must still match).
#[test]
fn equal_cost_tier_split_is_metamorphically_invisible() {
    for arm in [TierArm::ScarceDram, TierArm::FarMemory] {
        let merged = tiers::run(&point(arm, 60, false));
        let split = tiers::run(&point(arm, 60, true));
        let label = arm.label();
        assert_eq!(
            merged.hist_digest, split.hist_digest,
            "{label}: fault-latency histogram changed under an equal-cost tier split"
        );
        assert_eq!(merged.faults, split.faults, "{label}: fault count");
        assert_eq!(merged.fault_mean_ns, split.fault_mean_ns, "{label}: mean");
        assert_eq!(merged.fault_p50_ns, split.fault_p50_ns, "{label}: p50");
        assert_eq!(merged.fault_p99_ns, split.fault_p99_ns, "{label}: p99");
        assert_eq!(merged.fault_max_ns, split.fault_max_ns, "{label}: max");
        assert_eq!(merged.downtime_ns, split.downtime_ns, "{label}: downtime");
        assert_eq!(
            merged.migration_ns, split.migration_ns,
            "{label}: migration time"
        );
        assert_eq!(
            merged.migration_bytes, split.migration_bytes,
            "{label}: migration bytes"
        );
        assert_eq!(
            merged.events_executed, split.events_executed,
            "{label}: event count"
        );
        // The split run has one more tier; the spilled total is the same.
        assert_eq!(merged.tier_pages.len() + 1, split.tier_pages.len());
        assert_eq!(merged.tier_pages[0], split.tier_pages[0], "{label}: dram");
        assert_eq!(
            merged.tier_pages[1..].iter().sum::<u64>(),
            split.tier_pages[1..].iter().sum::<u64>(),
            "{label}: spilled pages"
        );
    }
}

/// The tier sweep under the sharded epoch harness is byte-identical to
/// the sequential driver at 1, 2, and 4 workers.
#[test]
fn tiers_sharded_matches_sequential_at_any_worker_count() {
    let cfgs = vec![
        point(TierArm::ScarceDram, 60, false),
        point(TierArm::FarMemory, 240, false),
    ];
    let sequential: Vec<_> = cfgs.iter().map(tiers::run).collect();
    for workers in [1usize, 2, 4] {
        let sharded = tiers::run_replicated(&cfgs, workers);
        assert_eq!(sharded.len(), sequential.len());
        for (i, (sh, sq)) in sharded.iter().zip(&sequential).enumerate() {
            assert_eq!(sh, sq, "replica {i} diverged at workers={workers}");
        }
    }
}
