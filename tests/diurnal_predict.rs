//! The headline claim of the cycle predictor, pinned as a hard gate:
//! on the diurnal/flash-crowd scenario, arming the trough-aware
//! deferral layer makes migrations strictly cheaper on BOTH axes —
//! total bytes on the migration channels AND p99 downtime — versus
//! naive watermark firing on the same seed. `BENCH_3.json` records the
//! same comparison at the same scale.

use agile_cluster::scenario::diurnal::{self, DiurnalConfig};

fn base() -> DiurnalConfig {
    DiurnalConfig {
        scale: 64,
        seed: 42,
        ..DiurnalConfig::default()
    }
}

/// Trough-scheduled migrations beat naive firing on bytes AND downtime.
#[test]
fn predictor_beats_naive_on_bytes_and_downtime() {
    let naive = diurnal::run(&DiurnalConfig {
        predict: false,
        ..base()
    });
    let predicted = diurnal::run(&DiurnalConfig {
        predict: true,
        ..base()
    });

    // Both arms observe the same breaches and migrate the same VMs.
    assert!(!naive.migrations.is_empty(), "naive run never migrated");
    assert_eq!(
        naive.migrations.len(),
        predicted.migrations.len(),
        "arms migrated different VM counts"
    );
    let mut nv: Vec<usize> = naive.migrations.iter().map(|m| m.vm).collect();
    let mut pv: Vec<usize> = predicted.migrations.iter().map(|m| m.vm).collect();
    nv.sort_unstable();
    pv.sort_unstable();
    assert_eq!(nv, pv, "arms migrated different VMs");

    // The predictor actually engaged: every migration was deferred and
    // every deferral landed on a genuine trough.
    let p = predicted.predict.expect("predictor armed");
    assert_eq!(p.deferrals, predicted.migrations.len() as u64);
    assert_eq!(p.trough_hits, p.deferrals);
    assert_eq!(p.window_expiries, 0);
    assert_eq!(p.cancelled, 0);
    assert!(p.cycles_detected > 0);

    // The acceptance gate: strictly fewer bytes AND strictly lower p99
    // downtime.
    assert!(
        predicted.total_bytes < naive.total_bytes,
        "predicted moved {} bytes, naive {}",
        predicted.total_bytes,
        naive.total_bytes
    );
    assert!(
        predicted.total_pages_full < naive.total_pages_full,
        "predicted shipped {} full pages, naive {}",
        predicted.total_pages_full,
        naive.total_pages_full
    );
    assert!(
        predicted.downtime_p99_ns < naive.downtime_p99_ns,
        "predicted p99 downtime {} ns, naive {} ns",
        predicted.downtime_p99_ns,
        naive.downtime_p99_ns
    );
}

/// Same seed twice ⇒ byte-identical report and event count (the
/// determinism contract the golden suite relies on).
#[test]
fn predicted_run_is_deterministic() {
    let cfg = DiurnalConfig {
        predict: true,
        trace: true,
        ..base()
    };
    let a = diurnal::run(&cfg);
    let b = diurnal::run(&cfg);
    assert_eq!(a.report, b.report);
    assert_eq!(a.trace_jsonl, b.trace_jsonl);
    assert_eq!(a.metrics_json, b.metrics_json);
    assert_eq!(a.events_executed, b.events_executed);
}
