//! Workspace integration tests: run scaled-down versions of each paper
//! experiment and assert the qualitative results the paper reports.

use agile::cluster::scenario::single_vm::{self, SingleVmConfig};
use agile::cluster::scenario::wss::{self, WssScenarioConfig};
use agile::cluster::scenario::ycsb::{self, YcsbScenarioConfig};
use agile::sim::GIB;
use agile::Technique;

fn ycsb_cfg(technique: Technique) -> YcsbScenarioConfig {
    YcsbScenarioConfig {
        technique,
        // 1/64 scale: small enough to run in CI, large enough that the
        // swapped portion of each VM (~70 MiB) dominates the baselines'
        // migration path the way the paper's 4.5 GB does.
        scale: 64,
        duration_secs: 280,
        ramp_start_secs: 25,
        ramp_step_secs: 10,
        // ~95 s of full four-VM thrash before the migration; the elevated
        // write share (20% vs the paper's read-mostly clients) churns the
        // baselines' swap layout as much as ~400 s does at default rates,
        // keeping the test short while exercising the same mechanism.
        migrate_at_secs: 150,
        measure_window_secs: 100,
        ..Default::default()
    }
}

/// §V-A / Tables I–III: Agile migrates fastest, moves the least data, and
/// hurts application throughput the least; pre-copy is the worst performer.
#[test]
fn ycsb_pressure_orderings_match_the_paper() {
    let agile = ycsb::run(&ycsb_cfg(Technique::Agile));
    let post = ycsb::run(&ycsb_cfg(Technique::PostCopy));
    let pre = ycsb::run(&ycsb_cfg(Technique::PreCopy));

    let t_agile = agile.metrics.total_time().expect("agile completed");
    let t_post = post.metrics.total_time().expect("post-copy completed");
    let t_pre = pre.metrics.total_time().expect("pre-copy completed");

    // Table II ordering: agile < post-copy ≤ pre-copy.
    assert!(t_agile < t_post, "agile {t_agile} !< post {t_post}");
    assert!(t_agile < t_pre, "agile {t_agile} !< pre {t_pre}");
    assert!(t_post <= t_pre, "post {t_post} !<= pre {t_pre}");

    // Table III ordering: agile moves the least data; pre-copy the most.
    assert!(agile.metrics.migration_bytes < post.metrics.migration_bytes);
    assert!(post.metrics.migration_bytes <= pre.metrics.migration_bytes);

    // Table I ordering: application performance agile > post > pre.
    assert!(
        agile.avg_during_migration > post.avg_during_migration,
        "agile {} !> post {}",
        agile.avg_during_migration,
        post.avg_during_migration
    );
    assert!(
        post.avg_during_migration > pre.avg_during_migration,
        "post {} !> pre {}",
        post.avg_during_migration,
        pre.avg_during_migration
    );

    // Mechanism checks: agile never touched the swap device for transfer
    // and shipped swapped pages as offsets.
    assert_eq!(agile.metrics.pages_swapped_in_for_transfer, 0);
    assert!(agile.metrics.pages_sent_as_offsets > 0);
    assert!(pre.metrics.pages_swapped_in_for_transfer > 0);
    assert!(post.metrics.pages_swapped_in_for_transfer > 0);

    // The throughput timeline shows the pressure dip: mean throughput in
    // the thrash window is well below the pre-ramp peak.
    // The throughput timeline shows the pressure dip. The SSD-backed
    // baselines collapse hard (readahead-amplified device queueing); the
    // VMD-backed Agile setup dips more shallowly (remote-memory faults
    // are cheaper than a thrashing SSD — part of the paper's premise).
    for (r, bound) in [(&agile, 0.85), (&post, 0.7), (&pre, 0.7)] {
        let thrash: Vec<f64> = r
            .series
            .iter()
            .filter(|(t, _)| *t >= 130 && *t < 149)
            .map(|(_, v)| *v)
            .collect();
        let mean = thrash.iter().sum::<f64>() / thrash.len().max(1) as f64;
        assert!(
            mean < bound * r.peak_reference,
            "no visible memory-pressure dip: {mean} vs peak {}",
            r.peak_reference
        );
    }
}

fn sweep_cfg(technique: Technique, vm_gib: u64, busy: bool) -> SingleVmConfig {
    SingleVmConfig {
        technique,
        vm_mem: vm_gib * GIB,
        host_mem: 6 * GIB,
        busy,
        scale: 64,
        warmup_secs: 15,
        deadline_secs: 2000,
        ..Default::default()
    }
}

/// Fig. 8: baselines transfer the whole VM (linear in VM size); Agile
/// transfers only the resident set, flat once the VM exceeds the host.
#[test]
fn single_vm_data_transferred_shapes() {
    // VM sizes straddling the 6 GB host size.
    let small = 4u64;
    let large = 10u64;

    let agile_small = single_vm::run(&sweep_cfg(Technique::Agile, small, false));
    let agile_large = single_vm::run(&sweep_cfg(Technique::Agile, large, false));
    let post_small = single_vm::run(&sweep_cfg(Technique::PostCopy, small, false));
    let post_large = single_vm::run(&sweep_cfg(Technique::PostCopy, large, false));

    // Post-copy grows ~linearly with VM size.
    let post_ratio = post_large.migration_bytes as f64 / post_small.migration_bytes as f64;
    let size_ratio = large as f64 / small as f64;
    assert!(
        (post_ratio - size_ratio).abs() / size_ratio < 0.25,
        "post-copy bytes not linear: ratio {post_ratio} vs size ratio {size_ratio}"
    );

    // Agile stays (nearly) flat once the VM exceeds host memory: the
    // 10 GiB VM moves barely more than the 4 GiB one (only the resident
    // set travels).
    let agile_ratio = agile_large.migration_bytes as f64 / agile_small.migration_bytes as f64;
    assert!(
        agile_ratio < 1.6,
        "agile bytes should be ~flat, got ratio {agile_ratio}"
    );
    // And far below post-copy for the large VM.
    assert!(
        (agile_large.migration_bytes as f64) < 0.7 * post_large.migration_bytes as f64,
        "agile {} !<< post {}",
        agile_large.migration_bytes,
        post_large.migration_bytes
    );
}

/// Fig. 7: once the VM outgrows the host, a busy VM makes pre/post-copy
/// much slower (swap thrashing), while Agile stays fast.
#[test]
fn single_vm_migration_time_shapes() {
    let vm_gib = 10u64; // > 6 GiB host: lots of swapped state
    let agile = single_vm::run(&sweep_cfg(Technique::Agile, vm_gib, true));
    let pre = single_vm::run(&sweep_cfg(Technique::PreCopy, vm_gib, true));
    let post = single_vm::run(&sweep_cfg(Technique::PostCopy, vm_gib, true));

    assert!(
        agile.migration_secs < post.migration_secs,
        "agile {} !< post {}",
        agile.migration_secs,
        post.migration_secs
    );
    assert!(
        agile.migration_secs < pre.migration_secs,
        "agile {} !< pre {}",
        agile.migration_secs,
        pre.migration_secs
    );
    // The idle VM of the same size migrates faster than the busy one for
    // the baselines (guest paging competes with the migration swap-ins).
    let post_idle = single_vm::run(&sweep_cfg(Technique::PostCopy, vm_gib, false));
    assert!(
        post_idle.migration_secs < post.migration_secs,
        "idle {} !< busy {}",
        post_idle.migration_secs,
        post.migration_secs
    );
}

/// Fig. 9: the reservation controller converges onto the true working set.
#[test]
fn wss_tracking_converges() {
    let cfg = WssScenarioConfig {
        scale: 64,
        duration_secs: 420,
        ..Default::default()
    };
    let r = wss::run(&cfg);
    assert!(
        !r.reservation_series.is_empty(),
        "tracking produced no samples"
    );
    // The controller hovers above the WSS in a slow sawtooth (evict →
    // refill → decay; the paper's Fig. 9 shows the same envelope), so
    // assert on the median of the settled half rather than the final
    // sample, whose value depends on the oscillation phase.
    let mut settled: Vec<f64> = r
        .reservation_series
        .iter()
        .filter(|(t, _)| *t > cfg.duration_secs as f64 / 2.0)
        .map(|(_, v)| *v)
        .collect();
    settled.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let median = settled[settled.len() / 2];
    let err = (median - r.true_wss_bytes as f64) / r.true_wss_bytes as f64;
    assert!(
        (-0.15..0.45).contains(&err),
        "median reservation {} vs true WSS {} (err {:.2})",
        median,
        r.true_wss_bytes,
        err
    );
    // The reservation must have come down a long way from the initial
    // full-VM value (5 GiB/scale) toward the ~2 GiB/scale working set.
    let initial = r.reservation_series.first().map(|(_, v)| *v).unwrap_or(0.0);
    assert!(
        median < 0.7 * initial,
        "reservation never shrank: {median} vs initial {initial}"
    );
    // Fig. 10: throughput at the end is healthy (the tracker did not
    // strangle the workload).
    let late: Vec<f64> = r
        .throughput_series
        .iter()
        .filter(|(t, _)| *t > cfg.duration_secs - 60)
        .map(|(_, v)| *v)
        .collect();
    let peak = r
        .throughput_series
        .iter()
        .map(|(_, v)| *v)
        .fold(0.0f64, f64::max);
    let late_mean = late.iter().sum::<f64>() / late.len().max(1) as f64;
    assert!(
        late_mean > 0.6 * peak,
        "workload strangled: late {late_mean} vs peak {peak}"
    );
}
