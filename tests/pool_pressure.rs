//! Elastic-pool acceptance tests: a donor-demand ramp that halves the
//! pool's capacity must lose zero pages at k = 2 with byte-identical
//! exports across same-seed runs; the skew-aware rebalancer must strictly
//! lower the per-server utilization spread; conservation must hold across
//! any reclaim/rebalance schedule at k = 1; and a server crash racing the
//! reclaim pump must still lose nothing at k = 2.

use agile_cluster::scenario::pressure::{self, PressureConfig};

fn cfg(seed: u64) -> PressureConfig {
    PressureConfig {
        scale: 128,
        seed,
        trace: true,
        ..PressureConfig::default()
    }
}

/// Acceptance: the skewed demand ramp halves pool capacity; every page
/// survives (relocated or demoted, never dropped), and the report, trace,
/// and metrics exports are byte-identical across same-seed runs.
#[test]
fn reclaim_preserves_every_page_deterministically() {
    let a = pressure::run(&cfg(42));
    let b = pressure::run(&cfg(42));

    assert_eq!(a.report, b.report, "report diverged between identical runs");
    assert_eq!(
        a.trace_jsonl, b.trace_jsonl,
        "trace export diverged between identical runs"
    );
    assert_eq!(a.metrics_json, b.metrics_json);
    assert_eq!(a.events_executed, b.events_executed);
    assert_eq!(a.directory_digest, b.directory_digest);

    assert!(a.converged, "pool never went quiescent:\n{}", a.report);
    assert_eq!(a.lost_placements, 0, "slots lost placement:\n{}", a.report);
    assert_eq!(
        a.directory_replicas, a.stored_pages,
        "directory and stores disagree:\n{}",
        a.report
    );
    // Every namespace kept its full k=2 replica complement.
    let expected = a.per_namespace[0].1;
    assert!(expected > 0);
    for &(ns, total) in &a.per_namespace {
        assert_eq!(total, expected, "ns{ns} lost replicas:\n{}", a.report);
    }
    // The ramp actually exercised the machinery.
    assert!(a.counters.leases_shrunk > 0, "no lease ever shrank");
    assert!(a.counters.pages_relocated > 0, "no page was relocated");
    // The squeezed donor ended within its lease.
    assert!(
        a.final_leases[0] < a.final_leases[1],
        "skewed ramp did not skew leases:\n{}",
        a.report
    );
    // Trace carries the new pool events.
    let trace = a.trace_jsonl.as_ref().expect("tracing on");
    assert!(trace.contains("\"ev\":\"pool_lease\""));
    assert!(trace.contains("\"ev\":\"pool_reclaim\""));
}

/// Acceptance: with the rebalancer on, the final utilization spread is
/// strictly lower than with it off (same seed, same ramp).
#[test]
fn rebalancer_strictly_lowers_utilization_spread() {
    let off = pressure::run(&PressureConfig {
        rebalance: false,
        ..cfg(42)
    });
    let on = pressure::run(&cfg(42));

    assert!(off.converged && on.converged);
    assert_eq!(off.lost_placements, 0);
    assert_eq!(on.lost_placements, 0);
    assert_eq!(off.counters.rebalance_moves, 0);
    assert!(on.counters.rebalance_moves > 0, "rebalancer never acted");
    assert!(
        on.final_spread < off.final_spread,
        "rebalancer did not lower the spread: on={:?} off={:?}\n{}",
        on.final_spread,
        off.final_spread,
        on.report
    );
    assert!(on
        .trace_jsonl
        .as_ref()
        .expect("tracing on")
        .contains("\"ev\":\"pool_rebalance\""));
}

/// Metamorphic conservation at k = 1 (no crashes): whatever the
/// reclaim/rebalance schedule, every namespace keeps exactly the same
/// number of stored pages — moves relocate content, never create or drop
/// it — and replaying one schedule reproduces the directory byte-for-byte.
#[test]
fn conservation_holds_across_reclaim_schedules() {
    let schedules = [
        PressureConfig {
            replication: 1,
            rebalance: false,
            ..cfg(7)
        },
        PressureConfig {
            replication: 1,
            ..cfg(7)
        },
        PressureConfig {
            replication: 1,
            rebalance_threshold: 0.05,
            ..cfg(7)
        },
    ];
    let results: Vec<_> = schedules.iter().map(pressure::run).collect();
    for (i, r) in results.iter().enumerate() {
        assert!(r.converged, "schedule {i} never quiesced:\n{}", r.report);
        assert_eq!(r.lost_placements, 0, "schedule {i} lost slots");
        assert_eq!(
            r.directory_replicas, r.stored_pages,
            "schedule {i}: directory and stores disagree:\n{}",
            r.report
        );
        assert_eq!(
            r.per_namespace, results[0].per_namespace,
            "schedule {i} changed per-namespace totals:\n{}",
            r.report
        );
    }
    // Replica order after relocations is deterministic: replaying the
    // most aggressive schedule reproduces the directory exactly.
    let replay = pressure::run(&schedules[2]);
    assert_eq!(replay.directory_digest, results[2].directory_digest);
    assert_eq!(replay.report, results[2].report);
}

/// A donor crash racing the reclaim pump at k = 2: in-flight relocations
/// abort cleanly, the repair pump restores replication, and no namespace
/// loses a single placement.
#[test]
fn reclaim_racing_server_crash_loses_nothing() {
    let r = pressure::run(&PressureConfig {
        crash_server: Some(1),
        crash_at_secs: 8,
        ..cfg(42)
    });
    assert!(
        r.converged,
        "pool never quiesced after crash:\n{}",
        r.report
    );
    assert_eq!(
        r.lost_placements, 0,
        "crash during reclaim lost slots:\n{}",
        r.report
    );
    assert_eq!(
        r.directory_replicas, r.stored_pages,
        "directory and stores disagree after recovery:\n{}",
        r.report
    );
    let expected = r.per_namespace[0].1;
    for &(ns, total) in &r.per_namespace {
        assert_eq!(total, expected, "ns{ns} under-replicated:\n{}", r.report);
    }
    // Determinism holds under chaos too.
    let again = pressure::run(&PressureConfig {
        crash_server: Some(1),
        crash_at_secs: 8,
        ..cfg(42)
    });
    assert_eq!(r.report, again.report);
    assert_eq!(r.trace_jsonl, again.trace_jsonl);
}

/// Cost-aware reclaim: with a heat-driven stack whose spill tier is far
/// cheaper than a network round trip (CXL-like far memory at ~2 µs vs a
/// ~170 µs relocation), the reclaim pump must demote locally even though
/// remote headroom exists — and still lose nothing, deterministically.
/// The legacy stack under the identical ramp relocates instead.
#[test]
fn cheap_spill_tier_flips_reclaim_from_relocate_to_demote() {
    use agile::sim::SimDuration;
    use agile::vmd::{HeatPolicy, TierSpec, TierStackConfig};
    let legacy = pressure::run(&PressureConfig {
        rebalance: false,
        ..cfg(42)
    });
    assert!(legacy.converged);
    assert!(
        legacy.counters.pages_relocated > 0,
        "legacy ramp did not relocate:\n{}",
        legacy.report
    );

    let far = TierSpec::far_memory(1 << 22, SimDuration::from_micros(2), 16 << 30, 4096);
    let tiers = TierStackConfig::new(&[TierSpec::dram(), far], HeatPolicy::heat_driven());
    let tiered = pressure::run(&PressureConfig {
        rebalance: false,
        tiers,
        ..cfg(42)
    });
    assert!(
        tiered.converged,
        "tiered pool never quiesced:\n{}",
        tiered.report
    );
    assert_eq!(tiered.lost_placements, 0, "{}", tiered.report);
    assert_eq!(
        tiered.directory_replicas, tiered.stored_pages,
        "directory and stores disagree:\n{}",
        tiered.report
    );
    assert!(
        tiered.counters.pages_demoted > legacy.counters.pages_demoted,
        "cheap spill tier did not shift reclaim toward demotion: \
         tiered demoted={} relocated={}, legacy demoted={} relocated={}\n{}",
        tiered.counters.pages_demoted,
        tiered.counters.pages_relocated,
        legacy.counters.pages_demoted,
        legacy.counters.pages_relocated,
        tiered.report
    );
    assert!(
        tiered.counters.pages_relocated < legacy.counters.pages_relocated,
        "demote-first reclaim should need fewer relocations: {} vs {}\n{}",
        tiered.counters.pages_relocated,
        legacy.counters.pages_relocated,
        tiered.report
    );
    // Determinism holds for tiered stacks too.
    let again = pressure::run(&PressureConfig {
        rebalance: false,
        tiers,
        ..cfg(42)
    });
    assert_eq!(tiered.report, again.report);
    assert_eq!(tiered.trace_jsonl, again.trace_jsonl);
}
