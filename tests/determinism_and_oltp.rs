//! Determinism of full scenarios across runs, and a smoke check of the
//! Sysbench/MySQL scenario (Tables I–III, second row).

use agile::cluster::scenario::sysbench::{self, SysbenchScenarioConfig};
use agile::cluster::scenario::wss::{self, WssScenarioConfig};
use agile::Technique;

/// The OLTP scenario runs, migrates, and the clients commit transactions
/// throughout.
#[test]
fn sysbench_scenario_completes_with_transactions() {
    let cfg = SysbenchScenarioConfig {
        technique: Technique::Agile,
        scale: 256,
        duration_secs: 120,
        migrate_at_secs: 40,
        window_secs: 60,
        ..Default::default()
    };
    let r = sysbench::run(&cfg);
    assert!(
        r.metrics.total_time().is_some(),
        "migration must complete within the run"
    );
    assert!(
        r.avg_during_window > 1.0,
        "OLTP clients should commit transactions: {}",
        r.avg_during_window
    );
    // The OLTP mix dirties pages (updates + redo log): the migration must
    // have pushed retransmissions.
    assert!(r.metrics.pages_retransmitted > 0);
    // Throughput exists before and after the migration.
    let before: f64 = r
        .series
        .iter()
        .filter(|(t, _)| *t > 10 && *t < 35)
        .map(|(_, v)| v)
        .sum();
    let after: f64 = r
        .series
        .iter()
        .filter(|(t, _)| *t > 80 && *t < 110)
        .map(|(_, v)| v)
        .sum();
    assert!(before > 0.0 && after > 0.0);
}

/// Identical seeds give bit-identical scenario outcomes; different seeds
/// differ.
#[test]
fn scenarios_are_deterministic_per_seed() {
    let mk = |seed| WssScenarioConfig {
        scale: 128,
        duration_secs: 120,
        seed,
        ..Default::default()
    };
    let a = wss::run(&mk(7));
    let b = wss::run(&mk(7));
    assert_eq!(a.final_reservation, b.final_reservation);
    assert_eq!(a.reservation_series, b.reservation_series);
    assert_eq!(a.throughput_series, b.throughput_series);
    let c = wss::run(&mk(8));
    assert_ne!(
        a.throughput_series, c.throughput_series,
        "different seeds must explore different traces"
    );
}
