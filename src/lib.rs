//! # Agile Live Migration of Virtual Machines — a simulated reproduction
//!
//! This crate is the facade over a full reproduction of *"Agile Live
//! Migration of Virtual Machines"* (Deshpande, Chan, Guh, Edouard,
//! Gopalan, Bila — IPPS 2016): working-set-aware hybrid pre/post-copy VM
//! migration with portable per-VM swap devices backed by a distributed
//! memory pool (the VMD).
//!
//! The paper's artifact is KVM/QEMU + Linux-kernel code on a physical
//! testbed; this reproduction implements every mechanism the paper
//! describes against a deterministic discrete-event simulation of that
//! testbed (hosts, 1 GbE NICs, SSD swap devices, cgroup memory control,
//! 4 KB page tables). See `DESIGN.md` for the substitution map and
//! `EXPERIMENTS.md` for paper-vs-measured results.
//!
//! ## Layer map
//!
//! | crate | contents |
//! |-------|----------|
//! | [`sim`] (`agile-sim-core`) | event queue, deterministic RNG, fluid network, block devices, stats |
//! | [`memory`] (`agile-memory`) | page tables, pagemap views, cgroup reservations, two-list reclaim, swap backends |
//! | [`vmd`] (`agile-vmd`) | the Virtualized Memory Device: client/server, namespaces, load-aware placement |
//! | [`vm`] (`agile-vm`) | VM lifecycle, vCPU processor sharing, guest layout |
//! | [`workload`] (`agile-workload`) | YCSB/Redis and Sysbench/MySQL models, zipfian keys |
//! | [`migration`] (`agile-migration`) | pre-copy, post-copy, and Agile state machines; metrics |
//! | [`wss`] (`agile-wss`) | swap-rate sampling, α/β/τ reservation control, watermark trigger |
//! | [`chaos`] (`agile-chaos`) | deterministic fault schedules: server crashes, NIC faults, connection drops |
//! | [`trace`] (`agile-trace`) | simulated-time event tracing, typed metrics registry, phase timelines |
//! | [`cluster`] (`agile-cluster`) | the executor wiring everything together + scenario library |
//!
//! ## Quickstart
//!
//! ```no_run
//! use agile::cluster::scenario::ycsb::{self, YcsbScenarioConfig};
//! use agile::migration::Technique;
//!
//! // Reproduce Figure 6 (Agile migration under memory pressure) at 1/32
//! // scale — seconds of wall clock instead of minutes.
//! let result = ycsb::run(&YcsbScenarioConfig {
//!     technique: Technique::Agile,
//!     scale: 32,
//!     ..Default::default()
//! });
//! println!(
//!     "migration took {:.1?}s, moved {} bytes",
//!     result.metrics.total_time(),
//!     result.metrics.migration_bytes
//! );
//! ```

pub use agile_chaos as chaos;
pub use agile_cluster as cluster;
pub use agile_memory as memory;
pub use agile_migration as migration;
pub use agile_sim_core as sim;
pub use agile_trace as trace;
pub use agile_vm as vm;
pub use agile_vmd as vmd;
pub use agile_workload as workload;
pub use agile_wss as wss;

/// The paper's three techniques, re-exported for convenience.
pub use agile_migration::Technique;
