//! Reconstructions of the seed implementations of the two hot paths this
//! crate benchmarks against: the boxed-closure `BinaryHeap` event queue
//! with `HashSet` cancellation, and the allocating max-min water-filling
//! pass. They exist only so the benches and `perf_report` can measure the
//! slab queue and the incremental recompute against an honest baseline
//! compiled with the same toolchain and flags.

use agile_sim_core::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

type EventFn = Box<dyn FnOnce(&mut SeedSim)>;

struct Scheduled {
    time: SimTime,
    seq: u64,
    f: EventFn,
}

impl PartialEq for Scheduled {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for Scheduled {}
impl PartialOrd for Scheduled {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Scheduled {
    fn cmp(&self, other: &Self) -> Ordering {
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// The seed event queue: boxed `FnOnce` closures in a `BinaryHeap`,
/// cancellation via a `HashSet` of sequence numbers consulted at pop.
pub struct SeedSim {
    /// Virtual clock.
    pub now: SimTime,
    /// Events fired so far (benchmarks accumulate into this).
    pub fired: u64,
    queue: BinaryHeap<Scheduled>,
    cancelled: HashSet<u64>,
    next_seq: u64,
}

impl Default for SeedSim {
    fn default() -> Self {
        Self::new()
    }
}

impl SeedSim {
    /// An empty queue at t = 0.
    pub fn new() -> Self {
        SeedSim {
            now: SimTime::ZERO,
            fired: 0,
            queue: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedule `f` at absolute time `at` (clamped to now); returns the
    /// sequence number used for cancellation.
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut SeedSim) + 'static) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled {
            time: at.max(self.now),
            seq,
            f: Box::new(f),
        });
        seq
    }

    /// Schedule `f` after `d`.
    pub fn schedule_in(&mut self, d: SimDuration, f: impl FnOnce(&mut SeedSim) + 'static) -> u64 {
        self.schedule_at(self.now + d, f)
    }

    /// Record `id` as cancelled; the heap entry stays until popped.
    pub fn cancel(&mut self, id: u64) {
        self.cancelled.insert(id);
    }

    /// Fire the next non-cancelled event. Returns false when drained.
    pub fn step(&mut self) -> bool {
        while let Some(ev) = self.queue.pop() {
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            self.now = ev.time;
            self.fired += 1;
            (ev.f)(self);
            return true;
        }
        false
    }
}

/// A channel for [`seed_waterfill`]: `(src node, dst node, rate cap, rate)`;
/// the final field is the output.
pub type SeedChannel = (usize, usize, Option<f64>, f64);

/// The seed max-min recompute: fresh cap/load `Vec`s every call, a
/// `clone()` snapshot per water-filling round, and `retain()` for every
/// freeze. Same algorithm as the incremental pass, seed allocation pattern.
pub fn seed_waterfill(node_caps: &[(f64, f64)], channels: &mut [SeedChannel]) {
    let n_nodes = node_caps.len();
    let mut tx_cap: Vec<f64> = node_caps.iter().map(|c| c.0).collect();
    let mut rx_cap: Vec<f64> = node_caps.iter().map(|c| c.1).collect();
    let mut tx_load = vec![0usize; n_nodes];
    let mut rx_load = vec![0usize; n_nodes];
    let mut unfrozen: Vec<usize> = Vec::new();
    for (i, ch) in channels.iter_mut().enumerate() {
        ch.3 = 0.0;
        unfrozen.push(i);
        tx_load[ch.0] += 1;
        rx_load[ch.1] += 1;
    }
    let freeze = |ci: usize,
                  rate: f64,
                  channels: &mut [SeedChannel],
                  tx_cap: &mut [f64],
                  rx_cap: &mut [f64],
                  tx_load: &mut [usize],
                  rx_load: &mut [usize]| {
        let (s, d, _, _) = channels[ci];
        channels[ci].3 = rate;
        tx_cap[s] -= rate;
        rx_cap[d] -= rate;
        tx_load[s] -= 1;
        rx_load[d] -= 1;
    };
    while !unfrozen.is_empty() {
        let mut min_share = f64::INFINITY;
        for n in 0..n_nodes {
            if tx_load[n] > 0 {
                min_share = min_share.min(tx_cap[n] / tx_load[n] as f64);
            }
            if rx_load[n] > 0 {
                min_share = min_share.min(rx_cap[n] / rx_load[n] as f64);
            }
        }
        let mut capped: Vec<usize> = Vec::new();
        for &ci in &unfrozen {
            if let Some(cap) = channels[ci].2 {
                if cap < min_share {
                    capped.push(ci);
                }
            }
        }
        if !capped.is_empty() {
            for ci in capped {
                let cap = channels[ci].2.expect("capped");
                freeze(
                    ci,
                    cap,
                    channels,
                    &mut tx_cap,
                    &mut rx_cap,
                    &mut tx_load,
                    &mut rx_load,
                );
                unfrozen.retain(|&c| c != ci);
            }
            continue;
        }
        if !min_share.is_finite() {
            break;
        }
        let share = min_share;
        let mut frozen_any = false;
        let snapshot: Vec<usize> = unfrozen.clone();
        for ci in snapshot {
            let (s, d, _, _) = channels[ci];
            let tx_share = tx_cap[s] / tx_load[s] as f64;
            let rx_share = rx_cap[d] / rx_load[d] as f64;
            if tx_share <= share * (1.0 + 1e-12) || rx_share <= share * (1.0 + 1e-12) {
                freeze(
                    ci,
                    share,
                    channels,
                    &mut tx_cap,
                    &mut rx_cap,
                    &mut tx_load,
                    &mut rx_load,
                );
                unfrozen.retain(|&c| c != ci);
                frozen_any = true;
            }
        }
        if !frozen_any {
            for ci in std::mem::take(&mut unfrozen) {
                freeze(
                    ci,
                    share,
                    channels,
                    &mut tx_cap,
                    &mut rx_cap,
                    &mut tx_load,
                    &mut rx_load,
                );
            }
        }
    }
}
