//! Machine-readable performance report: times the DES hot-path
//! micro-kernels (slab event queue, incremental water-filling, word-level
//! bitmap scans) plus one reduced Figure-7 end-to-end sweep, and writes
//! the numbers to `BENCH_1.json`.
//!
//! ```sh
//! cargo run --release -p agile-bench --bin perf_report -- --out .
//! ```
//!
//! The JSON is flat: a `results` array of `{name, ns_per_iter, per_sec}`
//! micro-kernel entries plus the sweep wall-clock, so a driver can diff
//! two runs without parsing human-oriented output.
//!
//! `--check-against <BENCH_1.json>` turns the run into a regression gate:
//! each measured kernel is compared against the same-named entry in the
//! baseline report and the process exits non-zero if any hot path slowed
//! down by more than 25%. `SEED_*` kernels (the checked-in reference
//! implementations) are measured but not gated — they exist to compute
//! speedups, not to be fast.

use agile_bench::harness::{bench, black_box, BenchResult};
use agile_bench::Args;
use agile_cluster::scenario::single_vm::{self, SingleVmConfig};
use agile_memory::{Touch, VmMemory, VmMemoryConfig};
use agile_migration::{Bitmap, Technique};
use agile_sim_core::{
    Bandwidth, DetRng, FastEvent, Network, SimDuration, SimTime, Simulation, GIB,
};
use std::time::Instant;

/// events/sec through the slab queue with typed fast events: the DES
/// inner loop (pop → dispatch → schedule) at 1k pending events.
fn kernel_event_queue() -> BenchResult {
    let mut sim = Simulation::new(0u64);
    sim.set_fast_handler(|sim, _ev| {
        let now = sim.now();
        *sim.state_mut() += 1;
        sim.schedule_fast(
            now + SimDuration::from_micros(1000),
            FastEvent::Timer {
                kind: 0,
                a: 0,
                b: 0,
            },
        );
    });
    for i in 0..1000u64 {
        sim.schedule_fast(
            SimTime::from_micros(i),
            FastEvent::Timer {
                kind: 0,
                a: i,
                b: 0,
            },
        );
    }
    bench("event_queue/fast_schedule_pop_1k_pending", || {
        sim.step();
        black_box(sim.now());
    })
}

/// schedule/cancel/pop cycles per second: the fate of timeout-style events
/// (a far timeout scheduled and cancelled while a near event fires).
fn kernel_event_cancel() -> BenchResult {
    let mut sim = Simulation::new(0u64);
    sim.set_fast_handler(|_, _| {});
    bench("event_queue/timeout_cancel_cycle", || {
        let now = sim.now();
        let timeout = sim.schedule_fast(
            now + SimDuration::from_millis(100),
            FastEvent::Timer {
                kind: 1,
                a: 0,
                b: 0,
            },
        );
        sim.schedule_fast(
            now + SimDuration::from_micros(1),
            FastEvent::Timer {
                kind: 0,
                a: 0,
                b: 0,
            },
        );
        sim.cancel(timeout);
        black_box(sim.step());
    })
}

/// The same schedule/cancel/pop cycle on the seed event queue
/// (boxed closures + BinaryHeap + HashSet cancellation).
fn kernel_seed_event_cancel() -> BenchResult {
    use agile_bench::seed_baseline::SeedSim;
    let mut seed = SeedSim::new();
    bench("event_queue/SEED_timeout_cancel_cycle", || {
        let now = seed.now;
        let (a, b) = (black_box(1u64), black_box(2u64));
        let timeout = seed.schedule_at(now + SimDuration::from_millis(100), move |s| {
            s.fired += black_box(a + b);
        });
        seed.schedule_at(now + SimDuration::from_micros(1), move |s| {
            s.fired += black_box(a.wrapping_mul(b));
        });
        seed.cancel(timeout);
        black_box(seed.step());
    })
}

/// recompute calls/sec: every send on a 32-active-channel network triggers
/// a full incremental water-filling pass.
fn kernel_waterfill() -> BenchResult {
    let mut net = Network::new(SimDuration::from_micros(50));
    let nodes: Vec<_> = (0..8)
        .map(|_| net.add_symmetric_node(Bandwidth::gbps(1.0)))
        .collect();
    let chs: Vec<_> = (0..32)
        .map(|i| net.open_channel(nodes[i % 8], nodes[(i + 1) % 8]))
        .collect();
    for (i, ch) in chs.iter().enumerate() {
        net.send(SimTime::ZERO, *ch, 100_000_000, i as u64);
    }
    let mut t = SimTime::ZERO;
    let mut i = 0u64;
    bench("network/waterfill_32_active", || {
        t += SimDuration::from_micros(1);
        net.send(t, chs[(i % 32) as usize], 1000, i);
        i += 1;
        black_box(net.channel_rate(chs[0]));
    })
}

/// The seed's allocating water-filling pass on the same 32-channel/8-node
/// topology.
fn kernel_seed_waterfill() -> BenchResult {
    use agile_bench::seed_baseline::{seed_waterfill, SeedChannel};
    let node_caps: Vec<(f64, f64)> = (0..8).map(|_| (125e6, 125e6)).collect();
    let mut channels: Vec<SeedChannel> = (0..32).map(|i| (i % 8, (i + 1) % 8, None, 0.0)).collect();
    bench("network/SEED_waterfill_32_active", || {
        seed_waterfill(&node_caps, &mut channels);
        black_box(channels[0].3);
    })
}

/// Full send→drain cycles/sec on the steady-state 16-channel pattern.
fn kernel_send_poll() -> BenchResult {
    let mut net = Network::new(SimDuration::from_micros(50));
    let nodes: Vec<_> = (0..5)
        .map(|_| net.add_symmetric_node(Bandwidth::gbps(1.0)))
        .collect();
    let chs: Vec<_> = (0..16)
        .map(|i| net.open_channel(nodes[i % 5], nodes[(i + 1) % 5]))
        .collect();
    let mut t = SimTime::ZERO;
    let mut i = 0usize;
    bench("network/send_poll_cycle_16ch", || {
        t += SimDuration::from_micros(10);
        net.send(t, chs[i % chs.len()], 1100, i as u64);
        i += 1;
        if let Some(next) = net.next_event_time() {
            if next <= t {
                black_box(net.poll(t).len());
            }
        }
    })
}

/// Word-level sparse scan of a 10 GiB VM's bitmap (2.6 M pages).
fn kernel_bitmap_scan() -> BenchResult {
    let n: u32 = 2_621_440;
    let mut bm = Bitmap::zeros(n);
    for p in (0..n).step_by(97) {
        bm.set(p);
    }
    bench("bitmap/for_each_set_sparse_2.6M", || {
        let mut count = 0u32;
        bm.for_each_set(|_| count += 1);
        black_box(count);
    })
}

/// Ultra-sparse scan: one set bit every 8192 pages, so entire 8-word
/// stride blocks are zero and the scan's OR-fold skip does the work (the
/// 97-step kernel above has a bit in ~2/3 of all words and never skips a
/// block — it pins the dense path instead).
fn kernel_bitmap_scan_ultra() -> BenchResult {
    let n: u32 = 2_621_440;
    let mut bm = Bitmap::zeros(n);
    for p in (0..n).step_by(8192) {
        bm.set(p);
    }
    bench("bitmap/for_each_set_ultra_sparse_2.6M", || {
        let mut count = 0u32;
        bm.for_each_set(|_| count += 1);
        black_box(count);
    })
}

/// Guest touch/fault/evict cycle under a reservation (shadow word maps
/// maintained on every transition).
fn kernel_touch_path() -> BenchResult {
    let mut mem = VmMemory::new(VmMemoryConfig {
        pages: 65_536,
        page_size: 4096,
        limit_pages: 32_768,
    });
    let mut evs = Vec::new();
    for p in 0..65_536u32 {
        mem.touch(p, true);
        mem.fault_in(p, true, &mut evs);
        evs.clear();
    }
    let mut rng = DetRng::seed_from(3);
    bench("vmmemory/touch_fault_evict_cycle", || {
        let p = rng.index(65_536) as u32;
        match mem.touch(p, false) {
            Touch::Hit => {}
            Touch::MajorFault { .. } => {
                mem.begin_swap_in(p);
                mem.fault_in(p, false, &mut evs);
                evs.clear();
            }
            Touch::MinorFault => {
                mem.fault_in(p, false, &mut evs);
                evs.clear();
            }
            Touch::InFlight => unreachable!(),
        }
        black_box(p);
    })
}

/// One reduced Figure-7 sweep (3 techniques × 2 VM sizes, idle, scale
/// 1/64): end-to-end wall-clock, plus total simulator events.
fn end_to_end_sweep() -> (f64, f64) {
    let t0 = Instant::now();
    let mut sim_secs_total = 0.0;
    for technique in [Technique::PreCopy, Technique::PostCopy, Technique::Agile] {
        for size_gib in [4u64, 8u64] {
            let r = single_vm::run(&SingleVmConfig {
                technique,
                vm_mem: size_gib * GIB,
                host_mem: 6 * GIB,
                busy: false,
                scale: 64,
                ..Default::default()
            });
            sim_secs_total += r.migration_secs;
        }
    }
    (t0.elapsed().as_secs_f64(), sim_secs_total)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Max tolerated slowdown before the gate fails: current may be at most
/// 1.25× the baseline ns/iter. Micro-benchmarks on shared CI runners
/// jitter by ~10%; 25% headroom keeps the gate quiet on noise while still
/// catching a hot path regressing to allocation or linear scans.
const GATE_SLOWDOWN: f64 = 1.25;

/// Scrape `(name, ns_per_iter)` pairs out of a baseline `BENCH_1.json`.
///
/// The file is this binary's own flat output — one result object per
/// line — so a line scan is exact and no JSON library is needed (the
/// workspace is dependency-free by design).
fn parse_baseline(text: &str) -> Vec<(String, f64)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let Some(name) = line
            .split("\"name\": \"")
            .nth(1)
            .and_then(|rest| rest.split('"').next())
        else {
            continue;
        };
        let Some(ns) = line
            .split("\"ns_per_iter\": ")
            .nth(1)
            .and_then(|rest| rest.split([',', '}']).next())
            .and_then(|num| num.trim().parse::<f64>().ok())
        else {
            continue;
        };
        out.push((name.to_string(), ns));
    }
    out
}

/// Indices of non-`SEED_` kernels whose measured ns/iter exceeds
/// [`GATE_SLOWDOWN`] × their baseline entry.
fn failing_kernels(results: &[BenchResult], baseline: &[(String, f64)]) -> Vec<usize> {
    results
        .iter()
        .enumerate()
        .filter(|(_, r)| !r.name.contains("SEED_"))
        .filter(|(_, r)| {
            baseline
                .iter()
                .find(|(n, _)| n == &r.name)
                .is_some_and(|(_, base)| r.ns_per_iter > base * GATE_SLOWDOWN)
        })
        .map(|(i, _)| i)
        .collect()
}

/// Re-measure one kernel by its result name (for gate retries).
fn kernel_by_name(name: &str) -> Option<fn() -> BenchResult> {
    Some(match name {
        "event_queue/fast_schedule_pop_1k_pending" => kernel_event_queue,
        "event_queue/timeout_cancel_cycle" => kernel_event_cancel,
        "network/waterfill_32_active" => kernel_waterfill,
        "network/send_poll_cycle_16ch" => kernel_send_poll,
        "bitmap/for_each_set_sparse_2.6M" => kernel_bitmap_scan,
        "bitmap/for_each_set_ultra_sparse_2.6M" => kernel_bitmap_scan_ultra,
        "vmmemory/touch_fault_evict_cycle" => kernel_touch_path,
        _ => return None,
    })
}

/// Gate the measured kernels against a baseline report. A kernel that
/// reads slow gets re-measured up to twice (keeping its best time) —
/// wall-clock micro-benchmarks on shared runners see transient 1.5–2x
/// spikes from scheduler interference, and only a *persistent* slowdown
/// is a regression. Returns whether any kernel still fails after retries.
fn check_against(results: &[BenchResult], baseline: &[(String, f64)]) -> bool {
    let mut gated: Vec<BenchResult> = results.to_vec();
    let mut failing = failing_kernels(&gated, baseline);
    for retry in 0..2 {
        if failing.is_empty() {
            break;
        }
        println!(
            "-- gate retry {} ({} kernel(s) read slow; re-measuring) --",
            retry + 1,
            failing.len()
        );
        for &i in &failing {
            if let Some(f) = kernel_by_name(&gated[i].name) {
                let r = f();
                if r.ns_per_iter < gated[i].ns_per_iter {
                    gated[i] = r;
                }
            }
        }
        failing = failing_kernels(&gated, baseline);
    }
    println!("-- regression gate (fail above {GATE_SLOWDOWN:.2}x baseline) --");
    for r in &gated {
        if r.name.contains("SEED_") {
            continue;
        }
        let Some((_, base_ns)) = baseline.iter().find(|(n, _)| n == &r.name) else {
            println!("{:<44} (new kernel, no baseline — skipped)", r.name);
            continue;
        };
        let ratio = r.ns_per_iter / base_ns;
        let verdict = if ratio > GATE_SLOWDOWN { "FAIL" } else { "ok" };
        println!(
            "{:<44} {:>10.1} ns vs {:>10.1} ns baseline  ({:>5.2}x)  {}",
            r.name, r.ns_per_iter, base_ns, ratio, verdict
        );
    }
    !failing.is_empty()
}

fn main() {
    let args = Args::parse();
    let out_dir = args
        .get::<String>("out")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("."));

    println!("-- micro-kernels --");
    let cancel_cycle = kernel_event_cancel();
    let seed_cancel_cycle = kernel_seed_event_cancel();
    let waterfill = kernel_waterfill();
    let seed_waterfill_r = kernel_seed_waterfill();
    let results = [
        kernel_event_queue(),
        cancel_cycle.clone(),
        seed_cancel_cycle.clone(),
        waterfill.clone(),
        seed_waterfill_r.clone(),
        kernel_send_poll(),
        kernel_bitmap_scan(),
        kernel_bitmap_scan_ultra(),
        kernel_touch_path(),
    ];
    let queue_speedup = seed_cancel_cycle.ns_per_iter / cancel_cycle.ns_per_iter;
    let waterfill_speedup = seed_waterfill_r.ns_per_iter / waterfill.ns_per_iter;
    println!("speedup vs seed: event queue {queue_speedup:.2}x, waterfill {waterfill_speedup:.2}x");
    println!("-- end-to-end reduced Fig. 7 sweep (scale 1/64) --");
    let (sweep_wall_s, sweep_sim_s) = end_to_end_sweep();
    println!("sweep: {sweep_wall_s:.2} s wall for {sweep_sim_s:.1} simulated s of migration");

    let mut json = String::from("{\n  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"ns_per_iter\": {:.2}, \"per_sec\": {:.0}}}{}\n",
            json_escape(&r.name),
            r.ns_per_iter,
            r.per_sec(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"speedup_vs_seed\": {{\"event_queue_timeout_cancel_cycle\": {queue_speedup:.2}, \"waterfill_32_active\": {waterfill_speedup:.2}}},\n"
    ));
    json.push_str(&format!(
        "  \"fig7_sweep\": {{\"wall_secs\": {sweep_wall_s:.3}, \"simulated_migration_secs\": {sweep_sim_s:.3}, \"scale\": 64, \"points\": 6}}\n"
    ));
    json.push_str("}\n");

    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let path = out_dir.join("BENCH_1.json");
    std::fs::write(&path, &json).expect("write BENCH_1.json");
    println!("wrote {}", path.display());

    let bench2_failed = run_bench2(&args, &out_dir);

    if let Some(baseline_path) = args.get::<String>("check-against") {
        let text = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("read baseline {baseline_path}: {e}"));
        let baseline = parse_baseline(&text);
        assert!(
            !baseline.is_empty(),
            "baseline {baseline_path} contains no results — wrong file?"
        );
        if check_against(&results, &baseline) {
            eprintln!("perf_report: hot-path regression beyond {GATE_SLOWDOWN:.2}x baseline");
            std::process::exit(1);
        }
        println!("gate passed: no kernel above {GATE_SLOWDOWN:.2}x baseline");
    }
    if bench2_failed {
        eprintln!("perf_report: sharded scaling gate failed");
        std::process::exit(1);
    }
}

/// Required 1→4-worker throughput scaling when the machine actually has
/// the cores to run 4 shard workers in parallel.
const SCALING_GATE: f64 = 2.0;

/// Sharded-DES scaling curve → `BENCH_2.json`: the datacenter scenario
/// at 1, 2, and 4 workers, reporting simulated-seconds-per-wall-second
/// plus the engine-measured available parallelism (busy / critical
/// path). Deterministic outputs are cross-checked across worker counts.
///
/// `--dc-scale large` runs the 1,024-host preset (the checked-in
/// artifact); the default `small` keeps CI fast. The scaling gate only
/// applies when `host_cpus >= 4` — on smaller machines worker threads
/// time-share cores and wall-clock scaling is physically impossible, so
/// the gate records the honest numbers and skips.
fn run_bench2(args: &Args, out_dir: &std::path::Path) -> bool {
    use agile_cluster::scenario::datacenter::{self, DatacenterConfig};

    let dc_scale: String = args.get("dc-scale").unwrap_or_else(|| "small".to_string());
    let base = match dc_scale.as_str() {
        "small" => DatacenterConfig::small(),
        "large" => DatacenterConfig::large(),
        other => panic!("unknown --dc-scale {other} (small|large)"),
    };
    println!("-- sharded-DES scaling (datacenter --scale {dc_scale}) --");

    let mut curve = Vec::new();
    let mut report0: Option<String> = None;
    for workers in [1usize, 2, 4] {
        let cfg = DatacenterConfig {
            workers,
            ..base.clone()
        };
        let r = datacenter::run(&cfg);
        assert!(r.converged, "datacenter run failed to converge");
        match &report0 {
            None => report0 = Some(r.report.clone()),
            Some(base_report) => assert_eq!(
                base_report, &r.report,
                "sharded run not byte-identical at workers={workers}"
            ),
        }
        let sims_per_wall = r.sim_secs / r.wall.wall_secs.max(1e-9);
        println!(
            "workers={workers} hosts={} vms={} sim_secs={:.1} wall_secs={:.3} \
             sims_per_wall={:.1} available_parallelism={:.2}",
            r.hosts,
            r.vms,
            r.sim_secs,
            r.wall.wall_secs,
            sims_per_wall,
            r.wall.available_parallelism
        );
        curve.push((workers, r));
    }

    let host_cpus = curve[0].1.wall.host_cpus;
    let spw = |i: usize| curve[i].1.sim_secs / curve[i].1.wall.wall_secs.max(1e-9);
    let speedup_4_over_1 = spw(2) / spw(0).max(1e-9);
    let gate_applicable = host_cpus >= 4;
    let gate_passed = !gate_applicable || speedup_4_over_1 >= SCALING_GATE;

    let mut json = String::from("{\n");
    json.push_str(&format!("  \"host_cpus\": {host_cpus},\n"));
    let r0 = &curve[0].1;
    json.push_str(&format!(
        "  \"config\": {{\"scale\": \"{dc_scale}\", \"racks\": {}, \"hosts\": {}, \"vms\": {}, \
         \"migrations\": {}, \"events_executed\": {}}},\n",
        r0.racks, r0.hosts, r0.vms, r0.migrations, r0.events_executed
    ));
    json.push_str("  \"curve\": [\n");
    for (i, (workers, r)) in curve.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"workers\": {workers}, \"sim_secs\": {:.3}, \"wall_secs\": {:.4}, \
             \"sims_per_wall\": {:.2}, \"busy_secs\": {:.4}, \"critical_path_secs\": {:.4}, \
             \"available_parallelism\": {:.3}}}{}\n",
            r.sim_secs,
            r.wall.wall_secs,
            r.sim_secs / r.wall.wall_secs.max(1e-9),
            r.wall.busy_secs,
            r.wall.critical_path_secs,
            r.wall.available_parallelism,
            if i + 1 < curve.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!(
        "  \"speedup_4_over_1\": {speedup_4_over_1:.3},\n  \"gate\": {{\"required_speedup\": \
         {SCALING_GATE:.1}, \"applicable\": {gate_applicable}, \"passed\": {gate_passed}}}\n"
    ));
    json.push_str("}\n");

    let path = out_dir.join("BENCH_2.json");
    std::fs::write(&path, &json).expect("write BENCH_2.json");
    println!("wrote {}", path.display());
    if !gate_applicable {
        println!(
            "scaling gate skipped: host_cpus={host_cpus} < 4 workers (wall-clock scaling \
             impossible; available_parallelism={:.2} recorded instead)",
            curve[2].1.wall.available_parallelism
        );
    } else if gate_passed {
        println!(
            "scaling gate passed: {speedup_4_over_1:.2}x >= {SCALING_GATE:.1}x (1 -> 4 workers)"
        );
    }
    !gate_passed
}
