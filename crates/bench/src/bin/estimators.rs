//! WSS-estimator accuracy A/B: run `scenario::estimators` twice on the
//! same seed — swap-I/O (the paper's iostat path) vs simulated-PML
//! dirty-epoch sampling, both against the ground-truth oracle — and
//! write both reports plus `BENCH_4.json` with the signed deltas.
//!
//! ```sh
//! cargo run --release -p agile-bench --bin estimators -- --scale 64
//! ```
//!
//! Same seed + same scale ⇒ byte-identical reports and traces (CI runs
//! this twice and diffs the outputs). The bin asserts the headline
//! claim: on the no-swap ramp phase the PML estimator's mean error
//! against ground truth is strictly lower than swap-I/O's, and it
//! detects the working-set growth at least one full epoch earlier.

use agile_bench::{write_csv, Args};
use agile_cluster::config::WssEstimatorKind;
use agile_cluster::scenario::estimators::{self, EstimatorsConfig};

fn main() {
    let args = Args::parse();
    let scale = args.get("scale").unwrap_or(64);
    let seed = args.get("seed").unwrap_or(42);
    let out = args.out_dir();

    let base = EstimatorsConfig {
        scale,
        seed,
        trace: true,
        ..EstimatorsConfig::default()
    };
    let swap = estimators::run(&EstimatorsConfig {
        estimator: WssEstimatorKind::SwapIo,
        ..base.clone()
    });
    let pml = estimators::run(&EstimatorsConfig {
        estimator: WssEstimatorKind::Pml,
        ..base.clone()
    });

    print!("{}", swap.report);
    print!("{}", pml.report);
    let ab = estimators::ab_summary(&swap, &pml);
    print!("{ab}");
    write_csv(&out, "ESTIMATORS_swap_io_report.txt", &swap.report).expect("write report");
    write_csv(&out, "ESTIMATORS_pml_report.txt", &pml.report).expect("write report");
    write_csv(&out, "ESTIMATORS_ab_summary.txt", &ab).expect("write summary");
    write_csv(
        &out,
        "ESTIMATORS_swap_io_trace.jsonl",
        swap.trace_jsonl.as_deref().expect("tracing enabled"),
    )
    .expect("write trace");
    write_csv(
        &out,
        "ESTIMATORS_pml_trace.jsonl",
        pml.trace_jsonl.as_deref().expect("tracing enabled"),
    )
    .expect("write trace");
    write_csv(&out, "ESTIMATORS_metrics.json", &pml.metrics_json).expect("write metrics");

    let epoch_ns = 4_000_000_000i128; // the PML arm's sampling epoch
    let d_mae_no_swap = pml.mae_no_swap_bytes as i128 - swap.mae_no_swap_bytes as i128;
    let d_mae_total = pml.mae_total_bytes as i128 - swap.mae_total_bytes as i128;
    let d_detect = pml.detect_ns as i128 - swap.detect_ns as i128;

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"config\": {{\"scale\": {scale}, \"seed\": {seed}, \"no_swap_secs\": {}, \
         \"detect_bytes\": {}, \"deadline_secs\": {}}},\n",
        base.no_swap_secs, base.detect_bytes, base.deadline_secs
    ));
    for (name, r) in [("swap_io", &swap), ("pml", &pml)] {
        json.push_str(&format!(
            "  \"{name}\": {{\"mae_no_swap_bytes\": {}, \"mae_total_bytes\": {}, \
             \"detect_ns\": {}, \"epochs_no_swap\": {}, \"epochs_total\": {}, \
             \"major_faults\": {}, \"completions\": {}, \"reservation_avg_bytes\": {}, \
             \"migrations\": {}, \"first_migration_ns\": {}, \"pml_overflows\": {}, \
             \"events_executed\": {}}},\n",
            r.mae_no_swap_bytes,
            r.mae_total_bytes,
            r.detect_ns,
            r.epochs_no_swap,
            r.epochs_total,
            r.major_faults,
            r.completions,
            r.reservation_avg_bytes,
            r.migrations,
            r.first_migration_ns,
            r.wss_counters.pml_overflows,
            r.events_executed
        ));
    }
    json.push_str(&format!(
        "  \"delta\": {{\"mae_no_swap_bytes\": {d_mae_no_swap}, \
         \"mae_total_bytes\": {d_mae_total}, \"detect_ns\": {d_detect}}},\n"
    ));
    let gate_passed =
        d_mae_no_swap < 0 && pml.detect_ns as i128 + epoch_ns <= swap.detect_ns as i128;
    json.push_str(&format!(
        "  \"gate\": {{\"requires\": \"delta.mae_no_swap_bytes < 0 && pml.detect_ns + epoch \
         <= swap_io.detect_ns\", \"passed\": {gate_passed}}}\n}}\n"
    ));
    let path = out.join("BENCH_4.json");
    std::fs::write(&path, &json).expect("write BENCH_4.json");
    println!("wrote {}", path.display());

    assert!(
        swap.detect_ns != u64::MAX,
        "swap-I/O arm never saw the working-set growth at all"
    );
    assert!(
        pml.wss_counters.pml_overflows > 0,
        "PML log never overflowed — the full-scan fallback went unexercised"
    );
    assert!(
        d_mae_no_swap < 0,
        "PML no-swap MAE {} >= swap-I/O {}",
        pml.mae_no_swap_bytes,
        swap.mae_no_swap_bytes
    );
    assert!(
        pml.detect_ns as i128 + epoch_ns <= swap.detect_ns as i128,
        "PML detected at {} ns, not >= one epoch before swap-I/O at {} ns",
        pml.detect_ns,
        swap.detect_ns
    );
}
