//! Multihost watermark-rebalancing smoke: run `scenario::multihost`
//! (4 hosts × 8 VMs by default) with tracing on and write the
//! deterministic rebalance report plus the raw event trace.
//!
//! ```sh
//! cargo run --release -p agile-bench --bin multihost -- --scale 64
//! ```
//!
//! Same seed + same scale ⇒ byte-identical `MULTIHOST_report.txt` and
//! `MULTIHOST_trace.jsonl` (CI runs this twice and diffs the outputs).

use agile_bench::{write_csv, Args};
use agile_cluster::scenario::multihost::{self, MultihostConfig};

fn main() {
    let args = Args::parse();
    let scale = args.get("scale").unwrap_or(64);
    let seed = args.get("seed").unwrap_or(42);
    let out = args.out_dir();

    let r = multihost::run(&MultihostConfig {
        scale,
        seed,
        trace: true,
        ..MultihostConfig::default()
    });

    print!("{}", r.report);
    let report = write_csv(&out, "MULTIHOST_report.txt", &r.report).expect("write report");
    let trace = r.trace_jsonl.as_deref().expect("tracing was enabled");
    write_csv(&out, "MULTIHOST_trace.jsonl", trace).expect("write trace");
    write_csv(&out, "MULTIHOST_metrics.json", &r.metrics_json).expect("write metrics");

    assert!(
        r.converged,
        "cluster failed to rebalance below high watermarks"
    );
    assert!(
        r.max_vm_migrations <= 1,
        "ping-pong detected: a VM migrated {} times",
        r.max_vm_migrations
    );
    println!("report -> {}", report.display());
}
