//! Fault-recovery experiment: migrations under an injected VMD server
//! crash and a migration connection drop, reporting the unavailability
//! windows and enforcing the replication invariant.
//!
//! ```sh
//! cargo run --release -p agile-bench --bin chaos_recovery -- --scale 64
//! ```
//!
//! Three scenarios run, each an Agile migration of an over-committed VM
//! (most of its memory in the portable VMD namespace) with the fault
//! landing mid-migration:
//!
//! | scenario | fault | must hold |
//! |----------|-------|-----------|
//! | `crash_k2` | VMD server crash + rejoin, `k = 2` | zero lost slots/pages, byte-identical destination image (in-run check armed), bounded unavailability |
//! | `crash_k1` | same crash, `k = 1` | losses *reported*, run completes — no panic, no wedge |
//! | `conn_drop_k2` | migration connection cut pre-resume | abort-and-retry completes the migration, nothing lost |
//!
//! Invariant violations exit non-zero, so CI can run this as a smoke
//! gate (`--scale 64` keeps it to a few seconds). `--out DIR` also
//! writes `chaos_recovery.csv`.

use agile_bench::{write_csv, Args};
use agile_chaos::{ChaosSchedule, FaultKind};
use agile_cluster::scenario::chaos::{self, ChaosScenarioConfig, ChaosScenarioResult};
use agile_sim_core::{SimDuration, SimTime};

/// Seconds of warm-up before the migration starts; faults are placed
/// relative to this so they land mid-migration at any scale.
const WARMUP_SECS: u64 = 10;

fn base_cfg(args: &Args, replication: usize, schedule: ChaosSchedule) -> ChaosScenarioConfig {
    ChaosScenarioConfig {
        scale: args.get("scale").unwrap_or(64),
        replication,
        vmd_servers: 3,
        schedule,
        verify_content: replication >= 2,
        warmup_secs: WARMUP_SECS,
        deadline_secs: 600,
        seed: args.get("seed").unwrap_or(7),
        ..Default::default()
    }
}

/// A server crash 200 ms into the migration, rejoining (empty) 10 s later.
fn crash_schedule() -> ChaosSchedule {
    ChaosSchedule::builder()
        .server_outage(
            0,
            SimTime::from_secs(WARMUP_SECS) + SimDuration::from_millis(200),
            SimDuration::from_secs(10),
        )
        .build()
}

/// The migration's channels cut 100 ms in — pre-resume, so the source
/// rolls back and retries from scratch after a backoff.
fn conn_drop_schedule() -> ChaosSchedule {
    ChaosSchedule::builder()
        .fault(
            SimTime::from_secs(WARMUP_SECS) + SimDuration::from_millis(100),
            FaultKind::MigrationConnDrop { mig: 0 },
        )
        .build()
}

fn report(name: &str, r: &ChaosScenarioResult) {
    println!("== {name} ==");
    println!(
        "  migration: finished={} time={:.2}s downtime={:.3}s retries={} bytes={}",
        r.finished, r.migration_secs, r.downtime_secs, r.retries, r.migration_bytes
    );
    println!(
        "  losses: slots_lost={} lost_reads={} pages_lost_on_conn_drop={}",
        r.slots_lost, r.lost_reads, r.pages_lost_on_conn_drop
    );
    println!(
        "  repair: slots_repaired={} worst_unavailability={:.2}s conn_drops={}",
        r.slots_repaired, r.worst_unavailability_secs, r.conn_drops
    );
    for c in &r.crashes {
        let stamp = |t: Option<SimTime>| match t {
            Some(t) => format!("{:.2}s", t.as_secs_f64()),
            None => "—".into(),
        };
        println!(
            "  crash: server {} at {:.2}s detected={} repaired={} rejoined={} evicted={} lost={}",
            c.server,
            c.at.as_secs_f64(),
            stamp(c.detected_at),
            stamp(c.repaired_at),
            stamp(c.rejoined_at),
            c.slots_evicted,
            c.slots_lost
        );
    }
}

fn csv_row(name: &str, r: &ChaosScenarioResult) -> String {
    format!(
        "{name},{},{:.3},{:.4},{},{},{},{},{},{:.3}\n",
        r.finished,
        r.migration_secs,
        r.downtime_secs,
        r.retries,
        r.slots_lost,
        r.slots_repaired,
        r.lost_reads,
        r.pages_lost_on_conn_drop,
        r.worst_unavailability_secs
    )
}

fn main() {
    let args = Args::parse();
    let mut violations: Vec<String> = Vec::new();
    let mut csv =
        String::from("scenario,finished,migration_secs,downtime_secs,retries,slots_lost,slots_repaired,lost_reads,pages_lost_on_conn_drop,worst_unavailability_secs\n");

    // k = 2: a mid-migration VMD server crash must lose nothing. The
    // scenario arms the in-run content check, so a wrong byte at the
    // destination panics inside the run; here we gate the counters.
    let k2 = chaos::run(&base_cfg(&args, 2, crash_schedule()));
    report("crash_k2", &k2);
    csv.push_str(&csv_row("crash_k2", &k2));
    if !k2.finished {
        violations.push("crash_k2: migration did not complete".into());
    }
    if k2.slots_lost != 0 || k2.lost_reads != 0 || k2.pages_lost_on_conn_drop != 0 {
        violations.push(format!(
            "crash_k2: lost pages with k=2 (slots_lost={} lost_reads={} conn_drop_pages={})",
            k2.slots_lost, k2.lost_reads, k2.pages_lost_on_conn_drop
        ));
    }
    if k2.slots_repaired == 0 {
        violations.push("crash_k2: background re-replication never ran".into());
    }
    if !(k2.worst_unavailability_secs > 0.0 && k2.worst_unavailability_secs < 60.0) {
        violations.push(format!(
            "crash_k2: unavailability window unbounded ({:.2}s)",
            k2.worst_unavailability_secs
        ));
    }

    // k = 1: no redundancy — the same crash loses slots, and the run must
    // say so (and still complete) rather than panic or wedge.
    let k1 = chaos::run(&base_cfg(&args, 1, crash_schedule()));
    report("crash_k1", &k1);
    csv.push_str(&csv_row("crash_k1", &k1));
    if !k1.finished {
        violations.push("crash_k1: migration did not complete".into());
    }
    if k1.slots_lost == 0 {
        violations.push("crash_k1: unreplicated crash reported no losses".into());
    }

    // Connection drop pre-resume: abort, roll back, retry after backoff.
    let drop = chaos::run(&base_cfg(&args, 2, conn_drop_schedule()));
    report("conn_drop_k2", &drop);
    csv.push_str(&csv_row("conn_drop_k2", &drop));
    if !drop.finished {
        violations.push("conn_drop_k2: retry did not complete the migration".into());
    }
    if drop.retries == 0 {
        violations.push("conn_drop_k2: connection drop triggered no retry".into());
    }
    if drop.slots_lost != 0 || drop.lost_reads != 0 {
        violations.push(format!(
            "conn_drop_k2: lost state (slots_lost={} lost_reads={})",
            drop.slots_lost, drop.lost_reads
        ));
    }

    if args.get::<String>("out").is_some() {
        let path = write_csv(&args.out_dir(), "chaos_recovery.csv", &csv).expect("write csv");
        println!("wrote {}", path.display());
    }

    if violations.is_empty() {
        println!("all recovery invariants held");
    } else {
        for v in &violations {
            eprintln!("INVARIANT VIOLATED: {v}");
        }
        std::process::exit(1);
    }
}
