//! Regenerates **Figures 7 and 8**: total migration time and data
//! transferred for a single idle/busy VM whose memory grows past the
//! host's 6 GB, for all three techniques.
//!
//! Sweep points are independent simulations; they run in parallel on
//! scoped threads.
//!
//! ```sh
//! cargo run --release -p agile-bench --bin fig7_8_single_vm_sweep -- --scale 8
//! ```

use agile_bench::{par_map, write_csv, Args};
use agile_cluster::scenario::single_vm::{self, SingleVmConfig};
use agile_migration::Technique;
use agile_sim_core::GIB;

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let out = args.out_dir();
    let sizes_gib: Vec<u64> = vec![2, 4, 6, 8, 10, 12];
    let techniques = [Technique::PreCopy, Technique::PostCopy, Technique::Agile];

    // One simulation per (size, technique, busy) — embarrassingly parallel.
    let points: Vec<(u64, Technique, bool)> = sizes_gib
        .iter()
        .flat_map(|&s| {
            techniques
                .iter()
                .flat_map(move |&t| [(s, t, false), (s, t, true)])
        })
        .collect();
    let results: Vec<((u64, Technique, bool), single_vm::SingleVmResult)> =
        par_map(&points, |&(size, technique, busy)| {
            let r = single_vm::run(&SingleVmConfig {
                technique,
                vm_mem: size * GIB,
                host_mem: 6 * GIB,
                busy,
                scale,
                ..Default::default()
            });
            ((size, technique, busy), r)
        });

    let lookup = |size: u64, t: Technique, busy: bool| {
        results
            .iter()
            .find(|((s, tt, b), _)| *s == size && *tt == t && *b == busy)
            .map(|(_, r)| r)
            .expect("point computed")
    };

    for (busy, label) in [(false, "idle"), (true, "busy")] {
        println!(
            "\nFigure 7 ({label} VM): total migration time (seconds), host 6 GB, scale 1/{scale}"
        );
        println!(
            "{:>8} {:>12} {:>12} {:>12}",
            "VM GiB", "pre-copy", "post-copy", "agile"
        );
        let mut csv = String::from("vm_gib,precopy_s,postcopy_s,agile_s\n");
        for &s in &sizes_gib {
            let pre = lookup(s, Technique::PreCopy, busy).migration_secs;
            let post = lookup(s, Technique::PostCopy, busy).migration_secs;
            let agile = lookup(s, Technique::Agile, busy).migration_secs;
            println!("{s:>8} {pre:>12.2} {post:>12.2} {agile:>12.2}");
            csv.push_str(&format!("{s},{pre:.3},{post:.3},{agile:.3}\n"));
        }
        write_csv(&out, &format!("fig7_time_{label}.csv"), &csv).expect("write CSV");

        println!("\nFigure 8 ({label} VM): data transferred (MB)");
        println!(
            "{:>8} {:>12} {:>12} {:>12}",
            "VM GiB", "pre-copy", "post-copy", "agile"
        );
        let mut csv = String::from("vm_gib,precopy_mb,postcopy_mb,agile_mb\n");
        for &s in &sizes_gib {
            let pre = lookup(s, Technique::PreCopy, busy).migration_bytes / 1_000_000;
            let post = lookup(s, Technique::PostCopy, busy).migration_bytes / 1_000_000;
            let agile = lookup(s, Technique::Agile, busy).migration_bytes / 1_000_000;
            println!("{s:>8} {pre:>12} {post:>12} {agile:>12}");
            csv.push_str(&format!("{s},{pre},{post},{agile}\n"));
        }
        write_csv(&out, &format!("fig8_bytes_{label}.csv"), &csv).expect("write CSV");
    }
    println!(
        "\nexpected shapes: baselines grow linearly with VM size and jump past 6 GiB\n\
         (busy worst); agile flattens at the host-resident size (~5.5 GiB/scale)."
    );
}
