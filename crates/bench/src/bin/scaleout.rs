//! Rapid scale-out bench: a flash crowd spawns 16 clones off a sealed
//! gold image under streamed (post-copy style) and full pre-copy
//! cloning, and `BENCH_6.json` pins the A/B: time-to-first-page-served,
//! time-to-fleet-ready, clone-attributable fabric bytes, and the
//! master-host interference probe.
//!
//! ```sh
//! cargo run --release -p agile-bench --bin scaleout -- --scale 16
//! ```
//!
//! Same seed + same scale ⇒ byte-identical reports and JSON (CI runs
//! this twice and diffs the outputs, then compares against the
//! checked-in baseline). The bin asserts the headline claim: streamed
//! cloning serves first pages orders of magnitude sooner AND moves
//! fewer fabric bytes for a short-lived crowd — teardown cancels the
//! hydration that precopy pays up front.

use agile_bench::{write_csv, Args};
use agile_cluster::scenario::scaleout::{self, CloneArm, ScaleoutConfig};

fn main() {
    let args = Args::parse();
    let scale = args.get("scale").unwrap_or(16);
    let seed = args.get("seed").unwrap_or(42);
    let workers = args.get("workers").unwrap_or(2);
    let clones = args.get("clones").unwrap_or(16);
    let out = args.out_dir();

    let cfgs: Vec<ScaleoutConfig> = [CloneArm::Streamed, CloneArm::Precopy]
        .into_iter()
        .map(|arm| ScaleoutConfig {
            arm,
            clones,
            scale,
            seed,
            ..ScaleoutConfig::default()
        })
        .collect();
    let results = scaleout::run_replicated(&cfgs, workers);
    let (s, p) = (&results[0], &results[1]);

    let mut report = String::new();
    for r in &results {
        report.push_str(&r.report);
    }
    print!("{report}");
    write_csv(&out, "SCALEOUT_report.txt", &report).expect("write report");

    let arm_json = |r: &scaleout::ScaleoutResult| {
        format!(
            "{{\"spawned\": {}, \"ready\": {}, \"ttfps_mean_ns\": {}, \
             \"ttfps_max_ns\": {}, \"all_ready_ns\": {}, \"fabric_bytes\": {}, \
             \"hydrated_pages\": {}, \"cow_breaks\": {}, \"torn_down\": {}, \
             \"lost_reads\": {}, \"bystander_ops\": {}, \"digest\": \"{:#018x}\", \
             \"events_executed\": {}}}",
            r.spawned,
            r.ready,
            r.ttfps_mean_ns,
            r.ttfps_max_ns,
            r.all_ready_ns,
            r.fabric_bytes,
            r.hydrated_pages,
            r.cow_breaks,
            r.torn_down,
            r.lost_reads,
            r.bystander_ops,
            r.digest,
            r.events_executed,
        )
    };

    // Signed deltas, streamed minus precopy: negative = streamed wins.
    let d_ttfps = s.ttfps_mean_ns as i64 - p.ttfps_mean_ns as i64;
    let d_all_ready = s.all_ready_ns as i64 - p.all_ready_ns as i64;
    let d_fabric = s.fabric_bytes as i64 - p.fabric_bytes as i64;
    let d_bystander = s.bystander_ops as i64 - p.bystander_ops as i64;

    let gate_passed = s.ready == clones as u64
        && p.ready == clones as u64
        && s.torn_down == clones as u64
        && p.torn_down == clones as u64
        && s.lost_reads == 0
        && p.lost_reads == 0
        && d_ttfps < 0
        && d_fabric < 0
        && s.cow_breaks > 0
        && p.cow_breaks > 0;

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"config\": {{\"scale\": {scale}, \"seed\": {seed}, \"clones\": {clones}}},\n"
    ));
    json.push_str(&format!("  \"streamed\": {},\n", arm_json(s)));
    json.push_str(&format!("  \"precopy\": {},\n", arm_json(p)));
    json.push_str(&format!(
        "  \"delta_streamed_minus_precopy\": {{\"ttfps_mean_ns\": {d_ttfps}, \
         \"all_ready_ns\": {d_all_ready}, \"fabric_bytes\": {d_fabric}, \
         \"bystander_ops\": {d_bystander}}},\n"
    ));
    json.push_str(&format!(
        "  \"gate\": {{\"requires\": \"both arms spawn, serve and tear down all \
         {clones} clones with nothing lost, clones diverge (cow_breaks > 0), && \
         streamed beats precopy on ttfps_mean_ns and fabric_bytes\", \
         \"passed\": {gate_passed}}}\n}}\n"
    ));
    let path = out.join("BENCH_6.json");
    std::fs::write(&path, &json).expect("write BENCH_6.json");
    println!("wrote {}", path.display());

    assert_eq!(s.ready, clones as u64, "streamed fleet never fully served");
    assert_eq!(p.ready, clones as u64, "precopy fleet never fully served");
    assert_eq!(s.torn_down, clones as u64, "streamed fleet never tore down");
    assert_eq!(p.torn_down, clones as u64, "precopy fleet never tore down");
    assert_eq!(s.lost_reads + p.lost_reads, 0, "reads lost without chaos");
    assert!(
        s.cow_breaks > 0 && p.cow_breaks > 0,
        "clones never diverged from the gold image"
    );
    assert!(
        d_ttfps < 0,
        "streamed must serve first pages sooner: {} vs {} ns",
        s.ttfps_mean_ns,
        p.ttfps_mean_ns
    );
    assert!(
        d_fabric < 0,
        "streamed must move fewer fabric bytes: {} vs {}",
        s.fabric_bytes,
        p.fabric_bytes
    );
}
