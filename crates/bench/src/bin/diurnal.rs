//! Diurnal cycle-prediction A/B: run `scenario::diurnal` twice on the
//! same seed — naive watermark firing vs the trough-aware predictor —
//! and write both reports plus `BENCH_3.json` with the signed deltas.
//!
//! ```sh
//! cargo run --release -p agile-bench --bin diurnal -- --scale 64
//! ```
//!
//! Same seed + same scale ⇒ byte-identical reports and traces (CI runs
//! this twice and diffs the outputs). The bin asserts the headline
//! claim: trough-scheduled migrations move strictly fewer bytes *and*
//! suffer strictly lower p99 downtime than naive firing.

use agile_bench::{write_csv, Args};
use agile_cluster::scenario::diurnal::{self, DiurnalConfig};

fn main() {
    let args = Args::parse();
    let scale = args.get("scale").unwrap_or(64);
    let seed = args.get("seed").unwrap_or(42);
    let out = args.out_dir();

    let base = DiurnalConfig {
        scale,
        seed,
        trace: true,
        ..DiurnalConfig::default()
    };
    let naive = diurnal::run(&DiurnalConfig {
        predict: false,
        ..base.clone()
    });
    let predicted = diurnal::run(&DiurnalConfig {
        predict: true,
        ..base.clone()
    });

    print!("{}", naive.report);
    print!("{}", predicted.report);
    write_csv(&out, "DIURNAL_naive_report.txt", &naive.report).expect("write report");
    write_csv(&out, "DIURNAL_predicted_report.txt", &predicted.report).expect("write report");
    write_csv(
        &out,
        "DIURNAL_naive_trace.jsonl",
        naive.trace_jsonl.as_deref().expect("tracing enabled"),
    )
    .expect("write trace");
    write_csv(
        &out,
        "DIURNAL_predicted_trace.jsonl",
        predicted.trace_jsonl.as_deref().expect("tracing enabled"),
    )
    .expect("write trace");
    write_csv(&out, "DIURNAL_metrics.json", &predicted.metrics_json).expect("write metrics");

    let p = predicted.predict.expect("predictor armed");
    let delta_bytes = predicted.total_bytes as i64 - naive.total_bytes as i64;
    let delta_pages = predicted.total_pages_full as i64 - naive.total_pages_full as i64;
    let delta_p99 = predicted.downtime_p99_ns as i64 - naive.downtime_p99_ns as i64;

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"config\": {{\"scale\": {scale}, \"seed\": {seed}, \"period_secs\": {}, \
         \"flash1_secs\": {}, \"flash2_secs\": {}, \"deadline_secs\": {}}},\n",
        base.period_secs, base.flash1_secs, base.flash2_secs, base.deadline_secs
    ));
    for (name, r) in [("naive", &naive), ("predicted", &predicted)] {
        json.push_str(&format!(
            "  \"{name}\": {{\"migrations\": {}, \"total_bytes\": {}, \"total_pages_full\": {}, \
             \"downtime_p99_ns\": {}, \"events_executed\": {}}},\n",
            r.migrations.len(),
            r.total_bytes,
            r.total_pages_full,
            r.downtime_p99_ns,
            r.events_executed
        ));
    }
    json.push_str(&format!(
        "  \"predict_counters\": {{\"cycles_detected\": {}, \"deferrals\": {}, \
         \"window_expiries\": {}, \"trough_hits\": {}, \"trough_misses\": {}, \
         \"cancelled\": {}}},\n",
        p.cycles_detected,
        p.deferrals,
        p.window_expiries,
        p.trough_hits,
        p.trough_misses,
        p.cancelled
    ));
    json.push_str(&format!(
        "  \"delta\": {{\"bytes\": {delta_bytes}, \"pages_full\": {delta_pages}, \
         \"downtime_p99_ns\": {delta_p99}}},\n"
    ));
    let gate_passed = delta_bytes < 0 && delta_p99 < 0;
    json.push_str(&format!(
        "  \"gate\": {{\"requires\": \"delta.bytes < 0 && delta.downtime_p99_ns < 0\", \
         \"passed\": {gate_passed}}}\n}}\n"
    ));
    let path = out.join("BENCH_3.json");
    std::fs::write(&path, &json).expect("write BENCH_3.json");
    println!("wrote {}", path.display());

    assert!(p.deferrals > 0, "predictor never deferred a migration");
    assert!(
        delta_bytes < 0,
        "predicted run moved {} bytes vs naive {}",
        predicted.total_bytes,
        naive.total_bytes
    );
    assert!(
        delta_p99 < 0,
        "predicted p99 downtime {} ns vs naive {} ns",
        predicted.downtime_p99_ns,
        naive.downtime_p99_ns
    );
}
