//! Tier-stack crossover bench: sweep pool-DRAM scarcity under the
//! scarce-DRAM (SSD-spill) and far-memory stacks and write
//! `BENCH_5.json` pinning where cheap far memory starts beating scarce
//! remote DRAM on guest-visible fault latency and migration downtime.
//!
//! ```sh
//! cargo run --release -p agile-bench --bin tiers -- --scale 64
//! ```
//!
//! Same seed + same scale ⇒ byte-identical reports and JSON (CI runs
//! this twice and diffs the outputs, then compares against the
//! checked-in baseline). The bin asserts the headline claim: at the
//! ample end of the sweep the all-DRAM stack wins the fault-latency
//! p99, at the scarce end the far-memory stack wins — the curves cross.

use agile_bench::{write_csv, Args};
use agile_cluster::scenario::tiers::{self, TierArm, TiersResult};

fn main() {
    let args = Args::parse();
    let scale = args.get("scale").unwrap_or(64);
    let seed = args.get("seed").unwrap_or(42);
    let workers = args.get("workers").unwrap_or(4);
    let out = args.out_dir();

    let cfgs = tiers::sweep(scale, seed);
    let results = tiers::run_replicated(&cfgs, workers);

    let mut report = String::new();
    for r in &results {
        report.push_str(&r.report);
    }
    print!("{report}");
    write_csv(&out, "TIERS_report.txt", &report).expect("write report");

    // Pair the two arms per sweep point (sweep() emits them adjacent).
    let points: Vec<(u64, &TiersResult, &TiersResult)> = cfgs
        .chunks(2)
        .zip(results.chunks(2))
        .map(|(c, r)| {
            assert_eq!(c[0].arm, TierArm::ScarceDram);
            assert_eq!(c[1].arm, TierArm::FarMemory);
            assert_eq!(c[0].dram_pct, c[1].dram_pct);
            (c[0].dram_pct, &r[0], &r[1])
        })
        .collect();

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"config\": {{\"scale\": {scale}, \"seed\": {seed}}},\n  \"points\": [\n"
    ));
    for (i, (pct, a, b)) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"dram_pct\": {pct}, \
             \"scarce_dram\": {{\"fault_mean_ns\": {}, \"fault_p50_ns\": {}, \
             \"fault_p99_ns\": {}, \"fault_max_ns\": {}, \"faults\": {}, \
             \"downtime_ns\": {}, \"migration_ns\": {}, \"tier_pages\": {:?}}}, \
             \"far_memory\": {{\"fault_mean_ns\": {}, \"fault_p50_ns\": {}, \
             \"fault_p99_ns\": {}, \"fault_max_ns\": {}, \"faults\": {}, \
             \"downtime_ns\": {}, \"migration_ns\": {}, \"tier_pages\": {:?}}}}}{}\n",
            a.fault_mean_ns,
            a.fault_p50_ns,
            a.fault_p99_ns,
            a.fault_max_ns,
            a.faults,
            a.downtime_ns,
            a.migration_ns,
            a.tier_pages,
            b.fault_mean_ns,
            b.fault_p50_ns,
            b.fault_p99_ns,
            b.fault_max_ns,
            b.faults,
            b.downtime_ns,
            b.migration_ns,
            b.tier_pages,
            if i + 1 < points.len() { "," } else { "" },
        ));
    }
    json.push_str("  ],\n");

    // The crossover. Ample end: remote DRAM strictly wins mean fault
    // latency (the p99 ties — the tail is the migration-time swap-in
    // queue, identical under both stacks, and the power-of-two buckets
    // cannot see a microsecond-scale device cost), and downtime must
    // not regress beyond noise (0.1 %). Scarce end: far memory strictly
    // wins mean, p99 *and* downtime — the advantage appears only under
    // scarcity, which is the crossover the stack exists for.
    let (ample_pct, ample_a, ample_b) = points.first().expect("non-empty sweep");
    let (scarce_pct, scarce_a, scarce_b) = points.last().expect("non-empty sweep");
    let ample_dram_wins = ample_a.fault_mean_ns < ample_b.fault_mean_ns
        && ample_a.fault_p99_ns <= ample_b.fault_p99_ns
        && ample_a.downtime_ns <= ample_b.downtime_ns + ample_b.downtime_ns / 1000;
    let scarce_far_wins = scarce_a.fault_mean_ns > scarce_b.fault_mean_ns
        && scarce_a.fault_p99_ns > scarce_b.fault_p99_ns
        && scarce_a.downtime_ns > scarce_b.downtime_ns;
    let crossover_pct = points
        .iter()
        .find(|(_, a, b)| a.fault_p99_ns > b.fault_p99_ns && a.downtime_ns > b.downtime_ns)
        .map(|(pct, _, _)| *pct as i64)
        .unwrap_or(-1);
    let gate_passed = ample_dram_wins && scarce_far_wins && crossover_pct > *scarce_pct as i64;
    json.push_str(&format!(
        "  \"crossover\": {{\"ample_pct\": {ample_pct}, \"scarce_pct\": {scarce_pct}, \
         \"first_far_memory_win_pct\": {crossover_pct}}},\n"
    ));
    json.push_str(&format!(
        "  \"gate\": {{\"requires\": \"mean(scarce_dram) < mean(far_memory) at \
         dram_pct={ample_pct} with p99 and downtime no worse, && mean+p99+downtime(scarce_dram) \
         > mean+p99+downtime(far_memory) at dram_pct={scarce_pct}\", \
         \"passed\": {gate_passed}}}\n}}\n"
    ));
    let path = out.join("BENCH_5.json");
    std::fs::write(&path, &json).expect("write BENCH_5.json");
    println!("wrote {}", path.display());

    for (pct, a, b) in &points {
        assert!(
            a.finished && b.finished,
            "migration unfinished at dram_pct={pct}"
        );
        assert!(
            a.faults > 100 && b.faults > 100,
            "too few faults at dram_pct={pct} for a meaningful p99"
        );
    }
    assert!(
        ample_dram_wins,
        "ample DRAM ({ample_pct}%) must beat far memory on mean fault latency without \
         regressing p99 or downtime: mean {} vs {}, p99 {} vs {}, downtime {} vs {}",
        ample_a.fault_mean_ns,
        ample_b.fault_mean_ns,
        ample_a.fault_p99_ns,
        ample_b.fault_p99_ns,
        ample_a.downtime_ns,
        ample_b.downtime_ns
    );
    assert!(
        scarce_far_wins,
        "scarce DRAM ({scarce_pct}%) must lose to far memory on mean, p99 and downtime: \
         mean {} vs {}, p99 {} vs {}, downtime {} vs {}",
        scarce_a.fault_mean_ns,
        scarce_b.fault_mean_ns,
        scarce_a.fault_p99_ns,
        scarce_b.fault_p99_ns,
        scarce_a.downtime_ns,
        scarce_b.downtime_ns
    );
    assert!(
        crossover_pct > *scarce_pct as i64,
        "the far-memory win must first appear strictly inside the sweep \
         (first win at {crossover_pct}%, scarce end {scarce_pct}%)"
    );
}
