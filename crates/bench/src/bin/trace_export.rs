//! Phase-timeline export: run the single-VM migration scenario under all
//! three techniques with tracing enabled and write one
//! `TRACE_<technique>.json` phase timeline (plus the raw
//! `TRACE_<technique>.jsonl` event trace) per run.
//!
//! ```sh
//! cargo run --release -p agile-bench --bin trace_export -- --scale 64
//! ```
//!
//! The exports are byte-deterministic per seed: running this binary twice
//! with the same `--seed` must produce identical files (CI diffs them as
//! a smoke gate). Timestamps are integer nanoseconds of simulated time,
//! so no wall-clock leaks in.

use agile_bench::{par_map, write_csv, Args};
use agile_cluster::scenario::single_vm::{self, SingleVmConfig};
use agile_migration::Technique;

fn main() {
    let args = Args::parse();
    let scale = args.get("scale").unwrap_or(64);
    let seed = args.get("seed").unwrap_or(42);
    let out = args.out_dir();

    let points = [
        ("precopy", Technique::PreCopy),
        ("postcopy", Technique::PostCopy),
        ("agile", Technique::Agile),
    ];
    let results = par_map(&points, |&(name, technique)| {
        let r = single_vm::run(&SingleVmConfig {
            technique,
            scale,
            trace: true,
            seed,
            ..SingleVmConfig::default()
        });
        (name, r)
    });

    for (name, r) in results {
        let mut timeline = r.timeline.clone();
        timeline.scenario = name.to_string();
        let json = write_csv(&out, &format!("TRACE_{name}.json"), &timeline.to_json())
            .expect("write timeline");
        let jsonl = r.trace_jsonl.expect("tracing was enabled");
        write_csv(&out, &format!("TRACE_{name}.jsonl"), &jsonl).expect("write event trace");
        println!(
            "{name}: total={:.3}s downtime={:.3}s bytes={} rounds={} -> {}",
            r.migration_secs,
            r.downtime_secs,
            r.migration_bytes,
            r.metrics.rounds,
            json.display()
        );
    }
}
