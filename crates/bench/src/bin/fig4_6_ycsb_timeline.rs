//! Regenerates **Figures 4, 5, 6**: average YCSB throughput across four
//! Redis VMs while one is migrated under memory pressure, for pre-copy,
//! post-copy, and Agile migration.
//!
//! ```sh
//! cargo run --release -p agile-bench --bin fig4_6_ycsb_timeline -- --scale 8
//! # single technique:
//! cargo run --release -p agile-bench --bin fig4_6_ycsb_timeline -- --technique agile
//! ```
//!
//! Writes `fig4_precopy.csv`, `fig5_postcopy.csv`, `fig6_agile.csv` under
//! `--out` (default `target/experiments`).

use agile_bench::{series_csv, write_csv, Args};
use agile_cluster::scenario::ycsb::{self, YcsbScenarioConfig};
use agile_migration::Technique;

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let out = args.out_dir();
    let only: Option<String> = args.get("technique");
    let techniques: Vec<(Technique, &str, &str)> = vec![
        (Technique::PreCopy, "precopy", "fig4_precopy.csv"),
        (Technique::PostCopy, "postcopy", "fig5_postcopy.csv"),
        (Technique::Agile, "agile", "fig6_agile.csv"),
    ];
    println!("Figures 4-6: YCSB/Redis timeline under memory pressure (scale 1/{scale})");
    println!(
        "{:<10} {:>10} {:>12} {:>14} {:>12} {:>12}",
        "technique", "mig time", "data moved", "avg ops/s", "peak ops/s", "recovered"
    );
    for (technique, name, file) in techniques {
        if let Some(o) = &only {
            if o != name {
                continue;
            }
        }
        let r = ycsb::run(&YcsbScenarioConfig {
            technique,
            scale,
            ..Default::default()
        });
        let csv = series_csv("seconds,avg_ops_per_sec", &r.series);
        let path = write_csv(&out, file, &csv).expect("write CSV");
        println!(
            "{:<10} {:>8.1} s {:>10} MB {:>14.0} {:>12.0} {:>12}",
            name,
            r.metrics
                .total_time()
                .map(|d| d.as_secs_f64())
                .unwrap_or(f64::NAN),
            r.metrics.migration_bytes / 1_000_000,
            r.avg_during_migration,
            r.peak_reference,
            r.recovery_at_secs
                .map(|t| format!("{t} s"))
                .unwrap_or_else(|| "—".into()),
        );
        eprintln!("  wrote {}", path.display());
    }
    println!(
        "\npaper reference (full scale): pre-copy 470 s / 15.0 GB, post-copy 247 s / 10.3 GB,\n\
         agile 108 s / 8.2 GB; recovery to 90% of peak: 533 s / 294 s / 215 s after t=0."
    );
}
