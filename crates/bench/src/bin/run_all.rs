//! Runs every figure/table experiment in sequence, writing all CSVs under
//! `--out` (default `target/experiments`). This is the one-command
//! regeneration entry point behind `EXPERIMENTS.md`.
//!
//! ```sh
//! cargo run --release -p agile-bench --bin run_all -- --scale 8
//! ```

use std::process::Command;

use agile_bench::Args;

fn main() {
    let args = Args::parse();
    let scale = args.scale().to_string();
    let out = args.out_dir();
    let out_s = out.display().to_string();
    let me = std::env::current_exe().expect("current exe");
    let bin_dir = me.parent().expect("bin dir");
    for bin in [
        "fig4_6_ycsb_timeline",
        "fig7_8_single_vm_sweep",
        "table1_3_app_perf",
        "fig9_10_wss_tracking",
        "ablations",
    ] {
        println!("\n================ {bin} ================");
        let status = Command::new(bin_dir.join(bin))
            .args(["--scale", &scale, "--out", &out_s])
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        assert!(status.success(), "{bin} failed");
    }
    println!("\nall experiments done; CSVs under {out_s}");
}
