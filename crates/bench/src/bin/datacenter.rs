//! Datacenter-scale sharded-DES benchmark: run `scenario::datacenter`
//! (racks as shards under the conservative epoch harness) and report
//! simulated-seconds-per-wall-second against the worker count.
//!
//! ```sh
//! cargo run --release -p agile-bench --bin datacenter -- --scale small
//! cargo run --release -p agile-bench --bin datacenter -- --scale large --workers 4
//! ```
//!
//! `DATACENTER_report.txt` is deterministic (same seed ⇒ byte-identical
//! at any `--workers`; CI runs small twice and diffs). The wall-clock
//! scaling lines go to stdout and `DATACENTER_scaling.csv` only — they
//! are measurement, not part of the determinism surface.

use agile_bench::{write_csv, Args};
use agile_cluster::scenario::datacenter::{self, DatacenterConfig};

fn main() {
    let args = Args::parse();
    let scale: String = args.get("scale").unwrap_or_else(|| "small".to_string());
    let mut cfg = match scale.as_str() {
        "small" => DatacenterConfig::small(),
        "large" => DatacenterConfig::large(),
        other => panic!("unknown --scale {other} (small|large)"),
    };
    if let Some(racks) = args.get("racks") {
        cfg.racks = racks;
    }
    if let Some(h) = args.get("hosts-per-rack") {
        cfg.hosts_per_rack = h;
    }
    if let Some(k) = args.get("vms-per-host") {
        cfg.vms_per_packed_host = k;
    }
    if let Some(seed) = args.get("seed") {
        cfg.seed = seed;
    }
    cfg.workers = args.get("workers").unwrap_or(cfg.workers);
    let out = args.out_dir();

    let r = datacenter::run(&cfg);
    print!("{}", r.report);

    let mut csv = String::from(
        "racks,hosts,vms,workers,host_cpus,sim_secs,wall_secs,sims_per_wall,\
         busy_secs,critical_path_secs,available_parallelism\n",
    );
    let sims_per_wall = r.sim_secs / r.wall.wall_secs.max(1e-9);
    csv.push_str(&format!(
        "{},{},{},{},{},{:.3},{:.6},{:.1},{:.6},{:.6},{:.3}\n",
        r.racks,
        r.hosts,
        r.vms,
        r.wall.workers,
        r.wall.host_cpus,
        r.sim_secs,
        r.wall.wall_secs,
        sims_per_wall,
        r.wall.busy_secs,
        r.wall.critical_path_secs,
        r.wall.available_parallelism,
    ));
    println!(
        "wall: hosts={} vms={} workers={} host_cpus={} sim_secs={:.1} wall_secs={:.3} \
         sims_per_wall={:.0} available_parallelism={:.2}",
        r.hosts,
        r.vms,
        r.wall.workers,
        r.wall.host_cpus,
        r.sim_secs,
        r.wall.wall_secs,
        sims_per_wall,
        r.wall.available_parallelism,
    );

    let report = write_csv(&out, "DATACENTER_report.txt", &r.report).expect("write report");
    write_csv(&out, "DATACENTER_scaling.csv", &csv).expect("write scaling csv");

    assert!(r.converged, "datacenter failed to rebalance:\n{}", r.report);
    assert!(r.migrations > 0, "hot racks must migrate");
    println!("report -> {}", report.display());
}
