//! Regenerates **Figures 9 and 10**: transparent working-set-size
//! tracking. A 5 GB VM with a 1.5 GB Redis dataset has its cgroup
//! reservation adjusted by the α/β/τ controller; Fig. 9 is the reservation
//! vs the true working set, Fig. 10 the YCSB throughput through the
//! transients.
//!
//! ```sh
//! cargo run --release -p agile-bench --bin fig9_10_wss_tracking -- --scale 8
//! ```

use agile_bench::{series_csv, write_csv, Args};
use agile_cluster::scenario::wss::{self, WssScenarioConfig};

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let out = args.out_dir();
    let cfg = WssScenarioConfig {
        scale,
        ..Default::default()
    };
    println!(
        "Figures 9-10: WSS tracking (α={} β={} τ={} KB/s, scale 1/{scale})",
        cfg.alpha, cfg.beta, cfg.tau_kbps
    );
    let r = wss::run(&cfg);

    // Fig. 9 CSV: reservation + constant true-WSS reference.
    let mut csv = String::from("seconds,reservation_bytes,true_wss_bytes\n");
    for &(t, v) in &r.reservation_series {
        csv.push_str(&format!("{t:.0},{v:.0},{}\n", r.true_wss_bytes));
    }
    let p9 = write_csv(&out, "fig9_wss_tracking.csv", &csv).expect("write CSV");
    let p10 = write_csv(
        &out,
        "fig10_wss_throughput.csv",
        &series_csv("seconds,ops_per_sec", &r.throughput_series),
    )
    .expect("write CSV");

    // Console summary: convergence milestones.
    let tw = r.true_wss_bytes as f64;
    let within = |frac: f64| {
        r.reservation_series
            .iter()
            .find(|(_, v)| (*v - tw).abs() / tw < frac)
            .map(|(t, _)| *t)
    };
    println!(
        "true WSS {} MB; initial reservation {} MB",
        r.true_wss_bytes / 1_000_000,
        r.reservation_series
            .first()
            .map(|(_, v)| *v as u64 / 1_000_000)
            .unwrap_or(0)
    );
    println!(
        "reservation within 20% of WSS at {:?} s; within 10% at {:?} s",
        within(0.20),
        within(0.10)
    );
    println!(
        "final reservation {} MB ({:+.1}% of true WSS)",
        r.final_reservation / 1_000_000,
        (r.final_reservation as f64 - tw) / tw * 100.0
    );
    let peak = r
        .throughput_series
        .iter()
        .map(|(_, v)| *v)
        .fold(0.0f64, f64::max);
    let late: Vec<f64> = r
        .throughput_series
        .iter()
        .rev()
        .take(60)
        .map(|(_, v)| *v)
        .collect();
    println!(
        "YCSB throughput: peak {peak:.0} ops/s, final-minute mean {:.0} ops/s",
        late.iter().sum::<f64>() / late.len().max(1) as f64
    );
    eprintln!("wrote {} and {}", p9.display(), p10.display());
}
