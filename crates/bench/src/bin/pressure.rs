//! Elastic-pool pressure smoke: run `scenario::pressure` (3 donor
//! servers, skewed demand ramp halving the pool) with tracing on and
//! write the deterministic pool report plus the raw event trace.
//!
//! ```sh
//! cargo run --release -p agile-bench --bin pressure -- --scale 64
//! ```
//!
//! Same seed + same scale ⇒ byte-identical `PRESSURE_report.txt` and
//! `PRESSURE_trace.jsonl` (CI runs this twice and diffs the outputs).

use agile_bench::{write_csv, Args};
use agile_cluster::scenario::pressure::{self, PressureConfig};

fn main() {
    let args = Args::parse();
    let scale = args.get("scale").unwrap_or(64);
    let seed = args.get("seed").unwrap_or(42);
    let out = args.out_dir();

    let r = pressure::run(&PressureConfig {
        scale,
        seed,
        trace: true,
        ..PressureConfig::default()
    });

    print!("{}", r.report);
    let report = write_csv(&out, "PRESSURE_report.txt", &r.report).expect("write report");
    let trace = r.trace_jsonl.as_deref().expect("tracing was enabled");
    write_csv(&out, "PRESSURE_trace.jsonl", trace).expect("write trace");
    write_csv(&out, "PRESSURE_metrics.json", &r.metrics_json).expect("write metrics");

    assert!(r.converged, "pool failed to quiesce before the deadline");
    assert_eq!(r.lost_placements, 0, "reclaim lost slot placements");
    assert_eq!(
        r.directory_replicas, r.stored_pages,
        "directory and server stores disagree"
    );
    println!("report -> {}", report.display());
}
