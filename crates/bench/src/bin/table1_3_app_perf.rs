//! Regenerates **Tables I, II, III**: average application performance
//! (YCSB ops/s, Sysbench trans/s) across 4 VMs during migration, total
//! migration time, and data transferred, for all three techniques.
//!
//! ```sh
//! cargo run --release -p agile-bench --bin table1_3_app_perf -- --scale 8
//! ```

use agile_bench::{par_map, write_csv, Args};
use agile_cluster::scenario::sysbench::{self, SysbenchScenarioConfig};
use agile_cluster::scenario::ycsb::{self, YcsbScenarioConfig};
use agile_migration::{MigrationMetrics, Technique};

struct Row {
    perf: f64,
    time_s: f64,
    mb: u64,
}

fn run_cell(technique: Technique, sysbench_wl: bool, scale: u64) -> Row {
    if sysbench_wl {
        let r = sysbench::run(&SysbenchScenarioConfig {
            technique,
            scale,
            ..Default::default()
        });
        row_from(&r.metrics, r.avg_during_window)
    } else {
        let r = ycsb::run(&YcsbScenarioConfig {
            technique,
            scale,
            ..Default::default()
        });
        row_from(&r.metrics, r.avg_during_migration)
    }
}

fn row_from(m: &MigrationMetrics, perf: f64) -> Row {
    Row {
        perf,
        time_s: m.total_time().map(|d| d.as_secs_f64()).unwrap_or(f64::NAN),
        mb: m.migration_bytes / 1_000_000,
    }
}

fn main() {
    let args = Args::parse();
    let scale = args.scale();
    let out = args.out_dir();
    let techniques = [Technique::PreCopy, Technique::PostCopy, Technique::Agile];

    // Six independent simulations, in parallel.
    let points: Vec<(usize, usize, Technique, bool)> = techniques
        .iter()
        .enumerate()
        .flat_map(|(ti, &t)| [(ti, 0usize, t, false), (ti, 1usize, t, true)])
        .collect();
    let cells: Vec<((usize, usize), Row)> = par_map(&points, |&(ti, wi, t, sysb)| {
        ((ti, wi), run_cell(t, sysb, scale))
    });
    let cell = |ti: usize, wi: usize| -> &Row {
        &cells
            .iter()
            .find(|((a, b), _)| *a == ti && *b == wi)
            .expect("cell computed")
            .1
    };

    println!("scale 1/{scale}; paper values at full scale in brackets\n");
    println!("Table I — average application performance across 4 VMs during migration");
    println!(
        "{:<22} {:>10} {:>10} {:>10}",
        "", "pre-copy", "post-copy", "agile"
    );
    println!(
        "{:<22} {:>10.0} {:>10.0} {:>10.0}   [7653 / 14926 / 17112]",
        "YCSB/Redis (ops/s)",
        cell(0, 0).perf,
        cell(1, 0).perf,
        cell(2, 0).perf
    );
    println!(
        "{:<22} {:>10.2} {:>10.2} {:>10.2}   [59.84 / 74.74 / 89.55]",
        "Sysbench (trans/s)",
        cell(0, 1).perf,
        cell(1, 1).perf,
        cell(2, 1).perf
    );

    println!("\nTable II — total migration time (seconds)");
    println!(
        "{:<22} {:>10.1} {:>10.1} {:>10.1}   [470 / 247 / 108]",
        "YCSB/Redis",
        cell(0, 0).time_s,
        cell(1, 0).time_s,
        cell(2, 0).time_s
    );
    println!(
        "{:<22} {:>10.1} {:>10.1} {:>10.1}   [182.66 / 157.56 / 80.37]",
        "Sysbench",
        cell(0, 1).time_s,
        cell(1, 1).time_s,
        cell(2, 1).time_s
    );

    println!("\nTable III — amount of data transferred (MB)");
    println!(
        "{:<22} {:>10} {:>10} {:>10}   [15029 / 10268 / 8173]",
        "YCSB/Redis",
        cell(0, 0).mb,
        cell(1, 0).mb,
        cell(2, 0).mb
    );
    println!(
        "{:<22} {:>10} {:>10} {:>10}   [11298 / 10268 / 7757]",
        "Sysbench",
        cell(0, 1).mb,
        cell(1, 1).mb,
        cell(2, 1).mb
    );

    let mut csv = String::from("workload,technique,perf,time_s,mb\n");
    for (ti, t) in techniques.iter().enumerate() {
        for (wi, w) in ["ycsb", "sysbench"].iter().enumerate() {
            let c = cell(ti, wi);
            csv.push_str(&format!("{w},{t},{:.2},{:.2},{}\n", c.perf, c.time_s, c.mb));
        }
    }
    let path = write_csv(&out, "table1_3.csv", &csv).expect("write CSV");
    eprintln!("\nwrote {}", path.display());
}
