//! Ablation studies for the design choices DESIGN.md calls out. Each
//! ablation runs the same scenario with one knob varied and reports the
//! *simulated* figure of merit.
//!
//! ```sh
//! cargo run --release -p agile-bench --bin ablations -- --scale 32
//! ```
//!
//! 1. **Transfer chunk size** — Agile migration time vs `chunk_pages`.
//! 2. **VMD intermediate-host count** — the paper claims performance does
//!    not depend on it (§V): Agile migration time with 1/2/4 servers.
//! 3. **Guest swap readahead** — the baseline thrash amplifier: post-copy
//!    migration time of a busy VM with readahead 1/4/8.
//! 4. **Pre-copy convergence threshold** — rounds and bytes vs threshold.
//! 5. **WSS controller α/β** — convergence time of the Fig. 9 scenario.

use agile_bench::Args;
use agile_cluster::build::{ClusterBuilder, SwapKind};
use agile_cluster::scenario::wss::{self, WssScenarioConfig};
use agile_cluster::{migrate, ClusterConfig};
use agile_migration::{SourceConfig, Technique};
use agile_sim_core::{SimDuration, SimTime, GIB, MIB};
use agile_vm::VmConfig;

/// One pressured Agile migration with explicit knobs; returns
/// (simulated seconds, bytes).
fn agile_once(chunk_pages: u32, n_servers: usize, scale: u64) -> (f64, u64) {
    let cfg = ClusterConfig::default();
    let mut b = ClusterBuilder::new(cfg);
    let src = b.add_host("source", 6 * GIB / scale, 200 * MIB / scale, true);
    let dst = b.add_host("dest", 6 * GIB / scale, 200 * MIB / scale, true);
    for i in 0..n_servers {
        let im = b.add_host(
            &format!("im{i}"),
            64 * GIB / scale,
            200 * MIB / scale,
            false,
        );
        b.add_vmd_server(im, (48 * GIB / scale) / n_servers as u64, 0);
    }
    b.ensure_vmd_client(dst);
    let vm = b.add_vm(
        src,
        VmConfig {
            mem_bytes: 10 * GIB / scale,
            page_size: 4096,
            vcpus: 2,
            reservation_bytes: 11 * GIB / 2 / scale,
            guest_os_bytes: 300 * MIB / scale,
        },
        SwapKind::PerVmVmd,
    );
    b.preload_pages(vm, 0, ((10 * GIB / scale) / 4096) as u32);
    let mut sim = b.build();
    let mig = migrate::start_migration(
        &mut sim,
        vm,
        dst,
        SourceConfig {
            chunk_pages,
            ..SourceConfig::new(Technique::Agile)
        },
        10 * GIB / scale,
    );
    while !sim.state().migrations[mig].finished {
        let next = sim.now() + SimDuration::from_secs(1);
        sim.run_until(next);
        assert!(sim.now() < SimTime::from_secs(3600), "stuck migration");
    }
    let m = sim.state().migrations[mig].src.metrics();
    (m.total_time().unwrap().as_secs_f64(), m.migration_bytes)
}

fn main() {
    let args = Args::parse();
    let scale = args.scale().max(8);

    println!("== ablation 1: transfer chunk size (Agile, 10 GiB/{scale} VM) ==");
    println!(
        "{:>12} {:>12} {:>12}",
        "chunk pages", "time (s)", "MB moved"
    );
    for chunk in [32u32, 128, 256, 1024] {
        let (t, b) = agile_once(chunk, 1, scale);
        println!("{chunk:>12} {t:>12.2} {:>12}", b / 1_000_000);
    }

    println!("\n== ablation 2: VMD intermediate-host count (paper: no dependence) ==");
    println!("{:>12} {:>12}", "servers", "time (s)");
    let mut times = Vec::new();
    for n in [1usize, 2, 4] {
        let (t, _) = agile_once(256, n, scale);
        times.push(t);
        println!("{n:>12} {t:>12.2}");
    }
    let spread = (times.iter().cloned().fold(f64::MIN, f64::max)
        - times.iter().cloned().fold(f64::MAX, f64::min))
        / times[0];
    println!("spread: {:.1}% (expect small)", spread * 100.0);

    println!("\n== ablation 3: guest swap readahead (busy VM under pressure) ==");
    println!(
        "{:>12} {:>16} {:>14}",
        "readahead", "guest ops (10s)", "post-copy (s)"
    );
    for ra in [1u32, 4, 8] {
        let (ops, t) = busy_postcopy_with_readahead(ra, scale);
        println!("{ra:>12} {ops:>16} {t:>14.2}");
    }
    println!("(readahead waste throttles the thrashing guest; the migration itself barely moves)");

    println!("\n== ablation 4: pre-copy convergence threshold (busy VM) ==");
    println!(
        "{:>14} {:>8} {:>12} {:>12}",
        "threshold pages", "rounds", "time (s)", "MB moved"
    );
    for threshold in [64u32, 512, 4096] {
        let (rounds, t, b) = precopy_with_threshold(threshold, scale);
        println!(
            "{threshold:>14} {rounds:>8} {t:>12.2} {:>12}",
            b / 1_000_000
        );
    }

    println!("\n== ablation 5: WSS controller α/β ==");
    println!(
        "{:>8} {:>8} {:>16} {:>14}",
        "alpha", "beta", "final err (%)", "within-20% (s)"
    );
    for (alpha, beta) in [(0.95, 1.03), (0.90, 1.06), (0.98, 1.01)] {
        let r = wss::run(&WssScenarioConfig {
            scale,
            alpha,
            beta,
            duration_secs: 500,
            ..Default::default()
        });
        let tw = r.true_wss_bytes as f64;
        let err = (r.final_reservation as f64 - tw) / tw * 100.0;
        let t20 = r
            .reservation_series
            .iter()
            .find(|(_, v)| (*v - tw).abs() / tw < 0.20)
            .map(|(t, _)| format!("{t:.0}"))
            .unwrap_or_else(|| "—".into());
        println!("{alpha:>8.2} {beta:>8.2} {err:>16.1} {t20:>14}");
    }
}

/// Busy post-copy sweep point with an explicit readahead setting; returns
/// (guest ops completed during the 10 s pressure warm-up, migration secs).
fn busy_postcopy_with_readahead(readahead: u32, scale: u64) -> (u64, f64) {
    use agile_cluster::world::WorkloadKind;
    use agile_workload::{Dataset, KeyDist, YcsbParams, YcsbRedis};
    let cfg = ClusterConfig {
        guest_readahead_pages: readahead,
        ..ClusterConfig::default()
    };
    let page = cfg.page_size;
    let mut b = ClusterBuilder::new(cfg);
    let src = b.add_host("source", 6 * GIB / scale, 300 * MIB / scale, true);
    let dst = b.add_host("dest", 6 * GIB / scale, 300 * MIB / scale, true);
    let cli = b.add_host("client", 8 * GIB / scale, 300 * MIB / scale, false);
    let vm_mem = 10 * GIB / scale;
    let vm = b.add_vm(
        src,
        VmConfig {
            mem_bytes: vm_mem,
            page_size: page,
            vcpus: 2,
            reservation_bytes: (6 * GIB / scale - 300 * MIB / scale).min(vm_mem),
            guest_os_bytes: 300 * MIB / scale,
        },
        SwapKind::HostSsd,
    );
    let dataset_bytes = vm_mem - 500 * MIB / scale - 300 * MIB / scale;
    let (ir, dr) = {
        let world = b.world_mut();
        let layout = world.vms[vm].vm.layout_mut();
        (
            layout.alloc_region("redis-index", ((dataset_bytes / 50) / page).max(4) as u32),
            layout.alloc_region("redis-data", (dataset_bytes / page) as u32),
        )
    };
    let dataset = Dataset::new(dr, dataset_bytes / 1024, 1024, page);
    let model = YcsbRedis::new(
        dataset,
        ir,
        KeyDist::UniformPrefix,
        YcsbParams::update_heavy(),
    );
    b.attach_workload(vm, cli, WorkloadKind::Ycsb(model));
    b.preload_layout(vm);
    let mut sim = b.build();
    agile_cluster::build::start_all_workloads(&mut sim, SimTime::from_secs(1));
    sim.run_until(SimTime::from_secs(10));
    let warmup_ops = sim.state().vms[vm].meter.total();
    let mig = migrate::start_migration(
        &mut sim,
        vm,
        dst,
        SourceConfig::new(Technique::PostCopy),
        vm_mem,
    );
    while !sim.state().migrations[mig].finished {
        let next = sim.now() + SimDuration::from_secs(1);
        sim.run_until(next);
        assert!(sim.now() < SimTime::from_secs(3600), "stuck migration");
    }
    let t = sim.state().migrations[mig]
        .src
        .metrics()
        .total_time()
        .unwrap()
        .as_secs_f64();
    (warmup_ops, t)
}

/// Busy pre-copy with an explicit convergence threshold; returns
/// (rounds, seconds, bytes).
fn precopy_with_threshold(threshold: u32, scale: u64) -> (u32, f64, u64) {
    let r = single_vm_precopy(threshold, scale);
    (r.0, r.1, r.2)
}

fn single_vm_precopy(threshold: u32, scale: u64) -> (u32, f64, u64) {
    use agile_cluster::world::WorkloadKind;
    use agile_workload::{Dataset, KeyDist, YcsbParams, YcsbRedis};
    let cfg = ClusterConfig::default();
    let page = cfg.page_size;
    let mut b = ClusterBuilder::new(cfg);
    let src = b.add_host("source", 6 * GIB / scale, 300 * MIB / scale, true);
    let dst = b.add_host("dest", 6 * GIB / scale, 300 * MIB / scale, true);
    let cli = b.add_host("client", 8 * GIB / scale, 300 * MIB / scale, false);
    let vm_mem = 4 * GIB / scale; // fits: write-heavy dirtying is the knob
    let vm = b.add_vm(
        src,
        VmConfig {
            mem_bytes: vm_mem,
            page_size: page,
            vcpus: 2,
            reservation_bytes: vm_mem,
            guest_os_bytes: 300 * MIB / scale,
        },
        SwapKind::HostSsd,
    );
    let dataset_bytes = vm_mem / 2;
    let (ir, dr) = {
        let world = b.world_mut();
        let layout = world.vms[vm].vm.layout_mut();
        (
            layout.alloc_region("redis-index", ((dataset_bytes / 50) / page).max(4) as u32),
            layout.alloc_region("redis-data", (dataset_bytes / page) as u32),
        )
    };
    let dataset = Dataset::new(dr, dataset_bytes / 1024, 1024, page);
    let model = YcsbRedis::new(
        dataset,
        ir,
        KeyDist::UniformPrefix,
        YcsbParams::update_heavy(),
    );
    b.attach_workload(vm, cli, WorkloadKind::Ycsb(model));
    b.preload_layout(vm);
    let mut sim = b.build();
    agile_cluster::build::start_all_workloads(&mut sim, SimTime::from_secs(1));
    sim.run_until(SimTime::from_secs(5));
    let mig = migrate::start_migration(
        &mut sim,
        vm,
        dst,
        SourceConfig {
            precopy_threshold_pages: threshold,
            ..SourceConfig::new(Technique::PreCopy)
        },
        vm_mem,
    );
    while !sim.state().migrations[mig].finished {
        let next = sim.now() + SimDuration::from_secs(1);
        sim.run_until(next);
        assert!(sim.now() < SimTime::from_secs(3600), "stuck migration");
    }
    let m = sim.state().migrations[mig].src.metrics();
    (
        m.rounds,
        m.total_time().unwrap().as_secs_f64(),
        m.migration_bytes,
    )
}
