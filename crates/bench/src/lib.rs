//! # agile-bench
//!
//! The benchmark harness: one binary per paper figure/table (see
//! `src/bin/`) plus Criterion micro- and ablation benches (`benches/`).
//!
//! | binary | regenerates |
//! |--------|-------------|
//! | `fig4_6_ycsb_timeline` | Figures 4–6 (YCSB throughput timelines) |
//! | `fig7_8_single_vm_sweep` | Figures 7–8 (migration time / data vs VM size) |
//! | `table1_3_app_perf` | Tables I–III (app perf, migration time, data) |
//! | `fig9_10_wss_tracking` | Figures 9–10 (WSS tracking) |
//! | `run_all` | everything above, writing CSVs under `--out` |
//!
//! All binaries accept `--scale N` (divide the paper's byte sizes by `N`;
//! default 8 — qualitatively identical in a fraction of the wall time) and
//! `--out DIR` for CSV output.

use std::path::{Path, PathBuf};

/// Minimal CLI argument scraper shared by the experiment binaries.
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Parse the process arguments.
    pub fn parse() -> Self {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Value of `--name <v>`, parsed.
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        let flag = format!("--{name}");
        self.raw
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
    }

    /// The scale divisor (default 8).
    pub fn scale(&self) -> u64 {
        self.get("scale").unwrap_or(8)
    }

    /// The output directory for CSVs (default `target/experiments`).
    pub fn out_dir(&self) -> PathBuf {
        self.get::<String>("out")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("target/experiments"))
    }

    /// Presence of a bare `--name` flag.
    pub fn flag(&self, name: &str) -> bool {
        let flag = format!("--{name}");
        self.raw.iter().any(|a| a == &flag)
    }
}

impl Default for Args {
    fn default() -> Self {
        Self::parse()
    }
}

/// Write a CSV file, creating the directory as needed.
pub fn write_csv(dir: &Path, name: &str, contents: &str) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    std::fs::write(&path, contents)?;
    Ok(path)
}

/// Render a `(seconds, value)` series as CSV text.
pub fn series_csv(header: &str, series: &[(u64, f64)]) -> String {
    let mut s = String::with_capacity(series.len() * 12 + header.len() + 1);
    s.push_str(header);
    s.push('\n');
    for (t, v) in series {
        s.push_str(&format!("{t},{v:.2}\n"));
    }
    s
}

/// Format seconds for table cells.
pub fn fmt_secs(s: Option<f64>) -> String {
    match s {
        Some(v) => format!("{v:.1}"),
        None => "—".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_csv_renders() {
        let csv = series_csv("t,ops", &[(0, 1.0), (1, 2.5)]);
        assert_eq!(csv, "t,ops\n0,1.00\n1,2.50\n");
    }

    #[test]
    fn fmt_secs_handles_none() {
        assert_eq!(fmt_secs(None), "—");
        assert_eq!(fmt_secs(Some(1.25)), "1.2");
    }
}
