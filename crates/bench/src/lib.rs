//! # agile-bench
//!
//! The benchmark harness: one binary per paper figure/table (see
//! `src/bin/`) plus self-contained micro- and ablation benches
//! (`benches/`, built on [`harness`]).
//!
//! | binary | regenerates |
//! |--------|-------------|
//! | `fig4_6_ycsb_timeline` | Figures 4–6 (YCSB throughput timelines) |
//! | `fig7_8_single_vm_sweep` | Figures 7–8 (migration time / data vs VM size) |
//! | `table1_3_app_perf` | Tables I–III (app perf, migration time, data) |
//! | `fig9_10_wss_tracking` | Figures 9–10 (WSS tracking) |
//! | `run_all` | everything above, writing CSVs under `--out` |
//!
//! All binaries accept `--scale N` (divide the paper's byte sizes by `N`;
//! default 8 — qualitatively identical in a fraction of the wall time) and
//! `--out DIR` for CSV output.

use std::path::{Path, PathBuf};

/// Minimal CLI argument scraper shared by the experiment binaries.
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Parse the process arguments.
    pub fn parse() -> Self {
        Args {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// Value of `--name <v>`, parsed.
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Option<T> {
        let flag = format!("--{name}");
        self.raw
            .iter()
            .position(|a| a == &flag)
            .and_then(|i| self.raw.get(i + 1))
            .and_then(|v| v.parse().ok())
    }

    /// The scale divisor (default 8).
    pub fn scale(&self) -> u64 {
        self.get("scale").unwrap_or(8)
    }

    /// The output directory for CSVs (default `target/experiments`).
    pub fn out_dir(&self) -> PathBuf {
        self.get::<String>("out")
            .map(PathBuf::from)
            .unwrap_or_else(|| PathBuf::from("target/experiments"))
    }

    /// Presence of a bare `--name` flag.
    pub fn flag(&self, name: &str) -> bool {
        let flag = format!("--{name}");
        self.raw.iter().any(|a| a == &flag)
    }
}

impl Default for Args {
    fn default() -> Self {
        Self::parse()
    }
}

/// Map `f` over `items` on up to `available_parallelism()` scoped threads,
/// returning results in input order. The experiment binaries use this for
/// their embarrassingly parallel sweep points; each point is an
/// independent simulation, so ordering the results by input index keeps
/// the output deterministic regardless of scheduling.
pub fn par_map<T: Sync, R: Send>(items: &[T], f: impl Fn(&T) -> R + Sync) -> Vec<R> {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let workers = std::thread::available_parallelism()
        .map(|v| v.get())
        .unwrap_or(1)
        .min(n);
    let next = AtomicUsize::new(0);
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::scope(|s| {
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            let f = &f;
            s.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&items[i]);
                if tx.send((i, r)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut out: Vec<Option<R>> = (0..n).map(|_| None).collect();
        for (i, r) in rx {
            out[i] = Some(r);
        }
        out.into_iter()
            .map(|o| o.expect("worker produced result"))
            .collect()
    })
}

/// Write a CSV file, creating the directory as needed.
pub fn write_csv(dir: &Path, name: &str, contents: &str) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    std::fs::write(&path, contents)?;
    Ok(path)
}

/// Render a `(seconds, value)` series as CSV text.
pub fn series_csv(header: &str, series: &[(u64, f64)]) -> String {
    let mut s = String::with_capacity(series.len() * 12 + header.len() + 1);
    s.push_str(header);
    s.push('\n');
    for (t, v) in series {
        s.push_str(&format!("{t},{v:.2}\n"));
    }
    s
}

/// Format seconds for table cells.
pub fn fmt_secs(s: Option<f64>) -> String {
    match s {
        Some(v) => format!("{v:.1}"),
        None => "—".into(),
    }
}

pub mod seed_baseline;

/// Minimal wall-clock micro-benchmark harness. The `benches/` targets and
/// `perf_report` build on this instead of an external framework: calibrate
/// a batch size against the clock, run a few batches, keep the fastest
/// (least-interfered) one.
pub mod harness {
    pub use std::hint::black_box;
    use std::time::Instant;

    /// One measured benchmark.
    #[derive(Clone, Debug)]
    pub struct BenchResult {
        /// Benchmark label, e.g. `"event_queue/schedule_pop"`.
        pub name: String,
        /// Best observed nanoseconds per iteration.
        pub ns_per_iter: f64,
        /// Iterations per measured batch (after calibration).
        pub iters_per_batch: u64,
    }

    impl BenchResult {
        /// Iterations per second at the best observed rate.
        pub fn per_sec(&self) -> f64 {
            1e9 / self.ns_per_iter
        }
    }

    /// Measure `f`, printing one line and returning the result.
    ///
    /// Calibration doubles the batch until it runs ≥ 20 ms, then scales to
    /// a ~100 ms batch; five batches are measured and the fastest kept.
    pub fn bench(name: &str, mut f: impl FnMut()) -> BenchResult {
        let mut iters = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            let dt = t0.elapsed();
            if dt.as_millis() >= 20 {
                let scale = 0.1 / dt.as_secs_f64().max(1e-9);
                iters = ((iters as f64 * scale).ceil() as u64).max(1);
                break;
            }
            iters *= 2;
        }
        let mut best = f64::INFINITY;
        for _ in 0..5 {
            let t0 = Instant::now();
            for _ in 0..iters {
                f();
            }
            let ns = t0.elapsed().as_nanos() as f64 / iters as f64;
            if ns < best {
                best = ns;
            }
        }
        let r = BenchResult {
            name: name.to_string(),
            ns_per_iter: best,
            iters_per_batch: iters,
        };
        println!(
            "{:<44} {:>14.1} ns/iter {:>16.0} iter/s",
            r.name,
            r.ns_per_iter,
            r.per_sec()
        );
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_csv_renders() {
        let csv = series_csv("t,ops", &[(0, 1.0), (1, 2.5)]);
        assert_eq!(csv, "t,ops\n0,1.00\n1,2.50\n");
    }

    #[test]
    fn fmt_secs_handles_none() {
        assert_eq!(fmt_secs(None), "—");
        assert_eq!(fmt_secs(Some(1.25)), "1.2");
    }
}
