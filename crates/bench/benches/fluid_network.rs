//! Fluid-network microbenchmarks: the per-event cost of the max-min
//! water-filling allocator and the poll loop under realistic channel
//! counts (the simulation's hottest path after the guest op engine).
#![allow(missing_docs)]

use agile_bench::harness::{bench, black_box};
use agile_bench::seed_baseline::{seed_waterfill, SeedChannel};
use agile_sim_core::{Bandwidth, Network, SimDuration, SimTime};

fn make_net(nodes: usize, channels: usize) -> (Network, Vec<agile_sim_core::ChannelId>) {
    let mut net = Network::new(SimDuration::from_micros(50));
    let ns: Vec<_> = (0..nodes)
        .map(|_| net.add_symmetric_node(Bandwidth::gbps(1.0)))
        .collect();
    let chs: Vec<_> = (0..channels)
        .map(|i| net.open_channel(ns[i % nodes], ns[(i + 1) % nodes]))
        .collect();
    (net, chs)
}

fn bench_send_poll_cycle() {
    // The steady-state workload pattern: small messages on ~16 channels.
    let (mut net, chs) = make_net(5, 16);
    let mut t = SimTime::ZERO;
    let mut i = 0usize;
    bench("network/send_poll_cycle_16ch", || {
        t += SimDuration::from_micros(10);
        net.send(t, chs[i % chs.len()], 1100, i as u64);
        i += 1;
        if let Some(next) = net.next_event_time() {
            if next <= t {
                black_box(net.poll(t).len());
            }
        }
    });
}

fn bench_rate_recompute() {
    // Worst case: every channel active, full water-filling pass.
    let (mut net, chs) = make_net(8, 32);
    for (i, ch) in chs.iter().enumerate() {
        net.send(SimTime::ZERO, *ch, 100_000_000, i as u64);
    }
    let mut t = SimTime::ZERO;
    let mut i = 0u64;
    bench("network/waterfill_32_active", || {
        // Each send triggers a recompute (membership unchanged ones are
        // cheap; this alternates to force real work).
        t += SimDuration::from_micros(1);
        net.send(t, chs[(i % 32) as usize], 1000, i);
        i += 1;
        black_box(net.channel_rate(chs[0]));
    });
}

fn bench_seed_waterfill() {
    // The same 32-channel/8-node topology as waterfill_32_active, run
    // through the seed's allocation pattern (see `seed_baseline`).
    let node_caps: Vec<(f64, f64)> = (0..8).map(|_| (125e6, 125e6)).collect();
    let mut channels: Vec<SeedChannel> = (0..32).map(|i| (i % 8, (i + 1) % 8, None, 0.0)).collect();
    bench("network/SEED_waterfill_32_active", || {
        seed_waterfill(&node_caps, &mut channels);
        black_box(channels[0].3);
    });
}

fn bench_drain_bulk() {
    // Bulk migration pattern: 1 MiB chunks back to back.
    bench("network/drain_1000_chunks", || {
        let (mut net, chs) = make_net(2, 1);
        for i in 0..1000u64 {
            net.send(SimTime::ZERO, chs[0], 1_050_000, i);
        }
        let mut n = 0;
        while let Some(t) = net.next_event_time() {
            n += net.poll(t).len();
        }
        black_box(n);
    });
}

fn main() {
    bench_send_poll_cycle();
    bench_rate_recompute();
    bench_seed_waterfill();
    bench_drain_bulk();
}
