//! End-to-end technique comparison at miniature scale: one pressured VM
//! migrated with pre-copy, post-copy, and Agile. The per-technique wall
//! time is the quick regression check that the orderings of Tables II and
//! III still hold after a change.
#![allow(missing_docs)]

use agile_cluster::build::{ClusterBuilder, SwapKind};
use agile_cluster::{migrate, ClusterConfig};
use agile_migration::{SourceConfig, Technique};
use agile_sim_core::{SimDuration, SimTime, GIB, MIB};
use agile_vm::VmConfig;
use std::time::Instant;

/// Run one idle pressured migration to completion; returns simulated
/// seconds (the figure of merit) — wall time is what the harness measures.
fn migrate_once(technique: Technique, seed: u64) -> f64 {
    let cfg = ClusterConfig {
        seed,
        ..ClusterConfig::default()
    };
    let mut b = ClusterBuilder::new(cfg);
    let src = b.add_host("source", 96 * MIB, 8 * MIB, true);
    let dst = b.add_host("dest", 96 * MIB, 8 * MIB, true);
    if technique == Technique::Agile {
        let im = b.add_host("intermediate", 2 * GIB, 8 * MIB, false);
        b.add_vmd_server(im, GIB, 0);
        b.ensure_vmd_client(dst);
    }
    let kind = if technique == Technique::Agile {
        SwapKind::PerVmVmd
    } else {
        SwapKind::HostSsd
    };
    let vm = b.add_vm(
        src,
        VmConfig {
            mem_bytes: 64 * MIB,
            page_size: 4096,
            vcpus: 2,
            reservation_bytes: 40 * MIB,
            guest_os_bytes: 4 * MIB,
        },
        kind,
    );
    b.preload_pages(vm, 0, (64 * MIB / 4096) as u32);
    let mut sim = b.build();
    let mig = migrate::start_migration(
        &mut sim,
        vm,
        dst,
        SourceConfig {
            precopy_threshold_pages: 64,
            ..SourceConfig::new(technique)
        },
        64 * MIB,
    );
    while !sim.state().migrations[mig].finished {
        let next = sim.now() + SimDuration::from_secs(1);
        sim.run_until(next);
        assert!(sim.now() < SimTime::from_secs(300), "stuck migration");
    }
    sim.state().migrations[mig]
        .src
        .metrics()
        .total_time()
        .unwrap()
        .as_secs_f64()
}

fn main() {
    const SAMPLES: u64 = 10;
    println!("migrate_64MiB_pressured ({SAMPLES} samples per technique)");
    for technique in [Technique::PreCopy, Technique::PostCopy, Technique::Agile] {
        let mut wall = Vec::with_capacity(SAMPLES as usize);
        let mut sim_secs = 0.0;
        for seed in 1..=SAMPLES {
            let t0 = Instant::now();
            sim_secs = migrate_once(technique, seed);
            wall.push(t0.elapsed().as_secs_f64() * 1e3);
        }
        wall.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = wall[wall.len() / 2];
        println!(
            "  {technique:>9?}: median {median:8.2} ms wall   (last run: {sim_secs:.2} simulated s)"
        );
    }
}
