//! End-to-end technique comparison at miniature scale: one pressured VM
//! migrated with pre-copy, post-copy, and Agile. Criterion's comparison
//! output is the quick regression check that the orderings of Tables II
//! and III still hold after a change.
#![allow(missing_docs)] // criterion macros generate undocumented items

use agile_cluster::build::{ClusterBuilder, SwapKind};
use agile_cluster::{migrate, ClusterConfig};
use agile_migration::{SourceConfig, Technique};
use agile_sim_core::{SimDuration, SimTime, GIB, MIB};
use agile_vm::VmConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

/// Run one idle pressured migration to completion; returns simulated
/// seconds (the figure of merit) — wall time is what criterion measures.
fn migrate_once(technique: Technique, seed: u64) -> f64 {
    let cfg = ClusterConfig {
        seed,
        ..ClusterConfig::default()
    };
    let mut b = ClusterBuilder::new(cfg);
    let src = b.add_host("source", 96 * MIB, 8 * MIB, true);
    let dst = b.add_host("dest", 96 * MIB, 8 * MIB, true);
    if technique == Technique::Agile {
        let im = b.add_host("intermediate", 2 * GIB, 8 * MIB, false);
        b.add_vmd_server(im, GIB, 0);
        b.ensure_vmd_client(dst);
    }
    let kind = if technique == Technique::Agile {
        SwapKind::PerVmVmd
    } else {
        SwapKind::HostSsd
    };
    let vm = b.add_vm(
        src,
        VmConfig {
            mem_bytes: 64 * MIB,
            page_size: 4096,
            vcpus: 2,
            reservation_bytes: 40 * MIB,
            guest_os_bytes: 4 * MIB,
        },
        kind,
    );
    b.preload_pages(vm, 0, (64 * MIB / 4096) as u32);
    let mut sim = b.build();
    let mig = migrate::start_migration(
        &mut sim,
        vm,
        dst,
        SourceConfig {
            precopy_threshold_pages: 64,
            ..SourceConfig::new(technique)
        },
        64 * MIB,
    );
    while !sim.state().migrations[mig].finished {
        let next = sim.now() + SimDuration::from_secs(1);
        sim.run_until(next);
        assert!(sim.now() < SimTime::from_secs(300), "stuck migration");
    }
    sim.state().migrations[mig]
        .src
        .metrics()
        .total_time()
        .unwrap()
        .as_secs_f64()
}

fn bench_techniques(c: &mut Criterion) {
    let mut g = c.benchmark_group("migrate_64MiB_pressured");
    g.sample_size(10);
    for technique in [Technique::PreCopy, Technique::PostCopy, Technique::Agile] {
        g.bench_with_input(
            BenchmarkId::from_parameter(technique),
            &technique,
            |b, &t| {
                let mut seed = 0u64;
                b.iter(|| {
                    seed += 1;
                    migrate_once(t, seed)
                });
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_techniques);
criterion_main!(benches);
