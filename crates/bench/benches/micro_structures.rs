//! Microbenchmarks of the hot data structures: the intrusive LRU, the
//! migration bitmaps, YCSB's zipfian generator, and the page-table touch
//! path. These are the per-event costs that bound simulation throughput.
#![allow(missing_docs)] // criterion macros generate undocumented items

use agile_memory::{LruLinks, LruList, Touch, VmMemory, VmMemoryConfig};
use agile_migration::Bitmap;
use agile_sim_core::DetRng;
use agile_workload::Zipfian;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench_lru(c: &mut Criterion) {
    let n: u32 = 100_000;
    c.bench_function("lru/push_remove_cycle", |b| {
        let mut links = LruLinks::new(n as usize);
        let mut list = LruList::new();
        for p in 0..n {
            list.push_front(&mut links, p);
        }
        let mut i = 0u32;
        b.iter(|| {
            let victim = list.pop_back(&mut links).unwrap();
            list.push_front(&mut links, victim);
            i = i.wrapping_add(1);
            black_box(victim)
        });
    });
}

fn bench_bitmap(c: &mut Criterion) {
    // A 10 GiB VM's bitmap: 2.6 M pages.
    let n: u32 = 2_621_440;
    let mut b10 = Bitmap::zeros(n);
    for p in (0..n).step_by(97) {
        b10.set(p);
    }
    c.bench_function("bitmap/scan_sparse_2.6M", |b| {
        b.iter(|| {
            let mut count = 0u32;
            let mut cursor = 0;
            while let Some(p) = b10.next_set(cursor) {
                count += 1;
                cursor = p + 1;
            }
            black_box(count)
        });
    });
    c.bench_function("bitmap/set_clear", |b| {
        let mut bm = Bitmap::zeros(n);
        let mut p = 0u32;
        b.iter(|| {
            bm.set(p % n);
            bm.clear(p % n);
            p = p.wrapping_add(7919);
        });
    });
}

fn bench_zipfian(c: &mut Criterion) {
    let z = Zipfian::ycsb(9_437_184); // the paper's 9 GB / 1 KB records
    let mut rng = DetRng::seed_from(7);
    c.bench_function("zipfian/sample_9.4M_keys", |b| {
        b.iter(|| black_box(z.sample(&mut rng)));
    });
}

fn bench_touch_path(c: &mut Criterion) {
    // Steady-state touch/fault cycle under a reservation.
    let mut mem = VmMemory::new(VmMemoryConfig {
        pages: 65_536,
        page_size: 4096,
        limit_pages: 32_768,
    });
    let mut evs = Vec::new();
    for p in 0..65_536u32 {
        mem.touch(p, true);
        mem.fault_in(p, true, &mut evs);
        evs.clear();
    }
    let mut rng = DetRng::seed_from(3);
    c.bench_function("vmmemory/touch_fault_evict_cycle", |b| {
        b.iter(|| {
            let p = rng.index(65_536) as u32;
            match mem.touch(p, false) {
                Touch::Hit => {}
                Touch::MajorFault { .. } => {
                    mem.begin_swap_in(p);
                    mem.fault_in(p, false, &mut evs);
                    evs.clear();
                }
                Touch::MinorFault => {
                    mem.fault_in(p, false, &mut evs);
                    evs.clear();
                }
                Touch::InFlight => unreachable!(),
            }
            black_box(p)
        });
    });
}

criterion_group!(benches, bench_lru, bench_bitmap, bench_zipfian, bench_touch_path);
criterion_main!(benches);
