//! Microbenchmarks of the hot data structures: the slab event queue, the
//! intrusive LRU, the migration bitmaps, YCSB's zipfian generator, and the
//! page-table touch path. These are the per-event costs that bound
//! simulation throughput.
#![allow(missing_docs)]

use agile_bench::harness::{bench, black_box};
use agile_memory::{LruLinks, LruList, Touch, VmMemory, VmMemoryConfig};
use agile_migration::Bitmap;
use agile_sim_core::{DetRng, FastEvent, SimDuration, SimTime, Simulation};
use agile_workload::Zipfian;

use agile_bench::seed_baseline as seed_queue;

fn bench_event_queue() {
    // Steady-state schedule/pop churn with typed fast events: the queue
    // holds ~1000 pending events while one fires and one is scheduled per
    // step — the DES hot loop.
    let mut sim = Simulation::new(0u64);
    sim.set_fast_handler(|sim, _ev| {
        let now = sim.now();
        *sim.state_mut() += 1;
        sim.schedule_fast(
            now + SimDuration::from_micros(1000),
            FastEvent::Timer {
                kind: 0,
                a: 0,
                b: 0,
            },
        );
    });
    for i in 0..1000u64 {
        sim.schedule_fast(
            SimTime::from_micros(i),
            FastEvent::Timer {
                kind: 0,
                a: i,
                b: 0,
            },
        );
    }
    bench("event_queue/fast_schedule_pop_1k_pending", || {
        sim.step();
        black_box(sim.now());
    });

    // The same churn through boxed closures (the general path). The
    // closure captures the two payload words a real event carries (object
    // id + generation) — a sized closure, so every schedule allocates.
    let mut sim = Simulation::new(0u64);
    fn refire(sim: &mut Simulation<u64>, a: u64, b: u64) {
        *sim.state_mut() += 1;
        let (a, b) = (black_box(a), black_box(b));
        sim.schedule_in(SimDuration::from_micros(1000), move |s| refire(s, a, b));
    }
    for i in 0..1000u64 {
        sim.schedule_at(SimTime::from_micros(i), move |s| refire(s, i, 1));
    }
    bench("event_queue/boxed_schedule_pop_1k_pending", || {
        sim.step();
        black_box(sim.now());
    });

    // The seed baseline for the same churn: payload-capturing boxed
    // closures in a BinaryHeap with HashSet cancellation — exactly what
    // every guest timer looked like before the typed fast path.
    let mut seed = seed_queue::SeedSim::new();
    fn seed_refire(sim: &mut seed_queue::SeedSim, a: u64, b: u64) {
        let (a, b) = (black_box(a), black_box(b));
        sim.schedule_in(SimDuration::from_micros(1000), move |s| {
            seed_refire(s, a, b)
        });
    }
    for i in 0..1000u64 {
        seed.schedule_at(SimTime::from_micros(i), move |s| seed_refire(s, i, 1));
    }
    bench("event_queue/SEED_schedule_pop_1k_pending", || {
        seed.step();
        black_box(seed.now);
    });

    // Schedule + cancel + fire: the fate of most timeout-style events. One
    // near event fires per iteration while a far "timeout" (at the OS
    // timeout scale, ~100 ms, vs the ~1 µs event spacing) is scheduled and
    // immediately cancelled — the slab reclaims the slot at cancel and only
    // a 24-byte key lingers; the seed carries the 40-byte entry, its boxed
    // closure allocation, and a HashSet tombstone until the time comes up.
    let mut sim = Simulation::new(0u64);
    sim.set_fast_handler(|_, _| {});
    bench("event_queue/timeout_cancel_cycle", || {
        let now = sim.now();
        let timeout = sim.schedule_fast(
            now + SimDuration::from_millis(100),
            FastEvent::Timer {
                kind: 1,
                a: 0,
                b: 0,
            },
        );
        sim.schedule_fast(
            now + SimDuration::from_micros(1),
            FastEvent::Timer {
                kind: 0,
                a: 0,
                b: 0,
            },
        );
        sim.cancel(timeout);
        black_box(sim.step());
    });

    let mut seed = seed_queue::SeedSim::new();
    bench("event_queue/SEED_timeout_cancel_cycle", || {
        let now = seed.now;
        let (a, b) = (black_box(1u64), black_box(2u64));
        let timeout = seed.schedule_at(now + SimDuration::from_millis(100), move |s| {
            s.fired += black_box(a + b);
        });
        seed.schedule_at(now + SimDuration::from_micros(1), move |s| {
            s.fired += black_box(a.wrapping_mul(b));
        });
        seed.cancel(timeout);
        black_box(seed.step());
    });
}

fn bench_lru() {
    let n: u32 = 100_000;
    let mut links = LruLinks::new(n as usize);
    let mut list = LruList::new();
    for p in 0..n {
        list.push_front(&mut links, p);
    }
    bench("lru/push_remove_cycle", || {
        let victim = list.pop_back(&mut links).unwrap();
        list.push_front(&mut links, victim);
        black_box(victim);
    });
}

fn bench_bitmap() {
    // A 10 GiB VM's bitmap: 2.6 M pages.
    let n: u32 = 2_621_440;
    let mut b10 = Bitmap::zeros(n);
    for p in (0..n).step_by(97) {
        b10.set(p);
    }
    bench("bitmap/scan_sparse_2.6M", || {
        let mut count = 0u32;
        let mut cursor = 0;
        while let Some(p) = b10.next_set(cursor) {
            count += 1;
            cursor = p + 1;
        }
        black_box(count);
    });
    bench("bitmap/for_each_set_sparse_2.6M", || {
        let mut count = 0u32;
        b10.for_each_set(|_| count += 1);
        black_box(count);
    });
    let mut bm = Bitmap::zeros(n);
    let mut p = 0u32;
    bench("bitmap/set_clear", || {
        bm.set(p % n);
        bm.clear(p % n);
        p = p.wrapping_add(7919);
    });
}

fn bench_zipfian() {
    let z = Zipfian::ycsb(9_437_184); // the paper's 9 GB / 1 KB records
    let mut rng = DetRng::seed_from(7);
    bench("zipfian/sample_9.4M_keys", || {
        black_box(z.sample(&mut rng));
    });
}

fn bench_touch_path() {
    // Steady-state touch/fault cycle under a reservation.
    let mut mem = VmMemory::new(VmMemoryConfig {
        pages: 65_536,
        page_size: 4096,
        limit_pages: 32_768,
    });
    let mut evs = Vec::new();
    for p in 0..65_536u32 {
        mem.touch(p, true);
        mem.fault_in(p, true, &mut evs);
        evs.clear();
    }
    let mut rng = DetRng::seed_from(3);
    bench("vmmemory/touch_fault_evict_cycle", || {
        let p = rng.index(65_536) as u32;
        match mem.touch(p, false) {
            Touch::Hit => {}
            Touch::MajorFault { .. } => {
                mem.begin_swap_in(p);
                mem.fault_in(p, false, &mut evs);
                evs.clear();
            }
            Touch::MinorFault => {
                mem.fault_in(p, false, &mut evs);
                evs.clear();
            }
            Touch::InFlight => unreachable!(),
        }
        black_box(p);
    });
}

fn main() {
    bench_event_queue();
    bench_lru();
    bench_bitmap();
    bench_zipfian();
    bench_touch_path();
}
