//! Active-fraction resize determinism audit.
//!
//! The temporal workload driver resizes YCSB active windows (and
//! rotates working-set windows) mid-run from ordinary DES events. For
//! legacy traces and sharded replays to stay byte-identical, a resize
//! applied at an identical sim time must be *pure*: it may consume no
//! RNG draws, and the post-resize op stream must depend only on the
//! (active count, window start, RNG state) triple — never on the
//! resize *history* that led there. These tests pin that contract for
//! the Zipfian rebuild path and the Dataset page mapping.

use agile_sim_core::DetRng;
use agile_vm::PageRange;
use agile_workload::{Dataset, KeyDist, OpSpec, YcsbParams, YcsbRedis};

/// The page-touch footprint of an op, as comparable data.
fn touches(op: OpSpec) -> Vec<(u32, bool)> {
    op.touches.iter().collect()
}

fn model(dist: KeyDist) -> YcsbRedis {
    let index = PageRange { start: 0, len: 8 };
    let data = PageRange {
        start: 8,
        len: 2500,
    };
    // 10,000 records × 1 KiB on 4 KiB pages.
    let dataset = Dataset::new(data, 10_000, 1024, 4096);
    YcsbRedis::new(dataset, index, dist, YcsbParams::default())
}

/// The Zipfian table rebuild triggered by an active-window resize must
/// not consume RNG draws: the generator is a pure function of
/// `(active, theta)`.
#[test]
fn zipfian_rebuild_consumes_no_rng_draws() {
    let mut resized = model(KeyDist::ycsb_zipfian());
    let mut fresh = model(KeyDist::ycsb_zipfian());
    let mut ra = DetRng::seed_from(77);
    let mut rb = DetRng::seed_from(77);

    // `resized` samples at the small window first (forcing a build),
    // then resizes; `fresh` jumps straight to the final size. Align the
    // RNG states by replaying the same draws through a throwaway.
    resized.set_active_bytes(200 * 1024);
    for _ in 0..50 {
        let _ = resized.next_op(&mut ra);
        let _ = fresh.next_op(&mut rb); // burn identical draw counts
    }
    fresh.set_active_bytes(200 * 1024); // no draws so far at this size
    let mut fresh2 = model(KeyDist::ycsb_zipfian());
    fresh2.set_active_bytes(6 * 1024 * 1024);
    resized.set_active_bytes(6 * 1024 * 1024);

    // Both RNGs are now at the same state; `resized` rebuilds its table
    // lazily on the next op, `fresh2` builds its first table. The
    // streams must coincide draw-for-draw.
    let mut rc = ra.clone();
    for _ in 0..200 {
        let a = resized.next_op(&mut ra);
        let b = fresh2.next_op(&mut rc);
        assert_eq!(touches(a), touches(b), "rebuild leaked RNG state");
    }
    assert_eq!(ra.next_u64(), rc.next_u64(), "draw counts diverged");
}

/// Two models that reach the same `(active, start, rng)` state via
/// different resize histories emit identical op streams — the property
/// that makes a resize applied at an identical sim time reproducible
/// across replays and worker counts.
#[test]
fn resize_history_does_not_leak_into_the_stream() {
    for dist in [KeyDist::UniformPrefix, KeyDist::ycsb_zipfian()] {
        let mut a = model(dist.clone());
        let mut b = model(dist);
        let mut ra = DetRng::seed_from(9);
        let mut rb = DetRng::seed_from(9);

        // Same draws, different resize walks with no sampling between
        // the intermediate steps (a driver may apply several knob
        // changes inside one tick).
        for _ in 0..25 {
            assert_eq!(touches(a.next_op(&mut ra)), touches(b.next_op(&mut rb)));
        }
        a.set_active_bytes(512 * 1024);
        a.set_active_bytes(3 * 1024 * 1024);
        b.set_active_bytes(3 * 1024 * 1024);
        a.set_active_start(9_000);
        b.set_active_start(19_000); // wraps to the same 9,000
        for _ in 0..200 {
            assert_eq!(
                touches(a.next_op(&mut ra)),
                touches(b.next_op(&mut rb)),
                "resize history leaked into the op stream"
            );
        }
        assert_eq!(ra.next_u64(), rb.next_u64(), "draw counts diverged");
    }
}

/// Shrinking and re-growing the window back to its original size must
/// reproduce the original stream exactly (the diurnal signals do this
/// every period).
#[test]
fn shrink_then_regrow_restores_the_original_stream() {
    let mut cycled = model(KeyDist::ycsb_zipfian());
    let mut steady = model(KeyDist::ycsb_zipfian());
    let mut ra = DetRng::seed_from(5);
    let mut rb = DetRng::seed_from(5);

    cycled.set_active_bytes(4 * 1024 * 1024);
    steady.set_active_bytes(4 * 1024 * 1024);
    for _ in 0..50 {
        assert_eq!(
            touches(cycled.next_op(&mut ra)),
            touches(steady.next_op(&mut rb))
        );
    }
    // One full diurnal trough: shrink, then regrow, with no ops between
    // (the knob can change several times inside one driver tick).
    cycled.set_active_bytes(1024 * 1024);
    cycled.set_active_bytes(4 * 1024 * 1024);
    for _ in 0..200 {
        assert_eq!(
            touches(cycled.next_op(&mut ra)),
            touches(steady.next_op(&mut rb)),
            "regrown window diverged from the steady stream"
        );
    }
    assert_eq!(ra.next_u64(), rb.next_u64(), "draw counts diverged");
}
