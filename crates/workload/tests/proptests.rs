//! Property tests: distribution bounds, dataset mapping totality, and
//! op-spec well-formedness across the workload models.

use agile_sim_core::DetRng;
use agile_vm::PageRange;
use agile_workload::{
    Dataset, KeyDist, OltpParams, SysbenchOltp, YcsbParams, YcsbRedis, Zipfian,
};
use proptest::prelude::*;

proptest! {
    /// Zipfian samples always land in range for arbitrary n and θ.
    #[test]
    fn zipfian_in_range(n in 1u64..100_000, theta in 0.0f64..0.999, seed in 0u64..1000) {
        let z = Zipfian::scrambled(n, theta);
        let mut rng = DetRng::seed_from(seed);
        for _ in 0..200 {
            prop_assert!(z.sample(&mut rng) < n);
        }
    }

    /// Every record of a dataset maps to pages inside its region, and
    /// consecutive records never go backwards.
    #[test]
    fn dataset_mapping_total_and_monotone(
        region_len in 16u32..4096,
        record_bytes in 64u64..8192,
    ) {
        let region = PageRange { start: 1000, len: region_len };
        let d = Dataset::filling(region, record_bytes, 4096);
        prop_assume!(d.n_records() > 0);
        let mut prev = 0u32;
        let step = (d.n_records() / 512).max(1);
        for key in (0..d.n_records()).step_by(step as usize) {
            let first = d.page_of(key);
            prop_assert!(region.contains(first));
            prop_assert!(first >= prev, "mapping went backwards");
            prev = first;
            for p in d.pages_of(key) {
                prop_assert!(region.contains(p), "record {} spills out", key);
            }
        }
    }

    /// YCSB ops always touch the index region then the data region, and
    /// honour the active window.
    #[test]
    fn ycsb_ops_well_formed(
        active_kb in 64u64..4096,
        read_ratio in 0.0f64..1.0,
        seed in 0u64..500,
    ) {
        let index = PageRange { start: 0, len: 64 };
        let data = PageRange { start: 64, len: 2048 };
        let dataset = Dataset::filling(data, 1024, 4096);
        let mut m = YcsbRedis::new(
            dataset,
            index,
            KeyDist::UniformPrefix,
            YcsbParams { read_ratio, ..YcsbParams::default() },
        );
        m.set_active_bytes(active_kb * 1024);
        let active_pages = (m.active_bytes() / 4096) as u32 + 1;
        let mut rng = DetRng::seed_from(seed);
        for _ in 0..200 {
            let op = m.next_op(&mut rng);
            prop_assert!(op.touches.len() >= 2);
            let (ip, iw) = op.touches.get(0);
            prop_assert!(index.contains(ip));
            prop_assert!(!iw, "index is never written");
            let (dp, _) = op.touches.get(1);
            prop_assert!(data.contains(dp));
            prop_assert!(dp < data.start + active_pages, "outside active window");
            prop_assert!(op.cpu.as_nanos() > 0);
        }
    }

    /// OLTP transactions always contain exactly one commit per 17
    /// statements, and write touches only occur in updates/commits.
    #[test]
    fn oltp_plan_structure(seed in 0u64..500) {
        let rows_region = PageRange { start: 600, len: 8192 };
        let index = PageRange { start: 0, len: 128 };
        let log = PageRange { start: 128, len: 16 };
        let rows = Dataset::filling(rows_region, 256, 4096);
        let mut m = SysbenchOltp::new(
            rows,
            index,
            log,
            KeyDist::UniformPrefix,
            OltpParams::default(),
        );
        let mut rng = DetRng::seed_from(seed);
        for _txn in 0..5 {
            let mut commits = 0;
            for stmt in 0..SysbenchOltp::STATEMENTS_PER_TXN {
                let (op, is_commit) = m.next_op(&mut rng);
                if is_commit {
                    commits += 1;
                    prop_assert_eq!(stmt, SysbenchOltp::STATEMENTS_PER_TXN - 1);
                }
                let writes = op.write_touches();
                if stmt < 14 {
                    prop_assert_eq!(writes, 0, "selects are read-only");
                }
                for (p, _) in op.touches.iter() {
                    prop_assert!(
                        rows_region.contains(p) || index.contains(p) || log.contains(p),
                        "touch outside the layout: {}",
                        p
                    );
                }
            }
            prop_assert_eq!(commits, 1);
        }
    }
}
