//! Randomized tests: distribution bounds, dataset mapping totality, and
//! op-spec well-formedness across the workload models, driven by the
//! deterministic simulation RNG (fixed seeds, so failures reproduce).

use agile_sim_core::DetRng;
use agile_vm::PageRange;
use agile_workload::{Dataset, KeyDist, OltpParams, SysbenchOltp, YcsbParams, YcsbRedis, Zipfian};

/// Zipfian samples always land in range for arbitrary n and θ.
#[test]
fn zipfian_in_range() {
    for case in 0..100u64 {
        let mut g = DetRng::seed_from(0x21f * 3 + case);
        let n = 1 + g.index(100_000 - 1);
        let theta = g.range_f64(0.0, 0.999);
        let seed = g.index(1000);
        let z = Zipfian::scrambled(n, theta);
        let mut rng = DetRng::seed_from(seed);
        for _ in 0..200 {
            assert!(z.sample(&mut rng) < n, "case {case}");
        }
    }
}

/// Every record of a dataset maps to pages inside its region, and
/// consecutive records never go backwards.
#[test]
fn dataset_mapping_total_and_monotone() {
    for case in 0..100u64 {
        let mut g = DetRng::seed_from(0x22f * 5 + case);
        let region_len = 16 + g.index(4096 - 16) as u32;
        let record_bytes = 64 + g.index(8192 - 64);
        let region = PageRange {
            start: 1000,
            len: region_len,
        };
        let d = Dataset::filling(region, record_bytes, 4096);
        if d.n_records() == 0 {
            continue;
        }
        let mut prev = 0u32;
        let step = (d.n_records() / 512).max(1);
        for key in (0..d.n_records()).step_by(step as usize) {
            let first = d.page_of(key);
            assert!(region.contains(first), "case {case}");
            assert!(first >= prev, "case {case}: mapping went backwards");
            prev = first;
            for p in d.pages_of(key) {
                assert!(region.contains(p), "case {case}: record {key} spills out");
            }
        }
    }
}

/// YCSB ops always touch the index region then the data region, and
/// honour the active window.
#[test]
fn ycsb_ops_well_formed() {
    for case in 0..100u64 {
        let mut g = DetRng::seed_from(0x23f * 7 + case);
        let active_kb = 64 + g.index(4096 - 64);
        let read_ratio = g.unit_f64();
        let seed = g.index(500);
        let index = PageRange { start: 0, len: 64 };
        let data = PageRange {
            start: 64,
            len: 2048,
        };
        let dataset = Dataset::filling(data, 1024, 4096);
        let mut m = YcsbRedis::new(
            dataset,
            index,
            KeyDist::UniformPrefix,
            YcsbParams {
                read_ratio,
                ..YcsbParams::default()
            },
        );
        m.set_active_bytes(active_kb * 1024);
        let active_pages = (m.active_bytes() / 4096) as u32 + 1;
        let mut rng = DetRng::seed_from(seed);
        for _ in 0..200 {
            let op = m.next_op(&mut rng);
            assert!(op.touches.len() >= 2, "case {case}");
            let (ip, iw) = op.touches.get(0);
            assert!(index.contains(ip), "case {case}");
            assert!(!iw, "case {case}: index is never written");
            let (dp, _) = op.touches.get(1);
            assert!(data.contains(dp), "case {case}");
            assert!(
                dp < data.start + active_pages,
                "case {case}: outside active window"
            );
            assert!(op.cpu.as_nanos() > 0, "case {case}");
        }
    }
}

/// OLTP transactions always contain exactly one commit per 17 statements,
/// and write touches only occur in updates/commits.
#[test]
fn oltp_plan_structure() {
    for case in 0..100u64 {
        let mut g = DetRng::seed_from(0x24f * 11 + case);
        let seed = g.index(500);
        let rows_region = PageRange {
            start: 600,
            len: 8192,
        };
        let index = PageRange { start: 0, len: 128 };
        let log = PageRange {
            start: 128,
            len: 16,
        };
        let rows = Dataset::filling(rows_region, 256, 4096);
        let mut m = SysbenchOltp::new(
            rows,
            index,
            log,
            KeyDist::UniformPrefix,
            OltpParams::default(),
        );
        let mut rng = DetRng::seed_from(seed);
        for _txn in 0..5 {
            let mut commits = 0;
            for stmt in 0..SysbenchOltp::STATEMENTS_PER_TXN {
                let (op, is_commit) = m.next_op(&mut rng);
                if is_commit {
                    commits += 1;
                    assert_eq!(stmt, SysbenchOltp::STATEMENTS_PER_TXN - 1, "case {case}");
                }
                let writes = op.write_touches();
                if stmt < 14 {
                    assert_eq!(writes, 0, "case {case}: selects are read-only");
                }
                for (p, _) in op.touches.iter() {
                    assert!(
                        rows_region.contains(p) || index.contains(p) || log.contains(p),
                        "case {case}: touch outside the layout: {p}"
                    );
                }
            }
            assert_eq!(commits, 1, "case {case}");
        }
    }
}
