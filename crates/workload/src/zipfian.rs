//! YCSB's bounded Zipfian generator.
//!
//! This is the Gray et al. ("Quickly Generating Billion-Record Synthetic
//! Databases", SIGMOD '94) rejection-free construction that YCSB's
//! `ZipfianGenerator` uses, with the standard θ = 0.99. Item 0 is the most
//! popular. The *scrambled* variant hashes ranks so popularity is spread
//! uniformly across the key space — which is what YCSB actually applies to
//! database keys, and what makes a Zipfian working set touch pages all over
//! the dataset rather than one hot prefix.

use agile_sim_core::DetRng;

/// Default YCSB skew constant.
pub const YCSB_ZIPFIAN_CONSTANT: f64 = 0.99;

/// Bounded Zipfian distribution over `[0, n)`.
#[derive(Clone, Debug)]
pub struct Zipfian {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    scrambled: bool,
}

fn zeta(n: u64, theta: f64) -> f64 {
    let mut sum = 0.0;
    for i in 1..=n {
        sum += 1.0 / (i as f64).powf(theta);
    }
    sum
}

/// FNV-1a 64-bit, used for rank scrambling.
#[inline]
fn fnv1a(x: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for shift in (0..64).step_by(8) {
        h ^= (x >> shift) & 0xff;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

impl Zipfian {
    /// Plain Zipfian over `[0, n)`: item 0 is hottest.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "empty key space");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0,1)");
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            scrambled: false,
        }
    }

    /// YCSB-default skew.
    pub fn ycsb(n: u64) -> Self {
        Zipfian::new(n, YCSB_ZIPFIAN_CONSTANT)
    }

    /// Scrambled variant: popularity ranks are hashed across the key space.
    pub fn scrambled(n: u64, theta: f64) -> Self {
        let mut z = Zipfian::new(n, theta);
        z.scrambled = true;
        z
    }

    /// Key-space size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Draw the next item.
    pub fn sample(&self, rng: &mut DetRng) -> u64 {
        let u = rng.unit_f64();
        let uz = u * self.zetan;
        let rank = if uz < 1.0 {
            0
        } else if uz < 1.0 + 0.5f64.powf(self.theta) {
            1
        } else {
            let r = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
            r.min(self.n - 1)
        };
        if self.scrambled {
            fnv1a(rank) % self.n
        } else {
            rank
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(z: &Zipfian, draws: usize, seed: u64) -> Vec<u64> {
        let mut rng = DetRng::seed_from(seed);
        let mut h = vec![0u64; z.n() as usize];
        for _ in 0..draws {
            h[z.sample(&mut rng) as usize] += 1;
        }
        h
    }

    #[test]
    fn all_samples_in_range() {
        let z = Zipfian::ycsb(100);
        let mut rng = DetRng::seed_from(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn item_zero_is_hottest() {
        let z = Zipfian::ycsb(1000);
        let h = histogram(&z, 100_000, 2);
        let max = *h.iter().max().unwrap();
        assert_eq!(h[0], max, "rank 0 must be the mode");
        // Long tail: the bottom half of ranks together get a minority.
        let tail: u64 = h[500..].iter().sum();
        assert!(tail < 20_000, "tail too heavy: {tail}");
    }

    #[test]
    fn frequencies_follow_power_law_roughly() {
        let z = Zipfian::new(1000, 0.99);
        let h = histogram(&z, 400_000, 3);
        // f(1)/f(10) ≈ 10^0.99 ≈ 9.8; allow generous tolerance.
        let ratio = h[0] as f64 / h[9].max(1) as f64;
        assert!((4.0..25.0).contains(&ratio), "ratio={ratio}");
    }

    #[test]
    fn scrambled_spreads_the_mode() {
        let z = Zipfian::scrambled(1000, 0.99);
        let h = histogram(&z, 100_000, 4);
        // The hottest item exists but is not at rank 0 specifically
        // (fnv1a(0) % 1000 relocates it).
        let argmax = h
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| **c)
            .map(|(i, _)| i)
            .unwrap();
        assert_eq!(argmax as u64, fnv1a(0) % 1000);
    }

    #[test]
    fn deterministic_across_runs() {
        let z = Zipfian::ycsb(500);
        let mut a = DetRng::seed_from(9);
        let mut b = DetRng::seed_from(9);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    fn tiny_keyspaces_work() {
        for n in [1u64, 2, 3] {
            let z = Zipfian::ycsb(n);
            let mut rng = DetRng::seed_from(5);
            for _ in 0..100 {
                assert!(z.sample(&mut rng) < n);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty key space")]
    fn zero_n_rejected() {
        let _ = Zipfian::ycsb(0);
    }
}
