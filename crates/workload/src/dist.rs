//! Key-selection distributions.
//!
//! The Fig. 4–6 experiment drives Redis with YCSB querying a *fraction* of
//! the dataset uniformly — 200 MB at first, then 6 GB after the ramp — so
//! the working set is exactly the active prefix. [`KeyDist`] covers that
//! (`UniformPrefix`), plain uniform, YCSB's scrambled Zipfian, and a
//! hotspot mix, all over a runtime-adjustable active-record count.

use agile_sim_core::DetRng;

use crate::zipfian::Zipfian;

/// A distribution over record keys `[0, active)`.
#[derive(Clone, Debug)]
pub enum KeyDist {
    /// Uniform over the active prefix of the key space.
    UniformPrefix,
    /// Zipfian (scrambled) over the active prefix. Rebuilt lazily when the
    /// active count changes.
    Zipfian {
        /// Skew parameter θ.
        theta: f64,
        /// Cached generator for the current active count.
        gen: Option<Zipfian>,
    },
    /// `hot_fraction` of accesses go to the first `hot_records` keys, the
    /// rest uniform over the whole active prefix.
    Hotspot {
        /// Number of hot records.
        hot_records: u64,
        /// Probability an access is hot.
        hot_fraction: f64,
    },
}

impl KeyDist {
    /// YCSB-default scrambled Zipfian.
    pub fn ycsb_zipfian() -> Self {
        KeyDist::Zipfian {
            theta: crate::zipfian::YCSB_ZIPFIAN_CONSTANT,
            gen: None,
        }
    }

    /// Draw a key in `[0, active)`.
    pub fn sample(&mut self, rng: &mut DetRng, active: u64) -> u64 {
        assert!(active > 0, "no active records");
        match self {
            KeyDist::UniformPrefix => rng.index(active),
            KeyDist::Zipfian { theta, gen } => {
                let rebuild = gen.as_ref().is_none_or(|z| z.n() != active);
                if rebuild {
                    *gen = Some(Zipfian::scrambled(active, *theta));
                }
                gen.as_ref().expect("just built").sample(rng)
            }
            KeyDist::Hotspot {
                hot_records,
                hot_fraction,
            } => {
                let hot = (*hot_records).min(active).max(1);
                if rng.chance(*hot_fraction) {
                    rng.index(hot)
                } else {
                    rng.index(active)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_prefix_respects_active_window() {
        let mut d = KeyDist::UniformPrefix;
        let mut rng = DetRng::seed_from(1);
        for _ in 0..1000 {
            assert!(d.sample(&mut rng, 50) < 50);
        }
        // Every key in a small window appears.
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[d.sample(&mut rng, 8) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn zipfian_rebuilds_on_window_change() {
        let mut d = KeyDist::ycsb_zipfian();
        let mut rng = DetRng::seed_from(2);
        for _ in 0..100 {
            assert!(d.sample(&mut rng, 100) < 100);
        }
        for _ in 0..100 {
            assert!(d.sample(&mut rng, 10_000) < 10_000);
        }
        match &d {
            KeyDist::Zipfian { gen: Some(z), .. } => assert_eq!(z.n(), 10_000),
            _ => panic!("generator missing"),
        }
    }

    #[test]
    fn hotspot_concentrates_access() {
        let mut d = KeyDist::Hotspot {
            hot_records: 10,
            hot_fraction: 0.9,
        };
        let mut rng = DetRng::seed_from(3);
        let mut hot_hits = 0;
        let n = 10_000;
        for _ in 0..n {
            if d.sample(&mut rng, 1000) < 10 {
                hot_hits += 1;
            }
        }
        // 90% + 1% incidental.
        assert!(hot_hits > n * 85 / 100, "hot_hits={hot_hits}");
    }

    #[test]
    #[should_panic(expected = "no active records")]
    fn empty_window_panics() {
        let mut d = KeyDist::UniformPrefix;
        let mut rng = DetRng::seed_from(4);
        d.sample(&mut rng, 0);
    }
}
