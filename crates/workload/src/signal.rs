//! Composable, deterministic intensity signals over simulated time.
//!
//! A [`Signal`] is a pure function of simulated time — no hidden state,
//! no wall clock, no global RNG — so evaluating one is always
//! reproducible and two evaluations at the same instant always agree.
//! Signals describe *how a scalar knob evolves*: a reservation in bytes,
//! a think-time multiplier, an active-fraction, a working-set phase
//! index. The [`crate::driver::WorkloadDriver`] samples bound signals
//! periodically and emits knob updates; scripted scenario ramps evaluate
//! the same signals at their (finitely many) step times.
//!
//! Combinators mirror the shapes the roadmap calls out:
//!
//! * [`Signal::constant`] — fixed value; installs **zero** events.
//! * [`Signal::ramp`] — piecewise-constant staircase between two values,
//!   reproducing the integer arithmetic of the legacy scripted ramps
//!   exactly (truncated per-step delta).
//! * [`Signal::diurnal`] — sinusoidal day/night cycle.
//! * [`Signal::flash_crowd`] — instant arrival spike with exponential
//!   decay (millions of users arriving at once, then losing interest).
//! * [`Signal::phase_change`] — step function cycling a working-set
//!   phase index, for periodic working-set remaps.
//! * [`Signal::noise`] — seedable white noise, piecewise-constant per
//!   sample period (a counterexample generator: no cycle to detect).
//! * [`Signal::sum`] / [`Signal::scale`] / [`Signal::clamp`] — algebra.

use agile_sim_core::time::{SimDuration, SimTime};

/// A deterministic scalar signal over simulated time.
///
/// Evaluation is pure: `value_at` depends only on the signal structure
/// and the queried instant. All periodic/noisy variants carry their own
/// parameters (including seeds) so replays are byte-identical.
#[derive(Debug, Clone, PartialEq)]
pub enum Signal {
    /// Fixed value at every instant.
    Constant(f64),
    /// Piecewise-constant staircase: holds `from` before `start_ns`,
    /// then steps once per `interval_ns` until reaching step `steps`.
    ///
    /// The per-step increment is `trunc((to - from) / steps)`, matching
    /// the legacy scripted ramps' integer division so byte-quantity
    /// ramps reproduce the historical values exactly. The final step
    /// lands on `from + steps * delta` (possibly short of `to` by the
    /// truncation remainder, exactly like the scripted code).
    Ramp {
        /// Time of the first step.
        start_ns: u64,
        /// Spacing between steps (ignored when `steps <= 1`).
        interval_ns: u64,
        /// Number of steps; 0 behaves as a constant `from`.
        steps: u32,
        /// Value held before the ramp starts.
        from: f64,
        /// Ramp target (reached up to truncation remainder).
        to: f64,
    },
    /// Sinusoid `amplitude * sin(2π * (t + phase) / period)`, mean zero.
    /// Sum with a [`Signal::Constant`] to set the midline.
    Diurnal {
        /// Cycle length in nanoseconds (must be > 0).
        period_ns: u64,
        /// Peak deviation from the midline.
        amplitude: f64,
        /// Phase offset: the signal at `t` equals an unshifted signal at
        /// `t + phase_ns`.
        phase_ns: u64,
    },
    /// Zero before `arrival_ns`; from arrival, `peak * exp(-(t - arrival)
    /// / decay_ns)` — an instantaneous crowd that exponentially loses
    /// interest.
    FlashCrowd {
        /// Instant the crowd arrives.
        arrival_ns: u64,
        /// Intensity at the arrival instant.
        peak: f64,
        /// e-folding time of the decay (0 means the spike lasts a single
        /// instant).
        decay_ns: u64,
    },
    /// Step function cycling through working-set phases: the value at
    /// `t` is `floor(t / period) mod phases`, as an f64. Bind it to a
    /// working-set window knob to remap the hot set each period.
    PhaseChange {
        /// Dwell time in each phase.
        period_ns: u64,
        /// Number of distinct phases (values `0 .. phases`).
        phases: u32,
    },
    /// Seedable white noise, piecewise-constant over `period_ns` cells:
    /// the value in cell `k = floor(t / period)` is a pure hash of
    /// `(seed, k)` mapped to `[-amplitude, amplitude]`. Replays are
    /// byte-identical; successive cells are uncorrelated.
    Noise {
        /// Seed folded into every cell's hash.
        seed: u64,
        /// Half-width of the uniform output range.
        amplitude: f64,
        /// Cell width (granularity of the noise).
        period_ns: u64,
    },
    /// Pointwise sum of two signals.
    Sum(Box<Signal>, Box<Signal>),
    /// Pointwise product with a constant factor.
    Scale(Box<Signal>, f64),
    /// Pointwise clamp into `[lo, hi]`.
    Clamp(Box<Signal>, f64, f64),
}

impl Signal {
    /// Fixed value at every instant.
    pub fn constant(value: f64) -> Self {
        Signal::Constant(value)
    }

    /// Staircase from `from` to `to` in `steps` steps starting at
    /// `start`, one step per `interval`. See [`Signal::Ramp`] for the
    /// exact step arithmetic.
    pub fn ramp(start: SimTime, interval: SimDuration, steps: u32, from: f64, to: f64) -> Self {
        Signal::Ramp {
            start_ns: start.as_nanos(),
            interval_ns: interval.as_nanos(),
            steps,
            from,
            to,
        }
    }

    /// Mean-zero sinusoid with the given period, amplitude, and phase
    /// offset.
    pub fn diurnal(period: SimDuration, amplitude: f64, phase: SimDuration) -> Self {
        Signal::Diurnal {
            period_ns: period.as_nanos(),
            amplitude,
            phase_ns: phase.as_nanos(),
        }
    }

    /// Flash crowd arriving at `arrival` with the given peak intensity,
    /// decaying with e-folding time `decay`.
    pub fn flash_crowd(arrival: SimTime, peak: f64, decay: SimDuration) -> Self {
        Signal::FlashCrowd {
            arrival_ns: arrival.as_nanos(),
            peak,
            decay_ns: decay.as_nanos(),
        }
    }

    /// Working-set phase index cycling through `phases` values, dwelling
    /// `period` in each.
    pub fn phase_change(period: SimDuration, phases: u32) -> Self {
        Signal::PhaseChange {
            period_ns: period.as_nanos(),
            phases,
        }
    }

    /// Seedable white noise in `[-amplitude, amplitude]`, resampled
    /// every `period`.
    pub fn noise(seed: u64, amplitude: f64, period: SimDuration) -> Self {
        Signal::Noise {
            seed,
            amplitude,
            period_ns: period.as_nanos(),
        }
    }

    /// Pointwise sum.
    pub fn sum(self, other: Signal) -> Self {
        Signal::Sum(Box::new(self), Box::new(other))
    }

    /// Pointwise product with a constant.
    pub fn scale(self, factor: f64) -> Self {
        Signal::Scale(Box::new(self), factor)
    }

    /// Pointwise clamp into `[lo, hi]`.
    pub fn clamp(self, lo: f64, hi: f64) -> Self {
        Signal::Clamp(Box::new(self), lo, hi)
    }

    /// Evaluate the signal at simulated time `t`.
    pub fn value_at(&self, t: SimTime) -> f64 {
        self.value_at_ns(t.as_nanos())
    }

    /// Evaluate the signal at `t_ns` nanoseconds of simulated time.
    pub fn value_at_ns(&self, t_ns: u64) -> f64 {
        match *self {
            Signal::Constant(v) => v,
            Signal::Ramp {
                start_ns,
                interval_ns,
                steps,
                from,
                to,
            } => {
                if steps == 0 || t_ns < start_ns {
                    return from;
                }
                let delta = ((to - from) / f64::from(steps)).trunc();
                let elapsed = t_ns - start_ns;
                let k = elapsed
                    .checked_div(interval_ns)
                    .map_or(u64::from(steps), |q| (q + 1).min(u64::from(steps)));
                from + k as f64 * delta
            }
            Signal::Diurnal {
                period_ns,
                amplitude,
                phase_ns,
            } => {
                if period_ns == 0 {
                    return 0.0;
                }
                // Reduce into one period before the float division so
                // precision does not drift with absolute sim time.
                let within = (t_ns.wrapping_add(phase_ns)) % period_ns;
                let frac = within as f64 / period_ns as f64;
                amplitude * (core::f64::consts::TAU * frac).sin()
            }
            Signal::FlashCrowd {
                arrival_ns,
                peak,
                decay_ns,
            } => {
                if t_ns < arrival_ns {
                    return 0.0;
                }
                if decay_ns == 0 {
                    return if t_ns == arrival_ns { peak } else { 0.0 };
                }
                let age = (t_ns - arrival_ns) as f64 / decay_ns as f64;
                peak * (-age).exp()
            }
            Signal::PhaseChange { period_ns, phases } => {
                if period_ns == 0 || phases == 0 {
                    return 0.0;
                }
                ((t_ns / period_ns) % u64::from(phases)) as f64
            }
            Signal::Noise {
                seed,
                amplitude,
                period_ns,
            } => {
                let cell = t_ns.checked_div(period_ns).unwrap_or(t_ns);
                let unit = hash_unit(seed, cell);
                amplitude * (2.0 * unit - 1.0)
            }
            Signal::Sum(ref a, ref b) => a.value_at_ns(t_ns) + b.value_at_ns(t_ns),
            Signal::Scale(ref s, factor) => s.value_at_ns(t_ns) * factor,
            Signal::Clamp(ref s, lo, hi) => s.value_at_ns(t_ns).clamp(lo, hi),
        }
    }

    /// Whether the signal is provably constant over all time (structural
    /// check — trivially-constant parameterizations of the varying
    /// combinators count). Drivers install **zero** events for constant
    /// bindings, the byte-identity contract for legacy traces.
    pub fn is_constant(&self) -> bool {
        match *self {
            Signal::Constant(_) => true,
            Signal::Ramp {
                steps, from, to, ..
            } => steps == 0 || from == to,
            Signal::Diurnal { amplitude, .. } => amplitude == 0.0,
            Signal::FlashCrowd { peak, .. } => peak == 0.0,
            Signal::PhaseChange { period_ns, phases } => period_ns == 0 || phases <= 1,
            Signal::Noise { amplitude, .. } => amplitude == 0.0,
            Signal::Sum(ref a, ref b) => a.is_constant() && b.is_constant(),
            Signal::Scale(ref s, factor) => factor == 0.0 || s.is_constant(),
            Signal::Clamp(ref s, lo, hi) => lo == hi || s.is_constant(),
        }
    }

    /// Collect the instants in `[from_ns, to_ns)` at which a
    /// piecewise-constant signal changes value, sorted and deduplicated.
    ///
    /// Scripted scenarios use this to schedule exactly one DES event per
    /// step, reproducing the event structure of hand-written ramps.
    /// Continuous combinators ([`Signal::Diurnal`], [`Signal::FlashCrowd`],
    /// [`Signal::Noise`]) contribute no times — they are meant for the
    /// periodically-ticked driver, not for step scheduling.
    pub fn change_times_ns(&self, from_ns: u64, to_ns: u64) -> Vec<u64> {
        let mut out = Vec::new();
        self.collect_change_times(from_ns, to_ns, &mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_change_times(&self, from_ns: u64, to_ns: u64, out: &mut Vec<u64>) {
        match *self {
            Signal::Constant(_)
            | Signal::Diurnal { .. }
            | Signal::FlashCrowd { .. }
            | Signal::Noise { .. } => {}
            Signal::Ramp {
                start_ns,
                interval_ns,
                steps,
                from,
                to,
            } => {
                if steps == 0 || from == to {
                    return;
                }
                for k in 0..u64::from(steps) {
                    let t = start_ns.saturating_add(k.saturating_mul(interval_ns));
                    if t >= from_ns && t < to_ns {
                        out.push(t);
                    }
                    if interval_ns == 0 {
                        break; // all steps coincide at start_ns
                    }
                }
            }
            Signal::PhaseChange { period_ns, phases } => {
                if period_ns == 0 || phases <= 1 {
                    return;
                }
                let mut t = from_ns.div_ceil(period_ns) * period_ns;
                while t < to_ns {
                    out.push(t);
                    t = match t.checked_add(period_ns) {
                        Some(n) => n,
                        None => break,
                    };
                }
            }
            Signal::Sum(ref a, ref b) => {
                a.collect_change_times(from_ns, to_ns, out);
                b.collect_change_times(from_ns, to_ns, out);
            }
            Signal::Scale(ref s, _) | Signal::Clamp(ref s, _, _) => {
                s.collect_change_times(from_ns, to_ns, out);
            }
        }
    }
}

/// Pure stateless hash of `(seed, cell)` to a unit float in `[0, 1)`.
/// SplitMix64-style finalizer; no RNG state is consumed, so noise
/// signals never perturb any other random stream.
fn hash_unit(seed: u64, cell: u64) -> f64 {
    let mut z = seed ^ cell.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    // 53 high bits -> [0, 1) with full double precision.
    (z >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn constant_is_flat_and_constant() {
        let s = Signal::constant(7.5);
        assert_eq!(s.value_at(secs(0)), 7.5);
        assert_eq!(s.value_at(secs(1_000_000)), 7.5);
        assert!(s.is_constant());
        assert!(s.change_times_ns(0, u64::MAX).is_empty());
    }

    #[test]
    fn ramp_matches_legacy_integer_staircase() {
        // Legacy scripted ramps do: delta = (target - start) / steps
        // (integer division), then add delta per step. Reproduce with
        // from=1000, to=1007, steps=3: delta = 2, landing at 1006.
        let s = Signal::ramp(secs(10), SimDuration::from_secs(5), 3, 1000.0, 1007.0);
        assert_eq!(s.value_at(secs(9)), 1000.0);
        assert_eq!(s.value_at(secs(10)), 1002.0); // step 1 fires at start
        assert_eq!(s.value_at(secs(14)), 1002.0);
        assert_eq!(s.value_at(secs(15)), 1004.0);
        assert_eq!(s.value_at(secs(20)), 1006.0);
        assert_eq!(s.value_at(secs(500)), 1006.0); // holds after last step
        assert_eq!(
            s.change_times_ns(0, u64::MAX),
            vec![
                secs(10).as_nanos(),
                secs(15).as_nanos(),
                secs(20).as_nanos()
            ]
        );
        assert!(!s.is_constant());
    }

    #[test]
    fn ramp_downward_truncates_toward_zero() {
        // (to - from) / steps = -7/3 -> trunc = -2: steps never overshoot.
        let s = Signal::ramp(secs(0), SimDuration::from_secs(1), 3, 1007.0, 1000.0);
        assert_eq!(s.value_at(secs(0)), 1005.0);
        assert_eq!(s.value_at(secs(2)), 1001.0);
        assert_eq!(s.value_at(secs(99)), 1001.0);
    }

    #[test]
    fn single_step_ramp_is_a_jump() {
        let s = Signal::ramp(secs(12), SimDuration::from_secs(10), 1, 100.0, 250.0);
        assert_eq!(s.value_at(secs(11)), 100.0);
        assert_eq!(s.value_at(secs(12)), 250.0);
        assert_eq!(s.change_times_ns(0, u64::MAX), vec![secs(12).as_nanos()]);
    }

    #[test]
    fn diurnal_is_periodic_and_phase_shifts() {
        let p = SimDuration::from_secs(100);
        let s = Signal::diurnal(p, 3.0, SimDuration::from_nanos(0));
        assert_eq!(s.value_at(secs(0)), 0.0);
        let quarter = s.value_at(secs(25));
        assert!((quarter - 3.0).abs() < 1e-9, "peak at quarter period");
        // Exact periodicity: same residue -> bit-identical value.
        assert_eq!(s.value_at(secs(25)), s.value_at(secs(125)));
        // Phase offset: shifted signal at t equals unshifted at t+phase.
        let sh = Signal::diurnal(p, 3.0, SimDuration::from_secs(25));
        assert_eq!(sh.value_at(secs(0)), s.value_at(secs(25)));
    }

    #[test]
    fn flash_crowd_spikes_then_decays() {
        let s = Signal::flash_crowd(secs(50), 8.0, SimDuration::from_secs(10));
        assert_eq!(s.value_at(secs(49)), 0.0);
        assert_eq!(s.value_at(secs(50)), 8.0);
        let one_fold = s.value_at(secs(60));
        assert!((one_fold - 8.0 * (-1.0f64).exp()).abs() < 1e-12);
        assert!(s.value_at(secs(200)) < 1e-4);
    }

    #[test]
    fn phase_change_cycles_phase_indices() {
        let s = Signal::phase_change(SimDuration::from_secs(30), 4);
        assert_eq!(s.value_at(secs(0)), 0.0);
        assert_eq!(s.value_at(secs(29)), 0.0);
        assert_eq!(s.value_at(secs(30)), 1.0);
        assert_eq!(s.value_at(secs(119)), 3.0);
        assert_eq!(s.value_at(secs(120)), 0.0);
        let times = s.change_times_ns(1, secs(121).as_nanos());
        assert_eq!(
            times,
            vec![
                secs(30).as_nanos(),
                secs(60).as_nanos(),
                secs(90).as_nanos(),
                secs(120).as_nanos()
            ]
        );
    }

    #[test]
    fn noise_is_deterministic_seeded_and_bounded() {
        let a = Signal::noise(42, 2.0, SimDuration::from_secs(1));
        let b = Signal::noise(42, 2.0, SimDuration::from_secs(1));
        let c = Signal::noise(43, 2.0, SimDuration::from_secs(1));
        let mut diff = 0usize;
        for t in 0..1000u64 {
            let va = a.value_at(secs(t));
            assert_eq!(va, b.value_at(secs(t)), "same seed must replay");
            assert!((-2.0..=2.0).contains(&va));
            if va != c.value_at(secs(t)) {
                diff += 1;
            }
        }
        assert!(diff > 990, "different seeds must differ");
    }

    #[test]
    fn algebra_composes_pointwise() {
        let s = Signal::constant(10.0)
            .sum(Signal::ramp(
                secs(5),
                SimDuration::from_secs(1),
                1,
                0.0,
                6.0,
            ))
            .scale(2.0)
            .clamp(0.0, 30.0);
        assert_eq!(s.value_at(secs(0)), 20.0);
        assert_eq!(s.value_at(secs(5)), 30.0); // 32 clamped to 30
        assert!(!s.is_constant());
        assert_eq!(s.change_times_ns(0, u64::MAX), vec![secs(5).as_nanos()]);
    }

    #[test]
    fn trivially_flat_parameterizations_are_constant() {
        assert!(
            Signal::diurnal(SimDuration::from_secs(10), 0.0, SimDuration::from_nanos(0))
                .is_constant()
        );
        assert!(Signal::flash_crowd(secs(1), 0.0, SimDuration::from_secs(1)).is_constant());
        assert!(Signal::phase_change(SimDuration::from_secs(10), 1).is_constant());
        assert!(Signal::noise(1, 0.0, SimDuration::from_secs(1)).is_constant());
        assert!(Signal::ramp(secs(0), SimDuration::from_secs(1), 5, 4.0, 4.0).is_constant());
        assert!(Signal::constant(1.0)
            .sum(Signal::constant(2.0))
            .is_constant());
    }
}
