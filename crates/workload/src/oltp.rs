//! Sysbench OLTP client + MySQL/InnoDB server model (fused).
//!
//! The paper's second application (§V-C): four MySQL servers each holding
//! an 8 GB dataset, queried by external Sysbench clients; throughput is
//! reported in transactions/second. The default Sysbench OLTP transaction
//! is a fixed statement mix; we model each *statement* as one [`OpSpec`]
//! and flag the COMMIT so the executor can count whole transactions:
//!
//! * 10 point SELECTs — B-tree descent (2 hot index pages) + 1 row page;
//! * 4 range SELECTs — B-tree descent + 4 consecutive row pages;
//! * 2 UPDATEs — descent + row page written + log page written;
//! * 1 COMMIT — log flush (log page written, larger CPU burst).
//!
//! The buffer pool (the dataset region) is larger than the cgroup
//! reservation in the paper's setup, so statements fault continuously —
//! and UPDATE/COMMIT statements keep dirtying pages, which is what makes
//! Sysbench "moderately write intensive" for pre-copy (Table III).

use agile_sim_core::{DetRng, SimDuration};
use agile_vm::PageRange;

use crate::dataset::Dataset;
use crate::dist::KeyDist;
use crate::ops::{OpSpec, TouchList};

/// Statement position within the OLTP transaction plan.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Stmt {
    PointSelect(u8),
    RangeSelect(u8),
    Update(u8),
    Commit,
}

/// Tunable constants of the Sysbench/MySQL model.
#[derive(Clone, Copy, Debug)]
pub struct OltpParams {
    /// Guest CPU per SELECT statement.
    pub cpu_select: SimDuration,
    /// Guest CPU per UPDATE statement.
    pub cpu_update: SimDuration,
    /// Guest CPU for COMMIT (log serialization + fsync path).
    pub cpu_commit: SimDuration,
    /// Rows touched by a range select.
    pub range_rows: u32,
    /// Client threads (Sysbench `--num-threads`).
    pub client_threads: u32,
    /// Server worker threads processing statements concurrently.
    pub server_concurrency: u32,
}

impl Default for OltpParams {
    fn default() -> Self {
        OltpParams {
            cpu_select: SimDuration::from_micros(120),
            cpu_update: SimDuration::from_micros(180),
            cpu_commit: SimDuration::from_micros(700),
            range_rows: 4,
            client_threads: 8,
            server_concurrency: 4,
        }
    }
}

/// The fused Sysbench-client / MySQL-server workload model.
#[derive(Clone, Debug)]
pub struct SysbenchOltp {
    params: OltpParams,
    rows: Dataset,
    index: PageRange,
    log: PageRange,
    dist: KeyDist,
    plan_pos: usize,
    log_head: u32,
}

impl SysbenchOltp {
    /// Build over `rows` (the InnoDB buffer pool region), `index` (hot
    /// B-tree upper levels), and `log` (redo log circular buffer).
    pub fn new(
        rows: Dataset,
        index: PageRange,
        log: PageRange,
        dist: KeyDist,
        params: OltpParams,
    ) -> Self {
        assert!(index.len >= 2 && log.len >= 1);
        SysbenchOltp {
            params,
            rows,
            index,
            log,
            dist,
            plan_pos: 0,
            log_head: 0,
        }
    }

    /// Model parameters.
    pub fn params(&self) -> &OltpParams {
        &self.params
    }

    /// Statements per transaction (10 + 4 + 2 + 1).
    pub const STATEMENTS_PER_TXN: usize = 17;

    fn stmt_at(&self, pos: usize) -> Stmt {
        match pos {
            0..=9 => Stmt::PointSelect(pos as u8),
            10..=13 => Stmt::RangeSelect((pos - 10) as u8),
            14..=15 => Stmt::Update((pos - 14) as u8),
            16 => Stmt::Commit,
            _ => unreachable!(),
        }
    }

    /// Sysbench worker concurrency at the server.
    pub fn server_concurrency(&self) -> u32 {
        self.params.server_concurrency
    }

    /// Closed-loop client threads.
    pub fn client_threads(&self) -> u32 {
        self.params.client_threads
    }

    /// B-tree descent: two pages from the hot index region.
    fn index_touches(&self, key: u64, touches: &mut TouchList) {
        let h1 = (key.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 33) % self.index.len as u64;
        let h2 = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) % self.index.len as u64;
        touches.push(self.index.page(h1 as u32), false);
        touches.push(self.index.page(h2 as u32), false);
    }

    /// Generate the next statement. `OpSpec::completions` (via
    /// [`crate::ops::OpSpec`] response sizing) — the COMMIT statement is
    /// identified by `is_commit` on the returned pair.
    pub fn next_op(&mut self, rng: &mut DetRng) -> (OpSpec, bool) {
        let stmt = self.stmt_at(self.plan_pos);
        self.plan_pos = (self.plan_pos + 1) % Self::STATEMENTS_PER_TXN;
        let n = self.rows.n_records();
        let mut touches = TouchList::new();
        let (cpu, is_commit, resp) = match stmt {
            Stmt::PointSelect(_) => {
                let key = self.dist.sample(rng, n);
                self.index_touches(key, &mut touches);
                touches.push(self.rows.page_of(key), false);
                (self.params.cpu_select, false, 256)
            }
            Stmt::RangeSelect(_) => {
                let key = self.dist.sample(rng, n);
                self.index_touches(key, &mut touches);
                let first = self.rows.page_of(key);
                let end = self.rows.region().end();
                for i in 0..self.params.range_rows {
                    let p = first + i;
                    if p < end {
                        touches.push(p, false);
                    }
                }
                (self.params.cpu_select, false, 1024)
            }
            Stmt::Update(_) => {
                let key = self.dist.sample(rng, n);
                self.index_touches(key, &mut touches);
                touches.push(self.rows.page_of(key), true);
                // Redo log append.
                touches.push(self.log.page(self.log_head), true);
                (self.params.cpu_update, false, 64)
            }
            Stmt::Commit => {
                // Log flush: advance the circular log head.
                touches.push(self.log.page(self.log_head), true);
                self.log_head = (self.log_head + 1) % self.log.len;
                (self.params.cpu_commit, true, 64)
            }
        };
        (
            OpSpec {
                touches,
                cpu,
                request_bytes: 128,
                response_bytes: resp,
            },
            is_commit,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> SysbenchOltp {
        let rows_region = PageRange {
            start: 10_000,
            len: 100_000,
        };
        let index_region = PageRange {
            start: 100,
            len: 500,
        };
        let log_region = PageRange {
            start: 700,
            len: 32,
        };
        let rows = Dataset::filling(rows_region, 256, 4096);
        SysbenchOltp::new(
            rows,
            index_region,
            log_region,
            KeyDist::UniformPrefix,
            OltpParams::default(),
        )
    }

    #[test]
    fn plan_has_seventeen_statements_one_commit() {
        let mut m = model();
        let mut rng = DetRng::seed_from(1);
        let mut commits = 0;
        for _ in 0..SysbenchOltp::STATEMENTS_PER_TXN {
            let (_, is_commit) = m.next_op(&mut rng);
            if is_commit {
                commits += 1;
            }
        }
        assert_eq!(commits, 1);
        // The next statement starts a fresh transaction (not a commit).
        let (_, is_commit) = m.next_op(&mut rng);
        assert!(!is_commit);
    }

    #[test]
    fn updates_dirty_row_and_log_pages() {
        let mut m = model();
        let mut rng = DetRng::seed_from(2);
        // Statements 14 and 15 are updates.
        for _ in 0..14 {
            m.next_op(&mut rng);
        }
        let (op, _) = m.next_op(&mut rng);
        assert_eq!(op.write_touches(), 2, "row + log");
        // Log page is in the log region.
        let (log_page, w) = op.touches.get(op.touches.len() - 1);
        assert!(w);
        assert!((700..732).contains(&log_page));
    }

    #[test]
    fn selects_are_read_only() {
        let mut m = model();
        let mut rng = DetRng::seed_from(3);
        for _ in 0..14 {
            let (op, _) = m.next_op(&mut rng);
            assert_eq!(op.write_touches(), 0);
        }
    }

    #[test]
    fn range_select_touches_consecutive_pages() {
        let mut m = model();
        let mut rng = DetRng::seed_from(4);
        for _ in 0..10 {
            m.next_op(&mut rng);
        }
        let (op, _) = m.next_op(&mut rng); // first range select
                                           // 2 index + up to 4 row pages.
        assert!(op.touches.len() >= 3 && op.touches.len() <= 6);
        let rows: Vec<u32> = op.touches.iter().skip(2).map(|(p, _)| p).collect();
        for w in rows.windows(2) {
            assert_eq!(w[1], w[0] + 1, "range rows must be consecutive");
        }
    }

    #[test]
    fn log_head_wraps() {
        let mut m = model();
        let mut rng = DetRng::seed_from(5);
        let mut log_pages = std::collections::HashSet::new();
        for _ in 0..SysbenchOltp::STATEMENTS_PER_TXN * 40 {
            let (op, is_commit) = m.next_op(&mut rng);
            if is_commit {
                log_pages.insert(op.touches.get(0).0);
            }
        }
        assert_eq!(log_pages.len(), 32, "circular log uses its whole region");
    }
}
