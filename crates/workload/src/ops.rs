//! Operation descriptors.
//!
//! A workload model turns "the client issued a request" into an [`OpSpec`]:
//! which guest pages the server touches (read or write), how much guest CPU
//! the request costs, and the request/response sizes on the wire. The
//! cluster executor then plays the spec against the VM — page faults, swap
//! queues, vCPU contention, and NIC sharing turn the spec into a latency.
//!
//! `OpSpec` is allocation-free ([`TouchList`] is a fixed-capacity inline
//! array): millions of ops are generated per simulated run and the
//! perf-book rule is no per-op heap traffic.

use agile_sim_core::SimDuration;

/// Maximum pages one operation may touch.
pub const MAX_TOUCHES: usize = 16;

/// Fixed-capacity list of page touches.
#[derive(Clone, Copy, Debug, Default)]
pub struct TouchList {
    pages: [u32; MAX_TOUCHES],
    write_mask: u16,
    len: u8,
}

impl TouchList {
    /// Empty list.
    pub fn new() -> Self {
        TouchList::default()
    }

    /// Append a touch. Panics if the list is full.
    pub fn push(&mut self, pfn: u32, write: bool) {
        let i = self.len as usize;
        assert!(i < MAX_TOUCHES, "operation touches too many pages");
        self.pages[i] = pfn;
        if write {
            self.write_mask |= 1 << i;
        }
        self.len += 1;
    }

    /// Number of touches.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// True if no touches were recorded.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The `i`-th touch as `(pfn, is_write)`.
    pub fn get(&self, i: usize) -> (u32, bool) {
        assert!(i < self.len());
        (self.pages[i], self.write_mask & (1 << i) != 0)
    }

    /// Iterate `(pfn, is_write)`.
    pub fn iter(&self) -> impl Iterator<Item = (u32, bool)> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }
}

/// One client operation against the guest.
#[derive(Clone, Copy, Debug)]
pub struct OpSpec {
    /// Pages the server touches, in order.
    pub touches: TouchList,
    /// Guest CPU time consumed (before vCPU contention).
    pub cpu: SimDuration,
    /// Request size on the wire.
    pub request_bytes: u64,
    /// Response size on the wire.
    pub response_bytes: u64,
}

impl OpSpec {
    /// Count of write touches.
    pub fn write_touches(&self) -> usize {
        self.touches.iter().filter(|(_, w)| *w).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touchlist_push_get() {
        let mut t = TouchList::new();
        assert!(t.is_empty());
        t.push(10, false);
        t.push(20, true);
        t.push(30, false);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(0), (10, false));
        assert_eq!(t.get(1), (20, true));
        assert_eq!(t.get(2), (30, false));
        let all: Vec<_> = t.iter().collect();
        assert_eq!(all, vec![(10, false), (20, true), (30, false)]);
    }

    #[test]
    fn write_mask_counts() {
        let mut t = TouchList::new();
        t.push(1, true);
        t.push(2, false);
        t.push(3, true);
        let op = OpSpec {
            touches: t,
            cpu: SimDuration::from_micros(10),
            request_bytes: 64,
            response_bytes: 1024,
        };
        assert_eq!(op.write_touches(), 2);
    }

    #[test]
    fn capacity_is_sixteen() {
        let mut t = TouchList::new();
        for i in 0..MAX_TOUCHES {
            t.push(i as u32, i % 2 == 0);
        }
        assert_eq!(t.len(), MAX_TOUCHES);
    }

    #[test]
    #[should_panic(expected = "too many pages")]
    fn overflow_panics() {
        let mut t = TouchList::new();
        for i in 0..=MAX_TOUCHES {
            t.push(i as u32, false);
        }
    }
}
