//! Guest-OS background activity.
//!
//! A real guest never sits perfectly still: kernel threads, page-cache
//! bookkeeping, and daemons keep touching (and occasionally dirtying) a
//! small set of pages. Two consequences matter for migration fidelity:
//! the guest-OS region stays in the working set, and pre-copy never sees a
//! perfectly clean dirty bitmap even on an "idle" VM.

use agile_sim_core::{DetRng, SimDuration};
use agile_vm::PageRange;

use crate::ops::{OpSpec, TouchList};

/// Background activity generator for a guest's OS region.
///
/// Touches are hotspot-distributed: kernel text, task structs, and hot
/// slabs (the first [`OsBackground::hot_fraction`] of the region) absorb
/// most accesses, while the long tail of boot-time pages and cold page
/// cache is touched rarely. A uniform distribution here would be wrong in
/// a way that matters: it manufactures an hours-long cold-refill trickle
/// after any reclaim episode, which no real guest exhibits.
#[derive(Clone, Debug)]
pub struct OsBackground {
    region: PageRange,
    /// Mean interval between background bursts.
    pub interval: SimDuration,
    /// Pages touched per burst.
    pub touches_per_burst: u32,
    /// Probability a touch is a write.
    pub write_ratio: f64,
    /// Fraction of the region that is hot.
    pub hot_fraction: f64,
    /// Probability a touch lands in the hot fraction.
    pub hot_probability: f64,
}

impl OsBackground {
    /// Default background profile over the guest OS region: a burst every
    /// 20 ms touching 4 pages, a quarter of them writes (≈50 dirtied
    /// pages/s — a quiet but not silent guest); 90% of touches hit the hot
    /// 10% of the region, the rest model daemon/page-cache activity over
    /// the cold tail.
    pub fn new(region: PageRange) -> Self {
        OsBackground {
            region,
            interval: SimDuration::from_millis(20),
            touches_per_burst: 4,
            write_ratio: 0.25,
            hot_fraction: 0.10,
            hot_probability: 0.90,
        }
    }

    /// The region this generator works over.
    pub fn region(&self) -> PageRange {
        self.region
    }

    /// Next burst: the op spec plus the delay before the burst after it.
    pub fn next_burst(&self, rng: &mut DetRng) -> (OpSpec, SimDuration) {
        let mut touches = TouchList::new();
        let hot_len = ((self.region.len as f64 * self.hot_fraction) as u32).max(1);
        for _ in 0..self.touches_per_burst.min(crate::ops::MAX_TOUCHES as u32) {
            let page = if rng.chance(self.hot_probability) {
                self.region.start + rng.index(hot_len as u64) as u32
            } else {
                self.region.start + rng.index(self.region.len.max(1) as u64) as u32
            };
            touches.push(page, rng.chance(self.write_ratio));
        }
        let gap = SimDuration::from_secs_f64(rng.exponential(self.interval.as_secs_f64()));
        (
            OpSpec {
                touches,
                cpu: SimDuration::from_micros(30),
                request_bytes: 0,
                response_bytes: 0,
            },
            gap,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn touches_concentrate_on_the_hot_fraction() {
        let bg = OsBackground::new(PageRange {
            start: 0,
            len: 1000,
        });
        let mut rng = DetRng::seed_from(9);
        let mut hot_hits = 0usize;
        let mut total = 0usize;
        for _ in 0..2000 {
            let (op, _) = bg.next_burst(&mut rng);
            for (p, _) in op.touches.iter() {
                total += 1;
                if p < 100 {
                    hot_hits += 1;
                }
            }
        }
        let frac = hot_hits as f64 / total as f64;
        assert!((0.85..0.95).contains(&frac), "hot fraction {frac}");
    }

    #[test]
    fn bursts_stay_in_region() {
        let bg = OsBackground::new(PageRange {
            start: 50,
            len: 100,
        });
        let mut rng = DetRng::seed_from(1);
        for _ in 0..200 {
            let (op, gap) = bg.next_burst(&mut rng);
            assert_eq!(op.touches.len(), 4);
            for (p, _) in op.touches.iter() {
                assert!((50..150).contains(&p));
            }
            assert!(gap > SimDuration::ZERO);
        }
    }

    #[test]
    fn some_touches_are_writes() {
        let bg = OsBackground::new(PageRange { start: 0, len: 64 });
        let mut rng = DetRng::seed_from(2);
        let mut writes = 0;
        let mut total = 0;
        for _ in 0..500 {
            let (op, _) = bg.next_burst(&mut rng);
            writes += op.write_touches();
            total += op.touches.len();
        }
        let ratio = writes as f64 / total as f64;
        assert!((0.18..0.32).contains(&ratio), "write ratio {ratio}");
    }

    #[test]
    fn mean_gap_close_to_interval() {
        let bg = OsBackground::new(PageRange { start: 0, len: 64 });
        let mut rng = DetRng::seed_from(3);
        let n = 5000;
        let total: f64 = (0..n)
            .map(|_| bg.next_burst(&mut rng).1.as_secs_f64())
            .sum();
        let mean = total / n as f64;
        assert!((mean - 0.020).abs() < 0.002, "mean gap {mean}");
    }
}
