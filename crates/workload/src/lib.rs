//! # agile-workload
//!
//! Workload models for the Agile live-migration evaluation:
//!
//! * [`YcsbRedis`] — a YCSB client querying a Redis-like in-memory
//!   key-value store (Figures 4–6, Table I row 1), with a
//!   runtime-adjustable active fraction for the ramp-up experiment.
//! * [`SysbenchOltp`] — a Sysbench OLTP client against a MySQL/InnoDB-like
//!   server (Table I row 2), statement-level with explicit COMMITs.
//! * [`OsBackground`] — guest-OS background touches that keep the OS
//!   region hot and the dirty bitmap never quite clean.
//! * [`Zipfian`], [`KeyDist`] — YCSB's key-selection distributions.
//! * [`Dataset`] — record → guest-page mapping.
//!
//! Models are sans-IO: they emit [`OpSpec`] descriptors (pages touched,
//! CPU burst, wire sizes) and the cluster executor turns them into
//! latencies by playing them against the VM's memory, devices, and NICs.

pub mod dataset;
pub mod dist;
pub mod driver;
pub mod oltp;
pub mod ops;
pub mod osbg;
pub mod signal;
pub mod ycsb;
pub mod zipfian;

pub use dataset::Dataset;
pub use dist::KeyDist;
pub use driver::{Action, Binding, Knob, WorkloadDriver};
pub use oltp::{OltpParams, SysbenchOltp};
pub use ops::{OpSpec, TouchList, MAX_TOUCHES};
pub use osbg::OsBackground;
pub use signal::Signal;
pub use ycsb::{YcsbParams, YcsbRedis};
pub use zipfian::{Zipfian, YCSB_ZIPFIAN_CONSTANT};
