//! Dataset → guest-page mapping.
//!
//! A dataset is `n_records` fixed-size records packed into a contiguous
//! guest page region (a Redis heap, a MySQL buffer pool). Record `i` lives
//! on page `region.start + i * record_size / page_size`; multi-page records
//! (large rows, 16 KB InnoDB pages on 4 KB frames) touch several frames.

use agile_vm::PageRange;

/// A record-structured dataset resident in a guest page region.
#[derive(Clone, Copy, Debug)]
pub struct Dataset {
    region: PageRange,
    n_records: u64,
    record_bytes: u64,
    page_size: u64,
}

impl Dataset {
    /// Lay `n_records` of `record_bytes` each into `region`. Panics if the
    /// region is too small.
    pub fn new(region: PageRange, n_records: u64, record_bytes: u64, page_size: u64) -> Self {
        assert!(record_bytes > 0 && page_size > 0);
        let needed_bytes = n_records * record_bytes;
        let have_bytes = region.len as u64 * page_size;
        assert!(
            needed_bytes <= have_bytes,
            "dataset needs {needed_bytes} B but region holds {have_bytes} B"
        );
        Dataset {
            region,
            n_records,
            record_bytes,
            page_size,
        }
    }

    /// Convenience: size a region-filling dataset (as many records as fit).
    pub fn filling(region: PageRange, record_bytes: u64, page_size: u64) -> Self {
        let n_records = region.len as u64 * page_size / record_bytes;
        Dataset::new(region, n_records, record_bytes, page_size)
    }

    /// Number of records.
    pub fn n_records(&self) -> u64 {
        self.n_records
    }

    /// Record size in bytes.
    pub fn record_bytes(&self) -> u64 {
        self.record_bytes
    }

    /// The guest region the dataset occupies.
    pub fn region(&self) -> PageRange {
        self.region
    }

    /// Pages actually used by the dataset (its footprint).
    pub fn used_pages(&self) -> u32 {
        (self.n_records * self.record_bytes).div_ceil(self.page_size) as u32
    }

    /// First guest page of record `key`.
    pub fn page_of(&self, key: u64) -> u32 {
        debug_assert!(key < self.n_records, "key {key} out of range");
        self.region.start + (key * self.record_bytes / self.page_size) as u32
    }

    /// All guest pages record `key` spans (≥1).
    pub fn pages_of(&self, key: u64) -> impl Iterator<Item = u32> + '_ {
        let first = key * self.record_bytes / self.page_size;
        let last = (key * self.record_bytes + self.record_bytes - 1) / self.page_size;
        (first..=last).map(move |p| self.region.start + p as u32)
    }

    /// Number of records fully or partially on one page.
    pub fn records_per_page(&self) -> u64 {
        self.page_size.div_ceil(self.record_bytes).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn region(start: u32, len: u32) -> PageRange {
        PageRange { start, len }
    }

    #[test]
    fn small_records_pack_per_page() {
        // 1 KB records, 4 KB pages → 4 records/page.
        let d = Dataset::new(region(100, 10), 40, 1024, 4096);
        assert_eq!(d.page_of(0), 100);
        assert_eq!(d.page_of(3), 100);
        assert_eq!(d.page_of(4), 101);
        assert_eq!(d.pages_of(5).collect::<Vec<_>>(), vec![101]);
        assert_eq!(d.used_pages(), 10);
    }

    #[test]
    fn large_records_span_pages() {
        // 16 KB records on 4 KB pages → 4 pages each (InnoDB page on frames).
        let d = Dataset::new(region(0, 16), 4, 16384, 4096);
        assert_eq!(d.pages_of(0).collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        assert_eq!(d.pages_of(1).collect::<Vec<_>>(), vec![4, 5, 6, 7]);
    }

    #[test]
    fn filling_uses_whole_region() {
        let d = Dataset::filling(region(0, 100), 1024, 4096);
        assert_eq!(d.n_records(), 400);
        assert_eq!(d.used_pages(), 100);
    }

    #[test]
    fn partial_fill_footprint() {
        let d = Dataset::new(region(0, 100), 10, 1024, 4096);
        assert_eq!(d.used_pages(), 3); // 10 KiB → 3 pages
    }

    #[test]
    #[should_panic(expected = "dataset needs")]
    fn oversized_dataset_rejected() {
        let _ = Dataset::new(region(0, 1), 100, 1024, 4096);
    }
}
