//! YCSB client + Redis server model (fused).
//!
//! The paper's primary workload: an external YCSB client issues read
//! (GET) and update (SET) requests against a Redis server holding a large
//! in-memory dataset inside the VM. The model produces one [`OpSpec`] per
//! request:
//!
//! * one *index* touch — Redis's hash table occupies a compact, hot region
//!   proportional to the record count; every operation hits it;
//! * the record's *value* page(s) — read for GET, written for SET;
//! * a guest CPU burst sized so a single Redis thread peaks near the
//!   paper's observed ~18 k ops/s per VM.
//!
//! Redis is single-threaded: [`YcsbRedis::server_concurrency`] is 1, so a
//! major fault on the value page stalls the whole server — the mechanism
//! behind the deep throughput dips of Figures 4–6.
//!
//! The *active fraction* is runtime-adjustable: the Fig. 4–6 scenario
//! starts each client on 200 MB of the dataset and later widens it to
//! 6 GB, creating the memory pressure that triggers migration.

use agile_sim_core::{DetRng, SimDuration};
use agile_vm::PageRange;

use crate::dataset::Dataset;
use crate::dist::KeyDist;
use crate::ops::{OpSpec, TouchList};

/// Tunable constants of the YCSB/Redis model.
#[derive(Clone, Copy, Debug)]
pub struct YcsbParams {
    /// Guest CPU per GET.
    pub cpu_read: SimDuration,
    /// Guest CPU per SET.
    pub cpu_update: SimDuration,
    /// Fraction of operations that are reads (YCSB workload mix).
    pub read_ratio: f64,
    /// Request size on the wire.
    pub request_bytes: u64,
    /// Response size on the wire (≈ the 1 KB YCSB record).
    pub response_bytes: u64,
    /// Number of closed-loop client threads.
    pub client_threads: u32,
}

impl Default for YcsbParams {
    fn default() -> Self {
        YcsbParams {
            cpu_read: SimDuration::from_micros(55),
            cpu_update: SimDuration::from_micros(65),
            read_ratio: 1.0, // §V-A uses read-only querying
            request_bytes: 64,
            response_bytes: 1100,
            client_threads: 16,
        }
    }
}

impl YcsbParams {
    /// YCSB workload-A-style mix (50% updates) — the "busy VM" of the
    /// Fig. 7/8 sweep, which must dirty pages during migration.
    pub fn update_heavy() -> Self {
        YcsbParams {
            read_ratio: 0.5,
            ..YcsbParams::default()
        }
    }
}

/// The fused YCSB-client / Redis-server workload model.
#[derive(Clone, Debug)]
pub struct YcsbRedis {
    params: YcsbParams,
    dataset: Dataset,
    index: PageRange,
    dist: KeyDist,
    active_records: u64,
    active_start: u64,
}

impl YcsbRedis {
    /// Build over `dataset`, with `index` the Redis hash-table region and
    /// `dist` the key distribution. Starts with the whole dataset active.
    pub fn new(dataset: Dataset, index: PageRange, dist: KeyDist, params: YcsbParams) -> Self {
        assert!(index.len > 0, "index region required");
        let active = dataset.n_records();
        YcsbRedis {
            params,
            dataset,
            index,
            dist,
            active_records: active,
            active_start: 0,
        }
    }

    /// Model parameters.
    pub fn params(&self) -> &YcsbParams {
        &self.params
    }

    /// The dataset being served.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Restrict querying to the first `bytes` of the dataset (the paper's
    /// "query a fraction" knob). Clamped to at least one record.
    pub fn set_active_bytes(&mut self, bytes: u64) {
        let records = (bytes / self.dataset.record_bytes()).clamp(1, self.dataset.n_records());
        self.active_records = records;
    }

    /// Rotate the active window to start at record `start` (wrapped into
    /// the dataset). Key selection stays within the same *number* of
    /// active records but maps onto `start .. start + active` modulo the
    /// dataset — a working-set *remap* (memory phase change) rather than
    /// a resize. An offset of 0 reproduces the legacy key stream exactly
    /// and consumes no extra RNG draws.
    pub fn set_active_start(&mut self, start: u64) {
        self.active_start = start % self.dataset.n_records();
    }

    /// First record of the active window.
    pub fn active_start(&self) -> u64 {
        self.active_start
    }

    /// Currently active records.
    pub fn active_records(&self) -> u64 {
        self.active_records
    }

    /// Bytes of dataset currently being queried.
    pub fn active_bytes(&self) -> u64 {
        self.active_records * self.dataset.record_bytes()
    }

    /// Redis serves requests on one thread.
    pub fn server_concurrency(&self) -> u32 {
        1
    }

    /// Closed-loop client threads.
    pub fn client_threads(&self) -> u32 {
        self.params.client_threads
    }

    /// Generate the next request.
    pub fn next_op(&mut self, rng: &mut DetRng) -> OpSpec {
        let key = (self.active_start + self.dist.sample(rng, self.active_records))
            % self.dataset.n_records();
        let is_read = rng.chance(self.params.read_ratio);
        let mut touches = TouchList::new();
        // Hash-table bucket: spread keys across the index region.
        let bucket = (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 33) % self.index.len as u64;
        touches.push(self.index.page(bucket as u32), false);
        for page in self.dataset.pages_of(key) {
            touches.push(page, !is_read);
        }
        OpSpec {
            touches,
            cpu: if is_read {
                self.params.cpu_read
            } else {
                self.params.cpu_update
            },
            request_bytes: self.params.request_bytes,
            response_bytes: if is_read {
                self.params.response_bytes
            } else {
                64 // SET acknowledgement
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(read_ratio: f64) -> YcsbRedis {
        let data_region = PageRange {
            start: 1000,
            len: 10_000,
        };
        let index_region = PageRange {
            start: 100,
            len: 200,
        };
        let dataset = Dataset::filling(data_region, 1024, 4096);
        YcsbRedis::new(
            dataset,
            index_region,
            KeyDist::UniformPrefix,
            YcsbParams {
                read_ratio,
                ..YcsbParams::default()
            },
        )
    }

    #[test]
    fn reads_touch_index_then_value_readonly() {
        let mut m = model(1.0);
        let mut rng = DetRng::seed_from(1);
        let op = m.next_op(&mut rng);
        assert_eq!(op.touches.len(), 2);
        let (index_page, w0) = op.touches.get(0);
        let (value_page, w1) = op.touches.get(1);
        assert!((100..300).contains(&index_page));
        assert!((1000..11_000).contains(&value_page));
        assert!(!w0 && !w1);
        assert_eq!(op.cpu, SimDuration::from_micros(55));
        assert_eq!(op.response_bytes, 1100);
    }

    #[test]
    fn updates_write_the_value_page() {
        let mut m = model(0.0);
        let mut rng = DetRng::seed_from(2);
        let op = m.next_op(&mut rng);
        assert_eq!(op.write_touches(), 1);
        let (_, index_write) = op.touches.get(0);
        assert!(!index_write, "index is read-only");
        assert_eq!(op.cpu, SimDuration::from_micros(65));
        assert_eq!(op.response_bytes, 64);
    }

    #[test]
    fn active_fraction_restricts_pages() {
        let mut m = model(1.0);
        // 200 records × 1 KiB = 200 KiB active → first 50 value pages.
        m.set_active_bytes(200 * 1024);
        assert_eq!(m.active_records(), 200);
        let mut rng = DetRng::seed_from(3);
        for _ in 0..500 {
            let op = m.next_op(&mut rng);
            let (value_page, _) = op.touches.get(1);
            assert!(value_page < 1000 + 50, "page {value_page} outside window");
        }
    }

    #[test]
    fn active_fraction_clamps() {
        let mut m = model(1.0);
        m.set_active_bytes(0);
        assert_eq!(m.active_records(), 1);
        m.set_active_bytes(u64::MAX);
        assert_eq!(m.active_records(), m.dataset().n_records());
    }

    #[test]
    fn wide_window_touches_many_pages() {
        let mut m = model(1.0);
        let mut rng = DetRng::seed_from(4);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..5000 {
            let op = m.next_op(&mut rng);
            seen.insert(op.touches.get(1).0);
        }
        assert!(
            seen.len() > 2000,
            "only {} distinct value pages",
            seen.len()
        );
    }

    #[test]
    fn window_rotation_remaps_without_extra_rng_draws() {
        // Offset 0 is the legacy key stream, bit for bit.
        let mut a = model(1.0);
        let mut b = model(1.0);
        b.set_active_start(0);
        let mut ra = DetRng::seed_from(9);
        let mut rb = DetRng::seed_from(9);
        for _ in 0..200 {
            assert_eq!(
                a.next_op(&mut ra).touches.get(1),
                b.next_op(&mut rb).touches.get(1)
            );
        }
        // A rotated window with the same width consumes the identical
        // RNG stream and lands every touch inside the rotated range.
        let mut c = model(1.0);
        c.set_active_bytes(200 * 1024);
        c.set_active_start(5000);
        let mut d = model(1.0);
        d.set_active_bytes(200 * 1024);
        let mut rc = DetRng::seed_from(9);
        let mut rd = DetRng::seed_from(9);
        for _ in 0..200 {
            let op = c.next_op(&mut rc);
            let _ = d.next_op(&mut rd);
            let (page, _) = op.touches.get(1);
            // records 5000..5200 at 1 KiB over 4 KiB pages → pages 2250..2300.
            assert!(
                (2250..2300).contains(&page),
                "page {page} outside rotated window"
            );
        }
        assert_eq!(
            rc.next_u64(),
            rd.next_u64(),
            "rotation must not consume RNG"
        );
    }

    #[test]
    fn redis_is_single_threaded() {
        let m = model(1.0);
        assert_eq!(m.server_concurrency(), 1);
        assert_eq!(m.client_threads(), 16);
    }
}
