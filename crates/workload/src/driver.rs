//! Sans-IO temporal workload driver.
//!
//! A [`WorkloadDriver`] owns a set of [`Binding`]s — each a `(vm, knob,
//! signal)` triple — and, when polled at a simulated instant, reports
//! which knobs changed value since the previous poll. It performs no IO
//! and schedules nothing itself: the cluster executor ticks it as an
//! ordinary DES event and applies the emitted [`Action`]s to the world
//! (reservation resizes, think-time changes, active-window moves).
//!
//! The byte-identity contract lives here: bindings whose signal is
//! structurally constant are applied **once** when the driver is armed
//! and then never touched again, and a driver whose bindings are *all*
//! constant reports [`WorkloadDriver::is_static`], in which case the
//! executor installs **zero** events — legacy traces replay
//! byte-identically.

use agile_sim_core::time::SimTime;

use crate::signal::Signal;

/// Which scalar knob a signal drives on its target VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Knob {
    /// Closed-loop client think time: the applied value is
    /// `base_ns * signal` nanoseconds (negative values clamp to 0).
    /// A value of 0 restores the legacy think-free closed loop.
    ThinkNanos {
        /// Think time at signal value 1.0.
        base_ns: u64,
    },
    /// Active-fraction resize: the signal value is the active byte
    /// count handed to `YcsbRedis::set_active_bytes`.
    ActiveBytes,
    /// Working-set remap: the signal value (a phase index) selects the
    /// start of the active window as `phase * stride_records`.
    WindowPhase {
        /// Records the window advances per phase step.
        stride_records: u64,
    },
    /// Memory reservation of the VM in bytes.
    ReservationBytes,
}

/// One signal wired to one knob on one VM.
#[derive(Debug, Clone)]
pub struct Binding {
    /// Executor-side VM index (opaque to the driver).
    pub vm: usize,
    /// The knob the signal drives.
    pub knob: Knob,
    /// The intensity signal.
    pub signal: Signal,
}

/// A knob change the executor must apply.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Action {
    /// Executor-side VM index.
    pub vm: usize,
    /// Which knob changed.
    pub knob: Knob,
    /// The signal's new value (the executor converts to knob units).
    pub value: f64,
}

/// Periodically-polled collection of signal bindings (sans-IO).
#[derive(Debug, Clone)]
pub struct WorkloadDriver {
    bindings: Vec<Binding>,
    /// Last emitted value per binding; `None` until first poll, so the
    /// first poll emits every non-constant binding.
    last: Vec<Option<f64>>,
}

impl WorkloadDriver {
    /// Build a driver over `bindings`.
    pub fn new(bindings: Vec<Binding>) -> Self {
        let n = bindings.len();
        WorkloadDriver {
            bindings,
            last: vec![None; n],
        }
    }

    /// The driver's bindings.
    pub fn bindings(&self) -> &[Binding] {
        &self.bindings
    }

    /// True when every binding is structurally constant: the executor
    /// applies initial values at arm time and installs no tick event.
    pub fn is_static(&self) -> bool {
        self.bindings.iter().all(|b| b.signal.is_constant())
    }

    /// Emit the initial value of every binding (constant or not),
    /// marking them as emitted. Called once at arm time so constants are
    /// applied without ever being polled again.
    pub fn initial_actions(&mut self, now: SimTime, out: &mut Vec<Action>) {
        out.clear();
        for (i, b) in self.bindings.iter().enumerate() {
            let v = b.signal.value_at(now);
            self.last[i] = Some(v);
            out.push(Action {
                vm: b.vm,
                knob: b.knob,
                value: v,
            });
        }
    }

    /// Evaluate every non-constant binding at `now` and append an
    /// [`Action`] for each whose value changed since the last emission.
    /// Constant bindings are skipped entirely (their value was applied
    /// at arm time and can never change).
    pub fn poll(&mut self, now: SimTime, out: &mut Vec<Action>) {
        out.clear();
        for (i, b) in self.bindings.iter().enumerate() {
            if b.signal.is_constant() {
                continue;
            }
            let v = b.signal.value_at(now);
            if self.last[i] != Some(v) {
                self.last[i] = Some(v);
                out.push(Action {
                    vm: b.vm,
                    knob: b.knob,
                    value: v,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agile_sim_core::time::SimDuration;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn static_driver_has_no_dynamic_work() {
        let mut d = WorkloadDriver::new(vec![
            Binding {
                vm: 0,
                knob: Knob::ActiveBytes,
                signal: Signal::constant(1024.0),
            },
            Binding {
                vm: 1,
                knob: Knob::ThinkNanos { base_ns: 1000 },
                signal: Signal::constant(0.0),
            },
        ]);
        assert!(d.is_static());
        let mut out = Vec::new();
        d.initial_actions(secs(0), &mut out);
        assert_eq!(out.len(), 2, "constants still get an initial apply");
        d.poll(secs(10), &mut out);
        assert!(out.is_empty(), "constants never re-emit");
    }

    #[test]
    fn poll_emits_only_changes() {
        let mut d = WorkloadDriver::new(vec![Binding {
            vm: 3,
            knob: Knob::ReservationBytes,
            signal: Signal::ramp(secs(10), SimDuration::from_secs(10), 2, 100.0, 300.0),
        }]);
        assert!(!d.is_static());
        let mut out = Vec::new();
        d.initial_actions(secs(0), &mut out);
        assert_eq!(
            out,
            vec![Action {
                vm: 3,
                knob: Knob::ReservationBytes,
                value: 100.0
            }]
        );
        d.poll(secs(5), &mut out);
        assert!(out.is_empty(), "unchanged value must not re-emit");
        d.poll(secs(10), &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].value, 200.0);
        d.poll(secs(15), &mut out);
        assert!(out.is_empty());
        d.poll(secs(20), &mut out);
        assert_eq!(out[0].value, 300.0);
    }

    #[test]
    fn mixed_driver_is_not_static() {
        let d = WorkloadDriver::new(vec![
            Binding {
                vm: 0,
                knob: Knob::ActiveBytes,
                signal: Signal::constant(5.0),
            },
            Binding {
                vm: 0,
                knob: Knob::WindowPhase { stride_records: 64 },
                signal: Signal::phase_change(SimDuration::from_secs(30), 4),
            },
        ]);
        assert!(!d.is_static());
    }
}
