//! End-to-end migration correctness: every technique must deliver the
//! source's final content to the destination, under memory pressure, with
//! and without concurrent guest writes, for both swap backends.

use agile_cluster::build::{start_all_workloads, ClusterBuilder, SwapKind};
use agile_cluster::world::WorkloadKind;
use agile_cluster::{migrate, ClusterConfig};
use agile_memory::PagemapEntry;
use agile_migration::{SourceConfig, Technique};
use agile_sim_core::{SimDuration, SimTime, GIB, MIB};
use agile_vm::VmConfig;
use agile_workload::{Dataset, KeyDist, YcsbParams, YcsbRedis};

const HOST_MEM: u64 = 96 * MIB;
const VM_MEM: u64 = 64 * MIB;
const RESERVATION: u64 = 40 * MIB;

struct Setup {
    sim: agile_sim_core::Simulation<agile_cluster::World>,
    vm: usize,
    dst_host: usize,
}

/// Build one pressured VM (64 MiB memory, 40 MiB reservation, 48 MiB
/// dataset) with an update-heavy client so pages keep getting dirtied.
fn setup(technique: Technique, with_workload: bool, seed: u64) -> Setup {
    let cfg = ClusterConfig {
        seed,
        ..ClusterConfig::default()
    };
    let page = cfg.page_size;
    let mut b = ClusterBuilder::new(cfg);
    let src = b.add_host("source", HOST_MEM, 8 * MIB, true);
    let dst = b.add_host("dest", HOST_MEM, 8 * MIB, true);
    let cli = b.add_host("client", GIB, 8 * MIB, false);
    let agile = technique == Technique::Agile;
    if agile {
        let im = b.add_host("intermediate", 2 * GIB, 8 * MIB, true);
        b.add_vmd_server(im, GIB, 0);
        b.ensure_vmd_client(dst);
    }
    let swap_kind = if agile {
        SwapKind::PerVmVmd
    } else {
        SwapKind::HostSsd
    };
    let vm = b.add_vm(
        src,
        VmConfig {
            mem_bytes: VM_MEM,
            page_size: page,
            vcpus: 2,
            reservation_bytes: RESERVATION,
            guest_os_bytes: 4 * MIB,
        },
        swap_kind,
    );
    if with_workload {
        let dataset_bytes = 48 * MIB;
        let (index_region, data_region) = {
            let world = b.world_mut();
            let layout = world.vms[vm].vm.layout_mut();
            let idx = layout.alloc_region("redis-index", 64);
            let dat = layout.alloc_region("redis-data", (dataset_bytes / page) as u32);
            (idx, dat)
        };
        let dataset = Dataset::new(data_region, dataset_bytes / 1024, 1024, page);
        let model = YcsbRedis::new(
            dataset,
            index_region,
            KeyDist::UniformPrefix,
            YcsbParams::update_heavy(),
        );
        b.attach_workload(vm, cli, WorkloadKind::Ycsb(model));
        b.enable_os_background(vm);
        b.preload_layout(vm);
    } else {
        // Idle but fully populated memory.
        b.preload_pages(vm, 0, (VM_MEM / page) as u32);
    }
    let mut sim = b.build();
    if with_workload {
        start_all_workloads(&mut sim, SimTime::from_secs(1));
    }
    Setup {
        sim,
        vm,
        dst_host: dst,
    }
}

/// Run the migration to completion with content verification enabled.
fn migrate_and_verify(s: &mut Setup, technique: Technique) -> agile_migration::MigrationMetrics {
    let vm = s.vm;
    let dst_host = s.dst_host;
    s.sim.run_until(SimTime::from_secs(5));
    let mig = migrate::start_migration(
        &mut s.sim,
        vm,
        dst_host,
        SourceConfig {
            precopy_threshold_pages: 64,
            ..SourceConfig::new(technique)
        },
        VM_MEM,
    );
    s.sim.state_mut().migrations[mig].verify_content = true;
    // Drive until finished (deadline well past anything reasonable).
    let deadline = SimTime::from_secs(600);
    while !s.sim.state().migrations[mig].finished && s.sim.now() < deadline {
        let next = s.sim.now() + SimDuration::from_secs(1);
        s.sim.run_until(next);
    }
    assert!(
        s.sim.state().migrations[mig].finished,
        "{technique} migration did not complete"
    );
    s.sim.state().migrations[mig].src.metrics().clone()
}

fn check_dest_state(s: &Setup, technique: Technique) {
    let w = s.sim.state();
    let mem = w.vms[s.vm].vm.memory();
    assert!(
        matches!(
            w.vms[s.vm].vm.state(),
            agile_vm::VmState::Running { host } if host == agile_vm::HostId(s.dst_host as u32)
        ),
        "VM must run at the destination"
    );
    assert!(mem.resident_pages() <= mem.limit_pages());
    // Every page is accounted (present, swapped, or genuinely untouched).
    let mut present = 0u32;
    let mut swapped = 0u32;
    for p in 0..mem.pages() {
        match mem.pagemap(p) {
            PagemapEntry::Present => present += 1,
            PagemapEntry::Swapped { .. } => swapped += 1,
            PagemapEntry::None => {}
        }
    }
    assert!(present > 0, "{technique}: nothing arrived");
    if technique == Technique::Agile {
        assert!(
            swapped > 0,
            "agile must leave cold pages on the portable swap device"
        );
    }
}

#[test]
fn idle_precopy_preserves_content() {
    let mut s = setup(Technique::PreCopy, false, 1);
    let m = migrate_and_verify(&mut s, Technique::PreCopy);
    check_dest_state(&s, Technique::PreCopy);
    // Idle VM: exactly one round, no retransmissions.
    assert_eq!(m.rounds, 1);
    assert!(m.downtime().is_some());
}

#[test]
fn idle_postcopy_preserves_content() {
    let mut s = setup(Technique::PostCopy, false, 2);
    let m = migrate_and_verify(&mut s, Technique::PostCopy);
    check_dest_state(&s, Technique::PostCopy);
    assert_eq!(m.rounds, 0, "post-copy has no live rounds");
}

#[test]
fn idle_agile_preserves_content() {
    let mut s = setup(Technique::Agile, false, 3);
    let m = migrate_and_verify(&mut s, Technique::Agile);
    check_dest_state(&s, Technique::Agile);
    assert_eq!(m.rounds, 1, "agile runs exactly one live round");
    assert!(
        m.pages_sent_as_offsets > 0,
        "pressured idle VM must have swapped pages shipped as offsets"
    );
    assert_eq!(
        m.pages_swapped_in_for_transfer, 0,
        "agile never reads the swap device to transfer"
    );
}

#[test]
fn busy_precopy_preserves_content_under_writes() {
    let mut s = setup(Technique::PreCopy, true, 4);
    let m = migrate_and_verify(&mut s, Technique::PreCopy);
    check_dest_state(&s, Technique::PreCopy);
    assert!(
        m.pages_retransmitted > 0,
        "update-heavy workload must force retransmissions"
    );
}

#[test]
fn busy_postcopy_preserves_content_under_writes() {
    let mut s = setup(Technique::PostCopy, true, 5);
    let m = migrate_and_verify(&mut s, Technique::PostCopy);
    check_dest_state(&s, Technique::PostCopy);
    assert!(
        m.pages_demand_from_source > 0,
        "the running destination must demand-fault pages from the source"
    );
}

#[test]
fn busy_agile_preserves_content_under_writes() {
    let mut s = setup(Technique::Agile, true, 6);
    let m = migrate_and_verify(&mut s, Technique::Agile);
    check_dest_state(&s, Technique::Agile);
    assert!(m.pages_sent_as_offsets > 0);
    // The destination must actually read cold pages from the VMD.
    let w = s.sim.state();
    assert!(
        w.migrations[0].dst.pages_faulted_from_swap > 0,
        "agile destination should fault cold pages from the per-VM swap"
    );
}

#[test]
fn agile_moves_less_data_than_baselines_under_pressure() {
    let mut agile = setup(Technique::Agile, true, 7);
    let ma = migrate_and_verify(&mut agile, Technique::Agile);
    let mut pre = setup(Technique::PreCopy, true, 7);
    let mp = migrate_and_verify(&mut pre, Technique::PreCopy);
    let mut post = setup(Technique::PostCopy, true, 7);
    let mq = migrate_and_verify(&mut post, Technique::PostCopy);
    assert!(
        ma.migration_bytes < mq.migration_bytes,
        "agile {} !< post-copy {}",
        ma.migration_bytes,
        mq.migration_bytes
    );
    assert!(
        ma.migration_bytes < mp.migration_bytes,
        "agile {} !< pre-copy {}",
        ma.migration_bytes,
        mp.migration_bytes
    );
    // And it finishes fastest.
    let (ta, tp, tq) = (
        ma.total_time().unwrap(),
        mp.total_time().unwrap(),
        mq.total_time().unwrap(),
    );
    assert!(ta < tp, "agile {ta} !< pre-copy {tp}");
    assert!(ta < tq, "agile {ta} !< post-copy {tq}");
}

#[test]
fn deterministic_across_runs() {
    let mut a = setup(Technique::Agile, true, 99);
    let ma = migrate_and_verify(&mut a, Technique::Agile);
    let mut b = setup(Technique::Agile, true, 99);
    let mb = migrate_and_verify(&mut b, Technique::Agile);
    assert_eq!(ma.migration_bytes, mb.migration_bytes);
    assert_eq!(ma.completed_at, mb.completed_at);
    assert_eq!(ma.pages_sent_full, mb.pages_sent_full);
    assert_eq!(
        a.sim.state().vms[a.vm].meter.total(),
        b.sim.state().vms[b.vm].meter.total()
    );
}
