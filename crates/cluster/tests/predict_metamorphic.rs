//! Metamorphic properties of the cycle detector.
//!
//! The detector feeds a scheduling decision, so its failure mode is
//! silent (a deferral to the wrong instant, or no deferral at all).
//! These tests pin the transformations under which detection must not
//! change: shifting a periodic signal in time, scaling its amplitude by
//! a power of two, and replacing it with white noise.

use agile_cluster::predict::{CycleDetector, PredictConfig};
use agile_sim_core::DetRng;

/// One period of a signal with a unique minimum (phase 5) and a unique
/// maximum, so trough detection has no tie-break ambiguity.
const WAVE: [f64; 8] = [60.0, 90.0, 120.0, 90.0, 50.0, 10.0, 20.0, 40.0];

fn cfg() -> PredictConfig {
    PredictConfig::default()
}

fn fill(d: &mut CycleDetector, n: u64, f: impl Fn(u64) -> f64) {
    for i in 0..n {
        d.push(f(i));
    }
}

/// Time-shift invariance: observing the same periodic signal starting
/// at any phase offset detects the same period, and the trough phase
/// rotates by exactly the offset (phases are anchored at the global
/// push count, so a shift by `k` moves the trough bin to `p - k`).
#[test]
fn time_shift_preserves_period_and_rotates_trough() {
    let mut base = CycleDetector::new(64);
    fill(&mut base, 64, |i| WAVE[(i % 8) as usize]);
    let b = base.detect(&cfg()).expect("base cycle");
    assert_eq!(b.period, 8);
    assert_eq!(b.trough_phase, 5);

    for k in 1..8u64 {
        let mut d = CycleDetector::new(64);
        fill(&mut d, 64, |i| WAVE[((i + k) % 8) as usize]);
        let c = d.detect(&cfg()).expect("shifted cycle");
        assert_eq!(c.period, b.period, "shift {k} changed the period");
        assert_eq!(
            c.trough_phase,
            (b.trough_phase + 8 - k as usize) % 8,
            "shift {k} mis-rotated the trough"
        );
        assert!(
            c.confidence >= cfg().min_confidence,
            "shift {k} lost confidence: {}",
            c.confidence
        );
        // The *absolute* predicted trough instant is shift-invariant:
        // both detectors point at sample indices where the underlying
        // signal is at its minimum.
        let fire = (63 + c.ticks_to_trough() as u64 + k) % 8;
        assert_eq!(WAVE[fire as usize], 10.0, "shift {k} fires off-trough");
    }
}

/// Power-of-two amplitude scaling is *exactly* invariant: the
/// autocorrelation ratio and folded means scale without rounding, so
/// the period, trough phase, and even the confidence bits must match.
#[test]
fn power_of_two_scaling_is_bit_exact() {
    let mut base = CycleDetector::new(64);
    fill(&mut base, 200, |i| WAVE[(i % 8) as usize]);
    let b = base.detect(&cfg()).expect("base cycle");

    for k in [1i32, 4, 10, -3] {
        let s = (2.0f64).powi(k);
        let mut d = CycleDetector::new(64);
        fill(&mut d, 200, |i| WAVE[(i % 8) as usize] * s);
        let c = d.detect(&cfg()).expect("scaled cycle");
        assert_eq!(c.period, b.period, "scale 2^{k} changed the period");
        assert_eq!(c.trough_phase, b.trough_phase);
        assert_eq!(c.current_phase, b.current_phase);
        assert_eq!(
            c.confidence.to_bits(),
            b.confidence.to_bits(),
            "scale 2^{k} perturbed the confidence bits"
        );
    }
}

/// White noise has no cycle: across seeds, no lag reaches the default
/// confidence threshold, so the scheduler falls back to naive firing
/// (and never defers on a phantom trough).
#[test]
fn white_noise_yields_no_cycle() {
    for seed in [1u64, 2, 3, 42, 1234] {
        let mut rng = DetRng::seed_from(seed);
        let mut d = CycleDetector::new(64);
        for _ in 0..64 {
            // Uniform in [0, 1): the top 53 bits of a draw.
            let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            d.push(u * 100.0);
        }
        assert!(
            d.detect(&cfg()).is_none(),
            "seed {seed}: phantom cycle in white noise"
        );
    }
}

/// Adding a cycle *into* noise restores detection — the noise test is
/// not vacuous, and detection degrades gracefully rather than flipping
/// on arbitrary structure.
#[test]
fn cycle_buried_in_noise_is_still_found() {
    let mut rng = DetRng::seed_from(7);
    let mut d = CycleDetector::new(64);
    for i in 0..64u64 {
        let u = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        d.push(WAVE[(i % 8) as usize] + u * 10.0);
    }
    let c = d.detect(&cfg()).expect("cycle under noise");
    assert_eq!(c.period, 8);
    assert_eq!(c.trough_phase, 5);
}
