//! Tests of the VMD extensions the paper sketches in §IV-A: multiple
//! intermediate hosts with load-aware striping, and the disk spill tier
//! behind the memory tier.

use agile_cluster::build::{ClusterBuilder, SwapKind};
use agile_cluster::{migrate, ClusterConfig};
use agile_migration::{SourceConfig, Technique};
use agile_sim_core::{SimDuration, SimTime, GIB, MIB};
use agile_vm::VmConfig;

fn vm_config(mem: u64, reservation: u64) -> VmConfig {
    VmConfig {
        mem_bytes: mem,
        page_size: 4096,
        vcpus: 2,
        reservation_bytes: reservation,
        guest_os_bytes: 2 * MIB,
    }
}

/// Cold pages stripe across several intermediate hosts round-robin, and a
/// migration still completes with content verified.
#[test]
fn striping_across_intermediate_hosts() {
    let mut b = ClusterBuilder::new(ClusterConfig::default());
    let src = b.add_host("source", 128 * MIB, 8 * MIB, true);
    let dst = b.add_host("dest", 128 * MIB, 8 * MIB, true);
    let mut servers = Vec::new();
    for i in 0..3 {
        let im = b.add_host(&format!("im{i}"), GIB, 8 * MIB, false);
        servers.push(b.add_vmd_server(im, 256 * MIB, 0));
    }
    b.ensure_vmd_client(dst);
    let vm = b.add_vm(src, vm_config(96 * MIB, 48 * MIB), SwapKind::PerVmVmd);
    b.preload_pages(vm, 0, (96 * MIB / 4096) as u32);
    let mut sim = b.build();
    // All three servers hold pages (round-robin placement).
    for &s in &servers {
        let stored = sim.state().vmd.servers[s].server.stored_pages();
        assert!(stored > 1000, "server {s} holds only {stored} pages");
    }
    // The spread is roughly even (load-aware round-robin).
    let counts: Vec<u64> = servers
        .iter()
        .map(|&s| sim.state().vmd.servers[s].server.stored_pages())
        .collect();
    let max = *counts.iter().max().unwrap() as f64;
    let min = *counts.iter().min().unwrap() as f64;
    assert!(max / min < 1.1, "uneven striping: {counts:?}");
    // Migrate with verification.
    let mig = migrate::start_migration(
        &mut sim,
        vm,
        dst,
        SourceConfig::new(Technique::Agile),
        96 * MIB,
    );
    sim.state_mut().migrations[mig].verify_content = true;
    while !sim.state().migrations[mig].finished && sim.now() < SimTime::from_secs(120) {
        let next = sim.now() + SimDuration::from_secs(1);
        sim.run_until(next);
    }
    assert!(sim.state().migrations[mig].finished);
}

/// When an intermediate host's memory fills, writes spill to its disk
/// tier; reads from the disk tier still return correct content (slower).
#[test]
fn disk_spill_tier_absorbs_overflow() {
    let mut b = ClusterBuilder::new(ClusterConfig::default());
    let host = b.add_host("host", 128 * MIB, 8 * MIB, false);
    // Tiny memory tier (4 MiB) + large disk tier; the host needs an SSD
    // for the spill device time.
    let im = b.add_host("intermediate", GIB, 8 * MIB, true);
    b.add_vmd_server(im, 4 * MIB, GIB);
    let vm = b.add_vm(host, vm_config(64 * MIB, 16 * MIB), SwapKind::PerVmVmd);
    b.preload_pages(vm, 0, (64 * MIB / 4096) as u32);
    let mut sim = b.build();
    let server = &sim.state().vmd.servers[0].server;
    assert!(server.memory_full(), "memory tier should be full");
    assert!(
        server.disk_pages() > 1000,
        "spill expected, got {}",
        server.disk_pages()
    );
    // Touch a swapped page: the fault must still complete (from whichever
    // tier) with correct content versions.
    let victim = (0..sim.state().vms[vm].vm.memory().pages())
        .find(|&p| sim.state().vms[vm].vm.memory().pagemap(p).is_swapped())
        .expect("swapped page exists");
    let expect_version = sim.state().vms[vm].vm.memory().version(victim);
    sim.schedule_at(SimTime::from_millis(10), move |sim| {
        let w = sim.state_mut();
        let _ = w.vms[vm].vm.memory_mut().touch(victim, false);
        let id = w.alloc_op(agile_cluster::world::OpExec {
            gen: 0,
            vm,
            touches: {
                let mut t = agile_workload::TouchList::new();
                t.push(victim, false);
                t
            },
            idx: 0,
            cpu: SimDuration::from_micros(5),
            response_bytes: 0,
            counts: false,
            respond: false,
        });
        let gen = w.ops[id].as_ref().unwrap().gen;
        agile_cluster::guest::step_op(sim, id, gen);
    });
    sim.run_until(SimTime::from_secs(3));
    let mem = sim.state().vms[vm].vm.memory();
    assert!(mem.pagemap(victim).is_present());
    assert_eq!(
        mem.version(victim),
        expect_version,
        "content survived the tiers"
    );
}

/// Availability gossip keeps a client's view converging toward server
/// truth even without acks (read-only periods).
#[test]
fn availability_gossip_converges() {
    let mut b = ClusterBuilder::new(ClusterConfig::default());
    let host = b.add_host("host", 128 * MIB, 8 * MIB, false);
    let im = b.add_host("intermediate", GIB, 8 * MIB, false);
    b.add_vmd_server(im, 256 * MIB, 0);
    let client_idx = b.ensure_vmd_client(host);
    let vm = b.add_vm(host, vm_config(64 * MIB, 16 * MIB), SwapKind::PerVmVmd);
    b.preload_pages(vm, 0, (64 * MIB / 4096) as u32);
    let mut sim = b.build();
    // Run a few gossip periods.
    sim.run_until(SimTime::from_secs(5));
    let truth = sim.state().vmd.servers[0].server.free_pages();
    let view = sim.state().vmd.clients[client_idx]
        .client
        .borrow()
        .known_free(agile_vmd::ServerId(0))
        .expect("server known");
    assert_eq!(view, truth, "gossip should synchronize the free count");
}
