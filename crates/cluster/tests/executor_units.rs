//! Focused tests of the cluster executor: VMD transport over the network,
//! guest request flow, reservation rebalancing, WSS sampling chain, and
//! the watermark trigger wiring.

use agile_cluster::build::{start_all_workloads, ClusterBuilder, SwapKind};
use agile_cluster::scenario::{desired_reservation, rebalance_host, set_reservation};
use agile_cluster::world::WorkloadKind;
use agile_cluster::{wssctl, ClusterConfig};
use agile_memory::Touch;
use agile_sim_core::{SimDuration, SimTime, GIB, MIB};
use agile_vm::VmConfig;
use agile_workload::{Dataset, KeyDist, YcsbParams, YcsbRedis};
use agile_wss::WatermarkTrigger;

fn vm_config(mem: u64, reservation: u64) -> VmConfig {
    VmConfig {
        mem_bytes: mem,
        page_size: 4096,
        vcpus: 2,
        reservation_bytes: reservation,
        guest_os_bytes: 2 * MIB,
    }
}

/// A guest fault on a VMD-backed page travels over the simulated network
/// to an intermediate host and back, and the op completes.
#[test]
fn vmd_fault_roundtrip_over_network() {
    let mut b = ClusterBuilder::new(ClusterConfig::default());
    let host = b.add_host("host", 64 * MIB, 4 * MIB, false);
    let im = b.add_host("intermediate", GIB, 4 * MIB, false);
    b.add_vmd_server(im, 512 * MIB, 0);
    let vm = b.add_vm(host, vm_config(32 * MIB, 16 * MIB), SwapKind::PerVmVmd);
    // Populate 32 MiB into a 16 MiB reservation: half the pages go to the
    // VMD (synchronously at preload).
    b.preload_pages(vm, 0, (32 * MIB / 4096) as u32);
    let mut sim = b.build();
    let swapped_before = sim.state().vms[vm].vm.memory().swapped_pages();
    assert!(swapped_before > 0, "preload must have evicted to the VMD");

    // Touch a swapped page directly through the guest path by scheduling a
    // tiny op via the workload-free API: we emulate it with a manual touch
    // + the fault machinery by running the simulation after an injected
    // client-less op. Easiest: drive a real YCSB op would need a client;
    // instead verify the VMD read path via the swap counters after the
    // simulation idles.
    let victim = (0..sim.state().vms[vm].vm.memory().pages())
        .find(|&p| sim.state().vms[vm].vm.memory().pagemap(p).is_swapped())
        .expect("a swapped page exists");
    // Fault it in through the executor path.
    sim.schedule_at(SimTime::from_millis(10), move |sim| {
        let w = sim.state_mut();
        let r = w.vms[vm].vm.memory_mut().touch(victim, false);
        assert!(matches!(r, Touch::MajorFault { .. }));
        // Issue through the guest engine by creating a minimal op.
        let id = w.alloc_op(agile_cluster::world::OpExec {
            gen: 0,
            vm,
            touches: {
                let mut t = agile_workload::TouchList::new();
                t.push(victim, false);
                t
            },
            idx: 0,
            cpu: SimDuration::from_micros(10),
            response_bytes: 0,
            counts: false,
            respond: false,
        });
        let gen = w.ops[id].as_ref().unwrap().gen;
        agile_cluster::guest::step_op(sim, id, gen);
    });
    sim.run_until(SimTime::from_secs(2));
    let mem = sim.state().vms[vm].vm.memory();
    assert!(
        mem.pagemap(victim).is_present(),
        "faulted page must be resident after the VMD round trip"
    );
    assert_eq!(mem.counters().major_faults, 1);
    // The read crossed the network: the intermediate host transmitted the
    // page back.
    let im_node = sim.state().hosts[im].node;
    assert!(sim.state().net.node_tx_bytes(im_node) >= 4096);
}

/// Closed-loop YCSB over the simulated network produces throughput, and
/// the meter records it.
#[test]
fn ycsb_closed_loop_produces_throughput() {
    let cfg = ClusterConfig::default();
    let page = cfg.page_size;
    let mut b = ClusterBuilder::new(cfg);
    let host = b.add_host("host", GIB, 8 * MIB, true);
    let cli = b.add_host("client", GIB, 8 * MIB, false);
    let vm = b.add_vm(host, vm_config(256 * MIB, 256 * MIB), SwapKind::HostSsd);
    let (ir, dr) = {
        let world = b.world_mut();
        let layout = world.vms[vm].vm.layout_mut();
        (
            layout.alloc_region("redis-index", 32),
            layout.alloc_region("redis-data", (128 * MIB / page) as u32),
        )
    };
    let dataset = Dataset::new(dr, 128 * MIB / 1024, 1024, page);
    let model = YcsbRedis::new(dataset, ir, KeyDist::UniformPrefix, YcsbParams::default());
    b.attach_workload(vm, cli, WorkloadKind::Ycsb(model));
    b.preload_layout(vm);
    let mut sim = b.build();
    start_all_workloads(&mut sim, SimTime::from_millis(100));
    sim.run_until(SimTime::from_secs(10));
    let total = sim.state().vms[vm].meter.total();
    // Everything resident: the single Redis thread should near its CPU cap
    // (~18k ops/s at 55 µs per GET).
    assert!(total > 100_000, "only {total} ops in 10 s");
    assert!(total < 200_000, "implausibly fast: {total}");
    // No major faults: the dataset fits.
    assert_eq!(sim.state().vms[vm].vm.memory().counters().major_faults, 0);
}

/// The same setup under a squeezed reservation thrashes: throughput drops
/// and the swap device sees traffic — the basic pressure mechanic of §V-A.
#[test]
fn squeezed_reservation_thrashes() {
    let cfg = ClusterConfig::default();
    let page = cfg.page_size;
    let mut b = ClusterBuilder::new(cfg);
    let host = b.add_host("host", GIB, 8 * MIB, true);
    let cli = b.add_host("client", GIB, 8 * MIB, false);
    // 128 MiB dataset, 64 MiB reservation.
    let vm = b.add_vm(host, vm_config(256 * MIB, 64 * MIB), SwapKind::HostSsd);
    let (ir, dr) = {
        let world = b.world_mut();
        let layout = world.vms[vm].vm.layout_mut();
        (
            layout.alloc_region("redis-index", 32),
            layout.alloc_region("redis-data", (128 * MIB / page) as u32),
        )
    };
    let dataset = Dataset::new(dr, 128 * MIB / 1024, 1024, page);
    let model = YcsbRedis::new(dataset, ir, KeyDist::UniformPrefix, YcsbParams::default());
    b.attach_workload(vm, cli, WorkloadKind::Ycsb(model));
    b.preload_layout(vm);
    let mut sim = b.build();
    start_all_workloads(&mut sim, SimTime::from_millis(100));
    sim.run_until(SimTime::from_secs(10));
    let total = sim.state().vms[vm].meter.total();
    assert!(
        total < 100_000,
        "throughput should collapse under thrash, got {total}"
    );
    let c = sim.state().vms[vm].vm.memory().counters();
    assert!(c.major_faults > 1_000, "no thrashing observed: {c:?}");
    assert!(sim.state().vms[vm].swap.counters().read_ops > 1_000);
}

/// Water-filling rebalance: modest VMs keep their demand, hungry ones
/// split the remainder.
#[test]
fn rebalance_waterfills() {
    let cfg = ClusterConfig::default();
    let page = cfg.page_size;
    let mut b = ClusterBuilder::new(cfg);
    let host = b.add_host("host", GIB + 16 * MIB, 16 * MIB, true);
    let cli = b.add_host("client", GIB, 8 * MIB, false);
    // Two VMs: one wants 128 MiB (small active set), one wants much more.
    let mut vms = Vec::new();
    for want_mb in [64u64, 512] {
        let vm = b.add_vm(host, vm_config(768 * MIB, 256 * MIB), SwapKind::HostSsd);
        let (ir, dr) = {
            let world = b.world_mut();
            let layout = world.vms[vm].vm.layout_mut();
            (
                layout.alloc_region("redis-index", 16),
                layout.alloc_region("redis-data", (512 * MIB / page) as u32),
            )
        };
        let dataset = Dataset::new(dr, 512 * MIB / 1024, 1024, page);
        let mut model = YcsbRedis::new(dataset, ir, KeyDist::UniformPrefix, YcsbParams::default());
        model.set_active_bytes(want_mb * MIB);
        b.attach_workload(vm, cli, WorkloadKind::Ycsb(model));
        vms.push(vm);
    }
    let mut sim = b.build();
    let slack = 8 * MIB;
    let d0 = desired_reservation(sim.state(), vms[0], slack);
    let d1 = desired_reservation(sim.state(), vms[1], slack);
    assert!(d0 < d1);
    rebalance_host(&mut sim, host, slack);
    let r0 = sim.state().vms[vms[0]].vm.memory().limit_bytes();
    let r1 = sim.state().vms[vms[1]].vm.memory().limit_bytes();
    // Small VM fully satisfied; big VM gets the rest (capped by demand).
    assert_eq!(r0, d0.min(r0 + 1), "small VM satisfied: {r0} vs {d0}");
    assert!(r1 > r0);
    let avail = sim.state().hosts[host].mem.available_for_vms();
    assert!(r0 + r1 <= avail, "overcommitted: {} > {avail}", r0 + r1);
    // Host ledger reflects the grants.
    assert_eq!(
        sim.state().hosts[host].mem.reservation(vms[0] as u64),
        Some(r0)
    );
}

/// set_reservation shrink evicts immediately and charges the device.
#[test]
fn set_reservation_shrink_evicts() {
    let mut b = ClusterBuilder::new(ClusterConfig::default());
    let host = b.add_host("host", GIB, 8 * MIB, true);
    let vm = b.add_vm(host, vm_config(64 * MIB, 64 * MIB), SwapKind::HostSsd);
    b.preload_pages(vm, 0, (64 * MIB / 4096) as u32);
    let mut sim = b.build();
    assert_eq!(sim.state().vms[vm].vm.memory().swapped_pages(), 0);
    set_reservation(&mut sim, vm, 16 * MIB);
    let mem = sim.state().vms[vm].vm.memory();
    assert_eq!(mem.limit_bytes(), 16 * MIB);
    assert!(mem.resident_pages() <= mem.limit_pages());
    assert!(mem.swapped_pages() > 0);
    // Device counters saw the write-back (clustered runs).
    assert!(sim.state().vms[vm].swap.counters().write_ops > 0);
}

/// The trigger's first check fires one period after *arming* — not at
/// `ZERO + period` — and the returned handle stops the recurrence.
#[test]
fn watermark_trigger_anchors_at_arming_and_disarms() {
    let mut b = ClusterBuilder::new(ClusterConfig::default());
    let host = b.add_host("host", 256 * MIB, 16 * MIB, true);
    let standby = b.add_host("standby", 256 * MIB, 16 * MIB, true);
    let im = b.add_host("intermediate", 2 * GIB, 16 * MIB, false);
    b.add_vmd_server(im, GIB, 0);
    b.ensure_vmd_client(standby);
    let mut vms = Vec::new();
    for _ in 0..3 {
        let vm = b.add_vm(host, vm_config(96 * MIB, 48 * MIB), SwapKind::PerVmVmd);
        b.preload_pages(vm, 0, (96 * MIB / 4096) as u32);
        vms.push(vm);
    }
    let mut sim = b.build();
    // Put the host over the high watermark *before* the trigger exists.
    set_reservation(&mut sim, vms[0], 96 * MIB);
    sim.run_until(SimTime::from_secs(10));

    // Arm mid-run with a 5 s period: the first check belongs at t = 15 s.
    let avail = sim.state().hosts[host].mem.available_for_vms();
    let trigger = WatermarkTrigger::fractions(avail, 0.60, 0.75);
    let handle = wssctl::arm_watermark_trigger(
        &mut sim,
        host,
        standby,
        trigger,
        SimDuration::from_secs(5),
        agile_migration::SourceConfig::new(agile_migration::Technique::Agile),
        96 * MIB,
    );
    assert!(handle.is_armed());
    sim.run_until(SimTime::from_millis(14_900));
    assert!(
        sim.state().migrations.is_empty(),
        "fired before arming-time + period"
    );
    sim.run_until(SimTime::from_secs(30));
    assert_eq!(sim.state().migrations.len(), 1, "first check never fired");
    assert!(sim.state().migrations[0].finished);

    // Disarm, re-overload the host, and verify the trigger stays quiet.
    handle.disarm();
    assert!(!handle.is_armed());
    set_reservation(&mut sim, vms[1], 96 * MIB);
    set_reservation(&mut sim, vms[2], 96 * MIB);
    sim.run_until(SimTime::from_secs(90));
    assert_eq!(
        sim.state().migrations.len(),
        1,
        "disarmed trigger still fired"
    );
}

/// Regression: the swap-activity window must re-prime after a migration
/// pause. The first post-resume sample used to difference cumulative
/// counters across the entire paused interval (and across the swap-device
/// swap at resume), recording a spurious rate immediately; now the first
/// post-resume tick only primes, so the first recorded sample lands at
/// least one full sampling interval after the migration completes.
#[test]
fn wss_monitor_reprimes_after_migration_pause() {
    let mut b = ClusterBuilder::new(ClusterConfig::default());
    let host = b.add_host("host", 256 * MIB, 16 * MIB, true);
    let standby = b.add_host("standby", 256 * MIB, 16 * MIB, true);
    let im = b.add_host("intermediate", 2 * GIB, 16 * MIB, false);
    b.add_vmd_server(im, GIB, 0);
    b.ensure_vmd_client(standby);
    let vm = b.add_vm(host, vm_config(96 * MIB, 48 * MIB), SwapKind::PerVmVmd);
    b.preload_pages(vm, 0, (96 * MIB / 4096) as u32);
    let mut sim = b.build();
    sim.state_mut().trace = agile_trace::Tracer::with_capacity(1 << 12);

    let params = agile_wss::ControllerParams::paper(16 * MIB, 96 * MIB);
    let fast = params.fast_interval;
    wssctl::enable_tracking(&mut sim, vm, params, SimTime::from_secs(1));
    sim.run_until(SimTime::from_secs(10));
    agile_cluster::migrate::start_migration(
        &mut sim,
        vm,
        standby,
        agile_migration::SourceConfig::new(agile_migration::Technique::Agile),
        96 * MIB,
    );
    sim.run_until(SimTime::from_secs(40));
    assert!(sim.state().migrations[0].finished);

    let trace = &sim.state().trace;
    let completed_at = trace
        .events()
        .find_map(|(t, e)| matches!(e, agile_trace::TraceEvent::MigComplete { .. }).then_some(*t))
        .expect("migration completed");
    let first_after = trace
        .events()
        .find_map(|(t, e)| {
            (matches!(e, agile_trace::TraceEvent::WssSample { .. }) && *t > completed_at)
                .then_some(*t)
        })
        .expect("sampling resumed after the migration");
    assert!(
        first_after.saturating_since(completed_at) > fast,
        "window was not re-primed: sample at {first_after:?} only \
         {:?} after completion at {completed_at:?}",
        first_after.saturating_since(completed_at)
    );
}

/// The watermark trigger, armed on a host, fires a real migration once
/// the aggregate reservations exceed the high watermark.
#[test]
fn watermark_trigger_fires_migration() {
    let mut b = ClusterBuilder::new(ClusterConfig::default());
    let host = b.add_host("host", 256 * MIB, 16 * MIB, true);
    let standby = b.add_host("standby", 256 * MIB, 16 * MIB, true);
    let im = b.add_host("intermediate", 2 * GIB, 16 * MIB, false);
    b.add_vmd_server(im, GIB, 0);
    b.ensure_vmd_client(standby);
    let mut vms = Vec::new();
    for _ in 0..3 {
        let vm = b.add_vm(host, vm_config(96 * MIB, 48 * MIB), SwapKind::PerVmVmd);
        b.preload_pages(vm, 0, (96 * MIB / 4096) as u32);
        vms.push(vm);
    }
    let mut sim = b.build();
    let avail = sim.state().hosts[host].mem.available_for_vms();
    let trigger = WatermarkTrigger::fractions(avail, 0.60, 0.75);
    wssctl::arm_watermark_trigger(
        &mut sim,
        host,
        standby,
        trigger,
        SimDuration::from_secs(1),
        agile_migration::SourceConfig::new(agile_migration::Technique::Agile),
        96 * MIB,
    );
    // Aggregate 144 MiB on 240 MiB available = 60% — under the high mark.
    sim.run_until(SimTime::from_secs(3));
    assert!(sim.state().migrations.is_empty(), "fired too early");
    // Raise one VM's reservation: aggregate 80%+ crosses the watermark.
    set_reservation(&mut sim, vms[0], 96 * MIB);
    sim.run_until(SimTime::from_secs(30));
    assert!(
        !sim.state().migrations.is_empty(),
        "watermark trigger never fired"
    );
    // The fewest-VMs rule picked the largest (vms[0]).
    assert_eq!(sim.state().migrations[0].vm, vms[0]);
    assert!(sim.state().migrations[0].finished);
    // And the host's aggregate is back under the low watermark.
    let agg: u64 = wssctl::host_wss(&sim, host)
        .iter()
        .map(|v| v.wss_bytes)
        .sum();
    assert!(agg <= trigger.low_bytes, "{agg} > {}", trigger.low_bytes);
}
