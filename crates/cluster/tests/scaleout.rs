//! Rapid scale-out cloning: golden determinism, sharded equivalence,
//! the streamed-vs-precopy gates at test scale, chaos survival under
//! replication, the in-place upgrade knob, and the Fixed-tier
//! read-queueing model the hydration burst leans on.

use agile_cluster::build::{ClusterBuilder, SwapKind};
use agile_cluster::scenario::scaleout::{self, CloneArm, ScaleoutConfig};
use agile_cluster::ClusterConfig;
use agile_sim_core::{FixedHistogram, SimDuration, SimTime, GIB, MIB};
use agile_vm::VmConfig;
use agile_vmd::{HeatPolicy, TierBacking, TierCapacity, TierSpec, TierStackConfig};

/// The small test-scale config: 8 clones over 2 destination hosts at
/// 1/64 of paper byte sizes (runs in a couple of wall seconds).
fn small(arm: CloneArm) -> ScaleoutConfig {
    ScaleoutConfig {
        arm,
        clones: 8,
        dest_hosts: 2,
        scale: 64,
        ..ScaleoutConfig::default()
    }
}

/// Two identical runs produce byte-identical results — report string,
/// digest, event count and every metric.
#[test]
fn golden_run_twice_byte_identical() {
    let a = scaleout::run(&small(CloneArm::Streamed));
    let b = scaleout::run(&small(CloneArm::Streamed));
    assert_eq!(a, b);
    assert_eq!(a.spawned, 8);
    assert_eq!(a.ready, 8);
    assert_eq!(a.torn_down, 8);
}

/// The sharded epoch driver reproduces the sequential results exactly at
/// every worker count, and the in-run A/B gates hold at test scale:
/// streamed cloning serves first pages sooner and moves fewer fabric
/// bytes than precopy, while both arms break CoW shares once the clones
/// start taking writes.
#[test]
fn sharded_matches_sequential_and_streaming_wins() {
    let cfgs = [small(CloneArm::Streamed), small(CloneArm::Precopy)];
    let seq: Vec<_> = cfgs.iter().map(scaleout::run).collect();
    for workers in [1, 2, 4] {
        let sharded = scaleout::run_replicated(&cfgs, workers);
        assert_eq!(sharded, seq, "sharded divergence at {workers} workers");
    }
    let (s, p) = (&seq[0], &seq[1]);
    assert_eq!(s.ready, 8);
    assert_eq!(p.ready, 8);
    assert!(
        s.ttfps_mean_ns < p.ttfps_mean_ns,
        "streamed must serve first pages sooner: {} vs {}",
        s.ttfps_mean_ns,
        p.ttfps_mean_ns
    );
    assert!(
        s.fabric_bytes < p.fabric_bytes,
        "streamed must move fewer fabric bytes: {} vs {}",
        s.fabric_bytes,
        p.fabric_bytes
    );
    assert!(
        s.hydrated_pages < p.hydrated_pages,
        "teardown must cancel most of the streamed hydration"
    );
    assert!(
        s.cow_breaks > 0 && p.cow_breaks > 0,
        "clones never diverged"
    );
    assert_eq!(s.lost_reads, 0);
    assert_eq!(p.lost_reads, 0);
}

/// A replica server crashes mid-hydration and rejoins empty; at k = 2
/// every shared gold-image page survives on the other replica — no read
/// ever completes with lost content and the whole fleet still serves
/// and tears down.
#[test]
fn chaos_replica_crash_mid_hydration_loses_nothing() {
    let cfg = ScaleoutConfig {
        chaos: true,
        ..small(CloneArm::Streamed)
    };
    let r = scaleout::run(&cfg);
    assert_eq!(r.lost_reads, 0, "k=2 replication must mask the crash");
    assert_eq!(r.ready, 8, "every clone must still serve");
    assert_eq!(r.torn_down, 8, "every clone must still tear down");
}

/// The zero-downtime in-place upgrade knob: the first clone lands on the
/// master's own host and the master namespace is purged once the fleet
/// serves — shared pages survive through the fork refcounts, so nothing
/// is lost and every clone still becomes ready.
#[test]
fn upgrade_retires_master_namespace_in_place() {
    let cfg = ScaleoutConfig {
        upgrade: true,
        ..small(CloneArm::Streamed)
    };
    let r = scaleout::run(&cfg);
    assert!(r.master_purged, "upgrade must retire the master namespace");
    assert_eq!(r.ready, 8);
    assert_eq!(r.torn_down, 8);
    assert_eq!(r.lost_reads, 0);
}

/// Issue two concurrent major faults against pages held by a
/// `Fixed`-backed far-memory tier and report the guest-visible fault
/// histogram `(count, max_ns)`.
fn two_concurrent_fixed_tier_faults(queueing: bool) -> (u64, u64) {
    const FAR_READ: SimDuration = SimDuration::from_micros(500);
    let mut cfg = ClusterConfig {
        vmd_fixed_tier_queueing: queueing,
        ..ClusterConfig::default()
    };
    let page = cfg.page_size;
    let far = TierSpec {
        capacity: TierCapacity::Pages(1 << 20),
        backing: TierBacking::Fixed {
            read: FAR_READ,
            write: SimDuration::from_micros(50),
        },
        read_cost: FAR_READ,
    };
    // A 2-page DRAM head: effectively everything lands in far memory.
    cfg.vmd_tiers = TierStackConfig::new(&[TierSpec::dram(), far], HeatPolicy::default());

    let mut b = ClusterBuilder::new(cfg);
    let host = b.add_host("host", 128 * MIB, 8 * MIB, false);
    let im = b.add_host("intermediate", GIB, 8 * MIB, false);
    b.add_vmd_server(im, 2 * page, 0);
    let vm = b.add_vm(
        host,
        VmConfig {
            mem_bytes: 64 * MIB,
            page_size: page,
            vcpus: 2,
            reservation_bytes: 16 * MIB,
            guest_os_bytes: 2 * MIB,
        },
        SwapKind::PerVmVmd,
    );
    b.preload_pages(vm, 0, (64 * MIB / page) as u32);
    let mut sim = b.build();
    sim.state_mut().fault_hist = Some(Box::new(FixedHistogram::new()));

    // The first couple of preload write-backs land in the 2-page DRAM
    // head tier; pages from the tail of the image are guaranteed to sit
    // in the Fixed-backed spill tier.
    let (a, bpfn) = {
        let mem = sim.state().vms[vm].vm.memory();
        let swapped: Vec<u32> = (0..mem.pages())
            .filter(|&p| mem.pagemap(p).is_swapped())
            .collect();
        assert!(swapped.len() > 4, "spill expected");
        (swapped[swapped.len() - 2], swapped[swapped.len() - 1])
    };
    sim.schedule_at(SimTime::from_millis(10), move |sim| {
        for pfn in [a, bpfn] {
            let w = sim.state_mut();
            let id = w.alloc_op(agile_cluster::world::OpExec {
                gen: 0,
                vm,
                touches: {
                    let mut t = agile_workload::TouchList::new();
                    t.push(pfn, false);
                    t
                },
                idx: 0,
                cpu: SimDuration::from_micros(5),
                response_bytes: 0,
                counts: false,
                respond: false,
            });
            let gen = w.ops[id].as_ref().unwrap().gen;
            agile_cluster::guest::step_op(sim, id, gen);
        }
    });
    sim.run_until(SimTime::from_secs(2));
    let hist = sim.state().fault_hist.as_ref().expect("armed");
    (hist.count(), hist.max_ns())
}

/// A far-memory tier has one transfer engine, not infinite parallelism:
/// with `vmd_fixed_tier_queueing` on, the second of two concurrent
/// faults waits for the first's device time instead of overlapping for
/// free. Off (the legacy model) both faults overlap and the worst-case
/// latency stays near a single device read.
#[test]
fn fixed_tier_queueing_serializes_concurrent_faults() {
    let (n_off, max_off) = two_concurrent_fixed_tier_faults(false);
    let (n_on, max_on) = two_concurrent_fixed_tier_faults(true);
    assert_eq!(n_off, 2);
    assert_eq!(n_on, 2);
    assert!(
        max_on >= max_off + 400_000,
        "queued second fault must pay most of the first's 500 µs device \
         time: queued max {max_on} ns vs unqueued max {max_off} ns"
    );
}
