//! Result extraction and analysis helpers for the paper's figures/tables.

use agile_sim_core::{SimTime, ThroughputMeter};

use crate::world::World;

/// Throughput time series averaged across a set of VMs (the y-axis of
/// Figures 4–6): per-second mean completions/s per VM.
pub fn average_throughput_series(world: &World, vms: &[usize]) -> Vec<(u64, f64)> {
    assert!(!vms.is_empty());
    let meters: Vec<&ThroughputMeter> = vms.iter().map(|&v| &world.vms[v].meter).collect();
    let merged = ThroughputMeter::merged(&meters);
    merged
        .rates()
        .into_iter()
        .map(|(t, r)| (t, r / vms.len() as f64))
        .collect()
}

/// Mean per-VM throughput over `[from, to)` seconds (Table I).
pub fn average_throughput_in_window(world: &World, vms: &[usize], from: u64, to: u64) -> f64 {
    assert!(!vms.is_empty());
    let total: f64 = vms
        .iter()
        .map(|&v| world.vms[v].meter.rate_in_window(from, to))
        .sum();
    total / vms.len() as f64
}

/// First time after `after` at which the smoothed (window `smooth` s)
/// average throughput across `vms` recovers to `fraction` of `reference`.
/// Returns seconds since t = 0, or `None` if it never recovers.
pub fn recovery_time(
    world: &World,
    vms: &[usize],
    after: SimTime,
    reference: f64,
    fraction: f64,
    smooth: u64,
) -> Option<u64> {
    let series = average_throughput_series(world, vms);
    if series.is_empty() {
        return None;
    }
    let target = reference * fraction;
    let start = after.as_secs();
    let last = series.last().map(|(t, _)| *t).unwrap_or(0);
    for t in start..last.saturating_sub(smooth) {
        let window: Vec<f64> = series
            .iter()
            .filter(|(s, _)| *s >= t && *s < t + smooth)
            .map(|(_, r)| *r)
            .collect();
        if window.is_empty() {
            continue;
        }
        let mean = window.iter().sum::<f64>() / window.len() as f64;
        if mean >= target {
            return Some(t);
        }
    }
    None
}

/// The completed migration metrics of migration `mig`.
pub fn migration_metrics(world: &World, mig: usize) -> &agile_migration::MigrationMetrics {
    world.migrations[mig].src.metrics()
}

/// Fold migration `mig`'s phase log, source totals, and destination
/// counters into the exportable [`PhaseTimeline`].
pub fn phase_timeline(
    world: &World,
    mig: usize,
    scenario: &str,
    seed: u64,
) -> agile_trace::PhaseTimeline {
    let m = &world.migrations[mig];
    let met = m.src.metrics();
    agile_trace::PhaseTimeline {
        scenario: scenario.to_string(),
        technique: met.technique.to_string(),
        seed,
        rounds: met.rounds,
        retries: m.retries,
        downtime_ns: met.downtime().map(|d| d.as_nanos()),
        total_ns: met.total_time().map(|d| d.as_nanos()),
        live_ns: met.live_phase().map(|d| d.as_nanos()),
        push_set_pages: met.push_set_pages,
        migration_bytes: met.migration_bytes,
        pages_sent_full: met.pages_sent_full,
        pages_sent_as_offsets: met.pages_sent_as_offsets,
        pages_sent_zero: met.pages_sent_zero,
        pages_retransmitted: met.pages_retransmitted,
        pages_swapped_in_for_transfer: met.pages_swapped_in_for_transfer,
        pages_demand_from_source: met.pages_demand_from_source,
        dest_pages_installed_stream: m.dst.pages_installed_stream,
        dest_pages_faulted_from_swap: m.dst.pages_faulted_from_swap,
        dest_pages_faulted_from_source: m.dst.pages_faulted_from_source,
        dest_duplicate_pages_ignored: m.dst.duplicate_pages_ignored,
        dest_pages_discarded_at_resume: m.dst.pages_discarded_at_resume,
        phases: met.phase_log.clone(),
    }
}

/// Publish every migration's counters (prefixed `mig<i>.`) plus the
/// chaos-recovery totals into a typed [`agile_trace::MetricsRegistry`] —
/// the structured replacement for ad-hoc per-field result structs.
pub fn metrics_registry(world: &World) -> agile_trace::MetricsRegistry {
    let mut reg = agile_trace::MetricsRegistry::new();
    for (i, m) in world.migrations.iter().enumerate() {
        m.src.metrics().publish_to(&mut reg, &format!("mig{i}."));
        reg.set_counter(&format!("mig{i}.retries"), u64::from(m.retries));
        reg.set_counter(
            &format!("mig{i}.pages_lost_on_conn_drop"),
            m.pages_lost_on_conn_drop,
        );
        reg.set_counter(
            &format!("mig{i}.dest_pages_installed_stream"),
            m.dst.pages_installed_stream,
        );
        reg.set_counter(
            &format!("mig{i}.dest_pages_faulted_from_swap"),
            m.dst.pages_faulted_from_swap,
        );
        reg.set_counter(
            &format!("mig{i}.dest_pages_faulted_from_source"),
            m.dst.pages_faulted_from_source,
        );
    }
    reg.set_counter("chaos.conn_drops", world.chaos.conn_drops);
    reg.set_counter("chaos.lost_reads", world.chaos.lost_reads);
    reg.set_counter("chaos.slots_repaired", world.chaos.slots_repaired);
    reg.set_counter("chaos.slots_lost", world.chaos.total_slots_lost());
    // WSS estimator rows only when the simulated-PML machinery ran:
    // legacy (swap-I/O-only) metrics JSON stays byte-identical.
    if world.wss_counters.epoch_drains > 0 {
        reg.set_counter("wss.samples", world.wss_counters.samples);
        reg.set_counter("wss.epoch_drains", world.wss_counters.epoch_drains);
        reg.set_counter("wss.pml_overflows", world.wss_counters.pml_overflows);
    }
    if let Some(s) = &world.sched {
        reg.set_counter("sched.started", s.counters.started);
        reg.set_counter("sched.queued", s.counters.queued);
        reg.set_counter("sched.deferred_no_dest", s.counters.deferred_no_dest);
        reg.set_counter("sched.dropped_recovered", s.counters.dropped_recovered);
        reg.set_counter("sched.completed", s.counters.completed);
        reg.set_counter("sched.max_in_flight", s.counters.max_in_flight_observed);
        if let Some(p) = &s.predict {
            reg.set_counter("sched.predict.cycles_detected", p.counters.cycles_detected);
            reg.set_counter("sched.predict.deferrals", p.counters.deferrals);
            reg.set_counter("sched.predict.window_expiries", p.counters.window_expiries);
            reg.set_counter("sched.predict.trough_hits", p.counters.trough_hits);
            reg.set_counter("sched.predict.trough_misses", p.counters.trough_misses);
            reg.set_counter("sched.predict.cancelled", p.counters.cancelled);
        }
    }
    if let Some(wl) = &world.wldrv {
        reg.set_counter("wl.ticks", wl.counters.ticks);
        reg.set_counter("wl.actions", wl.counters.actions);
    }
    if let Some(c) = &world.clone {
        reg.set_counter("clone.forks", c.counters.forks);
        reg.set_counter("clone.spawned", c.counters.spawned);
        reg.set_counter("clone.ready", c.counters.ready);
        reg.set_counter("clone.torn_down", c.counters.torn_down);
        reg.set_counter("clone.cow_breaks", c.counters.cow_breaks);
        reg.set_counter("clone.hydrated_pages", c.counters.hydrated_pages);
    }
    if let Some(p) = &world.pool {
        reg.set_counter("pool.leases_shrunk", p.counters.leases_shrunk);
        reg.set_counter("pool.leases_grown", p.counters.leases_grown);
        reg.set_counter("pool.pages_relocated", p.counters.pages_relocated);
        reg.set_counter("pool.pages_demoted", p.counters.pages_demoted);
        reg.set_counter("pool.relocations_aborted", p.counters.relocations_aborted);
        reg.set_counter("pool.rebalance_moves", p.counters.rebalance_moves);
        reg.set_counter("pool.throttled_flushes", p.counters.throttled_flushes);
        reg.set_counter("pool.deferred_shrinks", p.counters.deferred_shrinks);
        reg.set_gauge("pool.pressure", crate::poolctl::pressure(world));
        reg.set_gauge("pool.spread", crate::poolctl::spread(world));
        reg.set_gauge(
            "pool.leased_free_pages",
            crate::poolctl::leased_free_pages(world) as f64,
        );
    }
    reg
}

/// Render a `(seconds, value)` series as CSV.
pub fn series_to_csv(header: &str, series: &[(u64, f64)]) -> String {
    let mut s = String::with_capacity(series.len() * 12 + header.len() + 1);
    s.push_str(header);
    s.push('\n');
    for (t, v) in series {
        s.push_str(&format!("{t},{v:.2}\n"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_to_csv_renders() {
        let csv = series_to_csv("t,v", &[(0, 1.0), (5, 2.25)]);
        assert_eq!(csv, "t,v\n0,1.00\n5,2.25\n");
    }
}
