//! Result extraction and analysis helpers for the paper's figures/tables.

use agile_sim_core::{SimTime, ThroughputMeter};

use crate::world::World;

/// Throughput time series averaged across a set of VMs (the y-axis of
/// Figures 4–6): per-second mean completions/s per VM.
pub fn average_throughput_series(world: &World, vms: &[usize]) -> Vec<(u64, f64)> {
    assert!(!vms.is_empty());
    let meters: Vec<&ThroughputMeter> = vms.iter().map(|&v| &world.vms[v].meter).collect();
    let merged = ThroughputMeter::merged(&meters);
    merged
        .rates()
        .into_iter()
        .map(|(t, r)| (t, r / vms.len() as f64))
        .collect()
}

/// Mean per-VM throughput over `[from, to)` seconds (Table I).
pub fn average_throughput_in_window(world: &World, vms: &[usize], from: u64, to: u64) -> f64 {
    assert!(!vms.is_empty());
    let total: f64 = vms
        .iter()
        .map(|&v| world.vms[v].meter.rate_in_window(from, to))
        .sum();
    total / vms.len() as f64
}

/// First time after `after` at which the smoothed (window `smooth` s)
/// average throughput across `vms` recovers to `fraction` of `reference`.
/// Returns seconds since t = 0, or `None` if it never recovers.
pub fn recovery_time(
    world: &World,
    vms: &[usize],
    after: SimTime,
    reference: f64,
    fraction: f64,
    smooth: u64,
) -> Option<u64> {
    let series = average_throughput_series(world, vms);
    if series.is_empty() {
        return None;
    }
    let target = reference * fraction;
    let start = after.as_secs();
    let last = series.last().map(|(t, _)| *t).unwrap_or(0);
    for t in start..last.saturating_sub(smooth) {
        let window: Vec<f64> = series
            .iter()
            .filter(|(s, _)| *s >= t && *s < t + smooth)
            .map(|(_, r)| *r)
            .collect();
        if window.is_empty() {
            continue;
        }
        let mean = window.iter().sum::<f64>() / window.len() as f64;
        if mean >= target {
            return Some(t);
        }
    }
    None
}

/// The completed migration metrics of migration `mig`.
pub fn migration_metrics(world: &World, mig: usize) -> &agile_migration::MigrationMetrics {
    world.migrations[mig].src.metrics()
}

/// Render a `(seconds, value)` series as CSV.
pub fn series_to_csv(header: &str, series: &[(u64, f64)]) -> String {
    let mut s = String::with_capacity(series.len() * 12 + header.len() + 1);
    s.push_str(header);
    s.push('\n');
    for (t, v) in series {
        s.push_str(&format!("{t},{v:.2}\n"));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_to_csv_renders() {
        let csv = series_to_csv("t,v", &[(0, 1.0), (5, 2.25)]);
        assert_eq!(csv, "t,v\n0,1.00\n5,2.25\n");
    }
}
