//! # agile-cluster
//!
//! The cluster executor: connects every sans-IO component — migration
//! sessions ([`agile_migration`]), the VMD ([`agile_vmd`]), workload
//! models ([`agile_workload`]), and the WSS controller ([`agile_wss`]) —
//! to the simulated network, block devices, and VM memory of
//! [`agile_sim_core`]/[`agile_memory`], and provides the scenario library
//! that reproduces each of the paper's experiments.
//!
//! Layers:
//!
//! * [`build::ClusterBuilder`] — assemble hosts, the VMD pool, VMs with
//!   their swap bindings, and workloads.
//! * [`guest`] — the request engine: closed-loop clients, server worker
//!   queues, page-touch execution with fault parking, vCPU contention.
//! * [`migrate`] — drives pre-copy / post-copy / Agile migrations
//!   end-to-end, including the suspend/resume handover.
//! * [`wssctl`] — transparent working-set tracking and the watermark
//!   trigger.
//! * [`sched`] — the cluster-scale watermark scheduler: destination
//!   placement, ping-pong guard, admission control.
//! * [`poolctl`] — the elastic pool manager: contribution leases sized
//!   from donor-host demand, paced reclaim, skew-aware rebalancing.
//! * [`clonectl`] — rapid scale-out: copy-on-write namespace forks and
//!   memory-streaming VM cloning off a sealed gold image.
//! * [`scenario`] — ready-made reproductions of Figures 4–10 and
//!   Tables I–III.

pub mod build;
pub mod chaosctl;
pub mod clonectl;
pub mod config;
pub mod fast;
pub mod guest;
pub mod migrate;
pub mod netdrv;
pub mod poolctl;
pub mod predict;
pub mod report;
pub mod scenario;
pub mod sched;
pub mod shard;
pub mod vmdio;
pub mod wlctl;
pub mod world;
pub mod wssctl;

pub use build::{start_all_workloads, ClusterBuilder, SwapKind};
pub use config::ClusterConfig;
pub use world::{WorkloadKind, World};
