//! Network driver: the glue between the sans-scheduler fluid network and
//! the event queue.
//!
//! After any network mutation the driver re-arms a poll event at
//! [`agile_sim_core::Network::next_event_time`]; the poll collects due
//! deliveries and dispatches each to the subsystem its payload belongs to.
//! Superseded poll events fire harmlessly (they poll, find little, and
//! re-arm), which keeps the bookkeeping to a single armed slot.
//!
//! The driver state is per-world, not global: in a sharded run every shard
//! owns its own [`NetDriver`], so an idle shard arms no poll events and a
//! busy neighbor cannot wake it.

use agile_sim_core::{Delivery, FastEvent, SimTime, Simulation};

use crate::world::{NetPayload, World};
use crate::{guest, migrate, vmdio};

/// Per-world network-poll bookkeeping plus poll counters.
#[derive(Debug, Default)]
pub struct NetDriver {
    /// The single armed poll event, if any.
    pub armed: Option<(SimTime, agile_sim_core::EventId)>,
    /// Poll events executed on this world.
    pub polls: u64,
    /// Polls that drained zero deliveries (superseded arms firing late).
    pub idle_polls: u64,
}

/// Re-arm the poll event if the network's next event precedes the armed
/// one; the superseded event is cancelled so exactly one poll event is
/// ever pending. Call after every send/open/close.
pub fn touch_net(sim: &mut Simulation<World>) {
    let Some(next) = sim.state().net.next_event_time() else {
        return;
    };
    if let Some((t, _)) = sim.state().netdrv.armed {
        if t <= next {
            return;
        }
    }
    if let Some((_, old)) = sim.state_mut().netdrv.armed.take() {
        sim.cancel(old);
    }
    let id = sim.schedule_fast(next, FastEvent::FlowDue { token: 0 });
    sim.state_mut().netdrv.armed = Some((next, id));
}

/// The poll event: drain due deliveries, dispatch, re-arm.
pub(crate) fn poll_net(sim: &mut Simulation<World>) {
    sim.state_mut().netdrv.armed = None;
    let now = sim.now();
    let deliveries = sim.state_mut().net.poll(now);
    let drv = &mut sim.state_mut().netdrv;
    drv.polls += 1;
    if deliveries.is_empty() {
        drv.idle_polls += 1;
    }
    for d in deliveries {
        dispatch(sim, d);
    }
    touch_net(sim);
}

/// Route one delivery to its handler.
fn dispatch(sim: &mut Simulation<World>, d: Delivery) {
    let payload = sim
        .state_mut()
        .payloads
        .remove(&d.tag)
        .expect("delivery with unknown tag");
    match payload {
        NetPayload::Request { vm, op, counts } => guest::on_request(sim, vm, op, counts),
        NetPayload::Response { vm, counts } => guest::on_response(sim, vm, counts),
        NetPayload::MigChunk {
            mig,
            chunk,
            priority,
        } => migrate::on_chunk_delivered(sim, mig, chunk, priority),
        NetPayload::MigHandoff { mig } => migrate::on_handoff_delivered(sim, mig),
        NetPayload::DemandReq { mig, pfn } => migrate::on_demand_request(sim, mig, pfn),
        NetPayload::VmdToServer {
            server,
            client,
            msg,
        } => vmdio::on_server_recv(sim, server, client, msg),
        NetPayload::VmdToClient {
            client,
            server,
            msg,
        } => vmdio::on_client_recv(sim, client, server, msg),
    }
}
