//! Migration executor: drives the source/destination protocol sessions
//! against the simulated network, swap devices, and VM memory images.
//!
//! The executor owns the operational concerns the sans-IO sessions left
//! out: flow control (a window of chunks in flight on the bulk stream),
//! charging Migration-Manager swap-ins to the source swap device (where
//! they contend with the guest's own paging — the §V-B thrashing), the
//! suspend/resume choreography (memory image and swap-device handover,
//! client-connection limbo), and end-of-migration accounting.

use agile_memory::SsdSwap;
use agile_memory::{SwapIssue, VmMemory, VmMemoryConfig};
use agile_migration::{DestSession, SourceCmd, SourceConfig, SourceEvent, SourceSession};
use agile_sim_core::{SimDuration, SimTime, Simulation};
use agile_trace::TraceEvent;
use agile_vm::{HostId, VmState};
use agile_vmd::VmdSwapDevice;

use crate::guest::{self, charge_evictions, EvictTarget};
use crate::netdrv::touch_net;
use crate::world::{MigrationExec, NetPayload, SwapDev, SwapReqCtx, World};

/// Static technique name for trace events (events are `Copy`, so the
/// technique travels as a `&'static str` rather than a display string).
fn technique_name(t: agile_migration::Technique) -> &'static str {
    match t {
        agile_migration::Technique::PreCopy => "pre-copy",
        agile_migration::Technique::PostCopy => "post-copy",
        agile_migration::Technique::Agile => "agile",
    }
}

/// Begin migrating `vm_idx` to `dest_host`. Returns the migration index.
///
/// `dest_reservation_bytes` is the cgroup reservation the VM receives at
/// the destination (the paper's YCSB experiment gives the migrated VM the
/// whole free destination host).
pub fn start_migration(
    sim: &mut Simulation<World>,
    vm_idx: usize,
    dest_host: usize,
    src_cfg: SourceConfig,
    dest_reservation_bytes: u64,
) -> usize {
    let now = sim.now();
    let mig = {
        let w = sim.state_mut();
        let source_host = w.vms[vm_idx].host;
        assert_ne!(source_host, dest_host, "migration to the same host");
        assert!(w.vms[vm_idx].migration.is_none(), "VM already migrating");
        let src_node = w.hosts[source_host].node;
        let dst_node = w.hosts[dest_host].node;
        let stream_ch = w.net.open_channel(src_node, dst_node);
        let demand_ch = w.net.open_channel(src_node, dst_node);
        let req_ch = w.net.open_channel(dst_node, src_node);
        let n_pages = w.vms[vm_idx].vm.memory().pages();
        let (dest_mem, dest_swap) = build_dest_image(w, vm_idx, dest_host, dest_reservation_bytes);
        let technique = src_cfg.technique;
        let src = SourceSession::new(src_cfg, n_pages, now);
        let dst = DestSession::new(technique, n_pages);
        if !matches!(technique, agile_migration::Technique::PostCopy) {
            w.vms[vm_idx].vm.begin_precopy(HostId(dest_host as u32));
        }
        let idx = w.migrations.len();
        w.migrations.push(MigrationExec {
            vm: vm_idx,
            source_host,
            dest_host,
            src,
            dst,
            stream_ch,
            demand_ch,
            req_ch,
            in_flight: 0,
            demand_in_flight: 0,
            src_done: false,
            finished: false,
            dest_mem: Some(dest_mem),
            source_mem: None,
            dest_swap: Some(dest_swap),
            source_swap: None,
            swapin_remaining: std::collections::HashMap::new(),
            verify_content: false,
            attempt: 0,
            retries: 0,
            dest_reservation: dest_reservation_bytes,
            conn_down: false,
            pages_lost_on_conn_drop: 0,
        });
        w.vms[vm_idx].migration = Some(idx);
        w.trace.record(
            now,
            TraceEvent::MigStart {
                mig: idx as u32,
                technique: technique_name(technique),
                attempt: 0,
            },
        );
        idx
    };
    let cmds = drive_src(sim, mig, SourceEvent::Start);
    process_cmds(sim, mig, cmds);
    pump(sim, mig);
    mig
}

/// Build the destination memory image and swap binding for one migration
/// attempt.
///
/// The portable namespace's slot space is shared metadata: the arriving
/// image allocates/frees from the same allocator as the departing one.
/// Baseline images join the destination host's shared partition slot
/// space instead. The swap binding is the portable VMD namespace re-bound
/// through the destination's client (Agile), or the destination host's
/// own SSD partition (baselines).
fn build_dest_image(
    w: &World,
    vm_idx: usize,
    dest_host: usize,
    dest_reservation_bytes: u64,
) -> (VmMemory, SwapDev) {
    let n_pages = w.vms[vm_idx].vm.memory().pages();
    let page_size = w.cfg.page_size;
    let mut dest_mem = VmMemory::new(VmMemoryConfig {
        pages: n_pages,
        page_size,
        limit_pages: (dest_reservation_bytes / page_size) as u32,
    });
    match w.vms[vm_idx].swap.namespace() {
        Some(ns) => {
            dest_mem.use_shared_slots(std::rc::Rc::clone(&w.vmd.allocators[&ns]));
        }
        None => {
            let alloc = w.hosts[dest_host]
                .swap_slots
                .as_ref()
                .expect("destination host swap partition has an allocator");
            dest_mem.use_shared_slots(std::rc::Rc::clone(alloc));
        }
    }
    let dest_swap = match &w.vms[vm_idx].swap {
        SwapDev::Vmd(v) => {
            let client_idx = *w
                .vmd
                .host_client
                .get(&dest_host)
                .expect("destination host has no VMD client");
            let client = std::rc::Rc::clone(&w.vmd.clients[client_idx].client);
            SwapDev::Vmd(VmdSwapDevice::new(
                client,
                std::rc::Rc::clone(&w.vmd.directory),
                v.namespace(),
                page_size,
            ))
        }
        SwapDev::Ssd(_) => {
            let dev = w.hosts[dest_host]
                .ssd
                .as_ref()
                .expect("destination host has no swap SSD");
            SwapDev::Ssd(SsdSwap::new(std::rc::Rc::clone(dev), page_size))
        }
    };
    (dest_mem, dest_swap)
}

/// Feed one event to the source session against the right memory image.
fn drive_src(sim: &mut Simulation<World>, mig: usize, ev: SourceEvent) -> Vec<SourceCmd> {
    let now = sim.now();
    let World {
        vms, migrations, ..
    } = sim.state_mut();
    let m = &mut migrations[mig];
    let mem: &VmMemory = match &m.source_mem {
        Some(x) => x,
        None => vms[m.vm].vm.memory(),
    };
    m.src.on_event(now, ev, mem)
}

/// Keep the bulk stream's window full.
fn pump(sim: &mut Simulation<World>, mig: usize) {
    loop {
        let proceed = {
            let w = sim.state();
            let m = &w.migrations[mig];
            !m.src_done && !m.finished && m.in_flight < w.cfg.migration_window
        };
        if !proceed {
            return;
        }
        let cmds = drive_src(sim, mig, SourceEvent::ChannelReady);
        if cmds.is_empty() {
            return;
        }
        process_cmds(sim, mig, cmds);
    }
}

/// Execute a batch of source commands.
fn process_cmds(sim: &mut Simulation<World>, mig: usize, cmds: Vec<SourceCmd>) {
    let now = sim.now();
    for cmd in cmds {
        match cmd {
            SourceCmd::SendChunk { chunk, priority } => {
                let w = sim.state_mut();
                let wire = chunk.wire_bytes(w.cfg.page_size);
                w.trace.record(
                    now,
                    TraceEvent::ChunkSent {
                        mig: mig as u32,
                        full: chunk.full.len() as u32,
                        offsets: chunk.swapped.len() as u32,
                        zeros: chunk.zero.len() as u32,
                        retransmits: chunk.retransmits,
                        wire_bytes: wire,
                        priority,
                    },
                );
                let key = w.stash_chunk(chunk);
                let m = &mut w.migrations[mig];
                let ch = if priority { m.demand_ch } else { m.stream_ch };
                if priority {
                    m.demand_in_flight += 1;
                } else {
                    m.in_flight += 1;
                }
                let tag = w.tag(NetPayload::MigChunk {
                    mig,
                    chunk: key,
                    priority,
                });
                w.net.send(now, ch, wire, tag);
                touch_net(sim);
            }
            SourceCmd::SwapIn { batch, pages } => exec_swapin(sim, mig, batch, pages),
            SourceCmd::Suspend => {
                let vm_idx = sim.state().migrations[mig].vm;
                suspend_vm(sim, vm_idx, mig);
            }
            SourceCmd::SendHandoff { wire_bytes } => {
                let w = sim.state_mut();
                w.trace.record(
                    now,
                    TraceEvent::MigHandoff {
                        mig: mig as u32,
                        wire_bytes,
                    },
                );
                let ch = w.migrations[mig].stream_ch;
                let tag = w.tag(NetPayload::MigHandoff { mig });
                w.net.send(now, ch, wire_bytes, tag);
                touch_net(sim);
            }
            SourceCmd::Done => {
                sim.state_mut().migrations[mig].src_done = true;
                maybe_finalize(sim, mig);
            }
        }
    }
}

/// Longest slot-consecutive run the device coalesces into one command
/// (the kernel's swap read/write clustering window).
const MAX_RUN_PAGES: usize = 64;

/// Group `(key, slot)` items into slot-consecutive runs of at most
/// [`MAX_RUN_PAGES`]. Input order is not assumed; output is slot-sorted.
pub(crate) fn slot_runs<T: Copy>(mut items: Vec<(T, u32)>) -> Vec<Vec<(T, u32)>> {
    items.sort_by_key(|&(_, slot)| slot);
    let mut runs: Vec<Vec<(T, u32)>> = Vec::new();
    for (key, slot) in items {
        match runs.last_mut() {
            Some(run)
                if run.len() < MAX_RUN_PAGES && run.last().map(|&(_, s)| s + 1) == Some(slot) =>
            {
                run.push((key, slot));
            }
            _ => runs.push(vec![(key, slot)]),
        }
    }
    runs
}

/// Execute a Migration-Manager swap-in batch against the source image and
/// its swap device. Slot-consecutive pages coalesce into streaming runs —
/// an idle VM's sequentially-evicted memory reads back at device bandwidth
/// while a busy VM's churned slots pay per-command overhead (the idle/busy
/// gap of Fig. 7).
fn exec_swapin(sim: &mut Simulation<World>, mig: usize, batch: u64, pages: Vec<(u32, u32)>) {
    let now = sim.now();
    let mut remaining = 0u32;
    let mut pending_vmd = false;
    let mut ssd_reads: Vec<(u32, u32)> = Vec::new(); // (pfn, slot) to read from SSD
    let mut scheduled: Vec<(SimTime, u64)> = Vec::new();
    {
        let World {
            vms,
            migrations,
            swap_reqs,
            next_req,
            swapin_piggyback,
            ..
        } = sim.state_mut();
        let m = &mut migrations[mig];
        let vm_idx = m.vm;
        let resumed = m.source_mem.is_some();
        for (pfn, slot) in pages {
            let mem: &mut VmMemory = match m.source_mem.as_mut() {
                Some(x) => x,
                None => vms[vm_idx].vm.memory_mut(),
            };
            let flags = mem.page_flags(pfn);
            if flags.present() {
                continue; // already resident; nothing to read
            }
            if flags.any(agile_memory::PageFlags::IO_INFLIGHT) {
                // A guest fault already reads this page: piggyback.
                swapin_piggyback
                    .entry((vm_idx, pfn))
                    .or_default()
                    .push((mig, batch));
                remaining += 1;
                continue;
            }
            debug_assert!(flags.swapped(), "swap-in of an untracked page");
            mem.begin_swap_in(pfn);
            if !resumed {
                // The guest may touch the page while the read is in
                // flight; give it an entry to park on.
                vms[vm_idx]
                    .pending_faults
                    .entry(pfn)
                    .or_insert_with(|| crate::world::FaultEntry {
                        waiters: Vec::new(),
                        issued: true,
                    });
            }
            remaining += 1;
            let dev: &mut SwapDev = match m.source_swap.as_mut() {
                Some(d) => d,
                None => &mut vms[vm_idx].swap,
            };
            match dev {
                SwapDev::Ssd(_) => ssd_reads.push((pfn, slot)),
                SwapDev::Vmd(v) => {
                    let req = *next_req;
                    *next_req += 1;
                    swap_reqs.insert(req, SwapReqCtx::MigrationSwapIn { mig, batch, pfn });
                    match agile_memory::SwapBackend::read(v, now, slot, req) {
                        SwapIssue::CompleteAt(t) => scheduled.push((t, req)),
                        SwapIssue::Pending => pending_vmd = true,
                    }
                }
            }
        }
        // Coalesce the SSD reads into streaming runs.
        if !ssd_reads.is_empty() {
            let dev: &mut SwapDev = match m.source_swap.as_mut() {
                Some(d) => d,
                None => &mut vms[vm_idx].swap,
            };
            let SwapDev::Ssd(ssd) = dev else {
                unreachable!()
            };
            for run in slot_runs(ssd_reads) {
                let done = ssd.read_run(now, run.len() as u64);
                for (pfn, _) in run {
                    let req = *next_req;
                    *next_req += 1;
                    swap_reqs.insert(req, SwapReqCtx::MigrationSwapIn { mig, batch, pfn });
                    scheduled.push((done, req));
                }
            }
            ssd_reads = Vec::new();
        }
        let _ = ssd_reads;
        if remaining > 0 {
            m.swapin_remaining.insert(batch, remaining);
        }
    }
    for (t, req) in scheduled {
        sim.schedule_fast(t, agile_sim_core::FastEvent::DeviceOp { req });
    }
    if pending_vmd {
        guest::flush_all_clients(sim);
    }
    if remaining == 0 {
        // Everything was already resident: complete the batch instantly.
        let cmds = drive_src(sim, mig, SourceEvent::SwapInDone { batch });
        process_cmds(sim, mig, cmds);
        pump(sim, mig);
    }
}

/// One page of a Migration-Manager swap-in batch finished reading.
pub fn complete_migration_swapin(sim: &mut Simulation<World>, mig: usize, batch: u64, pfn: u32) {
    let mut buf = std::mem::take(&mut sim.state_mut().evict_buf);
    buf.clear();
    let (vm_idx, applied_to_vm) = {
        let World {
            vms, migrations, ..
        } = sim.state_mut();
        let m = &mut migrations[mig];
        let vm_idx = m.vm;
        match m.source_mem.as_mut() {
            Some(mem) => {
                mem.fault_in(pfn, false, &mut buf);
                (vm_idx, false)
            }
            None => {
                vms[vm_idx].vm.memory_mut().fault_in(pfn, false, &mut buf);
                (vm_idx, true)
            }
        }
    };
    let target = if applied_to_vm {
        EvictTarget::Vm(vm_idx)
    } else {
        EvictTarget::MigSource(mig)
    };
    charge_evictions(sim, target, &buf);
    buf.clear();
    sim.state_mut().evict_buf = buf;
    if applied_to_vm {
        guest::wake_page(sim, vm_idx, pfn);
    }
    // A later batch (e.g. a post-abort retry pass) may have piggybacked
    // on this read while it was in flight.
    guest::credit_piggybacks(sim, vm_idx, pfn);
    credit_swapin(sim, mig, batch);
}

/// Credit one completed page toward a swap-in batch; fires `SwapInDone`
/// when the batch drains.
pub fn credit_swapin(sim: &mut Simulation<World>, mig: usize, batch: u64) {
    let done = {
        let w = sim.state_mut();
        let m = &mut w.migrations[mig];
        // A batch missing from the map belonged to an aborted attempt:
        // the read still installed its page, but the session that issued
        // it is gone. Nothing to credit.
        let Some(rem) = m.swapin_remaining.get_mut(&batch) else {
            return;
        };
        *rem -= 1;
        if *rem == 0 {
            m.swapin_remaining.remove(&batch);
            true
        } else {
            false
        }
    };
    if done {
        let cmds = drive_src(sim, mig, SourceEvent::SwapInDone { batch });
        process_cmds(sim, mig, cmds);
        pump(sim, mig);
    }
}

/// A chunk arrived at the destination.
pub fn on_chunk_delivered(sim: &mut Simulation<World>, mig: usize, chunk_key: u64, priority: bool) {
    let now = sim.now();
    let chunk = sim
        .state_mut()
        .chunks
        .remove(&chunk_key)
        .expect("unknown chunk");
    let mut buf = std::mem::take(&mut sim.state_mut().evict_buf);
    buf.clear();
    let (vm_idx, resumed) = {
        let World {
            vms,
            migrations,
            trace,
            ..
        } = sim.state_mut();
        let m = &mut migrations[mig];
        let vm_idx = m.vm;
        let resumed = m.dst.resumed();
        let mem: &mut VmMemory = match m.dest_mem.as_mut() {
            Some(x) => x,
            None => vms[vm_idx].vm.memory_mut(),
        };
        m.dst.on_chunk(&chunk, mem, &mut buf);
        if priority {
            m.demand_in_flight = m.demand_in_flight.saturating_sub(1);
            m.dst.note_demand_served();
            let served = chunk
                .full
                .first()
                .map(|f| f.pfn)
                .or_else(|| chunk.zero.first().copied());
            if let Some(pfn) = served {
                trace.record(
                    now,
                    TraceEvent::DemandServed {
                        mig: mig as u32,
                        pfn,
                    },
                );
            }
        } else {
            m.in_flight = m.in_flight.saturating_sub(1);
        }
        (vm_idx, resumed)
    };
    let target = if sim.state().migrations[mig].dest_mem.is_some() {
        EvictTarget::MigDest(mig)
    } else {
        EvictTarget::Vm(vm_idx)
    };
    charge_evictions(sim, target, &buf);
    buf.clear();
    sim.state_mut().evict_buf = buf;
    // Wake ops parked on any page this chunk just installed (or declared
    // zero — their retry will zero-fill locally).
    if resumed {
        let mut to_wake: Vec<u32> = Vec::new();
        {
            let w = sim.state();
            let slot = &w.vms[vm_idx];
            for fp in &chunk.full {
                if slot.pending_faults.contains_key(&fp.pfn) {
                    to_wake.push(fp.pfn);
                }
            }
            for z in &chunk.zero {
                if slot.pending_faults.contains_key(z) {
                    to_wake.push(*z);
                }
            }
        }
        for pfn in to_wake {
            guest::wake_page(sim, vm_idx, pfn);
        }
    }
    pump(sim, mig);
    maybe_finalize(sim, mig);
}

/// The handoff message arrived: the VM resumes at the destination.
pub fn on_handoff_delivered(sim: &mut Simulation<World>, mig: usize) {
    // Give the destination its dirty bitmap.
    {
        let World {
            vms, migrations, ..
        } = sim.state_mut();
        let m = &mut migrations[mig];
        let n_pages = vms[m.vm].vm.memory().pages();
        let dirty = m
            .src
            .handoff_dirty()
            .cloned()
            .unwrap_or_else(|| agile_migration::Bitmap::zeros(n_pages));
        let mem: &mut VmMemory = match m.dest_mem.as_mut() {
            Some(x) => x,
            None => vms[m.vm].vm.memory_mut(),
        };
        m.dst.on_handoff(dirty, mem);
    }
    resume_vm_at_dest(sim, mig);
    let cmds = drive_src(sim, mig, SourceEvent::HandoffDelivered);
    process_cmds(sim, mig, cmds);
    pump(sim, mig);
    maybe_finalize(sim, mig);
}

/// A demand-page request arrived at the source.
pub fn on_demand_request(sim: &mut Simulation<World>, mig: usize, pfn: u32) {
    let now = sim.now();
    sim.state_mut().trace.record(
        now,
        TraceEvent::DemandRequest {
            mig: mig as u32,
            pfn,
        },
    );
    let cmds = drive_src(sim, mig, SourceEvent::DemandRequest { pfn });
    process_cmds(sim, mig, cmds);
}

/// Suspend the VM at the source (downtime begins).
fn suspend_vm(sim: &mut Simulation<World>, vm_idx: usize, mig: usize) {
    let now = sim.now();
    {
        let w = sim.state_mut();
        w.trace
            .record(now, TraceEvent::MigSuspend { mig: mig as u32 });
        let dest = HostId(w.migrations[mig].dest_host as u32);
        match w.vms[vm_idx].vm.state() {
            VmState::Running { .. } => w.vms[vm_idx].vm.suspend_for(dest),
            VmState::PreCopy { .. } => w.vms[vm_idx].vm.suspend(),
            other => panic!("suspend from {other:?}"),
        }
    }
    guest::suspend_guest(sim, vm_idx);
}

/// The handoff arrived: swap images/devices and resume at the destination.
fn resume_vm_at_dest(sim: &mut Simulation<World>, mig: usize) {
    let now = sim.now();
    let vm_idx = {
        let w = sim.state_mut();
        w.trace
            .record(now, TraceEvent::MigResume { mig: mig as u32 });
        let (vm_idx, dest_host, source_host) = {
            let m = &w.migrations[mig];
            (m.vm, m.dest_host, m.source_host)
        };
        w.vms[vm_idx].vm.resume_at_destination();
        let dest_mem = w.migrations[mig].dest_mem.take().expect("dest image");
        let dest_limit = dest_mem.limit_bytes();
        let old_mem = w.vms[vm_idx].vm.replace_memory(dest_mem);
        w.migrations[mig].source_mem = Some(old_mem);
        let dest_swap = w.migrations[mig].dest_swap.take().expect("dest swap");
        let old_swap = std::mem::replace(&mut w.vms[vm_idx].swap, dest_swap);
        w.migrations[mig].source_swap = Some(old_swap);
        w.vms[vm_idx].mem_epoch += 1;
        w.vms[vm_idx].host = dest_host;
        w.vms[vm_idx].pending_faults.clear();
        // Host ledgers: the reservation moves with the VM.
        w.hosts[source_host].mem.remove_reservation(vm_idx as u64);
        w.hosts[dest_host]
            .mem
            .set_reservation(vm_idx as u64, dest_limit);
        vm_idx
    };
    guest::resume_guest(sim, vm_idx);
}

/// Complete the migration once the source is done and the pipes drained.
fn maybe_finalize(sim: &mut Simulation<World>, mig: usize) {
    let now = sim.now();
    let vm_idx = {
        let w = sim.state_mut();
        let ready = {
            let m = &w.migrations[mig];
            m.src_done && !m.finished && m.in_flight == 0 && m.demand_in_flight == 0
        };
        if !ready {
            return;
        }
        if w.migrations[mig].verify_content {
            verify_content(w, mig);
        }
        let m = &mut w.migrations[mig];
        m.finished = true;
        m.src.metrics_mut().completed_at = Some(now);
        // Free the source copy; disconnect the per-VM swap device from the
        // source host (§IV-B) — the destination binding lives on.
        m.source_mem = None;
        m.source_swap = None;
        m.vm
    };
    let w = sim.state_mut();
    w.trace
        .record(now, TraceEvent::MigComplete { mig: mig as u32 });
    w.vms[vm_idx].vm.complete_migration();
    w.vms[vm_idx].migration = None;
    // Tell the cluster scheduler (if armed): an admission slot may have
    // freed, so queued selections can start now rather than next tick.
    crate::sched::on_migration_finished(sim, vm_idx);
}

/// End-to-end content check: for every guest page, the destination must
/// hold a version at least as new as the source's final (frozen) version.
/// A violation means some dirty page was lost by the protocol.
fn verify_content(w: &World, mig: usize) {
    let m = &w.migrations[mig];
    let src = m
        .source_mem
        .as_ref()
        .expect("source image retained until finalize");
    let dst = w.vms[m.vm].vm.memory();
    let mut checked = 0u32;
    for pfn in 0..src.pages() {
        let sv = src.version(pfn);
        let dv = dst.version(pfn);
        if dv < sv {
            panic!(
                "migration lost content: page {pfn} source v{sv} > dest v{dv} ({:?}); \
                 src_pagemap={:?} dst_pagemap={:?} dst_received={} dst_swapped={:?} \
                 handoff_dirty={:?} remaining_in_pass={}",
                m.src.metrics().technique,
                src.pagemap(pfn),
                dst.pagemap(pfn),
                m.dst.received_pages(),
                m.dst.classify_fault(pfn),
                m.src.handoff_dirty().map(|b| b.get(pfn)),
                m.src.remaining_in_pass(),
            );
        }
        checked += 1;
    }
    assert_eq!(checked, src.pages());
}

// ------------------- connection-drop fault handling -------------------

/// Base backoff before retrying an aborted migration attempt (scaled by
/// the attempt number).
const RETRY_BACKOFF: SimDuration = SimDuration::from_millis(500);

/// Every TCP connection of migration `mig` just dropped (fault injection).
///
/// Before the destination has resumed, the attempt aborts cheaply: all
/// in-flight traffic is lost, the VM keeps running (or thaws back) at the
/// source, and the source retries from scratch after a backoff. After
/// resume there is no source to roll back to: the migration finalizes
/// degraded — missing pages are demand-paged from the portable swap
/// namespace's replicas where a swap copy exists, and zero-filled (and
/// counted as lost) where not.
pub fn drop_connections(sim: &mut Simulation<World>, mig: usize) {
    let resumed = {
        let w = sim.state();
        if mig >= w.migrations.len() || w.migrations[mig].finished {
            return;
        }
        w.migrations[mig].dst.resumed()
    };
    // Tear the channels down first: queued *and* in-flight segments are
    // dropped, so no stale delivery callback from this attempt can fire.
    {
        let now = sim.now();
        let w = sim.state_mut();
        let (stream_ch, demand_ch, req_ch) = {
            let m = &w.migrations[mig];
            (m.stream_ch, m.demand_ch, m.req_ch)
        };
        w.net.close_channel(now, stream_ch);
        w.net.close_channel(now, demand_ch);
        w.net.close_channel(now, req_ch);
    }
    touch_net(sim);
    if resumed {
        conn_down_degraded(sim, mig);
    } else {
        abort_and_retry(sim, mig);
    }
}

/// Pre-resume abort: roll the attempt back and schedule a retry.
fn abort_and_retry(sim: &mut Simulation<World>, mig: usize) {
    let now = sim.now();
    let (vm_idx, attempt, was_suspended) = {
        let w = sim.state_mut();
        let (vm_idx, dest_host, resv) = {
            let m = &w.migrations[mig];
            (m.vm, m.dest_host, m.dest_reservation)
        };
        let (dest_mem, dest_swap) = build_dest_image(w, vm_idx, dest_host, resv);
        let technique = w.migrations[mig].src.metrics().technique;
        let n_pages = w.vms[vm_idx].vm.memory().pages();
        let m = &mut w.migrations[mig];
        m.in_flight = 0;
        m.demand_in_flight = 0;
        // Stale batches from this attempt no-op in `credit_swapin`; their
        // reads still land in the source image, which only helps the retry.
        m.swapin_remaining.clear();
        m.src.reset_for_retry(now);
        m.dst = DestSession::new(technique, n_pages);
        // Slots the aborted destination image allocated stay leaked from
        // the shared allocator — bounded by one attempt's destination
        // evictions (zero unless the reservation was undersized).
        m.dest_mem = Some(dest_mem);
        m.dest_swap = Some(dest_swap);
        m.attempt += 1;
        m.retries += 1;
        let attempt = m.attempt;
        w.trace.record(
            now,
            TraceEvent::MigAbort {
                mig: mig as u32,
                attempt,
            },
        );
        let was_suspended = matches!(w.vms[vm_idx].vm.state(), VmState::Suspended { .. });
        if !matches!(w.vms[vm_idx].vm.state(), VmState::Running { .. }) {
            w.vms[vm_idx].vm.cancel_migration();
        }
        (vm_idx, attempt, was_suspended)
    };
    if was_suspended {
        // The guest was frozen for the handoff that just got lost; it
        // thaws back at the source.
        guest::resume_guest(sim, vm_idx);
    }
    let backoff = RETRY_BACKOFF.saturating_mul(u64::from(attempt));
    sim.schedule_in(backoff, move |sim| retry_attempt(sim, mig, attempt));
}

/// The backoff elapsed: restart the migration from scratch on fresh
/// channels. A stale callback (superseded attempt, or the migration ended
/// some other way) is a no-op.
fn retry_attempt(sim: &mut Simulation<World>, mig: usize, attempt: u32) {
    let proceed = {
        let w = sim.state();
        let m = &w.migrations[mig];
        !m.finished && m.attempt == attempt && w.vms[m.vm].migration == Some(mig)
    };
    if !proceed {
        return;
    }
    let now = sim.now();
    {
        let w = sim.state_mut();
        let (vm_idx, source_host, dest_host) = {
            let m = &w.migrations[mig];
            (m.vm, m.source_host, m.dest_host)
        };
        let src_node = w.hosts[source_host].node;
        let dst_node = w.hosts[dest_host].node;
        let stream_ch = w.net.open_channel(src_node, dst_node);
        let demand_ch = w.net.open_channel(src_node, dst_node);
        let req_ch = w.net.open_channel(dst_node, src_node);
        let technique = {
            let m = &mut w.migrations[mig];
            m.stream_ch = stream_ch;
            m.demand_ch = demand_ch;
            m.req_ch = req_ch;
            m.src.metrics().technique
        };
        if !matches!(technique, agile_migration::Technique::PostCopy) {
            w.vms[vm_idx].vm.begin_precopy(HostId(dest_host as u32));
        }
        w.trace.record(
            now,
            TraceEvent::MigStart {
                mig: mig as u32,
                technique: technique_name(technique),
                attempt,
            },
        );
    }
    let cmds = drive_src(sim, mig, SourceEvent::Start);
    process_cmds(sim, mig, cmds);
    pump(sim, mig);
}

/// Post-resume connection drop: no rollback target exists, so the
/// migration finalizes degraded. Pages never received and without a swap
/// copy are zero-filled and counted; swapped pages keep faulting from the
/// (replicated) per-VM swap device as usual.
fn conn_down_degraded(sim: &mut Simulation<World>, mig: usize) {
    use agile_memory::PageFlags;
    use agile_migration::FaultRoute;
    let vm_idx = {
        let w = sim.state_mut();
        let m = &mut w.migrations[mig];
        m.conn_down = true;
        m.src_done = true;
        m.in_flight = 0;
        m.demand_in_flight = 0;
        m.swapin_remaining.clear();
        // Content can now be legitimately lost (it is reported per page
        // instead); the end-to-end version check no longer applies.
        m.verify_content = false;
        m.vm
    };
    // Sweep every page still owed by the source: with a swap copy it will
    // demand-page from the replicas; without one its content is gone —
    // zero-fill now and count the loss.
    let mut buf = std::mem::take(&mut sim.state_mut().evict_buf);
    buf.clear();
    {
        let w = sim.state_mut();
        let (vms, migs) = (&mut w.vms, &mut w.migrations);
        let m = &mut migs[mig];
        let mem = vms[vm_idx].vm.memory_mut();
        for pfn in 0..mem.pages() {
            if !matches!(m.dst.classify_fault(pfn), FaultRoute::FromSource) {
                continue;
            }
            let f = mem.page_flags(pfn);
            if !f.present() && !f.swapped() && !f.any(PageFlags::IO_INFLIGHT) {
                m.dst.install_zero_fill(pfn, mem, &mut buf);
                m.pages_lost_on_conn_drop += 1;
            }
        }
    }
    charge_evictions(sim, EvictTarget::Vm(vm_idx), &buf);
    buf.clear();
    sim.state_mut().evict_buf = buf;
    {
        let now = sim.now();
        let w = sim.state_mut();
        let pages_lost = w.migrations[mig].pages_lost_on_conn_drop;
        w.trace.record(
            now,
            TraceEvent::MigDegraded {
                mig: mig as u32,
                pages_lost,
            },
        );
    }
    // Ops parked on a demand response that will never arrive: wake them so
    // they re-fault down the degraded path (the sweep made most of them
    // plain hits). Pages with reads genuinely in flight stay parked —
    // their completions still arrive through the swap device.
    let stuck: Vec<u32> = {
        let w = sim.state();
        let mem = w.vms[vm_idx].vm.memory();
        w.vms[vm_idx]
            .pending_faults
            .keys()
            .copied()
            .filter(|&pfn| !mem.page_flags(pfn).any(PageFlags::IO_INFLIGHT))
            .collect()
    };
    for pfn in stuck {
        guest::wake_page(sim, vm_idx, pfn);
    }
    maybe_finalize(sim, mig);
}
