//! Cluster construction: hosts, VMD deployment, VMs, workloads, preload.
//!
//! [`ClusterBuilder`] assembles a [`World`] in the shape of the paper's
//! testbed and hands back a ready [`Simulation`]; scenario code then
//! schedules clients, WSS tracking, and migrations on top.

use std::cell::RefCell;
use std::rc::Rc;

use agile_memory::{HostMemory, SsdSwap};
use agile_sim_core::{
    Bandwidth, BlockDevice, DetRng, RackId, SimDuration, SimTime, Simulation, ThroughputMeter,
    TimeSeries,
};
use agile_vm::{HostId, Vm, VmConfig, VmId};
use agile_vmd::{ClientId, ServerId, VmdClient, VmdServer, VmdSwapDevice};
use agile_workload::OsBackground;

use crate::config::ClusterConfig;
use crate::world::{
    ClientBinding, Host, SwapDev, VmSlot, VmdClientEntry, VmdServerEntry, WorkloadKind, World,
};
use crate::{guest, vmdio};

/// Which swap device a VM gets.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SwapKind {
    /// The host's shared SSD swap partition (baseline setups).
    HostSsd,
    /// A private, portable VMD namespace (Agile setups).
    PerVmVmd,
}

/// Assembles a simulated cluster.
pub struct ClusterBuilder {
    world: World,
}

impl ClusterBuilder {
    /// Start building with the given configuration.
    pub fn new(cfg: ClusterConfig) -> Self {
        ClusterBuilder {
            world: World::new(cfg),
        }
    }

    /// Read access to the world under construction.
    pub fn world(&self) -> &World {
        &self.world
    }

    /// Mutable access to the world under construction (e.g. to carve
    /// guest-layout regions for a workload).
    pub fn world_mut(&mut self) -> &mut World {
        &mut self.world
    }

    /// Declare a ToR rack with the given trunk capacities in the fluid
    /// network. Hosts join via [`ClusterBuilder::assign_rack`]; hosts
    /// never assigned stay spine-attached.
    pub fn add_net_rack(&mut self, up: Bandwidth, down: Bandwidth) -> RackId {
        self.world.net.add_rack(up, down)
    }

    /// Put a host's NIC behind a rack's trunk: all its off-rack traffic
    /// then shares the trunk as an extra water-filling constraint.
    pub fn assign_rack(&mut self, host: usize, rack: RackId) {
        let node = self.world.hosts[host].node;
        self.world.net.set_node_rack(node, rack);
    }

    /// Add a host. `with_ssd` attaches the shared swap SSD partition.
    pub fn add_host(
        &mut self,
        name: &str,
        total_mem: u64,
        os_overhead: u64,
        with_ssd: bool,
    ) -> usize {
        let node = self.world.net.add_symmetric_node(self.world.cfg.link_bw);
        let ssd =
            with_ssd.then(|| Rc::new(RefCell::new(BlockDevice::new(self.world.cfg.ssd_spec))));
        let swap_slots =
            with_ssd.then(|| Rc::new(RefCell::new(agile_memory::SlotAllocator::unbounded())));
        self.world.hosts.push(Host {
            name: name.to_string(),
            node,
            mem: HostMemory::new(total_mem, os_overhead),
            ssd,
            swap_slots,
        });
        self.world.hosts.len() - 1
    }

    /// Contribute `mem_bytes` of a host's spare memory (plus optional disk
    /// spill) to the VMD pool. The server is built with the config's tier
    /// stack ([`crate::config::ClusterConfig::vmd_tiers`]); fractional and
    /// contribution-relative tier capacities resolve against these two
    /// byte counts.
    pub fn add_vmd_server(&mut self, host: usize, mem_bytes: u64, disk_bytes: u64) -> usize {
        let page_size = self.world.cfg.page_size;
        let id = ServerId(self.world.vmd.servers.len() as u32);
        let stack = self.world.cfg.vmd_tiers;
        let server = VmdServer::with_tiers(
            id,
            stack.resolve(mem_bytes / page_size, disk_bytes / page_size),
            stack.heat,
        );
        let free = server.free_pages();
        let spill = server.spill_free_pages();
        self.world.vmd.servers.push(VmdServerEntry {
            server,
            host,
            alive: true,
        });
        // Existing clients learn about the new server.
        for entry in &self.world.vmd.clients {
            entry.client.borrow_mut().add_server(id, free, spill);
        }
        self.world.vmd.servers.len() - 1
    }

    /// Ensure `host` runs a VMD client module; returns its index.
    pub fn ensure_vmd_client(&mut self, host: usize) -> usize {
        if let Some(&c) = self.world.vmd.host_client.get(&host) {
            return c;
        }
        let id = ClientId(self.world.vmd.clients.len() as u32);
        let mut c = VmdClient::new(id, std::iter::empty());
        for e in &self.world.vmd.servers {
            c.add_server(
                e.server.id(),
                e.server.free_pages(),
                e.server.spill_free_pages(),
            );
        }
        c.set_replication(self.world.cfg.vmd_replication);
        let client = Rc::new(RefCell::new(c));
        self.world.vmd.clients.push(VmdClientEntry { client, host });
        let idx = self.world.vmd.clients.len() - 1;
        self.world.vmd.host_client.insert(host, idx);
        idx
    }

    /// Create a VM on `host` with the given swap binding.
    pub fn add_vm(&mut self, host: usize, config: VmConfig, swap: SwapKind) -> usize {
        let vm_idx = self.world.vms.len();
        let vm = Vm::new(VmId(vm_idx as u32), HostId(host as u32), config);
        let page_size = self.world.cfg.page_size;
        let swap = match swap {
            SwapKind::HostSsd => {
                let dev = self.world.hosts[host]
                    .ssd
                    .as_ref()
                    .expect("host has no swap SSD");
                SwapDev::Ssd(SsdSwap::new(Rc::clone(dev), page_size))
            }
            SwapKind::PerVmVmd => {
                let client_idx = self.ensure_vmd_client(host);
                let ns = self.world.vmd.directory.borrow_mut().create_namespace();
                self.world.vmd.allocators.insert(
                    ns,
                    Rc::new(RefCell::new(agile_memory::SlotAllocator::unbounded())),
                );
                SwapDev::Vmd(VmdSwapDevice::new(
                    Rc::clone(&self.world.vmd.clients[client_idx].client),
                    Rc::clone(&self.world.vmd.directory),
                    ns,
                    page_size,
                ))
            }
        };
        self.world.hosts[host]
            .mem
            .set_reservation(vm_idx as u64, config.reservation_bytes);
        let os_rng = self.world.seeds.stream(&format!("osbg.vm{vm_idx}"));
        let mut vm = vm;
        match swap.namespace() {
            // Portable per-VM namespace: private slot space shared only
            // between the source/destination images of a migration.
            Some(ns) => vm
                .memory_mut()
                .use_shared_slots(Rc::clone(&self.world.vmd.allocators[&ns])),
            // Shared host swap partition: one slot space for all VMs.
            None => vm.memory_mut().use_shared_slots(Rc::clone(
                self.world.hosts[host]
                    .swap_slots
                    .as_ref()
                    .expect("host swap partition has an allocator"),
            )),
        }
        self.world.vms.push(VmSlot {
            vm,
            host,
            swap,
            workload: None,
            os_bg: None,
            server_queue: std::collections::VecDeque::new(),
            server_active: 0,
            pending_faults: std::collections::HashMap::new(),
            limbo: Vec::new(),
            client: None,
            meter: ThroughputMeter::new(1),
            reservation_series: TimeSeries::new(),
            migration: None,
            wss: None,
            os_rng,
            os_bg_gen: 0,
            mem_epoch: 0,
        });
        vm_idx
    }

    /// Attach a workload model and its external client (on `client_host`).
    pub fn attach_workload(&mut self, vm_idx: usize, client_host: usize, workload: WorkloadKind) {
        let threads = workload.client_threads();
        let rng = self.world.seeds.stream(&format!("client.vm{vm_idx}"));
        let client_node = self.world.hosts[client_host].node;
        let vm_node = self.world.hosts[self.world.vms[vm_idx].host].node;
        let to_vm = self.world.net.open_channel(client_node, vm_node);
        let from_vm = self.world.net.open_channel(vm_node, client_node);
        let slot = &mut self.world.vms[vm_idx];
        slot.workload = Some(workload);
        slot.client = Some(ClientBinding {
            host: client_host,
            threads,
            to_vm,
            from_vm,
            rng,
            think_ns: 0,
        });
    }

    /// Enable guest-OS background activity over the VM's OS region.
    pub fn enable_os_background(&mut self, vm_idx: usize) {
        let region = self.world.vms[vm_idx].vm.layout().os_region();
        self.world.vms[vm_idx].os_bg = Some(OsBackground::new(region));
    }

    /// Populate a range of guest pages (writes, version 1) without charging
    /// device time — the paper's experiments start *after* datasets are
    /// loaded, with cold pages already swapped out. Evicted pages are
    /// logically written to the VM's swap backend (synchronously for VMD,
    /// so the store and directory are consistent from t = 0).
    pub fn preload_pages(&mut self, vm_idx: usize, start: u32, len: u32) {
        let mut writes: Vec<(u32, u32)> = Vec::new();
        {
            let slot = &mut self.world.vms[vm_idx];
            let mem = slot.vm.memory_mut();
            let mut evs = Vec::new();
            for pfn in start..start + len {
                match mem.touch(pfn, true) {
                    agile_memory::Touch::MinorFault => mem.fault_in(pfn, true, &mut evs),
                    agile_memory::Touch::Hit => {}
                    other => panic!("unexpected {other:?} during preload"),
                }
                for ev in evs.drain(..) {
                    if ev.needs_write {
                        writes.push((ev.pfn, ev.slot));
                    }
                }
            }
        }
        if !writes.is_empty() && self.world.vms[vm_idx].swap.is_vmd() {
            for (pfn, s) in writes {
                let version = self.world.vms[vm_idx].vm.memory().version(pfn);
                let req = self.world.next_req;
                self.world.next_req += 1;
                let _ = self.world.vms[vm_idx]
                    .swap
                    .backend()
                    .write(SimTime::ZERO, s, version, req);
            }
            drain_vmd_sync(&mut self.world);
        }
        // SSD swap needs no content tracking; the slots are already
        // recorded in the VM's page table.
    }

    /// Populate several VMs' layouts *concurrently*: their page streams
    /// interleave in `stripe_pages` strides, the way simultaneously-loading
    /// datasets interleave their eviction streams on a shared swap
    /// partition (which is what randomizes the baselines' swap layout in
    /// the paper's testbed).
    pub fn preload_layouts_interleaved(&mut self, vm_idxs: &[usize], stripe_pages: u32) {
        let stripe = stripe_pages.max(1);
        type PreloadCursor = (usize, Vec<(u32, u32)>, usize, u32);
        let mut work: Vec<PreloadCursor> = vm_idxs
            .iter()
            .map(|&v| {
                let layout = self.world.vms[v].vm.layout();
                let mut regions = vec![(layout.os_region().start, layout.os_region().len)];
                regions.extend(layout.regions().map(|(_, r)| (r.start, r.len)));
                (v, regions, 0usize, 0u32)
            })
            .collect();
        loop {
            let mut progressed = false;
            for (v, regions, region_idx, offset) in &mut work {
                if *region_idx >= regions.len() {
                    continue;
                }
                let (start, len) = regions[*region_idx];
                let n = stripe.min(len - *offset);
                self.preload_pages(*v, start + *offset, n);
                *offset += n;
                if *offset >= len {
                    *region_idx += 1;
                    *offset = 0;
                }
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
    }

    /// Populate the guest OS region and every named layout region.
    pub fn preload_layout(&mut self, vm_idx: usize) {
        let regions: Vec<(u32, u32)> = {
            let layout = self.world.vms[vm_idx].vm.layout();
            let mut r = vec![(layout.os_region().start, layout.os_region().len)];
            r.extend(layout.regions().map(|(_, pr)| (pr.start, pr.len)));
            r
        };
        for (start, len) in regions {
            self.preload_pages(vm_idx, start, len);
        }
    }

    /// Finish: wire VMD channels, start availability gossip, and return
    /// the simulation.
    pub fn build(self) -> Simulation<World> {
        let mut world = self.world;
        // Channels between every (client, server) pair.
        let pairs: Vec<(usize, usize, usize, usize)> = world
            .vmd
            .clients
            .iter()
            .enumerate()
            .flat_map(|(c, ce)| {
                world
                    .vmd
                    .servers
                    .iter()
                    .enumerate()
                    .map(move |(s, se)| (c, ce.host, s, se.host))
            })
            .collect();
        for (c, ch, s, sh) in pairs {
            let cn = world.hosts[ch].node;
            let sn = world.hosts[sh].node;
            let to_server = world.net.open_channel(cn, sn);
            let to_client = world.net.open_channel(sn, cn);
            world.vmd.channels.insert((c, s), (to_server, to_client));
        }
        let has_vmd = !world.vmd.servers.is_empty() && !world.vmd.clients.is_empty();
        let mut sim = Simulation::new(world);
        sim.set_fast_handler(crate::fast::dispatch);
        if has_vmd {
            sim.schedule_every(
                SimTime::from_millis(997),
                SimDuration::from_millis(1000),
                vmdio::gossip_availability,
            );
        }
        sim
    }
}

/// Start every attached client's threads at `at`, plus OS background where
/// enabled.
pub fn start_all_workloads(sim: &mut Simulation<World>, at: SimTime) {
    for vm_idx in 0..sim.state().vms.len() {
        if sim.state().vms[vm_idx].client.is_some() {
            guest::start_client(sim, vm_idx, at);
        }
        if sim.state().vms[vm_idx].os_bg.is_some() {
            guest::start_os_bg(sim, vm_idx, at);
        }
    }
}

/// Helper: a deterministic RNG stream for ad-hoc scenario decisions.
pub fn scenario_rng(sim: &Simulation<World>, label: &str) -> DetRng {
    sim.state().seeds.stream(label)
}

/// Pump VMD client↔server messages synchronously (zero simulated time);
/// used only during construction-time preloading.
fn drain_vmd_sync(world: &mut World) {
    loop {
        let mut progressed = false;
        for ci in 0..world.vmd.clients.len() {
            let msgs: Vec<_> = world.vmd.clients[ci]
                .client
                .borrow_mut()
                .drain_outbox()
                .collect();
            for (srv, msg) in msgs {
                progressed = true;
                let reply = world.vmd.servers[srv.0 as usize].server.handle(msg);
                if let Some(r) = reply.msg {
                    let _ = world.vmd.clients[ci]
                        .client
                        .borrow_mut()
                        .on_server_msg(srv, r);
                }
            }
        }
        if !progressed {
            break;
        }
    }
}
