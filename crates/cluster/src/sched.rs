//! Cluster-scale watermark scheduler (§III-B beyond a single host pair).
//!
//! The single-pair trigger in [`crate::wssctl::arm_watermark_trigger`]
//! pushes every selected VM to one hard-coded destination with no
//! capacity check — fine for the paper's two-host experiments, wrong for
//! a cluster: a firing can overload the destination and ping-pong VMs
//! straight back. This module manages a *set* of hosts:
//!
//! * On each tick, every managed host is checked against its watermark
//!   trigger and the paper's fewest-VMs selection runs per overloaded
//!   host (suspect-aware, as in `wssctl`: VMs whose portable namespace is
//!   mid-repair after a VMD server crash are deferred).
//! * Each selected VM is *placed* on a destination chosen by
//!   [`PlacementPolicy`]: least-loaded by free reservation headroom (the
//!   default) or first-fit by host index. Feasibility mirrors what the
//!   migration executor will demand: a VMD client on the destination for
//!   portable namespaces, a swap SSD for host-partition VMs.
//! * A **ping-pong guard** rejects any destination whose post-arrival
//!   aggregate WSS — counting migrations already in flight toward it —
//!   would cross its own high watermark minus a hysteresis margin, so an
//!   accepted VM cannot immediately re-trigger the destination.
//! * **Admission control** caps concurrent in-flight migrations; excess
//!   selections join a FIFO queue and start as slots free (re-validated
//!   at dequeue: a selection whose host recovered meanwhile is dropped).
//!
//! Every decision is recorded in the world's tracer as a
//! [`TraceEvent::SchedDecision`] and in [`SchedExec::decisions`] for
//! deterministic reports; counters surface through
//! [`crate::report::metrics_registry`].

use std::collections::{HashSet, VecDeque};

use agile_migration::SourceConfig;
use agile_sim_core::{FastEvent, SimDuration, SimTime, Simulation};
use agile_trace::{SchedAction, TraceEvent};
use agile_vmd::NamespaceId;
use agile_wss::WatermarkTrigger;

use crate::world::World;
use crate::{migrate, wssctl};

/// How the scheduler picks a destination for a selected VM.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PlacementPolicy {
    /// The feasible host with the most free reservation headroom; ties
    /// break on the lowest host index.
    LeastLoaded,
    /// The first feasible host in index order.
    FirstFit,
}

impl PlacementPolicy {
    /// Stable lower-snake name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            PlacementPolicy::LeastLoaded => "least-loaded",
            PlacementPolicy::FirstFit => "first-fit",
        }
    }
}

/// Scheduler configuration.
#[derive(Clone, Copy, Debug)]
pub struct SchedConfig {
    /// Destination selection policy.
    pub policy: PlacementPolicy,
    /// Admission-control cap on concurrent scheduler-started migrations.
    pub max_in_flight: usize,
    /// Ping-pong guard margin as a fraction of each destination's
    /// low→high watermark band: a destination is rejected unless its
    /// post-arrival aggregate WSS stays at or below
    /// `high - hysteresis * (high - low)`.
    pub hysteresis: f64,
    /// How often every managed host is re-checked.
    pub period: SimDuration,
    /// How long after a VM's scheduler migration completes before it may
    /// be selected again (the direct anti-ping-pong backstop).
    pub cooldown: SimDuration,
    /// Protocol configuration for scheduler-started migrations.
    pub src_cfg: SourceConfig,
    /// Arm the end-to-end content check on every scheduled migration.
    pub verify_content: bool,
}

impl SchedConfig {
    /// Defaults around a given migration configuration: least-loaded
    /// placement, 2 concurrent migrations, 25% hysteresis, 5 s period,
    /// 300 s cooldown.
    pub fn new(src_cfg: SourceConfig) -> Self {
        SchedConfig {
            policy: PlacementPolicy::LeastLoaded,
            max_in_flight: 2,
            hysteresis: 0.25,
            period: SimDuration::from_secs(5),
            cooldown: SimDuration::from_secs(300),
            src_cfg,
            verify_content: false,
        }
    }
}

/// One host under scheduler management.
#[derive(Clone, Copy, Debug)]
pub struct ManagedHost {
    /// Host index.
    pub host: usize,
    /// This host's watermark trigger.
    pub trigger: WatermarkTrigger,
}

/// One logged scheduler decision (the deterministic report's spine).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decision {
    /// When the decision was made.
    pub at: SimTime,
    /// The selected VM.
    pub vm: usize,
    /// Its (overloaded) host at selection time.
    pub src: usize,
    /// The chosen destination, for [`SchedAction::Start`] decisions.
    pub dest: Option<usize>,
    /// What happened.
    pub action: SchedAction,
}

/// Scheduler counters (exported via the metrics registry).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SchedCounters {
    /// Migrations the scheduler started.
    pub started: u64,
    /// Selections that waited in the admission queue.
    pub queued: u64,
    /// Selections with no feasible destination this tick.
    pub deferred_no_dest: u64,
    /// Queued selections dropped because their host recovered.
    pub dropped_recovered: u64,
    /// Scheduler-started migrations that finalized.
    pub completed: u64,
    /// High-water mark of concurrent scheduler migrations.
    pub max_in_flight_observed: u64,
}

/// Scheduler executor state, stored in [`World::sched`].
pub struct SchedExec {
    /// Configuration.
    pub cfg: SchedConfig,
    /// Managed hosts, checked in the order given at arm time.
    pub hosts: Vec<ManagedHost>,
    /// FIFO of selected VMs waiting for an admission slot.
    pub queue: VecDeque<usize>,
    /// VMs whose scheduler-started migration is in flight.
    pub inflight: Vec<usize>,
    /// Per-VM completion time of the last scheduler migration (cooldown).
    pub last_done: Vec<Option<SimTime>>,
    /// Per-VM count of scheduler-started migrations (ping-pong metric).
    pub times_migrated: Vec<u32>,
    /// Counters.
    pub counters: SchedCounters,
    /// Every decision, in the order it was made.
    pub decisions: Vec<Decision>,
    /// False after [`disarm_scheduler`]: the next tick unschedules itself.
    pub armed: bool,
    /// Trough-deferral overlay ([`arm_predictor`]). `None` — the default
    /// — leaves every code path byte-identical to the plain scheduler.
    pub predict: Option<crate::predict::PredictExec>,
}

/// The scheduler tick's fast-event payload.
fn tick_timer() -> FastEvent {
    FastEvent::Timer {
        kind: crate::fast::K_SCHED_TICK,
        a: 0,
        b: 0,
    }
}

/// Install the scheduler over `hosts` and start its periodic check. The
/// first tick fires one period after *arming* (not after t = 0).
pub fn arm_scheduler(sim: &mut Simulation<World>, hosts: Vec<ManagedHost>, cfg: SchedConfig) {
    assert!(cfg.max_in_flight >= 1, "admission cap must be at least 1");
    assert!(
        (0.0..1.0).contains(&cfg.hysteresis),
        "hysteresis must be in [0, 1)"
    );
    assert!(!hosts.is_empty(), "scheduler needs at least one host");
    let n_vms = sim.state().vms.len();
    {
        let w = sim.state_mut();
        for mh in &hosts {
            assert!(mh.host < w.hosts.len(), "managed host out of range");
        }
        assert!(w.sched.is_none(), "scheduler already armed");
        w.sched = Some(SchedExec {
            cfg,
            hosts,
            queue: VecDeque::new(),
            inflight: Vec::new(),
            last_done: vec![None; n_vms],
            times_migrated: vec![0; n_vms],
            counters: SchedCounters::default(),
            decisions: Vec::new(),
            armed: true,
            predict: None,
        });
    }
    sim.schedule_fast_in(cfg.period, tick_timer());
}

/// Stop the periodic check. Already-queued selections stay queued (and
/// still start as in-flight migrations complete); no new host checks run.
pub fn disarm_scheduler(sim: &mut Simulation<World>) {
    if let Some(s) = sim.state_mut().sched.as_mut() {
        s.armed = false;
    }
}

/// Overlay the cycle predictor on an armed scheduler: each tick samples
/// every managed host's aggregate WSS into a per-host
/// [`crate::predict::CycleDetector`], and watermark selections on hosts
/// with a confident cycle are deferred to the predicted trough (bounded
/// by `cfg.max_defer`) instead of firing immediately. Unarmed, the
/// scheduler is byte-identical to the plain watermark scheduler.
pub fn arm_predictor(sim: &mut Simulation<World>, cfg: crate::predict::PredictConfig) {
    let s = sim
        .state_mut()
        .sched
        .as_mut()
        .expect("arm the scheduler before the predictor");
    assert!(s.predict.is_none(), "predictor already armed");
    assert!(
        cfg.min_period >= 2 && cfg.max_period >= cfg.min_period,
        "bad period range"
    );
    let n = s.hosts.len();
    s.predict = Some(crate::predict::PredictExec {
        cfg,
        detectors: vec![crate::predict::CycleDetector::new(cfg.window); n],
        had_cycle: vec![false; n],
        cycles: vec![None; n],
        deferred: Vec::new(),
        counters: crate::predict::PredictCounters::default(),
    });
}

/// One predictor pass, run at the top of every scheduler tick when the
/// overlay is armed: sample each managed host, refresh its cycle cache
/// (edge-counting detections), then fire deferred migrations whose time
/// has come.
fn predict_tick(sim: &mut Simulation<World>) {
    let now = sim.now();
    // Sample + refresh cycles.
    let due: Vec<crate::predict::DeferredMig> = {
        let w = sim.state_mut();
        let Some(s) = w.sched.as_mut() else { return };
        if s.predict.is_none() {
            return;
        }
        let hosts: Vec<usize> = s.hosts.iter().map(|mh| mh.host).collect();
        let samples: Vec<f64> = {
            // Reborrow immutably for the aggregate scan.
            let w_ref: &World = w;
            hosts
                .iter()
                .map(|&h| host_aggregate(w_ref, h) as f64)
                .collect()
        };
        let s = w.sched.as_mut().expect("checked above");
        let p = s.predict.as_mut().expect("checked above");
        for (i, v) in samples.into_iter().enumerate() {
            p.detectors[i].push(v);
            let cycle = p.detectors[i].detect(&p.cfg);
            if cycle.is_some() && !p.had_cycle[i] {
                p.counters.cycles_detected += 1;
            }
            p.had_cycle[i] = cycle.is_some();
            p.cycles[i] = cycle;
        }
        // Split out due deferrals (stable order: as recorded).
        let mut due = Vec::new();
        p.deferred.retain(|d| {
            if d.fire_at <= now {
                due.push(*d);
                false
            } else {
                true
            }
        });
        due
    };
    for d in due {
        let (alive, load_now) = {
            let w = sim.state();
            let slot = &w.vms[d.vm];
            let alive =
                slot.migration.is_none() && slot.host == d.src && slot.vm.state().can_execute();
            (alive, host_aggregate(w, d.src))
        };
        {
            let w = sim.state_mut();
            let p = w
                .sched
                .as_mut()
                .and_then(|s| s.predict.as_mut())
                .expect("predictor armed");
            if !alive {
                p.counters.cancelled += 1;
                continue;
            }
            if d.clamped {
                // Already counted as a window expiry at defer time; the
                // firing is the naive fallback, not a trough claim.
            } else if load_now < d.load_at_defer {
                p.counters.trough_hits += 1;
            } else {
                p.counters.trough_misses += 1;
            }
        }
        admit(sim, d.vm, d.src);
    }
}

/// Defer `vm` toward the predicted trough of `src`'s cycle. Returns
/// false when the predictor is unarmed, shows no confident cycle for the
/// host, or predicts the trough is *now* — callers then admit naively.
fn try_defer(sim: &mut Simulation<World>, vm: usize, src: usize, host_slot: usize) -> bool {
    let now = sim.now();
    let period = {
        let Some(s) = sim.state().sched.as_ref() else {
            return false;
        };
        s.cfg.period
    };
    let (fire_at, clamped, load_now) = {
        let w = sim.state();
        let s = w.sched.as_ref().expect("scheduler armed");
        let Some(p) = s.predict.as_ref() else {
            return false;
        };
        let Some(cycle) = p.cycles[host_slot] else {
            return false;
        };
        let ticks = cycle.ticks_to_trough();
        if ticks == 0 {
            return false; // the trough is now: fire naively
        }
        let mut wait = SimDuration::from_nanos(period.as_nanos() * ticks as u64);
        // Trough capacity is limited: migrations stacked into one trough
        // share the source NIC and re-create the interference the
        // deferral avoids. Stagger same-source deferrals across
        // successive troughs, one full cycle apart (still bounded by
        // `max_defer` below).
        let cycle_len = SimDuration::from_nanos(period.as_nanos() * cycle.period as u64);
        let half = SimDuration::from_nanos(cycle_len.as_nanos() / 2);
        while p.deferred.iter().any(|d| {
            let t = now + wait;
            d.src == src
                && d.fire_at
                    .saturating_since(t)
                    .max(t.saturating_since(d.fire_at))
                    < half
        }) {
            wait += cycle_len;
        }
        let bound = p.cfg.max_defer;
        if wait > bound {
            (now + bound, true, host_aggregate(w, src))
        } else {
            (now + wait, false, host_aggregate(w, src))
        }
    };
    let w = sim.state_mut();
    let s = w.sched.as_mut().expect("scheduler armed");
    let p = s.predict.as_mut().expect("checked above");
    p.deferred.push(crate::predict::DeferredMig {
        vm,
        src,
        fire_at,
        load_at_defer: load_now,
        clamped,
    });
    p.counters.deferrals += 1;
    if clamped {
        p.counters.window_expiries += 1;
    }
    s.decisions.push(Decision {
        at: now,
        vm,
        src,
        dest: None,
        action: SchedAction::TroughDefer,
    });
    w.trace.record(
        now,
        TraceEvent::SchedDecision {
            vm: vm as u32,
            src: src as u32,
            dest: u32::MAX,
            action: SchedAction::TroughDefer,
        },
    );
    w.trace.record(
        now,
        TraceEvent::SchedDefer {
            vm: vm as u32,
            src: src as u32,
            fire_t_ns: fire_at.as_nanos(),
            clamped,
        },
    );
    true
}

/// One scheduler tick: drain the admission queue into free slots, then
/// run watermark selection over every managed host in order.
pub(crate) fn tick(sim: &mut Simulation<World>) {
    let (armed, period) = match sim.state().sched.as_ref() {
        Some(s) => (s.armed, s.cfg.period),
        None => return,
    };
    if !armed {
        return;
    }
    predict_tick(sim);
    drain_queue(sim);
    let hosts: Vec<ManagedHost> = sim
        .state()
        .sched
        .as_ref()
        .expect("armed above")
        .hosts
        .clone();
    for (slot, mh) in hosts.into_iter().enumerate() {
        check_host(sim, slot, mh);
    }
    sim.schedule_fast_in(period, tick_timer());
}

/// Watermark-check one managed host and admit its selected VMs.
/// `host_slot` is the host's position in [`SchedExec::hosts`] (the
/// predictor's cycle cache is parallel to that list).
fn check_host(sim: &mut Simulation<World>, host_slot: usize, mh: ManagedHost) {
    let now = sim.now();
    let selected: Vec<u32> = {
        let w = sim.state();
        let s = w.sched.as_ref().expect("scheduler armed");
        // Queued VMs are already committed to leave: they contribute
        // neither pressure nor candidacy to this firing (counting their
        // WSS would over-select; re-selecting them would double-migrate).
        // Trough-deferred VMs are equally committed and get the same
        // treatment.
        let mut vms = wssctl::host_wss_of(w, mh.host);
        vms.retain(|v| !s.queue.contains(&(v.vm as usize)));
        if let Some(p) = s.predict.as_ref() {
            vms.retain(|v| !p.deferred.iter().any(|d| d.vm == v.vm as usize));
        }
        // Suspect-aware + cooldown-aware eligibility (see `wssctl` for
        // the repair-queue rationale).
        let deferred: HashSet<NamespaceId> =
            w.chaos.repair_queue.iter().map(|&(ns, _)| ns).collect();
        mh.trigger.select_vms_filtered(&vms, |vm| {
            let vmi = vm as usize;
            let ns_ok = match w.vms[vmi].swap.namespace() {
                Some(ns) => !deferred.contains(&ns),
                None => true,
            };
            let cooled = match s.last_done[vmi] {
                Some(done) => now.saturating_since(done) >= s.cfg.cooldown,
                None => true,
            };
            ns_ok && cooled
        })
    };
    for vm in selected {
        if !try_defer(sim, vm as usize, mh.host, host_slot) {
            admit(sim, vm as usize, mh.host);
        }
    }
}

/// Route one selected VM: start its migration if an admission slot and a
/// destination exist, queue it when the cap is full, defer it when no
/// destination passes the guards.
fn admit(sim: &mut Simulation<World>, vm: usize, src: usize) {
    let now = sim.now();
    let at_cap = {
        let s = sim.state().sched.as_ref().expect("scheduler armed");
        s.inflight.len() >= s.cfg.max_in_flight
    };
    if at_cap {
        let w = sim.state_mut();
        let s = w.sched.as_mut().expect("scheduler armed");
        s.queue.push_back(vm);
        s.counters.queued += 1;
        s.decisions.push(Decision {
            at: now,
            vm,
            src,
            dest: None,
            action: SchedAction::Queue,
        });
        w.trace.record(
            now,
            TraceEvent::SchedDecision {
                vm: vm as u32,
                src: src as u32,
                dest: u32::MAX,
                action: SchedAction::Queue,
            },
        );
        return;
    }
    match place(sim.state(), vm) {
        Some(dest) => start_scheduled(sim, vm, src, dest),
        None => {
            let w = sim.state_mut();
            let s = w.sched.as_mut().expect("scheduler armed");
            s.counters.deferred_no_dest += 1;
            s.decisions.push(Decision {
                at: now,
                vm,
                src,
                dest: None,
                action: SchedAction::Defer,
            });
            w.trace.record(
                now,
                TraceEvent::SchedDecision {
                    vm: vm as u32,
                    src: src as u32,
                    dest: u32::MAX,
                    action: SchedAction::Defer,
                },
            );
        }
    }
}

/// Reservation bytes of unfinished migrations headed to `host`.
///
/// Returns `(committed, pre_resume)`: `committed` counts every unfinished
/// inbound migration (its WSS will be on `host` — used by the ping-pong
/// guard, whose `host_wss_of` term excludes still-migrating VMs);
/// `pre_resume` counts only migrations that have not resumed yet, whose
/// reservation the host ledger does not carry yet (used for headroom).
fn inbound_bytes(w: &World, host: usize) -> (u64, u64) {
    let mut committed = 0u64;
    let mut pre_resume = 0u64;
    for m in &w.migrations {
        if m.finished || m.dest_host != host {
            continue;
        }
        committed += m.dest_reservation;
        if m.dest_mem.is_some() {
            pre_resume += m.dest_reservation;
        }
    }
    (committed, pre_resume)
}

/// Pick a destination for `vm` per the configured policy, or `None` when
/// no managed host passes feasibility, headroom, and the ping-pong guard.
pub fn place(w: &World, vm: usize) -> Option<usize> {
    let s = w.sched.as_ref()?;
    let vm_wss = w.vms[vm].vm.memory().limit_bytes();
    let src = w.vms[vm].host;
    let mut best: Option<(u64, usize)> = None;
    for mh in &s.hosts {
        let h = mh.host;
        if h == src {
            continue;
        }
        // Mirror the migration executor's destination requirements. A
        // VMD-backed VM additionally needs the pool to have leased DRAM
        // headroom somewhere (an armed pool manager narrows the advertised
        // capacity to what donors actually contribute right now).
        let feasible = match w.vms[vm].swap.namespace() {
            Some(_) => w.vmd.host_client.contains_key(&h) && crate::poolctl::placement_feasible(w),
            None => w.hosts[h].ssd.is_some(),
        };
        if !feasible {
            continue;
        }
        let (committed, pre_resume) = inbound_bytes(w, h);
        let headroom = w.hosts[h].mem.free_bytes().saturating_sub(pre_resume);
        if headroom < vm_wss {
            continue;
        }
        // Ping-pong guard: the post-arrival aggregate (running VMs +
        // everything already in flight toward this host + this VM) must
        // sit a hysteresis margin below the destination's own high
        // watermark, or it would fire right back.
        let resident: u64 = wssctl::host_wss_of(w, h).iter().map(|v| v.wss_bytes).sum();
        let post_arrival = resident + committed + vm_wss;
        let band = mh.trigger.high_bytes - mh.trigger.low_bytes;
        let margin = (band as f64 * s.cfg.hysteresis) as u64;
        if post_arrival > mh.trigger.high_bytes.saturating_sub(margin) {
            continue;
        }
        match s.cfg.policy {
            PlacementPolicy::FirstFit => return Some(h),
            PlacementPolicy::LeastLoaded => {
                if best.map(|(b, _)| headroom > b).unwrap_or(true) {
                    best = Some((headroom, h));
                }
            }
        }
    }
    best.map(|(_, h)| h)
}

/// Start one admitted migration and record the decision.
fn start_scheduled(sim: &mut Simulation<World>, vm: usize, src: usize, dest: usize) {
    let now = sim.now();
    let (resv, verify, src_cfg) = {
        let w = sim.state();
        let s = w.sched.as_ref().expect("scheduler armed");
        (
            w.vms[vm].vm.memory().limit_bytes(),
            s.cfg.verify_content,
            s.cfg.src_cfg,
        )
    };
    let mig = migrate::start_migration(sim, vm, dest, src_cfg, resv);
    let w = sim.state_mut();
    w.migrations[mig].verify_content = verify;
    let s = w.sched.as_mut().expect("scheduler armed");
    s.inflight.push(vm);
    s.counters.started += 1;
    s.counters.max_in_flight_observed = s
        .counters
        .max_in_flight_observed
        .max(s.inflight.len() as u64);
    s.times_migrated[vm] += 1;
    s.decisions.push(Decision {
        at: now,
        vm,
        src,
        dest: Some(dest),
        action: SchedAction::Start,
    });
    w.trace.record(
        now,
        TraceEvent::SchedDecision {
            vm: vm as u32,
            src: src as u32,
            dest: dest as u32,
            action: SchedAction::Start,
        },
    );
}

/// Hook from the migration executor: migration of `vm` finalized. If the
/// scheduler started it, release its admission slot, stamp the cooldown,
/// and start queued selections while slots are free.
pub(crate) fn on_migration_finished(sim: &mut Simulation<World>, vm: usize) {
    let now = sim.now();
    let was_scheduled = {
        let w = sim.state_mut();
        match w.sched.as_mut() {
            Some(s) => match s.inflight.iter().position(|&v| v == vm) {
                Some(i) => {
                    s.inflight.remove(i);
                    s.counters.completed += 1;
                    s.last_done[vm] = Some(now);
                    true
                }
                None => false,
            },
            None => false,
        }
    };
    if was_scheduled {
        drain_queue(sim);
    }
}

/// Start queued selections while admission slots are free, re-validating
/// each at dequeue. Keeps FIFO order: a head entry that currently has no
/// destination holds the queue until the next tick or completion.
fn drain_queue(sim: &mut Simulation<World>) {
    enum Verdict {
        /// The selection is stale: drop it (src recorded for the log).
        Drop { src: usize },
        /// Start toward this destination.
        Start { src: usize, dest: usize },
        /// No destination right now; keep waiting.
        Hold,
    }
    loop {
        let now = sim.now();
        let vm = {
            let Some(s) = sim.state().sched.as_ref() else {
                return;
            };
            if s.inflight.len() >= s.cfg.max_in_flight {
                return;
            }
            match s.queue.front() {
                Some(&vm) => vm,
                None => return,
            }
        };
        let verdict = {
            let w = sim.state();
            let s = w.sched.as_ref().expect("checked above");
            let src = w.vms[vm].host;
            // The host may have recovered while the VM waited (earlier
            // departures already relieved it), or something else may have
            // migrated the VM meanwhile; in both cases the selection is
            // stale. "Recovered" counts the VMs that would stay — every
            // running VM not itself queued — plus this one.
            let migrating_elsewhere = w.vms[vm].migration.is_some();
            let recovered = s
                .hosts
                .iter()
                .find(|mh| mh.host == src)
                .map(|mh| {
                    let agg: u64 = wssctl::host_wss_of(w, src)
                        .iter()
                        .filter(|v| v.vm as usize == vm || !s.queue.contains(&(v.vm as usize)))
                        .map(|v| v.wss_bytes)
                        .sum();
                    agg <= mh.trigger.low_bytes
                })
                .unwrap_or(false);
            if migrating_elsewhere || recovered {
                Verdict::Drop { src }
            } else {
                match place(w, vm) {
                    Some(dest) => Verdict::Start { src, dest },
                    None => Verdict::Hold,
                }
            }
        };
        match verdict {
            Verdict::Drop { src } => {
                let w = sim.state_mut();
                let s = w.sched.as_mut().expect("checked above");
                s.queue.pop_front();
                s.counters.dropped_recovered += 1;
                s.decisions.push(Decision {
                    at: now,
                    vm,
                    src,
                    dest: None,
                    action: SchedAction::Drop,
                });
                w.trace.record(
                    now,
                    TraceEvent::SchedDecision {
                        vm: vm as u32,
                        src: src as u32,
                        dest: u32::MAX,
                        action: SchedAction::Drop,
                    },
                );
            }
            Verdict::Start { src, dest } => {
                sim.state_mut()
                    .sched
                    .as_mut()
                    .expect("checked above")
                    .queue
                    .pop_front();
                start_scheduled(sim, vm, src, dest);
            }
            Verdict::Hold => return,
        }
    }
}

/// Aggregate tracked WSS (running, non-migrating VMs) of `host`.
pub fn host_aggregate(w: &World, host: usize) -> u64 {
    wssctl::host_wss_of(w, host)
        .iter()
        .map(|v| v.wss_bytes)
        .sum()
}
