//! Workload-cycle prediction for migration orchestration.
//!
//! Following Baruchi et al. (*Exploiting Workload Cycles for
//! Orchestration of VM Live Migrations*), the scheduler can do better
//! than firing a migration the instant a watermark trips: cyclic guests
//! (diurnal load, periodic batch jobs) are cheapest to move at the
//! *trough* of their cycle, when the resident set and dirty rate are
//! smallest. This module detects cycles in the per-host aggregate-WSS
//! sample stream the scheduler already computes each tick, and predicts
//! when the next trough lands.
//!
//! Detection is **epoch-folded autocorrelation**:
//!
//! 1. keep a ring of the most recent `window` samples per host;
//! 2. compute the normalized autocorrelation `r(L)` for every candidate
//!    lag `L` in `[min_period, max_period]` that at least two full
//!    epochs of data support; the best `r` is the cycle *confidence*;
//! 3. fold the sample history into `L` phase bins (epoch folding) and
//!    take the bin with the minimal mean as the *trough phase*.
//!
//! Everything is pure integer/float arithmetic over the sample ring —
//! no RNG, no events — so detection is deterministic and (for
//! power-of-two amplitude scalings) exactly scale-invariant, which the
//! metamorphic suite pins.

use agile_sim_core::SimDuration;

/// Cycle-predictor configuration (lives inside the scheduler's
/// deferral layer, see [`crate::sched::arm_predictor`]).
#[derive(Clone, Copy, Debug)]
pub struct PredictConfig {
    /// Samples of history retained per host.
    pub window: usize,
    /// Shortest candidate period, in scheduler ticks.
    pub min_period: usize,
    /// Longest candidate period, in scheduler ticks.
    pub max_period: usize,
    /// Minimum autocorrelation for a cycle to be trusted; below this the
    /// scheduler falls back to naive watermark firing.
    pub min_confidence: f64,
    /// Bound on how long a selected VM may wait for its trough. A
    /// predicted trough beyond this window clamps to the window's end
    /// (counted as a deferral-window expiry).
    pub max_defer: SimDuration,
}

impl Default for PredictConfig {
    fn default() -> Self {
        PredictConfig {
            window: 64,
            min_period: 4,
            max_period: 32,
            min_confidence: 0.5,
            max_defer: SimDuration::from_secs(120),
        }
    }
}

/// A detected cycle in one host's load samples.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Cycle {
    /// Period in samples (scheduler ticks).
    pub period: usize,
    /// Normalized autocorrelation at that period, in `[-1, 1]`.
    pub confidence: f64,
    /// Phase bin (sample index mod period) with the minimal folded mean.
    pub trough_phase: usize,
    /// Phase bin of the newest sample.
    pub current_phase: usize,
}

impl Cycle {
    /// Ticks from the newest sample to the next trough (0 = now is the
    /// trough).
    pub fn ticks_to_trough(&self) -> usize {
        (self.trough_phase + self.period - self.current_phase) % self.period
    }
}

/// Fixed-capacity ring of load samples with cycle detection.
#[derive(Clone, Debug)]
pub struct CycleDetector {
    buf: Vec<f64>,
    head: usize,
    len: usize,
    /// Total samples ever pushed (phase origin for epoch folding).
    pushed: u64,
}

impl CycleDetector {
    /// A detector retaining the most recent `window` samples.
    pub fn new(window: usize) -> Self {
        assert!(window >= 8, "window too small to fold");
        CycleDetector {
            buf: vec![0.0; window],
            head: 0,
            len: 0,
            pushed: 0,
        }
    }

    /// Append one sample, evicting the oldest when full.
    pub fn push(&mut self, v: f64) {
        let cap = self.buf.len();
        let pos = (self.head + self.len) % cap;
        self.buf[pos] = v;
        if self.len < cap {
            self.len += 1;
        } else {
            self.head = (self.head + 1) % cap;
        }
        self.pushed += 1;
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no sample has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Sample `i` (0 = oldest retained).
    fn at(&self, i: usize) -> f64 {
        self.buf[(self.head + i) % self.buf.len()]
    }

    /// Detect the strongest cycle, if any lag in
    /// `[cfg.min_period, cfg.max_period]` reaches `cfg.min_confidence`.
    ///
    /// Ties break toward the *shortest* period (the fundamental beats
    /// its harmonics), and the trough phase breaks ties toward the
    /// earliest bin — both deterministic.
    pub fn detect(&self, cfg: &PredictConfig) -> Option<Cycle> {
        let n = self.len;
        if n < 2 * cfg.min_period.max(2) {
            return None;
        }
        let nf = n as f64;
        let mut mean = 0.0;
        for i in 0..n {
            mean += self.at(i);
        }
        mean /= nf;
        let mut denom = 0.0;
        for i in 0..n {
            let d = self.at(i) - mean;
            denom += d * d;
        }
        if denom == 0.0 {
            return None; // flat signal: no cycle
        }
        let mut best: Option<(usize, f64)> = None;
        let max_lag = cfg.max_period.min(n / 2);
        for lag in cfg.min_period..=max_lag {
            let mut num = 0.0;
            for i in 0..n - lag {
                num += (self.at(i) - mean) * (self.at(i + lag) - mean);
            }
            let r = num / denom;
            if r >= cfg.min_confidence && best.map(|(_, b)| r > b).unwrap_or(true) {
                best = Some((lag, r));
            }
        }
        let (period, confidence) = best?;
        // Epoch folding: mean per phase bin. Phases are anchored at the
        // *global* sample count so a detector that has evicted old
        // samples keeps a stable phase origin.
        let oldest_idx = self.pushed - n as u64;
        let mut sums = vec![0.0f64; period];
        let mut counts = vec![0u32; period];
        for i in 0..n {
            let phase = ((oldest_idx + i as u64) % period as u64) as usize;
            sums[phase] += self.at(i);
            counts[phase] += 1;
        }
        let mut trough_phase = 0usize;
        let mut trough_mean = f64::INFINITY;
        for (b, (&s, &c)) in sums.iter().zip(counts.iter()).enumerate() {
            if c == 0 {
                continue;
            }
            let m = s / f64::from(c);
            if m < trough_mean {
                trough_mean = m;
                trough_phase = b;
            }
        }
        let current_phase = ((self.pushed - 1) % period as u64) as usize;
        Some(Cycle {
            period,
            confidence,
            trough_phase,
            current_phase,
        })
    }
}

/// Counters published under `sched.predict.*` when the predictor is
/// armed (satellite: observability).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PredictCounters {
    /// Host-cycle detections (transitions from "no cycle" to "cycle").
    pub cycles_detected: u64,
    /// Watermark selections deferred toward a predicted trough.
    pub deferrals: u64,
    /// Deferrals whose predicted trough fell outside the bounded window
    /// and were clamped to its end (naive fallback).
    pub window_expiries: u64,
    /// Deferred firings where the host aggregate at fire time was lower
    /// than at selection time (the trough materialized).
    pub trough_hits: u64,
    /// Deferred firings where it was not.
    pub trough_misses: u64,
    /// Deferrals abandoned because the VM migrated or vanished meanwhile.
    pub cancelled: u64,
}

/// One migration waiting for its predicted trough.
#[derive(Clone, Copy, Debug)]
pub struct DeferredMig {
    /// The selected VM.
    pub vm: usize,
    /// Its overloaded host at selection time.
    pub src: usize,
    /// When to fire (already clamped into the deferral window).
    pub fire_at: agile_sim_core::SimTime,
    /// Host aggregate WSS at selection time (hit/miss baseline).
    pub load_at_defer: u64,
    /// True when `fire_at` was clamped by `max_defer`.
    pub clamped: bool,
}

/// Trough-deferral state hanging off the scheduler
/// ([`crate::sched::SchedExec::predict`]). `None` there means the
/// scheduler behaves exactly as before — the predictor is pure overlay.
pub struct PredictExec {
    /// Configuration.
    pub cfg: PredictConfig,
    /// One detector per managed host (parallel to `SchedExec::hosts`).
    pub detectors: Vec<CycleDetector>,
    /// Whether each managed host currently shows a confident cycle
    /// (edge-detected for the `cycles_detected` counter).
    pub had_cycle: Vec<bool>,
    /// The cycle (if any) each managed host showed at the last sample
    /// tick; the deferral decision in `check_host` reads this cache.
    pub cycles: Vec<Option<Cycle>>,
    /// Migrations waiting for their trough.
    pub deferred: Vec<DeferredMig>,
    /// Counters.
    pub counters: PredictCounters,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PredictConfig {
        PredictConfig::default()
    }

    /// A clean period-8 square wave is detected with its trough.
    #[test]
    fn detects_square_wave_cycle() {
        let mut d = CycleDetector::new(64);
        for i in 0..64u64 {
            // Phase 0..3 high, 4..7 low.
            d.push(if i % 8 < 4 { 100.0 } else { 10.0 });
        }
        let c = d.detect(&cfg()).expect("cycle");
        assert_eq!(c.period, 8);
        // A perfect cycle scores (n - lag) / n: the lag-truncated sum
        // covers 56 of the 64 equal squared deviations.
        assert_eq!(c.confidence, 56.0 / 64.0);
        assert!(
            (4..8).contains(&c.trough_phase),
            "trough {}",
            c.trough_phase
        );
        assert_eq!(c.current_phase, 63 % 8);
    }

    /// Flat load has zero variance: no cycle, no deferral.
    #[test]
    fn flat_signal_has_no_cycle() {
        let mut d = CycleDetector::new(64);
        for _ in 0..64 {
            d.push(42.0);
        }
        assert!(d.detect(&cfg()).is_none());
    }

    /// Too little history: no detection.
    #[test]
    fn needs_two_epochs() {
        let mut d = CycleDetector::new(64);
        for i in 0..7u64 {
            d.push(i as f64);
        }
        assert!(d.detect(&cfg()).is_none());
    }

    /// ticks_to_trough wraps correctly.
    #[test]
    fn ticks_to_trough_wraps() {
        let c = Cycle {
            period: 8,
            confidence: 1.0,
            trough_phase: 2,
            current_phase: 6,
        };
        assert_eq!(c.ticks_to_trough(), 4);
        let at = Cycle {
            current_phase: 2,
            ..c
        };
        assert_eq!(at.ticks_to_trough(), 0);
    }

    /// The ring keeps a stable phase origin across evictions: after
    /// overflowing the window, detection still works and phases stay
    /// consistent with the global push count.
    #[test]
    fn phase_origin_survives_eviction() {
        let mut d = CycleDetector::new(64);
        for i in 0..200u64 {
            d.push(if i % 8 < 4 { 100.0 } else { 10.0 });
        }
        let c = d.detect(&cfg()).expect("cycle");
        assert_eq!(c.period, 8);
        assert_eq!(c.current_phase, 199 % 8);
        assert!((4..8).contains(&c.trough_phase));
    }
}
