//! Elastic clone controller: rapid scale-out via copy-on-write namespace
//! forks and memory-streaming VM cloning.
//!
//! A *master* VM is prepared as a passive gold image: its workload is
//! detached and its reservation driven to zero, so the whole image ends
//! up swapped out to its portable VMD namespace (*sealing*). Forking that
//! namespace is then a metadata operation — the clone shares every stored
//! page read-only through per-page refcounts — and a new VM can start
//! serving on any host immediately, demand-paging from the shared image
//! post-copy style while a paced background pump hydrates the rest
//! ([`HydrationMode::Streamed`]). The alternative arm
//! ([`HydrationMode::Precopy`]) hydrates the full image before the clone
//! takes traffic, reproducing classic whole-image cloning for the A/B
//! comparison in `scenario::scaleout`.
//!
//! The controller is driven by a load [`Signal`]: crossing `high_water`
//! spawns clones (up to `max_clones`, batched `clones_per_tick` per
//! tick); falling under `low_water` drains and tears the newest clone
//! down — the purge walks the fork's refcounts so master pages shared
//! with surviving clones are never dropped.
//!
//! Cost model: unarmed worlds carry [`World::clone`]` = None` — zero
//! state, zero events, no fork is ever issued, and every legacy trace
//! replays byte-identically.

use std::cell::RefCell;
use std::rc::Rc;

use agile_memory::{
    PageFlags, PagemapEntry, SlotAllocator, SwapBackend, SwapIssue, VmMemory, VmMemoryConfig,
};
use agile_sim_core::{FastEvent, SimDuration, SimTime, Simulation, ThroughputMeter, TimeSeries};
use agile_trace::TraceEvent;
use agile_vm::{HostId, Vm, VmId};
use agile_vmd::{NamespaceId, VmdSwapDevice};
use agile_workload::Signal;

use crate::guest::{self, charge_evictions, EvictTarget};
use crate::world::{ClientBinding, FaultEntry, SwapDev, SwapReqCtx, VmSlot, WorkloadKind, World};
use crate::{fast, vmdio};

/// How a spawned clone's memory arrives from the shared gold image.
#[derive(Clone, Copy, Debug)]
pub enum HydrationMode {
    /// Post-copy style: the clone serves immediately, faulting pages on
    /// demand while a background pump streams the rest at a pace bounded
    /// by the fabric budget (`pages_per_tick` per `hydrate_period`).
    Streamed {
        /// Background-pump pages issued per hydration tick.
        pages_per_tick: u32,
    },
    /// Classic whole-image cloning: the full image is pulled before the
    /// clone takes traffic. The pump runs unpaced (a large per-tick
    /// batch) and the workload starts only at hydration completion.
    Precopy {
        /// Pages issued per hydration tick (set high: this arm is a
        /// full-speed bulk copy).
        pages_per_tick: u32,
    },
}

impl HydrationMode {
    fn pages_per_tick(self) -> u32 {
        match self {
            HydrationMode::Streamed { pages_per_tick } => pages_per_tick,
            HydrationMode::Precopy { pages_per_tick } => pages_per_tick,
        }
    }
}

/// Static configuration of the clone controller.
pub struct CloneCtlConfig {
    /// VM index of the gold-image master. Must be a passive template:
    /// no workload attached (sealing never completes otherwise).
    pub master: usize,
    /// Controller tick period (seal polling, watermark evaluation,
    /// ready detection, teardown finalization).
    pub period: SimDuration,
    /// Background hydration pump period (per clone).
    pub hydrate_period: SimDuration,
    /// The load signal watched for flash crowds and troughs.
    pub signal: Signal,
    /// Signal value at/above which the controller scales out.
    pub high_water: f64,
    /// Signal value at/below which the controller scales in.
    pub low_water: f64,
    /// Hard cap on clones ever spawned.
    pub max_clones: usize,
    /// Clones spawned per tick while above `high_water`.
    pub clones_per_tick: usize,
    /// Destination hosts, used round-robin.
    pub dest_hosts: Vec<usize>,
    /// Host the clones' external load-generator clients run on.
    pub client_host: usize,
    /// Each clone's cgroup reservation.
    pub clone_reservation_bytes: u64,
    /// Streamed (post-copy) vs precopy hydration — the A/B knob.
    pub hydration: HydrationMode,
    /// Zero-downtime in-place host upgrade: the first clone lands on the
    /// master's own host, and once every clone is spawned and one is
    /// serving, the master's namespace is purged (shared pages are
    /// retained by the fork refcounts until the last clone drops them).
    pub in_place_upgrade: bool,
    /// Think time of each clone's external client threads, ns (paces
    /// the closed loop; 0 = saturating).
    pub client_think_ns: u64,
    /// Builds the workload a fresh clone serves (clone index → model).
    pub make_workload: Rc<dyn Fn(usize) -> WorkloadKind>,
}

/// Cumulative counters published under `clone.*` when armed.
#[derive(Clone, Copy, Debug, Default)]
pub struct CloneCounters {
    /// Namespace forks issued.
    pub forks: u64,
    /// Clone VMs spawned.
    pub spawned: u64,
    /// Clones that served their first request.
    pub ready: u64,
    /// Clones fully torn down (namespace purged).
    pub torn_down: u64,
    /// Copy-on-write share breaks (first writes to shared pages).
    pub cow_breaks: u64,
    /// Pages streamed in by the background hydration pumps.
    pub hydrated_pages: u64,
}

/// Per-clone lifecycle state.
pub struct CloneState {
    /// VM slot index of the clone.
    pub vm: usize,
    /// The clone's forked namespace.
    pub ns: NamespaceId,
    /// When the clone was spawned (fork + VM construction).
    pub spawned_at: SimTime,
    /// Controller tick that first saw a completed request (time to first
    /// page served, at tick resolution).
    pub ready_at: Option<SimTime>,
    /// When background hydration finished (whole image resident or
    /// faulted in), if it ran to completion.
    pub hydrated_at: Option<SimTime>,
    /// Hydration cursor: next PFN the pump examines.
    pub cursor: u32,
    /// Hydration reads in flight.
    pub inflight: u32,
    /// The clone's client threads have been started.
    pub workload_started: bool,
    /// Scale-in: workload detached, waiting for quiescence.
    pub draining: bool,
    /// Fully torn down (namespace purged, slot inert).
    pub torn_down: bool,
}

/// Armed clone-controller state hanging off [`World::clone`].
pub struct CloneExec {
    /// Static configuration.
    pub cfg: CloneCtlConfig,
    /// The master's portable namespace.
    pub master_ns: NamespaceId,
    /// The gold image is fully swapped out and write-quiesced; forking
    /// is safe.
    pub sealed: bool,
    /// In-place upgrade completed: the master namespace was purged.
    pub master_purged: bool,
    /// Clones, in spawn order (never removed; `torn_down` marks dead).
    pub clones: Vec<CloneState>,
    /// Published counters.
    pub counters: CloneCounters,
    /// False after [`disarm_cloning`]: the next tick stops the chain.
    pub armed: bool,
    /// Round-robin cursor into `cfg.dest_hosts`.
    next_dest: usize,
}

impl CloneExec {
    /// Clones neither draining nor torn down.
    pub fn live_clones(&self) -> usize {
        self.clones
            .iter()
            .filter(|c| !c.draining && !c.torn_down)
            .count()
    }
}

/// Arm the controller: start sealing the master (evict its whole image
/// to the fabric) and begin the periodic tick. The master must be a
/// passive template — workload detached — or sealing never quiesces.
pub fn arm_cloning(sim: &mut Simulation<World>, cfg: CloneCtlConfig) {
    assert!(
        sim.state().clone.is_none(),
        "clone controller already armed"
    );
    let master = cfg.master;
    assert!(
        sim.state().vms[master].workload.is_none(),
        "clone master must be a passive template VM (no workload)"
    );
    let master_ns = sim.state().vms[master]
        .swap
        .namespace()
        .expect("clone master must swap to a VMD namespace");
    // Seal step 1: push every template page out to the namespace. The
    // eviction write-backs are charged like any reservation change.
    crate::scenario::set_reservation(sim, master, 0);
    let period = cfg.period;
    sim.state_mut().clone = Some(CloneExec {
        cfg,
        master_ns,
        sealed: false,
        master_purged: false,
        clones: Vec::new(),
        counters: CloneCounters::default(),
        armed: true,
        next_dest: 0,
    });
    schedule_tick(sim, period);
}

/// Stop the controller: the pending tick becomes a no-op that does not
/// reschedule. State and counters remain readable for reporting.
pub fn disarm_cloning(sim: &mut Simulation<World>) {
    if let Some(ex) = sim.state_mut().clone.as_mut() {
        ex.armed = false;
    }
}

fn schedule_tick(sim: &mut Simulation<World>, period: SimDuration) {
    sim.schedule_fast_in(
        period,
        FastEvent::Timer {
            kind: fast::K_CLONE_TICK,
            a: 0,
            b: 0,
        },
    );
}

/// One controller tick: seal polling, ready detection, watermark
/// evaluation (spawn / drain), teardown finalization, master purge.
pub(crate) fn tick(sim: &mut Simulation<World>) {
    let Some(ex) = sim.state().clone.as_ref() else {
        return;
    };
    if !ex.armed {
        return;
    }
    let now = sim.now();
    let period = ex.cfg.period;

    if !sim.state().clone.as_ref().expect("armed").sealed {
        try_seal(sim);
    }
    if sim.state().clone.as_ref().expect("armed").sealed {
        detect_ready(sim, now);
        let (value, high, low, can_spawn, live, max, batch) = {
            let ex = sim.state().clone.as_ref().expect("armed");
            (
                ex.cfg.signal.value_at(now),
                ex.cfg.high_water,
                ex.cfg.low_water,
                !ex.master_purged && ex.clones.len() < ex.cfg.max_clones,
                ex.live_clones(),
                ex.cfg.max_clones,
                ex.cfg.clones_per_tick,
            )
        };
        if value >= high && can_spawn {
            let spawned = sim.state().clone.as_ref().expect("armed").clones.len();
            let n = batch.min(max - spawned);
            for _ in 0..n {
                spawn_clone(sim);
            }
        } else if value <= low && live > 0 {
            begin_drain_newest(sim);
        }
        finalize_teardowns(sim);
        maybe_purge_master(sim);
    }
    schedule_tick(sim, period);
}

/// Seal poll: the gold image is forkable once every page is swapped out
/// *and* the master-host client has no unacknowledged write-backs — an
/// in-flight `WriteReq` racing the fork broadcast would store a page
/// with a stale refcount and drift the server mirror.
fn try_seal(sim: &mut Simulation<World>) {
    let w = sim.state_mut();
    let ex = w.clone.as_ref().expect("armed");
    let master = ex.cfg.master;
    let mem = w.vms[master].vm.memory();
    if mem.resident_pages() != 0 {
        return;
    }
    let client_idx = *w
        .vmd
        .host_client
        .get(&w.vms[master].host)
        .expect("master host has no VMD client");
    let quiesced = {
        let c = w.vmd.clients[client_idx].client.borrow();
        c.unacked_writes() == 0 && !c.has_outbox()
    };
    if quiesced {
        w.clone.as_mut().expect("armed").sealed = true;
    }
}

/// Mark clones that served their first completed request since the last
/// tick (time-to-first-page-served, at tick resolution).
fn detect_ready(sim: &mut Simulation<World>, now: SimTime) {
    let n = sim.state().clone.as_ref().expect("armed").clones.len();
    for idx in 0..n {
        let (vm, unready) = {
            let c = &sim.state().clone.as_ref().expect("armed").clones[idx];
            (c.vm, c.ready_at.is_none() && !c.torn_down)
        };
        if unready && sim.state().vms[vm].meter.total() > 0 {
            let w = sim.state_mut();
            let ex = w.clone.as_mut().expect("armed");
            ex.clones[idx].ready_at = Some(now);
            ex.counters.ready += 1;
            w.trace.record(
                now,
                TraceEvent::CloneReady {
                    clone: idx as u32,
                    vm: vm as u32,
                },
            );
        }
    }
}

/// Fork the gold namespace and spawn one clone VM on the next
/// destination host.
fn spawn_clone(sim: &mut Simulation<World>) {
    let now = sim.now();
    let (
        master,
        master_ns,
        dest,
        clone_res,
        client_host,
        clone_idx,
        start_now,
        think_ns,
        make_workload,
    ) = {
        let w = sim.state_mut();
        let ex = w.clone.as_mut().expect("armed");
        let clone_idx = ex.clones.len();
        let dest = if ex.cfg.in_place_upgrade && clone_idx == 0 {
            w.vms[ex.cfg.master].host
        } else {
            let d = ex.cfg.dest_hosts[ex.next_dest % ex.cfg.dest_hosts.len()];
            ex.next_dest += 1;
            d
        };
        (
            ex.cfg.master,
            ex.master_ns,
            dest,
            ex.cfg.clone_reservation_bytes,
            ex.cfg.client_host,
            clone_idx,
            matches!(ex.cfg.hydration, HydrationMode::Streamed { .. }),
            ex.cfg.client_think_ns,
            Rc::clone(&ex.cfg.make_workload),
        )
    };
    let (vm_idx, client_idx, clone_ns) = {
        let w = sim.state_mut();
        let client_idx = *w
            .vmd
            .host_client
            .get(&dest)
            .expect("clone destination host has no VMD client");
        // Metadata fork: the clone shares every stored master page
        // read-only; the refcount bump travels to the servers as an
        // `NsFork` broadcast (flushed below).
        let clone_ns = {
            let mut dir = w.vmd.directory.borrow_mut();
            let mut c = w.vmd.clients[client_idx].client.borrow_mut();
            c.fork_namespace(&mut dir, master_ns)
        };
        w.trace.record(
            now,
            TraceEvent::NsFork {
                master: master_ns.0,
                clone: clone_ns.0,
            },
        );
        // Private overlay slot space: `install_swapped` marks the shared
        // master slots as externally owned, so overlay allocations
        // (CoW-broken and newly-evicted pages) never collide with them.
        let alloc = Rc::new(RefCell::new(SlotAllocator::unbounded()));
        w.vmd.allocators.insert(clone_ns, Rc::clone(&alloc));
        let page_size = w.cfg.page_size;
        let (pages, vm_cfg, layout) = {
            let m = &w.vms[master];
            (m.vm.memory().pages(), *m.vm.config(), m.vm.layout().clone())
        };
        let mut image = VmMemory::new(VmMemoryConfig {
            pages,
            page_size,
            limit_pages: (clone_res / page_size) as u32,
        });
        image.use_shared_slots(alloc);
        let mut swapped: Vec<u32> = Vec::new();
        w.vms[master]
            .vm
            .memory()
            .for_each_swapped(|pfn| swapped.push(pfn));
        for pfn in swapped {
            let mmem = w.vms[master].vm.memory();
            let PagemapEntry::Swapped { slot } = mmem.pagemap(pfn) else {
                unreachable!("for_each_swapped yielded a non-swapped page");
            };
            image.install_swapped(pfn, slot, mmem.version(pfn));
        }
        let vm_idx = w.vms.len();
        let mut cfg2 = vm_cfg;
        cfg2.reservation_bytes = clone_res;
        let mut vm = Vm::new(VmId(vm_idx as u32), HostId(dest as u32), cfg2);
        *vm.layout_mut() = layout;
        let _ = vm.replace_memory(image);
        let swap = SwapDev::Vmd(VmdSwapDevice::new(
            Rc::clone(&w.vmd.clients[client_idx].client),
            Rc::clone(&w.vmd.directory),
            clone_ns,
            page_size,
        ));
        w.hosts[dest].mem.set_reservation(vm_idx as u64, clone_res);
        let os_rng = w.seeds.stream(&format!("osbg.vm{vm_idx}"));
        w.vms.push(VmSlot {
            vm,
            host: dest,
            swap,
            workload: None,
            os_bg: None,
            server_queue: std::collections::VecDeque::new(),
            server_active: 0,
            pending_faults: std::collections::HashMap::new(),
            limbo: Vec::new(),
            client: None,
            meter: ThroughputMeter::new(1),
            reservation_series: TimeSeries::new(),
            migration: None,
            wss: None,
            os_rng,
            os_bg_gen: 0,
            mem_epoch: 0,
        });
        w.trace.record(
            now,
            TraceEvent::CloneSpawn {
                clone: clone_idx as u32,
                vm: vm_idx as u32,
                host: dest as u32,
            },
        );
        let ex = w.clone.as_mut().expect("armed");
        ex.counters.forks += 1;
        ex.counters.spawned += 1;
        ex.clones.push(CloneState {
            vm: vm_idx,
            ns: clone_ns,
            spawned_at: now,
            ready_at: None,
            hydrated_at: None,
            cursor: 0,
            inflight: 0,
            workload_started: start_now,
            draining: false,
            torn_down: false,
        });
        (vm_idx, client_idx, clone_ns)
    };
    let _ = clone_ns;
    // Push the NsFork broadcast out before any clone I/O can race it.
    vmdio::flush_client(sim, client_idx);
    attach_clone_workload(sim, vm_idx, client_host, make_workload(clone_idx), think_ns);
    if start_now {
        // Streamed arm: serve immediately, demand-paging from the fork.
        guest::start_client(sim, vm_idx, now);
    }
    let hydrate_period = sim
        .state()
        .clone
        .as_ref()
        .expect("armed")
        .cfg
        .hydrate_period;
    sim.schedule_fast_in(
        hydrate_period,
        FastEvent::Timer {
            kind: fast::K_CLONE_HYDRATE,
            a: clone_idx as u64,
            b: 0,
        },
    );
}

/// Attach a workload model and its external client to a spawned clone
/// (mirrors `ClusterBuilder::attach_workload`, but at runtime).
fn attach_clone_workload(
    sim: &mut Simulation<World>,
    vm_idx: usize,
    client_host: usize,
    workload: WorkloadKind,
    think_ns: u64,
) {
    let w = sim.state_mut();
    let threads = workload.client_threads();
    let rng = w.seeds.stream(&format!("client.vm{vm_idx}"));
    let client_node = w.hosts[client_host].node;
    let vm_node = w.hosts[w.vms[vm_idx].host].node;
    let to_vm = w.net.open_channel(client_node, vm_node);
    let from_vm = w.net.open_channel(vm_node, client_node);
    let slot = &mut w.vms[vm_idx];
    slot.workload = Some(workload);
    slot.client = Some(ClientBinding {
        host: client_host,
        threads,
        to_vm,
        from_vm,
        rng,
        think_ns,
    });
}

/// Scale in: detach the newest live clone's workload. Its in-flight
/// requests drain naturally (the closed loop stops once the workload is
/// `None`); the teardown finalizer purges it at quiescence.
fn begin_drain_newest(sim: &mut Simulation<World>) {
    let victim = {
        let ex = sim.state().clone.as_ref().expect("armed");
        ex.clones.iter().rposition(|c| !c.draining && !c.torn_down)
    };
    let Some(idx) = victim else { return };
    let w = sim.state_mut();
    let vm = w.clone.as_ref().expect("armed").clones[idx].vm;
    w.vms[vm].workload = None;
    w.clone.as_mut().expect("armed").clones[idx].draining = true;
}

/// Purge draining clones that have fully quiesced: no queued or active
/// requests, no pending faults, no hydration reads in flight. The purge
/// walks the fork refcounts — master pages shared with surviving clones
/// are never dropped (`DropRef` only frees at refcount zero after the
/// owner freed).
fn finalize_teardowns(sim: &mut Simulation<World>) {
    let now = sim.now();
    let n = sim.state().clone.as_ref().expect("armed").clones.len();
    let mut flush: Vec<usize> = Vec::new();
    for idx in 0..n {
        let quiesced = {
            let w = sim.state();
            let ex = w.clone.as_ref().expect("armed");
            let c = &ex.clones[idx];
            if !c.draining || c.torn_down || c.inflight > 0 {
                continue;
            }
            let slot = &w.vms[c.vm];
            slot.server_queue.is_empty()
                && slot.server_active == 0
                && slot.pending_faults.is_empty()
                && slot.limbo.is_empty()
        };
        if !quiesced {
            continue;
        }
        let w = sim.state_mut();
        let (vm, ns) = {
            let c = &w.clone.as_ref().expect("armed").clones[idx];
            (c.vm, c.ns)
        };
        let host = w.vms[vm].host;
        let client_idx = *w
            .vmd
            .host_client
            .get(&host)
            .expect("clone host has no VMD client");
        {
            let mut dir = w.vmd.directory.borrow_mut();
            let mut c = w.vmd.clients[client_idx].client.borrow_mut();
            c.purge_namespace(&mut dir, ns);
        }
        w.vmd.allocators.remove(&ns);
        // The slot stays in `World::vms` (index stability) but is inert:
        // no workload, no client events, namespace gone. The host ledger
        // releases its reservation without write-back — a dying clone's
        // residual pages need no eviction I/O.
        w.hosts[host].mem.set_reservation(vm as u64, 0);
        w.trace.record(
            now,
            TraceEvent::CloneTeardown {
                clone: idx as u32,
                vm: vm as u32,
            },
        );
        let ex = w.clone.as_mut().expect("armed");
        ex.clones[idx].torn_down = true;
        ex.counters.torn_down += 1;
        flush.push(client_idx);
    }
    flush.sort_unstable();
    flush.dedup();
    for client_idx in flush {
        vmdio::flush_client(sim, client_idx);
    }
}

/// In-place host upgrade: once every clone is spawned and at least one
/// serves traffic, retire the master — purge its namespace. Pages still
/// shared with clones are retained by the fork refcounts (owner-freed)
/// and die only when the last sharing clone drops them.
fn maybe_purge_master(sim: &mut Simulation<World>) {
    let now = sim.now();
    let (do_purge, master, master_ns) = {
        let ex = sim.state().clone.as_ref().expect("armed");
        (
            ex.cfg.in_place_upgrade
                && !ex.master_purged
                && ex.clones.len() >= ex.cfg.max_clones
                && ex.clones.iter().any(|c| c.ready_at.is_some()),
            ex.cfg.master,
            ex.master_ns,
        )
    };
    if !do_purge {
        return;
    }
    let client_idx = {
        let w = sim.state_mut();
        let host = w.vms[master].host;
        let client_idx = *w
            .vmd
            .host_client
            .get(&host)
            .expect("master host has no VMD client");
        {
            let mut dir = w.vmd.directory.borrow_mut();
            let mut c = w.vmd.clients[client_idx].client.borrow_mut();
            c.purge_namespace(&mut dir, master_ns);
        }
        w.vmd.allocators.remove(&master_ns);
        w.clone.as_mut().expect("armed").master_purged = true;
        client_idx
    };
    let _ = now;
    vmdio::flush_client(sim, client_idx);
}

/// One background hydration pump step for clone `clone_idx`: issue up to
/// the arm's per-tick page budget of reads against the clone's device
/// (which resolves shared slots through the fork to the master
/// namespace), then reschedule until the image is fully resident.
pub(crate) fn hydrate_tick(sim: &mut Simulation<World>, clone_idx: usize) {
    let now = sim.now();
    let Some(ex) = sim.state().clone.as_ref() else {
        return;
    };
    let Some(c) = ex.clones.get(clone_idx) else {
        return;
    };
    if c.draining || c.torn_down || c.hydrated_at.is_some() {
        return;
    }
    let vm_idx = c.vm;
    let budget = ex.cfg.hydration.pages_per_tick().max(1);
    let period = ex.cfg.hydrate_period;
    let mut cursor = c.cursor;
    let pages = sim.state().vms[vm_idx].vm.memory().pages();

    let mut scheduled: Vec<(SimTime, u64)> = Vec::new();
    let mut pending = false;
    {
        let World {
            vms,
            swap_reqs,
            next_req,
            clone,
            ..
        } = sim.state_mut();
        let slot = &mut vms[vm_idx];
        let mut issued = 0u32;
        while cursor < pages && issued < budget {
            let pfn = cursor;
            cursor += 1;
            let flags = slot.vm.memory().page_flags(pfn);
            if flags.present() || flags.any(PageFlags::IO_INFLIGHT) || !flags.swapped() {
                continue; // resident, already being read, or never populated
            }
            let PagemapEntry::Swapped { slot: swap_slot } = slot.vm.memory().pagemap(pfn) else {
                unreachable!("swapped flag without a pagemap slot");
            };
            slot.vm.memory_mut().begin_swap_in(pfn);
            // A guest fault racing this read parks on the entry and is
            // woken at completion — same piggyback as migration swap-in.
            slot.pending_faults
                .entry(pfn)
                .or_insert_with(|| FaultEntry {
                    waiters: Vec::new(),
                    issued: true,
                });
            let req = *next_req;
            *next_req += 1;
            swap_reqs.insert(req, SwapReqCtx::CloneHydrate { vm: vm_idx, pfn });
            let SwapDev::Vmd(v) = &mut slot.swap else {
                unreachable!("clones always swap to VMD");
            };
            match SwapBackend::read(v, now, swap_slot, req) {
                SwapIssue::CompleteAt(t) => scheduled.push((t, req)),
                SwapIssue::Pending => pending = true,
            }
            issued += 1;
            clone.as_mut().expect("armed").clones[clone_idx].inflight += 1;
        }
    }
    sim.state_mut().clone.as_mut().expect("armed").clones[clone_idx].cursor = cursor;
    for (t, req) in scheduled {
        sim.schedule_fast(t, FastEvent::DeviceOp { req });
    }
    if pending {
        guest::flush_all_clients(sim);
    }
    let done = {
        let ex = sim.state().clone.as_ref().expect("armed");
        cursor >= pages && ex.clones[clone_idx].inflight == 0
    };
    if done {
        finish_hydration(sim, clone_idx);
    } else {
        sim.schedule_fast_in(
            period,
            FastEvent::Timer {
                kind: fast::K_CLONE_HYDRATE,
                a: clone_idx as u64,
                b: 0,
            },
        );
    }
}

/// One hydration read completed: install the page, wake any parked
/// guest ops, and — on the last page — finish hydration.
pub(crate) fn complete_hydrate(sim: &mut Simulation<World>, vm_idx: usize, pfn: u32) {
    let mut buf = std::mem::take(&mut sim.state_mut().evict_buf);
    buf.clear();
    sim.state_mut().vms[vm_idx]
        .vm
        .memory_mut()
        .fault_in(pfn, false, &mut buf);
    charge_evictions(sim, EvictTarget::Vm(vm_idx), &buf);
    buf.clear();
    sim.state_mut().evict_buf = buf;
    guest::wake_page(sim, vm_idx, pfn);
    let pages = sim.state().vms[vm_idx].vm.memory().pages();
    let finish = {
        let Some(ex) = sim.state_mut().clone.as_mut() else {
            return;
        };
        let Some(idx) = ex.clones.iter().position(|c| c.vm == vm_idx) else {
            return;
        };
        ex.counters.hydrated_pages += 1;
        let c = &mut ex.clones[idx];
        c.inflight -= 1;
        let done = c.cursor >= pages
            && c.inflight == 0
            && c.hydrated_at.is_none()
            && !c.draining
            && !c.torn_down;
        done.then_some(idx)
    };
    if let Some(idx) = finish {
        finish_hydration(sim, idx);
    }
}

/// Hydration ran to completion: stamp the time and, on the precopy arm,
/// start the clone's workload (it only takes traffic fully hydrated).
fn finish_hydration(sim: &mut Simulation<World>, clone_idx: usize) {
    let now = sim.now();
    let start_wl = {
        let ex = sim.state_mut().clone.as_mut().expect("armed");
        let precopy = matches!(ex.cfg.hydration, HydrationMode::Precopy { .. });
        let c = &mut ex.clones[clone_idx];
        if c.hydrated_at.is_some() {
            return;
        }
        c.hydrated_at = Some(now);
        let start = precopy && !c.workload_started && !c.draining && !c.torn_down;
        if start {
            c.workload_started = true;
        }
        start.then_some(c.vm)
    };
    if let Some(vm_idx) = start_wl {
        guest::start_client(sim, vm_idx, now);
    }
}
