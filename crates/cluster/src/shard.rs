//! Sharded parallel execution with conservative epoch synchronization.
//!
//! A *shard* is one complete world — its own event queue, hosts, VM
//! slots, fluid network, and VMD traffic — so all intra-shard simulation
//! is the ordinary single-threaded executor, untouched. Cross-shard
//! coupling goes through one explicit boundary: in-world code pushes
//! [`BoundaryMsg`]s into its [`BoundaryState::outbox`]; the harness
//! drains every outbox at an *epoch barrier*, merges the messages in the
//! deterministic order `(send_time, shard_id, seq)`, hands them to a
//! [`Coordinator`], and schedules the coordinator's [`GlobalSignal`]s
//! back into target shards one full lookahead later.
//!
//! # Conservative lookahead
//!
//! Shards advance independently up to `epoch_start + lookahead` and then
//! synchronize. Because a signal emitted from epoch *k*'s merge is
//! delivered at `epoch_end + lookahead` — i.e. no earlier than the end of
//! epoch *k+1* — no shard ever receives a message in simulated time it
//! has already executed past. `lookahead` is therefore the minimum
//! cross-shard latency: the classic conservative-PDES contract
//! (null-message-free because barriers are global).
//!
//! # Determinism at any worker count
//!
//! The `workers` knob maps shards onto OS threads and nothing else.
//! Logical shards are fixed by construction (one world per rack),
//! barriers are global, outboxes are drained in shard order, and the
//! merge sort key is independent of thread scheduling — so a run with 1
//! worker and a run with 16 produce byte-identical worlds, traces, and
//! reports. The equivalence tests pin this at 1, 2, and 4 workers.

use std::time::{Duration, Instant};

use agile_sim_core::{SimDuration, SimTime, Simulation};

use crate::world::World;

/// A message crossing the shard boundary, drained at the next barrier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BoundaryMsg {
    /// Periodic per-rack load report for the cluster coordinator.
    LoadReport {
        /// Reporting rack (== shard id).
        rack: usize,
        /// Sum of managed-host aggregate WSS (bytes).
        aggregate: u64,
        /// Managed hosts currently above their high watermark.
        hot_hosts: u32,
        /// Migrations started on this rack so far.
        migrations: u64,
    },
    /// The rack's scheduler has nothing queued or in flight.
    Quiesced {
        /// Reporting rack.
        rack: usize,
    },
}

/// A control signal the coordinator injects into a shard.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum GlobalSignal {
    /// Cluster-wide load summary, delivered to every rack.
    ClusterLoad {
        /// Mean managed-host aggregate across all racks (bytes).
        mean_aggregate: u64,
        /// Racks reporting at least one hot host.
        hot_racks: u32,
    },
}

/// Per-world boundary state. Empty — and free — when the world runs
/// standalone outside a sharded harness.
#[derive(Debug, Default)]
pub struct BoundaryState {
    /// Outgoing `(send_time, message)` pairs; in-world code appends in
    /// event-execution order, the harness drains at each barrier.
    pub outbox: Vec<(SimTime, BoundaryMsg)>,
    /// Signals received from the coordinator, in delivery order.
    pub signals: Vec<(SimTime, GlobalSignal)>,
}

/// One boundary message after the deterministic epoch merge.
#[derive(Clone, Debug)]
pub struct MergedMsg {
    /// Simulated send instant.
    pub time: SimTime,
    /// Emitting shard.
    pub shard: usize,
    /// Merge sequence number (emission order within the epoch).
    pub seq: u64,
    /// The message.
    pub msg: BoundaryMsg,
}

/// The cross-shard decision maker, invoked once per epoch barrier with
/// the merged message stream.
pub trait Coordinator {
    /// Consume this epoch's messages (sorted by `(time, shard, seq)`) and
    /// return `(target shard, signal)` pairs. Each signal is delivered at
    /// `epoch_end + lookahead`, which every shard has yet to simulate.
    fn merge(&mut self, epoch_end: SimTime, msgs: &[MergedMsg]) -> Vec<(usize, GlobalSignal)>;
}

/// A coordinator that never replies — fully independent shards
/// (replicated scenario runs).
pub struct NullCoordinator;

impl Coordinator for NullCoordinator {
    fn merge(&mut self, _epoch_end: SimTime, _msgs: &[MergedMsg]) -> Vec<(usize, GlobalSignal)> {
        Vec::new()
    }
}

/// A shard: one complete, closed world, movable to a worker thread.
///
/// `Simulation<World>` is `!Send` because the world holds `Rc` handles
/// (the VMD directory and clients) and boxed event closures. Every one of
/// those references stays inside the world it was built into: the builder
/// wires each world's `Rc` graph independently and nothing ever hands an
/// `Rc` (or a closure capturing one) across worlds — cross-shard traffic
/// is the plain-data [`BoundaryMsg`]/[`GlobalSignal`] values only.
pub struct ShardCell(pub Simulation<World>);

// SAFETY: each cell's interior `Rc` graph is closed (see the type-level
// comment), and the harness hands each cell to at most one worker thread
// per epoch via disjoint `chunks_mut` borrows under `std::thread::scope`,
// so no two threads ever observe the same world concurrently — which is
// exactly the exclusive-access guarantee moving a `Send` value encodes.
unsafe impl Send for ShardCell {}

/// Wall-clock accounting for one sharded run. Measurement only — never
/// part of any deterministic output.
#[derive(Clone, Debug)]
pub struct RunStats {
    /// Epoch barriers executed.
    pub epochs: u64,
    /// Per-shard busy wall time summed over epochs.
    pub shard_busy: Vec<Duration>,
    /// Sum over epochs of the slowest shard's time — the floor a
    /// perfectly parallel executor cannot beat.
    pub critical_path: Duration,
}

impl RunStats {
    /// Total busy wall time across every shard.
    pub fn busy_total(&self) -> Duration {
        self.shard_busy.iter().sum()
    }

    /// Available parallelism: total busy work over the critical path —
    /// the speedup a machine with enough cores could extract from this
    /// decomposition, independent of how many cores this machine has.
    pub fn available_parallelism(&self) -> f64 {
        let cp = self.critical_path.as_secs_f64();
        if cp <= 0.0 {
            1.0
        } else {
            self.busy_total().as_secs_f64() / cp
        }
    }
}

/// A set of shards advancing in lockstep epochs.
pub struct ShardedRun {
    cells: Vec<ShardCell>,
    lookahead: SimDuration,
}

impl ShardedRun {
    /// Wrap `worlds` as shards 0..n. `lookahead` is the epoch length and
    /// the minimum cross-shard signal latency; it must not exceed the
    /// real coupling latency the scenario's boundary traffic assumes.
    pub fn new(worlds: Vec<Simulation<World>>, lookahead: SimDuration) -> Self {
        let cells = worlds
            .into_iter()
            .enumerate()
            .map(|(i, mut sim)| {
                sim.state_mut().shard_id = i;
                ShardCell(sim)
            })
            .collect();
        ShardedRun { cells, lookahead }
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the run holds no shards.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Direct access to one shard's simulation (setup, inspection).
    pub fn shard(&mut self, i: usize) -> &mut Simulation<World> {
        &mut self.cells[i].0
    }

    /// Run epochs until every shard's `done` predicate holds at a barrier
    /// or the deadline is reached. A shard whose predicate fires is
    /// frozen — it stops advancing while the rest finish. `workers` is
    /// purely a wall-clock knob; see the module docs.
    pub fn run(
        &mut self,
        workers: usize,
        deadline: SimTime,
        coordinator: &mut dyn Coordinator,
        mut done: impl FnMut(usize, &mut Simulation<World>) -> bool,
    ) -> RunStats {
        let n = self.cells.len();
        let mut active = vec![true; n];
        let mut stats = RunStats {
            epochs: 0,
            shard_busy: vec![Duration::ZERO; n],
            critical_path: Duration::ZERO,
        };
        let mut seq = 0u64;
        let mut epoch_start = SimTime::ZERO;
        while active.iter().any(|&a| a) {
            let target = (epoch_start + self.lookahead).min(deadline);
            let epoch_times = advance(&mut self.cells, &active, workers, target);
            stats.epochs += 1;
            let mut slowest = Duration::ZERO;
            for (busy, t) in stats.shard_busy.iter_mut().zip(&epoch_times) {
                *busy += *t;
                slowest = slowest.max(*t);
            }
            stats.critical_path += slowest;

            // Deterministic merge: drain outboxes in shard order, stamp
            // sequence numbers, sort by (send time, shard, seq). Nothing
            // here depends on worker count or thread interleaving.
            let mut merged: Vec<MergedMsg> = Vec::new();
            for (i, cell) in self.cells.iter_mut().enumerate() {
                for (time, msg) in cell.0.state_mut().boundary.outbox.drain(..) {
                    merged.push(MergedMsg {
                        time,
                        shard: i,
                        seq,
                        msg,
                    });
                    seq += 1;
                }
            }
            merged.sort_by_key(|m| (m.time, m.shard, m.seq));
            let deliver_at = target + self.lookahead;
            for (shard, sig) in coordinator.merge(target, &merged) {
                self.cells[shard].0.schedule_at(deliver_at, move |sim| {
                    let now = sim.now();
                    sim.state_mut().boundary.signals.push((now, sig));
                });
            }

            for (i, cell) in self.cells.iter_mut().enumerate() {
                if active[i] && done(i, &mut cell.0) {
                    active[i] = false;
                }
            }
            if target >= deadline {
                break;
            }
            epoch_start = target;
        }
        stats
    }

    /// Unwrap the shards back into plain simulations, in shard order.
    pub fn into_worlds(self) -> Vec<Simulation<World>> {
        self.cells.into_iter().map(|c| c.0).collect()
    }
}

/// Advance every active cell to `target`, distributing cells over at most
/// `workers` OS threads. Returns each shard's wall time for this epoch.
fn advance(
    cells: &mut [ShardCell],
    active: &[bool],
    workers: usize,
    target: SimTime,
) -> Vec<Duration> {
    let n = cells.len();
    let workers = workers.clamp(1, n.max(1));
    let mut times = vec![Duration::ZERO; n];
    if workers <= 1 {
        for ((cell, &a), t) in cells.iter_mut().zip(active).zip(times.iter_mut()) {
            if a {
                let t0 = Instant::now();
                cell.0.run_until(target);
                *t = t0.elapsed();
            }
        }
        return times;
    }
    let chunk = n.div_ceil(workers);
    std::thread::scope(|s| {
        for ((cc, ac), tc) in cells
            .chunks_mut(chunk)
            .zip(active.chunks(chunk))
            .zip(times.chunks_mut(chunk))
        {
            s.spawn(move || {
                for ((cell, &a), t) in cc.iter_mut().zip(ac).zip(tc.iter_mut()) {
                    if a {
                        let t0 = Instant::now();
                        cell.0.run_until(target);
                        *t = t0.elapsed();
                    }
                }
            });
        }
    });
    times
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::ClusterBuilder;
    use crate::config::ClusterConfig;
    use agile_sim_core::GIB;

    fn empty_world(seed: u64) -> Simulation<World> {
        let b = ClusterBuilder::new(ClusterConfig {
            seed,
            ..ClusterConfig::default()
        });
        b.build()
    }

    #[test]
    fn merge_orders_by_time_then_shard_then_seq() {
        struct Capture(Vec<(u64, usize, BoundaryMsg)>);
        impl Coordinator for Capture {
            fn merge(&mut self, _end: SimTime, msgs: &[MergedMsg]) -> Vec<(usize, GlobalSignal)> {
                self.0.extend(
                    msgs.iter()
                        .map(|m| (m.time.as_nanos(), m.shard, m.msg.clone())),
                );
                Vec::new()
            }
        }
        let mut run = ShardedRun::new(
            vec![empty_world(1), empty_world(2)],
            SimDuration::from_secs(1),
        );
        // Shard 1 emits earlier in simulated time than shard 0; shard 0
        // emits twice at the same instant (seq breaks the tie in emission
        // order).
        run.shard(0).schedule_at(SimTime::from_millis(500), |sim| {
            let now = sim.now();
            let out = &mut sim.state_mut().boundary.outbox;
            out.push((now, BoundaryMsg::Quiesced { rack: 10 }));
            out.push((now, BoundaryMsg::Quiesced { rack: 11 }));
        });
        run.shard(1).schedule_at(SimTime::from_millis(100), |sim| {
            let now = sim.now();
            sim.state_mut()
                .boundary
                .outbox
                .push((now, BoundaryMsg::Quiesced { rack: 20 }));
        });
        let mut cap = Capture(Vec::new());
        run.run(2, SimTime::from_secs(1), &mut cap, |_, sim| {
            sim.now() >= SimTime::from_secs(1)
        });
        let racks: Vec<usize> = cap
            .0
            .iter()
            .map(|(_, _, m)| match m {
                BoundaryMsg::Quiesced { rack } => *rack,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(racks, vec![20, 10, 11]);
        assert!(cap.0[0].0 < cap.0[1].0);
    }

    #[test]
    fn signals_arrive_one_lookahead_after_the_barrier() {
        struct Echo;
        impl Coordinator for Echo {
            fn merge(&mut self, _end: SimTime, msgs: &[MergedMsg]) -> Vec<(usize, GlobalSignal)> {
                msgs.iter()
                    .map(|_| {
                        (
                            0usize,
                            GlobalSignal::ClusterLoad {
                                mean_aggregate: 7,
                                hot_racks: 1,
                            },
                        )
                    })
                    .collect()
            }
        }
        let mut run = ShardedRun::new(vec![empty_world(3)], SimDuration::from_secs(1));
        run.shard(0).schedule_at(SimTime::from_millis(250), |sim| {
            let now = sim.now();
            sim.state_mut()
                .boundary
                .outbox
                .push((now, BoundaryMsg::Quiesced { rack: 0 }));
        });
        run.run(1, SimTime::from_secs(3), &mut Echo, |_, sim| {
            sim.now() >= SimTime::from_secs(3)
        });
        let worlds = run.into_worlds();
        let signals = &worlds[0].state().boundary.signals;
        assert_eq!(signals.len(), 1);
        // Barrier at t=1s, delivery one lookahead later.
        assert_eq!(signals[0].0, SimTime::from_secs(2));
    }

    #[test]
    fn idle_shard_schedules_zero_net_polls() {
        // A shard with hosts but no traffic must never arm a poll event;
        // a busy neighbor polling its own network must not change that.
        use agile_sim_core::MIB;
        use agile_vm::VmConfig;
        use agile_workload::{Dataset, KeyDist, YcsbParams, YcsbRedis};

        let mut busy_b = ClusterBuilder::new(ClusterConfig {
            seed: 7,
            ..ClusterConfig::default()
        });
        let page = busy_b.world().cfg.page_size;
        let host = busy_b.add_host("work", GIB, 32 * MIB, true);
        let client_host = busy_b.add_host("client", GIB, 32 * MIB, false);
        let vm = busy_b.add_vm(
            host,
            VmConfig {
                mem_bytes: 256 * MIB,
                page_size: page,
                vcpus: 1,
                reservation_bytes: 256 * MIB,
                guest_os_bytes: 16 * MIB,
            },
            crate::build::SwapKind::HostSsd,
        );
        let (index_region, data_region) = {
            let layout = busy_b.world_mut().vms[vm].vm.layout_mut();
            let idx = layout.alloc_region("redis-index", 64);
            let dat = layout.alloc_region("redis-data", 4096);
            (idx, dat)
        };
        let dataset = Dataset::new(data_region, 8192, 1024, page);
        let model = YcsbRedis::new(
            dataset,
            index_region,
            KeyDist::UniformPrefix,
            YcsbParams::update_heavy(),
        );
        busy_b.attach_workload(vm, client_host, crate::world::WorkloadKind::Ycsb(model));
        busy_b.preload_layout(vm);
        let mut busy = busy_b.build();
        crate::build::start_all_workloads(&mut busy, SimTime::from_millis(10));

        let mut idle_b = ClusterBuilder::new(ClusterConfig {
            seed: 8,
            ..ClusterConfig::default()
        });
        idle_b.add_host("quiet", GIB, 0, false);
        let idle = idle_b.build();

        let mut run = ShardedRun::new(vec![busy, idle], SimDuration::from_secs(1));
        run.run(2, SimTime::from_secs(2), &mut NullCoordinator, |_, sim| {
            sim.now() >= SimTime::from_secs(2)
        });
        let worlds = run.into_worlds();
        assert!(worlds[0].state().netdrv.polls > 0, "busy shard polled");
        assert_eq!(
            worlds[1].state().netdrv.polls,
            0,
            "idle shard must schedule zero net-poll events"
        );
        assert_eq!(worlds[1].state().netdrv.armed, None);
    }
}
