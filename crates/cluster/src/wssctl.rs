//! Working-set-tracking executor (§IV-D) and watermark trigger (§III-B).
//!
//! Per tracked VM, a sampling chain drives a pluggable
//! [`WssEstimator`]: it snapshots the per-VM swap device's cumulative
//! counters (iostat), drains the memory image's simulated-PML epoch
//! tracker when armed, hands both to the estimator, applies the chosen
//! reservation to the cgroup (evictions go to the swap device), and
//! reschedules itself at the estimator's chosen interval. Under the
//! default swap-I/O estimator this is bit-for-bit the legacy α/β/τ
//! chain — 2 s while converging, 30 s once stable.

use std::cell::Cell;
use std::rc::Rc;

use agile_sim_core::{FastEvent, SimTime, Simulation};
use agile_wss::{
    ControllerParams, EpochSample, EstimateSignal, PmlEstimator, PmlParams, SwapIoEstimator, VmWss,
    WatermarkTrigger, WssEstimator, WssObservation,
};

use crate::config::WssEstimatorKind;
use crate::guest::{charge_evictions, EvictTarget};
use crate::world::{World, WssExec};

/// Enable WSS tracking on a VM and start the sampling chain at `at`.
/// The estimator comes from the world's [`crate::config::ClusterConfig`]
/// (`wss_estimator`); `params` bounds the reservation either way.
pub fn enable_tracking(
    sim: &mut Simulation<World>,
    vm_idx: usize,
    params: ControllerParams,
    at: SimTime,
) {
    let cfg = sim.state().cfg;
    match cfg.wss_estimator {
        WssEstimatorKind::SwapIo => enable_tracking_with(
            sim,
            vm_idx,
            Box::new(SwapIoEstimator::new(params)),
            None,
            at,
        ),
        WssEstimatorKind::Pml => {
            let pml = PmlParams {
                epoch: cfg.pml_epoch,
                window: cfg.pml_window,
                headroom_num: cfg.pml_headroom_num,
                headroom_den: cfg.pml_headroom_den,
                page_size: cfg.page_size,
                min_bytes: params.min_bytes,
                max_bytes: params.max_bytes,
                ..PmlParams::defaults(cfg.page_size, params.min_bytes, params.max_bytes)
            };
            enable_tracking_with(
                sim,
                vm_idx,
                Box::new(PmlEstimator::new(pml)),
                Some(cfg.pml_log_cap as usize),
                at,
            )
        }
    }
}

/// Enable WSS tracking with an explicit estimator. `epoch_log_cap`
/// arms simulated-PML epoch tracking on the VM's memory image (and
/// re-arms it after migration replaces the image).
pub fn enable_tracking_with(
    sim: &mut Simulation<World>,
    vm_idx: usize,
    estimator: Box<dyn WssEstimator>,
    epoch_log_cap: Option<usize>,
    at: SimTime,
) {
    {
        let w = sim.state_mut();
        let epoch_seen = w.vms[vm_idx].mem_epoch;
        if let Some(cap) = epoch_log_cap {
            w.vms[vm_idx].vm.memory_mut().arm_epoch_tracking(cap);
        }
        w.vms[vm_idx].wss = Some(WssExec {
            estimator,
            epoch_seen,
            epoch_log_cap,
        });
    }
    sim.schedule_fast(at, sample_timer(vm_idx));
}

/// Arm the ground-truth epoch oracle alongside an already-enabled
/// estimator: the memory image's epoch tracker is armed (so every tick
/// drains it and emits a `wss_estimate` trace event with the exact
/// count), but the installed estimator keeps ignoring inputs it does
/// not consume — the swap-I/O arithmetic is unperturbed. Test/bench
/// instrumentation for the accuracy harness.
pub fn arm_oracle(sim: &mut Simulation<World>, vm_idx: usize, log_cap: usize) {
    let w = sim.state_mut();
    let slot = &mut w.vms[vm_idx];
    let wss = slot
        .wss
        .as_mut()
        .expect("arm_oracle requires enable_tracking first");
    wss.epoch_log_cap = Some(log_cap);
    slot.vm.memory_mut().arm_epoch_tracking(log_cap);
}

/// The sampling chain's timer payload.
fn sample_timer(vm_idx: usize) -> FastEvent {
    FastEvent::Timer {
        kind: crate::fast::K_WSS_SAMPLE,
        a: vm_idx as u64,
        b: 0,
    }
}

/// One sampling tick.
pub(crate) fn sample(sim: &mut Simulation<World>, vm_idx: usize) {
    let now = sim.now();
    if sim.state().vms[vm_idx].wss.is_none() {
        return;
    }
    let mut buf = std::mem::take(&mut sim.state_mut().evict_buf);
    buf.clear();
    // Above the pool's high water mark, reservation *shrinks* are deferred:
    // they would push evictions into a pool with nowhere to put them.
    let defer_shrink = crate::poolctl::under_pressure(sim.state());
    let next = {
        let w = sim.state_mut();
        let slot = &mut w.vms[vm_idx];
        if slot.migration.is_some() || !slot.vm.state().can_execute() {
            // Tracking pauses during migration; resume sampling shortly.
            // Drop the window history now: the first post-resume sample
            // must re-prime rather than average the cumulative counters
            // over the whole paused interval, which would read as a
            // near-zero rate and trigger a bogus shrink.
            slot.wss.as_mut().expect("checked above").estimator.reset();
            Some(agile_sim_core::SimDuration::from_secs(2))
        } else {
            let counters = slot.swap.counters();
            let epoch = slot.mem_epoch;
            let wss = slot.wss.as_mut().expect("checked above");
            if wss.epoch_seen != epoch {
                // The VM resumed on another host between our ticks: the
                // swap-device binding (and its cumulative counters) was
                // replaced under the estimator, so any retained window
                // would difference counters of two different devices.
                // The destination image is a fresh VmMemory, so epoch
                // tracking (when in use) must also be re-armed on it.
                wss.epoch_seen = epoch;
                wss.estimator.reset();
                if let Some(cap) = wss.epoch_log_cap {
                    slot.vm.memory_mut().arm_epoch_tracking(cap);
                }
            }
            // Drain the simulated-PML epoch whenever tracking is armed —
            // estimators that don't consume it (swap-I/O) ignore it, which
            // is what lets the accuracy harness run the ground-truth
            // oracle alongside either estimator without perturbing it.
            let epoch_sample = if slot.vm.memory().epoch_armed() {
                let rep = slot.vm.memory_mut().drain_epoch();
                w.wss_counters.epoch_drains += 1;
                if rep.overflowed {
                    w.wss_counters.pml_overflows += 1;
                }
                Some(EpochSample {
                    pml_pages: rep.pml_pages as u64,
                    exact_pages: rep.distinct_pages as u64,
                    overflowed: rep.overflowed,
                })
            } else {
                None
            };
            let obs = WssObservation {
                io: counters,
                epoch: epoch_sample,
            };
            let current = slot.vm.memory().limit_bytes();
            match wss.estimator.on_tick(now, &obs, current) {
                Some(tick) => {
                    let adj = tick.adjustment;
                    let new_reservation = if defer_shrink && adj.new_reservation < current {
                        if let Some(p) = w.pool.as_mut() {
                            p.counters.deferred_shrinks += 1;
                        }
                        current
                    } else {
                        adj.new_reservation
                    };
                    slot.vm
                        .memory_mut()
                        .set_limit_bytes(new_reservation, &mut buf);
                    slot.reservation_series.push(now, new_reservation as f64);
                    let host = slot.host;
                    w.hosts[host]
                        .mem
                        .set_reservation(vm_idx as u64, new_reservation);
                    w.wss_counters.samples += 1;
                    if let EstimateSignal::SwapRate { kbps } = tick.signal {
                        w.trace.record(
                            now,
                            agile_trace::TraceEvent::WssSample {
                                vm: vm_idx as u32,
                                rate_kbps: kbps,
                                reservation: new_reservation,
                                stable: adj.stable,
                            },
                        );
                    }
                    if let Some(ep) = obs.epoch {
                        let est_bytes = wss.estimator.wss_estimate().unwrap_or(new_reservation);
                        w.trace.record(
                            now,
                            agile_trace::TraceEvent::WssEstimate {
                                vm: vm_idx as u32,
                                estimator: wss.estimator.kind(),
                                est_bytes,
                                truth_bytes: ep.exact_pages * w.cfg.page_size,
                                reservation: new_reservation,
                                overflowed: ep.overflowed,
                            },
                        );
                    }
                    Some(adj.next_sample_in)
                }
                None => {
                    // Still priming (e.g. the swap monitor's first window).
                    slot.reservation_series
                        .push(now, slot.vm.memory().limit_bytes() as f64);
                    Some(wss.estimator.priming_interval())
                }
            }
        }
    };
    charge_evictions(sim, EvictTarget::Vm(vm_idx), &buf);
    buf.clear();
    sim.state_mut().evict_buf = buf;
    if let Some(dt) = next {
        sim.schedule_fast_in(dt, sample_timer(vm_idx));
    }
}

/// The tracked working-set sizes of every running VM on `host`.
pub fn host_wss(sim: &Simulation<World>, host: usize) -> Vec<VmWss> {
    host_wss_of(sim.state(), host)
}

/// Like [`host_wss`], over a `&World` (for callers already holding state).
pub fn host_wss_of(world: &World, host: usize) -> Vec<VmWss> {
    world
        .vms
        .iter()
        .enumerate()
        .filter(|(_, s)| s.host == host && s.vm.state().can_execute() && s.migration.is_none())
        .map(|(i, s)| VmWss {
            vm: i as u32,
            wss_bytes: s.vm.memory().limit_bytes(),
        })
        .collect()
}

/// Handle to a periodic watermark trigger armed by
/// [`arm_watermark_trigger`]. Disarming stops the recurring check: the
/// next firing sees the cleared flag and unschedules itself without
/// selecting anything.
#[derive(Clone)]
pub struct TriggerHandle(Rc<Cell<bool>>);

impl TriggerHandle {
    /// Stop the trigger from firing again.
    pub fn disarm(&self) {
        self.0.set(false);
    }

    /// Whether the trigger is still armed.
    pub fn is_armed(&self) -> bool {
        self.0.get()
    }
}

/// Periodically check a host against the watermarks; when the aggregate
/// tracked WSS crosses the high watermark, migrate the fewest VMs (largest
/// first) to `dest_host`. The first check fires one `period` after
/// *arming* (not after t = 0, so mid-run arming never fires in the past),
/// and the returned handle stops the recurrence — use it at the scenario
/// horizon. This is the single-destination convenience path; multi-host
/// placement lives in [`crate::sched`].
pub fn arm_watermark_trigger(
    sim: &mut Simulation<World>,
    host: usize,
    dest_host: usize,
    trigger: WatermarkTrigger,
    period: agile_sim_core::SimDuration,
    src_cfg: agile_migration::SourceConfig,
    dest_reservation_bytes: u64,
) -> TriggerHandle {
    let armed = Rc::new(Cell::new(true));
    let handle = TriggerHandle(Rc::clone(&armed));
    sim.schedule_every(sim.now() + period, period, move |sim| {
        if !armed.get() {
            return false;
        }
        let vms = host_wss(sim, host);
        // Suspect-aware selection: a VM whose portable namespace still has
        // slots queued for re-replication after a VMD server crash is
        // deferred — migrating it would ship offset markers whose only
        // surviving replica is mid-repair. With no chaos the queue is
        // always empty and this is exactly `select_vms`.
        let selected = {
            let w = sim.state();
            let deferred: std::collections::HashSet<agile_vmd::NamespaceId> =
                w.chaos.repair_queue.iter().map(|&(ns, _)| ns).collect();
            trigger.select_vms_filtered(&vms, |vm| match w.vms[vm as usize].swap.namespace() {
                Some(ns) => !deferred.contains(&ns),
                None => true,
            })
        };
        for vm in selected {
            crate::migrate::start_migration(
                sim,
                vm as usize,
                dest_host,
                src_cfg,
                dest_reservation_bytes,
            );
        }
        true
    });
    handle
}
