//! Temporal workload driver executor.
//!
//! Bridges the sans-IO [`agile_workload::WorkloadDriver`] into the DES:
//! when armed, a single periodic fast timer ([`crate::fast::K_WORKLOAD_TICK`])
//! polls the driver and applies the knob changes it emits — reservation
//! resizes, YCSB active-fraction resizes, working-set window remaps, and
//! client think-time changes.
//!
//! Cost model (the byte-identity contract):
//!
//! * unarmed worlds carry `wldrv: None` — zero state, zero events;
//! * arming with **all-constant** signals applies each initial value
//!   once, inline at arm time, and installs **zero** events — legacy
//!   traces replay byte-identically;
//! * only a driver with at least one non-constant signal ticks.

use agile_sim_core::{FastEvent, SimDuration, Simulation};
use agile_workload::driver::{Action, Knob, WorkloadDriver};

use crate::world::{WorkloadKind, World};

/// Counters published under `wl.*` when the driver is armed.
#[derive(Debug, Default, Clone, Copy)]
pub struct WlCounters {
    /// Driver ticks executed.
    pub ticks: u64,
    /// Knob changes applied.
    pub actions: u64,
}

/// Armed workload-driver state hanging off [`World::wldrv`].
pub struct WlExec {
    /// The sans-IO driver being ticked.
    pub driver: WorkloadDriver,
    /// Tick period.
    pub period: SimDuration,
    /// False after [`disarm_driver`]: the next tick stops the chain.
    pub armed: bool,
    /// Published counters.
    pub counters: WlCounters,
    /// Reusable action buffer (no per-tick allocation).
    scratch: Vec<Action>,
}

/// Arm the workload driver: apply every binding's initial value now,
/// then — only if some signal actually varies — start the periodic tick.
/// A fully-static driver installs zero events.
pub fn arm_driver(sim: &mut Simulation<World>, mut driver: WorkloadDriver, period: SimDuration) {
    assert!(sim.state().wldrv.is_none(), "workload driver already armed");
    let now = sim.now();
    let mut actions = Vec::new();
    driver.initial_actions(now, &mut actions);
    for a in &actions {
        apply_action(sim, a);
    }
    let dynamic = !driver.is_static();
    sim.state_mut().wldrv = Some(WlExec {
        driver,
        period,
        armed: dynamic,
        counters: WlCounters::default(),
        scratch: actions,
    });
    if dynamic {
        schedule_tick(sim, period);
    }
}

/// Stop the driver: the pending tick (if any) becomes a no-op that does
/// not reschedule. State and counters remain readable.
pub fn disarm_driver(sim: &mut Simulation<World>) {
    if let Some(ex) = sim.state_mut().wldrv.as_mut() {
        ex.armed = false;
    }
}

fn schedule_tick(sim: &mut Simulation<World>, period: SimDuration) {
    sim.schedule_fast_in(
        period,
        FastEvent::Timer {
            kind: crate::fast::K_WORKLOAD_TICK,
            a: 0,
            b: 0,
        },
    );
}

/// One driver tick: poll bound signals, apply changed knobs, reschedule.
pub(crate) fn tick(sim: &mut Simulation<World>) {
    let Some(mut ex) = sim.state_mut().wldrv.take() else {
        return;
    };
    if !ex.armed {
        sim.state_mut().wldrv = Some(ex);
        return;
    }
    let now = sim.now();
    ex.counters.ticks += 1;
    let mut actions = std::mem::take(&mut ex.scratch);
    ex.driver.poll(now, &mut actions);
    for a in &actions {
        apply_action(sim, a);
    }
    ex.counters.actions += actions.len() as u64;
    ex.scratch = actions;
    let period = ex.period;
    sim.state_mut().wldrv = Some(ex);
    schedule_tick(sim, period);
}

/// Apply one knob change to the world. Reservation changes skip VMs with
/// a migration in flight (matching the scripted ramps: the migration
/// fixed its destination reservation at start).
fn apply_action(sim: &mut Simulation<World>, a: &Action) {
    match a.knob {
        Knob::ReservationBytes => {
            if sim.state().vms[a.vm].migration.is_some() {
                return;
            }
            crate::scenario::set_reservation(sim, a.vm, a.value.max(0.0) as u64);
        }
        Knob::ActiveBytes => {
            if let Some(WorkloadKind::Ycsb(y)) = sim.state_mut().vms[a.vm].workload.as_mut() {
                y.set_active_bytes(a.value.max(0.0) as u64);
            }
        }
        Knob::WindowPhase { stride_records } => {
            if let Some(WorkloadKind::Ycsb(y)) = sim.state_mut().vms[a.vm].workload.as_mut() {
                y.set_active_start(a.value.max(0.0) as u64 * stride_records);
            }
        }
        Knob::ThinkNanos { base_ns } => {
            if let Some(c) = sim.state_mut().vms[a.vm].client.as_mut() {
                c.think_ns = (base_ns as f64 * a.value).max(0.0) as u64;
            }
        }
    }
}
