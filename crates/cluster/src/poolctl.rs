//! Elastic pool-manager executor: contribution leases, paced reclaim, and
//! skew-aware rebalancing over the VMD server fleet.
//!
//! The paper's VMD borrows the *spare* DRAM of intermediate hosts (§IV),
//! but spare memory is elastic: when a donor host's own workloads grow it
//! must take its DRAM back without losing any VM's swapped state. This
//! module is the clocked half of that story (the pure lease/planner logic
//! lives in [`agile_vmd::pool`]):
//!
//! 1. **Lease sizing** — each tick samples every donor host's ledger
//!    (`available_for_vms − reserved_bytes`) and feeds it to that server's
//!    [`LeaseController`]; lease changes apply to the server and are pushed
//!    to every client as [`agile_vmd::ServerMsg::LeaseUpdate`] so placement
//!    steers away *before* the next gossip round.
//! 2. **Reclaim** — a server holding more DRAM pages than its lease sheds
//!    them via the relocation pump (coldest namespace first, paced like the
//!    chaos repair pump); when no other server has leased headroom it
//!    demotes victims to its disk tier instead, and only a full disk makes
//!    new writes NAK.
//! 3. **Rebalance** — with no reclaim backlog, when the per-server
//!    utilization spread crosses the configured threshold, slots move from
//!    the most- to the least-utilized server (deterministic plan, paced).
//!
//! Backpressure hooks: above [`PoolConfig::high_water`] pool pressure,
//! guest eviction flushes are delayed ([`throttle_delay`]) and the WSS
//! controller defers reservation *shrinks* ([`under_pressure`]) — growing a
//! VM's reservation frees pool pages; shrinking it would add swap traffic
//! exactly when the pool has nowhere to put it.
//!
//! An unarmed pool (`World::pool == None`) schedules nothing and changes
//! nothing: legacy runs stay event-for-event identical.

use std::collections::HashMap;

use agile_sim_core::{FastEvent, SimDuration, Simulation};
use agile_vmd::pool::{pool_pressure, utilization_spread, ReclaimTarget};
use agile_vmd::{LeaseConfig, LeaseController, NamespaceId, PoolPlanner, ServerId, ServerLoad};

use crate::guest;
use crate::netdrv::touch_net;
use crate::world::{NetPayload, World};

/// Tuning for the pool manager.
#[derive(Clone, Copy, Debug)]
pub struct PoolConfig {
    /// Interval between pool ticks.
    pub period: SimDuration,
    /// Relocations issued per tick across all servers (pacing keeps
    /// reclaim traffic from starving foreground paging).
    pub relocations_per_tick: usize,
    /// Whether the skew-aware rebalancer runs.
    pub rebalance: bool,
    /// Utilization spread that triggers a rebalance move.
    pub rebalance_threshold: f64,
    /// Relocations per rebalance action.
    pub rebalance_batch: usize,
    /// Pool pressure (stored / leased) above which admission control
    /// engages: eviction flushes throttle and WSS shrinks defer.
    pub high_water: f64,
    /// Delay added to eviction flushes while above the high water mark.
    pub throttle: SimDuration,
    /// Per-server lease controller tuning.
    pub lease: LeaseConfig,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            period: SimDuration::from_millis(500),
            relocations_per_tick: 64,
            rebalance: true,
            rebalance_threshold: 0.15,
            rebalance_batch: 32,
            high_water: 0.90,
            throttle: SimDuration::from_millis(2),
            lease: LeaseConfig::default(),
        }
    }
}

/// What the pool manager did, for reports and assertions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolCounters {
    /// Lease reductions applied (donor demand grew).
    pub leases_shrunk: u64,
    /// Lease increases applied (donor demand receded).
    pub leases_grown: u64,
    /// Relocations that completed with the directory updated.
    pub pages_relocated: u64,
    /// Pages demoted to the disk tier for lack of pool headroom.
    pub pages_demoted: u64,
    /// Relocations abandoned (superseded, crash race, or no destination).
    pub relocations_aborted: u64,
    /// Rebalance actions taken (each moves up to a batch of slots).
    pub rebalance_moves: u64,
    /// Eviction flushes delayed by high-water admission control.
    pub throttled_flushes: u64,
    /// WSS reservation shrinks deferred by high-water admission control.
    pub deferred_shrinks: u64,
}

/// One in-flight relocation, keyed by `(ns, slot)` in [`PoolExec::moves`].
#[derive(Clone, Copy, Debug)]
pub struct MoveInfo {
    /// The replica being vacated.
    pub from: ServerId,
    /// Pinned destination (rebalance plan); `None` lets the client's ring
    /// placement pick any server with leased headroom.
    pub dest: Option<ServerId>,
}

/// Pool-manager executor state inside [`World`].
pub struct PoolExec {
    /// Tuning.
    pub cfg: PoolConfig,
    /// One lease controller per VMD server (index-aligned).
    pub lease_ctl: Vec<LeaseController>,
    /// Action counters.
    pub counters: PoolCounters,
    /// Relocations in flight (bounds pacing; pins rebalance destinations).
    pub moves: HashMap<(NamespaceId, u32), MoveInfo>,
    /// False once [`disarm_pool`] ran: the next tick does nothing and does
    /// not re-arm.
    pub armed: bool,
    /// Set when a planned rebalance issued zero moves (every candidate
    /// victim already had a replica on the destination): the plan cannot
    /// make progress until leases or placements change, so ticks skip it
    /// instead of re-scanning forever. Cleared by any lease change or
    /// reclaim action.
    pub stalled: bool,
}

fn pool_timer() -> FastEvent {
    FastEvent::Timer {
        kind: crate::fast::K_POOL_TICK,
        a: 0,
        b: 0,
    }
}

/// Arm the pool manager. Leases start at each server's full capacity (the
/// legacy fixed contribution) and adapt from the first tick's samples.
pub fn arm_pool(sim: &mut Simulation<World>, cfg: PoolConfig) {
    let period = cfg.period;
    let w = sim.state_mut();
    assert!(w.pool.is_none(), "pool manager armed twice");
    let lease_ctl = w
        .vmd
        .servers
        .iter()
        .map(|_| LeaseController::new(cfg.lease))
        .collect();
    w.pool = Some(PoolExec {
        cfg,
        lease_ctl,
        counters: PoolCounters::default(),
        moves: HashMap::new(),
        armed: true,
        stalled: false,
    });
    sim.schedule_fast_in(period, pool_timer());
}

/// Stop the pool manager after the current tick. Leases stay where they
/// are (servers keep honoring them); only the clocked loop stops.
pub fn disarm_pool(sim: &mut Simulation<World>) {
    if let Some(p) = sim.state_mut().pool.as_mut() {
        p.armed = false;
    }
}

/// One pool tick: lease sizing, paced reclaim, then (only when the pool
/// is quiescent) a rebalance step.
pub(crate) fn tick(sim: &mut Simulation<World>) {
    let Some(p) = sim.state().pool.as_ref() else {
        return;
    };
    if !p.armed {
        return;
    }
    let period = p.cfg.period;
    update_leases(sim);
    reclaim(sim);
    rebalance(sim);
    sim.schedule_fast_in(period, pool_timer());
}

/// Sample every donor host's ledger and resize its server's lease.
fn update_leases(sim: &mut Simulation<World>) {
    let now = sim.now();
    let page_size = sim.state().cfg.page_size;
    let n_servers = sim.state().vmd.servers.len();
    let n_clients = sim.state().vmd.clients.len();
    let mut touched = false;
    for s in 0..n_servers {
        let update = {
            let w = sim.state_mut();
            let p = w.pool.as_mut().expect("pool armed");
            if !w.vmd.servers[s].alive {
                // A crashed donor contributes nothing; forget its sample
                // window so a rejoin re-primes instead of acting on stale
                // demand.
                p.lease_ctl[s].reset();
                continue;
            }
            let host = w.vmd.servers[s].host;
            let ledger = &w.hosts[host].mem;
            let spare_pages = ledger
                .available_for_vms()
                .saturating_sub(ledger.reserved_bytes())
                / page_size;
            let server = &mut w.vmd.servers[s].server;
            let current = server.lease_pages();
            let next = p.lease_ctl[s].on_sample(server.mem_capacity_pages(), spare_pages, current);
            if next == current {
                None
            } else {
                let applied = server.set_lease(next);
                if applied < current {
                    p.counters.leases_shrunk += 1;
                } else {
                    p.counters.leases_grown += 1;
                }
                p.stalled = false;
                w.trace.record(
                    now,
                    agile_trace::TraceEvent::PoolLease {
                        server: s as u32,
                        lease_pages: applied,
                        shrink: applied < current,
                    },
                );
                Some(server.lease_update())
            }
        };
        // Push the change to every client immediately (don't wait for the
        // next gossip round — a shrinking server must stop attracting
        // placements now).
        if let Some(msg) = update {
            for c in 0..n_clients {
                let w = sim.state_mut();
                if let Some(&(_, to_client)) = w.vmd.channels.get(&(c, s)) {
                    let bytes = msg.wire_bytes(page_size);
                    let tag = w.tag(NetPayload::VmdToClient {
                        client: c,
                        server: s,
                        msg,
                    });
                    w.net.send(now, to_client, bytes, tag);
                    touched = true;
                }
            }
        }
    }
    if touched {
        touch_net(sim);
    }
}

/// Shed pages from servers holding more than their lease: relocate to
/// servers with leased headroom, else demote to the local spill tier.
/// Heat-driven tier stacks additionally compare the spill tier's read
/// cost against a network round trip ([`agile_vmd::pool::reclaim_target`])
/// and demote locally when the local tier is cheaper to fault from.
fn reclaim(sim: &mut Simulation<World>) {
    let now = sim.now();
    let n_servers = sim.state().vmd.servers.len();
    let mut budget = sim
        .state()
        .pool
        .as_ref()
        .map_or(0, |p| p.cfg.relocations_per_tick);
    let mut issued = false;
    for s in 0..n_servers {
        if budget == 0 {
            break;
        }
        let sid = ServerId(s as u32);
        let (over, victims) = {
            let w = sim.state();
            if !w.vmd.servers[s].alive {
                continue;
            }
            let server = &w.vmd.servers[s].server;
            let over = server.over_lease_pages();
            if over == 0 {
                continue;
            }
            (over, server.reclaim_victims(budget.min(over as usize)))
        };
        // Any *other* live server with authoritative leased headroom?
        let headroom = {
            let w = sim.state();
            (0..n_servers).any(|o| {
                o != s && w.vmd.servers[o].alive && w.vmd.servers[o].server.free_pages() > 0
            })
        };
        // Cost-aware reclaim (heat-driven tier stacks only): when the
        // server's next spill tier is cheaper to reach than a round trip
        // through the network, demote locally even though remote headroom
        // exists. Legacy stacks keep the relocate-first policy unchanged.
        let prefer_demote = {
            let w = sim.state();
            w.cfg.vmd_tiers.heat.enabled && {
                let relocation = agile_vmd::pool::relocation_cost(
                    w.cfg.prop_delay,
                    w.cfg.vmd_server_delay,
                    w.cfg.page_size,
                    w.cfg.link_bw.as_bytes_per_sec() as u64,
                );
                let server = &w.vmd.servers[s].server;
                agile_vmd::pool::reclaim_target(server.best_demotion_cost(), headroom, relocation)
                    == ReclaimTarget::Demote
            }
        };
        let mut relocated = 0u32;
        if headroom && !prefer_demote {
            for &(ns, slot) in &victims {
                if budget == 0 {
                    break;
                }
                let skip = {
                    let w = sim.state();
                    let p = w.pool.as_ref().expect("pool armed");
                    p.moves.contains_key(&(ns, slot))
                        || namespace_migrating(w, ns)
                        || namespace_forked(w, ns)
                };
                if skip {
                    continue;
                }
                let client_idx = pump_client_for(sim.state(), ns);
                let begun = {
                    let w = sim.state_mut();
                    let dir = std::rc::Rc::clone(&w.vmd.directory);
                    let dir = dir.borrow();
                    let mut client = w.vmd.clients[client_idx].client.borrow_mut();
                    client.begin_relocation(&dir, ns, slot, sid)
                };
                if begun {
                    let w = sim.state_mut();
                    let p = w.pool.as_mut().expect("pool armed");
                    p.moves.insert(
                        (ns, slot),
                        MoveInfo {
                            from: sid,
                            dest: None,
                        },
                    );
                    relocated += 1;
                    budget -= 1;
                    issued = true;
                }
            }
        }
        let mut demoted = 0u32;
        let pending_from_s = {
            let w = sim.state();
            let p = w.pool.as_ref().expect("pool armed");
            p.moves.values().any(|m| m.from == sid)
        };
        if relocated == 0 && !pending_from_s {
            // Nowhere to relocate (or nothing movable): spill to the disk
            // tier under the same pacing budget. A full disk leaves the
            // backlog for the NAK backstop on future writes.
            let w = sim.state_mut();
            let doomed = w.vmd.servers[s]
                .server
                .demote_victims(budget.min(over as usize));
            demoted = doomed.len() as u32;
            budget -= doomed.len();
            let p = w.pool.as_mut().expect("pool armed");
            p.counters.pages_demoted += u64::from(demoted);
        }
        if relocated > 0 || demoted > 0 {
            sim.state_mut().pool.as_mut().expect("pool armed").stalled = false;
            sim.state_mut().trace.record(
                now,
                agile_trace::TraceEvent::PoolReclaim {
                    server: s as u32,
                    relocated,
                    demoted,
                },
            );
        }
    }
    if issued {
        guest::flush_all_clients(sim);
    }
}

/// One rebalance step: when the pool is quiescent (no over-lease backlog,
/// no moves in flight) and the utilization spread crosses the threshold,
/// relocate a batch of the hot server's coldest slots to the cold server.
fn rebalance(sim: &mut Simulation<World>) {
    let now = sim.now();
    let plan = {
        let w = sim.state();
        let p = w.pool.as_ref().expect("pool armed");
        if !p.cfg.rebalance || p.stalled || !p.moves.is_empty() {
            return;
        }
        let backlog = w
            .vmd
            .servers
            .iter()
            .any(|e| e.alive && e.server.over_lease_pages() > 0);
        if backlog {
            return;
        }
        let loads = server_loads(w);
        let planner = PoolPlanner {
            threshold: p.cfg.rebalance_threshold,
        };
        planner.rebalance_move(&loads)
    };
    let Some((from, to)) = plan else { return };
    let (sid_from, sid_to) = (ServerId(from), ServerId(to));
    let (want, batch) = {
        let w = sim.state();
        let p = w.pool.as_ref().expect("pool armed");
        let dest_free = w.vmd.servers[to as usize].server.free_pages() as usize;
        let want = p.cfg.rebalance_batch.min(dest_free);
        // Over-fetch candidates: with small replica fleets many of the hot
        // server's coldest slots already have a replica on the destination
        // and are skipped below.
        let window = w.vmd.servers[from as usize]
            .server
            .reclaim_victims(want.saturating_mul(4).max(256));
        (want, window)
    };
    let mut moved = 0u32;
    for (ns, slot) in batch {
        if moved as usize >= want {
            break;
        }
        let skip = {
            let w = sim.state();
            // The destination must not already hold a replica of the slot,
            // and relocating a migrating VM's namespace is unsafe (its
            // driving client is about to move hosts).
            namespace_migrating(w, ns)
                || namespace_forked(w, ns)
                || w.vmd.directory.borrow().replicas(ns, slot).contains(sid_to)
        };
        if skip {
            continue;
        }
        let client_idx = pump_client_for(sim.state(), ns);
        let begun = {
            let w = sim.state_mut();
            let dir = std::rc::Rc::clone(&w.vmd.directory);
            let dir = dir.borrow();
            let mut client = w.vmd.clients[client_idx].client.borrow_mut();
            client.begin_relocation(&dir, ns, slot, sid_from)
        };
        if begun {
            let w = sim.state_mut();
            let p = w.pool.as_mut().expect("pool armed");
            p.moves.insert(
                (ns, slot),
                MoveInfo {
                    from: sid_from,
                    dest: Some(sid_to),
                },
            );
            moved += 1;
        }
    }
    if moved > 0 {
        {
            let w = sim.state_mut();
            let p = w.pool.as_mut().expect("pool armed");
            p.counters.rebalance_moves += 1;
            w.trace.record(
                now,
                agile_trace::TraceEvent::PoolRebalance {
                    from,
                    to,
                    pages: moved,
                },
            );
        }
        guest::flush_all_clients(sim);
    } else {
        // The plan cannot progress (every candidate already replicated on
        // the destination); stop re-planning until the fleet changes.
        sim.state_mut().pool.as_mut().expect("pool armed").stalled = true;
    }
}

/// Per-server loads of the live fleet, in server-id order (the planner's
/// tie-break relies on this ordering).
pub fn server_loads(w: &World) -> Vec<ServerLoad> {
    w.vmd
        .servers
        .iter()
        .enumerate()
        .filter(|(_, e)| e.alive)
        .map(|(s, e)| ServerLoad {
            server: s as u32,
            stored_mem_pages: e.server.mem_used_pages(),
            lease_pages: e.server.lease_pages(),
        })
        .collect()
}

/// Pool-wide DRAM pressure (stored / leased) across live servers.
pub fn pressure(w: &World) -> f64 {
    pool_pressure(&server_loads(w))
}

/// Max minus min per-server DRAM utilization across live servers.
pub fn spread(w: &World) -> f64 {
    utilization_spread(&server_loads(w))
}

/// Sum of leased free DRAM pages across live servers (scheduler
/// feasibility: a migration into the pool needs somewhere to swap to).
pub fn leased_free_pages(w: &World) -> u64 {
    w.vmd
        .servers
        .iter()
        .filter(|e| e.alive)
        .map(|e| e.server.free_pages())
        .sum()
}

/// True while the armed pool sits above its high water mark (admission
/// control for WSS reservation shrinks). Always false when unarmed.
pub fn under_pressure(w: &World) -> bool {
    match &w.pool {
        Some(p) if p.armed => pressure(w) > p.cfg.high_water,
        _ => false,
    }
}

/// Eviction-flush delay while above the high water mark, `None` otherwise.
pub(crate) fn throttle_delay(w: &World) -> Option<SimDuration> {
    match &w.pool {
        Some(p) if p.armed && pressure(w) > p.cfg.high_water => Some(p.cfg.throttle),
        _ => None,
    }
}

/// Can the swap path absorb another VMD-backed VM? Unarmed pools keep the
/// legacy answer (always yes — the disk tier is the backstop); an armed
/// pool requires leased DRAM headroom somewhere.
pub fn placement_feasible(w: &World) -> bool {
    match &w.pool {
        Some(p) if p.armed => leased_free_pages(w) > 0,
        _ => true,
    }
}

/// True when any relocation is still in flight (quiescence checks).
pub fn relocations_inflight(w: &World) -> bool {
    w.pool.as_ref().is_some_and(|p| !p.moves.is_empty())
}

/// True while the armed rebalancer would still issue a move (quiescence
/// checks — mirrors the plan step of [`tick`]).
pub fn rebalance_pending(w: &World) -> bool {
    match &w.pool {
        Some(p) if p.armed && p.cfg.rebalance => {
            if !p.moves.is_empty() || reclaim_backlog(w) {
                return true;
            }
            if p.stalled {
                return false;
            }
            let planner = PoolPlanner {
                threshold: p.cfg.rebalance_threshold,
            };
            planner.rebalance_move(&server_loads(w)).is_some()
        }
        _ => false,
    }
}

/// True when any live server still holds more DRAM than its lease.
pub fn reclaim_backlog(w: &World) -> bool {
    w.vmd
        .servers
        .iter()
        .any(|e| e.alive && e.server.over_lease_pages() > 0)
}

/// The namespace participates in a fork (sealed master or live clone):
/// its placements carry refcounted shares whose retention rules relocation
/// must not second-guess, so the pump pins them in place. Shared master
/// pages are already excluded server-side (`reclaim_victims` skips pages
/// with a nonzero fork refcount); this guard also covers clone overlays
/// and owner-freed placements. Forks exist only when the clone controller
/// ran, so legacy pool runs never take this branch's directory borrow
/// beyond two cheap map lookups.
fn namespace_forked(w: &World, ns: NamespaceId) -> bool {
    let dir = w.vmd.directory.borrow();
    dir.is_sealed(ns) || dir.parent_of(ns).is_some()
}

/// The namespace belongs to a VM whose migration is still in flight: its
/// driving client is about to change hosts, so leave its slots alone.
fn namespace_migrating(w: &World, ns: NamespaceId) -> bool {
    w.vms
        .iter()
        .any(|slot| slot.swap.namespace() == Some(ns) && slot.migration.is_some())
}

/// The client that drives relocations for a namespace: the one on the
/// host of the VM bound to it (falling back to client 0) — same choice
/// the chaos repair pump makes, so pump traffic originates where the
/// namespace's foreground I/O already flows.
fn pump_client_for(w: &World, ns: NamespaceId) -> usize {
    for slot in &w.vms {
        if slot.swap.namespace() == Some(ns) {
            if let Some(&c) = w.vmd.host_client.get(&slot.host) {
                return c;
            }
        }
    }
    0
}
