//! VMD transport glue: moves protocol messages between client and server
//! state machines over the simulated network, and resolves swap-I/O
//! completions back into the guest/migration paths.

use agile_sim_core::Simulation;
use agile_vmd::{ClientMsg, ServerId, ServerMsg, TierBacking, VmdCompletion};

use crate::netdrv::touch_net;
use crate::world::{NetPayload, SwapReqCtx, World};
use crate::{guest, migrate};

/// Drain a client's outbox onto the network.
pub fn flush_client(sim: &mut Simulation<World>, client_idx: usize) {
    let now = sim.now();
    let page_size = sim.state().cfg.page_size;
    // Copy-on-write breaks queued by the sans-IO client: trace them and
    // feed the clone controller's counter. One empty-queue branch on the
    // hot path; nonempty only after a namespace fork.
    if sim.state().vmd.clients[client_idx]
        .client
        .borrow()
        .has_cow_breaks()
    {
        let breaks: Vec<(agile_vmd::NamespaceId, u32)> = sim.state().vmd.clients[client_idx]
            .client
            .borrow_mut()
            .drain_cow_breaks()
            .collect();
        let w = sim.state_mut();
        if let Some(c) = w.clone.as_mut() {
            c.counters.cow_breaks += breaks.len() as u64;
        }
        for (ns, slot) in breaks {
            w.trace
                .record(now, agile_trace::TraceEvent::CowBreak { ns: ns.0, slot });
        }
    }
    loop {
        let batch: Vec<(ServerId, ClientMsg)> = {
            let w = sim.state_mut();
            let mut c = w.vmd.clients[client_idx].client.borrow_mut();
            c.drain_outbox().collect()
        };
        if batch.is_empty() {
            break;
        }
        for (server, msg) in batch {
            let server_idx = server.0 as usize;
            let bytes = msg.wire_bytes(page_size);
            let w = sim.state_mut();
            let &(to_server, _) = w
                .vmd
                .channels
                .get(&(client_idx, server_idx))
                .expect("no channel between VMD client and server");
            let tag = w.tag(NetPayload::VmdToServer {
                server: server_idx,
                client: client_idx,
                msg,
            });
            w.net.send(now, to_server, bytes, tag);
        }
    }
    touch_net(sim);
}

/// A client message arrived at an intermediate host: process it after the
/// server's lookup delay (plus disk time if the page sits on the spill
/// tier), then transmit the reply.
pub fn on_server_recv(
    sim: &mut Simulation<World>,
    server_idx: usize,
    client_idx: usize,
    msg: ClientMsg,
) {
    let delay = sim.state().cfg.vmd_server_delay;
    sim.schedule_in(delay, move |sim| {
        let now = sim.now();
        let page_size = sim.state().cfg.page_size;
        let (reply, tier) = {
            let w = sim.state_mut();
            if !w.vmd.servers[server_idx].alive {
                // Crashed host: the message is silently lost; the client's
                // failure detector and failover machinery deal with it.
                return;
            }
            let r = w.vmd.servers[server_idx].server.handle(msg);
            (r.msg, r.tier)
        };
        let Some(reply) = reply else { return };
        // Requests served below the DRAM head tier pay that tier's device
        // time before the reply leaves: the host's shared SSD queue for
        // the HD/SSD-backed VMD extension, or the tier's fixed latency for
        // zswap/CXL-like backings (no queueing — they are memory-class
        // devices, not a spindle).
        let backing = sim.state().vmd.servers[server_idx]
            .server
            .tier_backing(tier);
        let send_at = match backing {
            TierBacking::Dram => now,
            TierBacking::HostSsd => {
                let w = sim.state_mut();
                let host = w.vmd.servers[server_idx].host;
                match &w.hosts[host].ssd {
                    Some(dev) => {
                        let kind = match msg {
                            ClientMsg::ReadReq { .. } => agile_sim_core::IoKind::Read,
                            _ => agile_sim_core::IoKind::Write,
                        };
                        dev.borrow_mut().submit(now, kind, page_size)
                    }
                    None => now,
                }
            }
            TierBacking::Fixed { read, write } => match msg {
                ClientMsg::ReadReq { .. } => {
                    if sim.state().cfg.vmd_fixed_tier_queueing {
                        // Far-memory/CXL-like tiers have one transfer
                        // engine, not infinite parallelism: serialize
                        // concurrent reads through a per-(server, tier)
                        // busy-until horizon.
                        let w = sim.state_mut();
                        let busy = w
                            .fixed_tier_busy
                            .entry((server_idx, tier))
                            .or_insert(agile_sim_core::SimTime::ZERO);
                        let start = if *busy > now { *busy } else { now };
                        let done = start + read;
                        *busy = done;
                        done
                    } else {
                        now + read
                    }
                }
                _ => now + write,
            },
        };
        sim.schedule_at(send_at, move |sim| {
            let t = sim.now();
            let page_size = sim.state().cfg.page_size;
            let w = sim.state_mut();
            let &(_, to_client) = w
                .vmd
                .channels
                .get(&(client_idx, server_idx))
                .expect("no channel between VMD client and server");
            let bytes = reply.wire_bytes(page_size);
            let tag = w.tag(NetPayload::VmdToClient {
                client: client_idx,
                server: server_idx,
                msg: reply,
            });
            w.net.send(t, to_client, bytes, tag);
            touch_net(sim);
        });
    });
}

/// A server reply arrived back at a client host.
pub fn on_client_recv(
    sim: &mut Simulation<World>,
    client_idx: usize,
    server_idx: usize,
    msg: ServerMsg,
) {
    let completion = {
        let w = sim.state_mut();
        if !w.vmd.servers[server_idx].alive {
            // A reply that was in flight when the server crashed: drop it,
            // or it would clear the suspect mark and re-route traffic to a
            // dead host.
            return;
        }
        let mut c = w.vmd.clients[client_idx].client.borrow_mut();
        c.on_server_msg(ServerId(server_idx as u32), msg)
    };
    if let Some(completion) = completion {
        handle_completion(sim, client_idx, completion);
        if sim.state().vmd.clients[client_idx]
            .client
            .borrow()
            .has_outbox()
        {
            flush_client(sim, client_idx);
        }
    }
}

/// Act on a client completion: resolve swap I/O, or run the failover /
/// repair step the sans-IO client asked the executor to perform.
pub fn handle_completion(sim: &mut Simulation<World>, client_idx: usize, c: VmdCompletion) {
    if sim.state().trace.is_enabled() {
        use agile_trace::VmdKind;
        let now = sim.now();
        let kind = match &c {
            VmdCompletion::ReadDone { .. } => VmdKind::ReadDone,
            VmdCompletion::WriteDone { .. } => VmdKind::WriteDone,
            VmdCompletion::ReadFailed { .. } => VmdKind::ReadFailed,
            VmdCompletion::ReadNak { .. } => VmdKind::ReadNak,
            VmdCompletion::WriteNak { .. } => VmdKind::WriteNak,
            VmdCompletion::RepairRead { .. } => VmdKind::RepairWrite,
            VmdCompletion::RelocateRead { .. } => VmdKind::RelocateWrite,
            VmdCompletion::RelocateDone { .. } => VmdKind::RelocateDone,
            VmdCompletion::RelocateAbort { .. } => VmdKind::RelocateAbort,
        };
        sim.state_mut().trace.record(
            now,
            agile_trace::TraceEvent::Vmd {
                client: client_idx as u32,
                kind,
            },
        );
    }
    match c {
        VmdCompletion::ReadDone { req, .. } => resolve_swap_completion(sim, req),
        VmdCompletion::WriteDone { req } => {
            // Eviction write-backs need no follow-up.
            sim.state_mut().swap_reqs.remove(&req);
        }
        VmdCompletion::ReadFailed { req, .. } => {
            // Every replica is gone: the read's content is lost. Unblock
            // whoever waits on it with stale data and count the loss —
            // reported, never wedged.
            sim.state_mut().chaos.lost_reads += 1;
            resolve_swap_completion(sim, req);
        }
        VmdCompletion::ReadNak { req } => {
            let next = {
                let w = sim.state_mut();
                let dir = std::rc::Rc::clone(&w.vmd.directory);
                let dir = dir.borrow();
                let mut client = w.vmd.clients[client_idx].client.borrow_mut();
                client.read_failover(&dir, req)
            };
            if let Some(next) = next {
                handle_completion(sim, client_idx, next);
            }
        }
        VmdCompletion::WriteNak { req } => {
            let next = {
                let w = sim.state_mut();
                let dir = std::rc::Rc::clone(&w.vmd.directory);
                let mut dir = dir.borrow_mut();
                let mut client = w.vmd.clients[client_idx].client.borrow_mut();
                client.write_failover(&mut dir, req)
            };
            if let Some(next) = next {
                handle_completion(sim, client_idx, next);
            }
        }
        VmdCompletion::RepairRead { ns, slot, version } => {
            let w = sim.state_mut();
            let dir = std::rc::Rc::clone(&w.vmd.directory);
            let mut dir = dir.borrow_mut();
            let mut client = w.vmd.clients[client_idx].client.borrow_mut();
            client.repair_write(&mut dir, ns, slot, version);
        }
        VmdCompletion::RelocateRead {
            ns,
            slot,
            version,
            from,
        } => {
            // The pool manager may have pinned a destination (rebalance
            // plan); reclaim moves let the client's ring placement pick.
            let prefer = sim
                .state()
                .pool
                .as_ref()
                .and_then(|p| p.moves.get(&(ns, slot)).and_then(|m| m.dest));
            let issued = {
                let w = sim.state_mut();
                let dir = std::rc::Rc::clone(&w.vmd.directory);
                let dir = dir.borrow();
                let mut client = w.vmd.clients[client_idx].client.borrow_mut();
                client.relocate_write(&dir, ns, slot, version, from, prefer)
            };
            if !issued {
                if let Some(p) = sim.state_mut().pool.as_mut() {
                    p.moves.remove(&(ns, slot));
                    p.counters.relocations_aborted += 1;
                }
            }
        }
        VmdCompletion::RelocateDone { ns, slot, from, to } => {
            let moved = {
                let w = sim.state_mut();
                let dir = std::rc::Rc::clone(&w.vmd.directory);
                let mut dir = dir.borrow_mut();
                let mut client = w.vmd.clients[client_idx].client.borrow_mut();
                client.finish_relocation(&mut dir, ns, slot, from, to)
            };
            if let Some(p) = sim.state_mut().pool.as_mut() {
                p.moves.remove(&(ns, slot));
                if moved {
                    p.counters.pages_relocated += 1;
                } else {
                    p.counters.relocations_aborted += 1;
                }
            }
        }
        VmdCompletion::RelocateAbort { ns, slot } => {
            if let Some(p) = sim.state_mut().pool.as_mut() {
                p.moves.remove(&(ns, slot));
                p.counters.relocations_aborted += 1;
            }
        }
    }
}

/// Dispatch a completed swap read to its context.
pub fn resolve_swap_completion(sim: &mut Simulation<World>, req: u64) {
    let ctx = sim
        .state_mut()
        .swap_reqs
        .remove(&req)
        .expect("unknown swap request");
    match ctx {
        SwapReqCtx::GuestFault {
            vm,
            pfn,
            epoch,
            dest_stat,
            issued,
        } => {
            // Every guest-fault completion funnels through here — local
            // SSD reads and VMD reads alike — so this one observation
            // point covers the whole guest-visible latency distribution.
            let now = sim.now();
            if let Some(hist) = sim.state_mut().fault_hist.as_deref_mut() {
                hist.observe(now - issued);
            }
            guest::complete_guest_fault(sim, vm, pfn, epoch, dest_stat)
        }
        SwapReqCtx::MigrationSwapIn { mig, batch, pfn } => {
            migrate::complete_migration_swapin(sim, mig, batch, pfn)
        }
        SwapReqCtx::EvictionWrite => {}
        SwapReqCtx::CloneHydrate { vm, pfn } => crate::clonectl::complete_hydrate(sim, vm, pfn),
    }
}

/// Broadcast every server's availability to every client (the periodic
/// gossip of §IV-A). Returns `true` so `schedule_every` keeps running.
pub fn gossip_availability(sim: &mut Simulation<World>) -> bool {
    let now = sim.now();
    let page_size = sim.state().cfg.page_size;
    let n_servers = sim.state().vmd.servers.len();
    let n_clients = sim.state().vmd.clients.len();
    for s in 0..n_servers {
        if !sim.state().vmd.servers[s].alive {
            // A crashed host gossips nothing; its silence is what the
            // clients' failure detector keys on.
            continue;
        }
        let msg = sim.state().vmd.servers[s].server.availability();
        for c in 0..n_clients {
            let w = sim.state_mut();
            if let Some(&(_, to_client)) = w.vmd.channels.get(&(c, s)) {
                let bytes = msg.wire_bytes(page_size);
                let tag = w.tag(NetPayload::VmdToClient {
                    client: c,
                    server: s,
                    msg,
                });
                w.net.send(now, to_client, bytes, tag);
            }
        }
    }
    touch_net(sim);
    true
}
