//! The simulated world: hosts, VMs, network, VMD, migrations, clients.
//!
//! `World` is the state type of the discrete-event [`agile_sim_core::Simulation`]; all
//! executor logic lives in sibling modules as free functions over
//! `&mut Simulation<World>`. Cross-references use plain indices — the
//! world is single-threaded and slab-structured (perf-book idiom: no
//! `Rc` cycles, no per-event allocation beyond closures).

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use agile_memory::{HostMemory, SsdSwap, SwapBackend, VmMemory};
use agile_migration::{DestSession, SourceSession};
use agile_sim_core::{
    BlockDevice, ChannelId, DetRng, IoCounters, Network, NodeId, SeedSequence, SimDuration,
    ThroughputMeter, TimeSeries,
};
use agile_vm::Vm;
use agile_vmd::{NamespaceId, VmdClient, VmdDirectory, VmdServer, VmdSwapDevice};
use agile_workload::{OpSpec, OsBackground, SysbenchOltp, YcsbRedis};
use agile_wss::WssEstimator;

use crate::config::ClusterConfig;

/// A host in the cluster.
pub struct Host {
    /// Human-readable name ("source", "dest", "intermediate1", "client").
    pub name: String,
    /// This host's NIC in the fluid network.
    pub node: NodeId,
    /// Physical-memory ledger.
    pub mem: HostMemory,
    /// Local SSD used as the shared swap partition (baselines), if any.
    pub ssd: Option<Rc<RefCell<BlockDevice>>>,
    /// Slot allocator of the shared swap partition: every VM swapping to
    /// this host's SSD draws from one slot space, so concurrent eviction
    /// streams interleave — which is what destroys sequential layout for
    /// the baselines' bulk swap-ins.
    pub swap_slots: Option<Rc<RefCell<agile_memory::SlotAllocator>>>,
}

/// A VM's swap device binding.
pub enum SwapDev {
    /// Shared local SSD partition.
    Ssd(SsdSwap),
    /// Portable per-VM VMD namespace.
    Vmd(VmdSwapDevice),
}

impl SwapDev {
    /// Trait-object view.
    pub fn backend(&mut self) -> &mut dyn SwapBackend {
        match self {
            SwapDev::Ssd(s) => s,
            SwapDev::Vmd(v) => v,
        }
    }

    /// Per-VM iostat counters.
    pub fn counters(&self) -> IoCounters {
        match self {
            SwapDev::Ssd(s) => s.counters(),
            SwapDev::Vmd(v) => v.counters(),
        }
    }

    /// The VMD namespace, if network-backed.
    pub fn namespace(&self) -> Option<NamespaceId> {
        match self {
            SwapDev::Ssd(_) => None,
            SwapDev::Vmd(v) => Some(v.namespace()),
        }
    }

    /// True for the VMD-backed (readahead-free, per-VM) device.
    pub fn is_vmd(&self) -> bool {
        matches!(self, SwapDev::Vmd(_))
    }
}

/// The application served by a VM.
pub enum WorkloadKind {
    /// YCSB over Redis.
    Ycsb(YcsbRedis),
    /// Sysbench OLTP over MySQL.
    Oltp(SysbenchOltp),
}

impl WorkloadKind {
    /// Server-side request concurrency.
    pub fn server_concurrency(&self) -> u32 {
        match self {
            WorkloadKind::Ycsb(y) => y.server_concurrency(),
            WorkloadKind::Oltp(o) => o.server_concurrency(),
        }
    }

    /// Closed-loop client threads.
    pub fn client_threads(&self) -> u32 {
        match self {
            WorkloadKind::Ycsb(y) => y.client_threads(),
            WorkloadKind::Oltp(o) => o.client_threads(),
        }
    }

    /// Generate the next request; returns the op and whether its
    /// completion counts as one application-level completion (YCSB op or
    /// OLTP transaction commit).
    pub fn next_op(&mut self, rng: &mut DetRng) -> (OpSpec, bool) {
        match self {
            WorkloadKind::Ycsb(y) => (y.next_op(rng), true),
            WorkloadKind::Oltp(o) => o.next_op(rng),
        }
    }
}

/// An external client bound to one VM.
pub struct ClientBinding {
    /// Host the client runs on.
    pub host: usize,
    /// Closed-loop threads.
    pub threads: u32,
    /// Channel client → VM's execution host.
    pub to_vm: ChannelId,
    /// Channel VM's execution host → client.
    pub from_vm: ChannelId,
    /// Key/op selection stream.
    pub rng: DetRng,
    /// Closed-loop think time between a response and the next request,
    /// in nanoseconds. 0 (the default) keeps the legacy think-free loop:
    /// the next request is issued inline with no extra event.
    pub think_ns: u64,
}

/// A pending fault on one guest page, with parked operations.
pub struct FaultEntry {
    /// Ops waiting for the page.
    pub waiters: Vec<usize>,
    /// Whether I/O / a demand request has been issued.
    pub issued: bool,
}

/// One in-flight guest operation (request being served).
pub struct OpExec {
    /// Generation guard: bumped when the op is re-queued across a
    /// suspension so stale scheduled callbacks become no-ops.
    pub gen: u32,
    /// VM index.
    pub vm: usize,
    /// Page touches.
    pub touches: agile_workload::TouchList,
    /// Next touch index.
    pub idx: usize,
    /// CPU burst after the touches.
    pub cpu: SimDuration,
    /// Response size.
    pub response_bytes: u64,
    /// Completion ticks the VM's throughput meter.
    pub counts: bool,
    /// Whether a response must be sent to the client (guest-internal work
    /// like OS background has no client).
    pub respond: bool,
}

/// The WSS tracking machinery attached to a VM.
pub struct WssExec {
    /// The pluggable estimator driving reservation sizing (swap-I/O by
    /// default; simulated-PML when configured).
    pub estimator: Box<dyn WssEstimator>,
    /// The VM's [`VmSlot::mem_epoch`] the estimator last sampled under. A
    /// mismatch means the VM resumed elsewhere — the swap device binding
    /// (and its cumulative counters) was replaced under the estimator, so
    /// the sampling window must re-prime instead of computing a rate from
    /// counters of two different devices.
    pub epoch_seen: u32,
    /// When set, the VM's memory image has simulated-PML epoch tracking
    /// armed with this log capacity; the sampling tick drains it and —
    /// after a migration replaces the image — re-arms the fresh image.
    pub epoch_log_cap: Option<usize>,
}

/// Cumulative WSS-tracking counters (one set per world).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct WssCounters {
    /// Applied estimator ticks (reservation adjustments).
    pub samples: u64,
    /// Simulated-PML epoch drains.
    pub epoch_drains: u64,
    /// Drains whose bounded log overflowed into the full-scan fallback.
    pub pml_overflows: u64,
}

/// A VM slot: the VM plus everything the executor needs around it.
pub struct VmSlot {
    /// The VM.
    pub vm: Vm,
    /// Host index the VM currently executes on (mirrors `vm.state()`).
    pub host: usize,
    /// Swap device binding.
    pub swap: SwapDev,
    /// Application model.
    pub workload: Option<WorkloadKind>,
    /// Guest-OS background generator.
    pub os_bg: Option<OsBackground>,
    /// Queued requests awaiting a server worker.
    pub server_queue: VecDeque<usize>,
    /// Requests being processed right now.
    pub server_active: u32,
    /// Pending page faults with parked ops.
    pub pending_faults: HashMap<u32, FaultEntry>,
    /// Requests held while the VM is suspended (connection limbo).
    pub limbo: Vec<usize>,
    /// Client binding (external load generator).
    pub client: Option<ClientBinding>,
    /// Application completions per second.
    pub meter: ThroughputMeter,
    /// Reservation over time (Fig. 9).
    pub reservation_series: TimeSeries,
    /// Active migration (index into `World::migrations`).
    pub migration: Option<usize>,
    /// WSS tracking, if enabled for this VM.
    pub wss: Option<WssExec>,
    /// RNG stream for guest-OS background activity.
    pub os_rng: DetRng,
    /// Generation of the OS-background burst chain (bumped at suspension
    /// so superseded chains die).
    pub os_bg_gen: u32,
    /// Memory-image epoch: bumped when the destination image takes over,
    /// so in-flight source-side I/O completions apply to the right image.
    pub mem_epoch: u32,
}

/// One migration in progress (or finished).
pub struct MigrationExec {
    /// VM index.
    pub vm: usize,
    /// Source host index.
    pub source_host: usize,
    /// Destination host index.
    pub dest_host: usize,
    /// Source-side protocol session.
    pub src: SourceSession,
    /// Destination-side protocol session.
    pub dst: DestSession,
    /// Bulk stream channel (source → dest).
    pub stream_ch: ChannelId,
    /// Demand-response channel (source → dest).
    pub demand_ch: ChannelId,
    /// Demand-request channel (dest → source).
    pub req_ch: ChannelId,
    /// Chunks in flight on the bulk stream (flow control).
    pub in_flight: usize,
    /// Priority (demand-response) chunks in flight.
    pub demand_in_flight: usize,
    /// Source emitted `Done`.
    pub src_done: bool,
    /// Fully finished (metrics complete, source freed).
    pub finished: bool,
    /// The arriving VM's memory at the destination (until resume).
    pub dest_mem: Option<VmMemory>,
    /// The departing VM's memory at the source (after resume).
    pub source_mem: Option<VmMemory>,
    /// Swap device the VM will use at the destination (installed at
    /// resume). For Agile this is the same portable namespace bound
    /// through the destination's VMD client.
    pub dest_swap: Option<SwapDev>,
    /// The swap device the VM used at the source, retained after resume
    /// so late source-side evictions/swap-ins still have a device.
    pub source_swap: Option<SwapDev>,
    /// Outstanding Migration-Manager swap-in batches: batch → pages left.
    pub swapin_remaining: HashMap<u64, u32>,
    /// When set, finalization verifies that the destination holds (at
    /// least) the source's final content version of every page — the
    /// end-to-end dirty-tracking check used by the integration tests.
    pub verify_content: bool,
    /// Attempt counter: bumped on every abort so scheduled retry
    /// callbacks from a superseded attempt become no-ops.
    pub attempt: u32,
    /// Completed abort-and-retry cycles.
    pub retries: u32,
    /// Destination cgroup reservation, retained so a retry can rebuild
    /// the destination image.
    pub dest_reservation: u64,
    /// The migration connections dropped after the destination resumed:
    /// remaining source state is unreachable and faults fall back to the
    /// per-VM swap device (the replicated VMD namespace).
    pub conn_down: bool,
    /// Pages that could be recovered from neither the source (connection
    /// down) nor the swap device; they were zero-filled and counted.
    pub pages_lost_on_conn_drop: u64,
}

/// What a network delivery means.
pub enum NetPayload {
    /// A client request arriving at the VM's execution host.
    Request {
        /// VM index.
        vm: usize,
        /// The operation.
        op: OpSpec,
        /// Completion counts toward the meter.
        counts: bool,
    },
    /// A response arriving back at the client.
    Response {
        /// VM index.
        vm: usize,
        /// Completion counts toward the meter.
        counts: bool,
    },
    /// A migration chunk arriving at the destination.
    MigChunk {
        /// Migration index.
        mig: usize,
        /// Registry key of the chunk payload.
        chunk: u64,
        /// Arrived on the demand (priority) channel.
        priority: bool,
    },
    /// The CPU-state + dirty-bitmap handoff arriving at the destination.
    MigHandoff {
        /// Migration index.
        mig: usize,
    },
    /// A demand-page request arriving at the source.
    DemandReq {
        /// Migration index.
        mig: usize,
        /// Faulted page.
        pfn: u32,
    },
    /// A VMD protocol message arriving at a server.
    VmdToServer {
        /// Server index.
        server: usize,
        /// Sending client index.
        client: usize,
        /// The message.
        msg: agile_vmd::ClientMsg,
    },
    /// A VMD protocol message arriving back at a client.
    VmdToClient {
        /// Client index.
        client: usize,
        /// Replying server index.
        server: usize,
        /// The message.
        msg: agile_vmd::ServerMsg,
    },
}

/// Context of an outstanding swap I/O.
pub enum SwapReqCtx {
    /// A guest major fault; completion installs the page and wakes
    /// waiters.
    GuestFault {
        /// VM index.
        vm: usize,
        /// Faulted page.
        pfn: u32,
        /// Memory-image epoch the I/O was issued against.
        epoch: u32,
        /// Count the completion as a destination fault-from-swap (Agile).
        dest_stat: bool,
        /// When the fault was issued (guest-visible latency histogram).
        issued: agile_sim_core::SimTime,
    },
    /// One page of a Migration-Manager swap-in batch.
    MigrationSwapIn {
        /// Migration index.
        mig: usize,
        /// Batch id for [`agile_migration::SourceEvent::SwapInDone`].
        batch: u64,
        /// Page being read.
        pfn: u32,
    },
    /// An eviction write-back; nothing to do on completion.
    EvictionWrite,
    /// One page of a clone's background hydration stream (the clone
    /// controller's paced pump reading the forked gold image).
    CloneHydrate {
        /// VM index of the clone.
        vm: usize,
        /// Page being hydrated.
        pfn: u32,
    },
}

/// A VMD endpoint (client or server) placement.
pub struct VmdClientEntry {
    /// The protocol state machine.
    pub client: Rc<RefCell<VmdClient>>,
    /// Host it runs on.
    pub host: usize,
}

/// A VMD server placement.
pub struct VmdServerEntry {
    /// The protocol state machine.
    pub server: VmdServer,
    /// Host it runs on.
    pub host: usize,
    /// False while the server is crashed: messages to and from it are
    /// dropped by the transport and availability gossip skips it.
    pub alive: bool,
}

/// The VMD subsystem.
pub struct VmdSubsystem {
    /// Shared namespace directory (portable-device metadata).
    pub directory: Rc<RefCell<VmdDirectory>>,
    /// Per-namespace slot allocators (namespace metadata, shared between
    /// the source and destination images of a migrating VM).
    pub allocators: HashMap<NamespaceId, Rc<RefCell<agile_memory::SlotAllocator>>>,
    /// Clients, one per participating host.
    pub clients: Vec<VmdClientEntry>,
    /// Servers, one per intermediate host.
    pub servers: Vec<VmdServerEntry>,
    /// Host index → client index.
    pub host_client: HashMap<usize, usize>,
    /// (client, server) → (to-server channel, to-client channel).
    pub channels: HashMap<(usize, usize), (ChannelId, ChannelId)>,
}

impl VmdSubsystem {
    /// An empty subsystem.
    pub fn new() -> Self {
        VmdSubsystem {
            directory: Rc::new(RefCell::new(VmdDirectory::new())),
            allocators: HashMap::new(),
            clients: Vec::new(),
            servers: Vec::new(),
            host_client: HashMap::new(),
            channels: HashMap::new(),
        }
    }
}

impl Default for VmdSubsystem {
    fn default() -> Self {
        Self::new()
    }
}

/// The whole simulated cluster.
pub struct World {
    /// Static configuration.
    pub cfg: ClusterConfig,
    /// Per-component RNG seed derivation.
    pub seeds: SeedSequence,
    /// The fluid-flow network.
    pub net: Network,
    /// Per-world network-poll driver state (armed event + counters).
    pub netdrv: crate::netdrv::NetDriver,
    /// Which shard of a sharded run this world is (0 when standalone).
    pub shard_id: usize,
    /// Cross-shard boundary state: outgoing messages drained at epoch
    /// barriers, incoming global signals. Empty (and free) when the world
    /// runs standalone.
    pub boundary: crate::shard::BoundaryState,
    /// Hosts.
    pub hosts: Vec<Host>,
    /// VM slots.
    pub vms: Vec<VmSlot>,
    /// VMD subsystem.
    pub vmd: VmdSubsystem,
    /// Migrations (active and completed).
    pub migrations: Vec<MigrationExec>,
    /// Delivery-tag registry.
    pub payloads: HashMap<u64, NetPayload>,
    /// Next delivery tag.
    pub next_tag: u64,
    /// Chunk payload registry (referenced by `NetPayload::MigChunk`).
    pub chunks: HashMap<u64, agile_migration::Chunk>,
    /// Next chunk key.
    pub next_chunk: u64,
    /// Outstanding swap I/Os.
    pub swap_reqs: HashMap<u64, SwapReqCtx>,
    /// Next swap request id.
    pub next_req: u64,
    /// In-flight op slab.
    pub ops: Vec<Option<OpExec>>,
    /// Free slots in the op slab.
    pub free_ops: Vec<usize>,
    /// Monotonic op-generation counter (uniqueness across slot reuse).
    pub next_op_gen: u32,
    /// Migration swap-in batches piggybacking on in-flight guest faults:
    /// `(vm, pfn)` → batches to credit when the page read completes.
    pub swapin_piggyback: HashMap<(usize, u32), Vec<(usize, u64)>>,
    /// Scratch eviction buffer (reused; perf-book: no per-fault allocs).
    pub evict_buf: Vec<agile_memory::Eviction>,
    /// Fault-injection executor state (empty in non-chaos runs: the
    /// wiring adds zero events when no schedule is installed).
    pub chaos: crate::chaosctl::ChaosExec,
    /// Cluster-scale watermark scheduler, if armed
    /// ([`crate::sched::arm_scheduler`]). `None` costs nothing.
    pub sched: Option<crate::sched::SchedExec>,
    /// Elastic pool manager, if armed ([`crate::poolctl::arm_pool`]).
    /// `None` costs nothing and changes nothing (legacy fixed leases).
    pub pool: Option<crate::poolctl::PoolExec>,
    /// Temporal workload driver, if armed ([`crate::wlctl::arm_driver`]).
    /// `None` costs nothing; a driver whose signals are all constant
    /// installs zero events.
    pub wldrv: Option<crate::wlctl::WlExec>,
    /// Elastic clone controller, if armed
    /// ([`crate::clonectl::arm_cloning`]). `None` costs nothing: no fork
    /// is ever issued and legacy traces replay byte-identically.
    pub clone: Option<crate::clonectl::CloneExec>,
    /// Busy-until horizon per `(server, tier)` for `Fixed`-backed tier
    /// reads, used only when
    /// [`ClusterConfig::vmd_fixed_tier_queueing`](crate::config::ClusterConfig::vmd_fixed_tier_queueing)
    /// is set. Empty (and never touched) under the legacy unqueued model.
    pub fixed_tier_busy: HashMap<(usize, u8), agile_sim_core::SimTime>,
    /// Simulated-time trace sink. Disabled by default: `record` is an
    /// inlined early-return and the sink owns no buffer, so untraced
    /// runs pay nothing on the event hot paths.
    pub trace: agile_trace::Tracer,
    /// WSS-tracking counters (metrics rows appear only when the PML
    /// machinery actually ran, keeping legacy metrics JSON unchanged).
    pub wss_counters: WssCounters,
    /// Guest-visible major-fault latency histogram. `None` (the default)
    /// records nothing and costs nothing; scenarios that report fault
    /// latency (`scenario::tiers`) install one.
    pub fault_hist: Option<Box<agile_sim_core::FixedHistogram>>,
}

impl World {
    /// Create an empty world.
    pub fn new(cfg: ClusterConfig) -> Self {
        World {
            cfg,
            seeds: SeedSequence::new(cfg.seed),
            net: Network::new(cfg.prop_delay),
            netdrv: crate::netdrv::NetDriver::default(),
            shard_id: 0,
            boundary: crate::shard::BoundaryState::default(),
            hosts: Vec::new(),
            vms: Vec::new(),
            vmd: VmdSubsystem::new(),
            migrations: Vec::new(),
            payloads: HashMap::new(),
            next_tag: 0,
            chunks: HashMap::new(),
            next_chunk: 0,
            swap_reqs: HashMap::new(),
            next_req: 0,
            ops: Vec::new(),
            free_ops: Vec::new(),
            next_op_gen: 0,
            swapin_piggyback: HashMap::new(),
            evict_buf: Vec::new(),
            chaos: crate::chaosctl::ChaosExec::default(),
            sched: None,
            pool: None,
            wldrv: None,
            clone: None,
            fixed_tier_busy: HashMap::new(),
            trace: agile_trace::Tracer::disabled(),
            wss_counters: WssCounters::default(),
            fault_hist: None,
        }
    }

    /// Allocate a delivery tag for a payload.
    pub fn tag(&mut self, payload: NetPayload) -> u64 {
        let t = self.next_tag;
        self.next_tag += 1;
        self.payloads.insert(t, payload);
        t
    }

    /// Allocate a swap request id with its context.
    pub fn swap_req(&mut self, ctx: SwapReqCtx) -> u64 {
        let r = self.next_req;
        self.next_req += 1;
        self.swap_reqs.insert(r, ctx);
        r
    }

    /// Register a chunk payload, returning its key.
    pub fn stash_chunk(&mut self, chunk: agile_migration::Chunk) -> u64 {
        let k = self.next_chunk;
        self.next_chunk += 1;
        self.chunks.insert(k, chunk);
        k
    }

    /// Allocate an op slab slot. The op's generation is overwritten with a
    /// globally-unique value so stale scheduled callbacks (which capture
    /// `(id, gen)`) can never act on a recycled slot.
    pub fn alloc_op(&mut self, mut op: OpExec) -> usize {
        op.gen = self.next_op_gen;
        self.next_op_gen += 1;
        if let Some(i) = self.free_ops.pop() {
            self.ops[i] = Some(op);
            i
        } else {
            self.ops.push(Some(op));
            self.ops.len() - 1
        }
    }

    /// Bump an op's generation (invalidating scheduled callbacks) and
    /// return the new value.
    pub fn bump_op_gen(&mut self, id: usize) -> u32 {
        let gen = self.next_op_gen;
        self.next_op_gen += 1;
        let op = self.ops[id].as_mut().expect("live op");
        op.gen = gen;
        gen
    }

    /// Free an op slab slot.
    pub fn free_op(&mut self, id: usize) {
        debug_assert!(self.ops[id].is_some(), "double free of op {id}");
        self.ops[id] = None;
        self.free_ops.push(id);
    }

    /// The memory image the *source side* of migration `mig` operates on:
    /// the VM's own memory until resume, then the retained source copy.
    pub fn source_mem(&self, mig: usize) -> &VmMemory {
        let m = &self.migrations[mig];
        match &m.source_mem {
            Some(mem) => mem,
            None => self.vms[m.vm].vm.memory(),
        }
    }
}
