//! Fault-injection executor: replays an [`agile_chaos::ChaosSchedule`]
//! against the cluster and runs the recovery machinery the faults exercise.
//!
//! Installation ([`install`]) schedules one fast event per fault; a run
//! with an empty schedule schedules **nothing**, so non-chaos runs are
//! event-for-event identical to a build without this module (the
//! golden-trace tests pin this down).
//!
//! The recovery side implements the failure model the paper's design
//! implies but never spells out: a VMD server crash loses that host's
//! DRAM contribution, a missed-gossip failure detector marks it suspect
//! at every client after [`crate::config::ClusterConfig::vmd_detect_delay`],
//! in-flight requests fail over to surviving replicas, the directory
//! evicts the dead server, and a paced background pump re-replicates
//! under-replicated slots from survivors. With `vmd_replication = 1`
//! there is nowhere to fail over to: affected slots are *reported* as
//! lost (never a panic — the guest is unblocked with stale content).

use agile_chaos::{ChaosSchedule, FaultKind};
use agile_sim_core::{Bandwidth, FastEvent, SimDuration, SimTime, Simulation};
use agile_vmd::{NamespaceId, ServerId};

use crate::netdrv::touch_net;
use crate::world::World;
use crate::{guest, migrate, vmdio};

/// Slots re-replicated per repair tick (pacing keeps repair traffic from
/// starving foreground paging).
const REPAIR_SLOTS_PER_TICK: usize = 64;

/// Interval between repair ticks.
const REPAIR_TICK: SimDuration = SimDuration::from_millis(10);

/// One server crash and everything the cluster did about it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CrashRecord {
    /// Index of the crashed VMD server.
    pub server: usize,
    /// When the crash fired.
    pub at: SimTime,
    /// When the failure detector fired (suspect marks + directory evict).
    pub detected_at: Option<SimTime>,
    /// When the server rejoined (empty), if it did.
    pub rejoined_at: Option<SimTime>,
    /// When background re-replication of every survivor slot finished.
    pub repaired_at: Option<SimTime>,
    /// Pages of VM state the crash wiped from the server's DRAM/disk.
    pub pages_wiped: u64,
    /// Slots the directory evicted from the dead server.
    pub slots_evicted: u64,
    /// Evicted slots with no surviving replica (lost state).
    pub slots_lost: u64,
    /// Evicted slots queued for re-replication from survivors.
    pub slots_queued_for_repair: u64,
}

/// Fault-injection executor state inside [`World`].
#[derive(Default)]
pub struct ChaosExec {
    /// The installed schedule (empty when chaos is off).
    pub schedule: ChaosSchedule,
    /// Crash history, in injection order.
    pub crashes: Vec<CrashRecord>,
    /// Under-replicated slots awaiting background repair.
    pub repair_queue: std::collections::VecDeque<(NamespaceId, u32)>,
    /// Whether a repair tick is currently scheduled.
    pub repair_armed: bool,
    /// Slots successfully re-replicated so far.
    pub slots_repaired: u64,
    /// Swap reads that completed with lost content (the guest was
    /// unblocked with stale data and the loss counted, never wedged).
    pub lost_reads: u64,
    /// Migration connection drops injected.
    pub conn_drops: u64,
}

impl ChaosExec {
    /// Sum of slots reported lost across all crashes.
    pub fn total_slots_lost(&self) -> u64 {
        self.crashes.iter().map(|c| c.slots_lost).sum()
    }

    /// Widest crash-to-repaired (or crash-to-detected, when nothing
    /// needed repair) window across all crashes, in seconds.
    pub fn worst_unavailability_secs(&self) -> f64 {
        self.crashes
            .iter()
            .filter_map(|c| {
                let end = c.repaired_at.or(c.detected_at)?;
                Some(end.saturating_since(c.at).as_secs_f64())
            })
            .fold(0.0, f64::max)
    }
}

/// Install a fault schedule: one fast event per fault. An empty schedule
/// installs nothing — zero events, zero divergence from a chaos-free run.
pub fn install(sim: &mut Simulation<World>, schedule: ChaosSchedule) {
    let times: Vec<SimTime> = schedule.events().iter().map(|e| e.at).collect();
    sim.state_mut().chaos.schedule = schedule;
    for (i, at) in times.into_iter().enumerate() {
        sim.schedule_fast(
            at,
            FastEvent::Timer {
                kind: crate::fast::K_CHAOS_FAULT,
                a: i as u64,
                b: 0,
            },
        );
    }
}

/// Fire fault `idx` of the installed schedule.
pub(crate) fn fire(sim: &mut Simulation<World>, idx: usize) {
    let kind = sim.state().chaos.schedule.events()[idx].kind;
    if sim.state().trace.is_enabled() {
        use agile_trace::ChaosKind;
        let now = sim.now();
        let (tk, target, start) = match kind {
            FaultKind::ServerCrash { server } => (ChaosKind::ServerCrash, server, true),
            FaultKind::ServerRejoin { server } => (ChaosKind::ServerRejoin, server, false),
            FaultKind::NicDegrade { host, .. } => (ChaosKind::NicDegrade, host, true),
            FaultKind::NicRestore { host } => (ChaosKind::NicRestore, host, false),
            FaultKind::SwapSlow { host, .. } => (ChaosKind::SwapSlow, host, true),
            FaultKind::SwapRestore { host } => (ChaosKind::SwapRestore, host, false),
            FaultKind::MigrationConnDrop { mig } => (ChaosKind::MigConnDrop, mig, true),
        };
        sim.state_mut().trace.record(
            now,
            agile_trace::TraceEvent::ChaosFault {
                kind: tk,
                target,
                start,
            },
        );
    }
    match kind {
        FaultKind::ServerCrash { server } => server_crash(sim, server as usize),
        FaultKind::ServerRejoin { server } => server_rejoin(sim, server as usize),
        FaultKind::NicDegrade { host, bw_permille } => {
            nic_set(sim, host as usize, bw_permille);
        }
        FaultKind::NicRestore { host } => nic_set(sim, host as usize, 1000),
        FaultKind::SwapSlow { host, extra_us } => {
            swap_latency(sim, host as usize, SimDuration::from_micros(extra_us));
        }
        FaultKind::SwapRestore { host } => swap_latency(sim, host as usize, SimDuration::ZERO),
        FaultKind::MigrationConnDrop { mig } => {
            sim.state_mut().chaos.conn_drops += 1;
            migrate::drop_connections(sim, mig as usize);
        }
    }
}

/// Crash a VMD server: its store is wiped, it stops answering, and the
/// failure detector is armed.
fn server_crash(sim: &mut Simulation<World>, server: usize) {
    let now = sim.now();
    let detect_delay = sim.state().cfg.vmd_detect_delay;
    let record = {
        let w = sim.state_mut();
        if server >= w.vmd.servers.len() || !w.vmd.servers[server].alive {
            return; // no such server, or already down
        }
        let entry = &mut w.vmd.servers[server];
        let pages_wiped = entry.server.crash_reset();
        entry.alive = false;
        w.chaos.crashes.push(CrashRecord {
            server,
            at: now,
            pages_wiped,
            ..CrashRecord::default()
        });
        w.chaos.crashes.len() - 1
    };
    sim.schedule_in(detect_delay, move |sim| detect_crash(sim, record));
}

/// The failure detector fired: clients mark the server suspect and fail
/// over, the directory evicts it, and re-replication is queued.
fn detect_crash(sim: &mut Simulation<World>, record: usize) {
    let now = sim.now();
    let server = sim.state().chaos.crashes[record].server;
    let sid = ServerId(server as u32);
    // Every client fails its in-flight requests over to live replicas.
    let n_clients = sim.state().vmd.clients.len();
    for c in 0..n_clients {
        let completions = {
            let w = sim.state_mut();
            let dir = std::rc::Rc::clone(&w.vmd.directory);
            let mut dir = dir.borrow_mut();
            let mut client = w.vmd.clients[c].client.borrow_mut();
            client.mark_suspect(&mut dir, sid)
        };
        for completion in completions {
            vmdio::handle_completion(sim, c, completion);
        }
    }
    // The directory drops the dead server from every placement.
    let evicted = {
        let w = sim.state_mut();
        let dir = std::rc::Rc::clone(&w.vmd.directory);
        let evicted = dir.borrow_mut().evict_server(sid);
        let rec = &mut w.chaos.crashes[record];
        rec.detected_at = Some(now);
        rec.slots_evicted = evicted.len() as u64;
        evicted
    };
    let replication = sim
        .state()
        .vmd
        .clients
        .iter()
        .map(|c| c.client.borrow().replication())
        .max()
        .unwrap_or(1);
    let mut lost = 0u64;
    let mut queued = 0u64;
    {
        let w = sim.state_mut();
        for (ns, slot, survivors) in evicted {
            if survivors.is_empty() {
                lost += 1;
            } else if replication > 1 {
                w.chaos.repair_queue.push_back((ns, slot));
                queued += 1;
            }
        }
        let rec = &mut w.chaos.crashes[record];
        rec.slots_lost = lost;
        rec.slots_queued_for_repair = queued;
        if queued == 0 {
            rec.repaired_at = Some(now);
        }
    }
    guest::flush_all_clients(sim);
    arm_repair(sim);
}

/// A crashed server rejoins, empty. Gossip (which skips dead servers)
/// resumes naturally and clears the suspect marks at the clients.
fn server_rejoin(sim: &mut Simulation<World>, server: usize) {
    let now = sim.now();
    let w = sim.state_mut();
    if server >= w.vmd.servers.len() || w.vmd.servers[server].alive {
        return;
    }
    w.vmd.servers[server].alive = true;
    if let Some(rec) = w
        .chaos
        .crashes
        .iter_mut()
        .rev()
        .find(|c| c.server == server && c.rejoined_at.is_none())
    {
        rec.rejoined_at = Some(now);
    }
}

/// Scale a host's NIC to `permille`/1000 of nominal (0 = partition).
fn nic_set(sim: &mut Simulation<World>, host: usize, permille: u32) {
    let now = sim.now();
    let w = sim.state_mut();
    if host >= w.hosts.len() {
        return;
    }
    let bw = Bandwidth::bytes_per_sec(
        w.cfg.link_bw.as_bytes_per_sec() * f64::from(permille.min(1000)) / 1000.0,
    );
    let node = w.hosts[host].node;
    w.net.set_node_bw(now, node, bw, bw);
    touch_net(sim);
}

/// Inject (or clear) per-command latency on a host's swap SSD.
fn swap_latency(sim: &mut Simulation<World>, host: usize, extra: SimDuration) {
    let w = sim.state_mut();
    if let Some(ssd) = w.hosts.get(host).and_then(|h| h.ssd.as_ref()) {
        ssd.borrow_mut().set_extra_latency(extra);
    }
}

/// Arm the paced repair pump if work is queued and it is not running.
pub(crate) fn arm_repair(sim: &mut Simulation<World>) {
    let w = sim.state_mut();
    if w.chaos.repair_armed || w.chaos.repair_queue.is_empty() {
        return;
    }
    w.chaos.repair_armed = true;
    sim.schedule_fast_in(
        REPAIR_TICK,
        FastEvent::Timer {
            kind: crate::fast::K_REPAIR_PUMP,
            a: 0,
            b: 0,
        },
    );
}

/// One repair tick: re-replicate up to [`REPAIR_SLOTS_PER_TICK`] slots.
pub(crate) fn repair_tick(sim: &mut Simulation<World>) {
    sim.state_mut().chaos.repair_armed = false;
    let mut issued = false;
    for _ in 0..REPAIR_SLOTS_PER_TICK {
        let Some((ns, slot)) = sim.state_mut().chaos.repair_queue.pop_front() else {
            break;
        };
        let client_idx = repair_client_for(sim.state(), ns);
        let begun = {
            let w = sim.state_mut();
            let dir = std::rc::Rc::clone(&w.vmd.directory);
            let dir = dir.borrow();
            let mut client = w.vmd.clients[client_idx].client.borrow_mut();
            client.begin_repair(&dir, ns, slot)
        };
        if begun {
            issued = true;
            sim.state_mut().chaos.slots_repaired += 1;
        }
    }
    if issued {
        guest::flush_all_clients(sim);
    }
    let drained = sim.state().chaos.repair_queue.is_empty();
    if drained {
        let now = sim.now();
        let w = sim.state_mut();
        for rec in w.chaos.crashes.iter_mut() {
            if rec.detected_at.is_some() && rec.repaired_at.is_none() {
                rec.repaired_at = Some(now);
            }
        }
    } else {
        arm_repair(sim);
    }
}

/// The client that should drive repairs for a namespace: the one on the
/// host of the VM bound to it (falling back to client 0).
fn repair_client_for(w: &World, ns: NamespaceId) -> usize {
    for slot in &w.vms {
        if slot.swap.namespace() == Some(ns) {
            if let Some(&c) = w.vmd.host_client.get(&slot.host) {
                return c;
            }
        }
    }
    0
}
