//! Guest execution engine.
//!
//! Plays workload [`OpSpec`]s against a VM: requests travel from the
//! external client host over the network, queue for the guest's server
//! workers (Redis: one; MySQL: several), touch pages — blocking on major
//! faults whose latency comes from the swap device and its queue — then
//! burn guest CPU under vCPU contention and send the response back. The
//! throughput the paper plots *emerges* from these mechanics; nothing here
//! computes a rate directly.
//!
//! During post-copy/Agile migration the destination routes faults through
//! the [`agile_migration::DestSession`] (the UMEM path): pages dirtied at
//! the source are demand-requested over the network; cold pages are read
//! from the per-VM swap device; unknown pages zero-fill locally.

use agile_memory::{SwapIssue, Touch};
use agile_sim_core::{FastEvent, SimDuration, Simulation};
use agile_trace::{FaultPath, TraceEvent};
use agile_vm::VmState;
use agile_workload::OpSpec;

use crate::netdrv::touch_net;
use crate::world::{FaultEntry, NetPayload, OpExec, SwapDev, SwapReqCtx, World};
use crate::{migrate, vmdio};

/// Where to charge eviction write-backs.
#[derive(Clone, Copy, Debug)]
pub enum EvictTarget {
    /// The VM's current swap device.
    Vm(usize),
    /// The arriving VM image at the destination of migration `mig`.
    MigDest(usize),
    /// The retained source image of migration `mig`.
    MigSource(usize),
}

/// Issue the write-backs for a batch of evictions. Slot-consecutive
/// writes to a local SSD coalesce into streaming runs (the kernel's
/// swap-out clustering); VMD writes travel as per-page protocol messages.
pub fn charge_evictions(
    sim: &mut Simulation<World>,
    target: EvictTarget,
    evictions: &[agile_memory::Eviction],
) {
    if evictions.is_empty() {
        return;
    }
    let now = sim.now();
    let mut any_vmd = false;
    {
        let World {
            vms,
            migrations,
            swap_reqs,
            next_req,
            ..
        } = sim.state_mut();
        let dev: &mut SwapDev = match target {
            EvictTarget::Vm(v) => &mut vms[v].swap,
            EvictTarget::MigDest(m) => migrations[m].dest_swap.as_mut().expect("dest swap"),
            EvictTarget::MigSource(m) => migrations[m].source_swap.as_mut().expect("source swap"),
        };
        match dev {
            SwapDev::Ssd(ssd) => {
                // Content is not tracked on the SSD; only device time and
                // counters matter. The backend clusters the asynchronous
                // swap-out writes.
                use agile_memory::SwapBackend as _;
                for ev in evictions.iter().filter(|e| e.needs_write) {
                    let _ = ssd.write(now, ev.slot, 0, u64::MAX);
                }
            }
            SwapDev::Vmd(_) => {
                // Versions must reach the VMD store; read them from the
                // image the pages left.
                for ev in evictions {
                    if !ev.needs_write {
                        continue;
                    }
                    let version = match target {
                        EvictTarget::Vm(v) => vms[v].vm.memory().version(ev.pfn),
                        EvictTarget::MigDest(m) => migrations[m]
                            .dest_mem
                            .as_ref()
                            .expect("dest image")
                            .version(ev.pfn),
                        EvictTarget::MigSource(m) => migrations[m]
                            .source_mem
                            .as_ref()
                            .expect("source image")
                            .version(ev.pfn),
                    };
                    let dev: &mut SwapDev = match target {
                        EvictTarget::Vm(v) => &mut vms[v].swap,
                        EvictTarget::MigDest(m) => {
                            migrations[m].dest_swap.as_mut().expect("dest swap")
                        }
                        EvictTarget::MigSource(m) => {
                            migrations[m].source_swap.as_mut().expect("source swap")
                        }
                    };
                    let req = *next_req;
                    *next_req += 1;
                    swap_reqs.insert(req, SwapReqCtx::EvictionWrite);
                    match dev.backend().write(now, ev.slot, version, req) {
                        SwapIssue::CompleteAt(_) => {
                            swap_reqs.remove(&req);
                        }
                        SwapIssue::Pending => any_vmd = true,
                    }
                }
            }
        }
    }
    if any_vmd {
        // Swap-out admission control: above the pool's high water mark the
        // flush is delayed, so eviction bursts drain into the pool at a
        // pace reclaim can keep up with instead of forcing NAKs.
        match crate::poolctl::throttle_delay(sim.state()) {
            None => flush_all_clients(sim),
            Some(delay) => {
                if let Some(p) = sim.state_mut().pool.as_mut() {
                    p.counters.throttled_flushes += 1;
                }
                sim.schedule_in(delay, flush_all_clients);
            }
        }
    }
}

/// Drain every VMD client outbox (cheap; ≤ a handful of clients).
pub fn flush_all_clients(sim: &mut Simulation<World>) {
    for c in 0..sim.state().vmd.clients.len() {
        vmdio::flush_client(sim, c);
    }
}

/// Open (or re-open, after migration) the client↔VM channels.
pub fn attach_client_channels(sim: &mut Simulation<World>, vm_idx: usize) {
    let w = sim.state_mut();
    let exec_host = w.vms[vm_idx].host;
    let Some(client) = w.vms[vm_idx].client.as_ref() else {
        return;
    };
    let client_node = w.hosts[client.host].node;
    let vm_node = w.hosts[exec_host].node;
    let to_vm = w.net.open_channel(client_node, vm_node);
    let from_vm = w.net.open_channel(vm_node, client_node);
    let c = w.vms[vm_idx].client.as_mut().expect("checked");
    c.to_vm = to_vm;
    c.from_vm = from_vm;
}

/// Kick off a VM's closed-loop client threads at `at`.
pub fn start_client(sim: &mut Simulation<World>, vm_idx: usize, at: agile_sim_core::SimTime) {
    let threads = sim.state().vms[vm_idx]
        .client
        .as_ref()
        .map(|c| c.threads)
        .unwrap_or(0);
    for t in 0..threads {
        // Tiny stagger so threads don't tick in lockstep.
        let start = at + SimDuration::from_micros(137 * t as u64);
        sim.schedule_fast(
            start,
            FastEvent::Timer {
                kind: crate::fast::K_CLIENT_SEND,
                a: vm_idx as u64,
                b: 0,
            },
        );
    }
}

/// One client thread sends its next request.
pub fn client_send_next(sim: &mut Simulation<World>, vm_idx: usize) {
    let now = sim.now();
    let w = sim.state_mut();
    let slot = &mut w.vms[vm_idx];
    let (Some(client), Some(workload)) = (slot.client.as_mut(), slot.workload.as_mut()) else {
        return;
    };
    let (op, counts) = workload.next_op(&mut client.rng);
    let ch = client.to_vm;
    let bytes = op.request_bytes;
    let tag = w.tag(NetPayload::Request {
        vm: vm_idx,
        op,
        counts,
    });
    w.net.send(now, ch, bytes, tag);
    touch_net(sim);
}

/// A request arrived at the VM's (current or former) execution host.
pub fn on_request(sim: &mut Simulation<World>, vm_idx: usize, op: OpSpec, counts: bool) {
    let w = sim.state_mut();
    let exec = OpExec {
        gen: 0,
        vm: vm_idx,
        touches: op.touches,
        idx: 0,
        cpu: op.cpu,
        response_bytes: op.response_bytes,
        counts,
        respond: true,
    };
    let id = w.alloc_op(exec);
    if !w.vms[vm_idx].vm.state().can_execute() {
        // Connection limbo across the downtime window: the request waits
        // and is replayed when the VM resumes at the destination.
        w.vms[vm_idx].limbo.push(id);
        return;
    }
    w.vms[vm_idx].server_queue.push_back(id);
    try_dispatch(sim, vm_idx);
}

/// Dispatch queued requests onto free server workers.
pub fn try_dispatch(sim: &mut Simulation<World>, vm_idx: usize) {
    loop {
        let dispatched = {
            let w = sim.state_mut();
            let slot = &mut w.vms[vm_idx];
            if !slot.vm.state().can_execute() {
                return;
            }
            let conc = slot
                .workload
                .as_ref()
                .map(|wk| wk.server_concurrency())
                .unwrap_or(1);
            if slot.server_active >= conc {
                return;
            }
            match slot.server_queue.pop_front() {
                Some(id) => {
                    slot.server_active += 1;
                    let gen = w.ops[id].as_ref().expect("queued op").gen;
                    Some((id, gen))
                }
                None => None,
            }
        };
        match dispatched {
            Some((id, gen)) => step_op(sim, id, gen),
            None => return,
        }
    }
}

/// Advance one operation: touch pages (parking on faults) then burn CPU.
pub fn step_op(sim: &mut Simulation<World>, id: usize, gen: u32) {
    loop {
        let (vm_idx, touch) = {
            let w = sim.state();
            let Some(op) = w.ops[id].as_ref() else { return };
            if op.gen != gen {
                return; // superseded by a suspension
            }
            let t = (op.idx < op.touches.len()).then(|| op.touches.get(op.idx));
            (op.vm, t)
        };
        let Some((pfn, write)) = touch else {
            begin_cpu(sim, id, gen);
            return;
        };

        // Destination-side fault routing while a migration is live.
        let mig_route = {
            let w = sim.state();
            let slot = &w.vms[vm_idx];
            match slot.migration {
                Some(m)
                    if !w.migrations[m].finished
                        && w.migrations[m].dst.resumed()
                        && matches!(slot.vm.state(), VmState::PostCopy { .. }) =>
                {
                    Some((m, w.migrations[m].dst.classify_fault(pfn)))
                }
                _ => None,
            }
        };
        if let Some((m, route)) = mig_route {
            use agile_migration::FaultRoute;
            if sim.state().trace.is_enabled() {
                let now = sim.now();
                let path = match route {
                    FaultRoute::AlreadyHere => FaultPath::AlreadyHere,
                    FaultRoute::FromSource => FaultPath::FromSource,
                    FaultRoute::FromSwap { .. } => FaultPath::FromSwap,
                    FaultRoute::ZeroFill => FaultPath::ZeroFill,
                };
                sim.state_mut().trace.record(
                    now,
                    TraceEvent::FaultRouted {
                        vm: vm_idx as u32,
                        pfn,
                        path,
                    },
                );
            }
            match route {
                FaultRoute::FromSource => {
                    if !sim.state().migrations[m].conn_down {
                        park_and_request_from_source(sim, vm_idx, m, pfn, id);
                        return;
                    }
                    // The source is unreachable (post-resume connection
                    // drop). If the page sits in the portable swap
                    // namespace a normal major fault pulls it from the
                    // surviving VMD replicas; otherwise its content is
                    // gone — zero-fill and report the loss.
                    let swapped = sim.state().vms[vm_idx]
                        .vm
                        .memory()
                        .page_flags(pfn)
                        .swapped();
                    if !swapped {
                        let mut buf = std::mem::take(&mut sim.state_mut().evict_buf);
                        buf.clear();
                        {
                            let w = sim.state_mut();
                            let (vms, migs) = (&mut w.vms, &mut w.migrations);
                            migs[m].dst.install_zero_fill(
                                pfn,
                                vms[vm_idx].vm.memory_mut(),
                                &mut buf,
                            );
                            migs[m].pages_lost_on_conn_drop += 1;
                        }
                        charge_evictions(sim, EvictTarget::Vm(vm_idx), &buf);
                        buf.clear();
                        sim.state_mut().evict_buf = buf;
                        continue; // now present → Hit
                    }
                    // swapped: fall through to the normal touch — the
                    // major fault reads from the surviving replicas.
                }
                FaultRoute::ZeroFill => {
                    let mut buf = std::mem::take(&mut sim.state_mut().evict_buf);
                    buf.clear();
                    {
                        let w = sim.state_mut();
                        let (vms, migs) = (&mut w.vms, &mut w.migrations);
                        migs[m]
                            .dst
                            .install_zero_fill(pfn, vms[vm_idx].vm.memory_mut(), &mut buf);
                    }
                    charge_evictions(sim, EvictTarget::Vm(vm_idx), &buf);
                    buf.clear();
                    sim.state_mut().evict_buf = buf;
                    continue; // now present → Hit
                }
                FaultRoute::AlreadyHere | FaultRoute::FromSwap { .. } => {
                    // Fall through: the page table agrees (present, or
                    // swapped → normal major fault on the per-VM device).
                }
            }
        }

        let result = sim.state_mut().vms[vm_idx]
            .vm
            .memory_mut()
            .touch(pfn, write);
        match result {
            Touch::Hit => {
                if let Some(op) = sim.state_mut().ops[id].as_mut() {
                    op.idx += 1;
                }
            }
            Touch::MinorFault => {
                let minor_cost = sim.state().cfg.minor_fault_cost;
                let mut buf = std::mem::take(&mut sim.state_mut().evict_buf);
                buf.clear();
                sim.state_mut().vms[vm_idx]
                    .vm
                    .memory_mut()
                    .fault_in(pfn, write, &mut buf);
                charge_evictions(sim, EvictTarget::Vm(vm_idx), &buf);
                buf.clear();
                sim.state_mut().evict_buf = buf;
                if let Some(op) = sim.state_mut().ops[id].as_mut() {
                    op.idx += 1;
                    op.cpu += minor_cost;
                }
            }
            Touch::MajorFault { slot } => {
                issue_major_fault(sim, vm_idx, pfn, slot, id);
                return;
            }
            Touch::InFlight => {
                park(sim, vm_idx, pfn, id);
                return;
            }
        }
    }
}

/// Park an op on an already-issued fault.
fn park(sim: &mut Simulation<World>, vm_idx: usize, pfn: u32, op_id: usize) {
    let w = sim.state_mut();
    let entry = w.vms[vm_idx]
        .pending_faults
        .entry(pfn)
        .or_insert_with(|| FaultEntry {
            waiters: Vec::new(),
            issued: true, // IO_INFLIGHT implies someone issued it
        });
    entry.waiters.push(op_id);
}

/// Park an op and (once) send a demand-page request to the source.
fn park_and_request_from_source(
    sim: &mut Simulation<World>,
    vm_idx: usize,
    mig: usize,
    pfn: u32,
    op_id: usize,
) {
    let now = sim.now();
    let need_send = {
        let w = sim.state_mut();
        let entry = w.vms[vm_idx]
            .pending_faults
            .entry(pfn)
            .or_insert_with(|| FaultEntry {
                waiters: Vec::new(),
                issued: false,
            });
        entry.waiters.push(op_id);
        if entry.issued {
            false
        } else {
            entry.issued = true;
            true
        }
    };
    if need_send {
        let w = sim.state_mut();
        let ch = w.migrations[mig].req_ch;
        let tag = w.tag(NetPayload::DemandReq { mig, pfn });
        w.net.send(now, ch, 64, tag);
        touch_net(sim);
    }
}

/// Issue the swap read for a major fault.
fn issue_major_fault(
    sim: &mut Simulation<World>,
    vm_idx: usize,
    pfn: u32,
    slot: u32,
    op_id: usize,
) {
    let now = sim.now();
    let need_issue = {
        let w = sim.state_mut();
        let entry = w.vms[vm_idx]
            .pending_faults
            .entry(pfn)
            .or_insert_with(|| FaultEntry {
                waiters: Vec::new(),
                issued: false,
            });
        entry.waiters.push(op_id);
        if entry.issued {
            false
        } else {
            entry.issued = true;
            true
        }
    };
    if !need_issue {
        return;
    }
    let (issue, req) = {
        let World {
            cfg,
            vms,
            swap_reqs,
            next_req,
            ..
        } = sim.state_mut();
        vms[vm_idx].vm.memory_mut().begin_swap_in(pfn);
        let epoch = vms[vm_idx].mem_epoch;
        let dest_stat =
            matches!(vms[vm_idx].vm.state(), VmState::PostCopy { .. }) && vms[vm_idx].swap.is_vmd();
        let req = *next_req;
        *next_req += 1;
        swap_reqs.insert(
            req,
            SwapReqCtx::GuestFault {
                vm: vm_idx,
                pfn,
                epoch,
                dest_stat,
                issued: now,
            },
        );
        let readahead = if vms[vm_idx].swap.is_vmd() {
            1
        } else {
            cfg.guest_readahead_pages.max(1)
        };
        let issue = vms[vm_idx].swap.backend().read(now, slot, req);
        // Linux swap readahead: speculative neighbour reads burn device
        // time; under random access they install nothing useful.
        for _ in 1..readahead {
            let _ = vms[vm_idx].swap.backend().read(now, slot, u64::MAX);
        }
        (issue, req)
    };
    match issue {
        SwapIssue::CompleteAt(t) => {
            sim.schedule_fast(t, FastEvent::DeviceOp { req });
        }
        SwapIssue::Pending => flush_all_clients(sim),
    }
}

/// A page read for a guest fault completed.
pub fn complete_guest_fault(
    sim: &mut Simulation<World>,
    vm_idx: usize,
    pfn: u32,
    epoch: u32,
    dest_stat: bool,
) {
    let current_epoch = sim.state().vms[vm_idx].mem_epoch;
    if epoch != current_epoch {
        // The VM's memory image changed hands (resume happened) while this
        // I/O was in flight: apply it to the retained source image so the
        // push phase sees the page resident.
        let mut buf = std::mem::take(&mut sim.state_mut().evict_buf);
        buf.clear();
        let applied = {
            let w = sim.state_mut();
            let Some(m) = w.vms[vm_idx].migration else {
                return;
            };
            match w.migrations[m].source_mem.as_mut() {
                Some(mem) if mem.pagemap(pfn).is_swapped() => {
                    mem.fault_in(pfn, false, &mut buf);
                    Some(m)
                }
                _ => None,
            }
        };
        if let Some(m) = applied {
            charge_evictions(sim, EvictTarget::MigSource(m), &buf);
        }
        buf.clear();
        sim.state_mut().evict_buf = buf;
        credit_piggybacks(sim, vm_idx, pfn);
        return;
    }
    let mut buf = std::mem::take(&mut sim.state_mut().evict_buf);
    buf.clear();
    {
        let w = sim.state_mut();
        w.vms[vm_idx].vm.memory_mut().fault_in(pfn, false, &mut buf);
        if dest_stat {
            if let Some(m) = w.vms[vm_idx].migration {
                w.migrations[m].dst.pages_faulted_from_swap += 1;
            }
        }
    }
    charge_evictions(sim, EvictTarget::Vm(vm_idx), &buf);
    buf.clear();
    sim.state_mut().evict_buf = buf;
    credit_piggybacks(sim, vm_idx, pfn);
    wake_page(sim, vm_idx, pfn);
}

/// Credit migration swap-in batches that piggybacked on this page read.
pub(crate) fn credit_piggybacks(sim: &mut Simulation<World>, vm_idx: usize, pfn: u32) {
    let riders = sim.state_mut().swapin_piggyback.remove(&(vm_idx, pfn));
    if let Some(riders) = riders {
        for (mig, batch) in riders {
            migrate::credit_swapin(sim, mig, batch);
        }
    }
}

/// Wake every op parked on `pfn` (the page is resident now).
pub fn wake_page(sim: &mut Simulation<World>, vm_idx: usize, pfn: u32) {
    let now = sim.now();
    let waiters = {
        let w = sim.state_mut();
        match w.vms[vm_idx].pending_faults.remove(&pfn) {
            Some(e) => e.waiters,
            None => return,
        }
    };
    for id in waiters {
        let gen = match sim.state().ops[id].as_ref() {
            Some(op) => op.gen,
            None => continue,
        };
        sim.schedule_fast(
            now,
            FastEvent::Timer {
                kind: crate::fast::K_STEP_OP,
                a: id as u64,
                b: gen as u64,
            },
        );
    }
}

/// Touches done: burn guest CPU under vCPU contention.
fn begin_cpu(sim: &mut Simulation<World>, id: usize, gen: u32) {
    let (vm_idx, cpu) = {
        let w = sim.state();
        let op = w.ops[id].as_ref().expect("live op");
        (op.vm, op.cpu)
    };
    let dur = sim.state_mut().vms[vm_idx].vm.vcpus_mut().begin(cpu);
    sim.schedule_fast_in(
        dur,
        FastEvent::Timer {
            kind: crate::fast::K_FINISH_OP,
            a: id as u64,
            b: gen as u64,
        },
    );
}

/// CPU burst retired: respond (or, for guest-internal work, just finish).
pub(crate) fn finish_op(sim: &mut Simulation<World>, id: usize, gen: u32) {
    let now = sim.now();
    let info = {
        let w = sim.state();
        match w.ops[id].as_ref() {
            Some(op) if op.gen == gen => Some((op.vm, op.respond, op.counts, op.response_bytes)),
            _ => None,
        }
    };
    let Some((vm_idx, respond, counts, response_bytes)) = info else {
        return; // superseded by a suspension; vCPU state was reset there
    };
    sim.state_mut().vms[vm_idx].vm.vcpus_mut().finish();
    if respond {
        {
            let w = sim.state_mut();
            let slot = &mut w.vms[vm_idx];
            slot.server_active = slot.server_active.saturating_sub(1);
            if let Some(client) = slot.client.as_ref() {
                let ch = client.from_vm;
                let tag = w.tag(NetPayload::Response { vm: vm_idx, counts });
                w.net.send(now, ch, response_bytes, tag);
            }
            w.free_op(id);
        }
        touch_net(sim);
        try_dispatch(sim, vm_idx);
    } else {
        // Guest-internal work (OS background); the next burst was already
        // scheduled when this one fired.
        sim.state_mut().free_op(id);
    }
}

/// A response reached the client: tick the meter, send the next request
/// (inline when think time is zero — the legacy loop — or after the
/// client's think delay when the workload driver has set one).
pub fn on_response(sim: &mut Simulation<World>, vm_idx: usize, counts: bool) {
    let now = sim.now();
    if counts {
        sim.state_mut().vms[vm_idx].meter.record(now, 1);
    }
    let think_ns = sim.state().vms[vm_idx]
        .client
        .as_ref()
        .map_or(0, |c| c.think_ns);
    if think_ns == 0 {
        client_send_next(sim, vm_idx);
    } else {
        sim.schedule_fast_in(
            SimDuration::from_nanos(think_ns),
            FastEvent::Timer {
                kind: crate::fast::K_CLIENT_SEND,
                a: vm_idx as u64,
                b: 0,
            },
        );
    }
}

// --------------------- suspension / resumption ---------------------

/// Suspend the guest: abandon in-flight work (it replays at the
/// destination), clear the server, and silence the OS background chain.
pub fn suspend_guest(sim: &mut Simulation<World>, vm_idx: usize) {
    let w = sim.state_mut();
    let mut client_ops: Vec<usize> = Vec::new();
    let mut bg_ops: Vec<usize> = Vec::new();
    for (i, op) in w.ops.iter().enumerate() {
        if let Some(o) = op {
            if o.vm == vm_idx {
                if o.respond {
                    client_ops.push(i);
                } else {
                    bg_ops.push(i);
                }
            }
        }
    }
    for &i in &client_ops {
        w.bump_op_gen(i);
        w.ops[i].as_mut().expect("live op").idx = 0;
    }
    for &i in &bg_ops {
        w.free_op(i);
    }
    let slot = &mut w.vms[vm_idx];
    slot.server_queue.clear();
    slot.server_active = 0;
    slot.limbo = client_ops;
    for e in slot.pending_faults.values_mut() {
        e.waiters.clear();
    }
    slot.vm.vcpus_mut().reset();
    slot.os_bg_gen += 1;
}

/// Resume the guest at its (new) execution host: reconnect the client,
/// replay limbo requests, restart OS background activity.
pub fn resume_guest(sim: &mut Simulation<World>, vm_idx: usize) {
    let now = sim.now();
    attach_client_channels(sim, vm_idx);
    {
        let w = sim.state_mut();
        let slot = &mut w.vms[vm_idx];
        let ids = std::mem::take(&mut slot.limbo);
        slot.server_queue.extend(ids);
    }
    try_dispatch(sim, vm_idx);
    if sim.state().vms[vm_idx].os_bg.is_some() {
        start_os_bg(sim, vm_idx, now);
    }
}

// ------------------------- guest OS background -------------------------

/// Start the guest-OS background activity chain.
pub fn start_os_bg(sim: &mut Simulation<World>, vm_idx: usize, at: agile_sim_core::SimTime) {
    let bg_gen = sim.state().vms[vm_idx].os_bg_gen;
    sim.schedule_fast(at, os_bg_timer(vm_idx, bg_gen));
}

/// The OS-background chain's timer payload.
fn os_bg_timer(vm_idx: usize, bg_gen: u32) -> FastEvent {
    FastEvent::Timer {
        kind: crate::fast::K_OS_BG,
        a: vm_idx as u64,
        b: bg_gen as u64,
    }
}

pub(crate) fn os_bg_fire(sim: &mut Simulation<World>, vm_idx: usize, bg_gen: u32) {
    let burst = {
        let w = sim.state_mut();
        let slot = &mut w.vms[vm_idx];
        if slot.os_bg_gen != bg_gen {
            return; // superseded chain (suspension)
        }
        if !slot.vm.state().can_execute() {
            None
        } else {
            match slot.os_bg.clone() {
                Some(bg) => Some(bg.next_burst(&mut slot.os_rng)),
                None => return,
            }
        }
    };
    match burst {
        Some((op, gap)) => {
            // Schedule the next burst first (rate independent of this one).
            sim.schedule_fast_in(gap, os_bg_timer(vm_idx, bg_gen));
            let id = sim.state_mut().alloc_op(OpExec {
                gen: 0,
                vm: vm_idx,
                touches: op.touches,
                idx: 0,
                cpu: op.cpu,
                response_bytes: 0,
                counts: false,
                respond: false,
            });
            let gen = sim.state().ops[id].as_ref().expect("fresh op").gen;
            step_op(sim, id, gen);
        }
        None => {
            // Suspended: poll again shortly; resume restarts the chain
            // with a new generation anyway.
            sim.schedule_fast_in(SimDuration::from_millis(100), os_bg_timer(vm_idx, bg_gen));
        }
    }
}
