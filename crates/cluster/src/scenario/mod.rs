//! Ready-made reproductions of the paper's experiments.
//!
//! | module | paper content |
//! |--------|---------------|
//! | [`ycsb`] | §V-A Figures 4–6 (YCSB timeline under pre/post/Agile) and the YCSB rows of Tables I–III |
//! | [`sysbench`] | §V-C Sysbench/MySQL rows of Tables I–III |
//! | [`single_vm`] | §V-B Figures 7–8 (single-VM sweep: migration time & data vs VM size, idle & busy) |
//! | [`wss`] | §V-D Figures 9–10 (transparent WSS tracking) |
//!
//! Every scenario takes a config with the paper's numbers as defaults plus
//! a `scale` divisor: `scale = 1` is paper scale (10 GB VMs); integration
//! tests use `scale = 32`+ so they run in milliseconds. Scaling divides
//! every byte quantity, which preserves the *ratios* that drive the
//! qualitative results.

pub mod chaos;
pub mod datacenter;
pub mod diurnal;
pub mod estimators;
pub mod multihost;
pub mod pressure;
pub mod scaleout;
pub mod single_vm;
pub mod sysbench;
pub mod tiers;
pub mod wss;
pub mod ycsb;

use agile_sim_core::{SimTime, Simulation};
use agile_workload::Signal;

use crate::guest::{charge_evictions, EvictTarget};
use crate::world::{WorkloadKind, World};

/// Schedule piecewise-constant [`Signal`]s as discrete DES events.
///
/// Collects every change time of every binding's signal in
/// `[now, horizon)` and schedules exactly **one** closure per distinct
/// time; each firing applies every binding's value at that instant
/// through `apply`. This reproduces the event structure of the scenarios'
/// historical hand-written ramps exactly — same number of events, same
/// times, same values (see [`Signal::Ramp`] for the integer-exact step
/// arithmetic) — while the shapes themselves live in the signal DSL.
/// All-constant bindings schedule nothing.
///
/// Unlike the incremental scripted ramps this applies *absolute* values,
/// so a binding that skips a step (e.g. a VM mid-migration, filtered by
/// `apply`) lands on the correct value at the next change time instead
/// of staying permanently behind.
pub fn schedule_step_signals<K, F>(
    sim: &mut Simulation<World>,
    bindings: Vec<(K, Signal)>,
    horizon: SimTime,
    apply: F,
) where
    K: Copy + 'static,
    F: Fn(&mut Simulation<World>, K, f64) + Clone + 'static,
{
    let from = sim.now().as_nanos();
    let mut times: Vec<u64> = Vec::new();
    for (_, s) in &bindings {
        times.extend(s.change_times_ns(from, horizon.as_nanos()));
    }
    times.sort_unstable();
    times.dedup();
    let bindings = std::rc::Rc::new(bindings);
    for t in times {
        let bindings = std::rc::Rc::clone(&bindings);
        let apply = apply.clone();
        sim.schedule_at(SimTime::from_nanos(t), move |sim| {
            let now = sim.now();
            for &(k, ref s) in bindings.iter() {
                apply(sim, k, s.value_at(now));
            }
        });
    }
}

/// Change a VM's cgroup reservation at runtime (evictions are charged to
/// its swap device) and update the host ledger.
pub fn set_reservation(sim: &mut Simulation<World>, vm_idx: usize, bytes: u64) {
    let mut buf = std::mem::take(&mut sim.state_mut().evict_buf);
    buf.clear();
    {
        let w = sim.state_mut();
        let slot = &mut w.vms[vm_idx];
        slot.vm.memory_mut().set_limit_bytes(bytes, &mut buf);
        let host = slot.host;
        w.hosts[host].mem.set_reservation(vm_idx as u64, bytes);
    }
    charge_evictions(sim, EvictTarget::Vm(vm_idx), &buf);
    buf.clear();
    sim.state_mut().evict_buf = buf;
}

/// What a VM currently *needs* resident: its active working set plus
/// guest-OS overhead plus slack. Used by the scripted reservation
/// adjustments that stand in for the paper's "we manually adjust the VMs'
/// memory reservation to reflect its working set size".
pub fn desired_reservation(world: &World, vm_idx: usize, slack: u64) -> u64 {
    let slot = &world.vms[vm_idx];
    let os = slot.vm.config().guest_os_bytes;
    let page = world.cfg.page_size;
    let ws = match &slot.workload {
        Some(WorkloadKind::Ycsb(y)) => {
            let index_bytes = slot
                .vm
                .layout()
                .region("redis-index")
                .map(|r| r.len as u64 * page)
                .unwrap_or(0);
            y.active_bytes() + index_bytes
        }
        Some(WorkloadKind::Oltp(_)) => {
            // The OLTP buffer pool wants the whole dataset + index + log.
            slot.vm
                .layout()
                .regions()
                .map(|(_, r)| r.len as u64 * page)
                .sum()
        }
        None => 0,
    };
    (ws + os + slack).min(slot.vm.config().mem_bytes)
}

/// Water-fill the host's VM-available memory across the VMs running on it
/// according to their desired reservations: everyone gets
/// `min(desired, fair share)`, with leftover from modest VMs flowing to
/// hungry ones.
pub fn rebalance_host(sim: &mut Simulation<World>, host: usize, slack: u64) {
    let mut wants: Vec<(usize, u64)> = {
        let w = sim.state();
        (0..w.vms.len())
            .filter(|&v| {
                w.vms[v].host == host
                    && w.vms[v].vm.state().can_execute()
                    && w.vms[v].migration.is_none()
            })
            .map(|v| (v, desired_reservation(w, v, slack)))
            .collect()
    };
    if wants.is_empty() {
        return;
    }
    let avail = sim.state().hosts[host].mem.available_for_vms();
    // Water-filling: satisfy the smallest demands first.
    wants.sort_by_key(|&(_, d)| d);
    let mut remaining = avail;
    let mut grants: Vec<(usize, u64)> = Vec::with_capacity(wants.len());
    for (i, &(vm, desired)) in wants.iter().enumerate() {
        let left = wants.len() - i;
        let fair = remaining / left as u64;
        let grant = desired.min(fair);
        remaining -= grant;
        grants.push((vm, grant));
    }
    for (vm, grant) in grants {
        set_reservation(sim, vm, grant);
    }
}

/// Set a YCSB workload's active query window at runtime (the ramp knob of
/// Fig. 4–6).
pub fn set_ycsb_active_bytes(sim: &mut Simulation<World>, vm_idx: usize, bytes: u64) {
    if let Some(WorkloadKind::Ycsb(y)) = sim.state_mut().vms[vm_idx].workload.as_mut() {
        y.set_active_bytes(bytes);
    } else {
        panic!("VM {vm_idx} does not run YCSB");
    }
}
