//! Cluster-scale watermark rebalancing: N hosts × M VMs under the
//! [`crate::sched`] scheduler.
//!
//! The VMs start packed on the first half of the working hosts with
//! modest reservations; a scripted load ramp then raises every
//! reservation (the stand-in for growing working sets, as in the paper's
//! §IV-D experiments), pushing the packed hosts over their high
//! watermarks. The scheduler selects the fewest VMs per overloaded host
//! and places them on the empty hosts under the admission cap; the run
//! ends when every managed host sits at or below its high watermark with
//! nothing queued or in flight.
//!
//! The default sizing (4 hosts × 8 VMs, cap 2) exercises every scheduler
//! path deterministically: both packed hosts fire in the same tick, two
//! migrations start, two selections queue behind the cap and start as
//! slots free, and least-loaded placement spreads the four VMs across
//! both empty hosts — with zero ping-pong (no VM migrates twice).

use agile_migration::{SourceConfig, Technique};
use agile_sim_core::{SimDuration, SimTime, Simulation, GIB, MIB};
use agile_vm::VmConfig;
use agile_workload::Signal;
use agile_wss::WatermarkTrigger;

use crate::build::{ClusterBuilder, SwapKind};
use crate::config::ClusterConfig;
use crate::scenario::set_reservation;
use crate::sched::{self, ManagedHost, PlacementPolicy, SchedConfig, SchedCounters};
use crate::shard::{NullCoordinator, ShardedRun};
use crate::world::World;

/// One multihost rebalancing run.
#[derive(Clone, Debug)]
pub struct MultihostConfig {
    /// Working hosts under scheduler management (≥ 2).
    pub hosts: usize,
    /// VMs, packed contiguously onto the first `hosts / 2` hosts.
    pub vms: usize,
    /// Divide every byte quantity by this (1 = paper scale).
    pub scale: u64,
    /// Destination selection policy.
    pub policy: PlacementPolicy,
    /// Admission-control cap on concurrent migrations.
    pub max_in_flight: usize,
    /// Ping-pong guard margin (fraction of the low→high band).
    pub hysteresis: f64,
    /// Low watermark as a fraction of each host's VM-available memory.
    pub low_frac: f64,
    /// High watermark fraction.
    pub high_frac: f64,
    /// When the load ramp fires, in seconds.
    pub ramp_start_secs: u64,
    /// Ramp steps (1 = a single jump to the target reservation).
    pub ramp_steps: u32,
    /// Seconds between ramp steps.
    pub ramp_interval_secs: u64,
    /// Hard deadline for the run.
    pub deadline_secs: u64,
    /// Master seed.
    pub seed: u64,
    /// Enable the event tracer (scheduler decisions then appear as
    /// `sched_decision` lines in the JSONL export).
    pub trace: bool,
}

impl Default for MultihostConfig {
    fn default() -> Self {
        MultihostConfig {
            hosts: 4,
            vms: 8,
            scale: 1,
            policy: PlacementPolicy::LeastLoaded,
            max_in_flight: 2,
            hysteresis: 0.25,
            low_frac: 0.60,
            high_frac: 0.75,
            ramp_start_secs: 12,
            ramp_steps: 1,
            ramp_interval_secs: 10,
            deadline_secs: 600,
            seed: 42,
            trace: false,
        }
    }
}

/// One completed (or still-running) migration, for the report.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MigRecord {
    /// The migrated VM.
    pub vm: usize,
    /// Source host.
    pub src: usize,
    /// Destination host.
    pub dest: usize,
    /// When the migration started (ns).
    pub start_ns: u64,
    /// When it finalized (ns); `u64::MAX` if it never did.
    pub end_ns: u64,
    /// Bytes on the migration channels.
    pub bytes: u64,
    /// Whether it finalized before the deadline.
    pub finished: bool,
}

/// Everything a multihost run reports. With equal seeds two runs produce
/// byte-identical `report`, `trace_jsonl`, and `metrics_json` — the
/// golden test pins that down.
#[derive(Clone, Debug, PartialEq)]
pub struct MultihostResult {
    /// The deterministic rebalance report (watermarks, decisions,
    /// migrations, final per-host aggregates, counters).
    pub report: String,
    /// Every host at or below its high watermark, nothing queued or in
    /// flight, before the deadline.
    pub converged: bool,
    /// Per-migration records, in start order.
    pub migrations: Vec<MigRecord>,
    /// Final aggregate WSS per managed host.
    pub final_aggregates: Vec<u64>,
    /// High watermark per managed host.
    pub high_bytes: Vec<u64>,
    /// Most times any single VM migrated (1 = zero ping-pong).
    pub max_vm_migrations: u32,
    /// Scheduler counters.
    pub counters: SchedCounters,
    /// Metrics-registry JSON export.
    pub metrics_json: String,
    /// Total DES events executed (the golden-trace fingerprint).
    pub events_executed: u64,
    /// JSONL event trace (`Some` only when `cfg.trace` was set).
    pub trace_jsonl: Option<String>,
}

/// A built, armed, ramped multihost world, ready to be driven — either
/// sequentially ([`run`]) or as one shard of a replicated sharded run
/// ([`run_replicated`]). Both drivers advance the world through the same
/// 5-second `run_until` targets, so they produce byte-identical results.
struct MultihostSetup {
    sim: Simulation<World>,
    managed: Vec<ManagedHost>,
    ramp_end: SimTime,
    deadline: SimTime,
}

/// The convergence predicate, evaluated at every 5-second boundary:
/// rebalanced and quiescent after the ramp, or out of time.
fn converged_now(
    sim: &Simulation<World>,
    managed: &[ManagedHost],
    ramp_end: SimTime,
    deadline: SimTime,
) -> bool {
    let w = sim.state();
    let s = w.sched.as_ref().expect("scheduler armed");
    let below = managed
        .iter()
        .all(|mh| sched::host_aggregate(w, mh.host) <= mh.trigger.high_bytes);
    let quiescent =
        s.queue.is_empty() && s.inflight.is_empty() && w.migrations.iter().all(|m| m.finished);
    (sim.now() > ramp_end && below && quiescent) || sim.now() >= deadline
}

/// Run one multihost rebalancing scenario.
pub fn run(cfg: &MultihostConfig) -> MultihostResult {
    let MultihostSetup {
        mut sim,
        managed,
        ramp_end,
        deadline,
    } = setup(cfg);
    // Run in slices until the cluster is rebalanced and quiescent.
    loop {
        let next = sim.now() + SimDuration::from_secs(5);
        sim.run_until(next.min(deadline));
        if converged_now(&sim, &managed, ramp_end, deadline) {
            break;
        }
    }
    finish(sim, cfg, &managed, deadline)
}

/// Run several independent multihost scenarios as shards of one parallel
/// epoch harness (lookahead = the sequential driver's 5-second slice, so
/// the `run_until` targets coincide). Every replica's result is
/// byte-identical to [`run`] of its config at any `workers` count — the
/// equivalence tests pin this.
pub fn run_replicated(cfgs: &[MultihostConfig], workers: usize) -> Vec<MultihostResult> {
    assert!(!cfgs.is_empty());
    assert!(
        cfgs.iter()
            .all(|c| c.deadline_secs == cfgs[0].deadline_secs),
        "replicated runs share one deadline (epoch targets must coincide)"
    );
    let mut meta = Vec::with_capacity(cfgs.len());
    let mut worlds = Vec::with_capacity(cfgs.len());
    for cfg in cfgs {
        let s = setup(cfg);
        meta.push((s.managed, s.ramp_end, s.deadline));
        worlds.push(s.sim);
    }
    let deadline = meta[0].2;
    let mut sharded = ShardedRun::new(worlds, SimDuration::from_secs(5));
    sharded.run(workers, deadline, &mut NullCoordinator, |i, sim| {
        let (managed, ramp_end, dl) = &meta[i];
        converged_now(sim, managed, *ramp_end, *dl)
    });
    sharded
        .into_worlds()
        .into_iter()
        .zip(cfgs)
        .zip(&meta)
        .map(|((sim, cfg), (managed, _, dl))| finish(sim, cfg, managed, *dl))
        .collect()
}

/// Build the world: hosts, VMD pool, packed VMs, scheduler, load ramp.
fn setup(cfg: &MultihostConfig) -> MultihostSetup {
    assert!(cfg.hosts >= 2, "need at least two working hosts");
    assert!(cfg.vms >= 1);
    let sc = cfg.scale.max(1);
    let host_mem = 24 * GIB / sc;
    let host_os = 300 * MIB / sc;
    let vm_mem = 8 * GIB / sc;
    let guest_os = 300 * MIB / sc;
    let resv_start = 2 * GIB / sc;
    let resv_target = 5632 * MIB / sc; // 5.5 GiB: 4 ramped VMs overflow a host

    let cluster_cfg = ClusterConfig {
        seed: cfg.seed,
        ..ClusterConfig::default()
    };
    let page = cluster_cfg.page_size;
    let mut b = ClusterBuilder::new(cluster_cfg);

    let working: Vec<usize> = (0..cfg.hosts)
        .map(|i| b.add_host(&format!("host{i}"), host_mem, host_os, false))
        .collect();
    // Intermediate hosts whose spare memory backs the VMD pool (large
    // enough for every VM's cold spill plus destination-side evictions).
    for i in 0..2 {
        let im = b.add_host(&format!("intermediate{i}"), 48 * GIB / sc, host_os, false);
        b.add_vmd_server(im, 40 * GIB / sc, 0);
    }
    // Every working host can bind portable namespaces (placement
    // feasibility requires the destination to run a VMD client).
    for &h in &working {
        b.ensure_vmd_client(h);
    }

    // Pack the VMs contiguously onto the first half of the working hosts.
    let packed = (cfg.hosts / 2).max(1);
    let per_host = cfg.vms.div_ceil(packed);
    let vms: Vec<usize> = (0..cfg.vms)
        .map(|i| {
            let host = working[(i / per_host).min(packed - 1)];
            let vm = b.add_vm(
                host,
                VmConfig {
                    mem_bytes: vm_mem,
                    page_size: page,
                    vcpus: 2,
                    reservation_bytes: resv_start,
                    guest_os_bytes: guest_os,
                },
                SwapKind::PerVmVmd,
            );
            b.preload_pages(vm, 0, (vm_mem / page) as u32);
            vm
        })
        .collect();

    let mut sim = b.build();
    if cfg.trace {
        sim.state_mut().trace = agile_trace::Tracer::with_capacity(1 << 17);
    }

    // Watermarks per managed host, from its VM-available memory.
    let managed: Vec<ManagedHost> = working
        .iter()
        .map(|&h| ManagedHost {
            host: h,
            trigger: WatermarkTrigger::fractions(
                sim.state().hosts[h].mem.available_for_vms(),
                cfg.low_frac,
                cfg.high_frac,
            ),
        })
        .collect();
    let sched_cfg = SchedConfig {
        policy: cfg.policy,
        max_in_flight: cfg.max_in_flight,
        hysteresis: cfg.hysteresis,
        cooldown: SimDuration::from_secs(600),
        src_cfg: SourceConfig {
            precopy_threshold_pages: (9_000 / sc as u32).max(64),
            ..SourceConfig::new(Technique::Agile)
        },
        verify_content: true,
        ..SchedConfig::new(SourceConfig::new(Technique::Agile))
    };
    sched::arm_scheduler(&mut sim, managed.clone(), sched_cfg);

    // The load ramp, expressed as a staircase signal: every VM's
    // reservation steps toward the target in `ramp_steps` equal
    // increments (integer-exact, see `Signal::Ramp`). VMs caught
    // mid-migration skip the step; with the default single-step ramp
    // nothing is migrating yet.
    let steps = cfg.ramp_steps.max(1);
    let ramp = Signal::ramp(
        SimTime::from_secs(cfg.ramp_start_secs),
        SimDuration::from_secs(cfg.ramp_interval_secs),
        steps,
        resv_start as f64,
        resv_target as f64,
    );
    let bindings: Vec<(usize, Signal)> = vms.iter().map(|&vm| (vm, ramp.clone())).collect();
    super::schedule_step_signals(
        &mut sim,
        bindings,
        SimTime::from_nanos(u64::MAX),
        |sim, vm, v| {
            if sim.state().vms[vm].migration.is_some() {
                return;
            }
            set_reservation(sim, vm, v as u64);
        },
    );

    let ramp_end =
        SimTime::from_secs(cfg.ramp_start_secs + u64::from(steps - 1) * cfg.ramp_interval_secs);
    let deadline = SimTime::from_secs(cfg.deadline_secs);
    MultihostSetup {
        sim,
        managed,
        ramp_end,
        deadline,
    }
}

/// Disarm the scheduler and assemble the deterministic result.
fn finish(
    mut sim: Simulation<World>,
    cfg: &MultihostConfig,
    managed: &[ManagedHost],
    deadline: SimTime,
) -> MultihostResult {
    let sc = cfg.scale.max(1);
    sched::disarm_scheduler(&mut sim);

    let events_executed = sim.events_executed();
    let w = sim.state();
    let s = w.sched.as_ref().expect("scheduler armed");

    let migrations: Vec<MigRecord> = w
        .migrations
        .iter()
        .map(|m| {
            let met = m.src.metrics();
            MigRecord {
                vm: m.vm,
                src: m.source_host,
                dest: m.dest_host,
                start_ns: met.started_at.as_nanos(),
                end_ns: met.completed_at.map(|t| t.as_nanos()).unwrap_or(u64::MAX),
                bytes: met.migration_bytes,
                finished: m.finished,
            }
        })
        .collect();
    let final_aggregates: Vec<u64> = managed
        .iter()
        .map(|mh| sched::host_aggregate(w, mh.host))
        .collect();
    let high_bytes: Vec<u64> = managed.iter().map(|mh| mh.trigger.high_bytes).collect();
    let converged = sim.now() < deadline
        && final_aggregates
            .iter()
            .zip(&high_bytes)
            .all(|(agg, high)| agg <= high)
        && s.queue.is_empty()
        && s.inflight.is_empty();
    let max_vm_migrations = s.times_migrated.iter().copied().max().unwrap_or(0);
    let metrics_json = crate::report::metrics_registry(w).to_json();

    let mut report = String::new();
    {
        use std::fmt::Write;
        let _ = writeln!(report, "# multihost rebalance report");
        let _ = writeln!(
            report,
            "seed={} scale={} hosts={} vms={} policy={} cap={} hysteresis={:?} \
             low_frac={:?} high_frac={:?}",
            cfg.seed,
            sc,
            cfg.hosts,
            cfg.vms,
            cfg.policy.name(),
            cfg.max_in_flight,
            cfg.hysteresis,
            cfg.low_frac,
            cfg.high_frac,
        );
        let _ = writeln!(report, "watermarks:");
        for mh in managed {
            let _ = writeln!(
                report,
                "  host{} low={} high={}",
                mh.host, mh.trigger.low_bytes, mh.trigger.high_bytes
            );
        }
        let _ = writeln!(report, "decisions:");
        for d in &s.decisions {
            let _ = writeln!(
                report,
                "  t_ns={} vm={} src={} dest={} action={}",
                d.at.as_nanos(),
                d.vm,
                d.src,
                d.dest.map(|h| h as i64).unwrap_or(-1),
                d.action.name(),
            );
        }
        let _ = writeln!(report, "migrations:");
        for (i, m) in migrations.iter().enumerate() {
            let _ = writeln!(
                report,
                "  mig={} vm={} src={} dest={} start_ns={} end_ns={} bytes={} finished={}",
                i, m.vm, m.src, m.dest, m.start_ns, m.end_ns, m.bytes, m.finished,
            );
        }
        let _ = writeln!(report, "final:");
        for (i, mh) in managed.iter().enumerate() {
            let _ = writeln!(
                report,
                "  host{} aggregate={} high={} ok={}",
                mh.host,
                final_aggregates[i],
                high_bytes[i],
                final_aggregates[i] <= high_bytes[i],
            );
        }
        let c = s.counters;
        let _ = writeln!(
            report,
            "counters: started={} queued={} deferred={} dropped={} completed={} \
             max_in_flight={}",
            c.started,
            c.queued,
            c.deferred_no_dest,
            c.dropped_recovered,
            c.completed,
            c.max_in_flight_observed,
        );
        let _ = writeln!(
            report,
            "converged={converged} max_vm_migrations={max_vm_migrations} \
             events_executed={events_executed}",
        );
    }

    MultihostResult {
        report,
        converged,
        migrations,
        final_aggregates,
        high_bytes,
        max_vm_migrations,
        counters: s.counters,
        metrics_json,
        events_executed,
        trace_jsonl: cfg.trace.then(|| w.trace.to_jsonl()),
    }
}
