//! Diurnal/flash-crowd scenario: cycle-predictive vs naive migration.
//!
//! Eight YCSB guests packed on two of four working hosts follow a shared
//! diurnal load cycle (reservation, active fraction, and — for the
//! flash-crowd pair on each host — client think time all driven from the
//! [`agile_workload::Signal`] DSL through the [`crate::wlctl`] driver).
//! The diurnal swing alone stays under every high watermark; a flash
//! crowd on two guests per packed host then pushes the host over its
//! trigger. The naive scheduler migrates at the breach — near the flash
//! peak, when the guests' resident sets are largest. With the
//! [`crate::predict`] overlay armed, the same selections defer to the
//! predicted diurnal trough, after the reservation shrink has evicted
//! the cold tail to the VMD pool: Agile then ships those pages as
//! 16-byte swap offsets instead of full frames, and the suspend-time
//! stream backlog behind the handoff is smaller — strictly fewer bytes
//! moved *and* strictly lower downtime on the same seed, which
//! `BENCH_3.json` and the root `diurnal_predict` test pin.
//!
//! Both arms run to a fixed deadline (the load is periodic, so there is
//! no quiescent convergence point); equal seeds produce byte-identical
//! reports at any sharded worker count.

use agile_migration::{SourceConfig, Technique};
use agile_sim_core::{SimDuration, SimTime, Simulation, GIB, MIB};
use agile_vm::VmConfig;
use agile_workload::driver::{Binding, Knob};
use agile_workload::{Dataset, KeyDist, Signal, WorkloadDriver, YcsbParams, YcsbRedis};
use agile_wss::WatermarkTrigger;

use crate::build::{start_all_workloads, ClusterBuilder, SwapKind};
use crate::config::ClusterConfig;
use crate::predict::{PredictConfig, PredictCounters};
use crate::sched::{self, ManagedHost, PlacementPolicy, SchedConfig, SchedCounters};
use crate::shard::{NullCoordinator, ShardedRun};
use crate::wlctl;
use crate::world::{WorkloadKind, World};

/// One diurnal run (naive when `predict` is false, trough-scheduled when
/// true — everything else identical).
#[derive(Clone, Debug)]
pub struct DiurnalConfig {
    /// Arm the cycle predictor over the watermark scheduler.
    pub predict: bool,
    /// Divide every byte quantity by this (1 = paper scale).
    pub scale: u64,
    /// Diurnal period in seconds (must be an exact multiple of the 5 s
    /// scheduler tick for the detector's folded bins to line up).
    pub period_secs: u64,
    /// Flash-crowd arrival on the first packed host, in seconds.
    pub flash1_secs: u64,
    /// Flash-crowd arrival on the second packed host, in seconds.
    pub flash2_secs: u64,
    /// Fixed run deadline in seconds.
    pub deadline_secs: u64,
    /// Master seed.
    pub seed: u64,
    /// Enable the event tracer (`sched_defer` lines appear in the JSONL
    /// export when the predictor defers).
    pub trace: bool,
}

impl Default for DiurnalConfig {
    fn default() -> Self {
        DiurnalConfig {
            predict: false,
            scale: 1,
            period_secs: 60,
            flash1_secs: 250,
            flash2_secs: 350,
            deadline_secs: 480,
            seed: 42,
            trace: false,
        }
    }
}

/// One migration observed by the run, with the cost terms the
/// naive-vs-predicted comparison is about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiurnalMig {
    /// The migrated VM.
    pub vm: usize,
    /// Source host.
    pub src: usize,
    /// Destination host.
    pub dest: usize,
    /// When the migration started (ns).
    pub start_ns: u64,
    /// When it finalized (ns); `u64::MAX` if it never did.
    pub end_ns: u64,
    /// Bytes on the migration channels.
    pub bytes: u64,
    /// Full page frames shipped (swapped pages travel as offsets).
    pub pages_full: u64,
    /// Suspend-to-resume blackout (ns); `u64::MAX` if never suspended.
    pub downtime_ns: u64,
    /// Whether it finalized before the deadline.
    pub finished: bool,
}

/// Everything a diurnal run reports. With equal seeds two runs produce
/// byte-identical `report`, `trace_jsonl`, and `metrics_json` at any
/// worker count.
#[derive(Clone, Debug, PartialEq)]
pub struct DiurnalResult {
    /// The deterministic report (watermarks, decisions, migrations,
    /// totals, predictor counters).
    pub report: String,
    /// Per-migration records, in start order.
    pub migrations: Vec<DiurnalMig>,
    /// Sum of migration-channel bytes across migrations.
    pub total_bytes: u64,
    /// Sum of full page frames shipped across migrations.
    pub total_pages_full: u64,
    /// p99 of per-migration downtime (ns); `u64::MAX` when no migration
    /// ever suspended.
    pub downtime_p99_ns: u64,
    /// Scheduler counters.
    pub counters: SchedCounters,
    /// Predictor counters (`Some` iff `cfg.predict`).
    pub predict: Option<PredictCounters>,
    /// Metrics-registry JSON export.
    pub metrics_json: String,
    /// Total DES events executed (the determinism fingerprint).
    pub events_executed: u64,
    /// JSONL event trace (`Some` only when `cfg.trace` was set).
    pub trace_jsonl: Option<String>,
}

/// A built, armed diurnal world plus the fixed deadline, ready to be
/// driven sequentially ([`run`]) or as one shard of a replicated run
/// ([`run_replicated`]).
struct DiurnalSetup {
    sim: Simulation<World>,
    managed: Vec<ManagedHost>,
    deadline: SimTime,
}

/// Percentile over an unsorted sample set (nearest-rank, 0 < p ≤ 1).
fn percentile(samples: &[u64], p: f64) -> u64 {
    if samples.is_empty() {
        return u64::MAX;
    }
    let mut s = samples.to_vec();
    s.sort_unstable();
    let rank = ((p * s.len() as f64).ceil() as usize).max(1);
    s[rank.min(s.len()) - 1]
}

/// Run one diurnal scenario to its deadline.
pub fn run(cfg: &DiurnalConfig) -> DiurnalResult {
    let DiurnalSetup {
        mut sim,
        managed,
        deadline,
    } = setup(cfg);
    loop {
        let next = sim.now() + SimDuration::from_secs(5);
        sim.run_until(next.min(deadline));
        if sim.now() >= deadline {
            break;
        }
    }
    finish(sim, cfg, &managed)
}

/// Run several independent diurnal scenarios as shards of one parallel
/// epoch harness (lookahead = the sequential driver's 5-second slice).
/// Every replica's result is byte-identical to [`run`] of its config at
/// any `workers` count.
pub fn run_replicated(cfgs: &[DiurnalConfig], workers: usize) -> Vec<DiurnalResult> {
    assert!(!cfgs.is_empty());
    assert!(
        cfgs.iter()
            .all(|c| c.deadline_secs == cfgs[0].deadline_secs),
        "replicated runs share one deadline (epoch targets must coincide)"
    );
    let mut meta = Vec::with_capacity(cfgs.len());
    let mut worlds = Vec::with_capacity(cfgs.len());
    for cfg in cfgs {
        let s = setup(cfg);
        meta.push((s.managed, s.deadline));
        worlds.push(s.sim);
    }
    let deadline = meta[0].1;
    let mut sharded = ShardedRun::new(worlds, SimDuration::from_secs(5));
    sharded.run(workers, deadline, &mut NullCoordinator, |i, sim| {
        sim.now() >= meta[i].1
    });
    sharded
        .into_worlds()
        .into_iter()
        .zip(cfgs)
        .zip(&meta)
        .map(|((sim, cfg), (managed, _))| finish(sim, cfg, managed))
        .collect()
}

/// Build the world: hosts, VMD pool, packed YCSB guests, signal-driven
/// workload knobs, watermark scheduler, and (optionally) the predictor.
fn setup(cfg: &DiurnalConfig) -> DiurnalSetup {
    let sc = cfg.scale.max(1);
    let host_mem = 24 * GIB / sc;
    let host_os = 300 * MIB / sc;
    let vm_mem = 8 * GIB / sc;
    let guest_os = 300 * MIB / sc;
    let dataset_bytes = 6 * GIB / sc;
    // Reservation signal: mid ± amp diurnal swing. Four guests per
    // packed host peak at 4 × (mid + amp) = 16 GiB — under the 0.75
    // high watermark (~17.8 GiB) — so only a flash crowd breaches.
    let resv_mid = 3328 * MIB / sc;
    let resv_amp = 768 * MIB / sc;
    let flash_peak = 3 * GIB / sc;
    // Decay fast enough that the residual is gone by the next diurnal
    // trough: the deferred reservation then undercuts the resident set
    // and the cold tail spills to the VMD pool before the migration
    // fires.
    let flash_decay = SimDuration::from_secs(15);
    // Active window tracks the reservation shape minus the OS/index
    // overhead, so the guest actually touches (and re-faults) what the
    // reservation admits.
    let active_mid = 2560 * MIB / sc;
    let think_base_ns: u64 = 4_000_000;
    let period = SimDuration::from_secs(cfg.period_secs);

    let cluster_cfg = ClusterConfig {
        seed: cfg.seed,
        ..ClusterConfig::default()
    };
    let page = cluster_cfg.page_size;
    let mut b = ClusterBuilder::new(cluster_cfg);

    let working: Vec<usize> = (0..4)
        .map(|i| b.add_host(&format!("host{i}"), host_mem, host_os, false))
        .collect();
    let client_host = b.add_host("client", 16 * GIB / sc, host_os, false);
    for i in 0..2 {
        let im = b.add_host(&format!("intermediate{i}"), 48 * GIB / sc, host_os, false);
        b.add_vmd_server(im, 40 * GIB / sc, 0);
    }
    for &h in &working {
        b.ensure_vmd_client(h);
    }

    // Eight guests, four per packed host, each with a YCSB/Redis-style
    // dataset and a uniform-prefix key mix (the Zipfian resize-
    // determinism audit lives in the workload crate's own tests).
    let mut vms = Vec::new();
    for i in 0..8usize {
        let host = working[i / 4];
        let vm = b.add_vm(
            host,
            VmConfig {
                mem_bytes: vm_mem,
                page_size: page,
                vcpus: 2,
                reservation_bytes: resv_mid,
                guest_os_bytes: guest_os,
            },
            SwapKind::PerVmVmd,
        );
        let index_pages = ((dataset_bytes / 50) / page).max(4) as u32;
        let data_pages = (dataset_bytes / page) as u32;
        let (index_region, data_region) = {
            let world = b.world_mut();
            let layout = world.vms[vm].vm.layout_mut();
            let idx = layout.alloc_region("redis-index", index_pages);
            let dat = layout.alloc_region("redis-data", data_pages);
            (idx, dat)
        };
        let dataset = Dataset::new(data_region, dataset_bytes / 1024, 1024, page);
        let model = YcsbRedis::new(
            dataset,
            index_region,
            KeyDist::UniformPrefix,
            YcsbParams {
                client_threads: 4,
                ..YcsbParams::default()
            },
        );
        b.attach_workload(vm, client_host, WorkloadKind::Ycsb(model));
        b.preload_pages(vm, 0, (vm_mem / page) as u32);
        vms.push(vm);
    }

    let mut sim = b.build();
    if cfg.trace {
        sim.state_mut().trace = agile_trace::Tracer::with_capacity(1 << 17);
    }

    // The temporal workload: every guest's reservation and active
    // fraction follow the host's diurnal phase; two guests per packed
    // host additionally catch a flash crowd (reservation spike + think
    // collapse), and one guest per host remaps its working-set window
    // on a slow phase-change cycle.
    let stride = (dataset_bytes / 1024 / 8).max(1);
    let mut bindings = Vec::new();
    for (i, &vm) in vms.iter().enumerate() {
        let host_idx = i / 4;
        let phase = SimDuration::from_secs(15 * host_idx as u64);
        let arrival = SimTime::from_secs(if host_idx == 0 {
            cfg.flash1_secs
        } else {
            cfg.flash2_secs
        });
        let flashy = i % 4 < 2;
        let diurnal = |amp: f64| Signal::diurnal(period, amp, phase);
        let mut resv = Signal::constant(resv_mid as f64).sum(diurnal(resv_amp as f64));
        let mut active = Signal::constant(active_mid as f64).sum(diurnal(resv_amp as f64));
        if flashy {
            // The crowd hits the *guest* first (think collapse + active
            // window blown out to the whole dataset, scattering resident
            // pages across the scan order); the operator's elastic
            // reservation response lags by 15 s — and that lagged spike
            // is what breaches the watermark.
            let crowd_at = SimTime::from_nanos(
                arrival
                    .as_nanos()
                    .saturating_sub(SimDuration::from_secs(15).as_nanos()),
            );
            let crowd = Signal::flash_crowd(crowd_at, flash_peak as f64, flash_decay);
            resv = resv.sum(Signal::flash_crowd(arrival, flash_peak as f64, flash_decay));
            active = active.sum(crowd);
            bindings.push(Binding {
                vm,
                knob: Knob::ThinkNanos {
                    base_ns: think_base_ns,
                },
                signal: Signal::constant(1.0)
                    .sum(Signal::flash_crowd(crowd_at, -0.8, flash_decay))
                    .clamp(0.2, 1.0),
            });
        } else {
            bindings.push(Binding {
                vm,
                knob: Knob::ThinkNanos {
                    base_ns: think_base_ns,
                },
                signal: Signal::constant(1.0),
            });
        }
        bindings.push(Binding {
            vm,
            knob: Knob::ReservationBytes,
            signal: resv,
        });
        bindings.push(Binding {
            vm,
            knob: Knob::ActiveBytes,
            signal: active.clamp((128 * MIB / sc) as f64, dataset_bytes as f64),
        });
        if i % 4 == 3 {
            bindings.push(Binding {
                vm,
                knob: Knob::WindowPhase {
                    stride_records: stride,
                },
                signal: Signal::phase_change(SimDuration::from_secs(150), 4),
            });
        }
    }
    wlctl::arm_driver(
        &mut sim,
        WorkloadDriver::new(bindings),
        SimDuration::from_secs(5),
    );
    start_all_workloads(&mut sim, SimTime::from_secs(1));

    let managed: Vec<ManagedHost> = working
        .iter()
        .map(|&h| ManagedHost {
            host: h,
            trigger: WatermarkTrigger::fractions(
                sim.state().hosts[h].mem.available_for_vms(),
                0.60,
                0.75,
            ),
        })
        .collect();
    let sched_cfg = SchedConfig {
        policy: PlacementPolicy::LeastLoaded,
        max_in_flight: 2,
        hysteresis: 0.25,
        cooldown: SimDuration::from_secs(600),
        src_cfg: SourceConfig {
            precopy_threshold_pages: (9_000 / sc as u32).max(64),
            ..SourceConfig::new(Technique::Agile)
        },
        verify_content: true,
        ..SchedConfig::new(SourceConfig::new(Technique::Agile))
    };
    sched::arm_scheduler(&mut sim, managed.clone(), sched_cfg);
    if cfg.predict {
        sched::arm_predictor(
            &mut sim,
            PredictConfig {
                min_confidence: 0.4,
                max_defer: SimDuration::from_secs(120),
                ..PredictConfig::default()
            },
        );
    }

    DiurnalSetup {
        sim,
        managed,
        deadline: SimTime::from_secs(cfg.deadline_secs),
    }
}

/// Disarm everything and assemble the deterministic result.
fn finish(
    mut sim: Simulation<World>,
    cfg: &DiurnalConfig,
    managed: &[ManagedHost],
) -> DiurnalResult {
    sched::disarm_scheduler(&mut sim);
    wlctl::disarm_driver(&mut sim);

    let events_executed = sim.events_executed();
    let w = sim.state();
    let s = w.sched.as_ref().expect("scheduler armed");

    let migrations: Vec<DiurnalMig> = w
        .migrations
        .iter()
        .map(|m| {
            let met = m.src.metrics();
            DiurnalMig {
                vm: m.vm,
                src: m.source_host,
                dest: m.dest_host,
                start_ns: met.started_at.as_nanos(),
                end_ns: met.completed_at.map(|t| t.as_nanos()).unwrap_or(u64::MAX),
                bytes: met.migration_bytes,
                pages_full: met.pages_sent_full,
                downtime_ns: met.downtime().map(|d| d.as_nanos()).unwrap_or(u64::MAX),
                finished: m.finished,
            }
        })
        .collect();
    let total_bytes: u64 = migrations.iter().map(|m| m.bytes).sum();
    let total_pages_full: u64 = migrations.iter().map(|m| m.pages_full).sum();
    let downtimes: Vec<u64> = migrations
        .iter()
        .filter(|m| m.downtime_ns != u64::MAX)
        .map(|m| m.downtime_ns)
        .collect();
    let downtime_p99_ns = percentile(&downtimes, 0.99);
    let predict = s.predict.as_ref().map(|p| p.counters);
    let metrics_json = crate::report::metrics_registry(w).to_json();

    let mut report = String::new();
    {
        use std::fmt::Write;
        let _ = writeln!(report, "# diurnal cycle-prediction report");
        let _ = writeln!(
            report,
            "seed={} scale={} predict={} period_secs={} flash1={} flash2={} deadline={}",
            cfg.seed,
            cfg.scale.max(1),
            cfg.predict,
            cfg.period_secs,
            cfg.flash1_secs,
            cfg.flash2_secs,
            cfg.deadline_secs,
        );
        let _ = writeln!(report, "watermarks:");
        for mh in managed {
            let _ = writeln!(
                report,
                "  host{} low={} high={}",
                mh.host, mh.trigger.low_bytes, mh.trigger.high_bytes
            );
        }
        let _ = writeln!(report, "decisions:");
        for d in &s.decisions {
            let _ = writeln!(
                report,
                "  t_ns={} vm={} src={} dest={} action={}",
                d.at.as_nanos(),
                d.vm,
                d.src,
                d.dest.map(|h| h as i64).unwrap_or(-1),
                d.action.name(),
            );
        }
        let _ = writeln!(report, "migrations:");
        for (i, m) in migrations.iter().enumerate() {
            let _ = writeln!(
                report,
                "  mig={} vm={} src={} dest={} start_ns={} end_ns={} bytes={} \
                 pages_full={} downtime_ns={} finished={}",
                i,
                m.vm,
                m.src,
                m.dest,
                m.start_ns,
                m.end_ns,
                m.bytes,
                m.pages_full,
                m.downtime_ns,
                m.finished,
            );
        }
        let c = s.counters;
        let _ = writeln!(
            report,
            "counters: started={} queued={} deferred_no_dest={} completed={} max_in_flight={}",
            c.started, c.queued, c.deferred_no_dest, c.completed, c.max_in_flight_observed,
        );
        if let Some(p) = predict {
            let _ = writeln!(
                report,
                "predict: cycles={} deferrals={} expiries={} hits={} misses={} cancelled={}",
                p.cycles_detected,
                p.deferrals,
                p.window_expiries,
                p.trough_hits,
                p.trough_misses,
                p.cancelled,
            );
        }
        let _ = writeln!(
            report,
            "totals: migrations={} bytes={} pages_full={} downtime_p99_ns={} \
             events_executed={}",
            migrations.len(),
            total_bytes,
            total_pages_full,
            downtime_p99_ns,
            events_executed,
        );
    }

    DiurnalResult {
        report,
        migrations,
        total_bytes,
        total_pages_full,
        downtime_p99_ns,
        counters: s.counters,
        predict,
        metrics_json,
        events_executed,
        trace_jsonl: cfg.trace.then(|| w.trace.to_jsonl()),
    }
}
