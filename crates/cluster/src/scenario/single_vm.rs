//! §V-B — the single-VM memory-pressure sweep (Figures 7–8).
//!
//! Host memory is pinned at 6 GB while the VM's memory grows from 2 GB to
//! 12 GB: past the host size, the excess is swapped out. The *idle* VM has
//! fully-populated but untouched memory (plus OS background); the *busy*
//! VM runs a Redis server whose dataset nearly fills the VM, queried by an
//! update-heavy YCSB client. Migrating the VM measures how each technique
//! copes with swapped-out state: pre/post-copy must drag every cold page
//! back through the swap device (thrashing against the guest in the busy
//! case), while Agile ships 16-byte offsets and stays flat.

use agile_migration::{SourceConfig, Technique};
use agile_sim_core::{SimTime, GIB, MIB};
use agile_vm::VmConfig;
use agile_workload::{Dataset, KeyDist, YcsbParams, YcsbRedis};

use crate::build::{start_all_workloads, ClusterBuilder, SwapKind};
use crate::config::ClusterConfig;
use crate::migrate;
use crate::world::WorkloadKind;

/// One sweep point.
#[derive(Clone, Copy, Debug)]
pub struct SingleVmConfig {
    /// Migration technique under test.
    pub technique: Technique,
    /// VM memory size in bytes (the sweep axis; paper: 2–12 GB).
    pub vm_mem: u64,
    /// Host memory (paper: 6 GB, constant).
    pub host_mem: u64,
    /// Busy (Redis + YCSB) or idle (populated memory, OS background only).
    pub busy: bool,
    /// Divide every byte quantity by this (1 = paper scale).
    pub scale: u64,
    /// Warm-up before the migration starts.
    pub warmup_secs: u64,
    /// Hard deadline for the run.
    pub deadline_secs: u64,
    /// Master seed.
    pub seed: u64,
    /// Enable the event tracer (off by default: untraced runs keep the
    /// zero-allocation hot path and byte-identical goldens).
    pub trace: bool,
}

impl Default for SingleVmConfig {
    fn default() -> Self {
        SingleVmConfig {
            technique: Technique::Agile,
            vm_mem: 8 * GIB,
            host_mem: 6 * GIB,
            busy: false,
            scale: 1,
            warmup_secs: 30,
            deadline_secs: 4000,
            seed: 42,
            trace: false,
        }
    }
}

/// One sweep point's outcome.
#[derive(Clone, Debug)]
pub struct SingleVmResult {
    /// Total migration time in seconds (Fig. 7).
    pub migration_secs: f64,
    /// Bytes on the migration channel (Fig. 8).
    pub migration_bytes: u64,
    /// Downtime in seconds.
    pub downtime_secs: f64,
    /// Full metrics.
    pub metrics: agile_migration::MigrationMetrics,
    /// Per-migration phase decomposition (always built; the substrate of
    /// the `TRACE_<scenario>.json` export).
    pub timeline: agile_trace::PhaseTimeline,
    /// JSONL event-trace export (`Some` only when `cfg.trace` was set).
    pub trace_jsonl: Option<String>,
}

/// Run one sweep point.
pub fn run(cfg: &SingleVmConfig) -> SingleVmResult {
    let sc = cfg.scale.max(1);
    let host_mem = cfg.host_mem / sc;
    let vm_mem = cfg.vm_mem / sc;
    let host_os = 300 * MIB / sc;
    let guest_os = 300 * MIB / sc;
    // The VM's reservation is whatever the host can give it (the paper
    // relies on host-level swapping once the VM outgrows the host).
    let reservation = (host_mem - host_os).min(vm_mem);

    let cluster_cfg = ClusterConfig {
        seed: cfg.seed,
        ..ClusterConfig::default()
    };
    let page = cluster_cfg.page_size;
    let mut b = ClusterBuilder::new(cluster_cfg);
    let src_host = b.add_host("source", host_mem, host_os, true);
    let dst_host = b.add_host("dest", host_mem, host_os, true);
    let client_host = b.add_host("client", 8 * GIB / sc, host_os, false);
    let agile = cfg.technique == Technique::Agile;
    if agile {
        let im = b.add_host("intermediate", 64 * GIB / sc, host_os, true);
        b.add_vmd_server(im, 48 * GIB / sc, 0);
        b.ensure_vmd_client(dst_host);
    }
    let swap_kind = if agile {
        SwapKind::PerVmVmd
    } else {
        SwapKind::HostSsd
    };

    let vm = b.add_vm(
        src_host,
        VmConfig {
            mem_bytes: vm_mem,
            page_size: page,
            vcpus: 2,
            reservation_bytes: reservation,
            guest_os_bytes: guest_os,
        },
        swap_kind,
    );

    if cfg.busy {
        // Redis dataset leaves ~500 MB of the VM free (paper wording).
        let dataset_bytes = vm_mem.saturating_sub(500 * MIB / sc + guest_os);
        let index_pages = ((dataset_bytes / 50) / page).max(4) as u32;
        let data_pages = (dataset_bytes / page) as u32;
        let (index_region, data_region) = {
            let world = b.world_mut();
            let layout = world.vms[vm].vm.layout_mut();
            let idx = layout.alloc_region("redis-index", index_pages);
            let dat = layout.alloc_region("redis-data", data_pages);
            (idx, dat)
        };
        let dataset = Dataset::new(data_region, dataset_bytes / 1024, 1024, page);
        let model = YcsbRedis::new(
            dataset,
            index_region,
            KeyDist::UniformPrefix,
            YcsbParams::update_heavy(),
        );
        b.attach_workload(vm, client_host, WorkloadKind::Ycsb(model));
        b.enable_os_background(vm);
        b.preload_layout(vm);
    } else {
        // Idle: memory fully populated (so it all has to be transferred)
        // but only the OS touches pages.
        b.enable_os_background(vm);
        let pages = (vm_mem / page) as u32;
        b.preload_pages(vm, 0, pages);
    }

    let mut sim = b.build();
    if cfg.trace {
        sim.state_mut().trace = agile_trace::Tracer::with_capacity(1 << 16);
    }
    start_all_workloads(&mut sim, SimTime::from_secs(1));

    let technique = cfg.technique;
    sim.schedule_at(SimTime::from_secs(cfg.warmup_secs), move |sim| {
        let dest_resv = {
            let w = sim.state();
            w.hosts[dst_host]
                .mem
                .available_for_vms()
                .min(w.vms[vm].vm.config().mem_bytes)
        };
        let src_cfg = SourceConfig {
            precopy_threshold_pages: (9_000 / sc as u32).max(64),
            ..SourceConfig::new(technique)
        };
        migrate::start_migration(sim, vm, dst_host, src_cfg, dest_resv);
    });

    // Run until the migration completes (or the deadline).
    let deadline = SimTime::from_secs(cfg.deadline_secs);
    loop {
        let next = sim.now() + agile_sim_core::SimDuration::from_secs(5);
        sim.run_until(next.min(deadline));
        let done = sim
            .state()
            .migrations
            .first()
            .map(|m| m.finished)
            .unwrap_or(false);
        if done || sim.now() >= deadline {
            break;
        }
    }

    let metrics = sim.state().migrations[0].src.metrics().clone();
    let timeline = crate::report::phase_timeline(sim.state(), 0, "single_vm", cfg.seed);
    let trace_jsonl = cfg.trace.then(|| sim.state().trace.to_jsonl());
    SingleVmResult {
        migration_secs: metrics
            .total_time()
            .map(|d| d.as_secs_f64())
            .unwrap_or(f64::NAN),
        migration_bytes: metrics.migration_bytes,
        downtime_secs: metrics
            .downtime()
            .map(|d| d.as_secs_f64())
            .unwrap_or(f64::NAN),
        metrics,
        timeline,
        trace_jsonl,
    }
}
