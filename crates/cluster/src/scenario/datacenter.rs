//! Datacenter-scale sharded run: N racks × M hosts × K VMs under
//! per-rack watermark schedulers, one shard (= one world) per rack.
//!
//! Each rack is a complete world — its own hosts, VMD intermediates,
//! fluid network with a ToR uplink/downlink trunk, and scheduler. The
//! racks advance in parallel through the conservative epoch harness
//! ([`crate::shard::ShardedRun`]); every `report_interval` each rack
//! pushes a [`BoundaryMsg::LoadReport`] across the shard boundary, and
//! the [`DatacenterCoordinator`] answers with a cluster-wide
//! [`GlobalSignal::ClusterLoad`] one lookahead later.
//!
//! The load script mirrors the multihost scenario at rack granularity:
//! VMs start packed on the first half of each rack's hosts with small
//! reservations; at `ramp_start` every reservation jumps (with
//! deterministic per-VM jitter) — *hot* racks (every `hot_every`-th)
//! overflow their packed hosts' high watermarks and rebalance onto the
//! empty hosts through VMD intermediates attached at the spine, so the
//! migration swap traffic crosses the rack trunk; *cold* racks stay
//! below their low watermarks and never migrate.
//!
//! The returned [`DatacenterResult::report`] is deterministic (byte
//! identical at any `workers` count and across runs with equal seeds);
//! all wall-clock measurement lives in the separate [`WallStats`].

use std::time::Instant;

use agile_migration::{SourceConfig, Technique};
use agile_sim_core::{Bandwidth, RackId, SeedSequence, SimDuration, SimTime, Simulation, GIB, MIB};
use agile_vm::VmConfig;
use agile_workload::Signal;
use agile_wss::WatermarkTrigger;

use crate::build::{ClusterBuilder, SwapKind};
use crate::config::ClusterConfig;
use crate::scenario::set_reservation;
use crate::sched::{self, ManagedHost, PlacementPolicy, SchedConfig};
use crate::shard::{BoundaryMsg, Coordinator, GlobalSignal, MergedMsg, ShardedRun};
use crate::world::World;

/// One datacenter run. Sizing is fixed per VM (64 MiB VMs; host memory
/// derives from the packed VM count, ≈1 GiB at the large preset) so the
/// knobs scale *count*, not bytes — the point is event volume, not
/// paper-scale transfers.
#[derive(Clone, Debug)]
pub struct DatacenterConfig {
    /// Racks; each rack is one shard with its own world and scheduler.
    pub racks: usize,
    /// Working (schedulable) hosts per rack (≥ 2).
    pub hosts_per_rack: usize,
    /// VMs packed onto each of the first `hosts_per_rack / 2` hosts.
    pub vms_per_packed_host: usize,
    /// Every `hot_every`-th rack ramps hot (overflows its watermarks).
    pub hot_every: usize,
    /// ToR trunk capacity, each direction, in Gbps.
    pub uplink_gbps: f64,
    /// Worker threads for the epoch harness (wall-clock only — the
    /// result is byte-identical at any value).
    pub workers: usize,
    /// Seconds between per-rack boundary load reports.
    pub report_interval_secs: u64,
    /// Epoch length / minimum cross-shard signal latency, seconds.
    pub lookahead_secs: u64,
    /// When every VM's reservation jumps, seconds.
    pub ramp_start_secs: u64,
    /// When every VM's working set contracts (reservations shrink below
    /// residency, spilling pages through the VMD clients to the spine
    /// intermediates — the page traffic that crosses the ToR trunk),
    /// seconds.
    pub spill_start_secs: u64,
    /// Hard deadline for the run, seconds.
    pub deadline_secs: u64,
    /// Master seed (each rack derives its own stream).
    pub seed: u64,
}

impl DatacenterConfig {
    /// CI scale: 4 racks × 4 hosts × 8 VMs = 16 hosts, 32 VMs. Runs in
    /// well under a second; used by the determinism gates.
    pub fn small() -> Self {
        DatacenterConfig {
            racks: 4,
            hosts_per_rack: 4,
            vms_per_packed_host: 4,
            hot_every: 2,
            uplink_gbps: 10.0,
            workers: 1,
            report_interval_secs: 5,
            lookahead_secs: 5,
            ramp_start_secs: 12,
            spill_start_secs: 42,
            deadline_secs: 600,
            seed: 42,
        }
    }

    /// Datacenter scale: 32 racks × 32 hosts = 1,024 hosts; 16 packed
    /// hosts × 20 VMs × 32 racks = 10,240 VMs.
    pub fn large() -> Self {
        DatacenterConfig {
            racks: 32,
            hosts_per_rack: 32,
            vms_per_packed_host: 20,
            ..DatacenterConfig::small()
        }
    }
}

/// Wall-clock accounting for one run. Never part of the deterministic
/// report.
#[derive(Clone, Copy, Debug)]
pub struct WallStats {
    /// End-to-end wall time of the sharded run, seconds.
    pub wall_secs: f64,
    /// Total busy time summed across every shard, seconds.
    pub busy_secs: f64,
    /// Sum over epochs of the slowest shard — the parallel floor.
    pub critical_path_secs: f64,
    /// `busy / critical_path`: the speedup a big-enough machine could
    /// extract from this decomposition.
    pub available_parallelism: f64,
    /// Worker threads the harness was asked to use.
    pub workers: usize,
    /// Cores actually available on this machine.
    pub host_cpus: usize,
}

/// Everything a datacenter run reports.
#[derive(Clone, Debug)]
pub struct DatacenterResult {
    /// Deterministic report: config, per-rack outcome lines (migrations,
    /// trunk bytes, boundary traffic), cluster totals.
    pub report: String,
    /// Every rack rebalanced and quiescent before the deadline.
    pub converged: bool,
    /// Rack count.
    pub racks: usize,
    /// Working hosts across the cluster.
    pub hosts: usize,
    /// VMs across the cluster.
    pub vms: usize,
    /// Migrations started across the cluster.
    pub migrations: u64,
    /// Epoch barriers executed.
    pub epochs: u64,
    /// DES events executed, summed over racks (the determinism
    /// fingerprint).
    pub events_executed: u64,
    /// Simulated seconds covered (max over racks).
    pub sim_secs: f64,
    /// Wall-clock measurement (non-deterministic; excluded from
    /// `report`).
    pub wall: WallStats,
}

/// Keeps the latest load report per rack and broadcasts the cluster
/// summary back to every rack each epoch that carried messages.
pub struct DatacenterCoordinator {
    latest: Vec<Option<(u64, u32)>>,
    /// Signals emitted over the run (racks × signalling epochs).
    pub signals_sent: u64,
}

impl DatacenterCoordinator {
    /// Coordinator over `racks` shards.
    pub fn new(racks: usize) -> Self {
        DatacenterCoordinator {
            latest: vec![None; racks],
            signals_sent: 0,
        }
    }
}

impl Coordinator for DatacenterCoordinator {
    fn merge(&mut self, _epoch_end: SimTime, msgs: &[MergedMsg]) -> Vec<(usize, GlobalSignal)> {
        if msgs.is_empty() {
            return Vec::new();
        }
        for m in msgs {
            if let BoundaryMsg::LoadReport {
                rack,
                aggregate,
                hot_hosts,
                ..
            } = &m.msg
            {
                self.latest[*rack] = Some((*aggregate, *hot_hosts));
            }
        }
        let known: Vec<(u64, u32)> = self.latest.iter().flatten().copied().collect();
        if known.is_empty() {
            return Vec::new();
        }
        let mean_aggregate = known.iter().map(|(a, _)| a).sum::<u64>() / known.len() as u64;
        let hot_racks = known.iter().filter(|(_, h)| *h > 0).count() as u32;
        let out: Vec<(usize, GlobalSignal)> = (0..self.latest.len())
            .map(|r| {
                (
                    r,
                    GlobalSignal::ClusterLoad {
                        mean_aggregate,
                        hot_racks,
                    },
                )
            })
            .collect();
        self.signals_sent += out.len() as u64;
        out
    }
}

/// One built rack world plus what the driver needs to judge it.
struct RackSetup {
    sim: Simulation<World>,
    managed: Vec<ManagedHost>,
    rack_id: RackId,
    hot: bool,
}

// Fixed per-VM sizing (see the type-level comment on the config). Host
// memory is derived from the packed VM count so that a hot rack's packed
// hosts land ~8% above their high watermark at any `vms_per_packed_host`:
// avail = 49 MiB × K ⇒ high = 0.75·avail ≈ 36.75K MiB, against a hot
// load of ~40K MiB — a small overflow the scheduler clears with one or
// two evictions per host. (K = 20 gives the 1 GiB hosts of the large
// preset.)
const HOST_OS: u64 = 32 * MIB;
const AVAIL_PER_PACKED_VM: u64 = 49 * MIB;
const VM_MEM: u64 = 64 * MIB;
const GUEST_OS: u64 = 4 * MIB;
const RESV_START: u64 = 8 * MIB;
const HOT_TARGET: u64 = 40 * MIB;
const COLD_TARGET: u64 = 24 * MIB;
const PRELOAD_PAGES: u32 = 2048; // 8 MiB — fills residency to the reservation
/// Pages each VM evicts through its VMD client when the working set
/// contracts at `spill_start` (512 KiB of page writes per VM crossing
/// the ToR trunk toward the spine intermediates).
const SPILL_PAGES: u32 = 128;

/// Recurring boundary load report; reschedules itself every `interval`.
fn report_tick(sim: &mut Simulation<World>, interval: SimDuration, managed: Vec<ManagedHost>) {
    let w = sim.state();
    let rack = w.shard_id;
    let mut aggregate = 0u64;
    let mut hot_hosts = 0u32;
    for mh in &managed {
        let agg = sched::host_aggregate(w, mh.host);
        aggregate += agg;
        if agg > mh.trigger.high_bytes {
            hot_hosts += 1;
        }
    }
    let migrations = w.migrations.len() as u64;
    let now = sim.now();
    sim.state_mut().boundary.outbox.push((
        now,
        BoundaryMsg::LoadReport {
            rack,
            aggregate,
            hot_hosts,
            migrations,
        },
    ));
    sim.schedule_in(interval, move |sim| report_tick(sim, interval, managed));
}

/// Build one rack: working hosts behind a ToR trunk, two spine-attached
/// VMD intermediates, packed VMs, scheduler, jittered reservation ramp.
fn build_rack(cfg: &DatacenterConfig, rack: usize, seq: &SeedSequence) -> RackSetup {
    assert!(cfg.hosts_per_rack >= 2, "need at least two hosts per rack");
    assert!(cfg.vms_per_packed_host >= 1);
    let hot = rack.is_multiple_of(cfg.hot_every.max(1));
    let mut rng = seq.stream(&format!("dc.rack{rack}"));

    let cluster_cfg = ClusterConfig {
        seed: seq.stream_seed(&format!("dc.world{rack}")),
        ..ClusterConfig::default()
    };
    let page = cluster_cfg.page_size;
    let mut b = ClusterBuilder::new(cluster_cfg);

    let tor = b.add_net_rack(
        Bandwidth::gbps(cfg.uplink_gbps),
        Bandwidth::gbps(cfg.uplink_gbps),
    );
    let host_mem = HOST_OS + cfg.vms_per_packed_host as u64 * AVAIL_PER_PACKED_VM;
    let working: Vec<usize> = (0..cfg.hosts_per_rack)
        .map(|i| {
            let h = b.add_host(&format!("r{rack}h{i}"), host_mem, HOST_OS, false);
            b.assign_rack(h, tor);
            h
        })
        .collect();
    // Spine-attached (unracked) intermediates back the VMD pool, so
    // every namespace spill and migration swap stream crosses the ToR
    // trunk — the hierarchical-fabric path under test.
    for i in 0..2 {
        let im = b.add_host(&format!("r{rack}spine{i}"), 4 * GIB, HOST_OS, false);
        b.add_vmd_server(im, 3 * GIB, 0);
    }
    for &h in &working {
        b.ensure_vmd_client(h);
    }

    // Pack the VMs onto the first half of the working hosts and compute
    // each VM's jittered ramp target up front (keeps the ramp event a
    // plain table walk).
    let packed = (cfg.hosts_per_rack / 2).max(1);
    let base = if hot { HOT_TARGET } else { COLD_TARGET };
    let mut vms = Vec::new();
    let mut targets = Vec::new();
    for (slot, &host) in working.iter().take(packed).enumerate() {
        for _ in 0..cfg.vms_per_packed_host {
            let vm = b.add_vm(
                host,
                VmConfig {
                    mem_bytes: VM_MEM,
                    page_size: page,
                    vcpus: 1,
                    reservation_bytes: RESV_START,
                    guest_os_bytes: GUEST_OS,
                },
                SwapKind::PerVmVmd,
            );
            b.preload_pages(vm, 0, PRELOAD_PAGES);
            vms.push(vm);
            // ±2 MiB of per-VM jitter so packed hosts don't all land on
            // the exact same aggregate.
            let jitter = rng.index(5) as i64 - 2;
            targets.push((base as i64 + jitter * MIB as i64) as u64);
        }
        let _ = slot;
    }

    let mut sim = b.build();

    let managed: Vec<ManagedHost> = working
        .iter()
        .map(|&h| ManagedHost {
            host: h,
            trigger: WatermarkTrigger::fractions(
                sim.state().hosts[h].mem.available_for_vms(),
                0.60,
                0.75,
            ),
        })
        .collect();
    let sched_cfg = SchedConfig {
        policy: PlacementPolicy::LeastLoaded,
        max_in_flight: 2,
        hysteresis: 0.25,
        cooldown: SimDuration::from_secs(600),
        src_cfg: SourceConfig {
            precopy_threshold_pages: 64,
            ..SourceConfig::new(Technique::Agile)
        },
        verify_content: false,
        ..SchedConfig::new(SourceConfig::new(Technique::Agile))
    };
    sched::arm_scheduler(&mut sim, managed.clone(), sched_cfg);

    // Each VM's whole reservation script is one signal: a single-step
    // ramp to its precomputed jittered target (hot racks overflow the
    // packed hosts, cold racks don't), summed with a second single-step
    // ramp at spill time that contracts every reservation to the common
    // spill target — shrinking below residency evicts `SPILL_PAGES`
    // pages per VM through the VMD client to the spine servers, the swap
    // stream that crosses the rack trunk.
    let spill_target = RESV_START - u64::from(SPILL_PAGES) * page;
    let ramp_at = SimTime::from_secs(cfg.ramp_start_secs);
    let spill_at = SimTime::from_secs(cfg.spill_start_secs);
    let one_step = SimDuration::from_secs(1);
    let bindings: Vec<(usize, Signal)> = vms
        .iter()
        .zip(&targets)
        .map(|(&vm, &target)| {
            let to_target = Signal::ramp(ramp_at, one_step, 1, RESV_START as f64, target as f64);
            let contraction = Signal::ramp(
                spill_at,
                one_step,
                1,
                0.0,
                spill_target as f64 - target as f64,
            );
            (vm, to_target.sum(contraction))
        })
        .collect();
    super::schedule_step_signals(
        &mut sim,
        bindings,
        SimTime::from_nanos(u64::MAX),
        |sim, vm, v| {
            if sim.state().vms[vm].migration.is_some() {
                return;
            }
            set_reservation(sim, vm, v as u64);
        },
    );

    let tick = SimDuration::from_secs(cfg.report_interval_secs.max(1));
    let first = managed.clone();
    sim.schedule_at(SimTime::ZERO + tick, move |sim| {
        report_tick(sim, tick, first)
    });

    RackSetup {
        sim,
        managed,
        rack_id: tor,
        hot,
    }
}

/// The per-rack convergence predicate (same shape as multihost):
/// rebalanced and quiescent after the ramp, or out of time.
fn rack_converged(
    sim: &Simulation<World>,
    managed: &[ManagedHost],
    ramp_end: SimTime,
    deadline: SimTime,
) -> bool {
    let w = sim.state();
    let s = w.sched.as_ref().expect("scheduler armed");
    let below = managed
        .iter()
        .all(|mh| sched::host_aggregate(w, mh.host) <= mh.trigger.high_bytes);
    let quiescent =
        s.queue.is_empty() && s.inflight.is_empty() && w.migrations.iter().all(|m| m.finished);
    (sim.now() > ramp_end && below && quiescent) || sim.now() >= deadline
}

/// Run one datacenter scenario.
pub fn run(cfg: &DatacenterConfig) -> DatacenterResult {
    assert!(cfg.racks >= 1);
    let seq = SeedSequence::new(cfg.seed);
    let mut meta = Vec::with_capacity(cfg.racks);
    let mut worlds = Vec::with_capacity(cfg.racks);
    for rack in 0..cfg.racks {
        let s = build_rack(cfg, rack, &seq);
        meta.push((s.managed, s.rack_id, s.hot));
        worlds.push(s.sim);
    }
    // The script is only over once both the growth ramp and the spill
    // have fired.
    let ramp_end = SimTime::from_secs(cfg.ramp_start_secs.max(cfg.spill_start_secs));
    let deadline = SimTime::from_secs(cfg.deadline_secs);
    let lookahead = SimDuration::from_secs(cfg.lookahead_secs.max(1));

    let mut sharded = ShardedRun::new(worlds, lookahead);
    let mut coord = DatacenterCoordinator::new(cfg.racks);
    let t0 = Instant::now();
    let stats = sharded.run(cfg.workers, deadline, &mut coord, |i, sim| {
        rack_converged(sim, &meta[i].0, ramp_end, deadline)
    });
    let wall = t0.elapsed();

    let worlds = sharded.into_worlds();
    let hosts = cfg.racks * cfg.hosts_per_rack;
    let vms = cfg.racks * (cfg.hosts_per_rack / 2).max(1) * cfg.vms_per_packed_host;

    let mut report = String::new();
    let mut migrations = 0u64;
    let mut events_executed = 0u64;
    let mut sim_secs = 0f64;
    let mut all_converged = true;
    {
        use std::fmt::Write;
        let _ = writeln!(report, "# datacenter report");
        let _ = writeln!(
            report,
            "seed={} racks={} hosts_per_rack={} vms_per_packed_host={} hot_every={} \
             uplink_gbps={:?} lookahead_s={} report_interval_s={} deadline_s={}",
            cfg.seed,
            cfg.racks,
            cfg.hosts_per_rack,
            cfg.vms_per_packed_host,
            cfg.hot_every,
            cfg.uplink_gbps,
            cfg.lookahead_secs,
            cfg.report_interval_secs,
            cfg.deadline_secs,
        );
        let _ = writeln!(report, "racks:");
        for (i, sim) in worlds.iter().enumerate() {
            let (managed, rack_id, hot) = &meta[i];
            let w = sim.state();
            let s = w.sched.as_ref().expect("scheduler armed");
            let started = w.migrations.len() as u64;
            let finished = w.migrations.iter().filter(|m| m.finished).count() as u64;
            let max_vm = s.times_migrated.iter().copied().max().unwrap_or(0);
            let final_hot = managed
                .iter()
                .filter(|mh| sched::host_aggregate(w, mh.host) > mh.trigger.high_bytes)
                .count();
            let converged = rack_converged(sim, managed, ramp_end, deadline)
                && sim.now() < deadline
                && final_hot == 0;
            let _ = writeln!(
                report,
                "  rack={i} hot={hot} migrations={started} finished={finished} \
                 max_vm_migrations={max_vm} final_hot_hosts={final_hot} \
                 trunk_up_bytes={} trunk_down_bytes={} signals={} events={} converged={converged}",
                w.net.rack_up_bytes(*rack_id),
                w.net.rack_down_bytes(*rack_id),
                w.boundary.signals.len(),
                sim.events_executed(),
            );
            migrations += started;
            events_executed += sim.events_executed();
            sim_secs = sim_secs.max(sim.now().as_nanos() as f64 / 1e9);
            all_converged &= converged;
        }
        let _ = writeln!(
            report,
            "cluster: hosts={hosts} vms={vms} migrations={migrations} epochs={} \
             signals_sent={} events_executed={events_executed} converged={all_converged}",
            stats.epochs, coord.signals_sent,
        );
    }

    DatacenterResult {
        report,
        converged: all_converged,
        racks: cfg.racks,
        hosts,
        vms,
        migrations,
        epochs: stats.epochs,
        events_executed,
        sim_secs,
        wall: WallStats {
            wall_secs: wall.as_secs_f64(),
            busy_secs: stats.busy_total().as_secs_f64(),
            critical_path_secs: stats.critical_path.as_secs_f64(),
            available_parallelism: stats.available_parallelism(),
            workers: cfg.workers,
            host_cpus: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_datacenter_converges_and_hot_racks_migrate() {
        let cfg = DatacenterConfig::small();
        let r = run(&cfg);
        assert!(r.converged, "report:\n{}", r.report);
        assert!(r.migrations > 0, "hot racks must rebalance");
        // Cold racks (odd index with hot_every=2) must not migrate and
        // hot racks must; the report carries one line per rack.
        for (i, line) in r
            .report
            .lines()
            .filter(|l| l.trim_start().starts_with("rack="))
            .enumerate()
        {
            let hot = i % 2 == 0;
            assert!(line.contains(&format!("hot={hot}")), "{line}");
            if !hot {
                assert!(line.contains("migrations=0"), "{line}");
            } else {
                assert!(!line.contains("migrations=0"), "{line}");
            }
        }
        // Boundary traffic flowed both ways: every rack got signals.
        for line in r.report.lines().filter(|l| l.contains("signals=")) {
            assert!(!line.contains("signals=0"), "{line}");
        }
    }

    #[test]
    fn small_datacenter_is_deterministic_across_worker_counts() {
        let base = run(&DatacenterConfig::small());
        for workers in [2, 4] {
            let cfg = DatacenterConfig {
                workers,
                ..DatacenterConfig::small()
            };
            let r = run(&cfg);
            assert_eq!(base.report, r.report, "workers={workers}");
            assert_eq!(base.events_executed, r.events_executed);
        }
    }
}
