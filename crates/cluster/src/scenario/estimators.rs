//! WSS-estimator accuracy A/B: swap-I/O vs simulated-PML vs ground truth.
//!
//! The paper's iostat estimator (§IV-D) only sees a working set once it
//! *swaps* — a guest whose resident demand grows while still under its
//! reservation reads as zero swap rate, so the α/β/τ controller keeps
//! shrinking toward the floor and the watermark scheduler's WSS samples
//! stay flat until the guest is already thrashing. This scenario runs
//! the *same* workload twice, once per estimator, with the ground-truth
//! epoch oracle armed in both arms:
//!
//! * Three YCSB guests packed on one host ramp their active window from
//!   well under to well over the reservation floor over two minutes
//!   (plus a small diurnal wobble), with **no preload**: the ramp is
//!   demand-filled by minor faults, so for the first `no_swap_secs`
//!   there is genuinely zero swap traffic to observe.
//! * The **swap-I/O arm** tracks reservations with the legacy monitor +
//!   controller; [`crate::wssctl::arm_oracle`] additionally arms the
//!   memory image's epoch tracker so every tick also logs the exact
//!   distinct-pages-touched truth without perturbing the arithmetic.
//! * The **PML arm** tracks the same guests with the dirty-epoch
//!   estimator (512-entry log, overflow → full-scan fallback — at this
//!   scale the overflow path *is* the common path, as on real hardware).
//!
//! Per arm the run reports: per-epoch |estimate − truth| error (mean
//! and log₂-bucket quantiles, split at the no-swap boundary), the first
//! time the estimator *detects* working-set growth (PML: estimate
//! crosses the detect threshold; swap-I/O: rate first exceeds τ), the
//! reservation sizing that resulted, migration-selection differences,
//! and the downstream fault/throughput cost. Equal seeds produce
//! byte-identical reports at any sharded worker count; `BENCH_4.json`
//! pins the headline (PML detects the ramp at least one epoch before
//! swap-I/O, with strictly lower error on the no-swap phase).

use agile_migration::{SourceConfig, Technique};
use agile_sim_core::{FixedHistogram, SimDuration, SimTime, Simulation, GIB, MIB};
use agile_vm::VmConfig;
use agile_workload::driver::{Binding, Knob};
use agile_workload::{Dataset, KeyDist, Signal, WorkloadDriver, YcsbParams, YcsbRedis};
use agile_wss::{ControllerParams, WatermarkTrigger};

use crate::build::{start_all_workloads, ClusterBuilder, SwapKind};
use crate::config::{ClusterConfig, WssEstimatorKind};
use crate::sched::{self, ManagedHost, PlacementPolicy, SchedConfig, SchedCounters};
use crate::shard::{NullCoordinator, ShardedRun};
use crate::wlctl;
use crate::world::{WorkloadKind, World, WssCounters};
use crate::wssctl;

/// One estimator-accuracy run. Everything except `estimator` (and
/// `trace`) must match across the two arms of an A/B.
#[derive(Clone, Debug)]
pub struct EstimatorsConfig {
    /// Which estimator tracks the guests (the oracle runs either way).
    pub estimator: WssEstimatorKind,
    /// Divide every byte quantity by this (1 = paper scale).
    pub scale: u64,
    /// End of the guaranteed-no-swap phase, in seconds: the active ramp
    /// stays under the reservation floor until after this point, so the
    /// swap-I/O estimator has nothing to see. MAE is split here.
    pub no_swap_secs: u64,
    /// Detection threshold at paper scale (divided by `scale`): the
    /// first estimate/rate signal at or above this counts as detection.
    pub detect_bytes: u64,
    /// Fixed run deadline in seconds.
    pub deadline_secs: u64,
    /// Master seed.
    pub seed: u64,
    /// Keep the JSONL trace export in the result (the tracer itself is
    /// always on — the accuracy analysis reads it).
    pub trace: bool,
}

impl Default for EstimatorsConfig {
    fn default() -> Self {
        EstimatorsConfig {
            estimator: WssEstimatorKind::SwapIo,
            scale: 1,
            no_swap_secs: 90,
            detect_bytes: 512 * MIB,
            deadline_secs: 240,
            seed: 42,
            trace: false,
        }
    }
}

/// Everything an estimator run reports. With equal seeds two runs
/// produce byte-identical `report`, `trace_jsonl`, and `metrics_json`
/// at any worker count.
#[derive(Clone, Debug, PartialEq)]
pub struct EstimatorsResult {
    /// The deterministic report.
    pub report: String,
    /// `"swap_io"` or `"pml"` — the arm that ran.
    pub estimator: &'static str,
    /// Mean |estimate − truth| over epochs ending before
    /// `no_swap_secs` (the phase where swap-I/O is blind), in bytes.
    pub mae_no_swap_bytes: u64,
    /// Mean |estimate − truth| over the whole run, in bytes.
    pub mae_total_bytes: u64,
    /// First detection of working-set growth (ns); `u64::MAX` if never.
    /// PML: first estimate ≥ the detect threshold. Swap-I/O: first
    /// sample whose rate exceeds the controller's τ.
    pub detect_ns: u64,
    /// Estimate-vs-truth samples inside the no-swap window.
    pub epochs_no_swap: u64,
    /// Estimate-vs-truth samples over the whole run.
    pub epochs_total: u64,
    /// Guest major faults summed over the tracked VMs (thrashing cost).
    pub major_faults: u64,
    /// Guest minor faults summed over the tracked VMs.
    pub minor_faults: u64,
    /// Completed guest operations summed over the tracked VMs.
    pub completions: u64,
    /// Time-weighted mean reservation across the tracked VMs, in bytes.
    pub reservation_avg_bytes: u64,
    /// Migrations the watermark scheduler started.
    pub migrations: u64,
    /// Start of the first migration (ns); `u64::MAX` if none fired.
    pub first_migration_ns: u64,
    /// Scheduler counters.
    pub counters: SchedCounters,
    /// Estimator-plumbing counters (samples, epoch drains, overflows).
    pub wss_counters: WssCounters,
    /// Metrics-registry JSON export.
    pub metrics_json: String,
    /// Total DES events executed (the determinism fingerprint).
    pub events_executed: u64,
    /// JSONL event trace (`Some` only when `cfg.trace` was set).
    pub trace_jsonl: Option<String>,
}

/// A built, armed estimator world plus its deadline.
struct EstimatorsSetup {
    sim: Simulation<World>,
    vms: Vec<usize>,
    managed: Vec<ManagedHost>,
    deadline: SimTime,
}

/// Run one estimator arm to its deadline.
pub fn run(cfg: &EstimatorsConfig) -> EstimatorsResult {
    let EstimatorsSetup {
        mut sim,
        vms,
        managed,
        deadline,
    } = setup(cfg);
    loop {
        let next = sim.now() + SimDuration::from_secs(5);
        sim.run_until(next.min(deadline));
        if sim.now() >= deadline {
            break;
        }
    }
    finish(sim, cfg, &vms, &managed)
}

/// Run several independent estimator arms as shards of one parallel
/// epoch harness (lookahead = the sequential driver's 5-second slice).
/// Every replica's result is byte-identical to [`run`] of its config at
/// any `workers` count.
pub fn run_replicated(cfgs: &[EstimatorsConfig], workers: usize) -> Vec<EstimatorsResult> {
    assert!(!cfgs.is_empty());
    assert!(
        cfgs.iter()
            .all(|c| c.deadline_secs == cfgs[0].deadline_secs),
        "replicated runs share one deadline (epoch targets must coincide)"
    );
    let mut meta = Vec::with_capacity(cfgs.len());
    let mut worlds = Vec::with_capacity(cfgs.len());
    for cfg in cfgs {
        let s = setup(cfg);
        meta.push((s.vms, s.managed, s.deadline));
        worlds.push(s.sim);
    }
    let deadline = meta[0].2;
    let mut sharded = ShardedRun::new(worlds, SimDuration::from_secs(5));
    sharded.run(workers, deadline, &mut NullCoordinator, |i, sim| {
        sim.now() >= meta[i].2
    });
    sharded
        .into_worlds()
        .into_iter()
        .zip(cfgs)
        .zip(&meta)
        .map(|((sim, cfg), (vms, managed, _))| finish(sim, cfg, vms, managed))
        .collect()
}

/// Run the full A/B (both arms sequentially, same seed) and render the
/// comparison block `BENCH_4.json` is generated from.
pub fn ab_summary(swap: &EstimatorsResult, pml: &EstimatorsResult) -> String {
    use std::fmt::Write;
    assert_eq!(swap.estimator, "swap_io");
    assert_eq!(pml.estimator, "pml");
    let mut s = String::new();
    let _ = writeln!(s, "# estimator A/B (pml vs swap_io)");
    let _ = writeln!(
        s,
        "mae_no_swap_bytes: pml={} swap_io={} delta={}",
        pml.mae_no_swap_bytes,
        swap.mae_no_swap_bytes,
        pml.mae_no_swap_bytes as i128 - swap.mae_no_swap_bytes as i128,
    );
    let _ = writeln!(
        s,
        "mae_total_bytes: pml={} swap_io={} delta={}",
        pml.mae_total_bytes,
        swap.mae_total_bytes,
        pml.mae_total_bytes as i128 - swap.mae_total_bytes as i128,
    );
    let _ = writeln!(
        s,
        "detect_ns: pml={} swap_io={} delta={}",
        pml.detect_ns,
        swap.detect_ns,
        pml.detect_ns as i128 - swap.detect_ns as i128,
    );
    let _ = writeln!(
        s,
        "migrations: pml={} swap_io={} first_ns: pml={} swap_io={}",
        pml.migrations, swap.migrations, pml.first_migration_ns, swap.first_migration_ns,
    );
    let _ = writeln!(
        s,
        "major_faults: pml={} swap_io={}",
        pml.major_faults, swap.major_faults,
    );
    let _ = writeln!(
        s,
        "completions: pml={} swap_io={}",
        pml.completions, swap.completions,
    );
    let _ = writeln!(
        s,
        "reservation_avg_bytes: pml={} swap_io={}",
        pml.reservation_avg_bytes, swap.reservation_avg_bytes,
    );
    s
}

/// Build the world: one packed host, one spare destination, three
/// ramping YCSB guests, estimator-tracked reservations, the ground-truth
/// oracle, and the watermark scheduler.
fn setup(cfg: &EstimatorsConfig) -> EstimatorsSetup {
    let sc = cfg.scale.max(1);
    let host_mem = 10240 * MIB / sc;
    let host_os = 256 * MIB / sc;
    let vm_mem = 4096 * MIB / sc;
    let guest_os = 256 * MIB / sc;
    let dataset_bytes = 2560 * MIB / sc;
    let resv_init = 2304 * MIB / sc;
    // The operator floor: the α-shrink converges here while the rate
    // reads zero, and the no-swap phase is exactly the ramp staying
    // under it (minus guest-OS overhead).
    let resv_floor = 2048 * MIB / sc;
    // Active window: ramp from idle to just under the dataset over
    // [10 s, 130 s] (then hold), plus a small diurnal wobble. The ramp
    // crosses the reservation floor around t ≈ 100 s > `no_swap_secs`.
    let active_lo = 256 * MIB / sc;
    let active_hi = 2304 * MIB / sc;
    let diurnal_amp = 128 * MIB / sc;
    // Closed loop: 4 threads × ~0.25 ms think sweeps the active window
    // inside one 4 s PML epoch (the estimator measures what the guest
    // *touches* — too slow a loop and per-epoch distinct pages read the
    // op rate, not the window, and the sized reservation undercuts the
    // demand it is supposed to admit).
    let think_base_ns: u64 = 250_000;

    let cluster_cfg = ClusterConfig {
        seed: cfg.seed,
        wss_estimator: cfg.estimator,
        pml_epoch: SimDuration::from_secs(4),
        ..ClusterConfig::default()
    };
    let page = cluster_cfg.page_size;
    let pml_log_cap = cluster_cfg.pml_log_cap as usize;
    let mut b = ClusterBuilder::new(cluster_cfg);

    let packed = b.add_host("host0", host_mem, host_os, false);
    let spare = b.add_host("host1", host_mem, host_os, false);
    let client_host = b.add_host("client", 4 * GIB / sc, host_os, false);
    let im = b.add_host("intermediate", 16 * GIB / sc, host_os, false);
    b.add_vmd_server(im, 12 * GIB / sc, 0);
    b.ensure_vmd_client(packed);
    b.ensure_vmd_client(spare);

    // Three identical guests, demand-filled (no preload): until the
    // ramp outgrows the floor nothing ever reaches the swap device.
    let mut vms = Vec::new();
    for _ in 0..3usize {
        let vm = b.add_vm(
            packed,
            VmConfig {
                mem_bytes: vm_mem,
                page_size: page,
                vcpus: 2,
                reservation_bytes: resv_init,
                guest_os_bytes: guest_os,
            },
            SwapKind::PerVmVmd,
        );
        let index_pages = ((dataset_bytes / 50) / page).max(4) as u32;
        let data_pages = (dataset_bytes / page) as u32;
        let (index_region, data_region) = {
            let world = b.world_mut();
            let layout = world.vms[vm].vm.layout_mut();
            let idx = layout.alloc_region("redis-index", index_pages);
            let dat = layout.alloc_region("redis-data", data_pages);
            (idx, dat)
        };
        let dataset = Dataset::new(data_region, dataset_bytes / 1024, 1024, page);
        let model = YcsbRedis::new(
            dataset,
            index_region,
            KeyDist::UniformPrefix,
            YcsbParams {
                client_threads: 4,
                ..YcsbParams::default()
            },
        );
        b.attach_workload(vm, client_host, WorkloadKind::Ycsb(model));
        b.enable_os_background(vm);
        vms.push(vm);
    }

    let mut sim = b.build();
    // The tracer is always on here: the accuracy analysis folds the
    // `wss_estimate`/`wss_sample` stream. `cfg.trace` only gates whether
    // the JSONL export is kept in the result.
    sim.state_mut().trace = agile_trace::Tracer::with_capacity(1 << 18);

    let mut bindings = Vec::new();
    for (i, &vm) in vms.iter().enumerate() {
        let phase = SimDuration::from_secs(7 * i as u64);
        let active = Signal::ramp(
            SimTime::from_secs(10),
            SimDuration::from_secs(2),
            60,
            active_lo as f64,
            active_hi as f64,
        )
        .sum(Signal::diurnal(
            SimDuration::from_secs(60),
            diurnal_amp as f64,
            phase,
        ));
        bindings.push(Binding {
            vm,
            knob: Knob::ActiveBytes,
            signal: active.clamp((128 * MIB / sc) as f64, dataset_bytes as f64),
        });
        bindings.push(Binding {
            vm,
            knob: Knob::ThinkNanos {
                base_ns: think_base_ns,
            },
            signal: Signal::constant(1.0),
        });
    }
    wlctl::arm_driver(
        &mut sim,
        WorkloadDriver::new(bindings),
        SimDuration::from_secs(2),
    );
    start_all_workloads(&mut sim, SimTime::from_secs(1));

    // Estimator-tracked reservations (the arm under test), plus the
    // ground-truth oracle on the swap-I/O arm (the PML arm's tracker is
    // already armed by `enable_tracking`).
    let params = ControllerParams::paper(resv_floor, vm_mem);
    for &vm in &vms {
        wssctl::enable_tracking(&mut sim, vm, params, SimTime::from_secs(2));
        if cfg.estimator == WssEstimatorKind::SwapIo {
            wssctl::arm_oracle(&mut sim, vm, pml_log_cap);
        }
    }

    let managed: Vec<ManagedHost> = [packed, spare]
        .iter()
        .map(|&h| ManagedHost {
            host: h,
            trigger: WatermarkTrigger::fractions(
                sim.state().hosts[h].mem.available_for_vms(),
                0.55,
                0.72,
            ),
        })
        .collect();
    let sched_cfg = SchedConfig {
        policy: PlacementPolicy::LeastLoaded,
        max_in_flight: 1,
        hysteresis: 0.25,
        cooldown: SimDuration::from_secs(600),
        src_cfg: SourceConfig {
            precopy_threshold_pages: (9_000 / sc as u32).max(64),
            ..SourceConfig::new(Technique::Agile)
        },
        verify_content: true,
        ..SchedConfig::new(SourceConfig::new(Technique::Agile))
    };
    sched::arm_scheduler(&mut sim, managed.clone(), sched_cfg);

    EstimatorsSetup {
        sim,
        vms,
        managed,
        deadline: SimTime::from_secs(cfg.deadline_secs),
    }
}

/// Disarm everything, fold the estimate-vs-truth stream, and assemble
/// the deterministic result.
fn finish(
    mut sim: Simulation<World>,
    cfg: &EstimatorsConfig,
    vms: &[usize],
    managed: &[ManagedHost],
) -> EstimatorsResult {
    sched::disarm_scheduler(&mut sim);
    wlctl::disarm_driver(&mut sim);

    let sc = cfg.scale.max(1);
    let detect_bytes = cfg.detect_bytes / sc;
    let tau_kbps = ControllerParams::paper(0, u64::MAX).tau_kbps;
    let no_swap_ns = SimTime::from_secs(cfg.no_swap_secs).as_nanos();
    let deadline = SimTime::from_secs(cfg.deadline_secs);
    let events_executed = sim.events_executed();
    let w = sim.state();
    let s = w.sched.as_ref().expect("scheduler armed");
    let estimator = match cfg.estimator {
        WssEstimatorKind::SwapIo => "swap_io",
        WssEstimatorKind::Pml => "pml",
    };

    // Fold the trace: per-epoch |estimate − truth| (histograms observe
    // error *bytes* through the nanosecond-keyed log₂ buckets — same
    // data-independent layout, quantiles read as byte ceilings) and the
    // arm's detection time.
    let mut err_hist_no_swap = FixedHistogram::new();
    let mut err_hist_total = FixedHistogram::new();
    let (mut sum_no_swap, mut n_no_swap) = (0u128, 0u64);
    let (mut sum_total, mut n_total) = (0u128, 0u64);
    let mut detect_ns = u64::MAX;
    for (t, ev) in w.trace.events() {
        match *ev {
            agile_trace::TraceEvent::WssEstimate {
                est_bytes,
                truth_bytes,
                ..
            } => {
                let err = est_bytes.abs_diff(truth_bytes);
                err_hist_total.observe(SimDuration::from_nanos(err));
                sum_total += err as u128;
                n_total += 1;
                if t.as_nanos() < no_swap_ns {
                    err_hist_no_swap.observe(SimDuration::from_nanos(err));
                    sum_no_swap += err as u128;
                    n_no_swap += 1;
                }
                if cfg.estimator == WssEstimatorKind::Pml
                    && detect_ns == u64::MAX
                    && est_bytes >= detect_bytes
                {
                    detect_ns = t.as_nanos();
                }
            }
            agile_trace::TraceEvent::WssSample { rate_kbps, .. }
                if cfg.estimator == WssEstimatorKind::SwapIo
                    && detect_ns == u64::MAX
                    && rate_kbps > tau_kbps =>
            {
                detect_ns = t.as_nanos();
            }
            _ => {}
        }
    }
    let mae_no_swap_bytes = (sum_no_swap / u128::from(n_no_swap.max(1))) as u64;
    let mae_total_bytes = (sum_total / u128::from(n_total.max(1))) as u64;

    // Time-weighted mean reservation across the tracked VMs (integer
    // arithmetic: Σ bytes·ns / Σ ns, piecewise-constant between samples).
    let mut resv_weighted = 0u128;
    let mut resv_span = 0u128;
    let (mut major_faults, mut minor_faults, mut completions) = (0u64, 0u64, 0u64);
    for &vm in vms {
        let slot = &w.vms[vm];
        let c = slot.vm.memory().counters();
        major_faults += c.major_faults;
        minor_faults += c.minor_faults;
        completions += slot.meter.total();
        let pts = slot.reservation_series.points();
        for (i, &(t, v)) in pts.iter().enumerate() {
            let end = pts
                .get(i + 1)
                .map(|&(t2, _)| t2)
                .unwrap_or(deadline)
                .min(deadline);
            if end > t {
                let span = (end.as_nanos() - t.as_nanos()) as u128;
                resv_weighted += (v as u64) as u128 * span;
                resv_span += span;
            }
        }
    }
    let reservation_avg_bytes = (resv_weighted / resv_span.max(1)) as u64;

    let migs: Vec<(usize, usize, usize, u64)> = w
        .migrations
        .iter()
        .map(|m| {
            (
                m.vm,
                m.source_host,
                m.dest_host,
                m.src.metrics().started_at.as_nanos(),
            )
        })
        .collect();
    let first_migration_ns = migs.iter().map(|&(_, _, _, t)| t).min().unwrap_or(u64::MAX);
    let metrics_json = crate::report::metrics_registry(w).to_json();

    let mut report = String::new();
    {
        use std::fmt::Write;
        let _ = writeln!(report, "# wss estimator accuracy report");
        let _ = writeln!(
            report,
            "seed={} scale={} estimator={} no_swap_secs={} detect_bytes={} deadline={}",
            cfg.seed, sc, estimator, cfg.no_swap_secs, detect_bytes, cfg.deadline_secs,
        );
        let _ = writeln!(report, "watermarks:");
        for mh in managed {
            let _ = writeln!(
                report,
                "  host{} low={} high={}",
                mh.host, mh.trigger.low_bytes, mh.trigger.high_bytes
            );
        }
        let _ = writeln!(
            report,
            "accuracy: epochs_no_swap={} mae_no_swap_bytes={} epochs_total={} mae_total_bytes={}",
            n_no_swap, mae_no_swap_bytes, n_total, mae_total_bytes,
        );
        let _ = writeln!(
            report,
            "error_quantiles_no_swap: p50<={} p90<={} max={}",
            err_hist_no_swap.quantile_ceil_ns(0.50),
            err_hist_no_swap.quantile_ceil_ns(0.90),
            err_hist_no_swap.max_ns(),
        );
        let _ = writeln!(
            report,
            "error_quantiles_total: p50<={} p90<={} max={}",
            err_hist_total.quantile_ceil_ns(0.50),
            err_hist_total.quantile_ceil_ns(0.90),
            err_hist_total.max_ns(),
        );
        let _ = writeln!(report, "detect_ns={detect_ns}");
        let _ = writeln!(
            report,
            "reservations: avg_bytes={} samples={} epoch_drains={} pml_overflows={}",
            reservation_avg_bytes,
            w.wss_counters.samples,
            w.wss_counters.epoch_drains,
            w.wss_counters.pml_overflows,
        );
        let _ = writeln!(
            report,
            "guest: major_faults={major_faults} minor_faults={minor_faults} \
             completions={completions}",
        );
        let _ = writeln!(report, "migrations:");
        for (i, &(vm, src, dest, start_ns)) in migs.iter().enumerate() {
            let _ = writeln!(
                report,
                "  mig={i} vm={vm} src={src} dest={dest} start_ns={start_ns}"
            );
        }
        let c = s.counters;
        let _ = writeln!(
            report,
            "counters: started={} queued={} deferred_no_dest={} completed={}",
            c.started, c.queued, c.deferred_no_dest, c.completed,
        );
        let _ = writeln!(
            report,
            "totals: migrations={} trace_dropped={} events_executed={}",
            migs.len(),
            w.trace.dropped(),
            events_executed,
        );
    }

    EstimatorsResult {
        report,
        estimator,
        mae_no_swap_bytes,
        mae_total_bytes,
        detect_ns,
        epochs_no_swap: n_no_swap,
        epochs_total: n_total,
        major_faults,
        minor_faults,
        completions,
        reservation_avg_bytes,
        migrations: migs.len() as u64,
        first_migration_ns,
        counters: s.counters,
        wss_counters: w.wss_counters,
        metrics_json,
        events_executed,
        trace_jsonl: cfg.trace.then(|| w.trace.to_jsonl()),
    }
}
