//! §V-D — transparent working-set tracking (Figures 9–10).
//!
//! A single 5 GB VM holds a 1.5 GB Redis dataset queried by an external
//! YCSB client. The tracking tool samples the per-VM swap device's I/O
//! rate and multiplicatively adjusts the cgroup reservation
//! (α = 0.95, β = 1.03, τ = 4 KB/s; 2 s fast interval, 30 s once stable).
//! Figure 9 plots the reservation converging onto the true working set;
//! Figure 10 plots the client's throughput through the transients.

use agile_sim_core::{SimTime, GIB, MIB};
use agile_vm::VmConfig;
use agile_workload::{Dataset, KeyDist, YcsbParams, YcsbRedis};
use agile_wss::ControllerParams;

use crate::build::{start_all_workloads, ClusterBuilder, SwapKind};
use crate::config::ClusterConfig;
use crate::world::WorkloadKind;
use crate::wssctl;

/// Configuration (defaults = the paper's §V-D setup).
#[derive(Clone, Copy, Debug)]
pub struct WssScenarioConfig {
    /// Divide every byte quantity by this (1 = paper scale).
    pub scale: u64,
    /// Simulated duration in seconds.
    pub duration_secs: u64,
    /// When tracking starts.
    pub track_from_secs: u64,
    /// Shrink factor α.
    pub alpha: f64,
    /// Grow factor β.
    pub beta: f64,
    /// Swap-rate threshold τ in KB/s.
    pub tau_kbps: f64,
    /// Master seed.
    pub seed: u64,
}

impl Default for WssScenarioConfig {
    fn default() -> Self {
        WssScenarioConfig {
            scale: 1,
            duration_secs: 700,
            track_from_secs: 20,
            alpha: 0.95,
            beta: 1.03,
            tau_kbps: 4.0,
            seed: 42,
        }
    }
}

/// Result bundle.
#[derive(Clone, Debug)]
pub struct WssScenarioResult {
    /// `(seconds, reservation bytes)` — Fig. 9's tracked line.
    pub reservation_series: Vec<(f64, f64)>,
    /// The true working set (active dataset + index + guest OS), the
    /// reference line of Fig. 9.
    pub true_wss_bytes: u64,
    /// Per-second YCSB throughput — Fig. 10.
    pub throughput_series: Vec<(u64, f64)>,
    /// Final reservation.
    pub final_reservation: u64,
}

/// Run the scenario.
pub fn run(cfg: &WssScenarioConfig) -> WssScenarioResult {
    let sc = cfg.scale.max(1);
    let host_mem = 128 * GIB / sc;
    let host_os = 300 * MIB / sc;
    let vm_mem = 5 * GIB / sc;
    let dataset_bytes = 3 * GIB / 2 / sc; // 1.5 GiB
    let guest_os = 300 * MIB / sc;

    let cluster_cfg = ClusterConfig {
        seed: cfg.seed,
        ..ClusterConfig::default()
    };
    let page = cluster_cfg.page_size;
    let mut b = ClusterBuilder::new(cluster_cfg);
    let host = b.add_host("host", host_mem, host_os, true);
    let client_host = b.add_host("client", 8 * GIB / sc, host_os, false);
    let im = b.add_host("intermediate", 64 * GIB / sc, host_os, false);
    b.add_vmd_server(im, 48 * GIB / sc, 0);

    let vm = b.add_vm(
        host,
        VmConfig {
            mem_bytes: vm_mem,
            page_size: page,
            vcpus: 2,
            reservation_bytes: vm_mem, // starts at the full VM size
            guest_os_bytes: guest_os,
        },
        SwapKind::PerVmVmd,
    );
    let index_pages = ((dataset_bytes / 50) / page).max(4) as u32;
    let data_pages = (dataset_bytes / page) as u32;
    let (index_region, data_region) = {
        let world = b.world_mut();
        let layout = world.vms[vm].vm.layout_mut();
        let idx = layout.alloc_region("redis-index", index_pages);
        let dat = layout.alloc_region("redis-data", data_pages);
        (idx, dat)
    };
    let dataset = Dataset::new(data_region, dataset_bytes / 1024, 1024, page);
    let model = YcsbRedis::new(
        dataset,
        index_region,
        KeyDist::UniformPrefix,
        YcsbParams::default(),
    );
    // The guest's working set: the queried dataset, the Redis index, and
    // the *hot* portion of the OS region (the background generator touches
    // 90% / 10% hotspot-style; the cold OS tail is not working set).
    let true_wss_bytes = dataset_bytes + index_pages as u64 * page + guest_os / 10;
    b.attach_workload(vm, client_host, WorkloadKind::Ycsb(model));
    b.enable_os_background(vm);
    b.preload_layout(vm);

    let mut sim = b.build();
    start_all_workloads(&mut sim, SimTime::from_secs(1));
    wssctl::enable_tracking(
        &mut sim,
        vm,
        ControllerParams {
            alpha: cfg.alpha,
            beta: cfg.beta,
            tau_kbps: cfg.tau_kbps,
            ..ControllerParams::paper(64 * MIB / sc, vm_mem)
        },
        SimTime::from_secs(cfg.track_from_secs),
    );
    sim.run_until(SimTime::from_secs(cfg.duration_secs));

    let world = sim.state();
    let reservation_series: Vec<(f64, f64)> = world.vms[vm]
        .reservation_series
        .points()
        .iter()
        .map(|(t, v)| (t.as_secs_f64(), *v))
        .collect();
    let throughput_series = world.vms[vm].meter.rates();
    WssScenarioResult {
        reservation_series,
        true_wss_bytes,
        throughput_series,
        final_reservation: world.vms[vm].vm.memory().limit_bytes(),
    }
}
