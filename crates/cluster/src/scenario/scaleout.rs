//! Rapid scale-out: streamed (post-copy style) VM cloning off a
//! copy-on-write namespace fork versus classic full pre-copy cloning.
//!
//! A gold-image master VM is sealed (whole image swapped out to its
//! portable VMD namespace), a flash-crowd load signal crosses the clone
//! controller's high watermark, and N clones spawn across the
//! destination hosts — each a metadata fork of the master namespace
//! sharing every stored page read-only. The A/B axis is
//! [`CloneArm`]:
//!
//! * **Streamed** — clones serve immediately, demand-paging from the
//!   shared image while a slow background pump hydrates the rest. When
//!   the crowd decays under the low watermark the clones are torn down
//!   with most of the image never transferred — that cancelled
//!   hydration is the aggregate-fabric-bytes win.
//! * **Precopy** — each clone pulls its entire image through the fabric
//!   before taking traffic: time-to-first-page-served pays the full
//!   copy, and the fabric carries `clones × image` bytes no matter how
//!   short-lived the crowd is.
//!
//! A bystander VM swaps steadily through the same VMD servers in both
//! arms; its completed-request count exposes how hard each cloning
//! strategy's fabric burst interferes with unrelated tenants.
//!
//! Knobs: `upgrade` lands the first clone on the master's own host and
//! purges the master namespace once the fleet is up (zero-downtime
//! in-place host upgrade — shared pages survive through the fork
//! refcounts); `chaos` crashes one of the two replica servers
//! mid-hydration under `k = 2` replication — nothing may be lost.

use agile_chaos::ChaosSchedule;
use agile_sim_core::{SimDuration, SimTime, Simulation, GIB, MIB};
use agile_vm::VmConfig;
use agile_workload::{Dataset, KeyDist, Signal, YcsbParams, YcsbRedis};

use crate::build::{start_all_workloads, ClusterBuilder, SwapKind};
use crate::clonectl::{self, CloneCtlConfig, HydrationMode};
use crate::config::ClusterConfig;
use crate::shard::{NullCoordinator, ShardedRun};
use crate::world::{WorkloadKind, World};

/// Which cloning strategy an arm runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CloneArm {
    /// Post-copy style: serve immediately, stream the rest slowly.
    Streamed,
    /// Full image pre-copy before the clone takes traffic.
    Precopy,
}

impl CloneArm {
    /// Stable label used in reports and file names.
    pub fn label(self) -> &'static str {
        match self {
            CloneArm::Streamed => "streamed",
            CloneArm::Precopy => "precopy",
        }
    }
}

/// One scale-out run.
#[derive(Clone, Debug)]
pub struct ScaleoutConfig {
    /// The cloning strategy under test.
    pub arm: CloneArm,
    /// Flash-crowd size: clones spawned at the peak.
    pub clones: usize,
    /// Destination hosts the clones round-robin across.
    pub dest_hosts: usize,
    /// Divide every byte quantity by this (1 = paper scale).
    pub scale: u64,
    /// Zero-downtime in-place host upgrade: first clone on the master's
    /// host, master namespace purged once the fleet serves.
    pub upgrade: bool,
    /// Crash one replica server mid-hydration under `k = 2`; the run
    /// must lose nothing.
    pub chaos: bool,
    /// Hard deadline for the run.
    pub deadline_secs: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for ScaleoutConfig {
    fn default() -> Self {
        ScaleoutConfig {
            arm: CloneArm::Streamed,
            clones: 16,
            dest_hosts: 4,
            scale: 1,
            upgrade: false,
            chaos: false,
            deadline_secs: 90,
            seed: 42,
        }
    }
}

/// Everything a scale-out run reports. With equal configs two runs
/// produce byte-identical values at any worker count.
#[derive(Clone, Debug, PartialEq)]
pub struct ScaleoutResult {
    /// Deterministic per-run report.
    pub report: String,
    /// Clones spawned.
    pub spawned: u64,
    /// Clones that served at least one request.
    pub ready: u64,
    /// Mean time from spawn to first completed request, ns
    /// (`u64::MAX` when no clone became ready).
    pub ttfps_mean_ns: u64,
    /// Worst time from spawn to first completed request, ns.
    pub ttfps_max_ns: u64,
    /// Time from the first spawn until every clone served, ns.
    pub all_ready_ns: u64,
    /// Clone-attributable fabric bytes: demand faults, hydration reads,
    /// and eviction/CoW write-backs through the clones' VMD devices.
    pub fabric_bytes: u64,
    /// Pages streamed by the background hydration pumps.
    pub hydrated_pages: u64,
    /// Copy-on-write share breaks (first writes to shared pages).
    pub cow_breaks: u64,
    /// Clones fully torn down at the end of the trough.
    pub torn_down: u64,
    /// The in-place upgrade retired the master namespace.
    pub master_purged: bool,
    /// Swap reads that completed with lost content (must be 0 at k=2).
    pub lost_reads: u64,
    /// Bystander VM completed requests (fabric-interference probe).
    pub bystander_ops: u64,
    /// FNV-1a digest over counters and per-clone timelines.
    pub digest: u64,
    /// Total DES events executed (the golden-trace fingerprint).
    pub events_executed: u64,
}

/// A built scale-out world, ready for the sequential or sharded driver.
struct ScaleoutSetup {
    sim: Simulation<World>,
    deadline: SimTime,
    clones: usize,
}

/// The settle predicate at every 5-second boundary: the whole fleet was
/// spawned and torn down again (the flash crowd fully decayed), or out
/// of time.
fn settled(sim: &Simulation<World>, deadline: SimTime, clones: usize) -> bool {
    let done = sim
        .state()
        .clone
        .as_ref()
        .map(|ex| ex.counters.torn_down >= clones as u64)
        .unwrap_or(false);
    done || sim.now() >= deadline
}

/// Build one scale-out run: gold master, destination hosts, two VMD
/// servers, the bystander, and the armed clone controller.
fn setup(cfg: &ScaleoutConfig) -> ScaleoutSetup {
    let sc = cfg.scale.max(1);
    let master_mem = 512 * MIB / sc;
    let guest_os = 64 * MIB / sc;
    let dataset_bytes = 256 * MIB / sc;
    let active_bytes = 16 * MIB / sc;
    let clone_res = master_mem / 2;
    let host_os = 64 * MIB / sc;

    let mut cluster_cfg = ClusterConfig {
        seed: cfg.seed,
        vmd_replication: if cfg.chaos { 2 } else { 1 },
        ..ClusterConfig::default()
    };
    let page = cluster_cfg.page_size;
    cluster_cfg.vmd_detect_delay = SimDuration::from_millis(500);

    let mut b = ClusterBuilder::new(cluster_cfg);
    let gold = b.add_host("gold", 2 * GIB / sc, host_os, false);
    let dests: Vec<usize> = (0..cfg.dest_hosts.max(1))
        .map(|i| b.add_host(&format!("dest{i}"), 2 * GIB / sc, host_os, false))
        .collect();
    let im0 = b.add_host("im0", 2 * GIB / sc, host_os, false);
    let im1 = b.add_host("im1", 2 * GIB / sc, host_os, false);
    let bystander_host = b.add_host("bystander", 512 * MIB / sc, host_os, false);
    let client_host = b.add_host("client", GIB / sc, host_os, false);
    b.add_vmd_server(im0, GIB / sc, 0);
    b.add_vmd_server(im1, GIB / sc, 0);
    // Clone spawns bind through the destination hosts' clients at
    // runtime; the channels must exist at build time.
    for &d in &dests {
        b.ensure_vmd_client(d);
    }

    // The gold master: a passive template — layout carved and preloaded,
    // no workload ever attached (sealing quiesces it for forking).
    let master = b.add_vm(
        gold,
        VmConfig {
            mem_bytes: master_mem,
            page_size: page,
            vcpus: 2,
            reservation_bytes: master_mem,
            guest_os_bytes: guest_os,
        },
        SwapKind::PerVmVmd,
    );
    let index_pages = ((dataset_bytes / 50) / page).max(4) as u32;
    let data_pages = (dataset_bytes / page) as u32;
    let (index_region, data_region) = {
        let world = b.world_mut();
        let layout = world.vms[master].vm.layout_mut();
        let idx = layout.alloc_region("redis-index", index_pages);
        let dat = layout.alloc_region("redis-data", data_pages);
        (idx, dat)
    };
    b.preload_layout(master);

    // The bystander: over-committed, steadily faulting through the same
    // VMD servers in both arms — the interference probe.
    let by_mem = 256 * MIB / sc;
    let by_dataset = 128 * MIB / sc;
    let bystander = b.add_vm(
        bystander_host,
        VmConfig {
            mem_bytes: by_mem,
            page_size: page,
            vcpus: 2,
            reservation_bytes: guest_os + by_dataset / 4,
            guest_os_bytes: guest_os,
        },
        SwapKind::PerVmVmd,
    );
    let (by_index, by_data) = {
        let world = b.world_mut();
        let layout = world.vms[bystander].vm.layout_mut();
        let idx = layout.alloc_region("redis-index", ((by_dataset / 50) / page).max(4) as u32);
        let dat = layout.alloc_region("redis-data", (by_dataset / page) as u32);
        (idx, dat)
    };
    let by_model = YcsbRedis::new(
        Dataset::new(by_data, by_dataset / 1024, 1024, page),
        by_index,
        KeyDist::UniformPrefix,
        YcsbParams {
            client_threads: 2,
            ..YcsbParams::default()
        },
    );
    b.attach_workload(bystander, client_host, WorkloadKind::Ycsb(by_model));
    b.preload_layout(bystander);
    // A paced probe, not a stress source: think time keeps its steady
    // fault stream from dominating the event count while staying
    // latency-sensitive enough to show fabric interference.
    b.world_mut().vms[bystander]
        .client
        .as_mut()
        .expect("bystander client attached")
        .think_ns = 1_000_000;

    let mut sim = b.build();
    start_all_workloads(&mut sim, SimTime::from_secs(1));

    if cfg.chaos {
        // One of the two replica servers dies mid-hydration and rejoins
        // empty; at k = 2 every shared page survives on the other.
        crate::chaosctl::install(
            &mut sim,
            ChaosSchedule::builder()
                .server_outage(1, SimTime::from_secs(6), SimDuration::from_secs(14))
                .build(),
        );
    }

    // Hydration pacing. Streamed: slow enough that the full image takes
    // ~130 s — more than twice the crowd's time above the low watermark
    // — so teardown cancels most of the stream. Precopy: a fast bulk
    // copy gated only by the fabric.
    let preloaded = sim.state().vms[master].vm.memory().pages() as u64;
    let streamed_ppt = (preloaded / 1300).max(1) as u32;
    let hydration = match cfg.arm {
        CloneArm::Streamed => HydrationMode::Streamed {
            pages_per_tick: streamed_ppt,
        },
        CloneArm::Precopy => HydrationMode::Precopy {
            pages_per_tick: 256,
        },
    };
    let hydrate_period = match cfg.arm {
        CloneArm::Streamed => SimDuration::from_millis(100),
        CloneArm::Precopy => SimDuration::from_millis(10),
    };

    let n_clones = cfg.clones;
    let upgrade = cfg.upgrade;
    let dest_hosts = dests.clone();
    let active = active_bytes;
    sim.schedule_at(SimTime::from_secs(2), move |sim| {
        let make_workload = std::rc::Rc::new(move |_clone_idx: usize| {
            // Update-heavy mix: each instance takes writes from the
            // crowd and diverges from the gold image — dirtied shared
            // pages are what the CoW machinery exists for.
            let mut model = YcsbRedis::new(
                Dataset::new(data_region, dataset_bytes / 1024, 1024, page),
                index_region,
                KeyDist::UniformPrefix,
                YcsbParams {
                    client_threads: 2,
                    ..YcsbParams::update_heavy()
                },
            );
            model.set_active_bytes(active);
            WorkloadKind::Ycsb(model)
        });
        clonectl::arm_cloning(
            sim,
            CloneCtlConfig {
                master,
                // 10 ms ticks: ready detection is tick-sampled, and the
                // streamed-vs-precopy time-to-first-page gap is tens to
                // hundreds of milliseconds.
                period: SimDuration::from_millis(10),
                hydrate_period,
                // Flash crowd at t = 5 s, e-folding 20 s: above the high
                // watermark until ~46.6 s, under the low one at ~60.4 s.
                signal: Signal::flash_crowd(SimTime::from_secs(5), 8.0, SimDuration::from_secs(20)),
                high_water: 1.0,
                low_water: 0.5,
                max_clones: n_clones,
                clones_per_tick: 4,
                dest_hosts,
                client_host,
                clone_reservation_bytes: clone_res,
                hydration,
                in_place_upgrade: upgrade,
                // Paced clients: readiness and divergence probes, not a
                // throughput benchmark — keeps the event count flat in
                // the clone count.
                client_think_ns: 1_000_000,
                make_workload,
            },
        );
    });

    // A two-second host memory squeeze mid-crowd trims every live
    // clone's reservation below its dirty working set: the forced
    // write-backs of dirtied shared pages are the first writes that
    // break CoW shares (each clone diverges from the gold image).
    let squeeze = (active_bytes / 2).max(page);
    sim.schedule_at(SimTime::from_secs(30), move |sim| {
        for vm in live_clone_vms(sim) {
            super::set_reservation(sim, vm, squeeze);
        }
    });
    sim.schedule_at(SimTime::from_secs(32), move |sim| {
        for vm in live_clone_vms(sim) {
            super::set_reservation(sim, vm, clone_res);
        }
    });

    ScaleoutSetup {
        sim,
        deadline: SimTime::from_secs(cfg.deadline_secs),
        clones: n_clones,
    }
}

/// VM indices of clones that are still live (not draining or gone), in
/// spawn order — the deterministic iteration order for runtime
/// reservation changes.
fn live_clone_vms(sim: &Simulation<World>) -> Vec<usize> {
    sim.state()
        .clone
        .as_ref()
        .map(|ex| {
            ex.clones
                .iter()
                .filter(|c| !c.torn_down && !c.draining)
                .map(|c| c.vm)
                .collect()
        })
        .unwrap_or_default()
}

/// Run one scale-out arm sequentially.
pub fn run(cfg: &ScaleoutConfig) -> ScaleoutResult {
    let ScaleoutSetup {
        mut sim,
        deadline,
        clones,
    } = setup(cfg);
    loop {
        let next = sim.now() + SimDuration::from_secs(5);
        sim.run_until(next.min(deadline));
        if settled(&sim, deadline, clones) {
            break;
        }
    }
    finish(sim, cfg)
}

/// Run several arms as shards of one parallel epoch harness. Every
/// arm's result is byte-identical to [`run`] at any `workers` count.
pub fn run_replicated(cfgs: &[ScaleoutConfig], workers: usize) -> Vec<ScaleoutResult> {
    assert!(!cfgs.is_empty());
    assert!(
        cfgs.iter()
            .all(|c| c.deadline_secs == cfgs[0].deadline_secs),
        "replicated runs share one deadline (epoch targets must coincide)"
    );
    let mut worlds = Vec::with_capacity(cfgs.len());
    let mut deadlines = Vec::with_capacity(cfgs.len());
    let mut clone_counts = Vec::with_capacity(cfgs.len());
    for cfg in cfgs {
        let s = setup(cfg);
        deadlines.push(s.deadline);
        clone_counts.push(s.clones);
        worlds.push(s.sim);
    }
    let deadline = deadlines[0];
    let mut sharded = ShardedRun::new(worlds, SimDuration::from_secs(5));
    sharded.run(workers, deadline, &mut NullCoordinator, |i, sim| {
        settled(sim, deadlines[i], clone_counts[i])
    });
    sharded
        .into_worlds()
        .into_iter()
        .zip(cfgs)
        .map(|(sim, cfg)| finish(sim, cfg))
        .collect()
}

/// Assemble the deterministic per-run result.
fn finish(sim: Simulation<World>, cfg: &ScaleoutConfig) -> ScaleoutResult {
    let events_executed = sim.events_executed();
    let w = sim.state();
    let ex = w.clone.as_ref().expect("clone controller armed in setup");

    let mut ttfps: Vec<u64> = Vec::new();
    let mut first_spawn: u64 = u64::MAX;
    let mut last_ready: u64 = 0;
    for c in &ex.clones {
        first_spawn = first_spawn.min(c.spawned_at.as_nanos());
        if let Some(r) = c.ready_at {
            ttfps.push(r.as_nanos() - c.spawned_at.as_nanos());
            last_ready = last_ready.max(r.as_nanos());
        }
    }
    let ready = ttfps.len() as u64;
    let ttfps_mean_ns = ttfps
        .iter()
        .sum::<u64>()
        .checked_div(ready)
        .unwrap_or(u64::MAX);
    let ttfps_max_ns = ttfps.iter().copied().max().unwrap_or(u64::MAX);
    let all_ready_ns = if ready == ex.clones.len() as u64 && ready > 0 {
        last_ready - first_spawn
    } else {
        u64::MAX
    };

    // Clone-attributable fabric bytes: every page the cloning machinery
    // moved through a clone's VMD device (demand faults, hydration
    // reads, eviction/CoW write-backs). Server-NIC totals would bury
    // the A/B delta under bystander traffic identical in both arms.
    let fabric_bytes: u64 = ex
        .clones
        .iter()
        .map(|c| {
            let io = w.vms[c.vm].swap.counters();
            io.read_bytes + io.write_bytes
        })
        .sum();
    // The bystander is the last pre-clone VM slot; clones sit after it.
    let bystander_ops = w.vms[1].meter.total();
    let lost_reads = w.chaos.lost_reads;

    let mut digest: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
    let mut fold = |v: u64| {
        digest ^= v;
        digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
    };
    fold(ex.counters.forks);
    fold(ex.counters.spawned);
    fold(ex.counters.ready);
    fold(ex.counters.torn_down);
    fold(ex.counters.cow_breaks);
    fold(ex.counters.hydrated_pages);
    for c in &ex.clones {
        fold(c.spawned_at.as_nanos());
        fold(c.ready_at.map(|t| t.as_nanos()).unwrap_or(u64::MAX));
        fold(c.hydrated_at.map(|t| t.as_nanos()).unwrap_or(u64::MAX));
        fold(u64::from(c.cursor));
    }
    fold(fabric_bytes);
    fold(bystander_ops);
    fold(lost_reads);

    let mut report = String::new();
    {
        use std::fmt::Write;
        let _ = writeln!(
            report,
            "# scaleout arm={} clones={} scale={} upgrade={} chaos={} seed={}",
            cfg.arm.label(),
            cfg.clones,
            cfg.scale.max(1),
            cfg.upgrade,
            cfg.chaos,
            cfg.seed,
        );
        let _ = writeln!(
            report,
            "ready: n={ready} ttfps_mean_ns={ttfps_mean_ns} ttfps_max_ns={ttfps_max_ns} \
             all_ready_ns={all_ready_ns}",
        );
        let _ = writeln!(
            report,
            "fabric: bytes={fabric_bytes} hydrated_pages={} cow_breaks={}",
            ex.counters.hydrated_pages, ex.counters.cow_breaks,
        );
        let _ = writeln!(
            report,
            "teardown: torn_down={} master_purged={} lost_reads={lost_reads}",
            ex.counters.torn_down, ex.master_purged,
        );
        let _ = writeln!(
            report,
            "bystander: ops={bystander_ops} digest={digest:#018x} \
             events_executed={events_executed}",
        );
    }

    ScaleoutResult {
        report,
        spawned: ex.counters.spawned,
        ready,
        ttfps_mean_ns,
        ttfps_max_ns,
        all_ready_ns,
        fabric_bytes,
        hydrated_pages: ex.counters.hydrated_pages,
        cow_breaks: ex.counters.cow_breaks,
        torn_down: ex.counters.torn_down,
        master_purged: ex.master_purged,
        lost_reads,
        bystander_ops,
        digest,
        events_executed,
    }
}
