//! Elastic-pool pressure: donor hosts take their DRAM back while the VMD
//! holds live swap state.
//!
//! Several donor (intermediate) hosts contribute DRAM to the pool; VMs on
//! a separate work host preload datasets larger than their reservations,
//! spilling cold pages into replicated VMD namespaces. A scripted
//! donor-demand ramp (phantom reservations on the donor ledgers — the
//! stand-in for the donors' own workloads growing) then halves the total
//! pool capacity, skewed so one donor keeps almost nothing. The pool
//! manager shrinks the leases, relocates the squeezed donor's pages to
//! donors with headroom, and — once the reclaim backlog drains — the
//! skew-aware rebalancer levels per-server utilization.
//!
//! The run ends when the pool is quiescent (no over-lease backlog, no
//! relocations in flight, no planned rebalance move, no outstanding swap
//! I/O). The result carries a conservation audit: every directory slot
//! must keep its full replica set and every server-side stored page must
//! be accounted to a directory placement — reclaim and rebalance move
//! pages, they never lose or leak them.

use agile_sim_core::{SimDuration, SimTime, Simulation, GIB, MIB};
use agile_vm::VmConfig;
use agile_vmd::NamespaceId;
use agile_workload::Signal;

use crate::build::{ClusterBuilder, SwapKind};
use crate::config::ClusterConfig;
use crate::poolctl::{self, PoolConfig, PoolCounters};
use crate::shard::{NullCoordinator, ShardedRun};
use crate::world::World;

/// One pool-pressure run.
#[derive(Clone, Debug)]
pub struct PressureConfig {
    /// Donor (intermediate) hosts contributing DRAM (≥ 2).
    pub donors: usize,
    /// VMs on the work host, each with a replicated namespace.
    pub vms: usize,
    /// Divide every byte quantity by this (1 = paper scale).
    pub scale: u64,
    /// VMD replication factor.
    pub replication: usize,
    /// Skew the demand ramp (donor 0 keeps almost nothing) instead of
    /// squeezing every donor evenly. Skew is what forces relocations.
    pub skew: bool,
    /// Run the skew-aware rebalancer.
    pub rebalance: bool,
    /// Utilization spread that triggers a rebalance move.
    pub rebalance_threshold: f64,
    /// When the donor-demand ramp fires, in seconds.
    pub ramp_start_secs: u64,
    /// Hard deadline for the run.
    pub deadline_secs: u64,
    /// Crash this VMD server mid-reclaim (racing the relocation pump),
    /// rejoining after 10 s. Requires `replication ≥ 2` for zero loss.
    pub crash_server: Option<u32>,
    /// When the crash fires, in seconds.
    pub crash_at_secs: u64,
    /// Master seed.
    pub seed: u64,
    /// Enable the event tracer (`pool_*` lines in the JSONL export).
    pub trace: bool,
    /// Swap tier stack on every VMD server (legacy Memory+Disk pair by
    /// default). A heat-driven stack with a cheap spill tier flips the
    /// reclaim pump from relocate-first to demote-first (see
    /// `agile_vmd::pool::reclaim_target`).
    pub tiers: agile_vmd::TierStackConfig,
}

impl Default for PressureConfig {
    fn default() -> Self {
        PressureConfig {
            donors: 3,
            vms: 4,
            scale: 1,
            replication: 2,
            skew: true,
            rebalance: true,
            rebalance_threshold: 0.10,
            ramp_start_secs: 5,
            deadline_secs: 300,
            crash_server: None,
            crash_at_secs: 8,
            seed: 42,
            trace: false,
            tiers: agile_vmd::TierStackConfig::legacy(),
        }
    }
}

/// Everything a pressure run reports. With equal seeds two runs produce
/// byte-identical `report`, `trace_jsonl`, and `metrics_json`.
#[derive(Clone, Debug, PartialEq)]
pub struct PressureResult {
    /// The deterministic pool report (leases, counters, audit, spread).
    pub report: String,
    /// Pool quiescent before the deadline.
    pub converged: bool,
    /// Directory slots whose replica set went empty (lost placements).
    pub lost_placements: u64,
    /// Replicas the directory expects, summed over namespaces.
    pub directory_replicas: u64,
    /// Pages actually stored across every server (both tiers).
    pub stored_pages: u64,
    /// Per-namespace `(ns, directory_replicas)`, namespace-sorted.
    pub per_namespace: Vec<(u32, u64)>,
    /// Order-sensitive FNV digest of the directory (ns, slot, replica
    /// order) — byte-equal across runs and across reclaim schedules that
    /// must preserve placement order.
    pub directory_digest: u64,
    /// Final per-server leases, pages, server-id order.
    pub final_leases: Vec<u64>,
    /// Final per-server utilization spread.
    pub final_spread: f64,
    /// Pool action counters.
    pub counters: PoolCounters,
    /// Metrics-registry JSON export.
    pub metrics_json: String,
    /// Total DES events executed (the golden-trace fingerprint).
    pub events_executed: u64,
    /// JSONL event trace (`Some` only when `cfg.trace` was set).
    pub trace_jsonl: Option<String>,
}

/// Conservation audit over the directory and the server stores.
fn audit(w: &World, namespaces: &[NamespaceId]) -> (u64, u64, Vec<(u32, u64)>, u64) {
    let dir = w.vmd.directory.borrow();
    let mut lost = 0u64;
    let mut total = 0u64;
    let mut per_ns = Vec::with_capacity(namespaces.len());
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
    let mut fold = |v: u64| {
        digest ^= v;
        digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for &ns in namespaces {
        let mut ns_total = 0u64;
        for slot in dir.namespace_slots(ns) {
            let reps = dir.replicas(ns, slot);
            if reps.is_empty() {
                lost += 1;
            }
            ns_total += reps.len() as u64;
            fold(u64::from(ns.0));
            fold(u64::from(slot));
            for &s in reps.as_slice() {
                fold(u64::from(s.0) + 1);
            }
        }
        per_ns.push((ns.0, ns_total));
        total += ns_total;
    }
    (lost, total, per_ns, digest)
}

/// A built, armed, ramped pressure world, ready to be driven — either
/// sequentially ([`run`]) or as one shard of a replicated sharded run
/// ([`run_replicated`]). Both drivers advance the world through the same
/// 5-second `run_until` targets, so they produce byte-identical results.
struct PressureSetup {
    sim: Simulation<World>,
    namespaces: Vec<NamespaceId>,
    initial_leases: Vec<u64>,
    ramp_at: SimTime,
    deadline: SimTime,
}

/// The quiescence predicate, evaluated at every 5-second boundary:
/// leases settled, nothing relocating, repairing, or in flight — or out
/// of time.
fn quiescent_now(sim: &Simulation<World>, ramp_at: SimTime, deadline: SimTime) -> bool {
    let w = sim.state();
    let quiescent = !poolctl::reclaim_backlog(w)
        && !poolctl::relocations_inflight(w)
        && !poolctl::rebalance_pending(w)
        && w.chaos.repair_queue.is_empty()
        && w.swap_reqs.is_empty();
    (sim.now() > ramp_at && quiescent) || sim.now() >= deadline
}

/// Run one elastic-pool pressure scenario.
pub fn run(cfg: &PressureConfig) -> PressureResult {
    let PressureSetup {
        mut sim,
        namespaces,
        initial_leases,
        ramp_at,
        deadline,
    } = setup(cfg);
    // Run in slices until the pool is quiescent: leases settled, no
    // reclaim backlog, no relocations or repairs in flight, no planned
    // rebalance move, and every swap I/O drained.
    loop {
        let next = sim.now() + SimDuration::from_secs(5);
        sim.run_until(next.min(deadline));
        if quiescent_now(&sim, ramp_at, deadline) {
            break;
        }
    }
    finish(sim, cfg, &namespaces, &initial_leases, deadline)
}

/// Run several independent pressure scenarios as shards of one parallel
/// epoch harness (lookahead = the sequential driver's 5-second slice).
/// Every replica's result is byte-identical to [`run`] of its config at
/// any `workers` count.
pub fn run_replicated(cfgs: &[PressureConfig], workers: usize) -> Vec<PressureResult> {
    assert!(!cfgs.is_empty());
    assert!(
        cfgs.iter()
            .all(|c| c.deadline_secs == cfgs[0].deadline_secs),
        "replicated runs share one deadline (epoch targets must coincide)"
    );
    let mut meta = Vec::with_capacity(cfgs.len());
    let mut worlds = Vec::with_capacity(cfgs.len());
    for cfg in cfgs {
        let s = setup(cfg);
        meta.push((s.namespaces, s.initial_leases, s.ramp_at, s.deadline));
        worlds.push(s.sim);
    }
    let deadline = meta[0].3;
    let mut sharded = ShardedRun::new(worlds, SimDuration::from_secs(5));
    sharded.run(workers, deadline, &mut NullCoordinator, |i, sim| {
        let (_, _, ramp_at, dl) = &meta[i];
        quiescent_now(sim, *ramp_at, *dl)
    });
    sharded
        .into_worlds()
        .into_iter()
        .zip(cfgs)
        .zip(&meta)
        .map(|((sim, cfg), (namespaces, initial_leases, _, dl))| {
            finish(sim, cfg, namespaces, initial_leases, *dl)
        })
        .collect()
}

/// Build the world: donors, the VMD pool, spilling VMs, the demand ramp.
fn setup(cfg: &PressureConfig) -> PressureSetup {
    assert!(cfg.donors >= 2, "need at least two donor hosts");
    assert!(cfg.vms >= 1);
    let sc = cfg.scale.max(1);
    let donor_mem = 16 * GIB / sc;
    let donor_contrib = 12 * GIB / sc;
    let donor_disk = 16 * GIB / sc;
    let host_os = 300 * MIB / sc;
    let work_mem = 24 * GIB / sc;
    let vm_mem = 4 * GIB / sc;
    let resv = 2304 * MIB / sc; // 2.25 GiB: 1.75 GiB of cold spill per VM
                                // The ramp's post-demand leases: skewed, donor 0 keeps almost nothing
                                // and the rest keep two thirds; even, everyone keeps half. Either way
                                // the total pool capacity roughly halves.
    let lease_target = |donor: usize| -> u64 {
        if !cfg.skew {
            donor_contrib / 2
        } else if donor == 0 {
            2 * GIB / sc
        } else {
            8 * GIB / sc
        }
    };

    let cluster_cfg = ClusterConfig {
        seed: cfg.seed,
        vmd_replication: cfg.replication,
        vmd_tiers: cfg.tiers,
        ..ClusterConfig::default()
    };
    let page = cluster_cfg.page_size;
    let mut b = ClusterBuilder::new(cluster_cfg);

    let donors: Vec<usize> = (0..cfg.donors)
        .map(|i| {
            let h = b.add_host(&format!("donor{i}"), donor_mem, host_os, false);
            b.add_vmd_server(h, donor_contrib, donor_disk);
            h
        })
        .collect();
    let work = b.add_host("work", work_mem, host_os, false);
    let namespaces: Vec<NamespaceId> = (0..cfg.vms)
        .map(|_| {
            let vm = b.add_vm(
                work,
                VmConfig {
                    mem_bytes: vm_mem,
                    page_size: page,
                    vcpus: 2,
                    reservation_bytes: resv,
                    guest_os_bytes: 300 * MIB / sc,
                },
                SwapKind::PerVmVmd,
            );
            b.preload_pages(vm, 0, (vm_mem / page) as u32);
            b.world().vms[vm].swap.namespace().expect("vmd-backed")
        })
        .collect();

    let mut sim = b.build();
    if cfg.trace {
        sim.state_mut().trace = agile_trace::Tracer::with_capacity(1 << 16);
    }
    poolctl::arm_pool(
        &mut sim,
        PoolConfig {
            rebalance: cfg.rebalance,
            rebalance_threshold: cfg.rebalance_threshold,
            ..PoolConfig::default()
        },
    );
    let initial_leases: Vec<u64> = sim
        .state()
        .vmd
        .servers
        .iter()
        .map(|e| e.server.lease_pages())
        .collect();

    // The donor-demand ramp: phantom reservations on each donor's ledger
    // stand in for its own workloads growing. The pool tick samples
    // `available_for_vms - reserved` and shrinks the lease toward the
    // target (slew-limited, so the reclaim pump is never stormed).
    //
    // Expressed as one single-step signal per donor carrying its *lease
    // target*; the firing converts target → phantom demand against the
    // donor's ledger at fire time (so `available_for_vms` is read when
    // the demand materializes, exactly like the historical closure).
    let ramp_at = SimTime::from_secs(cfg.ramp_start_secs);
    {
        let bindings: Vec<((usize, usize), Signal)> = donors
            .iter()
            .enumerate()
            .map(|(i, &h)| {
                let target = lease_target(i);
                (
                    (i, h),
                    Signal::ramp(ramp_at, SimDuration::from_secs(1), 1, 0.0, target as f64),
                )
            })
            .collect();
        super::schedule_step_signals(
            &mut sim,
            bindings,
            SimTime::from_nanos(u64::MAX),
            |sim, (i, h), target| {
                let w = sim.state_mut();
                let avail = w.hosts[h].mem.available_for_vms();
                let demand = avail.saturating_sub(target as u64);
                w.hosts[h].mem.set_reservation(0xD000 + i as u64, demand);
            },
        );
    }
    if let Some(server) = cfg.crash_server {
        assert!(cfg.replication >= 2, "crashing below k=2 loses data");
        crate::chaosctl::install(
            &mut sim,
            agile_chaos::ChaosSchedule::builder()
                .server_outage(
                    server,
                    SimTime::from_secs(cfg.crash_at_secs),
                    SimDuration::from_secs(10),
                )
                .build(),
        );
    }

    let deadline = SimTime::from_secs(cfg.deadline_secs);
    PressureSetup {
        sim,
        namespaces,
        initial_leases,
        ramp_at,
        deadline,
    }
}

/// Disarm the pool and assemble the deterministic result.
fn finish(
    mut sim: Simulation<World>,
    cfg: &PressureConfig,
    namespaces: &[NamespaceId],
    initial_leases: &[u64],
    deadline: SimTime,
) -> PressureResult {
    let sc = cfg.scale.max(1);
    poolctl::disarm_pool(&mut sim);

    let events_executed = sim.events_executed();
    let w = sim.state();
    let converged = sim.now() < deadline;
    let (lost_placements, directory_replicas, per_namespace, directory_digest) =
        audit(w, namespaces);
    let stored_pages: u64 = w.vmd.servers.iter().map(|e| e.server.stored_pages()).sum();
    let final_leases: Vec<u64> = w
        .vmd
        .servers
        .iter()
        .map(|e| e.server.lease_pages())
        .collect();
    let final_spread = poolctl::spread(w);
    let p = w.pool.as_ref().expect("pool armed");
    let counters = p.counters;
    let metrics_json = crate::report::metrics_registry(w).to_json();

    let mut report = String::new();
    {
        use std::fmt::Write;
        let _ = writeln!(report, "# elastic pool pressure report");
        let _ = writeln!(
            report,
            "seed={} scale={} donors={} vms={} k={} skew={} rebalance={} threshold={:?} \
             crash={:?}",
            cfg.seed,
            sc,
            cfg.donors,
            cfg.vms,
            cfg.replication,
            cfg.skew,
            cfg.rebalance,
            cfg.rebalance_threshold,
            cfg.crash_server,
        );
        let _ = writeln!(report, "leases (pages):");
        for (s, (init, fin)) in initial_leases.iter().zip(&final_leases).enumerate() {
            let _ = writeln!(report, "  server{s} initial={init} final={fin}");
        }
        let _ = writeln!(report, "servers:");
        for (s, e) in w.vmd.servers.iter().enumerate() {
            let _ = writeln!(
                report,
                "  server{s} mem={} disk={} free={} alive={}",
                e.server.mem_used_pages(),
                e.server.disk_pages(),
                e.server.free_pages(),
                e.alive,
            );
        }
        let _ = writeln!(report, "namespaces:");
        for &(ns, total) in &per_namespace {
            let _ = writeln!(report, "  ns{ns} directory_replicas={total}");
        }
        let _ = writeln!(
            report,
            "audit: lost_placements={lost_placements} directory_replicas={directory_replicas} \
             stored_pages={stored_pages} digest={directory_digest:#018x}"
        );
        let _ = writeln!(
            report,
            "counters: shrunk={} grown={} relocated={} demoted={} aborted={} rebalances={} \
             throttled={} deferred_shrinks={}",
            counters.leases_shrunk,
            counters.leases_grown,
            counters.pages_relocated,
            counters.pages_demoted,
            counters.relocations_aborted,
            counters.rebalance_moves,
            counters.throttled_flushes,
            counters.deferred_shrinks,
        );
        let _ = writeln!(
            report,
            "spread={final_spread:?} converged={converged} events_executed={events_executed}",
        );
    }

    PressureResult {
        report,
        converged,
        lost_placements,
        directory_replicas,
        stored_pages,
        per_namespace,
        directory_digest,
        final_leases,
        final_spread,
        counters,
        metrics_json,
        events_executed,
        trace_jsonl: cfg.trace.then(|| w.trace.to_jsonl()),
    }
}
