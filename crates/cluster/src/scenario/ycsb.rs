//! §V-A — the YCSB/Redis memory-pressure experiment (Figures 4–6 and the
//! YCSB rows of Tables I–III).
//!
//! Four 10 GB VMs on a 23 GB source host each serve a 9 GB Redis dataset
//! to an external YCSB client. Clients start by querying a 200 MB slice
//! (everything fits); from `ramp_start` on, one client per `ramp_step`
//! widens its window to 6 GB, pushing the aggregate working set past the
//! host's memory — all four VMs thrash on the shared swap device. At
//! `migrate_at` one VM is migrated to the empty destination host; the
//! scripted reservation adjustment (standing in for the paper's manual
//! adjustment) then gives the three remaining VMs enough memory and the
//! average throughput recovers — how fast depends on the technique.

use agile_migration::{SourceConfig, Technique};
use agile_sim_core::{SimDuration, SimTime, GIB, MIB};
use agile_vm::VmConfig;
use agile_workload::{Dataset, KeyDist, YcsbParams, YcsbRedis};

use crate::build::{start_all_workloads, ClusterBuilder, SwapKind};
use crate::config::ClusterConfig;
use crate::migrate;
use crate::report;
use crate::scenario::{rebalance_host, set_ycsb_active_bytes};
use crate::world::WorkloadKind;
use crate::world::World;
use agile_sim_core::Simulation;

/// Configuration (defaults = the paper's §V-A setup).
#[derive(Clone, Copy, Debug)]
pub struct YcsbScenarioConfig {
    /// Migration technique under test.
    pub technique: Technique,
    /// Divide every byte quantity by this (1 = paper scale).
    pub scale: u64,
    /// Number of VMs on the source host.
    pub n_vms: usize,
    /// Simulated duration in seconds.
    pub duration_secs: u64,
    /// First ramp instant (paper: 150 s).
    pub ramp_start_secs: u64,
    /// Interval between ramps (paper: 50 s).
    pub ramp_step_secs: u64,
    /// Migration trigger instant (paper: 400 s).
    pub migrate_at_secs: u64,
    /// YCSB read ratio. The paper's §V-A narrative says "read only", but
    /// its own Table III (pre-copy retransmits 4.7 GB; Agile pushes 2.7 GB
    /// of dirtied pages) implies a substantial update share in the query
    /// phase; 0.65 reproduces those volumes.
    pub read_ratio: f64,
    /// Width of the Table-I measurement window starting at `migrate_at`.
    pub measure_window_secs: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for YcsbScenarioConfig {
    fn default() -> Self {
        YcsbScenarioConfig {
            technique: Technique::Agile,
            scale: 1,
            n_vms: 4,
            duration_secs: 1000,
            ramp_start_secs: 150,
            ramp_step_secs: 50,
            migrate_at_secs: 400,
            read_ratio: 0.65,
            measure_window_secs: 300,
            seed: 42,
        }
    }
}

/// Result bundle.
#[derive(Clone, Debug)]
pub struct YcsbScenarioResult {
    /// Per-second average YCSB throughput across all VMs (Fig. 4/5/6).
    pub series: Vec<(u64, f64)>,
    /// Migration metrics (Tables II–III).
    pub metrics: agile_migration::MigrationMetrics,
    /// Average per-VM ops/s over the migration window (Table I).
    pub avg_during_migration: f64,
    /// Peak (pre-pressure) average throughput, the recovery reference.
    pub peak_reference: f64,
    /// Seconds at which the average recovered to 90% of peak, if it did.
    pub recovery_at_secs: Option<u64>,
    /// Total simulator events executed — the determinism fingerprint.
    pub events_executed: u64,
}

/// Run the scenario.
pub fn run(cfg: &YcsbScenarioConfig) -> YcsbScenarioResult {
    let sc = cfg.scale.max(1);
    let host_mem = 23 * GIB / sc;
    let host_os = 200 * MIB / sc;
    let vm_mem = 10 * GIB / sc;
    let reservation = 11 * GIB / 2 / sc; // 5.5 GiB
    let dataset_bytes = 9 * GIB / sc;
    let active_small = 200 * MIB / sc;
    let active_large = 6 * GIB / sc;
    let guest_os = 300 * MIB / sc;
    let slack = 256 * MIB / sc;

    let cluster_cfg = ClusterConfig {
        seed: cfg.seed,
        ..ClusterConfig::default()
    };
    let page = cluster_cfg.page_size;
    let mut b = ClusterBuilder::new(cluster_cfg);
    let src_host = b.add_host("source", host_mem, host_os, true);
    let dst_host = b.add_host("dest", host_mem, host_os, true);
    let client_host = b.add_host("client", 16 * GIB / sc, host_os, false);
    let agile = cfg.technique == Technique::Agile;
    if agile {
        let im = b.add_host("intermediate", 128 * GIB / sc, host_os, true);
        b.add_vmd_server(im, 100 * GIB / sc, 0);
        b.ensure_vmd_client(dst_host);
    }
    let swap_kind = if agile {
        SwapKind::PerVmVmd
    } else {
        SwapKind::HostSsd
    };

    let mut vms = Vec::new();
    for i in 0..cfg.n_vms {
        let vm = b.add_vm(
            src_host,
            VmConfig {
                mem_bytes: vm_mem,
                page_size: page,
                vcpus: 2,
                reservation_bytes: reservation,
                guest_os_bytes: guest_os,
            },
            swap_kind,
        );
        // Redis layout: hash-table index ≈ 2% of the dataset, then values.
        let index_pages = ((dataset_bytes / 50) / page).max(4) as u32;
        let data_pages = (dataset_bytes / page) as u32;
        let (index_region, data_region) = {
            let world = b.world_mut();
            let layout = world.vms[vm].vm.layout_mut();
            let idx = layout.alloc_region("redis-index", index_pages);
            let dat = layout.alloc_region("redis-data", data_pages);
            (idx, dat)
        };
        let dataset = Dataset::new(data_region, dataset_bytes / 1024, 1024, page);
        let mut model = YcsbRedis::new(
            dataset,
            index_region,
            KeyDist::UniformPrefix,
            YcsbParams {
                read_ratio: cfg.read_ratio,
                ..YcsbParams::default()
            },
        );
        model.set_active_bytes(active_small);
        b.attach_workload(vm, client_host, WorkloadKind::Ycsb(model));
        b.enable_os_background(vm);
        vms.push(vm);
        let _ = i;
    }

    // The four datasets load concurrently (the paper's 4 YCSB load
    // clients): their eviction streams interleave on the shared swap
    // partition.
    b.preload_layouts_interleaved(&vms, 256);

    let mut sim = b.build();
    start_all_workloads(&mut sim, SimTime::from_secs(1));

    // The ramp: one VM per step widens its query window, and the host's
    // reservations are re-balanced to track working sets.
    for (i, &vm) in vms.iter().enumerate() {
        let at = SimTime::from_secs(cfg.ramp_start_secs + i as u64 * cfg.ramp_step_secs);
        sim.schedule_at(at, move |sim| {
            set_ycsb_active_bytes(sim, vm, active_large);
            let host = sim.state().vms[vm].host;
            rebalance_host(sim, host, slack);
        });
    }

    // The migration, plus a watcher that re-balances the source once the
    // migrated VM's memory is actually freed there.
    let technique = cfg.technique;
    let migrate_vm = vms[0];
    sim.schedule_at(SimTime::from_secs(cfg.migrate_at_secs), move |sim| {
        let dest_resv = {
            let w = sim.state();
            w.hosts[dst_host]
                .mem
                .available_for_vms()
                .min(w.vms[migrate_vm].vm.config().mem_bytes)
        };
        let src_cfg = SourceConfig {
            precopy_threshold_pages: (9_000 / sc as u32).max(64),
            ..SourceConfig::new(technique)
        };
        let mig = migrate::start_migration(sim, migrate_vm, dst_host, src_cfg, dest_resv);
        watch_completion(sim, mig, src_host, slack);
    });

    // Debug probe (env-gated): dump active channels at a given second.
    if let Ok(at) = std::env::var("AGILE_NET_PROBE") {
        if let Ok(at) = at.parse::<u64>() {
            sim.schedule_at(SimTime::from_secs(at), move |sim| {
                eprintln!("--- active channels at t={at}s ---");
                for (i, src, dst, rate, queued) in sim.state().net.debug_active_channels() {
                    eprintln!(
                        "ch{i} {src}->{dst} rate={:.1}MB/s queued={}KB",
                        rate / 1e6,
                        queued / 1000
                    );
                }
            });
        }
    }
    sim.run_until(SimTime::from_secs(cfg.duration_secs));
    let events_executed = sim.events_executed();
    let world = sim.state();

    let series = report::average_throughput_series(world, &vms);
    let metrics = world.migrations[0].src.metrics().clone();
    let mig_start = cfg.migrate_at_secs;
    let mig_end = (mig_start + cfg.measure_window_secs).min(cfg.duration_secs);
    let avg_during_migration =
        report::average_throughput_in_window(world, &vms, mig_start, mig_end.max(mig_start + 1));
    // Reference: best smoothed average before the pressure ramp.
    let peak_reference = series
        .iter()
        .filter(|(t, _)| *t >= 20 && *t < cfg.ramp_start_secs)
        .map(|(_, r)| *r)
        .fold(0.0f64, f64::max);
    let recovery_at_secs = report::recovery_time(
        world,
        &vms,
        SimTime::from_secs(cfg.migrate_at_secs),
        peak_reference,
        0.9,
        10,
    );
    YcsbScenarioResult {
        series,
        metrics,
        avg_during_migration,
        peak_reference,
        recovery_at_secs,
        events_executed,
    }
}

/// Poll until the migration finishes, then re-balance the source host.
fn watch_completion(sim: &mut Simulation<World>, mig: usize, src_host: usize, slack: u64) {
    sim.schedule_every(
        sim.now() + SimDuration::from_secs(1),
        SimDuration::from_secs(1),
        move |sim| {
            if sim.state().migrations[mig].finished {
                rebalance_host(sim, src_host, slack);
                false
            } else {
                true
            }
        },
    );
}
