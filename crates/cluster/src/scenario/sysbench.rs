//! §V-C — the Sysbench OLTP / MySQL experiment (the Sysbench rows of
//! Tables I–III).
//!
//! Four 10 GB VMs each run a MySQL server with an 8 GB dataset under a
//! 5.5 GB reservation — the buffer pool never fits, so the host swaps from
//! the start — and external Sysbench clients drive the standard OLTP
//! transaction mix. One VM is migrated to relieve the pressure; client
//! performance is measured over a 300-second window spanning the
//! migration.

use agile_migration::{SourceConfig, Technique};
use agile_sim_core::{SimDuration, SimTime, Simulation, GIB, MIB};
use agile_vm::VmConfig;
use agile_workload::{Dataset, KeyDist, OltpParams, SysbenchOltp};

use crate::build::{start_all_workloads, ClusterBuilder, SwapKind};
use crate::config::ClusterConfig;
use crate::migrate;
use crate::report;
use crate::scenario::rebalance_host;
use crate::world::{WorkloadKind, World};

/// Configuration (defaults = the paper's §V-C setup).
#[derive(Clone, Copy, Debug)]
pub struct SysbenchScenarioConfig {
    /// Migration technique under test.
    pub technique: Technique,
    /// Divide every byte quantity by this (1 = paper scale).
    pub scale: u64,
    /// VMs on the source host.
    pub n_vms: usize,
    /// Simulated duration in seconds.
    pub duration_secs: u64,
    /// Migration trigger instant.
    pub migrate_at_secs: u64,
    /// Measurement window length (paper: 300 s).
    pub window_secs: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for SysbenchScenarioConfig {
    fn default() -> Self {
        SysbenchScenarioConfig {
            technique: Technique::Agile,
            scale: 1,
            n_vms: 4,
            duration_secs: 700,
            migrate_at_secs: 120,
            window_secs: 300,
            seed: 42,
        }
    }
}

/// Result bundle.
#[derive(Clone, Debug)]
pub struct SysbenchScenarioResult {
    /// Per-second average transactions/s across all VMs.
    pub series: Vec<(u64, f64)>,
    /// Migration metrics (Tables II–III).
    pub metrics: agile_migration::MigrationMetrics,
    /// Average per-VM trans/s over the 300 s window spanning the
    /// migration (Table I).
    pub avg_during_window: f64,
}

/// Run the scenario.
pub fn run(cfg: &SysbenchScenarioConfig) -> SysbenchScenarioResult {
    let sc = cfg.scale.max(1);
    let host_mem = 23 * GIB / sc;
    let host_os = 200 * MIB / sc;
    let vm_mem = 10 * GIB / sc;
    let reservation = 11 * GIB / 2 / sc;
    let dataset_bytes = 8 * GIB / sc;
    let guest_os = 300 * MIB / sc;
    let slack = 256 * MIB / sc;

    let cluster_cfg = ClusterConfig {
        seed: cfg.seed,
        ..ClusterConfig::default()
    };
    let page = cluster_cfg.page_size;
    let mut b = ClusterBuilder::new(cluster_cfg);
    let src_host = b.add_host("source", host_mem, host_os, true);
    let dst_host = b.add_host("dest", host_mem, host_os, true);
    let client_host = b.add_host("client", 16 * GIB / sc, host_os, false);
    let agile = cfg.technique == Technique::Agile;
    if agile {
        let im = b.add_host("intermediate", 128 * GIB / sc, host_os, true);
        b.add_vmd_server(im, 100 * GIB / sc, 0);
        b.ensure_vmd_client(dst_host);
    }
    let swap_kind = if agile {
        SwapKind::PerVmVmd
    } else {
        SwapKind::HostSsd
    };

    let mut vms = Vec::new();
    for _ in 0..cfg.n_vms {
        let vm = b.add_vm(
            src_host,
            VmConfig {
                mem_bytes: vm_mem,
                page_size: page,
                vcpus: 2,
                reservation_bytes: reservation,
                guest_os_bytes: guest_os,
            },
            swap_kind,
        );
        // InnoDB layout: hot B-tree upper levels, the row buffer pool,
        // and a circular redo log.
        let index_pages = ((dataset_bytes / 40) / page).max(4) as u32;
        let data_pages = (dataset_bytes / page) as u32;
        let log_pages = ((64 * MIB / sc) / page).max(8) as u32;
        let (index_region, rows_region, log_region) = {
            let world = b.world_mut();
            let layout = world.vms[vm].vm.layout_mut();
            let idx = layout.alloc_region("innodb-index", index_pages);
            let rows = layout.alloc_region("innodb-rows", data_pages);
            let log = layout.alloc_region("innodb-log", log_pages);
            (idx, rows, log)
        };
        let rows = Dataset::new(rows_region, dataset_bytes / 256, 256, page);
        let model = SysbenchOltp::new(
            rows,
            index_region,
            log_region,
            KeyDist::UniformPrefix,
            OltpParams::default(),
        );
        b.attach_workload(vm, client_host, WorkloadKind::Oltp(model));
        b.enable_os_background(vm);
        vms.push(vm);
    }

    // The four datasets load concurrently (the paper's 4 YCSB load
    // clients): their eviction streams interleave on the shared swap
    // partition.
    b.preload_layouts_interleaved(&vms, 256);

    let mut sim = b.build();
    start_all_workloads(&mut sim, SimTime::from_secs(1));

    let technique = cfg.technique;
    let migrate_vm = vms[0];
    sim.schedule_at(SimTime::from_secs(cfg.migrate_at_secs), move |sim| {
        let dest_resv = {
            let w = sim.state();
            w.hosts[dst_host]
                .mem
                .available_for_vms()
                .min(w.vms[migrate_vm].vm.config().mem_bytes)
        };
        let src_cfg = SourceConfig {
            precopy_threshold_pages: (9_000 / sc as u32).max(64),
            ..SourceConfig::new(technique)
        };
        let mig = migrate::start_migration(sim, migrate_vm, dst_host, src_cfg, dest_resv);
        watch_completion(sim, mig, src_host, slack);
    });

    sim.run_until(SimTime::from_secs(cfg.duration_secs));
    let world = sim.state();
    let series = report::average_throughput_series(world, &vms);
    let metrics = world.migrations[0].src.metrics().clone();
    let from = cfg.migrate_at_secs.saturating_sub(10);
    let avg_during_window =
        report::average_throughput_in_window(world, &vms, from, from + cfg.window_secs);
    SysbenchScenarioResult {
        series,
        metrics,
        avg_during_window,
    }
}

/// Poll until the migration finishes, then re-balance the source host.
fn watch_completion(sim: &mut Simulation<World>, mig: usize, src_host: usize, slack: u64) {
    sim.schedule_every(
        sim.now() + SimDuration::from_secs(1),
        SimDuration::from_secs(1),
        move |sim| {
            if sim.state().migrations[mig].finished {
                rebalance_host(sim, src_host, slack);
                false
            } else {
                true
            }
        },
    );
}
