//! Fault-injection scenario: an Agile migration under a deterministic
//! [`ChaosSchedule`] (VMD server crashes and rejoins, NIC degradation,
//! swap-latency spikes, migration connection drops).
//!
//! The setup mirrors the single-VM sweep of §V-B: the VM outgrows its
//! host, so a large fraction of its memory lives in the portable VMD
//! namespace when the migration starts — which is exactly the state a
//! VMD server crash puts at risk. With `replication >= 2` the scenario
//! must complete with zero lost pages and a byte-identical destination
//! image (the end-to-end version check is armed); with `replication = 1`
//! losses are *reported*, never panicked on.

use agile_chaos::ChaosSchedule;
use agile_migration::{SourceConfig, Technique};
use agile_sim_core::{SimDuration, SimTime, GIB, MIB};
use agile_vm::VmConfig;

use crate::build::{start_all_workloads, ClusterBuilder, SwapKind};
use crate::chaosctl::{self, CrashRecord};
use crate::config::ClusterConfig;
use crate::migrate;

/// One chaos run.
#[derive(Clone, Debug)]
pub struct ChaosScenarioConfig {
    /// Migration technique under test (the recovery paths target Agile;
    /// baselines run too, for comparison).
    pub technique: Technique,
    /// VM memory size in bytes.
    pub vm_mem: u64,
    /// Host memory (smaller than `vm_mem`, so state spills to the VMD).
    pub host_mem: u64,
    /// Divide every byte quantity by this (1 = paper scale).
    pub scale: u64,
    /// VMD replication factor `k` (1 = no redundancy, legacy behavior).
    pub replication: usize,
    /// Number of intermediate hosts contributing VMD servers.
    pub vmd_servers: usize,
    /// The fault schedule to inject (times are absolute sim times).
    pub schedule: ChaosSchedule,
    /// Arm the end-to-end content check at finalize. Leave off for runs
    /// that legitimately lose state (`replication = 1` under a crash).
    pub verify_content: bool,
    /// Warm-up before the migration starts.
    pub warmup_secs: u64,
    /// Hard deadline for the run.
    pub deadline_secs: u64,
    /// Master seed.
    pub seed: u64,
    /// Enable the event tracer (off by default; chaos fault windows then
    /// appear as `chaos_fault` spans in the JSONL export).
    pub trace: bool,
    /// Swap tier stack on every VMD server (legacy Memory+Disk pair by
    /// default). Multi-tier stacks put demotions in flight across tier
    /// boundaries for the crash schedule to interrupt.
    pub tiers: agile_vmd::TierStackConfig,
}

impl Default for ChaosScenarioConfig {
    fn default() -> Self {
        ChaosScenarioConfig {
            technique: Technique::Agile,
            vm_mem: 8 * GIB,
            host_mem: 6 * GIB,
            scale: 1,
            replication: 2,
            vmd_servers: 2,
            schedule: ChaosSchedule::none(),
            verify_content: true,
            warmup_secs: 30,
            deadline_secs: 4000,
            seed: 42,
            trace: false,
            tiers: agile_vmd::TierStackConfig::legacy(),
        }
    }
}

/// Everything a chaos run reports. With equal seeds and schedules two
/// runs produce byte-identical `Debug` renderings of this struct — the
/// determinism tests pin that down.
#[derive(Clone, Debug, PartialEq)]
pub struct ChaosScenarioResult {
    /// Whether the migration completed before the deadline.
    pub finished: bool,
    /// Total migration time in seconds (NaN if unfinished).
    pub migration_secs: f64,
    /// Downtime in seconds (NaN if unfinished).
    pub downtime_secs: f64,
    /// Bytes on the migration channels.
    pub migration_bytes: u64,
    /// Abort-and-retry cycles the migration went through.
    pub retries: u32,
    /// Pages zero-filled because neither the source (connection down)
    /// nor a swap copy could supply them.
    pub pages_lost_on_conn_drop: u64,
    /// Swap slots whose every replica died with crashed servers.
    pub slots_lost: u64,
    /// Slots re-replicated from survivors by the background pump.
    pub slots_repaired: u64,
    /// Reads completed with lost content (stale data, counted).
    pub lost_reads: u64,
    /// Migration connection drops injected.
    pub conn_drops: u64,
    /// Widest crash-to-repaired window across all crashes, seconds.
    pub worst_unavailability_secs: f64,
    /// Per-crash recovery timeline.
    pub crashes: Vec<CrashRecord>,
    /// Total DES events executed (the golden-trace fingerprint).
    pub events_executed: u64,
    /// JSONL event-trace export (`Some` only when `cfg.trace` was set;
    /// `None` keeps untraced goldens byte-identical to older runs).
    pub trace_jsonl: Option<String>,
}

/// Run one chaos scenario.
pub fn run(cfg: &ChaosScenarioConfig) -> ChaosScenarioResult {
    let sc = cfg.scale.max(1);
    let host_mem = cfg.host_mem / sc;
    let vm_mem = cfg.vm_mem / sc;
    let host_os = 300 * MIB / sc;
    let guest_os = 300 * MIB / sc;
    let reservation = (host_mem - host_os).min(vm_mem);

    let cluster_cfg = ClusterConfig {
        seed: cfg.seed,
        vmd_replication: cfg.replication,
        vmd_tiers: cfg.tiers,
        ..ClusterConfig::default()
    };
    let page = cluster_cfg.page_size;
    let mut b = ClusterBuilder::new(cluster_cfg);
    let src_host = b.add_host("source", host_mem, host_os, true);
    let dst_host = b.add_host("dest", host_mem, host_os, true);
    let _client_host = b.add_host("client", 8 * GIB / sc, host_os, false);
    for i in 0..cfg.vmd_servers.max(1) {
        let im = b.add_host(&format!("intermediate{i}"), 64 * GIB / sc, host_os, true);
        b.add_vmd_server(im, 48 * GIB / sc, 0);
    }
    b.ensure_vmd_client(dst_host);

    let vm = b.add_vm(
        src_host,
        VmConfig {
            mem_bytes: vm_mem,
            page_size: page,
            vcpus: 2,
            reservation_bytes: reservation,
            guest_os_bytes: guest_os,
        },
        SwapKind::PerVmVmd,
    );
    // Idle-style guest: memory fully populated (the over-commit spills to
    // the VMD namespace) with OS background touching pages.
    b.enable_os_background(vm);
    b.preload_pages(vm, 0, (vm_mem / page) as u32);

    let mut sim = b.build();
    if cfg.trace {
        sim.state_mut().trace = agile_trace::Tracer::with_capacity(1 << 16);
    }
    start_all_workloads(&mut sim, SimTime::from_secs(1));
    chaosctl::install(&mut sim, cfg.schedule.clone());

    let technique = cfg.technique;
    let verify = cfg.verify_content;
    sim.schedule_at(SimTime::from_secs(cfg.warmup_secs), move |sim| {
        let dest_resv = {
            let w = sim.state();
            w.hosts[dst_host]
                .mem
                .available_for_vms()
                .min(w.vms[vm].vm.config().mem_bytes)
        };
        let src_cfg = SourceConfig {
            precopy_threshold_pages: (9_000 / sc as u32).max(64),
            ..SourceConfig::new(technique)
        };
        let mig = migrate::start_migration(sim, vm, dst_host, src_cfg, dest_resv);
        sim.state_mut().migrations[mig].verify_content = verify;
    });

    // Run until the migration completes (or the deadline), every
    // scheduled fault has fired, and the background re-replication pump
    // has drained — so rejoin times and unavailability windows are fully
    // stamped in the report.
    let deadline = SimTime::from_secs(cfg.deadline_secs);
    let horizon = cfg
        .schedule
        .events()
        .iter()
        .map(|e| e.at)
        .max()
        .unwrap_or(SimTime::ZERO);
    loop {
        let next = sim.now() + SimDuration::from_secs(5);
        sim.run_until(next.min(deadline));
        let w = sim.state();
        let mig_done = w.migrations.first().map(|m| m.finished).unwrap_or(false);
        let repair_done = w.chaos.repair_queue.is_empty();
        if (mig_done && repair_done && sim.now() >= horizon) || sim.now() >= deadline {
            break;
        }
    }

    let events_executed = sim.events_executed();
    let w = sim.state();
    // Tier-ledger invariant: whatever the crash interrupted (demotions,
    // relocations, purges), every surviving server's per-tier accounting
    // must still reconcile with its actual placements.
    for (i, s) in w.vmd.servers.iter().enumerate() {
        assert!(
            s.server.ledger_consistent(),
            "server {i} tier ledger inconsistent after chaos run"
        );
    }
    let metrics = w.migrations[0].src.metrics();
    ChaosScenarioResult {
        finished: w.migrations[0].finished,
        migration_secs: metrics
            .total_time()
            .map(|d| d.as_secs_f64())
            .unwrap_or(f64::NAN),
        downtime_secs: metrics
            .downtime()
            .map(|d| d.as_secs_f64())
            .unwrap_or(f64::NAN),
        migration_bytes: metrics.migration_bytes,
        retries: w.migrations[0].retries,
        pages_lost_on_conn_drop: w.migrations[0].pages_lost_on_conn_drop,
        slots_lost: w.chaos.total_slots_lost(),
        slots_repaired: w.chaos.slots_repaired,
        lost_reads: w.chaos.lost_reads,
        conn_drops: w.chaos.conn_drops,
        worst_unavailability_secs: w.chaos.worst_unavailability_secs(),
        crashes: w.chaos.crashes.clone(),
        events_executed,
        trace_jsonl: cfg.trace.then(|| w.trace.to_jsonl()),
    }
}
