//! Swap-tier-stack sweep: scarce pool DRAM spilling to the host SSD
//! versus cheap CXL-like far memory, under a migration whose downtime
//! actually reads the swap stack.
//!
//! The question the sweep answers is the sizing trade the tier stack
//! exists for: when the VMD's DRAM pool is ample, raw remote DRAM is
//! unbeatable — every guest fault pays only the network round trip. As
//! the pool shrinks relative to the VM's spilled state, the legacy
//! stack starts serving faults from the host's queued SSD (~90 µs plus
//! contention), while a stack that trades *half* its DRAM for an ample
//! fixed-latency far-memory tier keeps every spilled page within a few
//! microseconds of device time. Somewhere between those extremes the
//! curves cross; `BENCH_5.json` pins that crossover on the guest-visible
//! fault-latency distribution and on migration downtime.
//!
//! Each sweep point runs one heavily over-committed VM whose scripted
//! write scan sweeps the spilled range — every touch is a major fault
//! through the tier stack, and every fault-in evicts a recently-dirtied
//! page back *into* the stack. The migration leg is a round-capped
//! pre-copy (classic stop-and-copy after one warm-up pass): its final
//! pass must pull the dirtied-then-evicted pages back through the tier
//! stack *while the VM is suspended*, so downtime — not just fault
//! latency — carries the tier tax. (An Agile migration's downtime is
//! swap-independent by design; pre-copy is the probe that makes the
//! tier cost visible in downtime.)
//!
//! Every guest major fault — local writeback hit, remote DRAM, SSD, or
//! far-memory read — lands in one [`FixedHistogram`] through the single
//! completion funnel, so the histograms are directly comparable across
//! arms and byte-deterministic at any worker count ([`run_replicated`]
//! drives the same worlds through the sharded epoch harness).

use agile_migration::{SourceConfig, Technique};
use agile_sim_core::{FixedHistogram, SimDuration, SimTime, Simulation, GIB, MIB};
use agile_vm::VmConfig;
use agile_vmd::{HeatPolicy, TierCapacity, TierSpec, TierStackConfig};

use crate::build::{start_all_workloads, ClusterBuilder, SwapKind};
use crate::config::ClusterConfig;
use crate::guest;
use crate::migrate;
use crate::shard::{NullCoordinator, ShardedRun};
use crate::world::{OpExec, World};

/// Which spill stack backs a sweep point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TierArm {
    /// All the DRAM the point allows, spilling to the host's queued SSD
    /// (the legacy pair under pressure, heat-driven).
    ScarceDram,
    /// Three quarters of the point's DRAM traded for an ample CXL-like
    /// far-memory tier at a fixed few-microsecond page cost.
    FarMemory,
}

impl TierArm {
    /// Stable label used in reports and file names.
    pub fn label(self) -> &'static str {
        match self {
            TierArm::ScarceDram => "scarce_dram",
            TierArm::FarMemory => "far_memory",
        }
    }
}

/// One tier-sweep point.
#[derive(Clone, Debug)]
pub struct TiersConfig {
    /// The spill stack under test.
    pub arm: TierArm,
    /// Pool DRAM as a percentage of the VM's spilled pages — the sweep
    /// axis. 240 % is "ample" (the whole migration-time footprint fits
    /// in remote DRAM for the [`TierArm::ScarceDram`] arm, see
    /// [`sweep_points`]); 15 % is deep scarcity.
    pub dram_pct: u64,
    /// VM memory size in bytes (pre-scale).
    pub vm_mem: u64,
    /// Host memory (far smaller than `vm_mem`: the deep over-commit is
    /// what keeps the scan faulting through the stack).
    pub host_mem: u64,
    /// Scripted-scan inter-touch gap in microseconds.
    pub scan_period_us: u64,
    /// Split the spill tier into two equal-cost halves. Placement is
    /// cost-ordered, so this must be behaviorally invisible — the
    /// metamorphic tier-collapse tests pin byte-identical histograms.
    pub split_spill: bool,
    /// Divide every byte quantity by this (1 = paper scale).
    pub scale: u64,
    /// Warm-up before the migration starts.
    pub warmup_secs: u64,
    /// Hard deadline for the run.
    pub deadline_secs: u64,
    /// Master seed.
    pub seed: u64,
}

impl Default for TiersConfig {
    fn default() -> Self {
        TiersConfig {
            arm: TierArm::ScarceDram,
            dram_pct: 240,
            vm_mem: 4 * GIB,
            host_mem: 640 * MIB,
            scan_period_us: 500,
            split_spill: false,
            scale: 1,
            warmup_secs: 10,
            deadline_secs: 2000,
            seed: 42,
        }
    }
}

/// The sweep axis: ample → deeply scarce pool DRAM. "Ample" is 240 % of
/// the spilled set because the pre-copy leg double-buffers the image —
/// the source's placed slots stay on the servers until finalize while
/// the destination evicts its own copy into the same namespace — so
/// covering both sides takes roughly `vm_pages + spill_pages`.
pub fn sweep_points() -> Vec<u64> {
    vec![240, 60, 30, 15]
}

/// The full sweep: every point under both arms, ordered point-major so
/// the two arms of one point sit adjacent in reports.
pub fn sweep(scale: u64, seed: u64) -> Vec<TiersConfig> {
    let mut cfgs = Vec::new();
    for pct in sweep_points() {
        for arm in [TierArm::ScarceDram, TierArm::FarMemory] {
            cfgs.push(TiersConfig {
                arm,
                dram_pct: pct,
                scale,
                seed,
                ..TiersConfig::default()
            });
        }
    }
    cfgs
}

/// Everything a tier-sweep point reports. With equal configs two runs
/// produce byte-identical values at any worker count.
#[derive(Clone, Debug, PartialEq)]
pub struct TiersResult {
    /// Deterministic per-point report.
    pub report: String,
    /// Migration completed before the deadline.
    pub finished: bool,
    /// Total migration time in nanoseconds (`u64::MAX` if unfinished).
    pub migration_ns: u64,
    /// Migration downtime in nanoseconds (`u64::MAX` if unfinished).
    pub downtime_ns: u64,
    /// Bytes on the migration channels.
    pub migration_bytes: u64,
    /// Guest major faults observed (histogram population).
    pub faults: u64,
    /// Mean fault latency in exact nanoseconds (sum / count).
    pub fault_mean_ns: u64,
    /// Guest-visible fault-latency quantiles (bucket-ceiling ns).
    pub fault_p50_ns: u64,
    /// 99th percentile fault latency.
    pub fault_p99_ns: u64,
    /// Worst observed fault latency (exact, not bucketed).
    pub fault_max_ns: u64,
    /// Final per-tier page occupancy on the intermediate server.
    pub tier_pages: Vec<u64>,
    /// FNV-1a digest of the full histogram (all bucket counts + max).
    pub hist_digest: u64,
    /// Total DES events executed (the golden-trace fingerprint).
    pub events_executed: u64,
}

/// A built tier-sweep world, ready for the sequential or sharded driver.
struct TiersSetup {
    sim: Simulation<World>,
    deadline: SimTime,
}

/// The settle predicate at every 5-second boundary: migration done and
/// every swap I/O drained, or out of time.
fn settled(sim: &Simulation<World>, deadline: SimTime) -> bool {
    let w = sim.state();
    let mig_done = w.migrations.first().map(|m| m.finished).unwrap_or(false);
    (mig_done && w.swap_reqs.is_empty() && w.chaos.repair_queue.is_empty()) || sim.now() >= deadline
}

/// One scripted-scan touch: a write sweeping the spilled pfn range. The
/// chain stops once the migration finished (so in-flight swap I/O can
/// drain) and skips touches while the VM cannot execute (suspension).
fn scan_tick(sim: &mut Simulation<World>, vm: usize, range: u32, cursor: u32, period: SimDuration) {
    {
        let w = sim.state();
        if w.migrations.first().map(|m| m.finished).unwrap_or(false) {
            return;
        }
        if !w.vms[vm].vm.state().can_execute() {
            sim.schedule_in(period, move |sim| {
                scan_tick(sim, vm, range, cursor, period);
            });
            return;
        }
    }
    let mut touches = agile_workload::TouchList::new();
    touches.push(cursor % range, true);
    let id = sim.state_mut().alloc_op(OpExec {
        gen: 0,
        vm,
        touches,
        idx: 0,
        cpu: SimDuration::ZERO,
        response_bytes: 0,
        counts: false,
        respond: false,
    });
    let gen = sim.state().ops[id].as_ref().expect("fresh op").gen;
    guest::step_op(sim, id, gen);
    let next = cursor.wrapping_add(1) % range;
    sim.schedule_in(period, move |sim| {
        scan_tick(sim, vm, range, next, period);
    });
}

/// Build one sweep point: the tier stack, the over-committed VM, the
/// armed histogram, the scripted scan, and the scheduled migration.
fn setup(cfg: &TiersConfig) -> TiersSetup {
    let sc = cfg.scale.max(1);
    let host_mem = cfg.host_mem / sc;
    let vm_mem = cfg.vm_mem / sc;
    let host_os = 128 * MIB / sc;
    let guest_os = 128 * MIB / sc;
    let reservation = (host_mem - host_os).min(vm_mem);

    let mut cluster_cfg = ClusterConfig {
        seed: cfg.seed,
        ..ClusterConfig::default()
    };
    let page = cluster_cfg.page_size;
    // The VM's spilled state: everything its reservation cannot hold.
    let spill_pages = (vm_mem.saturating_sub(reservation) / page).max(1);
    let dram_pages = (spill_pages * cfg.dram_pct / 100).max(2);
    let spill_tier = |spec: TierSpec| -> Vec<TierSpec> {
        if cfg.split_spill {
            // Two equal-cost halves of the same spill capacity; the
            // cost-ordered placement must make this invisible.
            let mut half = spec;
            half.capacity = TierCapacity::Pages(2 * spill_pages);
            vec![half, half]
        } else {
            let mut whole = spec;
            whole.capacity = TierCapacity::Pages(4 * spill_pages);
            vec![whole]
        }
    };
    let (spill_specs, mem_bytes) = match cfg.arm {
        TierArm::ScarceDram => (spill_tier(TierSpec::host_ssd()), dram_pages * page),
        TierArm::FarMemory => (
            // ~2 µs CXL load/store latency + 4 KiB at 16 GiB/s.
            spill_tier(TierSpec::far_memory(
                0, // capacity overridden by spill_tier
                SimDuration::from_micros(2),
                16 << 30,
                page,
            )),
            (dram_pages / 4).max(1) * page,
        ),
    };
    let mut tiers = vec![TierSpec::dram()];
    tiers.extend(spill_specs);
    cluster_cfg.vmd_tiers = TierStackConfig::new(&tiers, HeatPolicy::heat_driven());

    let mut b = ClusterBuilder::new(cluster_cfg);
    let src_host = b.add_host("source", host_mem, host_os, true);
    let dst_host = b.add_host("dest", host_mem, host_os, true);
    let im = b.add_host("intermediate", 64 * GIB / sc, host_os, true);
    b.add_vmd_server(im, mem_bytes, 0);
    b.ensure_vmd_client(dst_host);

    let vm = b.add_vm(
        src_host,
        VmConfig {
            mem_bytes: vm_mem,
            page_size: page,
            vcpus: 2,
            reservation_bytes: reservation,
            guest_os_bytes: guest_os,
        },
        SwapKind::PerVmVmd,
    );
    b.preload_pages(vm, 0, (vm_mem / page) as u32);

    let mut sim = b.build();
    sim.state_mut().fault_hist = Some(Box::new(FixedHistogram::new()));
    start_all_workloads(&mut sim, SimTime::from_secs(1));

    // The scripted write scan over the spilled range: every touch is a
    // major fault through the tier stack, every fault-in evicts a
    // recently-dirtied page back into it.
    let scan_range = spill_pages as u32;
    let period = SimDuration::from_micros(cfg.scan_period_us.max(1));
    sim.schedule_at(SimTime::from_secs(1) + period, move |sim| {
        scan_tick(sim, vm, scan_range, 0, period);
    });

    sim.schedule_at(SimTime::from_secs(cfg.warmup_secs), move |sim| {
        let dest_resv = {
            let w = sim.state();
            w.hosts[dst_host]
                .mem
                .available_for_vms()
                .min(w.vms[vm].vm.config().mem_bytes)
        };
        // Round-capped pre-copy: one warm-up pass, then stop-and-copy.
        // The final pass pulls dirtied-then-evicted pages back through
        // the tier stack while the VM is suspended.
        let src_cfg = SourceConfig {
            precopy_threshold_pages: 64,
            precopy_max_rounds: 1,
            ..SourceConfig::new(Technique::PreCopy)
        };
        migrate::start_migration(sim, vm, dst_host, src_cfg, dest_resv);
    });

    TiersSetup {
        sim,
        deadline: SimTime::from_secs(cfg.deadline_secs),
    }
}

/// Run one tier-sweep point sequentially.
pub fn run(cfg: &TiersConfig) -> TiersResult {
    let TiersSetup { mut sim, deadline } = setup(cfg);
    loop {
        let next = sim.now() + SimDuration::from_secs(5);
        sim.run_until(next.min(deadline));
        if settled(&sim, deadline) {
            break;
        }
    }
    finish(sim, cfg)
}

/// Run several sweep points as shards of one parallel epoch harness
/// (lookahead = the sequential driver's 5-second slice). Every point's
/// result is byte-identical to [`run`] at any `workers` count.
pub fn run_replicated(cfgs: &[TiersConfig], workers: usize) -> Vec<TiersResult> {
    assert!(!cfgs.is_empty());
    assert!(
        cfgs.iter()
            .all(|c| c.deadline_secs == cfgs[0].deadline_secs),
        "replicated runs share one deadline (epoch targets must coincide)"
    );
    let mut worlds = Vec::with_capacity(cfgs.len());
    let mut deadlines = Vec::with_capacity(cfgs.len());
    for cfg in cfgs {
        let s = setup(cfg);
        deadlines.push(s.deadline);
        worlds.push(s.sim);
    }
    let deadline = deadlines[0];
    let mut sharded = ShardedRun::new(worlds, SimDuration::from_secs(5));
    sharded.run(workers, deadline, &mut NullCoordinator, |i, sim| {
        settled(sim, deadlines[i])
    });
    sharded
        .into_worlds()
        .into_iter()
        .zip(cfgs)
        .map(|(sim, cfg)| finish(sim, cfg))
        .collect()
}

/// Assemble the deterministic per-point result.
fn finish(sim: Simulation<World>, cfg: &TiersConfig) -> TiersResult {
    let events_executed = sim.events_executed();
    let w = sim.state();
    let finished = w.migrations.first().map(|m| m.finished).unwrap_or(false);
    let metrics = w.migrations[0].src.metrics();
    let migration_ns = metrics
        .total_time()
        .map(|d| d.as_nanos())
        .unwrap_or(u64::MAX);
    let downtime_ns = metrics.downtime().map(|d| d.as_nanos()).unwrap_or(u64::MAX);
    let hist = w.fault_hist.as_deref().expect("histogram armed in setup");
    let server = &w.vmd.servers[0].server;
    let tier_pages: Vec<u64> = (0..server.tier_count())
        .map(|t| server.tier_used_pages(t as u8))
        .collect();

    let mut digest: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
    let mut fold = |v: u64| {
        digest ^= v;
        digest = digest.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for &b in hist.buckets() {
        fold(b);
    }
    fold(hist.max_ns());

    let faults = hist.count();
    let fault_mean_ns = hist.sum_ns() / faults.max(1);
    let fault_p50_ns = hist.quantile_ceil_ns(50.0);
    let fault_p99_ns = hist.quantile_ceil_ns(99.0);
    let fault_max_ns = hist.max_ns();

    let mut report = String::new();
    {
        use std::fmt::Write;
        let _ = writeln!(
            report,
            "# tiers arm={} dram_pct={} split={} scale={} seed={}",
            cfg.arm.label(),
            cfg.dram_pct,
            cfg.split_spill,
            cfg.scale.max(1),
            cfg.seed,
        );
        let _ = writeln!(
            report,
            "migration: finished={finished} total_ns={migration_ns} downtime_ns={downtime_ns} \
             bytes={}",
            metrics.migration_bytes,
        );
        let _ = writeln!(
            report,
            "faults: n={faults} mean_ns={fault_mean_ns} p50_ns={fault_p50_ns} \
             p99_ns={fault_p99_ns} max_ns={fault_max_ns}",
        );
        let _ = writeln!(
            report,
            "tiers: pages={tier_pages:?} hist_digest={digest:#018x} \
             events_executed={events_executed}",
        );
    }

    TiersResult {
        report,
        finished,
        migration_ns,
        downtime_ns,
        migration_bytes: metrics.migration_bytes,
        faults,
        fault_mean_ns,
        fault_p50_ns,
        fault_p99_ns,
        fault_max_ns,
        tier_pages,
        hist_digest: digest,
        events_executed,
    }
}
