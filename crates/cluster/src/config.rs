//! Cluster-wide simulation configuration.
//!
//! Defaults reproduce the paper's testbed (§V): 1 Gbps Ethernet behind a
//! ToR switch, SATA-SSD swap, 4 KB pages, Linux-like swap readahead.

use agile_sim_core::{Bandwidth, BlockDeviceSpec, SimDuration};
use agile_vmd::TierStackConfig;

/// Which working-set estimator `wssctl::enable_tracking` installs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum WssEstimatorKind {
    /// The paper's iostat path: swap-device I/O rates into the α/β/τ
    /// controller. The default — legacy traces replay byte-identically.
    #[default]
    SwapIo,
    /// Simulated-PML dirty-epoch sampling (Bitchebe et al.): sees
    /// working-set growth with zero swap pressure.
    Pml,
}

/// Static parameters of a simulated cluster.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Guest/host page size.
    pub page_size: u64,
    /// NIC bandwidth (full duplex, per direction).
    pub link_bw: Bandwidth,
    /// One-way propagation delay through the switch.
    pub prop_delay: SimDuration,
    /// Swap-device spec for host SSD swap partitions.
    pub ssd_spec: BlockDeviceSpec,
    /// Pages read from swap per guest major fault (Linux `page-cluster`
    /// readahead: 1 wanted + N-1 speculative; speculative reads are wasted
    /// IOPS under random access). VMD reads are always exact (KV store).
    pub guest_readahead_pages: u32,
    /// Migration-channel flow-control window, in chunks.
    pub migration_window: usize,
    /// VMD server request-processing delay (kernel TCP receive + hash
    /// lookup + page copy on the paper's 2.1 GHz Xeons).
    pub vmd_server_delay: SimDuration,
    /// Per-minor-fault CPU cost (zero-fill).
    pub minor_fault_cost: SimDuration,
    /// Replication factor for VMD writes (1 = unreplicated, the paper's
    /// baseline; k > 1 places every slot on k distinct intermediate hosts
    /// so a server crash loses no swapped-out state).
    pub vmd_replication: usize,
    /// How long after a VMD server crash the cluster's failure detector
    /// fires (missed-gossip timeout): clients then mark the server
    /// suspect, fail over in-flight requests, and background
    /// re-replication starts.
    pub vmd_detect_delay: SimDuration,
    /// Which WSS estimator tracking installs (see [`WssEstimatorKind`]).
    pub wss_estimator: WssEstimatorKind,
    /// Swap tier stack every VMD server is built with. The default is the
    /// legacy DRAM + host-SSD pair with heat tracking disabled, which
    /// replays all historical traces byte-identically; richer stacks add
    /// zswap-like compressed memory or CXL-like far-memory tiers with
    /// their own capacity/latency points (see [`agile_vmd::tier`]).
    pub vmd_tiers: TierStackConfig,
    /// Simulated-PML log capacity in entries (real hardware: 512; the
    /// buffer overflows into a full PTE-bit scan at drain).
    pub pml_log_cap: u32,
    /// PML sampling epoch (fixed cadence; no fast/slow switch).
    pub pml_epoch: SimDuration,
    /// PML sliding window, in epochs, the estimate is the max over.
    pub pml_window: u32,
    /// PML reservation headroom: reservation = estimate × num / den.
    /// `den` must divide `page_size` (exactly-linear sizing).
    pub pml_headroom_num: u64,
    /// PML reservation headroom denominator.
    pub pml_headroom_den: u64,
    /// Serialize reads served by `Fixed`-backed spill tiers (zswap/CXL-like
    /// far memory) through a per-(server, tier) queue: a second concurrent
    /// read waits for the first to finish instead of overlapping for free.
    /// Off by default — the legacy unqueued model replays all historical
    /// traces byte-identically.
    pub vmd_fixed_tier_queueing: bool,
    /// Master seed for all RNG streams.
    pub seed: u64,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            page_size: 4096,
            link_bw: Bandwidth::gbps(1.0),
            prop_delay: SimDuration::from_micros(50),
            ssd_spec: BlockDeviceSpec::sata_ssd(),
            guest_readahead_pages: 8,
            migration_window: 4,
            vmd_server_delay: SimDuration::from_micros(40),
            minor_fault_cost: SimDuration::from_micros(2),
            vmd_replication: 1,
            vmd_detect_delay: SimDuration::from_millis(500),
            wss_estimator: WssEstimatorKind::default(),
            vmd_tiers: TierStackConfig::legacy(),
            pml_log_cap: 512,
            pml_epoch: SimDuration::from_secs(2),
            pml_window: 3,
            pml_headroom_num: 5,
            pml_headroom_den: 4,
            vmd_fixed_tier_queueing: false,
            seed: 42,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_testbed() {
        let c = ClusterConfig::default();
        assert_eq!(c.page_size, 4096);
        assert!((c.link_bw.as_bytes_per_sec() - 125e6).abs() < 1.0);
        assert!(c.guest_readahead_pages >= 1);
        // The default tier stack must be the legacy pair — every golden
        // trace replays byte-identically only under this invariant.
        assert!(c.vmd_tiers.is_legacy());
    }
}
