//! Typed fast-event dispatch.
//!
//! The executor's hottest timers — network polls, swap completions, op
//! stepping, client think-time, OS background bursts, WSS sampling — fire
//! millions of times per scenario. Scheduling each as a boxed closure costs
//! a heap allocation per event; instead they travel as POD
//! [`FastEvent`]s through the slab queue and land here. The dispatcher is
//! installed once at world construction ([`crate::build::ClusterBuilder::build`]).
//!
//! Closures remain the right tool for cold, payload-carrying events (VMD
//! protocol messages, scenario phase changes); only no-capture or
//! small-integer-capture timers are converted.

use agile_sim_core::{FastEvent, Simulation};

use crate::world::World;
use crate::{chaosctl, clonectl, guest, netdrv, poolctl, sched, vmdio, wlctl, wssctl};

/// `Timer.kind`: advance op `a` (generation `b`) — a parked op waking.
pub const K_STEP_OP: u32 = 0;
/// `Timer.kind`: finish the CPU burst of op `a` (generation `b`).
pub const K_FINISH_OP: u32 = 1;
/// `Timer.kind`: client thread of VM `a` sends its next request.
pub const K_CLIENT_SEND: u32 = 2;
/// `Timer.kind`: OS background burst for VM `a` (chain generation `b`).
pub const K_OS_BG: u32 = 3;
/// `Timer.kind`: WSS sampling tick for VM `a`.
pub const K_WSS_SAMPLE: u32 = 4;
/// `Timer.kind`: fire fault `a` of the installed chaos schedule.
pub const K_CHAOS_FAULT: u32 = 5;
/// `Timer.kind`: one paced background re-replication tick.
pub const K_REPAIR_PUMP: u32 = 6;
/// `Timer.kind`: one cluster-scheduler check over every managed host.
pub const K_SCHED_TICK: u32 = 7;
/// `Timer.kind`: one elastic-pool-manager tick (leases, reclaim, rebalance).
pub const K_POOL_TICK: u32 = 8;
/// `Timer.kind`: one temporal-workload-driver tick (signal polling).
pub const K_WORKLOAD_TICK: u32 = 9;
/// `Timer.kind`: one elastic-clone-controller tick (seal / spawn / reap).
pub const K_CLONE_TICK: u32 = 10;
/// `Timer.kind`: one paced hydration pump step for clone `a`.
pub const K_CLONE_HYDRATE: u32 = 11;

/// Route one fast event to its handler. Installed via
/// [`Simulation::set_fast_handler`].
pub fn dispatch(sim: &mut Simulation<World>, ev: FastEvent) {
    match ev {
        FastEvent::FlowDue { .. } => netdrv::poll_net(sim),
        FastEvent::DeviceOp { req } => vmdio::resolve_swap_completion(sim, req),
        FastEvent::Timer { kind, a, b } => match kind {
            K_STEP_OP => guest::step_op(sim, a as usize, b as u32),
            K_FINISH_OP => guest::finish_op(sim, a as usize, b as u32),
            K_CLIENT_SEND => guest::client_send_next(sim, a as usize),
            K_OS_BG => guest::os_bg_fire(sim, a as usize, b as u32),
            K_WSS_SAMPLE => wssctl::sample(sim, a as usize),
            K_CHAOS_FAULT => chaosctl::fire(sim, a as usize),
            K_REPAIR_PUMP => chaosctl::repair_tick(sim),
            K_SCHED_TICK => sched::tick(sim),
            K_POOL_TICK => poolctl::tick(sim),
            K_WORKLOAD_TICK => wlctl::tick(sim),
            K_CLONE_TICK => clonectl::tick(sim),
            K_CLONE_HYDRATE => clonectl::hydrate_tick(sim, a as usize),
            other => panic!("unknown fast timer kind {other}"),
        },
    }
}
