//! Randomized property tests for the simulation kernel, driven by the
//! deterministic simulation RNG (fixed seeds, so failures reproduce).

use agile_sim_core::{
    Bandwidth, BlockDevice, BlockDeviceSpec, DetRng, IoKind, Network, SimDuration, SimTime,
    Simulation,
};

/// Events fire in nondecreasing time order regardless of the scheduling
/// order, and ties preserve scheduling order.
#[test]
fn event_order_is_total() {
    for case in 0..150u64 {
        let mut rng = DetRng::seed_from(0xe0e0 * 3 + case);
        let n = 1 + rng.index(49) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.index(1000)).collect();
        let mut sim = Simulation::new(Vec::<(u64, usize)>::new());
        for (i, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime::from_millis(t), move |s| {
                let now = s.now().as_nanos();
                s.state_mut().push((now, i));
            });
        }
        sim.run();
        let fired = sim.state();
        assert_eq!(fired.len(), times.len(), "case {case}");
        for w in fired.windows(2) {
            assert!(w[0].0 <= w[1].0, "case {case}: time went backwards");
            if w[0].0 == w[1].0 {
                assert!(w[0].1 < w[1].1, "case {case}: tie broke scheduling order");
            }
        }
    }
}

/// run_until never executes events past the deadline, and a subsequent
/// run() executes exactly the rest.
#[test]
fn run_until_partitions_events() {
    for case in 0..150u64 {
        let mut rng = DetRng::seed_from(0xe1e1 * 5 + case);
        let n = 1 + rng.index(49) as usize;
        let times: Vec<u64> = (0..n).map(|_| rng.index(1000)).collect();
        let split = rng.index(1000);
        let mut sim = Simulation::new(0usize);
        for &t in &times {
            sim.schedule_at(SimTime::from_millis(t), |s| *s.state_mut() += 1);
        }
        sim.run_until(SimTime::from_millis(split));
        let before = *sim.state();
        let expect_before = times.iter().filter(|&&t| t <= split).count();
        assert_eq!(before, expect_before, "case {case}");
        sim.run();
        assert_eq!(*sim.state(), times.len(), "case {case}");
    }
}

/// Block device: completions are FIFO and total busy time equals the sum
/// of service times.
#[test]
fn blockdev_fifo_and_conservation() {
    for case in 0..150u64 {
        let mut rng = DetRng::seed_from(0xe2e2 * 7 + case);
        let n = 1 + rng.index(39) as usize;
        let mut ops: Vec<(u64, usize, u64)> = (0..n)
            .map(|_| {
                (
                    rng.index(1000),
                    rng.index(2) as usize,
                    512 + rng.index(65536 - 512),
                )
            })
            .collect();
        ops.sort_by_key(|(t, _, _)| *t);
        let mut dev = BlockDevice::new(BlockDeviceSpec::sata_ssd());
        let mut last_completion = SimTime::ZERO;
        let mut service_sum = SimDuration::ZERO;
        for (t, kind, bytes) in ops {
            let kind = if kind == 0 {
                IoKind::Read
            } else {
                IoKind::Write
            };
            let done = dev.submit(SimTime::from_micros(t), kind, bytes);
            assert!(
                done >= last_completion,
                "case {case}: completions must be FIFO"
            );
            last_completion = done;
            service_sum += dev.spec().service_time(kind, bytes);
        }
        assert_eq!(
            dev.counters().busy_nanos,
            service_sum.as_nanos(),
            "case {case}"
        );
    }
}

/// Fluid network conservation: with arbitrary concurrent transfers, every
/// byte sent is eventually delivered, and per-node tx equals the sum of
/// its channels' bytes.
#[test]
fn network_delivers_every_byte() {
    for case in 0..120u64 {
        let mut rng = DetRng::seed_from(0xe3e3 * 11 + case);
        let n = 1 + rng.index(19) as usize;
        let transfers: Vec<(usize, usize, u64)> = (0..n)
            .map(|_| {
                (
                    rng.index(3) as usize,
                    rng.index(3) as usize,
                    1 + rng.index(2_000_000 - 1),
                )
            })
            .collect();
        let mut net = Network::new(SimDuration::from_micros(50));
        let nodes: Vec<_> = (0..3)
            .map(|_| net.add_symmetric_node(Bandwidth::gbps(1.0)))
            .collect();
        let mut chans = Vec::new();
        let mut total = 0u64;
        let mut per_node_tx = [0u64; 3];
        for (i, &(s, d, bytes)) in transfers.iter().enumerate() {
            let ch = net.open_channel(nodes[s], nodes[d]);
            net.send(SimTime::ZERO, ch, bytes, i as u64);
            chans.push((ch, bytes));
            total += bytes;
            per_node_tx[s] += bytes;
        }
        let mut delivered = 0u64;
        let mut seen = std::collections::HashSet::new();
        let mut guard = 0;
        while let Some(t) = net.next_event_time() {
            guard += 1;
            assert!(guard < 10_000, "case {case}: network did not quiesce");
            for d in net.poll(t) {
                delivered += d.bytes;
                assert!(seen.insert(d.tag), "case {case}: duplicate delivery");
            }
        }
        assert_eq!(delivered, total, "case {case}");
        assert_eq!(seen.len(), transfers.len(), "case {case}");
        for (i, node) in nodes.iter().enumerate() {
            assert_eq!(net.node_tx_bytes(*node), per_node_tx[i], "case {case}");
        }
        for (ch, bytes) in chans {
            assert_eq!(net.delivered_bytes(ch), bytes, "case {case}");
        }
    }
}

/// The slab queue pops in exactly the order a reference binary heap
/// (lazy-cancellation model, the seed implementation) would, under random
/// interleavings of schedules and cancels mixing boxed closures with
/// typed fast events.
#[test]
fn slab_pop_order_matches_reference_heap_under_cancel() {
    use agile_sim_core::FastEvent;
    use std::cmp::Reverse;
    use std::collections::{BinaryHeap, HashSet};

    for case in 0..150u64 {
        let mut rng = DetRng::seed_from(0xe5e5 * 17 + case);
        let mut sim = Simulation::new(Vec::<u64>::new());
        sim.set_fast_handler(|sim, ev| {
            if let FastEvent::Timer { a, .. } = ev {
                sim.state_mut().push(a);
            }
        });
        // Reference model: a min-heap of (time, seq) keys with a cancelled
        // set consulted lazily at pop — the seed's BinaryHeap + HashSet.
        let mut reference: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut cancelled: HashSet<u64> = HashSet::new();
        let mut live: Vec<(agile_sim_core::EventId, u64, u64)> = Vec::new();
        let mut label = 0u64;
        for _ in 0..300 {
            if rng.chance(0.35) && !live.is_empty() {
                let k = rng.index(live.len() as u64) as usize;
                let (id, _, l) = live.swap_remove(k);
                assert!(sim.cancel(id), "case {case}: live event failed to cancel");
                cancelled.insert(l);
            } else {
                let t = rng.index(1000);
                let l = label;
                label += 1;
                let id = if rng.chance(0.5) {
                    sim.schedule_fast(
                        SimTime::from_millis(t),
                        FastEvent::Timer {
                            kind: 0,
                            a: l,
                            b: 0,
                        },
                    )
                } else {
                    sim.schedule_at(SimTime::from_millis(t), move |s| s.state_mut().push(l))
                };
                reference.push(Reverse((t, l)));
                live.push((id, t, l));
            }
        }
        assert_eq!(sim.events_pending(), live.len(), "case {case}");
        sim.run();
        let mut expect = Vec::new();
        while let Some(Reverse((_, l))) = reference.pop() {
            if !cancelled.contains(&l) {
                expect.push(l);
            }
        }
        assert_eq!(sim.state(), &expect, "case {case}: pop order diverged");
    }
}

/// Max-min allocation never exceeds any NIC's capacity.
#[test]
fn network_rates_respect_capacity() {
    for case in 0..150u64 {
        let mut rng = DetRng::seed_from(0xe4e4 * 13 + case);
        let n = 2 + rng.index(14) as usize;
        let transfers: Vec<(usize, usize, u64)> = (0..n)
            .map(|_| {
                (
                    rng.index(4) as usize,
                    rng.index(4) as usize,
                    1 + rng.index(10_000_000 - 1),
                )
            })
            .collect();
        let mut net = Network::new(SimDuration::from_micros(50));
        let nodes: Vec<_> = (0..4)
            .map(|_| net.add_symmetric_node(Bandwidth::gbps(1.0)))
            .collect();
        let mut chans = Vec::new();
        for (i, &(s, d, bytes)) in transfers.iter().enumerate() {
            let ch = net.open_channel(nodes[s], nodes[d]);
            net.send(SimTime::ZERO, ch, bytes, i as u64);
            chans.push((ch, s, d));
        }
        let cap = 125e6;
        let mut tx = [0.0f64; 4];
        let mut rx = [0.0f64; 4];
        for &(ch, s, d) in &chans {
            let r = net.channel_rate(ch);
            assert!(r >= 0.0, "case {case}");
            tx[s] += r;
            rx[d] += r;
        }
        for nn in 0..4 {
            assert!(
                tx[nn] <= cap * 1.000001,
                "case {case}: tx overcommitted: {}",
                tx[nn]
            );
            assert!(
                rx[nn] <= cap * 1.000001,
                "case {case}: rx overcommitted: {}",
                rx[nn]
            );
        }
    }
}
