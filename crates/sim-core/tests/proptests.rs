//! Property-based tests for the simulation kernel.

use agile_sim_core::{
    Bandwidth, BlockDevice, BlockDeviceSpec, IoKind, Network, SimDuration, SimTime, Simulation,
};
use proptest::prelude::*;

proptest! {
    /// Events fire in nondecreasing time order regardless of the
    /// scheduling order, and ties preserve scheduling order.
    #[test]
    fn event_order_is_total(times in proptest::collection::vec(0u64..1000, 1..50)) {
        let mut sim = Simulation::new(Vec::<(u64, usize)>::new());
        for (i, &t) in times.iter().enumerate() {
            sim.schedule_at(SimTime::from_millis(t), move |s| {
                let now = s.now().as_nanos();
                s.state_mut().push((now, i));
            });
        }
        sim.run();
        let fired = sim.state();
        prop_assert_eq!(fired.len(), times.len());
        for w in fired.windows(2) {
            prop_assert!(w[0].0 <= w[1].0, "time went backwards");
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "tie broke scheduling order");
            }
        }
    }

    /// run_until never executes events past the deadline, and a subsequent
    /// run() executes exactly the rest.
    #[test]
    fn run_until_partitions_events(times in proptest::collection::vec(0u64..1000, 1..50), split in 0u64..1000) {
        let mut sim = Simulation::new(0usize);
        for &t in &times {
            sim.schedule_at(SimTime::from_millis(t), |s| *s.state_mut() += 1);
        }
        sim.run_until(SimTime::from_millis(split));
        let before = *sim.state();
        let expect_before = times.iter().filter(|&&t| t <= split).count();
        prop_assert_eq!(before, expect_before);
        sim.run();
        prop_assert_eq!(*sim.state(), times.len());
    }

    /// Block device: completions are FIFO and total busy time equals the
    /// sum of service times.
    #[test]
    fn blockdev_fifo_and_conservation(ops in proptest::collection::vec((0u64..1000u64, 0usize..2, 512u64..65536), 1..40)) {
        let mut dev = BlockDevice::new(BlockDeviceSpec::sata_ssd());
        let mut sorted = ops.clone();
        sorted.sort_by_key(|(t, _, _)| *t);
        let mut last_completion = SimTime::ZERO;
        let mut service_sum = SimDuration::ZERO;
        for (t, kind, bytes) in sorted {
            let kind = if kind == 0 { IoKind::Read } else { IoKind::Write };
            let done = dev.submit(SimTime::from_micros(t), kind, bytes);
            prop_assert!(done >= last_completion, "completions must be FIFO");
            last_completion = done;
            service_sum += dev.spec().service_time(kind, bytes);
        }
        prop_assert_eq!(dev.counters().busy_nanos, service_sum.as_nanos());
    }

    /// Fluid network conservation: with arbitrary concurrent transfers,
    /// every byte sent is eventually delivered, and per-node tx equals the
    /// sum of its channels' bytes.
    #[test]
    fn network_delivers_every_byte(transfers in proptest::collection::vec((0usize..3, 0usize..3, 1u64..2_000_000), 1..20)) {
        let mut net = Network::new(SimDuration::from_micros(50));
        let nodes: Vec<_> = (0..3).map(|_| net.add_symmetric_node(Bandwidth::gbps(1.0))).collect();
        let mut chans = Vec::new();
        let mut total = 0u64;
        let mut per_node_tx = [0u64; 3];
        for (i, &(s, d, bytes)) in transfers.iter().enumerate() {
            let ch = net.open_channel(nodes[s], nodes[d]);
            net.send(SimTime::ZERO, ch, bytes, i as u64);
            chans.push((ch, bytes));
            total += bytes;
            per_node_tx[s] += bytes;
        }
        let mut delivered = 0u64;
        let mut seen = std::collections::HashSet::new();
        let mut guard = 0;
        while let Some(t) = net.next_event_time() {
            guard += 1;
            prop_assert!(guard < 10_000, "network did not quiesce");
            for d in net.poll(t) {
                delivered += d.bytes;
                prop_assert!(seen.insert(d.tag), "duplicate delivery");
            }
        }
        prop_assert_eq!(delivered, total);
        prop_assert_eq!(seen.len(), transfers.len());
        for (i, node) in nodes.iter().enumerate() {
            prop_assert_eq!(net.node_tx_bytes(*node), per_node_tx[i]);
        }
        for (ch, bytes) in chans {
            prop_assert_eq!(net.delivered_bytes(ch), bytes);
        }
    }

    /// Max-min allocation never exceeds any NIC's capacity.
    #[test]
    fn network_rates_respect_capacity(transfers in proptest::collection::vec((0usize..4, 0usize..4, 1u64..10_000_000), 2..16)) {
        let mut net = Network::new(SimDuration::from_micros(50));
        let nodes: Vec<_> = (0..4).map(|_| net.add_symmetric_node(Bandwidth::gbps(1.0))).collect();
        let mut chans = Vec::new();
        for (i, &(s, d, bytes)) in transfers.iter().enumerate() {
            let ch = net.open_channel(nodes[s], nodes[d]);
            net.send(SimTime::ZERO, ch, bytes, i as u64);
            chans.push((ch, s, d));
        }
        let cap = 125e6;
        let mut tx = [0.0f64; 4];
        let mut rx = [0.0f64; 4];
        for &(ch, s, d) in &chans {
            let r = net.channel_rate(ch);
            prop_assert!(r >= 0.0);
            tx[s] += r;
            rx[d] += r;
        }
        for n in 0..4 {
            prop_assert!(tx[n] <= cap * 1.000001, "tx overcommitted: {}", tx[n]);
            prop_assert!(rx[n] <= cap * 1.000001, "rx overcommitted: {}", rx[n]);
        }
    }
}
