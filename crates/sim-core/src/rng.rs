//! Deterministic random-number streams.
//!
//! Every stochastic component of the simulation (workload key selection,
//! think times, placement tie-breaks) draws from its own [`DetRng`] stream,
//! derived from the experiment's master seed with [`SeedSequence`]. Two runs
//! with the same master seed produce bit-identical event traces; changing
//! one component's draw pattern does not perturb any other component's
//! stream.

/// SplitMix64 step — used to derive independent stream seeds from a master
/// seed. This is the standard seed-sequencing construction from Steele et
/// al., "Fast Splittable Pseudorandom Number Generators" (OOPSLA 2014).
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives independent per-component seeds from one master seed.
///
/// Streams are labelled so that the mapping from component to stream is
/// stable across code reorderings: `seq.stream("workload.vm3")` always
/// yields the same seed for the same master seed.
#[derive(Clone, Copy, Debug)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// Create a sequence rooted at `master`.
    pub fn new(master: u64) -> Self {
        SeedSequence { master }
    }

    /// The master seed this sequence was rooted at.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// Derive the seed for a labelled stream. The label is hashed with
    /// FNV-1a and mixed with the master seed through SplitMix64.
    pub fn stream_seed(&self, label: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let mut state = self.master ^ h;
        // Two rounds so that closely-related labels decorrelate fully.
        splitmix64(&mut state);
        splitmix64(&mut state)
    }

    /// Create a [`DetRng`] for a labelled stream.
    pub fn stream(&self, label: &str) -> DetRng {
        DetRng::seed_from(self.stream_seed(label))
    }
}

/// A deterministic RNG stream.
///
/// A self-contained xoshiro256++ generator (Blackman & Vigna) seeded through
/// SplitMix64 expansion, recording its seed for diagnostics and offering the
/// handful of draw shapes the simulator needs. The implementation is local so
/// that the stream is bit-stable regardless of any external crate's version.
#[derive(Clone, Debug)]
pub struct DetRng {
    seed: u64,
    s: [u64; 4],
}

impl DetRng {
    /// Construct from an explicit 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        // Expand the 64-bit seed into the 256-bit state with SplitMix64,
        // the construction xoshiro's authors recommend for seeding.
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        DetRng { seed, s }
    }

    /// The seed this stream started from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Uniform `u64` over the full range.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn index(&mut self, n: u64) -> u64 {
        assert!(n > 0, "index() requires a non-empty range");
        // Widening-multiply rejection sampling (Lemire): unbiased and
        // needs one draw almost always.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(n as u128);
            let lo = m as u64;
            if lo >= n {
                return (m >> 64) as u64;
            }
            // Low word small enough that bias is possible: reject the
            // draws that would over-represent small residues.
            let threshold = n.wrapping_neg() % n;
            if lo >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform in `[lo, hi)` for `f64`. Panics on an empty range.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "range_f64 requires lo < hi");
        lo + self.unit_f64() * (hi - lo)
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0,1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit_f64() < p
        }
    }

    /// Exponentially-distributed value with the given mean (used for
    /// inter-arrival jitter). Returns `0` mean unchanged.
    #[inline]
    pub fn exponential(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Inverse-CDF; guard the log argument away from 0.
        let u = self.unit_f64().max(1e-18);
        -mean * u.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from(42);
        let mut b = DetRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_labels_differ() {
        let seq = SeedSequence::new(7);
        assert_ne!(seq.stream_seed("a"), seq.stream_seed("b"));
        assert_ne!(
            seq.stream_seed("workload.vm0"),
            seq.stream_seed("workload.vm1")
        );
    }

    #[test]
    fn labels_stable_across_masters() {
        let s1 = SeedSequence::new(1).stream_seed("x");
        let s2 = SeedSequence::new(2).stream_seed("x");
        assert_ne!(s1, s2);
        // Same master, same label: stable.
        assert_eq!(SeedSequence::new(1).stream_seed("x"), s1);
    }

    #[test]
    fn index_in_bounds() {
        let mut r = DetRng::seed_from(3);
        for _ in 0..1000 {
            assert!(r.index(17) < 17);
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = DetRng::seed_from(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn exponential_mean_close() {
        let mut r = DetRng::seed_from(11);
        let n = 20_000;
        let mean = 4.0;
        let sum: f64 = (0..n).map(|_| r.exponential(mean)).sum();
        let avg = sum / n as f64;
        assert!((avg - mean).abs() < 0.15, "avg={avg}");
    }

    #[test]
    fn exponential_degenerate_mean() {
        let mut r = DetRng::seed_from(11);
        assert_eq!(r.exponential(0.0), 0.0);
        assert_eq!(r.exponential(-1.0), 0.0);
    }

    #[test]
    fn unit_in_range() {
        let mut r = DetRng::seed_from(13);
        for _ in 0..1000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }
}
