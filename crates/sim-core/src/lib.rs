//! # agile-sim-core
//!
//! Deterministic discrete-event simulation kernel underpinning the Agile
//! live-migration reproduction.
//!
//! The crate provides the four substrates every higher layer builds on:
//!
//! * **Clock & events** — [`SimTime`]/[`SimDuration`] (integer nanoseconds)
//!   and [`Simulation`], a classic event-queue executor with total,
//!   deterministic event ordering and cancellation.
//! * **Randomness** — [`DetRng`]/[`SeedSequence`], labelled per-component
//!   RNG streams derived from one master seed, so experiments are exactly
//!   reproducible.
//! * **Resources** — [`BlockDevice`], a FIFO busy-horizon model of the swap
//!   SSD, and [`Network`], a fluid-flow model of 1 GbE NICs with max-min
//!   fair sharing between connections.
//! * **Measurement** — [`TimeSeries`], [`ThroughputMeter`], and [`Summary`]
//!   for regenerating the paper's figures and tables.
//!
//! ```
//! use agile_sim_core::{Simulation, SimTime, SimDuration};
//!
//! let mut sim = Simulation::new(0u64);
//! sim.schedule_at(SimTime::from_secs(1), |s| {
//!     *s.state_mut() += 1;
//!     s.schedule_in(SimDuration::from_millis(500), |s| *s.state_mut() += 10);
//! });
//! sim.run();
//! assert_eq!(*sim.state(), 11);
//! assert_eq!(sim.now(), SimTime::from_millis(1500));
//! ```

pub mod blockdev;
pub mod event;
pub mod net;
pub mod rng;
pub mod stats;
pub mod time;
pub mod units;

pub use blockdev::{BlockDevice, BlockDeviceSpec, IoCounters, IoKind};
pub use event::{EventId, FastEvent, Simulation};
pub use net::{ChannelId, Delivery, Network, NodeId, RackId, SegmentId};
pub use rng::{DetRng, SeedSequence};
pub use stats::{
    percentile, FixedHistogram, Summary, ThroughputMeter, TimeSeries, HISTOGRAM_BUCKETS,
};
pub use time::{SimDuration, SimTime, NANOS_PER_SEC};
pub use units::{fmt_bytes, Bandwidth, GIB, KIB, MIB};
