//! Time-series recording and summary statistics.
//!
//! The paper's figures are second-granularity time series (YCSB throughput,
//! memory reservation) and scalar summaries (migration time, bytes moved).
//! [`ThroughputMeter`] bins completion events into per-second buckets;
//! [`TimeSeries`] records arbitrary sampled values; [`Summary`] reduces a
//! slice to the usual descriptive statistics.

use crate::time::{SimDuration, SimTime};

/// A sampled `(time, value)` series.
#[derive(Clone, Debug, Default)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// Create an empty series.
    pub fn new() -> Self {
        TimeSeries { points: Vec::new() }
    }

    /// Append a sample. Samples should be pushed in nondecreasing time
    /// order; this is asserted in debug builds.
    pub fn push(&mut self, t: SimTime, v: f64) {
        debug_assert!(
            self.points.last().is_none_or(|(lt, _)| *lt <= t),
            "time series samples must be pushed in order"
        );
        self.points.push((t, v));
    }

    /// All samples.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The last sample at or before `t` (step interpolation), if any.
    pub fn value_at(&self, t: SimTime) -> Option<f64> {
        match self.points.binary_search_by(|(pt, _)| pt.cmp(&t)) {
            Ok(i) => Some(self.points[i].1),
            Err(0) => None,
            Err(i) => Some(self.points[i - 1].1),
        }
    }

    /// Values within `[from, to)`.
    pub fn window(&self, from: SimTime, to: SimTime) -> impl Iterator<Item = f64> + '_ {
        self.points
            .iter()
            .filter(move |(t, _)| *t >= from && *t < to)
            .map(|(_, v)| *v)
    }

    /// Render as CSV lines `seconds,value`.
    pub fn to_csv(&self, header: &str) -> String {
        let mut s = String::with_capacity(self.points.len() * 16 + header.len() + 1);
        s.push_str(header);
        s.push('\n');
        for (t, v) in &self.points {
            s.push_str(&format!("{:.3},{:.4}\n", t.as_secs_f64(), v));
        }
        s
    }
}

/// Bins discrete completions (operations, transactions) into fixed-width
/// time buckets — the instrument behind every throughput figure.
#[derive(Clone, Debug)]
pub struct ThroughputMeter {
    bin_secs: u64,
    bins: Vec<u64>,
    total: u64,
}

impl ThroughputMeter {
    /// Create a meter with `bin_secs`-wide buckets (the paper plots 1 s).
    pub fn new(bin_secs: u64) -> Self {
        assert!(bin_secs > 0);
        ThroughputMeter {
            bin_secs,
            bins: Vec::new(),
            total: 0,
        }
    }

    /// Record `n` completions at time `t`.
    pub fn record(&mut self, t: SimTime, n: u64) {
        let idx = (t.as_secs() / self.bin_secs) as usize;
        if idx >= self.bins.len() {
            self.bins.resize(idx + 1, 0);
        }
        self.bins[idx] += n;
        self.total += n;
    }

    /// Total completions recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Per-bin rate in completions/second, as `(bin_start_secs, rate)`.
    pub fn rates(&self) -> Vec<(u64, f64)> {
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &n)| (i as u64 * self.bin_secs, n as f64 / self.bin_secs as f64))
            .collect()
    }

    /// Rate over the half-open window `[from_sec, to_sec)`.
    pub fn rate_in_window(&self, from_sec: u64, to_sec: u64) -> f64 {
        if to_sec <= from_sec {
            return 0.0;
        }
        let lo = (from_sec / self.bin_secs) as usize;
        let hi = to_sec.div_ceil(self.bin_secs) as usize;
        let sum: u64 = self.bins.iter().skip(lo).take(hi.saturating_sub(lo)).sum();
        sum as f64 / (to_sec - from_sec) as f64
    }

    /// Merge per-bin counts of several meters (e.g. "average YCSB
    /// throughput across all 4 VMs" sums the clients then divides).
    pub fn merged(meters: &[&ThroughputMeter]) -> ThroughputMeter {
        assert!(!meters.is_empty());
        let bin_secs = meters[0].bin_secs;
        assert!(meters.iter().all(|m| m.bin_secs == bin_secs));
        let len = meters.iter().map(|m| m.bins.len()).max().unwrap_or(0);
        let mut bins = vec![0u64; len];
        let mut total = 0;
        for m in meters {
            for (i, &n) in m.bins.iter().enumerate() {
                bins[i] += n;
            }
            total += m.total;
        }
        ThroughputMeter {
            bin_secs,
            bins,
            total,
        }
    }
}

/// Descriptive statistics of a sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean (0 for an empty sample).
    pub mean: f64,
    /// Minimum (0 for an empty sample).
    pub min: f64,
    /// Maximum (0 for an empty sample).
    pub max: f64,
    /// Sample standard deviation (0 for n < 2).
    pub stddev: f64,
}

impl Summary {
    /// Compute a summary of `values`.
    pub fn of(values: impl IntoIterator<Item = f64>) -> Summary {
        let mut count = 0usize;
        let mut sum = 0.0;
        let mut sumsq = 0.0;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for v in values {
            count += 1;
            sum += v;
            sumsq += v * v;
            min = min.min(v);
            max = max.max(v);
        }
        if count == 0 {
            return Summary {
                count: 0,
                mean: 0.0,
                min: 0.0,
                max: 0.0,
                stddev: 0.0,
            };
        }
        let mean = sum / count as f64;
        let var = if count > 1 {
            ((sumsq - sum * sum / count as f64) / (count as f64 - 1.0)).max(0.0)
        } else {
            0.0
        };
        Summary {
            count,
            mean,
            min,
            max,
            stddev: var.sqrt(),
        }
    }
}

/// Number of buckets in a [`FixedHistogram`] — one per power of two of
/// nanoseconds, covering the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A histogram of simulated durations with a *fixed* logarithmic bucket
/// layout: bucket `i` holds durations whose nanosecond count has `i`
/// significant bits (bucket 0 is exactly zero, bucket 1 is 1 ns, bucket
/// `i` covers `[2^(i-1), 2^i)` ns).
///
/// The layout never depends on the data, so two runs that observe the same
/// durations in any order render byte-identical output — the property the
/// metrics registry's deterministic export relies on.
#[derive(Clone, Debug)]
pub struct FixedHistogram {
    counts: [u64; HISTOGRAM_BUCKETS],
    total: u64,
    sum_ns: u64,
    max_ns: u64,
}

impl Default for FixedHistogram {
    fn default() -> Self {
        FixedHistogram::new()
    }
}

impl FixedHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        FixedHistogram {
            counts: [0; HISTOGRAM_BUCKETS],
            total: 0,
            sum_ns: 0,
            max_ns: 0,
        }
    }

    /// The bucket index a duration falls into.
    #[inline]
    pub fn bucket_of(d: SimDuration) -> usize {
        let ns = d.as_nanos();
        (64 - ns.leading_zeros()) as usize
    }

    /// Lower bound (inclusive) of bucket `i`, in nanoseconds.
    pub fn bucket_floor_ns(i: usize) -> u64 {
        match i {
            0 => 0,
            _ => 1u64 << (i - 1),
        }
    }

    /// Record one observation.
    #[inline]
    pub fn observe(&mut self, d: SimDuration) {
        // 64 - leading_zeros is at most 64 for u64::MAX; clamp into range.
        let b = Self::bucket_of(d).min(HISTOGRAM_BUCKETS - 1);
        self.counts[b] += 1;
        self.total += 1;
        self.sum_ns = self.sum_ns.saturating_add(d.as_nanos());
        self.max_ns = self.max_ns.max(d.as_nanos());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Sum of all observations, in nanoseconds (saturating).
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// Largest observation, in nanoseconds.
    pub fn max_ns(&self) -> u64 {
        self.max_ns
    }

    /// Per-bucket counts (fixed layout, see type docs).
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.counts
    }

    /// Nearest-rank quantile upper bound: the bucket ceiling (exclusive
    /// power-of-two bound) below which at least `p`% of observations fall.
    /// Returns 0 for an empty histogram.
    pub fn quantile_ceil_ns(&self, p: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return match i {
                    0 => 0,
                    63 => u64::MAX,
                    _ => 1u64 << i,
                };
            }
        }
        u64::MAX
    }
}

/// Percentile of a sample (nearest-rank). `p` in `[0, 100]`.
pub fn percentile(values: &mut [f64], p: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs in samples"));
    let rank = ((p / 100.0) * values.len() as f64).ceil() as usize;
    values[rank.clamp(1, values.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn series_step_lookup() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_secs(1), 10.0);
        ts.push(SimTime::from_secs(3), 30.0);
        assert_eq!(ts.value_at(SimTime::ZERO), None);
        assert_eq!(ts.value_at(SimTime::from_secs(1)), Some(10.0));
        assert_eq!(ts.value_at(SimTime::from_secs(2)), Some(10.0));
        assert_eq!(ts.value_at(SimTime::from_secs(5)), Some(30.0));
    }

    #[test]
    fn series_window() {
        let mut ts = TimeSeries::new();
        for s in 0..10 {
            ts.push(SimTime::from_secs(s), s as f64);
        }
        let vals: Vec<f64> = ts
            .window(SimTime::from_secs(3), SimTime::from_secs(6))
            .collect();
        assert_eq!(vals, vec![3.0, 4.0, 5.0]);
    }

    #[test]
    fn series_csv() {
        let mut ts = TimeSeries::new();
        ts.push(SimTime::from_millis(500), 2.5);
        let csv = ts.to_csv("t,v");
        assert_eq!(csv, "t,v\n0.500,2.5000\n");
    }

    #[test]
    fn meter_bins_per_second() {
        let mut m = ThroughputMeter::new(1);
        m.record(SimTime::from_millis(100), 5);
        m.record(SimTime::from_millis(900), 5);
        m.record(SimTime::from_millis(1100), 7);
        let rates = m.rates();
        assert_eq!(rates[0], (0, 10.0));
        assert_eq!(rates[1], (1, 7.0));
        assert_eq!(m.total(), 17);
    }

    #[test]
    fn meter_window_rate() {
        let mut m = ThroughputMeter::new(1);
        for s in 0..10u64 {
            m.record(SimTime::from_secs(s) + SimDuration::from_millis(1), s);
        }
        // seconds 2..5 hold 2+3+4 = 9 events over 3 s.
        assert!((m.rate_in_window(2, 5) - 3.0).abs() < 1e-12);
        assert_eq!(m.rate_in_window(5, 5), 0.0);
    }

    #[test]
    fn meter_merge_sums_bins() {
        let mut a = ThroughputMeter::new(1);
        let mut b = ThroughputMeter::new(1);
        a.record(SimTime::from_secs(0), 3);
        b.record(SimTime::from_secs(0), 4);
        b.record(SimTime::from_secs(2), 5);
        let m = ThroughputMeter::merged(&[&a, &b]);
        assert_eq!(m.rates()[0].1, 7.0);
        assert_eq!(m.rates()[2].1, 5.0);
        assert_eq!(m.total(), 12);
    }

    #[test]
    fn summary_basic() {
        let s = Summary::of([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.stddev - 1.2909944487).abs() < 1e-6);
    }

    #[test]
    fn summary_empty_and_single() {
        let e = Summary::of(std::iter::empty());
        assert_eq!(e.count, 0);
        assert_eq!(e.mean, 0.0);
        let s = Summary::of([7.0]);
        assert_eq!(s.stddev, 0.0);
        assert_eq!(s.mean, 7.0);
    }

    #[test]
    fn histogram_fixed_buckets() {
        let mut h = FixedHistogram::new();
        h.observe(SimDuration::ZERO);
        h.observe(SimDuration::from_nanos(1));
        h.observe(SimDuration::from_nanos(2));
        h.observe(SimDuration::from_nanos(3));
        h.observe(SimDuration::from_nanos(1024));
        assert_eq!(h.count(), 5);
        assert_eq!(h.buckets()[0], 1); // exactly zero
        assert_eq!(h.buckets()[1], 1); // 1 ns
        assert_eq!(h.buckets()[2], 2); // [2, 4) ns
        assert_eq!(h.buckets()[11], 1); // [1024, 2048) ns
        assert_eq!(h.sum_ns(), 1030);
        assert_eq!(h.max_ns(), 1024);
        assert_eq!(FixedHistogram::bucket_floor_ns(11), 1024);
    }

    #[test]
    fn histogram_order_independent() {
        let obs = [0u64, 5, 17, 1_000_000, 3, 17, 42];
        let mut a = FixedHistogram::new();
        let mut b = FixedHistogram::new();
        for &ns in &obs {
            a.observe(SimDuration::from_nanos(ns));
        }
        for &ns in obs.iter().rev() {
            b.observe(SimDuration::from_nanos(ns));
        }
        assert_eq!(a.buckets(), b.buckets());
        assert_eq!(a.sum_ns(), b.sum_ns());
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = FixedHistogram::new();
        assert_eq!(h.quantile_ceil_ns(50.0), 0);
        for _ in 0..9 {
            h.observe(SimDuration::from_nanos(100)); // bucket 7: [64, 128)
        }
        h.observe(SimDuration::from_millis(1));
        assert_eq!(h.quantile_ceil_ns(50.0), 128);
        assert_eq!(h.quantile_ceil_ns(90.0), 128);
        assert!(h.quantile_ceil_ns(99.0) >= 1_000_000);
    }

    #[test]
    fn percentile_nearest_rank() {
        let mut v = vec![10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&mut v, 50.0), 30.0);
        assert_eq!(percentile(&mut v, 100.0), 50.0);
        assert_eq!(percentile(&mut v, 0.0), 10.0);
        assert_eq!(percentile(&mut [], 50.0), 0.0);
    }
}
