//! Byte-size and bandwidth units.
//!
//! The paper's testbed is specified in GB of DRAM, GB datasets, and Gbps
//! Ethernet; this module provides the conversion helpers so scenario code
//! can be written in the paper's own units.

/// One kibibyte (1024 bytes).
pub const KIB: u64 = 1024;
/// One mebibyte.
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte.
pub const GIB: u64 = 1024 * MIB;

/// Bandwidth in bytes per second.
///
/// Stored as `f64` because the fluid-flow network model divides capacity
/// among flows; all conversions to simulated time go through
/// [`Bandwidth::transfer_time`] which rounds to integer nanoseconds.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Zero bandwidth (an idle or disconnected link).
    pub const ZERO: Bandwidth = Bandwidth(0.0);

    /// Construct from bytes per second.
    #[inline]
    pub fn bytes_per_sec(b: f64) -> Self {
        assert!(
            b.is_finite() && b >= 0.0,
            "bandwidth must be finite and non-negative"
        );
        Bandwidth(b)
    }

    /// Construct from megabytes (10^6 bytes) per second, the unit disk
    /// vendors quote.
    #[inline]
    pub fn mb_per_sec(mb: f64) -> Self {
        Bandwidth::bytes_per_sec(mb * 1e6)
    }

    /// Construct from gigabits (10^9 bits) per second, the unit network
    /// links are quoted in. 1 Gbps = 125 MB/s.
    #[inline]
    pub fn gbps(g: f64) -> Self {
        Bandwidth::bytes_per_sec(g * 1e9 / 8.0)
    }

    /// Construct from megabits per second.
    #[inline]
    pub fn mbps(m: f64) -> Self {
        Bandwidth::bytes_per_sec(m * 1e6 / 8.0)
    }

    /// Raw bytes per second.
    #[inline]
    pub fn as_bytes_per_sec(self) -> f64 {
        self.0
    }

    /// Time to move `bytes` at this rate. Returns [`crate::SimDuration::MAX`]
    /// for zero bandwidth.
    #[inline]
    pub fn transfer_time(self, bytes: u64) -> crate::SimDuration {
        if self.0 <= 0.0 {
            return crate::SimDuration::MAX;
        }
        crate::SimDuration::from_secs_f64(bytes as f64 / self.0)
    }

    /// Bytes moved in `dur` at this rate.
    #[inline]
    pub fn bytes_in(self, dur: crate::SimDuration) -> f64 {
        self.0 * dur.as_secs_f64()
    }
}

/// Format a byte count in a human-friendly unit (B, KiB, MiB, GiB).
pub fn fmt_bytes(bytes: u64) -> String {
    if bytes >= 10 * GIB {
        format!("{:.1} GiB", bytes as f64 / GIB as f64)
    } else if bytes >= GIB {
        format!("{:.2} GiB", bytes as f64 / GIB as f64)
    } else if bytes >= MIB {
        format!("{:.1} MiB", bytes as f64 / MIB as f64)
    } else if bytes >= KIB {
        format!("{:.1} KiB", bytes as f64 / KIB as f64)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constants() {
        assert_eq!(KIB, 1024);
        assert_eq!(MIB, 1_048_576);
        assert_eq!(GIB, 1_073_741_824);
    }

    #[test]
    fn gbps_is_125_mbytes() {
        let bw = Bandwidth::gbps(1.0);
        assert!((bw.as_bytes_per_sec() - 125e6).abs() < 1e-6);
    }

    #[test]
    fn transfer_time_matches_rate() {
        let bw = Bandwidth::mb_per_sec(100.0);
        let t = bw.transfer_time(200_000_000);
        assert!((t.as_secs_f64() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn zero_bandwidth_never_completes() {
        assert_eq!(Bandwidth::ZERO.transfer_time(1), crate::SimDuration::MAX);
    }

    #[test]
    fn bytes_in_inverse_of_transfer_time() {
        let bw = Bandwidth::gbps(1.0);
        let d = crate::SimDuration::from_secs(4);
        assert!((bw.bytes_in(d) - 500e6).abs() < 1.0);
    }

    #[test]
    fn human_formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(2048), "2.0 KiB");
        assert_eq!(fmt_bytes(3 * MIB + MIB / 2), "3.5 MiB");
        assert_eq!(fmt_bytes(12 * GIB), "12.0 GiB");
    }

    #[test]
    #[should_panic(expected = "bandwidth must be finite")]
    fn negative_bandwidth_rejected() {
        let _ = Bandwidth::bytes_per_sec(-1.0);
    }
}
