//! Event queue and simulation executor.
//!
//! [`Simulation`] owns the world state `W`, the virtual clock, and a
//! priority queue of scheduled events. The general-case event is a boxed
//! `FnOnce` that receives `&mut Simulation<W>`; the three highest-volume
//! event kinds (timer ticks, flow completions, device-op completions) can
//! instead be scheduled as plain-data [`FastEvent`]s that never touch the
//! allocator and dispatch through a single installed function pointer.
//!
//! Storage is a generation-tagged slab of event slots indexed by an
//! index-based 4-ary min-heap:
//!
//! * scheduling writes one slot (reusing a free one when available) and
//!   pushes a `(time, seq, slot, gen)` key into the heap — no hashing;
//! * cancellation bumps the slot's generation and frees it immediately
//!   (O(1)); the stale heap key is discarded when it surfaces at the top;
//! * popping checks the key's generation against the slot's — a mismatch
//!   means the event was cancelled, so the key is skipped.
//!
//! Determinism: events are ordered by `(time, sequence-number)`. The
//! sequence number is assigned at scheduling time, so two events scheduled
//! for the same instant fire in the order they were scheduled, on every run.

use crate::time::{SimDuration, SimTime};

/// Handle to a scheduled event, usable to cancel it before it fires.
///
/// The handle is a slab slot index plus the generation the slot had when the
/// event was scheduled; once the event fires or is cancelled the generation
/// advances and the handle goes permanently stale, so cancelling a fired or
/// cancelled event is a cheap, safe no-op.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId {
    slot: u32,
    gen: u32,
}

type EventFn<W> = Box<dyn FnOnce(&mut Simulation<W>)>;
type PeriodicFn<W> = Box<dyn FnMut(&mut Simulation<W>) -> bool>;

/// A plain-data event that schedules and fires without heap allocation.
///
/// The simulation core does not interpret the payloads; the embedding layer
/// installs one dispatcher with [`Simulation::set_fast_handler`] and gives
/// the words whatever meaning it needs. The variants mirror the three event
/// kinds that dominate every scenario's event volume.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FastEvent {
    /// A timer tick: `kind` selects the tick family, `a`/`b` carry payload
    /// words (an object id and a generation, typically).
    Timer {
        /// Dispatcher-defined tick family.
        kind: u32,
        /// First payload word.
        a: u64,
        /// Second payload word.
        b: u64,
    },
    /// A network flow completion / poll point is due.
    FlowDue {
        /// Dispatcher-defined token identifying the poll domain.
        token: u64,
    },
    /// A device or swap operation completed.
    DeviceOp {
        /// Dispatcher-defined request identifier.
        req: u64,
    },
}

/// What a live event slot holds.
enum Payload<W> {
    /// General case: a boxed one-shot closure.
    Closure(EventFn<W>),
    /// Allocation-free plain-data event, routed to the installed handler.
    Fast(FastEvent),
    /// Self-rescheduling periodic closure; the box is moved to a fresh slot
    /// on each tick instead of being reallocated.
    Periodic(PeriodicFn<W>, SimDuration),
    /// Free slot; the value is the next free slot index (`u32::MAX` ends
    /// the list).
    Vacant(u32),
}

struct Slot<W> {
    gen: u32,
    payload: Payload<W>,
}

const NO_SLOT: u32 = u32::MAX;

/// Heap key: total order `(time, seq)`; `slot`/`gen` locate the payload and
/// detect cancellation.
#[derive(Clone, Copy)]
struct HeapKey {
    time: SimTime,
    seq: u64,
    slot: u32,
    gen: u32,
}

impl HeapKey {
    #[inline]
    fn rank(&self) -> (SimTime, u64) {
        (self.time, self.seq)
    }
}

/// Index-based 4-ary min-heap of [`HeapKey`]s. Flatter than a binary heap
/// (half the levels), so pops touch fewer cache lines, and pushes — the
/// common operation in a DES, where most events fire near the clock — do
/// fewer comparisons per level than a pairing of binary-heap levels.
struct MinHeap {
    keys: Vec<HeapKey>,
}

impl MinHeap {
    const ARITY: usize = 4;

    fn new() -> Self {
        MinHeap { keys: Vec::new() }
    }

    #[inline]
    fn peek(&self) -> Option<&HeapKey> {
        self.keys.first()
    }

    fn push(&mut self, key: HeapKey) {
        self.keys.push(key);
        self.sift_up(self.keys.len() - 1);
    }

    fn pop(&mut self) -> Option<HeapKey> {
        let n = self.keys.len();
        if n == 0 {
            return None;
        }
        self.keys.swap(0, n - 1);
        let top = self.keys.pop();
        if !self.keys.is_empty() {
            // The displaced key came from the bottom, so it almost always
            // belongs near the bottom again: walk the hole down choosing the
            // best child without comparing against the key at each level,
            // then sift the key up from where the hole lands. Saves one
            // comparison per level on the common path (the same strategy the
            // standard library's BinaryHeap uses).
            self.sift_down_to_bottom(0);
        }
        top
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        let key = self.keys[i];
        let rank = key.rank();
        while i > 0 {
            let parent = (i - 1) / Self::ARITY;
            if self.keys[parent].rank() <= rank {
                break;
            }
            self.keys[i] = self.keys[parent];
            i = parent;
        }
        self.keys[i] = key;
    }

    /// Move the hole at `i` all the way to a leaf along the min-child path,
    /// then place `keys[i]`'s value by sifting up from the leaf.
    #[inline]
    fn sift_down_to_bottom(&mut self, mut i: usize) {
        let n = self.keys.len();
        let key = self.keys[i];
        loop {
            let first_child = i * Self::ARITY + 1;
            if first_child >= n {
                break;
            }
            let last_child = (first_child + Self::ARITY).min(n);
            let mut best = first_child;
            let mut best_rank = self.keys[first_child].rank();
            for c in (first_child + 1)..last_child {
                let r = self.keys[c].rank();
                if r < best_rank {
                    best = c;
                    best_rank = r;
                }
            }
            self.keys[i] = self.keys[best];
            i = best;
        }
        self.keys[i] = key;
        self.sift_up(i);
    }
}

/// A discrete-event simulation: world state plus virtual clock plus pending
/// events.
pub struct Simulation<W> {
    now: SimTime,
    state: W,
    heap: MinHeap,
    slots: Vec<Slot<W>>,
    free_head: u32,
    /// Count of scheduled-and-not-yet-fired-or-cancelled events. Stale heap
    /// keys are excluded, so this never under-counts or underflows.
    live: usize,
    next_seq: u64,
    executed: u64,
    stopped: bool,
    fast_handler: Option<fn(&mut Simulation<W>, FastEvent)>,
}

impl<W> Simulation<W> {
    /// Create a simulation at t = 0 around an initial world state.
    pub fn new(state: W) -> Self {
        Simulation {
            now: SimTime::ZERO,
            state,
            heap: MinHeap::new(),
            slots: Vec::new(),
            free_head: NO_SLOT,
            live: 0,
            next_seq: 0,
            executed: 0,
            stopped: false,
            fast_handler: None,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared access to the world state.
    #[inline]
    pub fn state(&self) -> &W {
        &self.state
    }

    /// Exclusive access to the world state.
    #[inline]
    pub fn state_mut(&mut self) -> &mut W {
        &mut self.state
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending. Cancelled and fired events are
    /// excluded exactly.
    pub fn events_pending(&self) -> usize {
        self.live
    }

    /// Install the dispatcher for [`FastEvent`]s. The embedding layer calls
    /// this once at world construction; scheduling a fast event without a
    /// handler installed panics when the event fires.
    pub fn set_fast_handler(&mut self, handler: fn(&mut Simulation<W>, FastEvent)) {
        self.fast_handler = Some(handler);
    }

    /// Allocate a slot for `payload` and push its heap key. Returns the id.
    fn insert(&mut self, at: SimTime, payload: Payload<W>) -> EventId {
        let time = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = if self.free_head != NO_SLOT {
            let slot = self.free_head;
            let s = &mut self.slots[slot as usize];
            match s.payload {
                Payload::Vacant(next) => self.free_head = next,
                _ => unreachable!("free list points at an occupied slot"),
            }
            s.payload = payload;
            slot
        } else {
            let slot = u32::try_from(self.slots.len()).expect("event slab exceeded u32 slots");
            self.slots.push(Slot { gen: 0, payload });
            slot
        };
        let gen = self.slots[slot as usize].gen;
        self.heap.push(HeapKey {
            time,
            seq,
            slot,
            gen,
        });
        self.live += 1;
        EventId { slot, gen }
    }

    /// Free `slot`, returning its payload and invalidating outstanding ids.
    fn release(&mut self, slot: u32) -> Payload<W> {
        let s = &mut self.slots[slot as usize];
        s.gen = s.gen.wrapping_add(1);
        let payload = std::mem::replace(&mut s.payload, Payload::Vacant(self.free_head));
        self.free_head = slot;
        payload
    }

    /// Schedule `f` to fire at absolute time `at`. Scheduling in the past
    /// fires the event "now" (it is clamped to the current time), which can
    /// happen legitimately when a rate computation rounds down.
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F) -> EventId
    where
        F: FnOnce(&mut Simulation<W>) + 'static,
    {
        self.insert(at, Payload::Closure(Box::new(f)))
    }

    /// Schedule `f` to fire after `delay`.
    pub fn schedule_in<F>(&mut self, delay: SimDuration, f: F) -> EventId
    where
        F: FnOnce(&mut Simulation<W>) + 'static,
    {
        self.insert(self.now + delay, Payload::Closure(Box::new(f)))
    }

    /// Schedule an already-boxed event (avoids double boxing in helpers).
    pub fn schedule_boxed(&mut self, at: SimTime, f: EventFn<W>) -> EventId {
        self.insert(at, Payload::Closure(f))
    }

    /// Schedule a plain-data [`FastEvent`] at absolute time `at` — no heap
    /// allocation on this path. Requires a handler installed via
    /// [`Simulation::set_fast_handler`] before the event fires.
    pub fn schedule_fast(&mut self, at: SimTime, ev: FastEvent) -> EventId {
        self.insert(at, Payload::Fast(ev))
    }

    /// Schedule a plain-data [`FastEvent`] after `delay`.
    pub fn schedule_fast_in(&mut self, delay: SimDuration, ev: FastEvent) -> EventId {
        self.insert(self.now + delay, Payload::Fast(ev))
    }

    /// Schedule `f` to fire every `period`, starting at `start`, for as long
    /// as it returns `true`. The closure is boxed once; ticks move the box
    /// between slots without reallocating.
    pub fn schedule_every<F>(&mut self, start: SimTime, period: SimDuration, f: F)
    where
        F: FnMut(&mut Simulation<W>) -> bool + 'static,
        W: 'static,
    {
        assert!(
            !period.is_zero(),
            "schedule_every requires a non-zero period"
        );
        self.insert(start, Payload::Periodic(Box::new(f), period));
    }

    /// Cancel a pending event. Cancelling an already-fired or already-
    /// cancelled event is a no-op and returns `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        match self.slots.get(id.slot as usize) {
            Some(s) if s.gen == id.gen && !matches!(s.payload, Payload::Vacant(_)) => {
                self.release(id.slot);
                self.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Request that the run loop stop after the current event returns.
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// Execute a single event. Returns `false` if the queue is empty or the
    /// simulation was stopped.
    pub fn step(&mut self) -> bool {
        if self.stopped {
            return false;
        }
        while let Some(key) = self.heap.pop() {
            if self.slots[key.slot as usize].gen != key.gen {
                // Cancelled: the slot was released (and possibly reused)
                // after this key was pushed.
                continue;
            }
            debug_assert!(key.time >= self.now, "event queue went backwards");
            self.now = key.time;
            self.executed += 1;
            self.live -= 1;
            match self.release(key.slot) {
                Payload::Closure(f) => f(self),
                Payload::Fast(ev) => {
                    let handler = self
                        .fast_handler
                        .expect("FastEvent fired with no handler installed");
                    handler(self, ev);
                }
                Payload::Periodic(mut f, period) => {
                    if f(self) {
                        let next = self.now + period;
                        self.insert(next, Payload::Periodic(f, period));
                    }
                }
                Payload::Vacant(_) => unreachable!("live heap key pointed at a vacant slot"),
            }
            return true;
        }
        false
    }

    /// Run until the queue is exhausted or [`Simulation::stop`] is called.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Earliest pending event time, pruning stale (cancelled) heap keys off
    /// the top along the way.
    fn next_live_time(&mut self) -> Option<SimTime> {
        while let Some(key) = self.heap.peek() {
            if self.slots[key.slot as usize].gen == key.gen {
                return Some(key.time);
            }
            self.heap.pop();
        }
        None
    }

    /// Run until the clock reaches `deadline` (exclusive of events scheduled
    /// after it), the queue empties, or the simulation is stopped. On a
    /// normal deadline exit the clock is advanced to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            if self.stopped {
                return;
            }
            match self.next_live_time() {
                Some(t) if t <= deadline => {
                    if !self.step() {
                        return;
                    }
                }
                _ => {
                    self.now = self.now.max(deadline);
                    return;
                }
            }
        }
    }

    /// Consume the simulation and return the final world state.
    pub fn into_state(self) -> W {
        self.state
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulation::new(Vec::<u32>::new());
        sim.schedule_at(SimTime::from_secs(3), |s| s.state_mut().push(3));
        sim.schedule_at(SimTime::from_secs(1), |s| s.state_mut().push(1));
        sim.schedule_at(SimTime::from_secs(2), |s| s.state_mut().push(2));
        sim.run();
        assert_eq!(sim.state(), &[1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_secs(3));
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn ties_fire_in_scheduling_order() {
        let mut sim = Simulation::new(Vec::<u32>::new());
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            sim.schedule_at(t, move |s| s.state_mut().push(i));
        }
        sim.run();
        assert_eq!(sim.state(), &(0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Simulation::new(0u64);
        sim.schedule_at(SimTime::from_secs(1), |s| {
            *s.state_mut() += 1;
            s.schedule_in(SimDuration::from_secs(1), |s| {
                *s.state_mut() += 10;
            });
        });
        sim.run();
        assert_eq!(*sim.state(), 11);
        assert_eq!(sim.now(), SimTime::from_secs(2));
    }

    #[test]
    fn cancellation() {
        let mut sim = Simulation::new(0u64);
        let id = sim.schedule_at(SimTime::from_secs(1), |s| *s.state_mut() += 1);
        sim.schedule_at(SimTime::from_secs(2), |s| *s.state_mut() += 100);
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double cancel is a no-op");
        sim.run();
        assert_eq!(*sim.state(), 100);
        assert_eq!(sim.events_executed(), 1);
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut sim = Simulation::new(());
        assert!(!sim.cancel(EventId { slot: 999, gen: 0 }));
    }

    #[test]
    fn cancel_fired_id_keeps_pending_count_correct() {
        // Regression: the seed implementation recorded any cancelled seq in
        // a set and subtracted the set's size from the queue length, so
        // cancelling an id that had already fired corrupted (and could
        // underflow) events_pending() forever.
        let mut sim = Simulation::new(0u64);
        let id = sim.schedule_at(SimTime::from_secs(1), |s| *s.state_mut() += 1);
        sim.run();
        assert_eq!(sim.events_pending(), 0);
        assert!(!sim.cancel(id), "cancelling a fired event reports false");
        assert_eq!(sim.events_pending(), 0);
        sim.schedule_at(SimTime::from_secs(2), |_| {});
        assert_eq!(sim.events_pending(), 1);
        assert!(!sim.cancel(id), "the stale id can never cancel a new event");
        assert_eq!(sim.events_pending(), 1);
    }

    #[test]
    fn slot_reuse_does_not_resurrect_old_ids() {
        let mut sim = Simulation::new(Vec::<u32>::new());
        let a = sim.schedule_at(SimTime::from_secs(1), |s| s.state_mut().push(1));
        assert!(sim.cancel(a));
        // Reuses slot 0 with a bumped generation.
        let _b = sim.schedule_at(SimTime::from_secs(1), |s| s.state_mut().push(2));
        assert!(
            !sim.cancel(a),
            "old id must not cancel the slot's new tenant"
        );
        sim.run();
        assert_eq!(sim.state(), &[2]);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new(Vec::<u64>::new());
        for t in [1u64, 2, 3, 4, 5] {
            sim.schedule_at(SimTime::from_secs(t), move |s| s.state_mut().push(t));
        }
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.state(), &[1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_secs(3));
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(sim.state(), &[1, 2, 3, 4, 5]);
        // Clock advances to the deadline even with no events there.
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    #[test]
    fn run_until_skips_cancelled_head() {
        let mut sim = Simulation::new(0u64);
        let id = sim.schedule_at(SimTime::from_secs(1), |s| *s.state_mut() += 1);
        sim.schedule_at(SimTime::from_secs(5), |s| *s.state_mut() += 10);
        sim.cancel(id);
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(*sim.state(), 0);
        assert_eq!(sim.now(), SimTime::from_secs(2));
        sim.run();
        assert_eq!(*sim.state(), 10);
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut sim = Simulation::new(Vec::<u64>::new());
        sim.schedule_at(SimTime::from_secs(5), |s| {
            s.schedule_at(SimTime::from_secs(1), |s| {
                let t = s.now().as_secs();
                s.state_mut().push(t);
            });
        });
        sim.run();
        assert_eq!(sim.state(), &[5], "past event fired at current time");
    }

    #[test]
    fn stop_halts_the_loop() {
        let mut sim = Simulation::new(0u64);
        sim.schedule_at(SimTime::from_secs(1), |s| {
            *s.state_mut() += 1;
            s.stop();
        });
        sim.schedule_at(SimTime::from_secs(2), |s| *s.state_mut() += 1);
        sim.run();
        assert_eq!(*sim.state(), 1);
        assert_eq!(sim.events_pending(), 1);
    }

    #[test]
    fn periodic_runs_until_false() {
        let mut sim = Simulation::new(Vec::<u64>::new());
        sim.schedule_every(SimTime::from_secs(1), SimDuration::from_secs(2), |s| {
            let t = s.now().as_secs();
            s.state_mut().push(t);
            t < 7
        });
        sim.run();
        assert_eq!(sim.state(), &[1, 3, 5, 7]);
    }

    #[test]
    fn events_pending_excludes_cancelled() {
        let mut sim = Simulation::new(());
        let a = sim.schedule_at(SimTime::from_secs(1), |_| {});
        let _b = sim.schedule_at(SimTime::from_secs(2), |_| {});
        assert_eq!(sim.events_pending(), 2);
        sim.cancel(a);
        assert_eq!(sim.events_pending(), 1);
    }

    #[test]
    fn fast_events_dispatch_through_installed_handler() {
        fn dispatch(sim: &mut Simulation<Vec<FastEvent>>, ev: FastEvent) {
            sim.state_mut().push(ev);
        }
        let mut sim = Simulation::new(Vec::new());
        sim.set_fast_handler(dispatch);
        sim.schedule_fast(SimTime::from_secs(2), FastEvent::DeviceOp { req: 9 });
        sim.schedule_fast(
            SimTime::from_secs(1),
            FastEvent::Timer {
                kind: 3,
                a: 1,
                b: 2,
            },
        );
        sim.schedule_fast_in(SimDuration::from_secs(3), FastEvent::FlowDue { token: 7 });
        sim.run();
        assert_eq!(
            sim.state(),
            &[
                FastEvent::Timer {
                    kind: 3,
                    a: 1,
                    b: 2
                },
                FastEvent::DeviceOp { req: 9 },
                FastEvent::FlowDue { token: 7 },
            ]
        );
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn fast_events_cancel_like_closures() {
        fn dispatch(sim: &mut Simulation<u64>, _ev: FastEvent) {
            *sim.state_mut() += 1;
        }
        let mut sim = Simulation::new(0u64);
        sim.set_fast_handler(dispatch);
        let id = sim.schedule_fast(SimTime::from_secs(1), FastEvent::FlowDue { token: 0 });
        sim.schedule_fast(SimTime::from_secs(2), FastEvent::FlowDue { token: 1 });
        assert!(sim.cancel(id));
        assert_eq!(sim.events_pending(), 1);
        sim.run();
        assert_eq!(*sim.state(), 1);
    }

    #[test]
    fn mixed_fast_and_boxed_preserve_scheduling_order() {
        fn dispatch(sim: &mut Simulation<Vec<u32>>, ev: FastEvent) {
            if let FastEvent::Timer { kind, .. } = ev {
                sim.state_mut().push(kind);
            }
        }
        let mut sim = Simulation::new(Vec::new());
        sim.set_fast_handler(dispatch);
        let t = SimTime::from_secs(1);
        sim.schedule_fast(
            t,
            FastEvent::Timer {
                kind: 0,
                a: 0,
                b: 0,
            },
        );
        sim.schedule_at(t, |s| s.state_mut().push(1));
        sim.schedule_fast(
            t,
            FastEvent::Timer {
                kind: 2,
                a: 0,
                b: 0,
            },
        );
        sim.schedule_at(t, |s| s.state_mut().push(3));
        sim.run();
        assert_eq!(sim.state(), &[0, 1, 2, 3]);
    }

    #[test]
    fn heavy_schedule_cancel_interleave_stays_consistent() {
        let mut sim = Simulation::new(0u64);
        let mut ids = Vec::new();
        for i in 0..1000u64 {
            ids.push(sim.schedule_at(SimTime::from_millis(i % 97), |s| *s.state_mut() += 1));
        }
        for id in ids.iter().step_by(2) {
            assert!(sim.cancel(*id));
        }
        assert_eq!(sim.events_pending(), 500);
        sim.run();
        assert_eq!(*sim.state(), 500);
        assert_eq!(sim.events_pending(), 0);
    }
}
