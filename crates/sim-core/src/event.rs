//! Event queue and simulation executor.
//!
//! [`Simulation`] owns the world state `W`, the virtual clock, and a
//! priority queue of scheduled events. An event is a boxed `FnOnce` that
//! receives `&mut Simulation<W>` — it may inspect and mutate the world,
//! schedule further events, and cancel pending ones.
//!
//! Determinism: events are ordered by `(time, sequence-number)`. The
//! sequence number is assigned at scheduling time, so two events scheduled
//! for the same instant fire in the order they were scheduled, on every run.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

use crate::time::{SimDuration, SimTime};

/// Handle to a scheduled event, usable to cancel it before it fires.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

type EventFn<W> = Box<dyn FnOnce(&mut Simulation<W>)>;
type PeriodicFn<W> = Box<dyn FnMut(&mut Simulation<W>) -> bool>;

struct Scheduled<W> {
    time: SimTime,
    seq: u64,
    f: EventFn<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A discrete-event simulation: world state plus virtual clock plus pending
/// events.
pub struct Simulation<W> {
    now: SimTime,
    state: W,
    queue: BinaryHeap<Scheduled<W>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    executed: u64,
    stopped: bool,
}

impl<W> Simulation<W> {
    /// Create a simulation at t = 0 around an initial world state.
    pub fn new(state: W) -> Self {
        Simulation {
            now: SimTime::ZERO,
            state,
            queue: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
            executed: 0,
            stopped: false,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Shared access to the world state.
    #[inline]
    pub fn state(&self) -> &W {
        &self.state
    }

    /// Exclusive access to the world state.
    #[inline]
    pub fn state_mut(&mut self) -> &mut W {
        &mut self.state
    }

    /// Number of events executed so far.
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events currently pending (including cancelled ones not yet
    /// drained from the heap).
    pub fn events_pending(&self) -> usize {
        self.queue.len() - self.cancelled.len()
    }

    /// Schedule `f` to fire at absolute time `at`. Scheduling in the past
    /// fires the event "now" (it is clamped to the current time), which can
    /// happen legitimately when a rate computation rounds down.
    pub fn schedule_at<F>(&mut self, at: SimTime, f: F) -> EventId
    where
        F: FnOnce(&mut Simulation<W>) + 'static,
    {
        self.schedule_boxed(at, Box::new(f))
    }

    /// Schedule `f` to fire after `delay`.
    pub fn schedule_in<F>(&mut self, delay: SimDuration, f: F) -> EventId
    where
        F: FnOnce(&mut Simulation<W>) + 'static,
    {
        self.schedule_boxed(self.now + delay, Box::new(f))
    }

    /// Schedule an already-boxed event (avoids double boxing in helpers).
    pub fn schedule_boxed(&mut self, at: SimTime, f: EventFn<W>) -> EventId {
        let time = at.max(self.now);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.queue.push(Scheduled { time, seq, f });
        EventId(seq)
    }

    /// Schedule `f` to fire every `period`, starting at `start`, for as long
    /// as it returns `true`.
    pub fn schedule_every<F>(&mut self, start: SimTime, period: SimDuration, f: F)
    where
        F: FnMut(&mut Simulation<W>) -> bool + 'static,
        W: 'static,
    {
        assert!(!period.is_zero(), "schedule_every requires a non-zero period");
        self.schedule_boxed(start, periodic_tick(Box::new(f), period));
    }

    /// Cancel a pending event. Cancelling an already-fired or already-
    /// cancelled event is a no-op and returns `false`.
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(id.0)
    }

    /// Request that the run loop stop after the current event returns.
    pub fn stop(&mut self) {
        self.stopped = true;
    }

    /// Execute a single event. Returns `false` if the queue is empty or the
    /// simulation was stopped.
    pub fn step(&mut self) -> bool {
        if self.stopped {
            return false;
        }
        while let Some(ev) = self.queue.pop() {
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            debug_assert!(ev.time >= self.now, "event queue went backwards");
            self.now = ev.time;
            self.executed += 1;
            (ev.f)(self);
            return true;
        }
        false
    }

    /// Run until the queue is exhausted or [`Simulation::stop`] is called.
    pub fn run(&mut self) {
        while self.step() {}
    }

    /// Run until the clock reaches `deadline` (exclusive of events scheduled
    /// after it), the queue empties, or the simulation is stopped. On a
    /// normal deadline exit the clock is advanced to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            if self.stopped {
                return;
            }
            match self.queue.peek() {
                Some(ev) if ev.time <= deadline => {
                    if !self.step() {
                        return;
                    }
                }
                _ => {
                    self.now = self.now.max(deadline);
                    return;
                }
            }
        }
    }

    /// Consume the simulation and return the final world state.
    pub fn into_state(self) -> W {
        self.state
    }
}

/// Build the self-rescheduling closure for [`Simulation::schedule_every`].
/// The `dyn` indirection is what lets the closure reschedule a fresh copy of
/// itself without creating an infinitely recursive type.
fn periodic_tick<W: 'static>(mut f: PeriodicFn<W>, period: SimDuration) -> EventFn<W> {
    Box::new(move |sim| {
        if f(sim) {
            let next = sim.now() + period;
            sim.schedule_boxed(next, periodic_tick(f, period));
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Simulation::new(Vec::<u32>::new());
        sim.schedule_at(SimTime::from_secs(3), |s| s.state_mut().push(3));
        sim.schedule_at(SimTime::from_secs(1), |s| s.state_mut().push(1));
        sim.schedule_at(SimTime::from_secs(2), |s| s.state_mut().push(2));
        sim.run();
        assert_eq!(sim.state(), &[1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_secs(3));
        assert_eq!(sim.events_executed(), 3);
    }

    #[test]
    fn ties_fire_in_scheduling_order() {
        let mut sim = Simulation::new(Vec::<u32>::new());
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            sim.schedule_at(t, move |s| s.state_mut().push(i));
        }
        sim.run();
        assert_eq!(sim.state(), &(0..10).collect::<Vec<_>>());
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Simulation::new(0u64);
        sim.schedule_at(SimTime::from_secs(1), |s| {
            *s.state_mut() += 1;
            s.schedule_in(SimDuration::from_secs(1), |s| {
                *s.state_mut() += 10;
            });
        });
        sim.run();
        assert_eq!(*sim.state(), 11);
        assert_eq!(sim.now(), SimTime::from_secs(2));
    }

    #[test]
    fn cancellation() {
        let mut sim = Simulation::new(0u64);
        let id = sim.schedule_at(SimTime::from_secs(1), |s| *s.state_mut() += 1);
        sim.schedule_at(SimTime::from_secs(2), |s| *s.state_mut() += 100);
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id), "double cancel is a no-op");
        sim.run();
        assert_eq!(*sim.state(), 100);
        assert_eq!(sim.events_executed(), 1);
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut sim = Simulation::new(());
        assert!(!sim.cancel(EventId(999)));
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut sim = Simulation::new(Vec::<u64>::new());
        for t in [1u64, 2, 3, 4, 5] {
            sim.schedule_at(SimTime::from_secs(t), move |s| s.state_mut().push(t));
        }
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(sim.state(), &[1, 2, 3]);
        assert_eq!(sim.now(), SimTime::from_secs(3));
        sim.run_until(SimTime::from_secs(10));
        assert_eq!(sim.state(), &[1, 2, 3, 4, 5]);
        // Clock advances to the deadline even with no events there.
        assert_eq!(sim.now(), SimTime::from_secs(10));
    }

    #[test]
    fn scheduling_in_the_past_clamps_to_now() {
        let mut sim = Simulation::new(Vec::<u64>::new());
        sim.schedule_at(SimTime::from_secs(5), |s| {
            s.schedule_at(SimTime::from_secs(1), |s| {
                let t = s.now().as_secs();
                s.state_mut().push(t);
            });
        });
        sim.run();
        assert_eq!(sim.state(), &[5], "past event fired at current time");
    }

    #[test]
    fn stop_halts_the_loop() {
        let mut sim = Simulation::new(0u64);
        sim.schedule_at(SimTime::from_secs(1), |s| {
            *s.state_mut() += 1;
            s.stop();
        });
        sim.schedule_at(SimTime::from_secs(2), |s| *s.state_mut() += 1);
        sim.run();
        assert_eq!(*sim.state(), 1);
        assert_eq!(sim.events_pending(), 1);
    }

    #[test]
    fn periodic_runs_until_false() {
        let mut sim = Simulation::new(Vec::<u64>::new());
        sim.schedule_every(SimTime::from_secs(1), SimDuration::from_secs(2), |s| {
            let t = s.now().as_secs();
            s.state_mut().push(t);
            t < 7
        });
        sim.run();
        assert_eq!(sim.state(), &[1, 3, 5, 7]);
    }

    #[test]
    fn events_pending_excludes_cancelled() {
        let mut sim = Simulation::new(());
        let a = sim.schedule_at(SimTime::from_secs(1), |_| {});
        let _b = sim.schedule_at(SimTime::from_secs(2), |_| {});
        assert_eq!(sim.events_pending(), 2);
        sim.cancel(a);
        assert_eq!(sim.events_pending(), 1);
    }
}
