//! Simulated time.
//!
//! The simulation clock is a `u64` nanosecond counter wrapped in [`SimTime`].
//! Durations are [`SimDuration`], also nanosecond-granular. Nanosecond
//! resolution covers more than 580 simulated years, far beyond any experiment
//! in the paper (the longest run is ~1000 simulated seconds).
//!
//! All floating-point conversions are provided for rate computations (the
//! fluid-flow network model works in `f64` seconds) but the canonical
//! representation is integer nanoseconds so that event ordering is exact and
//! platform-independent.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Number of nanoseconds in one second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// An absolute instant on the simulation clock, in nanoseconds since the
/// start of the simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; no event is ever scheduled at or past this instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds since the epoch.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from whole microseconds since the epoch.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from whole milliseconds since the epoch.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from whole seconds since the epoch.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds since the epoch.
    ///
    /// Negative and non-finite values saturate to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if !s.is_finite() || s <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime((s * NANOS_PER_SEC as f64).round() as u64)
    }

    /// Raw nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds since the epoch.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Whole seconds since the epoch (truncating).
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0 / NANOS_PER_SEC
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is in
    /// the future.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked subtraction of two instants.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Construct from raw nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * NANOS_PER_SEC)
    }

    /// Construct from fractional seconds. Negative and non-finite values
    /// saturate to zero; overly large values saturate to [`SimDuration::MAX`].
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration::ZERO;
        }
        let ns = s * NANOS_PER_SEC as f64;
        if ns >= u64::MAX as f64 {
            SimDuration::MAX
        } else {
            SimDuration(ns.round() as u64)
        }
    }

    /// Raw nanoseconds.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / NANOS_PER_SEC as f64
    }

    /// Whole seconds (truncating).
    #[inline]
    pub const fn as_secs(self) -> u64 {
        self.0 / NANOS_PER_SEC
    }

    /// True if this duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating addition.
    #[inline]
    pub fn saturating_add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }

    /// Multiply by an integer factor, saturating.
    #[inline]
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3 * NANOS_PER_SEC);
        assert_eq!(SimTime::from_millis(1500).as_secs_f64(), 1.5);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimDuration::from_secs(2).as_secs(), 2);
        assert_eq!(SimDuration::from_millis(250).as_secs_f64(), 0.25);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(3);
        assert_eq!((t + d).as_secs(), 13);
        assert_eq!((t - d).as_secs(), 7);
        assert_eq!(t - SimTime::from_secs(4), SimDuration::from_secs(6));
        assert_eq!(d * 4, SimDuration::from_secs(12));
        assert_eq!(SimDuration::from_secs(12) / 4, SimDuration::from_secs(3));
    }

    #[test]
    fn saturating_behaviour() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(4));
        assert_eq!(early.checked_since(late), None);
        assert_eq!(early - late, SimDuration::ZERO);
        assert_eq!(
            SimDuration::MAX.saturating_add(SimDuration::from_secs(1)),
            SimDuration::MAX
        );
    }

    #[test]
    fn float_conversions_clamp() {
        assert_eq!(SimTime::from_secs_f64(-3.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::INFINITY), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
        let d = SimDuration::from_secs_f64(0.125);
        assert_eq!(d.as_nanos(), 125_000_000);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::from_nanos(5);
        let b = SimTime::from_nanos(6);
        assert!(a < b);
        assert!(SimTime::ZERO < SimTime::MAX);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
        assert_eq!(format!("{}", SimDuration::from_millis(42)), "0.042s");
    }
}
