//! Block-device model.
//!
//! Swap partitions (the paper uses a 30 GB partition of a 128 GB Crucial
//! SSD) are modelled as a single-queue device: each I/O costs a fixed
//! per-operation overhead plus `bytes / bandwidth` of transfer time, and
//! operations are serviced FIFO. The device keeps a `busy_until` horizon;
//! an operation submitted while the device is busy queues behind the
//! horizon. This reproduces the effect the paper's evaluation leans on:
//! when the migration manager swaps in cold pages while the guest is also
//! paging, both sets of I/Os share one queue and every operation's latency
//! inflates — the "thrashing" of §V-B.
//!
//! The model deliberately ignores internal parallelism (NCQ) and
//! read/write asymmetry beyond distinct overheads; those second-order
//! effects do not change who wins in any of the paper's experiments.

use crate::time::{SimDuration, SimTime};
use crate::units::Bandwidth;

/// Kind of block I/O.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IoKind {
    /// Read from the device (swap-in).
    Read,
    /// Write to the device (swap-out).
    Write,
}

/// Static performance parameters of a block device.
#[derive(Clone, Copy, Debug)]
pub struct BlockDeviceSpec {
    /// Streaming read bandwidth.
    pub read_bw: Bandwidth,
    /// Streaming write bandwidth.
    pub write_bw: Bandwidth,
    /// Fixed per-read overhead (command + flash access / seek).
    pub read_overhead: SimDuration,
    /// Fixed per-write overhead.
    pub write_overhead: SimDuration,
}

impl BlockDeviceSpec {
    /// A SATA SSD of the 2014 Crucial class used in the paper's testbed:
    /// ~250 MB/s streaming, ~70 µs read / ~90 µs write overhead, which
    /// yields ≈12 k random-4K read IOPS.
    pub fn sata_ssd() -> Self {
        BlockDeviceSpec {
            read_bw: Bandwidth::mb_per_sec(250.0),
            write_bw: Bandwidth::mb_per_sec(220.0),
            read_overhead: SimDuration::from_micros(70),
            write_overhead: SimDuration::from_micros(90),
        }
    }

    /// A 7200 rpm hard disk: ~120 MB/s streaming, ~6 ms average positioning.
    /// Used by the disk-backed VMD extension.
    pub fn hdd_7200() -> Self {
        BlockDeviceSpec {
            read_bw: Bandwidth::mb_per_sec(120.0),
            write_bw: Bandwidth::mb_per_sec(110.0),
            read_overhead: SimDuration::from_millis(6),
            write_overhead: SimDuration::from_millis(6),
        }
    }

    /// Service time for one operation, excluding queueing.
    pub fn service_time(&self, kind: IoKind, bytes: u64) -> SimDuration {
        match kind {
            IoKind::Read => self.read_overhead + self.read_bw.transfer_time(bytes),
            IoKind::Write => self.write_overhead + self.write_bw.transfer_time(bytes),
        }
    }
}

/// Cumulative I/O counters, the substrate for the iostat-style sampling the
/// WSS tracker performs.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct IoCounters {
    /// Completed read operations.
    pub read_ops: u64,
    /// Completed write operations.
    pub write_ops: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Total time the device was busy, in nanoseconds.
    pub busy_nanos: u64,
}

impl IoCounters {
    /// Counter difference `self - earlier` (both must come from the same
    /// device, `earlier` sampled first).
    pub fn delta(&self, earlier: &IoCounters) -> IoCounters {
        IoCounters {
            read_ops: self.read_ops - earlier.read_ops,
            write_ops: self.write_ops - earlier.write_ops,
            read_bytes: self.read_bytes - earlier.read_bytes,
            write_bytes: self.write_bytes - earlier.write_bytes,
            busy_nanos: self.busy_nanos - earlier.busy_nanos,
        }
    }

    /// Total bytes moved in either direction.
    pub fn total_bytes(&self) -> u64 {
        self.read_bytes + self.write_bytes
    }
}

/// A FIFO block device with a busy-horizon queue model.
#[derive(Clone, Debug)]
pub struct BlockDevice {
    spec: BlockDeviceSpec,
    busy_until: SimTime,
    counters: IoCounters,
    /// Injected per-command latency (fault injection: a degraded device).
    extra_latency: SimDuration,
}

impl BlockDevice {
    /// Create an idle device with the given spec.
    pub fn new(spec: BlockDeviceSpec) -> Self {
        BlockDevice {
            spec,
            busy_until: SimTime::ZERO,
            counters: IoCounters::default(),
            extra_latency: SimDuration::ZERO,
        }
    }

    /// Inject (or clear, with `SimDuration::ZERO`) an additional
    /// per-command service latency — a swap-device degradation fault.
    /// Applies to commands submitted after the call; queued work is
    /// unaffected.
    pub fn set_extra_latency(&mut self, extra: SimDuration) {
        self.extra_latency = extra;
    }

    /// The currently injected per-command latency.
    pub fn extra_latency(&self) -> SimDuration {
        self.extra_latency
    }

    /// The device's static spec.
    pub fn spec(&self) -> &BlockDeviceSpec {
        &self.spec
    }

    /// Submit one I/O at `now`; returns its completion time. The operation
    /// queues behind everything previously submitted.
    pub fn submit(&mut self, now: SimTime, kind: IoKind, bytes: u64) -> SimTime {
        let start = self.busy_until.max(now);
        let service = self.spec.service_time(kind, bytes) + self.extra_latency;
        let done = start + service;
        self.busy_until = done;
        match kind {
            IoKind::Read => {
                self.counters.read_ops += 1;
                self.counters.read_bytes += bytes;
            }
            IoKind::Write => {
                self.counters.write_ops += 1;
                self.counters.write_bytes += bytes;
            }
        }
        self.counters.busy_nanos += service.as_nanos();
        done
    }

    /// Submit a batch of same-kind operations (e.g. a cluster of swap-ins);
    /// returns the completion time of the last one. Cheaper than calling
    /// [`BlockDevice::submit`] in a loop when only the batch completion
    /// matters.
    pub fn submit_batch(
        &mut self,
        now: SimTime,
        kind: IoKind,
        ops: u64,
        bytes_per_op: u64,
    ) -> SimTime {
        if ops == 0 {
            return now;
        }
        let start = self.busy_until.max(now);
        let service =
            (self.spec.service_time(kind, bytes_per_op) + self.extra_latency).saturating_mul(ops);
        let done = start + service;
        self.busy_until = done;
        match kind {
            IoKind::Read => {
                self.counters.read_ops += ops;
                self.counters.read_bytes += ops * bytes_per_op;
            }
            IoKind::Write => {
                self.counters.write_ops += ops;
                self.counters.write_bytes += ops * bytes_per_op;
            }
        }
        self.counters.busy_nanos += service.as_nanos();
        done
    }

    /// Submit one *contiguous* multi-page operation (a sequential run on
    /// the platter/flash): a single command overhead plus `pages ×
    /// bytes_per_page` of streaming transfer. This is what makes reading a
    /// sequentially-laid-out swap area an order of magnitude faster than
    /// random single-page reads.
    pub fn submit_run(
        &mut self,
        now: SimTime,
        kind: IoKind,
        pages: u64,
        bytes_per_page: u64,
    ) -> SimTime {
        if pages == 0 {
            return now;
        }
        let start = self.busy_until.max(now);
        let bytes = pages * bytes_per_page;
        let service = self.extra_latency
            + match kind {
                IoKind::Read => self.spec.read_overhead + self.spec.read_bw.transfer_time(bytes),
                IoKind::Write => self.spec.write_overhead + self.spec.write_bw.transfer_time(bytes),
            };
        let done = start + service;
        self.busy_until = done;
        match kind {
            IoKind::Read => {
                self.counters.read_ops += 1;
                self.counters.read_bytes += bytes;
            }
            IoKind::Write => {
                self.counters.write_ops += 1;
                self.counters.write_bytes += bytes;
            }
        }
        self.counters.busy_nanos += service.as_nanos();
        done
    }

    /// How long an operation submitted at `now` would wait before service
    /// begins (current queue depth expressed as time).
    pub fn queue_delay(&self, now: SimTime) -> SimDuration {
        self.busy_until.saturating_since(now)
    }

    /// True if the device has no queued work at `now`.
    pub fn is_idle(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Cumulative counters (snapshot; pair with [`IoCounters::delta`] for
    /// windowed rates).
    pub fn counters(&self) -> IoCounters {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> BlockDevice {
        BlockDevice::new(BlockDeviceSpec::sata_ssd())
    }

    #[test]
    fn extra_latency_delays_commands_until_cleared() {
        let mut d = dev();
        let base = d.submit(SimTime::ZERO, IoKind::Read, 4096);
        d.set_extra_latency(SimDuration::from_millis(5));
        let slow = d.submit(base, IoKind::Read, 4096);
        let delta = slow.saturating_since(base).as_secs_f64();
        assert!(
            (delta - (base.as_secs_f64() + 5e-3)).abs() < 1e-6,
            "delta={delta}"
        );
        d.set_extra_latency(SimDuration::ZERO);
        let fast = d.submit(slow, IoKind::Read, 4096);
        assert!((fast.saturating_since(slow).as_secs_f64() - base.as_secs_f64()).abs() < 1e-9);
    }

    #[test]
    fn single_read_latency() {
        let mut d = dev();
        let done = d.submit(SimTime::ZERO, IoKind::Read, 4096);
        // 70 µs overhead + 4096 B / 250 MB/s ≈ 16.4 µs.
        let expect = 70e-6 + 4096.0 / 250e6;
        assert!((done.as_secs_f64() - expect).abs() < 1e-9);
    }

    #[test]
    fn fifo_queueing_inflates_latency() {
        let mut d = dev();
        let t0 = SimTime::ZERO;
        let first = d.submit(t0, IoKind::Read, 4096);
        let second = d.submit(t0, IoKind::Read, 4096);
        assert!(second > first);
        let service = first.as_secs_f64();
        assert!((second.as_secs_f64() - 2.0 * service).abs() < 1e-9);
        assert_eq!(d.queue_delay(t0), second.saturating_since(t0));
    }

    #[test]
    fn device_drains_when_idle() {
        let mut d = dev();
        let done = d.submit(SimTime::ZERO, IoKind::Write, 4096);
        assert!(!d.is_idle(SimTime::ZERO));
        assert!(d.is_idle(done));
        // A later op starts fresh, not behind the old horizon.
        let t = done + SimDuration::from_secs(1);
        let done2 = d.submit(t, IoKind::Write, 4096);
        assert_eq!(
            done2.saturating_since(t),
            d.spec().service_time(IoKind::Write, 4096)
        );
    }

    #[test]
    fn batch_equals_loop() {
        let mut a = dev();
        let mut b = dev();
        let mut last = SimTime::ZERO;
        for _ in 0..10 {
            last = a.submit(SimTime::ZERO, IoKind::Read, 4096);
        }
        let batch = b.submit_batch(SimTime::ZERO, IoKind::Read, 10, 4096);
        assert_eq!(last, batch);
        assert_eq!(a.counters(), b.counters());
    }

    #[test]
    fn empty_batch_is_noop() {
        let mut d = dev();
        let t = SimTime::from_secs(5);
        assert_eq!(d.submit_batch(t, IoKind::Read, 0, 4096), t);
        assert_eq!(d.counters(), IoCounters::default());
    }

    #[test]
    fn counters_accumulate_and_delta() {
        let mut d = dev();
        d.submit(SimTime::ZERO, IoKind::Read, 4096);
        let snap = d.counters();
        d.submit(SimTime::ZERO, IoKind::Write, 8192);
        d.submit(SimTime::ZERO, IoKind::Read, 4096);
        let delta = d.counters().delta(&snap);
        assert_eq!(delta.read_ops, 1);
        assert_eq!(delta.write_ops, 1);
        assert_eq!(delta.read_bytes, 4096);
        assert_eq!(delta.write_bytes, 8192);
        assert_eq!(delta.total_bytes(), 12288);
    }

    #[test]
    fn sequential_run_much_faster_than_random_reads() {
        let mut random = dev();
        let mut seq = dev();
        let n = 256;
        let t_random = random.submit_batch(SimTime::ZERO, IoKind::Read, n, 4096);
        let t_seq = seq.submit_run(SimTime::ZERO, IoKind::Read, n, 4096);
        assert!(
            t_seq.as_secs_f64() * 4.0 < t_random.as_secs_f64(),
            "seq {t_seq} not ≪ random {t_random}"
        );
        // Same bytes either way.
        assert_eq!(random.counters().read_bytes, seq.counters().read_bytes);
    }

    #[test]
    fn hdd_much_slower_than_ssd_for_random_io() {
        let mut ssd = BlockDevice::new(BlockDeviceSpec::sata_ssd());
        let mut hdd = BlockDevice::new(BlockDeviceSpec::hdd_7200());
        let s = ssd.submit(SimTime::ZERO, IoKind::Read, 4096);
        let h = hdd.submit(SimTime::ZERO, IoKind::Read, 4096);
        assert!(h.as_secs_f64() > 20.0 * s.as_secs_f64());
    }
}
