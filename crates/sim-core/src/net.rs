//! Fluid-flow network model with max-min fair bandwidth sharing.
//!
//! The paper's testbed is a set of hosts with full-duplex 1 Gbps NICs behind
//! a non-blocking top-of-rack switch, so the only contended resources are
//! the NICs themselves. We model every TCP connection as a *channel*
//! (source NIC → destination NIC) carrying a FIFO queue of *segments*
//! (messages / transfer chunks). All channels that currently have data to
//! send share NIC capacity max-min fairly — the standard fluid approximation
//! of per-connection TCP fairness. This is what makes pre-copy's
//! retransmission traffic visibly depress YCSB response traffic in Table I.
//!
//! The model is *sans-scheduler*: it never touches the event queue. A driver
//! (in `agile-cluster`) asks [`Network::next_event_time`] when something will
//! happen, schedules one simulation event there, and calls
//! [`Network::poll`] to collect deliveries. After any mutation (send, open,
//! close) the driver re-arms. Segment delivery = serialization at the
//! allocated rate + one-way propagation delay.
//!
//! The hot path is incremental and allocation-free in steady state:
//!
//! * the water-filling pass reuses persistent scratch buffers and removes
//!   frozen channels by swap-remove instead of `retain`/`clone` per round;
//! * membership of the active set is tracked explicitly (swap-remove list +
//!   position map), so recomputation only runs when the set changes;
//! * each channel caches the absolute instant its head segment finishes
//!   serializing; the cache is refreshed only when the channel's rate
//!   actually changes (epsilon-compared) or its head segment changes, so an
//!   arrival that leaves other NICs' shares untouched does not reschedule
//!   their completions;
//! * closing a channel removes its in-flight segments outright, so the
//!   delivery heap never carries dead entries and
//!   [`Network::next_event_time`] is a peek, not a scan.

use std::collections::{BinaryHeap, VecDeque};

use crate::time::{SimDuration, SimTime};
use crate::units::Bandwidth;

/// A NIC endpoint (one per host).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

/// A rack: a set of NICs behind a shared ToR uplink. Traffic between two
/// nodes of the same rack never touches the uplink; traffic that leaves
/// (or enters) the rack consumes the rack's up (down) trunk capacity as an
/// additional water-filling constraint. Nodes with no rack assignment are
/// spine-attached (core switches, far-memory servers): a racked↔unracked
/// channel crosses the racked side's uplink only.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct RackId(pub usize);

/// A point-to-point connection between two NICs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ChannelId(pub usize);

/// Identifies one queued segment within the network.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct SegmentId(u64);

/// A completed delivery, reported by [`Network::poll`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Delivery {
    /// The channel the segment travelled on.
    pub channel: ChannelId,
    /// Caller-chosen tag identifying the payload.
    pub tag: u64,
    /// Segment size in bytes.
    pub bytes: u64,
    /// Instant the last byte arrived at the receiver.
    pub delivered_at: SimTime,
}

/// Rates closer than this (bytes/sec) count as unchanged: far below one
/// byte per simulated second, far above f64 noise at 1 Gbps magnitudes.
const RATE_EPS: f64 = 1e-6;

/// Sentinel for "not in the active list".
const NO_POS: u32 = u32::MAX;

#[derive(Clone, Debug)]
struct Segment {
    tag: u64,
    bytes: u64,
    remaining: f64,
}

#[derive(Clone, Debug)]
struct Channel {
    src: NodeId,
    dst: NodeId,
    queue: VecDeque<Segment>,
    /// Current allocated rate in bytes/sec (0 when idle).
    rate: f64,
    /// Optional per-channel rate cap (bytes/sec), e.g. a migration
    /// bandwidth limit.
    cap: Option<f64>,
    /// Absolute instant the head segment finishes serializing at the
    /// current rate; `SimTime::MAX` when idle or rate 0. Only refreshed
    /// when the rate or the head segment changes.
    head_done: SimTime,
    delivered_bytes: u64,
    closed: bool,
    /// Rack uplink consumed on the transmit side (src's rack) when this
    /// channel leaves its rack; `None` for intra-rack / unracked paths.
    up_trunk: Option<u32>,
    /// Rack downlink consumed on the receive side (dst's rack).
    down_trunk: Option<u32>,
}

impl Channel {
    fn is_active(&self) -> bool {
        !self.closed && !self.queue.is_empty()
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct NodeCounters {
    tx_bytes: u64,
    rx_bytes: u64,
}

#[derive(Clone, Debug)]
struct Node {
    tx_bw: f64,
    rx_bw: f64,
    counters: NodeCounters,
    /// The rack this NIC sits in, if the topology is hierarchical.
    rack: Option<u32>,
}

/// A ToR uplink: aggregate capacity shared by every channel crossing the
/// rack boundary, in each direction.
#[derive(Clone, Debug)]
struct Rack {
    up_bw: f64,
    down_bw: f64,
    up_bytes: u64,
    down_bytes: u64,
}

/// An in-flight (fully serialized, propagating) segment.
#[derive(Debug)]
struct InFlight {
    deliver_at: SimTime,
    seq: u64,
    delivery: Delivery,
}

impl PartialEq for InFlight {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl Eq for InFlight {}
impl PartialOrd for InFlight {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for InFlight {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Min-heap on (deliver_at, seq).
        (other.deliver_at, other.seq).cmp(&(self.deliver_at, self.seq))
    }
}

/// Persistent scratch for the water-filling pass, reused across calls so
/// steady-state recomputation performs no allocation.
#[derive(Debug, Default)]
struct Waterfill {
    tx_cap: Vec<f64>,
    rx_cap: Vec<f64>,
    tx_load: Vec<u32>,
    rx_load: Vec<u32>,
    up_cap: Vec<f64>,
    down_cap: Vec<f64>,
    up_load: Vec<u32>,
    down_load: Vec<u32>,
    unfrozen: Vec<u32>,
    capped: Vec<u32>,
}

/// The cluster network: NICs plus channels plus in-flight segments.
#[derive(Debug)]
pub struct Network {
    nodes: Vec<Node>,
    channels: Vec<Channel>,
    racks: Vec<Rack>,
    prop_delay: SimDuration,
    last_update: SimTime,
    in_flight: BinaryHeap<InFlight>,
    next_segment: u64,
    next_flight_seq: u64,
    /// Sub-byte residue threshold below which a segment counts as done.
    epsilon: f64,
    /// Indices of channels with data to send (unordered; swap-removed).
    active: Vec<u32>,
    /// Channel index → its position in `active`, or `NO_POS`.
    active_pos: Vec<u32>,
    scratch: Waterfill,
}

impl Network {
    /// Create an empty network with the given one-way propagation delay
    /// (switch + wire; ~25–50 µs for the paper's ToR Ethernet).
    pub fn new(prop_delay: SimDuration) -> Self {
        Network {
            nodes: Vec::new(),
            channels: Vec::new(),
            racks: Vec::new(),
            prop_delay,
            last_update: SimTime::ZERO,
            in_flight: BinaryHeap::new(),
            next_segment: 0,
            next_flight_seq: 0,
            epsilon: 0.5,
            active: Vec::new(),
            active_pos: Vec::new(),
            scratch: Waterfill::default(),
        }
    }

    /// Add a NIC with the given full-duplex capacities.
    pub fn add_node(&mut self, tx: Bandwidth, rx: Bandwidth) -> NodeId {
        self.nodes.push(Node {
            tx_bw: tx.as_bytes_per_sec(),
            rx_bw: rx.as_bytes_per_sec(),
            counters: NodeCounters::default(),
            rack: None,
        });
        NodeId(self.nodes.len() - 1)
    }

    /// Add a symmetric full-duplex NIC.
    pub fn add_symmetric_node(&mut self, bw: Bandwidth) -> NodeId {
        self.add_node(bw, bw)
    }

    /// Add a rack with the given ToR trunk capacities (rack→spine uplink,
    /// spine→rack downlink). Populate it with [`Network::set_node_rack`].
    pub fn add_rack(&mut self, up: Bandwidth, down: Bandwidth) -> RackId {
        self.racks.push(Rack {
            up_bw: up.as_bytes_per_sec(),
            down_bw: down.as_bytes_per_sec(),
            up_bytes: 0,
            down_bytes: 0,
        });
        RackId(self.racks.len() - 1)
    }

    /// Place a NIC in a rack. Channels already touching the node have their
    /// trunk membership recomputed, so topology can be declared in any
    /// order relative to channel creation.
    pub fn set_node_rack(&mut self, n: NodeId, r: RackId) {
        assert!(r.0 < self.racks.len());
        self.nodes[n.0].rack = Some(r.0 as u32);
        let nodes = &self.nodes;
        for ch in &mut self.channels {
            if ch.src == n || ch.dst == n {
                let (up, down) = trunk_membership(nodes[ch.src.0].rack, nodes[ch.dst.0].rack);
                ch.up_trunk = up;
                ch.down_trunk = down;
            }
        }
        if !self.active.is_empty() {
            self.recompute_rates();
        }
    }

    /// Cumulative bytes that left rack `r` over its uplink.
    pub fn rack_up_bytes(&self, r: RackId) -> u64 {
        self.racks[r.0].up_bytes
    }

    /// Cumulative bytes that entered rack `r` over its downlink.
    pub fn rack_down_bytes(&self, r: RackId) -> u64 {
        self.racks[r.0].down_bytes
    }

    /// Open a connection from `src` to `dst`.
    pub fn open_channel(&mut self, src: NodeId, dst: NodeId) -> ChannelId {
        assert!(src.0 < self.nodes.len() && dst.0 < self.nodes.len());
        let (up_trunk, down_trunk) =
            trunk_membership(self.nodes[src.0].rack, self.nodes[dst.0].rack);
        self.channels.push(Channel {
            src,
            dst,
            queue: VecDeque::new(),
            rate: 0.0,
            cap: None,
            head_done: SimTime::MAX,
            delivered_bytes: 0,
            closed: false,
            up_trunk,
            down_trunk,
        });
        self.active_pos.push(NO_POS);
        ChannelId(self.channels.len() - 1)
    }

    /// Add `ci` to the active set.
    fn activate(&mut self, ci: usize) {
        debug_assert_eq!(self.active_pos[ci], NO_POS);
        self.active_pos[ci] = self.active.len() as u32;
        self.active.push(ci as u32);
    }

    /// Swap-remove `ci` from the active set and zero its allocation.
    fn deactivate(&mut self, ci: usize) {
        let pos = self.active_pos[ci];
        debug_assert_ne!(pos, NO_POS);
        self.active.swap_remove(pos as usize);
        if let Some(&moved) = self.active.get(pos as usize) {
            self.active_pos[moved as usize] = pos;
        }
        self.active_pos[ci] = NO_POS;
        let ch = &mut self.channels[ci];
        ch.rate = 0.0;
        ch.head_done = SimTime::MAX;
    }

    /// Set (or clear) a rate cap on a channel, e.g. QEMU's
    /// `migrate_set_speed`.
    pub fn set_channel_cap(&mut self, now: SimTime, ch: ChannelId, cap: Option<Bandwidth>) {
        self.advance_to(now);
        self.channels[ch.0].cap = cap.map(|b| b.as_bytes_per_sec());
        self.recompute_rates();
    }

    /// Change a NIC's full-duplex capacity at runtime (fault injection: a
    /// degraded or partitioned NIC). Zero bandwidth stalls every channel
    /// through the node — queued segments are held, not dropped — and a
    /// later restore lets them proceed.
    pub fn set_node_bw(&mut self, now: SimTime, n: NodeId, tx: Bandwidth, rx: Bandwidth) {
        self.advance_to(now);
        self.nodes[n.0].tx_bw = tx.as_bytes_per_sec();
        self.nodes[n.0].rx_bw = rx.as_bytes_per_sec();
        self.recompute_rates();
    }

    /// Queue a segment on a channel. Returns its id. `bytes == 0` is allowed
    /// (a pure control message costing only propagation delay).
    pub fn send(&mut self, now: SimTime, ch: ChannelId, bytes: u64, tag: u64) -> SegmentId {
        self.advance_to(now);
        let id = SegmentId(self.next_segment);
        self.next_segment += 1;
        let channel = &mut self.channels[ch.0];
        assert!(!channel.closed, "send on closed channel");
        let was_active = channel.is_active();
        channel.queue.push_back(Segment {
            tag,
            bytes,
            remaining: bytes as f64,
        });
        if !was_active {
            self.activate(ch.0);
            self.recompute_rates();
        }
        // Zero-byte segments complete instantly; flush them into flight.
        self.complete_ready(now);
        id
    }

    /// Number of queued (not yet fully serialized) segments on a channel.
    pub fn queued_segments(&self, ch: ChannelId) -> usize {
        self.channels[ch.0].queue.len()
    }

    /// Bytes still queued for serialization on a channel.
    pub fn queued_bytes(&self, ch: ChannelId) -> u64 {
        self.channels[ch.0]
            .queue
            .iter()
            .map(|s| s.remaining.ceil() as u64)
            .sum()
    }

    /// Total bytes delivered over a channel so far.
    pub fn delivered_bytes(&self, ch: ChannelId) -> u64 {
        self.channels[ch.0].delivered_bytes
    }

    /// Current allocated rate of a channel, bytes/sec.
    pub fn channel_rate(&self, ch: ChannelId) -> f64 {
        self.channels[ch.0].rate
    }

    /// Close a channel: queued and in-flight segments are discarded.
    /// Returns the number of segments dropped.
    pub fn close_channel(&mut self, now: SimTime, ch: ChannelId) -> usize {
        self.advance_to(now);
        let channel = &mut self.channels[ch.0];
        if channel.closed {
            return 0;
        }
        let was_active = channel.is_active();
        channel.closed = true;
        let mut dropped = channel.queue.len();
        channel.queue.clear();
        // Remove (not just mark) this channel's in-flight segments, so the
        // delivery heap stays free of dead entries.
        let before = self.in_flight.len();
        self.in_flight.retain(|f| f.delivery.channel != ch);
        dropped += before - self.in_flight.len();
        if was_active {
            self.deactivate(ch.0);
            self.recompute_rates();
        }
        dropped
    }

    /// Cumulative transmit bytes for a node.
    pub fn node_tx_bytes(&self, n: NodeId) -> u64 {
        self.nodes[n.0].counters.tx_bytes
    }

    /// Cumulative receive bytes for a node.
    pub fn node_rx_bytes(&self, n: NodeId) -> u64 {
        self.nodes[n.0].counters.rx_bytes
    }

    /// Debug snapshot: `(channel index, src, dst, rate B/s, queued bytes)`
    /// for every channel with queued data.
    pub fn debug_active_channels(&self) -> Vec<(usize, usize, usize, f64, u64)> {
        self.channels
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_active())
            .map(|(i, c)| {
                let queued: u64 = c.queue.iter().map(|s| s.remaining.ceil() as u64).sum();
                (i, c.src.0, c.dst.0, c.rate, queued)
            })
            .collect()
    }

    /// The earliest instant at which a delivery or serialization completion
    /// will occur, or `None` if the network is quiescent.
    pub fn next_event_time(&self) -> Option<SimTime> {
        // The in-flight heap holds no cancelled entries, so its top is the
        // earliest delivery.
        let mut earliest: Option<SimTime> = self.in_flight.peek().map(|f| f.deliver_at);
        for &ci in &self.active {
            let ch = &self.channels[ci as usize];
            if ch.rate > 0.0 {
                earliest = Some(match earliest {
                    Some(e) => e.min(ch.head_done),
                    None => ch.head_done,
                });
            }
        }
        earliest
    }

    /// Advance to `now` and return all deliveries due at or before `now`,
    /// ordered by delivery time.
    pub fn poll(&mut self, now: SimTime) -> Vec<Delivery> {
        self.advance_to(now);
        let mut out = Vec::new();
        while let Some(top) = self.in_flight.peek() {
            if top.deliver_at > now {
                break;
            }
            let f = self.in_flight.pop().expect("peeked");
            let ch = &mut self.channels[f.delivery.channel.0];
            ch.delivered_bytes += f.delivery.bytes;
            self.nodes[ch.dst.0].counters.rx_bytes += f.delivery.bytes;
            if let Some(r) = ch.down_trunk {
                self.racks[r as usize].down_bytes += f.delivery.bytes;
            }
            out.push(f.delivery);
        }
        out
    }

    /// Progress all active channels up to `now`; move fully-serialized
    /// segments into flight.
    fn advance_to(&mut self, now: SimTime) {
        if now <= self.last_update {
            return;
        }
        // Serialization completions can unblock the next segment in a
        // queue, changing rates. Process piecewise-constant-rate intervals.
        loop {
            let t = self.last_update;
            // Earliest cached serialization completion among active
            // channels.
            let mut next_done = SimTime::MAX;
            for &ci in &self.active {
                let ch = &self.channels[ci as usize];
                if ch.rate > 0.0 {
                    next_done = next_done.min(ch.head_done);
                }
            }
            let step_to = if next_done <= now {
                next_done.max(t)
            } else {
                now
            };
            let dt = step_to.saturating_since(t).as_secs_f64();
            if dt > 0.0 {
                for &ci in &self.active {
                    let ch = &mut self.channels[ci as usize];
                    if ch.rate > 0.0 {
                        let moved = ch.rate * dt;
                        ch.queue[0].remaining -= moved;
                    }
                }
            }
            self.last_update = step_to;
            let completed_any = self.complete_ready(step_to);
            if step_to >= now {
                break;
            }
            if !completed_any {
                // No progress possible (all rates zero); jump to now.
                break;
            }
        }
        self.last_update = now;
    }

    /// Move any fully-serialized head segments into flight; recompute rates
    /// if channel membership changed (a head completing with more queued
    /// behind it leaves every allocation untouched). Returns whether
    /// anything completed.
    fn complete_ready(&mut self, t: SimTime) -> bool {
        let mut membership_changed = false;
        let mut any = false;
        let mut i = 0;
        while i < self.active.len() {
            let ci = self.active[i] as usize;
            let mut popped = false;
            loop {
                let ch = &mut self.channels[ci];
                match ch.queue.front() {
                    Some(head) if head.remaining <= self.epsilon => {}
                    Some(_) => {
                        if popped && ch.rate > 0.0 {
                            // New head starts serializing now.
                            ch.head_done = t + SimDuration::from_secs_f64(
                                ch.queue[0].remaining.max(0.0) / ch.rate,
                            );
                        }
                        break;
                    }
                    None => break,
                }
                let seg = ch.queue.pop_front().expect("non-empty");
                any = true;
                popped = true;
                let src = ch.src;
                let up_trunk = ch.up_trunk;
                self.nodes[src.0].counters.tx_bytes += seg.bytes;
                if let Some(r) = up_trunk {
                    self.racks[r as usize].up_bytes += seg.bytes;
                }
                let delivery = Delivery {
                    channel: ChannelId(ci),
                    tag: seg.tag,
                    bytes: seg.bytes,
                    delivered_at: t + self.prop_delay,
                };
                let seq = self.next_flight_seq;
                self.next_flight_seq += 1;
                self.in_flight.push(InFlight {
                    deliver_at: delivery.delivered_at,
                    seq,
                    delivery,
                });
                // Zero-byte follow-up segments also complete in this loop.
            }
            if self.channels[ci].queue.is_empty() {
                // Swap-remove puts an unvisited channel at `i`; don't
                // advance.
                self.deactivate(ci);
                membership_changed = true;
            } else {
                i += 1;
            }
        }
        if membership_changed {
            self.recompute_rates();
        }
        any
    }

    /// Water-filling max-min fair allocation across active channels,
    /// constrained by per-node tx/rx capacity and per-channel caps. Scratch
    /// buffers persist across calls; a channel whose allocation does not
    /// move by more than [`RATE_EPS`] keeps its cached completion time.
    fn recompute_rates(&mut self) {
        let Network {
            nodes,
            channels,
            racks,
            scratch,
            active,
            last_update,
            ..
        } = self;
        let n_nodes = nodes.len();
        let n_racks = racks.len();
        scratch.tx_cap.clear();
        scratch.tx_cap.extend(nodes.iter().map(|n| n.tx_bw));
        scratch.rx_cap.clear();
        scratch.rx_cap.extend(nodes.iter().map(|n| n.rx_bw));
        scratch.tx_load.clear();
        scratch.tx_load.resize(n_nodes, 0);
        scratch.rx_load.clear();
        scratch.rx_load.resize(n_nodes, 0);
        scratch.up_cap.clear();
        scratch.up_cap.extend(racks.iter().map(|r| r.up_bw));
        scratch.down_cap.clear();
        scratch.down_cap.extend(racks.iter().map(|r| r.down_bw));
        scratch.up_load.clear();
        scratch.up_load.resize(n_racks, 0);
        scratch.down_load.clear();
        scratch.down_load.resize(n_racks, 0);
        scratch.unfrozen.clear();
        for &ci in active.iter() {
            let ch = &channels[ci as usize];
            debug_assert!(ch.is_active());
            scratch.unfrozen.push(ci);
            scratch.tx_load[ch.src.0] += 1;
            scratch.rx_load[ch.dst.0] += 1;
            if let Some(r) = ch.up_trunk {
                scratch.up_load[r as usize] += 1;
            }
            if let Some(r) = ch.down_trunk {
                scratch.down_load[r as usize] += 1;
            }
        }

        while !scratch.unfrozen.is_empty() {
            // Candidate fair share at each saturated resource.
            let mut min_share = f64::INFINITY;
            for n in 0..n_nodes {
                if scratch.tx_load[n] > 0 {
                    min_share = min_share.min(scratch.tx_cap[n] / f64::from(scratch.tx_load[n]));
                }
                if scratch.rx_load[n] > 0 {
                    min_share = min_share.min(scratch.rx_cap[n] / f64::from(scratch.rx_load[n]));
                }
            }
            // Rack trunks participate exactly like NICs: an aggregate
            // capacity divided among the channels crossing them.
            for r in 0..n_racks {
                if scratch.up_load[r] > 0 {
                    min_share = min_share.min(scratch.up_cap[r] / f64::from(scratch.up_load[r]));
                }
                if scratch.down_load[r] > 0 {
                    min_share =
                        min_share.min(scratch.down_cap[r] / f64::from(scratch.down_load[r]));
                }
            }
            // A capped channel below the fair share freezes at its cap.
            scratch.capped.clear();
            let mut k = 0;
            while k < scratch.unfrozen.len() {
                let ci = scratch.unfrozen[k];
                let below_cap = channels[ci as usize].cap.is_some_and(|cap| cap < min_share);
                if below_cap {
                    scratch.unfrozen.swap_remove(k);
                    scratch.capped.push(ci);
                } else {
                    k += 1;
                }
            }
            if !scratch.capped.is_empty() {
                for idx in 0..scratch.capped.len() {
                    let ci = scratch.capped[idx];
                    let cap = channels[ci as usize].cap.expect("capped");
                    freeze(channels, scratch, *last_update, ci, cap);
                }
                continue;
            }
            if !min_share.is_finite() {
                break;
            }
            // Freeze every channel touching a bottleneck resource.
            let share = min_share;
            let mut frozen_any = false;
            let mut k = 0;
            while k < scratch.unfrozen.len() {
                let ci = scratch.unfrozen[k];
                let (s, d, up, down) = {
                    let ch = &channels[ci as usize];
                    (ch.src.0, ch.dst.0, ch.up_trunk, ch.down_trunk)
                };
                let saturated = share * (1.0 + 1e-12);
                let tx_share = scratch.tx_cap[s] / f64::from(scratch.tx_load[s]);
                let rx_share = scratch.rx_cap[d] / f64::from(scratch.rx_load[d]);
                let mut bottleneck = tx_share <= saturated || rx_share <= saturated;
                if let Some(r) = up {
                    bottleneck |= scratch.up_cap[r as usize]
                        / f64::from(scratch.up_load[r as usize])
                        <= saturated;
                }
                if let Some(r) = down {
                    bottleneck |= scratch.down_cap[r as usize]
                        / f64::from(scratch.down_load[r as usize])
                        <= saturated;
                }
                if bottleneck {
                    scratch.unfrozen.swap_remove(k);
                    freeze(channels, scratch, *last_update, ci, share);
                    frozen_any = true;
                } else {
                    k += 1;
                }
            }
            if !frozen_any {
                // Numerical safety valve: freeze everything at the share.
                while let Some(ci) = scratch.unfrozen.pop() {
                    freeze(channels, scratch, *last_update, ci, share);
                }
            }
        }
    }
}

/// Which trunks a `src → dst` channel consumes: the source rack's uplink
/// and the destination rack's downlink — but only when the channel crosses
/// a rack boundary (different racks, or one side spine-attached). A `None`
/// rack is the spine itself, so unracked↔unracked traffic uses no trunk.
fn trunk_membership(src_rack: Option<u32>, dst_rack: Option<u32>) -> (Option<u32>, Option<u32>) {
    if src_rack == dst_rack {
        (None, None)
    } else {
        (src_rack, dst_rack)
    }
}

/// Fix channel `ci`'s allocation at `rate`, consuming capacity at both
/// endpoints. The cached head-completion instant is refreshed only when the
/// rate moved by more than [`RATE_EPS`] — unchanged channels keep their
/// scheduled completion.
fn freeze(
    channels: &mut [Channel],
    scratch: &mut Waterfill,
    last_update: SimTime,
    ci: u32,
    rate: f64,
) {
    let ch = &mut channels[ci as usize];
    let new_rate = rate.max(0.0);
    scratch.tx_cap[ch.src.0] = (scratch.tx_cap[ch.src.0] - new_rate).max(0.0);
    scratch.rx_cap[ch.dst.0] = (scratch.rx_cap[ch.dst.0] - new_rate).max(0.0);
    scratch.tx_load[ch.src.0] -= 1;
    scratch.rx_load[ch.dst.0] -= 1;
    if let Some(r) = ch.up_trunk {
        scratch.up_cap[r as usize] = (scratch.up_cap[r as usize] - new_rate).max(0.0);
        scratch.up_load[r as usize] -= 1;
    }
    if let Some(r) = ch.down_trunk {
        scratch.down_cap[r as usize] = (scratch.down_cap[r as usize] - new_rate).max(0.0);
        scratch.down_load[r as usize] -= 1;
    }
    if (new_rate - ch.rate).abs() <= RATE_EPS {
        return;
    }
    ch.rate = new_rate;
    ch.head_done = if new_rate > 0.0 {
        last_update + SimDuration::from_secs_f64(ch.queue[0].remaining.max(0.0) / new_rate)
    } else {
        SimTime::MAX
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    const GBPS: f64 = 125e6;

    fn net3() -> (Network, NodeId, NodeId, NodeId) {
        let mut net = Network::new(SimDuration::from_micros(50));
        let a = net.add_symmetric_node(Bandwidth::gbps(1.0));
        let b = net.add_symmetric_node(Bandwidth::gbps(1.0));
        let c = net.add_symmetric_node(Bandwidth::gbps(1.0));
        (net, a, b, c)
    }

    /// Drive the network to completion, returning (tag, time) pairs.
    fn drain(net: &mut Network) -> Vec<(u64, SimTime)> {
        let mut out = Vec::new();
        while let Some(t) = net.next_event_time() {
            for d in net.poll(t) {
                out.push((d.tag, d.delivered_at));
            }
        }
        out
    }

    #[test]
    fn single_transfer_takes_bytes_over_bandwidth() {
        let (mut net, a, b, _) = net3();
        let ch = net.open_channel(a, b);
        net.send(SimTime::ZERO, ch, 125_000_000, 1); // 1 s at 1 Gbps
        let done = drain(&mut net);
        assert_eq!(done.len(), 1);
        let t = done[0].1.as_secs_f64();
        assert!((t - 1.00005).abs() < 1e-3, "t={t}");
        assert_eq!(net.delivered_bytes(ch), 125_000_000);
    }

    #[test]
    fn two_channels_share_a_nic_fairly() {
        let (mut net, a, b, c) = net3();
        let ab = net.open_channel(a, b);
        let ac = net.open_channel(a, c);
        net.send(SimTime::ZERO, ab, 125_000_000, 1);
        net.send(SimTime::ZERO, ac, 125_000_000, 2);
        // Both share a's tx: each gets 0.5 Gbps → 2 s each.
        assert!((net.channel_rate(ab) - GBPS / 2.0).abs() < 1.0);
        assert!((net.channel_rate(ac) - GBPS / 2.0).abs() < 1.0);
        let done = drain(&mut net);
        assert_eq!(done.len(), 2);
        for (_, t) in &done {
            assert!((t.as_secs_f64() - 2.0).abs() < 1e-2, "t={t}");
        }
    }

    #[test]
    fn completion_releases_bandwidth_to_remaining_flow() {
        let (mut net, a, b, c) = net3();
        let ab = net.open_channel(a, b);
        let ac = net.open_channel(a, c);
        net.send(SimTime::ZERO, ab, 62_500_000, 1); // would take 1s alone at 0.5 share
        net.send(SimTime::ZERO, ac, 125_000_000, 2);
        let done = drain(&mut net);
        // ab finishes at 1 s (0.5 Gbps), then ac runs at 1 Gbps:
        // ac moved 62.5 MB in the first second, 62.5 MB remain → +0.5 s.
        let t_ab = done
            .iter()
            .find(|(tag, _)| *tag == 1)
            .unwrap()
            .1
            .as_secs_f64();
        let t_ac = done
            .iter()
            .find(|(tag, _)| *tag == 2)
            .unwrap()
            .1
            .as_secs_f64();
        assert!((t_ab - 1.0).abs() < 1e-2, "t_ab={t_ab}");
        assert!((t_ac - 1.5).abs() < 1e-2, "t_ac={t_ac}");
    }

    #[test]
    fn rx_side_is_also_a_bottleneck() {
        let (mut net, a, b, c) = net3();
        let ab = net.open_channel(a, b);
        let cb = net.open_channel(c, b);
        net.send(SimTime::ZERO, ab, 125_000_000, 1);
        net.send(SimTime::ZERO, cb, 125_000_000, 2);
        // Different tx NICs, same rx NIC b → each 0.5 Gbps.
        assert!((net.channel_rate(ab) - GBPS / 2.0).abs() < 1.0);
        assert!((net.channel_rate(cb) - GBPS / 2.0).abs() < 1.0);
    }

    #[test]
    fn fifo_within_a_channel() {
        let (mut net, a, b, _) = net3();
        let ch = net.open_channel(a, b);
        net.send(SimTime::ZERO, ch, 1_000_000, 1);
        net.send(SimTime::ZERO, ch, 1_000_000, 2);
        net.send(SimTime::ZERO, ch, 1_000_000, 3);
        let done = drain(&mut net);
        let tags: Vec<u64> = done.iter().map(|(t, _)| *t).collect();
        assert_eq!(tags, vec![1, 2, 3]);
        assert!(done[0].1 < done[1].1 && done[1].1 < done[2].1);
    }

    #[test]
    fn channel_cap_limits_rate() {
        let (mut net, a, b, _) = net3();
        let ch = net.open_channel(a, b);
        net.set_channel_cap(SimTime::ZERO, ch, Some(Bandwidth::mb_per_sec(12.5)));
        net.send(SimTime::ZERO, ch, 12_500_000, 1);
        let done = drain(&mut net);
        let t = done[0].1.as_secs_f64();
        assert!((t - 1.0).abs() < 1e-2, "t={t}");
    }

    #[test]
    fn cap_frees_bandwidth_for_others() {
        let (mut net, a, b, _) = net3();
        let ch1 = net.open_channel(a, b);
        let ch2 = net.open_channel(a, b);
        net.set_channel_cap(SimTime::ZERO, ch1, Some(Bandwidth::gbps(0.2)));
        net.send(SimTime::ZERO, ch1, 1_000_000, 1);
        net.send(SimTime::ZERO, ch2, 1_000_000, 2);
        assert!((net.channel_rate(ch1) - 0.2 * GBPS).abs() < 1.0);
        assert!((net.channel_rate(ch2) - 0.8 * GBPS).abs() < 1e3);
    }

    #[test]
    fn zero_byte_message_costs_propagation_only() {
        let (mut net, a, b, _) = net3();
        let ch = net.open_channel(a, b);
        net.send(SimTime::from_secs(1), ch, 0, 9);
        let done = drain(&mut net);
        assert_eq!(done.len(), 1);
        assert_eq!(
            done[0].1,
            SimTime::from_secs(1) + SimDuration::from_micros(50)
        );
    }

    #[test]
    fn close_channel_drops_everything() {
        let (mut net, a, b, _) = net3();
        let ch = net.open_channel(a, b);
        net.send(SimTime::ZERO, ch, 1_000_000, 1);
        net.send(SimTime::ZERO, ch, 1_000_000, 2);
        let dropped = net.close_channel(SimTime::ZERO, ch);
        assert_eq!(dropped, 2);
        assert!(drain(&mut net).is_empty());
    }

    #[test]
    fn close_channel_drops_in_flight_segments() {
        let (mut net, a, b, _) = net3();
        let ch = net.open_channel(a, b);
        let keep = net.open_channel(a, b);
        // A zero-byte message is fully serialized immediately: in flight.
        net.send(SimTime::ZERO, ch, 0, 1);
        net.send(SimTime::ZERO, keep, 0, 2);
        let dropped = net.close_channel(SimTime::ZERO, ch);
        assert_eq!(dropped, 1);
        let done = drain(&mut net);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].0, 2);
        assert_eq!(net.next_event_time(), None);
    }

    #[test]
    fn close_idle_channel_is_free() {
        let (mut net, a, b, _) = net3();
        let idle = net.open_channel(a, b);
        let busy = net.open_channel(a, b);
        net.send(SimTime::ZERO, busy, 125_000_000, 1);
        let rate_before = net.channel_rate(busy);
        assert_eq!(net.close_channel(SimTime::ZERO, idle), 0);
        assert_eq!(net.channel_rate(busy), rate_before);
        assert_eq!(drain(&mut net).len(), 1);
    }

    #[test]
    fn idle_channels_consume_no_bandwidth() {
        let (mut net, a, b, c) = net3();
        let _idle = net.open_channel(a, c);
        let ch = net.open_channel(a, b);
        net.send(SimTime::ZERO, ch, 125_000_000, 1);
        assert!((net.channel_rate(ch) - GBPS).abs() < 1.0);
    }

    #[test]
    fn late_sender_shares_with_in_progress_flow() {
        let (mut net, a, b, c) = net3();
        let ab = net.open_channel(a, b);
        let ac = net.open_channel(a, c);
        net.send(SimTime::ZERO, ab, 250_000_000, 1); // 2 s alone
                                                     // After 1 s, a second flow starts.
        net.send(SimTime::from_secs(1), ac, 62_500_000, 2);
        let done = drain(&mut net);
        let t_ab = done.iter().find(|(t, _)| *t == 1).unwrap().1.as_secs_f64();
        let t_ac = done.iter().find(|(t, _)| *t == 2).unwrap().1.as_secs_f64();
        // ab: 125 MB in first second, then 0.5 Gbps: 125 MB remain → +2 s... but
        // ac finishes first: ac needs 1 s at 0.5 Gbps (done t=2), after which
        // ab runs at full rate again: at t=2 ab has 62.5 MB left → done t=2.5.
        assert!((t_ac - 2.0).abs() < 1e-2, "t_ac={t_ac}");
        assert!((t_ab - 2.5).abs() < 1e-2, "t_ab={t_ab}");
    }

    #[test]
    fn node_counters_track_traffic() {
        let (mut net, a, b, _) = net3();
        let ch = net.open_channel(a, b);
        net.send(SimTime::ZERO, ch, 10_000, 1);
        drain(&mut net);
        assert_eq!(net.node_tx_bytes(a), 10_000);
        assert_eq!(net.node_rx_bytes(b), 10_000);
        assert_eq!(net.node_rx_bytes(a), 0);
    }

    #[test]
    fn next_event_time_none_when_quiescent() {
        let (mut net, a, b, _) = net3();
        let _ch = net.open_channel(a, b);
        assert_eq!(net.next_event_time(), None);
        let ch2 = net.open_channel(a, b);
        net.send(SimTime::ZERO, ch2, 100, 1);
        assert!(net.next_event_time().is_some());
        drain(&mut net);
        assert_eq!(net.next_event_time(), None);
    }

    #[test]
    fn node_bw_degrade_stalls_and_restore_resumes() {
        let (mut net, a, b, _) = net3();
        let ch = net.open_channel(a, b);
        net.send(SimTime::ZERO, ch, 125_000_000, 1); // 1 s at 1 Gbps
                                                     // Partition a's NIC after 0.5 s: the transfer freezes in place.
        net.set_node_bw(
            SimTime::from_secs_f64(0.5),
            a,
            Bandwidth::bytes_per_sec(0.0),
            Bandwidth::bytes_per_sec(0.0),
        );
        assert_eq!(net.channel_rate(ch), 0.0);
        assert!(net.poll(SimTime::from_secs(5)).is_empty());
        // Restore at t=5: the remaining 62.5 MB takes another 0.5 s.
        net.set_node_bw(
            SimTime::from_secs(5),
            a,
            Bandwidth::gbps(1.0),
            Bandwidth::gbps(1.0),
        );
        let done = drain(&mut net);
        assert_eq!(done.len(), 1);
        let t = done[0].1.as_secs_f64();
        assert!((t - 5.50005).abs() < 1e-2, "t={t}");
    }

    #[test]
    fn node_bw_degrade_to_fraction_slows_transfer() {
        let (mut net, a, b, _) = net3();
        let ch = net.open_channel(a, b);
        net.set_node_bw(SimTime::ZERO, a, Bandwidth::gbps(0.1), Bandwidth::gbps(0.1));
        net.send(SimTime::ZERO, ch, 12_500_000, 1); // 1 s at 0.1 Gbps
        let done = drain(&mut net);
        let t = done[0].1.as_secs_f64();
        assert!((t - 1.0).abs() < 1e-2, "t={t}");
    }

    #[test]
    fn rack_uplink_is_shared_by_crossing_flows() {
        // Two racked hosts each send to a spine node. Each NIC alone could
        // do 1 Gbps, but the shared 1 Gbps ToR uplink halves both flows.
        let mut net = Network::new(SimDuration::from_micros(50));
        let h1 = net.add_symmetric_node(Bandwidth::gbps(1.0));
        let h2 = net.add_symmetric_node(Bandwidth::gbps(1.0));
        let spine = net.add_symmetric_node(Bandwidth::gbps(10.0));
        let rack = net.add_rack(Bandwidth::gbps(1.0), Bandwidth::gbps(1.0));
        net.set_node_rack(h1, rack);
        net.set_node_rack(h2, rack);
        let c1 = net.open_channel(h1, spine);
        let c2 = net.open_channel(h2, spine);
        net.send(SimTime::ZERO, c1, 125_000_000, 1);
        net.send(SimTime::ZERO, c2, 125_000_000, 2);
        assert!((net.channel_rate(c1) - GBPS / 2.0).abs() < 1.0);
        assert!((net.channel_rate(c2) - GBPS / 2.0).abs() < 1.0);
        drain(&mut net);
        assert_eq!(net.rack_up_bytes(rack), 250_000_000);
        assert_eq!(net.rack_down_bytes(rack), 0);
    }

    #[test]
    fn intra_rack_traffic_skips_the_uplink() {
        let mut net = Network::new(SimDuration::from_micros(50));
        let h1 = net.add_symmetric_node(Bandwidth::gbps(1.0));
        let h2 = net.add_symmetric_node(Bandwidth::gbps(1.0));
        let rack = net.add_rack(Bandwidth::gbps(0.1), Bandwidth::gbps(0.1));
        net.set_node_rack(h1, rack);
        net.set_node_rack(h2, rack);
        let ch = net.open_channel(h1, h2);
        net.send(SimTime::ZERO, ch, 125_000_000, 1);
        // A 0.1 Gbps trunk does not constrain in-rack traffic.
        assert!((net.channel_rate(ch) - GBPS).abs() < 1.0);
        drain(&mut net);
        assert_eq!(net.rack_up_bytes(rack), 0);
        assert_eq!(net.rack_down_bytes(rack), 0);
    }

    #[test]
    fn rack_downlink_constrains_incoming_flows() {
        // Spine (10G) fanning into two hosts behind a 1G downlink.
        let mut net = Network::new(SimDuration::from_micros(50));
        let spine = net.add_symmetric_node(Bandwidth::gbps(10.0));
        let h1 = net.add_symmetric_node(Bandwidth::gbps(1.0));
        let h2 = net.add_symmetric_node(Bandwidth::gbps(1.0));
        let rack = net.add_rack(Bandwidth::gbps(1.0), Bandwidth::gbps(1.0));
        net.set_node_rack(h1, rack);
        net.set_node_rack(h2, rack);
        let c1 = net.open_channel(spine, h1);
        let c2 = net.open_channel(spine, h2);
        net.send(SimTime::ZERO, c1, 125_000_000, 1);
        net.send(SimTime::ZERO, c2, 125_000_000, 2);
        assert!((net.channel_rate(c1) - GBPS / 2.0).abs() < 1.0);
        assert!((net.channel_rate(c2) - GBPS / 2.0).abs() < 1.0);
        drain(&mut net);
        assert_eq!(net.rack_down_bytes(rack), 250_000_000);
    }

    #[test]
    fn cross_rack_flow_consumes_both_trunks() {
        let mut net = Network::new(SimDuration::from_micros(50));
        let h1 = net.add_symmetric_node(Bandwidth::gbps(1.0));
        let h2 = net.add_symmetric_node(Bandwidth::gbps(1.0));
        let r1 = net.add_rack(Bandwidth::gbps(0.25), Bandwidth::gbps(1.0));
        let r2 = net.add_rack(Bandwidth::gbps(1.0), Bandwidth::gbps(1.0));
        net.set_node_rack(h1, r1);
        net.set_node_rack(h2, r2);
        let ch = net.open_channel(h1, h2);
        net.send(SimTime::ZERO, ch, 125_000_000, 1);
        // Bottleneck is r1's 0.25 Gbps uplink.
        assert!((net.channel_rate(ch) - 0.25 * GBPS).abs() < 1.0);
        drain(&mut net);
        assert_eq!(net.rack_up_bytes(r1), 125_000_000);
        assert_eq!(net.rack_down_bytes(r2), 125_000_000);
    }

    #[test]
    fn rack_assignment_after_channel_open_reroutes_trunks() {
        // set_node_rack recomputes membership of existing channels.
        let mut net = Network::new(SimDuration::from_micros(50));
        let h1 = net.add_symmetric_node(Bandwidth::gbps(1.0));
        let spine = net.add_symmetric_node(Bandwidth::gbps(10.0));
        let ch = net.open_channel(h1, spine);
        let rack = net.add_rack(Bandwidth::gbps(0.5), Bandwidth::gbps(0.5));
        net.set_node_rack(h1, rack);
        net.send(SimTime::ZERO, ch, 62_500_000, 1);
        assert!((net.channel_rate(ch) - 0.5 * GBPS).abs() < 1.0);
        drain(&mut net);
        assert_eq!(net.rack_up_bytes(rack), 62_500_000);
    }

    #[test]
    fn back_to_back_heads_keep_rate_without_recompute() {
        // A multi-segment queue completes heads without perturbing the
        // allocation; deliveries stay correctly ordered and complete.
        let (mut net, a, b, c) = net3();
        let ab = net.open_channel(a, b);
        let ac = net.open_channel(a, c);
        for i in 0..8u64 {
            net.send(SimTime::ZERO, ab, 12_500_000, i);
        }
        net.send(SimTime::ZERO, ac, 100_000_000, 100);
        let done = drain(&mut net);
        assert_eq!(done.len(), 9);
        let ab_times: Vec<_> = done.iter().filter(|(t, _)| *t < 100).collect();
        assert_eq!(ab_times.len(), 8);
        for w in ab_times.windows(2) {
            assert!(w[0].1 < w[1].1);
        }
        assert_eq!(net.delivered_bytes(ab), 8 * 12_500_000);
        assert_eq!(net.delivered_bytes(ac), 100_000_000);
    }
}
