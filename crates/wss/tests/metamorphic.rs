//! Metamorphic tests for the WSS controller and monitor.
//!
//! The controller's decision depends on the sampled swap rate only
//! through the comparison against τ, so **scaling every rate and τ by
//! the same constant must leave the adjustment sequence untouched** —
//! same reservations, same cadence, same stability verdicts, under any
//! α/β. Scale factors are powers of two, so the float arithmetic is
//! exact and the relation holds bit-for-bit, not approximately.
//!
//! Cases are generated from the deterministic simulation RNG with fixed
//! seeds, so any failure reproduces.

use agile_sim_core::{DetRng, IoCounters, SimDuration, SimTime};
use agile_wss::{
    Adjustment, ControllerParams, EpochSample, EstimateSignal, GroundTruthWss, PmlEstimator,
    PmlParams, ReservationController, SwapActivityMonitor, SwapIoEstimator, SwapRate, WssEstimator,
    WssObservation,
};

fn rate(kbps: f64) -> SwapRate {
    SwapRate {
        at: SimTime::ZERO,
        read_bps: kbps * 1024.0,
        write_bps: 0.0,
    }
}

/// Replay `rates` through a fresh controller, threading the reservation.
fn replay(params: ControllerParams, start: u64, rates: &[f64]) -> Vec<Adjustment> {
    let mut c = ReservationController::new(params);
    let mut r = start;
    rates
        .iter()
        .map(|&kbps| {
            let adj = c.on_sample(r, rate(kbps));
            r = adj.new_reservation;
            adj
        })
        .collect()
}

/// Scaling the swap-I/O sample rates and τ by the same power of two must
/// produce an identical adjustment sequence.
#[test]
fn scaling_rates_and_tau_preserves_adjustments() {
    for case in 0..100u64 {
        let mut g = DetRng::seed_from(0x9a17 * 7 + case);
        let n = 1 + g.index(60) as usize;
        let rates: Vec<f64> = (0..n).map(|_| g.range_f64(0.0, 64.0)).collect();
        let min = 64u64 << 20;
        let max = 4u64 << 30;
        // Vary α/β/τ per case (β > 1 > α, τ around the paper's 4 KB/s).
        let mut params = ControllerParams::paper(min, max);
        params.alpha = g.range_f64(0.80, 0.99);
        params.beta = g.range_f64(1.01, 1.25);
        params.tau_kbps = g.range_f64(1.0, 16.0);
        let start = 2u64 << 30;
        let base = replay(params, start, &rates);
        for c in [0.5f64, 2.0, 4.0, 8.0] {
            let scaled_rates: Vec<f64> = rates.iter().map(|r| r * c).collect();
            let mut scaled_params = params;
            scaled_params.tau_kbps = params.tau_kbps * c;
            let scaled = replay(scaled_params, start, &scaled_rates);
            assert_eq!(
                base, scaled,
                "case {case}, scale {c}: adjustment sequence diverged"
            );
        }
    }
}

/// Direction consistency: a sample strictly below τ never grows the
/// reservation; a sample strictly above never shrinks it (modulo the
/// [min, max] clamp, which can only pull toward the bounds).
#[test]
fn below_tau_never_grows_above_tau_never_shrinks() {
    for case in 0..100u64 {
        let mut g = DetRng::seed_from(0xb3e * 11 + case);
        let min = 64u64 << 20;
        let max = 4u64 << 30;
        let mut params = ControllerParams::paper(min, max);
        params.tau_kbps = g.range_f64(1.0, 16.0);
        let mut c = ReservationController::new(params);
        let mut r = 2u64 << 30;
        for _ in 0..60 {
            let kbps = g.range_f64(0.0, 32.0);
            let adj = c.on_sample(r, rate(kbps));
            if kbps > params.tau_kbps {
                assert!(
                    adj.new_reservation >= r.min(max),
                    "case {case}: above-τ sample shrank {r} -> {}",
                    adj.new_reservation
                );
            } else {
                assert!(
                    adj.new_reservation <= r.max(min),
                    "case {case}: below-τ sample grew {r} -> {}",
                    adj.new_reservation
                );
            }
            r = adj.new_reservation;
        }
    }
}

/// Replay an observation stream through any [`WssEstimator`], threading
/// the reservation. Returns one `(reservation, next_sample_in_ns,
/// stable)` row per tick (priming ticks keep the current reservation).
fn replay_trait(
    mut est: Box<dyn WssEstimator>,
    obs: &[(SimTime, WssObservation)],
    start: u64,
) -> Vec<(u64, u64, bool)> {
    let mut r = start;
    obs.iter()
        .map(|&(at, o)| match est.on_tick(at, &o, r) {
            Some(tick) => {
                r = tick.adjustment.new_reservation;
                (
                    r,
                    tick.adjustment.next_sample_in.as_nanos(),
                    tick.adjustment.stable,
                )
            }
            None => (r, est.priming_interval().as_nanos(), false),
        })
        .collect()
}

/// Seeded monotone cumulative swap counters at 1-second spacing, with
/// junk epoch drains attached (the swap-I/O estimator must ignore them).
fn io_stream(g: &mut DetRng, n: usize, byte_scale: u64) -> Vec<(SimTime, WssObservation)> {
    let mut acc = IoCounters::default();
    (0..n)
        .map(|i| {
            acc.read_ops += g.index(100);
            acc.write_ops += g.index(100);
            acc.read_bytes += g.index(1 << 24) * byte_scale;
            acc.write_bytes += g.index(1 << 24) * byte_scale;
            let epoch = Some(EpochSample {
                pml_pages: g.index(1 << 20),
                exact_pages: g.index(1 << 20),
                overflowed: g.index(2) == 1,
            });
            (
                SimTime::from_secs(1 + i as u64),
                WssObservation { io: acc, epoch },
            )
        })
        .collect()
}

/// The swap-I/O metamorphic relation holds *through the trait*: scaling
/// the cumulative byte counters and τ by the same power of two produces
/// an identical (reservation, cadence, stability) sequence — and the
/// attached epoch drains (redrawn differently per scale) change nothing,
/// because the estimator does not consume them.
#[test]
fn swap_io_trait_scaling_preserves_adjustments() {
    for case in 0..50u64 {
        let mut g = DetRng::seed_from(0xe5717 * 3 + case);
        let n = 2 + g.index(40) as usize;
        let seed = 0xab5 * 17 + case;
        let mut params = ControllerParams::paper(64 << 20, 4 << 30);
        params.alpha = g.range_f64(0.80, 0.99);
        params.beta = g.range_f64(1.01, 1.25);
        params.tau_kbps = g.range_f64(1.0, 16.0);
        let start = 2u64 << 30;
        let base = replay_trait(
            Box::new(SwapIoEstimator::new(params)),
            &io_stream(&mut DetRng::seed_from(seed), n, 1),
            start,
        );
        for c in [2u64, 4, 8] {
            // Same draw sequence, bytes scaled by `c` — the junk epoch
            // fields are consumed from the same RNG, so they match the
            // base stream; a second pass below redraws them entirely.
            let mut scaled_params = params;
            scaled_params.tau_kbps = params.tau_kbps * c as f64;
            let scaled = replay_trait(
                Box::new(SwapIoEstimator::new(scaled_params)),
                &io_stream(&mut DetRng::seed_from(seed), n, c),
                start,
            );
            assert_eq!(base, scaled, "case {case}, scale {c}");
        }
        // Redraw the epoch junk from a different seed while keeping the
        // io counters: the swap-I/O estimator must not notice.
        let mut stream = io_stream(&mut DetRng::seed_from(seed), n, 1);
        let mut g2 = DetRng::seed_from(seed ^ 0xffff);
        for (_, o) in stream.iter_mut() {
            o.epoch = Some(EpochSample {
                pml_pages: g2.index(1 << 30),
                exact_pages: g2.index(1 << 30),
                overflowed: g2.index(2) == 0,
            });
        }
        let rejunked = replay_trait(Box::new(SwapIoEstimator::new(params)), &stream, start);
        assert_eq!(base, rejunked, "case {case}: epoch junk perturbed swap-I/O");
    }
}

/// Seeded epoch-drain stream (the io field stays flat: the epoch-fed
/// estimators must ignore it).
fn epoch_stream(g: &mut DetRng, n: usize, page_scale: u64) -> Vec<(SimTime, WssObservation)> {
    (0..n)
        .map(|i| {
            let pages = g.index(1 << 20) * page_scale;
            (
                SimTime::from_secs(2 * (1 + i as u64)),
                WssObservation {
                    io: IoCounters::default(),
                    epoch: Some(EpochSample {
                        pml_pages: pages,
                        exact_pages: pages,
                        overflowed: g.index(2) == 1,
                    }),
                },
            )
        })
        .collect()
}

/// The PML estimator's sizing is exactly linear and its stability band
/// is scale-free, so scaling every per-epoch page count *and* the
/// reservation bounds by a power of two scales every reservation by
/// exactly that factor, with identical cadence and stability verdicts.
/// Holds for the ground-truth oracle too (same window machinery).
#[test]
fn pml_trait_scaling_scales_reservations_exactly() {
    for case in 0..50u64 {
        let mut g = DetRng::seed_from(0x9d1 * 29 + case);
        let n = 2 + g.index(40) as usize;
        let seed = 0x77a * 31 + case;
        let mut params = PmlParams::defaults(4096, 64 << 20, 4 << 30);
        params.window = 1 + g.index(4) as u32;
        params.band_shift = 2 + g.index(4) as u32;
        params.stable_after = 1 + g.index(4) as u32;
        let start = 2u64 << 30;
        for oracle in [false, true] {
            let make = |p: PmlParams| -> Box<dyn WssEstimator> {
                if oracle {
                    Box::new(GroundTruthWss::new(p))
                } else {
                    Box::new(PmlEstimator::new(p))
                }
            };
            let base = replay_trait(
                make(params),
                &epoch_stream(&mut DetRng::seed_from(seed), n, 1),
                start,
            );
            for c in [2u64, 4, 8] {
                let mut scaled_params = params;
                scaled_params.min_bytes = params.min_bytes * c;
                scaled_params.max_bytes = params.max_bytes * c;
                let scaled = replay_trait(
                    make(scaled_params),
                    &epoch_stream(&mut DetRng::seed_from(seed), n, c),
                    start * c,
                );
                let want: Vec<(u64, u64, bool)> =
                    base.iter().map(|&(r, dt, s)| (r * c, dt, s)).collect();
                assert_eq!(want, scaled, "case {case}, oracle {oracle}, scale {c}");
            }
        }
    }
}

/// Direction consistency through the trait, both estimators.
///
/// * Swap-I/O: a tick whose own reported rate is at or below τ never
///   grows the reservation; strictly above τ never shrinks it (modulo
///   the clamp toward the bounds) — the controller relation, observed
///   end-to-end through [`EstimateSignal::SwapRate`].
/// * PML: reservations are monotone in the drained page counts — a
///   pointwise-larger epoch stream never yields a smaller reservation.
#[test]
fn trait_direction_consistency_both_estimators() {
    for case in 0..50u64 {
        let mut g = DetRng::seed_from(0x51f7 * 7 + case);
        let n = 2 + g.index(40) as usize;
        let (min, max) = (64u64 << 20, 4u64 << 30);
        let mut params = ControllerParams::paper(min, max);
        params.tau_kbps = g.range_f64(1.0, 16.0);
        let mut est = SwapIoEstimator::new(params);
        let mut r = 2u64 << 30;
        for (at, o) in io_stream(&mut g, n, 1) {
            if let Some(tick) = est.on_tick(at, &o, r) {
                let kbps = match tick.signal {
                    EstimateSignal::SwapRate { kbps } => kbps,
                    other => panic!("case {case}: {other:?}"),
                };
                let next = tick.adjustment.new_reservation;
                if kbps > params.tau_kbps {
                    assert!(next >= r.min(max), "case {case}: above-τ shrank");
                } else {
                    assert!(next <= r.max(min), "case {case}: below-τ grew");
                }
                r = next;
            }
        }

        let pml_params = PmlParams {
            window: 1 + g.index(4) as u32,
            ..PmlParams::defaults(4096, min, max)
        };
        let seed = 0x1357 * 5 + case;
        let lo = epoch_stream(&mut DetRng::seed_from(seed), n, 1);
        let hi: Vec<(SimTime, WssObservation)> = lo
            .iter()
            .map(|&(at, o)| {
                let ep = o.epoch.expect("epoch stream");
                let extra = g.index(1 << 18);
                (
                    at,
                    WssObservation {
                        io: o.io,
                        epoch: Some(EpochSample {
                            pml_pages: ep.pml_pages + extra,
                            exact_pages: ep.exact_pages + extra,
                            overflowed: ep.overflowed,
                        }),
                    },
                )
            })
            .collect();
        let base = replay_trait(Box::new(PmlEstimator::new(pml_params)), &lo, 2u64 << 30);
        let bigger = replay_trait(Box::new(PmlEstimator::new(pml_params)), &hi, 2u64 << 30);
        for (i, (b, s)) in base.iter().zip(&bigger).enumerate() {
            assert!(
                s.0 >= b.0,
                "case {case} tick {i}: more pages shrank the reservation ({} -> {})",
                b.0,
                s.0
            );
        }
        // Cadence is fixed for the epoch-fed estimator regardless of input.
        assert!(
            bigger
                .iter()
                .all(|&(_, dt, _)| dt == SimDuration::from_secs(2).as_nanos()),
            "case {case}: PML cadence is not the fixed epoch"
        );
    }
}

/// Monitor metamorphic relation: scaling the cumulative byte counters by
/// a power of two scales every windowed rate by exactly that factor.
#[test]
fn scaling_io_counters_scales_rates_exactly() {
    for case in 0..50u64 {
        let mut g = DetRng::seed_from(0xc41 * 13 + case);
        let n = 2 + g.index(20) as usize;
        let mut t = 0u64;
        let samples: Vec<(SimTime, IoCounters)> = (0..n)
            .map(|_| {
                t += 1 + g.index(5_000);
                let c = IoCounters {
                    read_ops: g.index(1_000),
                    write_ops: g.index(1_000),
                    read_bytes: g.index(1 << 30),
                    write_bytes: g.index(1 << 30),
                    busy_nanos: g.index(1 << 40),
                };
                (SimTime::from_millis(t), c)
            })
            .collect();
        // Cumulative counters must be monotone; prefix-sum the draws.
        let mut acc = IoCounters::default();
        let samples: Vec<(SimTime, IoCounters)> = samples
            .into_iter()
            .map(|(at, d)| {
                acc.read_ops += d.read_ops;
                acc.write_ops += d.write_ops;
                acc.read_bytes += d.read_bytes;
                acc.write_bytes += d.write_bytes;
                acc.busy_nanos += d.busy_nanos;
                (at, acc)
            })
            .collect();
        for scale in [2u64, 4, 8] {
            let mut base = SwapActivityMonitor::new();
            let mut scaled = SwapActivityMonitor::new();
            for (at, c) in &samples {
                let sc = IoCounters {
                    read_bytes: c.read_bytes * scale,
                    write_bytes: c.write_bytes * scale,
                    ..*c
                };
                match (base.sample(*at, *c), scaled.sample(*at, sc)) {
                    (None, None) => {}
                    (Some(b), Some(s)) => {
                        assert_eq!(s.read_bps, b.read_bps * scale as f64, "case {case}");
                        assert_eq!(s.write_bps, b.write_bps * scale as f64, "case {case}");
                        assert_eq!(s.total_kbps(), b.total_kbps() * scale as f64, "case {case}");
                    }
                    (b, s) => panic!("case {case}: windows diverged: {b:?} vs {s:?}"),
                }
            }
        }
    }
}
