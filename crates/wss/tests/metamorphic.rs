//! Metamorphic tests for the WSS controller and monitor.
//!
//! The controller's decision depends on the sampled swap rate only
//! through the comparison against τ, so **scaling every rate and τ by
//! the same constant must leave the adjustment sequence untouched** —
//! same reservations, same cadence, same stability verdicts, under any
//! α/β. Scale factors are powers of two, so the float arithmetic is
//! exact and the relation holds bit-for-bit, not approximately.
//!
//! Cases are generated from the deterministic simulation RNG with fixed
//! seeds, so any failure reproduces.

use agile_sim_core::{DetRng, IoCounters, SimTime};
use agile_wss::{
    Adjustment, ControllerParams, ReservationController, SwapActivityMonitor, SwapRate,
};

fn rate(kbps: f64) -> SwapRate {
    SwapRate {
        at: SimTime::ZERO,
        read_bps: kbps * 1024.0,
        write_bps: 0.0,
    }
}

/// Replay `rates` through a fresh controller, threading the reservation.
fn replay(params: ControllerParams, start: u64, rates: &[f64]) -> Vec<Adjustment> {
    let mut c = ReservationController::new(params);
    let mut r = start;
    rates
        .iter()
        .map(|&kbps| {
            let adj = c.on_sample(r, rate(kbps));
            r = adj.new_reservation;
            adj
        })
        .collect()
}

/// Scaling the swap-I/O sample rates and τ by the same power of two must
/// produce an identical adjustment sequence.
#[test]
fn scaling_rates_and_tau_preserves_adjustments() {
    for case in 0..100u64 {
        let mut g = DetRng::seed_from(0x9a17 * 7 + case);
        let n = 1 + g.index(60) as usize;
        let rates: Vec<f64> = (0..n).map(|_| g.range_f64(0.0, 64.0)).collect();
        let min = 64u64 << 20;
        let max = 4u64 << 30;
        // Vary α/β/τ per case (β > 1 > α, τ around the paper's 4 KB/s).
        let mut params = ControllerParams::paper(min, max);
        params.alpha = g.range_f64(0.80, 0.99);
        params.beta = g.range_f64(1.01, 1.25);
        params.tau_kbps = g.range_f64(1.0, 16.0);
        let start = 2u64 << 30;
        let base = replay(params, start, &rates);
        for c in [0.5f64, 2.0, 4.0, 8.0] {
            let scaled_rates: Vec<f64> = rates.iter().map(|r| r * c).collect();
            let mut scaled_params = params;
            scaled_params.tau_kbps = params.tau_kbps * c;
            let scaled = replay(scaled_params, start, &scaled_rates);
            assert_eq!(
                base, scaled,
                "case {case}, scale {c}: adjustment sequence diverged"
            );
        }
    }
}

/// Direction consistency: a sample strictly below τ never grows the
/// reservation; a sample strictly above never shrinks it (modulo the
/// [min, max] clamp, which can only pull toward the bounds).
#[test]
fn below_tau_never_grows_above_tau_never_shrinks() {
    for case in 0..100u64 {
        let mut g = DetRng::seed_from(0xb3e * 11 + case);
        let min = 64u64 << 20;
        let max = 4u64 << 30;
        let mut params = ControllerParams::paper(min, max);
        params.tau_kbps = g.range_f64(1.0, 16.0);
        let mut c = ReservationController::new(params);
        let mut r = 2u64 << 30;
        for _ in 0..60 {
            let kbps = g.range_f64(0.0, 32.0);
            let adj = c.on_sample(r, rate(kbps));
            if kbps > params.tau_kbps {
                assert!(
                    adj.new_reservation >= r.min(max),
                    "case {case}: above-τ sample shrank {r} -> {}",
                    adj.new_reservation
                );
            } else {
                assert!(
                    adj.new_reservation <= r.max(min),
                    "case {case}: below-τ sample grew {r} -> {}",
                    adj.new_reservation
                );
            }
            r = adj.new_reservation;
        }
    }
}

/// Monitor metamorphic relation: scaling the cumulative byte counters by
/// a power of two scales every windowed rate by exactly that factor.
#[test]
fn scaling_io_counters_scales_rates_exactly() {
    for case in 0..50u64 {
        let mut g = DetRng::seed_from(0xc41 * 13 + case);
        let n = 2 + g.index(20) as usize;
        let mut t = 0u64;
        let samples: Vec<(SimTime, IoCounters)> = (0..n)
            .map(|_| {
                t += 1 + g.index(5_000);
                let c = IoCounters {
                    read_ops: g.index(1_000),
                    write_ops: g.index(1_000),
                    read_bytes: g.index(1 << 30),
                    write_bytes: g.index(1 << 30),
                    busy_nanos: g.index(1 << 40),
                };
                (SimTime::from_millis(t), c)
            })
            .collect();
        // Cumulative counters must be monotone; prefix-sum the draws.
        let mut acc = IoCounters::default();
        let samples: Vec<(SimTime, IoCounters)> = samples
            .into_iter()
            .map(|(at, d)| {
                acc.read_ops += d.read_ops;
                acc.write_ops += d.write_ops;
                acc.read_bytes += d.read_bytes;
                acc.write_bytes += d.write_bytes;
                acc.busy_nanos += d.busy_nanos;
                (at, acc)
            })
            .collect();
        for scale in [2u64, 4, 8] {
            let mut base = SwapActivityMonitor::new();
            let mut scaled = SwapActivityMonitor::new();
            for (at, c) in &samples {
                let sc = IoCounters {
                    read_bytes: c.read_bytes * scale,
                    write_bytes: c.write_bytes * scale,
                    ..*c
                };
                match (base.sample(*at, *c), scaled.sample(*at, sc)) {
                    (None, None) => {}
                    (Some(b), Some(s)) => {
                        assert_eq!(s.read_bps, b.read_bps * scale as f64, "case {case}");
                        assert_eq!(s.write_bps, b.write_bps * scale as f64, "case {case}");
                        assert_eq!(s.total_kbps(), b.total_kbps() * scale as f64, "case {case}");
                    }
                    (b, s) => panic!("case {case}: windows diverged: {b:?} vs {s:?}"),
                }
            }
        }
    }
}
