//! Property tests: controller safety and watermark-selection minimality.

use agile_sim_core::SimTime;
use agile_wss::{ControllerParams, ReservationController, SwapRate, VmWss, WatermarkTrigger};
use proptest::prelude::*;

fn rate(kbps: f64) -> SwapRate {
    SwapRate {
        at: SimTime::ZERO,
        read_bps: kbps * 1024.0,
        write_bps: 0.0,
    }
}

proptest! {
    /// The reservation always stays within [min, max] no matter the rate
    /// sequence, and each step moves by exactly α or β (modulo clamping).
    #[test]
    fn controller_bounded_and_multiplicative(
        rates in proptest::collection::vec(0.0f64..500.0, 1..100)
    ) {
        let min = 64u64 << 20;
        let max = 4u64 << 30;
        let params = ControllerParams::paper(min, max);
        let mut c = ReservationController::new(params);
        let mut r = 2u64 << 30;
        for s in rates {
            let adj = c.on_sample(r, rate(s));
            prop_assert!(adj.new_reservation >= min);
            prop_assert!(adj.new_reservation <= max);
            let grew = (r as f64 * params.beta) as u64;
            let shrunk = (r as f64 * params.alpha) as u64;
            prop_assert!(
                adj.new_reservation == grew.clamp(min, max)
                    || adj.new_reservation == shrunk.clamp(min, max),
                "step was not multiplicative: {} from {}",
                adj.new_reservation,
                r
            );
            r = adj.new_reservation;
        }
    }

    /// Watermark selection is minimal: no smaller set of VMs frees enough,
    /// and the selected set does free enough.
    #[test]
    fn watermark_selection_is_minimal_and_sufficient(
        sizes in proptest::collection::vec(1u64..100, 1..12),
        low_frac in 0.2f64..0.7,
        high_frac in 0.75f64..0.95,
    ) {
        let total: u64 = sizes.iter().sum::<u64>() * (1 << 20);
        let low = (total as f64 * low_frac) as u64;
        let high = (total as f64 * high_frac) as u64;
        prop_assume!(low < high && high < total);
        let trigger = WatermarkTrigger::new(low, high);
        let vms: Vec<VmWss> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| VmWss {
                vm: i as u32,
                wss_bytes: s * (1 << 20),
            })
            .collect();
        let selected = trigger.select_vms(&vms);
        let aggregate: u64 = vms.iter().map(|v| v.wss_bytes).sum();
        prop_assert!(trigger.should_migrate(aggregate), "setup guarantees pressure");
        let freed: u64 = selected
            .iter()
            .map(|id| vms.iter().find(|v| v.vm == *id).unwrap().wss_bytes)
            .sum();
        // Sufficient:
        prop_assert!(aggregate - freed <= low, "not enough freed");
        // Minimal: freeing the k-1 LARGEST VMs would not be enough, hence
        // no set of k-1 VMs is.
        if selected.len() > 1 {
            let mut sorted: Vec<u64> = vms.iter().map(|v| v.wss_bytes).collect();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            let top_k_minus_1: u64 = sorted.iter().take(selected.len() - 1).sum();
            prop_assert!(
                aggregate - top_k_minus_1 > low,
                "a smaller selection would have sufficed"
            );
        }
    }
}
