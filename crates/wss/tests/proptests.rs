//! Randomized tests: controller safety and watermark-selection minimality,
//! driven by the deterministic simulation RNG (fixed seeds, so failures
//! reproduce).

use agile_sim_core::{DetRng, SimTime};
use agile_wss::{ControllerParams, ReservationController, SwapRate, VmWss, WatermarkTrigger};

fn rate(kbps: f64) -> SwapRate {
    SwapRate {
        at: SimTime::ZERO,
        read_bps: kbps * 1024.0,
        write_bps: 0.0,
    }
}

/// The reservation always stays within [min, max] no matter the rate
/// sequence, and each step moves by exactly α or β (modulo clamping).
#[test]
fn controller_bounded_and_multiplicative() {
    for case in 0..120u64 {
        let mut g = DetRng::seed_from(0x355 * 3 + case);
        let n = 1 + g.index(100) as usize;
        let rates: Vec<f64> = (0..n).map(|_| g.range_f64(0.0, 500.0)).collect();
        let min = 64u64 << 20;
        let max = 4u64 << 30;
        let params = ControllerParams::paper(min, max);
        let mut c = ReservationController::new(params);
        let mut r = 2u64 << 30;
        for s in rates {
            let adj = c.on_sample(r, rate(s));
            assert!(adj.new_reservation >= min, "case {case}");
            assert!(adj.new_reservation <= max, "case {case}");
            let grew = (r as f64 * params.beta) as u64;
            let shrunk = (r as f64 * params.alpha) as u64;
            assert!(
                adj.new_reservation == grew.clamp(min, max)
                    || adj.new_reservation == shrunk.clamp(min, max),
                "case {case}: step was not multiplicative: {} from {}",
                adj.new_reservation,
                r
            );
            r = adj.new_reservation;
        }
    }
}

/// Watermark selection is minimal: no smaller set of VMs frees enough,
/// and the selected set does free enough.
#[test]
fn watermark_selection_is_minimal_and_sufficient() {
    let mut checked = 0u32;
    for case in 0..200u64 {
        let mut g = DetRng::seed_from(0x356 * 5 + case);
        let n = 1 + g.index(11) as usize;
        let sizes: Vec<u64> = (0..n).map(|_| 1 + g.index(99)).collect();
        let low_frac = g.range_f64(0.2, 0.7);
        let high_frac = g.range_f64(0.75, 0.95);
        let total: u64 = sizes.iter().sum::<u64>() * (1 << 20);
        let low = (total as f64 * low_frac) as u64;
        let high = (total as f64 * high_frac) as u64;
        if !(low < high && high < total) {
            continue;
        }
        checked += 1;
        let trigger = WatermarkTrigger::new(low, high);
        let vms: Vec<VmWss> = sizes
            .iter()
            .enumerate()
            .map(|(i, &s)| VmWss {
                vm: i as u32,
                wss_bytes: s * (1 << 20),
            })
            .collect();
        let selected = trigger.select_vms(&vms);
        let aggregate: u64 = vms.iter().map(|v| v.wss_bytes).sum();
        assert!(
            trigger.should_migrate(aggregate),
            "case {case}: setup guarantees pressure"
        );
        let freed: u64 = selected
            .iter()
            .map(|id| vms.iter().find(|v| v.vm == *id).unwrap().wss_bytes)
            .sum();
        // Sufficient:
        assert!(aggregate - freed <= low, "case {case}: not enough freed");
        // Minimal: freeing the k-1 LARGEST VMs would not be enough, hence
        // no set of k-1 VMs is.
        if selected.len() > 1 {
            let mut sorted: Vec<u64> = vms.iter().map(|v| v.wss_bytes).collect();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            let top_k_minus_1: u64 = sorted.iter().take(selected.len() - 1).sum();
            assert!(
                aggregate - top_k_minus_1 > low,
                "case {case}: a smaller selection would have sufficed"
            );
        }
    }
    assert!(checked > 50, "too many degenerate cases skipped: {checked}");
}
