//! Property tests: the simulated-PML estimate against the ground-truth
//! oracle, over seeded guest access streams.
//!
//! Drives [`agile_memory::EpochTracker`] (the dirty-log model hung off
//! the memory image) with randomized touch streams and residency maps,
//! then feeds the drains through [`PmlEstimator`] and [`GroundTruthWss`]
//! via the [`WssEstimator`] trait. Pins the estimator's stated accuracy
//! contract:
//!
//! * **Exact without overflow**: while the per-epoch log never fills,
//!   the PML estimate equals the exact distinct-pages-touched count —
//!   regardless of evictions.
//! * **Exact when fully resident**: even under overflow, the full-scan
//!   fallback recovers every still-resident touched page.
//! * **Bounded degradation under forced overflow**: the estimate never
//!   over-reports, loses at most the touched-and-evicted pages that
//!   missed the log prefix, and is monotonically non-decreasing in the
//!   log capacity. The trait-level reservations inherit the same
//!   ordering (PML ≤ oracle, equal when lossless).

use agile_memory::EpochTracker;
use agile_sim_core::{DetRng, IoCounters, SimTime, GIB, MIB};
use agile_wss::{
    EpochSample, GroundTruthWss, PmlEstimator, PmlParams, WssEstimator, WssObservation,
};

const PAGES: u32 = 4096;
const WORDS: usize = (PAGES as usize) / 64;

/// One seeded epoch: touch a random stream, evict a random subset, and
/// drain. Returns (report, exact distinct via independent count, touched
/// bitmap, present bitmap).
fn run_epoch(
    t: &mut EpochTracker,
    g: &mut DetRng,
    touches: usize,
    evict_denominator: u64,
) -> (agile_memory::EpochReport, u32, Vec<u64>, Vec<u64>) {
    let mut touched = vec![0u64; WORDS];
    for _ in 0..touches {
        let pfn = g.index(PAGES as u64) as u32;
        t.note(pfn);
        touched[pfn as usize / 64] |= 1 << (pfn % 64);
    }
    // Residency at drain time: each page evicted with probability
    // 1/evict_denominator (u64::MAX denominator = everything resident).
    let present: Vec<u64> = (0..WORDS)
        .map(|w| {
            let mut bits = u64::MAX;
            for b in 0..64 {
                if g.index(evict_denominator) == 0 {
                    bits &= !(1u64 << b);
                }
            }
            let _ = w;
            bits
        })
        .collect();
    let independent_distinct: u32 = touched.iter().map(|w| w.count_ones()).sum();
    let report = t.drain(&present);
    (report, independent_distinct, touched, present)
}

/// While the log never fills, the estimate is exact — evictions or not.
#[test]
fn exact_when_log_never_overflows() {
    for case in 0..40u64 {
        let mut g = DetRng::seed_from(0x50c1 * 3 + case);
        let touches = 1 + g.index(1 << 10) as usize; // ≤ 1024 < cap
        let mut t = EpochTracker::new(2048, PAGES);
        let (r, independent, _, _) = run_epoch(&mut t, &mut g, touches, 4);
        assert!(!r.overflowed, "case {case}: 2048-entry log filled early");
        assert_eq!(r.distinct_pages, independent, "case {case}: truth drifted");
        assert_eq!(r.pml_pages, r.distinct_pages, "case {case}: lossless epoch");
    }
}

/// Even under overflow, a fully-resident epoch is recovered exactly by
/// the full-scan fallback.
#[test]
fn overflowed_but_fully_resident_is_exact() {
    for case in 0..40u64 {
        let mut g = DetRng::seed_from(0xfee1 * 7 + case);
        let touches = 600 + g.index(4000) as usize;
        let mut t = EpochTracker::new(64, PAGES);
        let (r, independent, _, _) = run_epoch(&mut t, &mut g, touches, u64::MAX);
        assert_eq!(r.distinct_pages, independent, "case {case}");
        if r.overflowed {
            assert_eq!(
                r.pml_pages, r.distinct_pages,
                "case {case}: resident pages escaped the full scan"
            );
        }
    }
}

/// Forced overflow + evictions: never over-reports, never crashes, and
/// the loss is bounded by the touched-and-evicted population that could
/// not have been logged.
#[test]
fn overflow_degrades_monotonically_never_over_reports() {
    for case in 0..40u64 {
        let mut g = DetRng::seed_from(0xdead * 11 + case);
        let touches = 512 + g.index(6000) as usize;
        let cap = 8 + g.index(128) as usize;
        let mut t = EpochTracker::new(cap, PAGES);
        let (r, independent, touched, present) = run_epoch(&mut t, &mut g, touches, 3);
        assert_eq!(r.distinct_pages, independent, "case {case}");
        assert!(
            r.pml_pages <= r.distinct_pages,
            "case {case}: over-reported {} > {}",
            r.pml_pages,
            r.distinct_pages
        );
        let evicted_touched: u32 = touched
            .iter()
            .zip(&present)
            .map(|(t, p)| (t & !p).count_ones())
            .sum();
        let lost = r.distinct_pages - r.pml_pages;
        assert!(
            lost <= evicted_touched,
            "case {case}: lost {lost} > touched-and-evicted {evicted_touched}"
        );
        if !r.overflowed {
            assert_eq!(lost, 0, "case {case}: lossless when not overflowed");
        }
    }
}

/// Replaying the same touch stream with growing log capacities never
/// decreases the estimate (a bigger buffer logs a superset prefix).
#[test]
fn bigger_log_cap_never_worse_on_same_stream() {
    for case in 0..40u64 {
        let seed = 0xcafe * 13 + case;
        let mut last = 0u32;
        for cap in [4usize, 16, 64, 256, 1024, 1 << 14] {
            // Same seed per cap: identical touch stream and residency.
            let mut g = DetRng::seed_from(seed);
            let touches = 512 + g.index(6000) as usize;
            let mut t = EpochTracker::new(cap, PAGES);
            let (r, _, _, _) = run_epoch(&mut t, &mut g, touches, 3);
            assert!(
                r.pml_pages >= last,
                "case {case}: cap {cap} regressed {last} -> {}",
                r.pml_pages
            );
            last = r.pml_pages;
        }
        assert!(last > 0, "case {case}: degenerate stream");
    }
}

/// End to end through the trait: feed the same drains to [`PmlEstimator`]
/// and [`GroundTruthWss`] (same params). The PML reservation never
/// exceeds the oracle's, and matches it exactly on epochs whose drains
/// were lossless.
#[test]
fn pml_reservation_tracks_oracle_from_below() {
    for case in 0..20u64 {
        let mut g = DetRng::seed_from(0xace * 17 + case);
        let params = PmlParams {
            window: 1 + g.index(3) as u32,
            ..PmlParams::defaults(4096, MIB, 4 * GIB)
        };
        let mut pml = PmlEstimator::new(params);
        let mut oracle = GroundTruthWss::new(params);
        let cap = 8 + g.index(256) as usize;
        let mut t = EpochTracker::new(cap, PAGES);
        let mut lossless_run = true;
        for epoch in 0..12u64 {
            let touches = 64 + g.index(5000) as usize;
            let (r, _, _, _) = run_epoch(&mut t, &mut g, touches, 4);
            lossless_run &= r.pml_pages == r.distinct_pages;
            let obs = WssObservation {
                io: IoCounters::default(),
                epoch: Some(EpochSample {
                    pml_pages: r.pml_pages as u64,
                    exact_pages: r.distinct_pages as u64,
                    overflowed: r.overflowed,
                }),
            };
            let now = SimTime::from_secs(2 * (epoch + 1));
            let p = pml.on_tick(now, &obs, GIB).expect("epoch present");
            let o = oracle.on_tick(now, &obs, GIB).expect("epoch present");
            assert!(
                p.adjustment.new_reservation <= o.adjustment.new_reservation,
                "case {case} epoch {epoch}: PML sized above the oracle"
            );
            if lossless_run {
                assert_eq!(
                    p.adjustment, o.adjustment,
                    "case {case} epoch {epoch}: lossless drains must agree"
                );
            }
        }
    }
}
