//! Swap-activity sampling (the iostat path of §IV-D).
//!
//! The tracking tool "periodically extracts the swapping activity of a VM
//! using the iostat utility on the per-VM swap device and computes the
//! number of pages read/written per second". [`SwapActivityMonitor`] does
//! exactly that: feed it cumulative [`IoCounters`] snapshots of the VM's
//! swap device and it produces windowed KB/s rates.

use agile_sim_core::{IoCounters, SimTime};

/// One windowed rate sample.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SwapRate {
    /// Window end time.
    pub at: SimTime,
    /// Read rate, bytes/second.
    pub read_bps: f64,
    /// Write rate, bytes/second.
    pub write_bps: f64,
}

impl SwapRate {
    /// Combined read+write rate in KB/s (the paper's τ is 4 KB/s).
    pub fn total_kbps(&self) -> f64 {
        (self.read_bps + self.write_bps) / 1024.0
    }
}

/// Computes windowed swap I/O rates from cumulative device counters.
#[derive(Clone, Debug)]
pub struct SwapActivityMonitor {
    last: Option<(SimTime, IoCounters)>,
}

impl Default for SwapActivityMonitor {
    fn default() -> Self {
        Self::new()
    }
}

impl SwapActivityMonitor {
    /// A monitor with no samples yet.
    pub fn new() -> Self {
        SwapActivityMonitor { last: None }
    }

    /// Feed a counter snapshot taken at `now`. Returns the rate over the
    /// window since the previous snapshot (None for the first sample or a
    /// zero-length window).
    pub fn sample(&mut self, now: SimTime, counters: IoCounters) -> Option<SwapRate> {
        let prev = self.last.replace((now, counters));
        let (prev_t, prev_c) = prev?;
        let dt = now.saturating_since(prev_t).as_secs_f64();
        if dt <= 0.0 {
            return None;
        }
        let delta = counters.delta(&prev_c);
        Some(SwapRate {
            at: now,
            read_bps: delta.read_bytes as f64 / dt,
            write_bps: delta.write_bytes as f64 / dt,
        })
    }

    /// Drop history (e.g. after the VM migrated and the device moved).
    pub fn reset(&mut self) {
        self.last = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(rb: u64, wb: u64) -> IoCounters {
        IoCounters {
            read_ops: rb / 4096,
            write_ops: wb / 4096,
            read_bytes: rb,
            write_bytes: wb,
            busy_nanos: 0,
        }
    }

    #[test]
    fn first_sample_yields_nothing() {
        let mut m = SwapActivityMonitor::new();
        assert_eq!(m.sample(SimTime::from_secs(2), counters(0, 0)), None);
    }

    #[test]
    fn window_rates() {
        let mut m = SwapActivityMonitor::new();
        m.sample(SimTime::from_secs(0), counters(0, 0));
        let r = m
            .sample(SimTime::from_secs(2), counters(8192, 4096))
            .unwrap();
        assert!((r.read_bps - 4096.0).abs() < 1e-9);
        assert!((r.write_bps - 2048.0).abs() < 1e-9);
        assert!((r.total_kbps() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn idle_device_rates_are_zero() {
        let mut m = SwapActivityMonitor::new();
        m.sample(SimTime::from_secs(0), counters(4096, 0));
        let r = m.sample(SimTime::from_secs(2), counters(4096, 0)).unwrap();
        assert_eq!(r.read_bps, 0.0);
        assert_eq!(r.write_bps, 0.0);
    }

    #[test]
    fn zero_length_window_rejected() {
        let mut m = SwapActivityMonitor::new();
        m.sample(SimTime::from_secs(1), counters(0, 0));
        assert_eq!(m.sample(SimTime::from_secs(1), counters(4096, 0)), None);
    }

    #[test]
    fn reset_forgets_history() {
        let mut m = SwapActivityMonitor::new();
        m.sample(SimTime::from_secs(0), counters(0, 0));
        m.reset();
        assert_eq!(m.sample(SimTime::from_secs(1), counters(8192, 0)), None);
    }
}
