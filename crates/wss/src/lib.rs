//! # agile-wss
//!
//! Transparent working-set tracking (§III-B, §IV-D of the paper):
//!
//! * [`SwapActivityMonitor`] — samples the per-VM swap device's cumulative
//!   I/O counters (the iostat path) into windowed KB/s rates.
//! * [`ReservationController`] — the multiplicative controller: swap rate
//!   above τ grows the cgroup reservation by β, below τ shrinks it by α;
//!   sampling runs every 2 s until the reservation stabilizes at the
//!   working-set size, then relaxes to 30 s (Figures 9–10).
//! * [`WatermarkTrigger`] — starts migration when the aggregate WSS
//!   crosses the high watermark and selects the provably-fewest VMs that
//!   bring it back below the low watermark.
//! * [`WssEstimator`] — the pluggable estimator trait over both signal
//!   paths: [`SwapIoEstimator`] (monitor + controller, the default) and
//!   [`PmlEstimator`] (simulated-PML dirty-epoch sampling), plus the
//!   test-only [`GroundTruthWss`] oracle.
//!
//! Everything here is pure logic over sampled numbers — no clock, no
//! devices — so the control behaviour is exactly unit-testable.

pub mod controller;
pub mod estimator;
pub mod monitor;
pub mod watermark;

pub use controller::{Adjustment, ControllerParams, ReservationController};
pub use estimator::{
    EpochSample, EstimateSignal, EstimatorTick, GroundTruthWss, PmlEstimator, PmlParams,
    SwapIoEstimator, WssEstimator, WssObservation,
};
pub use monitor::{SwapActivityMonitor, SwapRate};
pub use watermark::{VmWss, WatermarkTrigger};
