//! Watermark-based migration trigger and VM selection (§III-B).
//!
//! When the aggregate working-set size of all VMs on a host exceeds the
//! *high watermark*, migration starts; the trigger selects the **fewest**
//! VMs whose departure brings the aggregate below the *low watermark*, so
//! no further migration is needed until the high watermark is hit again.
//!
//! Fewest-VMs selection is exact: to free at least `D` bytes with the
//! fewest VMs, take VMs in descending WSS order — if the `k` largest don't
//! reach `D`, no `k` VMs do.

/// A VM's identity and current working-set size, as seen by the trigger.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VmWss {
    /// Opaque VM key (the cluster's `VmId`).
    pub vm: u32,
    /// Tracked working-set size in bytes.
    pub wss_bytes: u64,
}

/// The watermark trigger for one host.
#[derive(Clone, Copy, Debug)]
pub struct WatermarkTrigger {
    /// Aggregate WSS level that starts migrations.
    pub high_bytes: u64,
    /// Aggregate WSS level migrations must bring the host below.
    pub low_bytes: u64,
}

impl WatermarkTrigger {
    /// Create a trigger; panics unless `low < high`.
    pub fn new(low_bytes: u64, high_bytes: u64) -> Self {
        assert!(low_bytes < high_bytes, "low watermark must be below high");
        WatermarkTrigger {
            high_bytes,
            low_bytes,
        }
    }

    /// Watermarks as fractions of a host's VM-available memory (e.g.
    /// 0.85 / 0.95). Panics unless `low < high`.
    ///
    /// Both levels truncate to whole bytes, so a small `available_bytes`
    /// (or very close fractions) can collapse them to the same value; the
    /// high mark is then clamped to one 4 KiB page above the low mark so
    /// the `low < high` constructor invariant always holds.
    pub fn fractions(available_bytes: u64, low: f64, high: f64) -> Self {
        assert!(low < high, "low fraction must be below high");
        let low_bytes = (available_bytes as f64 * low) as u64;
        let mut high_bytes = (available_bytes as f64 * high) as u64;
        if high_bytes <= low_bytes {
            high_bytes = low_bytes + 4096;
        }
        WatermarkTrigger::new(low_bytes, high_bytes)
    }

    /// Should migration start?
    pub fn should_migrate(&self, aggregate_wss: u64) -> bool {
        aggregate_wss > self.high_bytes
    }

    /// Select the fewest VMs to migrate so the remaining aggregate drops
    /// below the low watermark. Returns an empty vector when the host is
    /// already below the high watermark. Ties break on VM key for
    /// determinism.
    pub fn select_vms(&self, vms: &[VmWss]) -> Vec<u32> {
        self.select_vms_filtered(vms, |_| true)
    }

    /// Like [`select_vms`](Self::select_vms), but skips VMs the caller
    /// marks ineligible — e.g. VMs whose portable swap namespace is
    /// under-replicated after a VMD server crash: migrating one would
    /// ship offset markers whose only surviving replica is still being
    /// repaired. The freeing target still counts ineligible VMs' WSS
    /// (their pressure is real); selection works around them, so the host
    /// may stay above the low watermark until they become eligible again.
    pub fn select_vms_filtered(&self, vms: &[VmWss], eligible: impl Fn(u32) -> bool) -> Vec<u32> {
        let aggregate: u64 = vms.iter().map(|v| v.wss_bytes).sum();
        if !self.should_migrate(aggregate) {
            return Vec::new();
        }
        let need = aggregate - self.low_bytes;
        let mut sorted: Vec<VmWss> = vms.iter().copied().filter(|v| eligible(v.vm)).collect();
        sorted.sort_by(|a, b| b.wss_bytes.cmp(&a.wss_bytes).then(a.vm.cmp(&b.vm)));
        let mut out = Vec::new();
        let mut freed = 0u64;
        for v in sorted {
            if freed >= need {
                break;
            }
            freed += v.wss_bytes;
            out.push(v.vm);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agile_sim_core::GIB;

    fn vm(vm: u32, gib: u64) -> VmWss {
        VmWss {
            vm,
            wss_bytes: gib * GIB,
        }
    }

    #[test]
    fn below_high_watermark_no_migration() {
        let t = WatermarkTrigger::new(18 * GIB, 21 * GIB);
        let vms = [vm(0, 5), vm(1, 5), vm(2, 5)];
        assert!(!t.should_migrate(15 * GIB));
        assert!(t.select_vms(&vms).is_empty());
    }

    #[test]
    fn single_vm_suffices() {
        // Aggregate 24 GiB > high 21; need to drop below low 18 → free ≥ 6.
        let t = WatermarkTrigger::new(18 * GIB, 21 * GIB);
        let vms = [vm(0, 6), vm(1, 6), vm(2, 6), vm(3, 6)];
        let sel = t.select_vms(&vms);
        assert_eq!(sel.len(), 1);
        assert_eq!(sel[0], 0, "deterministic tie-break by key");
    }

    #[test]
    fn picks_largest_first() {
        let t = WatermarkTrigger::new(10 * GIB, 12 * GIB);
        let vms = [vm(0, 2), vm(1, 9), vm(2, 3)];
        // Aggregate 14 > 12; need ≥ 4 freed; the 9 GiB VM alone suffices
        // while no single smaller VM does.
        assert_eq!(t.select_vms(&vms), vec![1]);
    }

    #[test]
    fn selects_multiple_when_one_is_not_enough() {
        let t = WatermarkTrigger::new(6 * GIB, 8 * GIB);
        let vms = [vm(0, 4), vm(1, 4), vm(2, 4)];
        // Aggregate 12 > 8; need ≥ 6; one 4 GiB VM is not enough.
        let sel = t.select_vms(&vms);
        assert_eq!(sel.len(), 2);
    }

    #[test]
    fn fewest_is_minimal() {
        let t = WatermarkTrigger::new(10 * GIB, 11 * GIB);
        let vms = [vm(0, 1), vm(1, 1), vm(2, 1), vm(3, 5), vm(4, 5)];
        // Aggregate 13 > 11; need ≥ 3; a single 5 GiB VM does it; the
        // greedy must not take three 1 GiB VMs.
        let sel = t.select_vms(&vms);
        assert_eq!(sel.len(), 1);
        assert!(sel[0] == 3 || sel[0] == 4);
    }

    #[test]
    fn filtered_selection_skips_suspect_vms() {
        let t = WatermarkTrigger::new(10 * GIB, 12 * GIB);
        let vms = [vm(0, 2), vm(1, 9), vm(2, 5)];
        // VM 1 (9 GiB) would win outright, but its namespace is under
        // repair: selection works around it. Need = 16 - 10 = 6 GiB, so
        // the 5 GiB VM alone is not enough.
        let sel = t.select_vms_filtered(&vms, |v| v != 1);
        assert_eq!(sel, vec![2, 0]);
        // With everyone eligible the filtered form matches the plain one.
        assert_eq!(t.select_vms_filtered(&vms, |_| true), t.select_vms(&vms));
    }

    #[test]
    fn filtered_selection_with_no_eligible_vms_defers() {
        let t = WatermarkTrigger::new(6 * GIB, 8 * GIB);
        let vms = [vm(0, 4), vm(1, 4), vm(2, 4)];
        assert!(t.select_vms_filtered(&vms, |_| false).is_empty());
    }

    #[test]
    fn fractions_constructor() {
        let t = WatermarkTrigger::fractions(20 * GIB, 0.8, 0.9);
        assert_eq!(t.low_bytes, 16 * GIB);
        assert_eq!(t.high_bytes, 18 * GIB);
    }

    #[test]
    #[should_panic(expected = "low watermark must be below high")]
    fn inverted_watermarks_rejected() {
        let _ = WatermarkTrigger::new(10, 10);
    }

    #[test]
    fn fractions_clamps_when_truncation_collapses_the_marks() {
        // 1000 * 0.5 = 500 and 1000 * 0.5004 = 500.4 → both truncate to
        // 500; the constructor used to panic on low == high.
        let t = WatermarkTrigger::fractions(1000, 0.5, 0.5004);
        assert_eq!(t.low_bytes, 500);
        assert_eq!(t.high_bytes, 500 + 4096, "high clamped one page up");

        // Degenerate zero-byte host: still a valid trigger.
        let t = WatermarkTrigger::fractions(0, 0.8, 0.9);
        assert_eq!(t.low_bytes, 0);
        assert_eq!(t.high_bytes, 4096);
    }

    #[test]
    #[should_panic(expected = "low fraction must be below high")]
    fn fractions_rejects_inverted_fractions() {
        let _ = WatermarkTrigger::fractions(GIB, 0.9, 0.8);
    }
}
