//! The reservation controller of §IV-D.
//!
//! Every sampling interval the controller looks at the VM's swap rate `S`
//! and multiplies the cgroup reservation by β > 1 (grow) when `S` exceeds
//! the threshold τ, or by α < 1 (shrink) otherwise. The paper's parameters
//! are α = 0.95, β = 1.03, τ = 4 KB/s; adjustment starts at a 2-second
//! interval and relaxes to 30 seconds once the reservation has stabilized
//! (it then hovers just above the true working-set size, where shrinks and
//! grows alternate).

use agile_sim_core::SimDuration;

use crate::monitor::SwapRate;

/// Direction of the last adjustment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Direction {
    Grow,
    Shrink,
}

/// Controller parameters (paper defaults in [`Default`]).
#[derive(Clone, Copy, Debug)]
pub struct ControllerParams {
    /// Shrink factor (< 1).
    pub alpha: f64,
    /// Grow factor (> 1).
    pub beta: f64,
    /// Swap-rate threshold in KB/s.
    pub tau_kbps: f64,
    /// Sampling interval while converging.
    pub fast_interval: SimDuration,
    /// Sampling interval once stable.
    pub slow_interval: SimDuration,
    /// Direction alternations required to declare stability.
    pub stable_after_flips: u32,
    /// Floor for the reservation (a VM always needs some memory).
    pub min_bytes: u64,
    /// Ceiling for the reservation (the VM's memory size).
    pub max_bytes: u64,
}

impl ControllerParams {
    /// The paper's §V-D parameters, bounded to `[min_bytes, max_bytes]`.
    pub fn paper(min_bytes: u64, max_bytes: u64) -> Self {
        ControllerParams {
            alpha: 0.95,
            beta: 1.03,
            tau_kbps: 4.0,
            fast_interval: SimDuration::from_secs(2),
            slow_interval: SimDuration::from_secs(30),
            stable_after_flips: 4,
            min_bytes,
            max_bytes,
        }
    }
}

/// One adjustment decision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Adjustment {
    /// The reservation to apply now.
    pub new_reservation: u64,
    /// When to sample next.
    pub next_sample_in: SimDuration,
    /// Whether the controller currently considers the WSS stable.
    pub stable: bool,
}

/// Multiplicative-adjustment reservation controller.
#[derive(Clone, Debug)]
pub struct ReservationController {
    params: ControllerParams,
    last_direction: Option<Direction>,
    flips: u32,
    streak: u32,
    stable: bool,
    ever_stable: bool,
}

impl ReservationController {
    /// Create a controller.
    pub fn new(params: ControllerParams) -> Self {
        assert!(params.alpha < 1.0 && params.alpha > 0.0, "alpha in (0,1)");
        assert!(params.beta > 1.0, "beta > 1");
        assert!(params.min_bytes <= params.max_bytes);
        ReservationController {
            params,
            last_direction: None,
            flips: 0,
            streak: 0,
            stable: false,
            ever_stable: false,
        }
    }

    /// Parameters in use.
    pub fn params(&self) -> &ControllerParams {
        &self.params
    }

    /// Whether the controller has declared stability.
    pub fn is_stable(&self) -> bool {
        self.stable
    }

    /// The tracked working-set estimate: once stable, the reservation
    /// itself is the estimate.
    pub fn wss_estimate(&self, current_reservation: u64) -> u64 {
        current_reservation
    }

    /// Apply one sample.
    pub fn on_sample(&mut self, current_reservation: u64, rate: SwapRate) -> Adjustment {
        let dir = if rate.total_kbps() > self.params.tau_kbps {
            Direction::Grow
        } else {
            Direction::Shrink
        };
        match self.last_direction {
            Some(prev) if prev != dir => {
                self.flips += 1;
                self.streak = 1;
            }
            Some(_) => {
                self.streak += 1;
                // A sustained shrink trend means the working set shrank:
                // drop back to fast tracking. Grow trends deliberately do
                // NOT re-enter fast mode (the paper keeps the 30 s interval
                // once stable): a sustained above-τ reading is usually the
                // *refill* of previously evicted cold pages, and compounding
                // β every 2 s on that artifact runs the reservation away.
                if self.streak >= 3 && dir == Direction::Shrink {
                    self.flips = 0;
                    self.stable = false;
                }
            }
            None => {
                self.streak = 1;
            }
        }
        self.last_direction = Some(dir);
        if self.flips >= self.params.stable_after_flips {
            self.stable = true;
            self.ever_stable = true;
        }

        let factor = match dir {
            Direction::Grow => self.params.beta,
            Direction::Shrink => self.params.alpha,
        };
        let raw = (current_reservation as f64 * factor) as u64;
        let new_reservation = raw.clamp(self.params.min_bytes, self.params.max_bytes);
        // Cadence: fast while first converging (and for downward tracking
        // after a workload shrink); once the WSS has been found, grow
        // steps always pace at the slow interval — a string of above-τ
        // samples after convergence is almost always the refill of
        // previously evicted cold pages, and compounding β at the fast
        // interval on that signal ratchets the reservation away from the
        // working set.
        let slow_paced = self.stable || (self.ever_stable && dir == Direction::Grow);
        Adjustment {
            new_reservation,
            next_sample_in: if slow_paced {
                self.params.slow_interval
            } else {
                self.params.fast_interval
            },
            stable: self.stable,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use agile_sim_core::{SimTime, GIB, MIB};

    fn rate(kbps: f64) -> SwapRate {
        SwapRate {
            at: SimTime::ZERO,
            read_bps: kbps * 1024.0,
            write_bps: 0.0,
        }
    }

    fn ctl() -> ReservationController {
        ReservationController::new(ControllerParams::paper(64 * MIB, 5 * GIB))
    }

    #[test]
    fn swapping_grows_reservation() {
        let mut c = ctl();
        let adj = c.on_sample(GIB, rate(100.0));
        assert_eq!(adj.new_reservation, (GIB as f64 * 1.03) as u64);
        assert!(!adj.stable);
        assert_eq!(adj.next_sample_in, SimDuration::from_secs(2));
    }

    #[test]
    fn quiet_device_shrinks_reservation() {
        let mut c = ctl();
        let adj = c.on_sample(GIB, rate(0.5));
        assert_eq!(adj.new_reservation, (GIB as f64 * 0.95) as u64);
    }

    #[test]
    fn threshold_is_exclusive() {
        let mut c = ctl();
        // Exactly τ counts as quiet (S must go *above* τ to grow).
        let adj = c.on_sample(GIB, rate(4.0));
        assert!(adj.new_reservation < GIB);
    }

    #[test]
    fn bounds_are_enforced() {
        let mut c = ctl();
        let at_max = c.on_sample(5 * GIB, rate(100.0));
        assert_eq!(at_max.new_reservation, 5 * GIB);
        let mut c = ctl();
        let at_min = c.on_sample(64 * MIB, rate(0.0));
        assert_eq!(at_min.new_reservation, 64 * MIB);
    }

    #[test]
    fn alternation_reaches_stability_and_slows_down() {
        let mut c = ctl();
        let mut r = 2 * GIB;
        // Alternate grow/shrink: the hallmark of hovering at the WSS.
        for i in 0..10 {
            let s = if i % 2 == 0 { 10.0 } else { 0.0 };
            let adj = c.on_sample(r, rate(s));
            r = adj.new_reservation;
        }
        assert!(c.is_stable());
        let adj = c.on_sample(r, rate(10.0));
        assert_eq!(adj.next_sample_in, SimDuration::from_secs(30));
    }

    #[test]
    fn sustained_shrink_trend_breaks_stability() {
        let mut c = ctl();
        let mut r = 2 * GIB;
        for i in 0..10 {
            let s = if i % 2 == 0 { 10.0 } else { 0.0 };
            r = c.on_sample(r, rate(s)).new_reservation;
        }
        assert!(c.is_stable());
        // The working set shrank: sustained silence on the swap device.
        for _ in 0..3 {
            r = c.on_sample(r, rate(0.0)).new_reservation;
        }
        assert!(!c.is_stable(), "shrink trend must re-enter fast tracking");
        let adj = c.on_sample(r, rate(0.0));
        assert_eq!(adj.next_sample_in, SimDuration::from_secs(2));
    }

    #[test]
    fn sustained_grow_trend_stays_slow() {
        // Growth (often a cold-page refill artifact) must keep the paper's
        // 30 s cadence instead of compounding β every 2 s.
        let mut c = ctl();
        let mut r = 2 * GIB;
        for i in 0..10 {
            let s = if i % 2 == 0 { 10.0 } else { 0.0 };
            r = c.on_sample(r, rate(s)).new_reservation;
        }
        assert!(c.is_stable());
        for _ in 0..5 {
            let adj = c.on_sample(r, rate(500.0));
            r = adj.new_reservation;
            assert_eq!(adj.next_sample_in, SimDuration::from_secs(30));
        }
        assert!(c.is_stable());
    }

    #[test]
    fn converges_to_working_set_in_closed_loop() {
        // Closed-loop toy plant: swapping occurs iff reservation < WSS.
        let wss = 1_717 * MIB;
        let mut c = ctl();
        let mut r = 5 * GIB;
        for _ in 0..200 {
            let s = if r < wss { 200.0 } else { 0.2 };
            r = c.on_sample(r, rate(s)).new_reservation;
        }
        let err = (r as f64 - wss as f64).abs() / wss as f64;
        assert!(err < 0.06, "reservation {r} vs wss {wss} (err {err:.3})");
        assert!(c.is_stable());
    }

    #[test]
    #[should_panic(expected = "alpha in (0,1)")]
    fn bad_alpha_rejected() {
        let mut p = ControllerParams::paper(0, GIB);
        p.alpha = 1.5;
        let _ = ReservationController::new(p);
    }
}
